// Package exp regenerates every table and figure of the paper's evaluation
// section. Each runner builds the parameter sweep, executes the runs (in
// parallel, with a cache so figures sharing runs — e.g. Figures 6-9 — pay
// for them once), and renders the series the paper plots.
package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/mac"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
)

// Scale sets the measurement budget. PaperScale replicates the paper's
// methodology exactly; QuickScale keeps the same 11-batch structure at a
// tenth of the packets for interactive use and CI.
type Scale struct {
	Name         string
	TotalPackets int64
	BatchPackets int64
	Seed         int64
}

// Predefined scales.
var (
	PaperScale = Scale{Name: "paper", TotalPackets: 110000, BatchPackets: 10000, Seed: 1}
	QuickScale = Scale{Name: "quick", TotalPackets: 11000, BatchPackets: 1000, Seed: 1}
	// BenchScale is for testing.B loops: tiny but structurally identical.
	BenchScale = Scale{Name: "bench", TotalPackets: 2200, BatchPackets: 200, Seed: 1}
)

// Harness executes figure runners with a shared, concurrency-safe result
// cache.
type Harness struct {
	Scale Scale
	// Workers bounds parallel simulations (default GOMAXPROCS).
	Workers int

	mu    sync.Mutex
	cache map[string]*cacheEntry
	sem   chan struct{}
	once  sync.Once

	gapMu   sync.Mutex
	gapMemo map[string]time.Duration
}

// NewHarness creates a harness at the given scale.
func NewHarness(scale Scale) *Harness {
	return &Harness{Scale: scale}
}

func (h *Harness) init() {
	h.once.Do(func() {
		if h.Workers <= 0 {
			h.Workers = runtime.GOMAXPROCS(0)
		}
		h.sem = make(chan struct{}, h.Workers)
		h.cache = make(map[string]*cacheEntry)
		h.gapMemo = make(map[string]time.Duration)
	})
}

// scaled applies the harness scale to a config.
func (h *Harness) scaled(cfg core.Config) core.Config {
	cfg.TotalPackets = h.Scale.TotalPackets
	cfg.BatchPackets = h.Scale.BatchPackets
	if cfg.Seed == 0 {
		cfg.Seed = h.Scale.Seed
	}
	return cfg
}

// cfgKey derives the cache key from a config by encoding every field by
// value. JSON encoding is deterministic (struct order, no map fields) and
// follows slices like Flows/PerFlowTransport into their elements — unlike
// the old fmt "%+v", which printed their backing-array addresses and so
// never matched across runs.
func cfgKey(cfg core.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain data struct; encoding cannot fail.
		panic(fmt.Sprintf("exp: encoding config key: %v", err))
	}
	return string(b)
}

// errAborted marks work skipped because an earlier item in the same
// fan-out already failed. It never escapes runParallel: the first real
// error wins the error channel before the abort flag is raised.
var errAborted = errors.New("exp: run skipped after an earlier failure")

// runParallel is the shared fan-out: it executes work(i) for every i in
// [0,n) on its own goroutine and returns the results in input order.
// Bounding comes from withSlot inside the work functions, so cache hits
// never wait for a worker slot.
//
// The first error returns immediately — the caller does not wait for the
// remaining slots to drain. In-flight simulations cannot be preempted and
// finish in the background (their cache entries stay valid), but queued
// work that has not claimed a slot yet observes the abort flag and is
// skipped.
func (h *Harness) runParallel(n int, work func(i int, abort *atomic.Bool) (*core.Result, error)) ([]*core.Result, error) {
	results := make([]*core.Result, n)
	var (
		abort atomic.Bool
		wg    sync.WaitGroup
	)
	errc := make(chan error, 1)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := work(i, &abort)
			if err != nil {
				// First real error wins the buffered slot; errAborted from
				// skipped work arrives only after it, so it is always
				// dropped here.
				select {
				case errc <- err:
				default:
				}
				abort.Store(true)
				return
			}
			results[i] = res
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case err := <-errc:
		return nil, err
	case <-done:
		select {
		case err := <-errc:
			return nil, err
		default:
		}
		return results, nil
	}
}

// withSlot runs fn while holding one of the harness's worker slots. A
// non-nil abort flag is re-checked once the slot is acquired: queued work
// behind a failed sibling bails out without running.
func (h *Harness) withSlot(abort *atomic.Bool, fn func() (*core.Result, error)) (*core.Result, error) {
	h.sem <- struct{}{}
	defer func() { <-h.sem }()
	if abort != nil && abort.Load() {
		return nil, errAborted
	}
	return fn()
}

// cacheEntry is one single-flight cache slot: the first caller for a key
// executes the run, concurrent duplicates wait for it and share the
// outcome; done is closed once res/err are set.
type cacheEntry struct {
	once sync.Once
	done chan struct{}
	res  *core.Result
	err  error
}

func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// cachedRun executes one already-scaled config through the cache. Completed
// entries return immediately without touching the worker semaphore. An
// abort observed before the entry is claimed leaves it unclaimed, so a
// later caller can still run it — aborts never poison the cache.
func (h *Harness) cachedRun(cfg core.Config, abort *atomic.Bool) (*core.Result, error) {
	key := cfgKey(cfg)
	h.mu.Lock()
	e := h.cache[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		h.cache[key] = e
	}
	h.mu.Unlock()
	if e.completed() {
		return e.res, e.err
	}
	return h.withSlot(abort, func() (*core.Result, error) {
		e.once.Do(func() {
			e.res, e.err = core.Run(cfg)
			close(e.done)
		})
		return e.res, e.err
	})
}

// Run executes one scaled config through the cache.
func (h *Harness) Run(cfg core.Config) (*core.Result, error) {
	h.init()
	return h.cachedRun(h.scaled(cfg), nil)
}

// RunAll executes configs in parallel, preserving order and returning the
// first failure without draining the rest of the sweep.
func (h *Harness) RunAll(cfgs []core.Config) ([]*core.Result, error) {
	h.init()
	return h.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*core.Result, error) {
		return h.cachedRun(h.scaled(cfgs[i]), abort)
	})
}

// OptimalUDPGap finds the paced-UDP inter-packet time that maximizes
// goodput for a chain of the given hop count, following the paper's
// procedure: start from the analytic 4-hop propagation delay and increase
// t gradually, keeping the best measured goodput. Results are memoized.
func (h *Harness) OptimalUDPGap(hops int, rate phy.Rate) (time.Duration, error) {
	h.init()
	key := fmt.Sprintf("%d@%v", hops, rate)
	h.gapMu.Lock()
	if g, ok := h.gapMemo[key]; ok {
		h.gapMu.Unlock()
		return g, nil
	}
	h.gapMu.Unlock()

	t0 := mac.FourHopPropagationDelay(rate)
	if hops < 4 {
		// Short chains have no 4-hop pipelining: the whole chain is one
		// contention domain, so start from the serial per-hop cost.
		t0 = time.Duration(hops) * mac.NewTiming(rate).ExchangeTime(pkt.TCPDataSize)
	}
	var cfgs []core.Config
	var gaps []time.Duration
	for f := 1.0; f <= 1.8; f += 0.1 {
		gap := time.Duration(float64(t0) * f).Round(100 * time.Microsecond)
		gaps = append(gaps, gap)
		cfg := core.Config{
			Topology:  core.Chain(hops),
			Bandwidth: rate,
			Transport: core.TransportSpec{Protocol: core.ProtoPacedUDP, UDPGap: gap},
			// The sweep uses a quarter of the budget per candidate.
			TotalPackets: h.Scale.TotalPackets / 4,
			BatchPackets: h.Scale.BatchPackets / 4,
			Seed:         h.Scale.Seed,
		}
		if cfg.BatchPackets == 0 {
			cfg.BatchPackets = cfg.TotalPackets / 11
		}
		cfgs = append(cfgs, cfg)
	}
	// Bypass the scale rewrite and the cache: these quarter-budget probe
	// runs are keyed by the memo, not the result cache.
	results, err := h.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*core.Result, error) {
		return h.withSlot(abort, func() (*core.Result, error) { return core.Run(cfgs[i]) })
	})
	if err != nil {
		return 0, err
	}
	best, bestG := gaps[0], -1.0
	for i, res := range results {
		if g := res.AggGoodput.Mean; g > bestG {
			best, bestG = gaps[i], g
		}
	}
	h.gapMu.Lock()
	h.gapMemo[key] = best
	h.gapMu.Unlock()
	return best, nil
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for an experiment id (e.g. "fig6", "table3").
func Lookup(id string) (func(h *Harness) (*Figure, error), bool) {
	fn, ok := registry[id]
	return fn, ok
}

var registry = map[string]func(h *Harness) (*Figure, error){
	"table2":      Table2,
	"fig2":        Fig2,
	"fig3":        Fig3,
	"fig4":        Fig4,
	"fig5":        Fig5,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"fig11":       Fig11,
	"fig12":       Fig12,
	"fig13":       Fig13,
	"fig14":       Fig14,
	"fig16":       Fig16,
	"fig17":       Fig17,
	"table3":      Table3,
	"fig18":       Fig18,
	"fig19":       Fig19,
	"table4":      Table4,
	"energy":      Energy,
	"ablation":    Ablation,
	"tcpvariants": TCPVariants,
	"coexist":     Coexist,
	"latency":     Latency,
	"optwindow":   OptWindow,
	"mobility":    Mobility,
}
