package tcp

import (
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// VegasSender implements TCP Vegas (Brakmo & Peterson) with the behaviour
// the paper relies on:
//
//   - proactive window control: once per RTT, diff = W·(RTT−baseRTT)/RTT
//     (the paper's (W/baseRTT − W/RTT)·baseRTT) is compared against the
//     thresholds α and β; the window moves by at most ±1 packet per RTT;
//   - a conservative slow start that doubles the window only every other
//     RTT and exits once diff exceeds γ;
//   - fine-grained loss recovery: the first duplicate ACK triggers a
//     retransmission if the segment's fine-grained timer (srtt+4·rttvar)
//     has expired, and the first two non-duplicate ACKs after a
//     retransmission re-check the next unacked segment — so Vegas rarely
//     needs three duplicate ACKs or a coarse timeout;
//   - window reduction by one quarter on a fast retransmission, at most
//     once per RTT, and a reset to Winit on a coarse timeout (Table 1).
type VegasSender struct {
	*base
	baseRTT time.Duration
	lastRTT time.Duration // most recent valid sample (paper's "most recent RTT")

	epochStart   sim.Time
	slowStart    bool
	ssGrowEpoch  bool  // doubling happens only in alternating epochs
	checkAfterRx int   // non-dup ACKs that still re-check after a rtx
	lastCutSeq   int64 // guards the 3/4 reduction to once per window
}

var _ Sender = (*VegasSender)(nil)

// NewVegas constructs a Vegas sender for one flow.
func NewVegas(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output) *VegasSender {
	s := &VegasSender{slowStart: true, ssGrowEpoch: true}
	s.base = newBase(sched, cfg, flow, src, dst, uids, out)
	s.rtxTimer = sim.NewTimer(sched, s.onRTO)
	s.onTimeout = s.onRTO
	return s
}

// Start begins the transfer.
func (s *VegasSender) Start() {
	s.setCwnd(float64(s.cfg.Winit))
	s.epochStart = s.sched.Now()
	s.sendUpTo()
}

// HandleAck processes a cumulative acknowledgment.
func (s *VegasSender) HandleAck(p *pkt.Packet) {
	if p.TCP == nil {
		return
	}
	s.stats.AcksSeen++
	ack := p.TCP.Ack
	if ack > s.ackNext {
		s.onNewAck(p, ack)
	} else if s.ackNext < s.nextSeq {
		s.onDupAck()
	}
	s.maybeEndEpoch()
	s.sendUpTo()
}

func (s *VegasSender) onNewAck(p *pkt.Packet, ack int64) {
	if !p.TCP.NoEcho && !p.TCP.Retransmit {
		// Measure against the first newly acked segment (ns-2 Vegas keeps
		// per-segment send times): for a cumulative ACK covering a burst,
		// the head of the burst saw the least self-queueing, which is
		// what Brakmo's marked-segment measurement observes. ACKs
		// triggered by retransmitted segments are excluded entirely
		// (Karn's rule — their delay measures recovery, not the path).
		rtt := s.sched.Now() - p.TCP.SentAt
		if sent, ok := s.sentAt[s.ackNext]; ok {
			rtt = s.sched.Now() - sent
		}
		s.sampleRTT(rtt)
		if rtt > 0 {
			if s.baseRTT == 0 || rtt < s.baseRTT {
				s.baseRTT = rtt
			}
			s.lastRTT = rtt
		}
	}
	s.ackAdvance(ack)
	s.dupacks = 0

	// Brakmo's post-retransmission check: the first two non-duplicate
	// ACKs after a retransmission re-examine the oldest outstanding
	// segment and retransmit it if its fine-grained timer expired,
	// catching multiple losses in one window without dup-ACK stalls.
	if s.checkAfterRx > 0 {
		s.checkAfterRx--
		if s.expired(s.ackNext) {
			s.retransmitFirst()
		}
	}

	// Per-ACK exponential growth while in the doubling phase of slow
	// start; linear adjustment happens only at epoch boundaries.
	if s.slowStart && s.ssGrowEpoch {
		s.setCwnd(s.cwnd + 1)
	}
}

func (s *VegasSender) onDupAck() {
	s.stats.DupAcks++
	s.dupacks++
	// Vegas' fine-grained check: retransmit on the *first* duplicate if
	// the segment has been outstanding longer than srtt+4·rttvar, without
	// waiting for the third duplicate.
	if s.expired(s.ackNext) || s.dupacks == 3 {
		s.retransmitFirst()
	}
}

// expired reports whether seq has been outstanding beyond the fine-grained
// timeout.
func (s *VegasSender) expired(seq int64) bool {
	sent, ok := s.sentAt[seq]
	if !ok {
		return false
	}
	return s.sched.Now()-sent > s.fineRTO()
}

// retransmitFirst resends the oldest unacked segment and applies Vegas'
// one-quarter window reduction (at most once per window of data).
func (s *VegasSender) retransmitFirst() {
	seq := s.ackNext
	if seq >= s.nextSeq {
		return
	}
	s.stats.FastRecov++
	s.transmit(seq)
	s.checkAfterRx = 2
	s.dupacks = 0
	if seq > s.lastCutSeq {
		s.lastCutSeq = s.nextSeq
		s.slowStart = false
		w := s.cwnd * 3 / 4
		if w < 2 {
			w = 2
		}
		s.setCwnd(w)
	}
}

// maybeEndEpoch runs the once-per-RTT Vegas window calculation.
func (s *VegasSender) maybeEndEpoch() {
	rtt := s.lastRTT
	if rtt == 0 {
		rtt = s.baseRTT
	}
	if rtt == 0 || s.sched.Now()-s.epochStart < rtt {
		return
	}
	s.epochStart = s.sched.Now()

	// diff = W·(RTT−baseRTT)/RTT, in packets.
	diff := s.cwnd * float64(s.lastRTT-s.baseRTT) / float64(s.lastRTT)
	alpha, beta, gamma := float64(s.cfg.Alpha), float64(s.cfg.Beta), float64(s.cfg.Gamma)

	if s.slowStart {
		if diff > gamma {
			// Leave slow start: shed the overshoot (Brakmo's 1/8) and
			// switch to linear adjustment.
			s.slowStart = false
			w := s.cwnd - s.cwnd/8
			if w < 2 {
				w = 2
			}
			s.setCwnd(w)
			return
		}
		// Double only every other RTT: toggle the growth phase.
		s.ssGrowEpoch = !s.ssGrowEpoch
		return
	}

	switch {
	case diff < alpha:
		s.setCwnd(s.cwnd + 1)
	case diff > beta:
		w := s.cwnd - 1
		if w < 2 {
			w = 2
		}
		s.setCwnd(w)
	}
}

// onRTO handles a coarse retransmission timeout: Winit window, timer
// backoff, and a fresh slow start.
func (s *VegasSender) onRTO() {
	if s.ackNext >= s.nextSeq {
		return
	}
	s.stats.Timeouts++
	s.growBackoff()
	s.slowStart = true
	s.ssGrowEpoch = true
	s.dupacks = 0
	s.checkAfterRx = 0
	s.setCwnd(float64(s.cfg.Winit))
	s.epochStart = s.sched.Now()
	s.rtxTimer.Reset(s.currentRTO())
	// Go back N, as in BSD/ns-2 TCP (snd_nxt pulled back).
	s.nextSeq = s.ackNext
	s.sendUpTo()
}
