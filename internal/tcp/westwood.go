package tcp

import (
	"time"

	"manetsim/internal/sim"
)

// WestwoodCC implements TCP Westwood+ (Mascolo et al.), the classic
// answer to wireless loss: instead of blindly halving on a loss signal,
// the sender continuously estimates the eligible rate from the ACK stream
// and, on loss, backs off to the window that rate can actually sustain —
// ssthresh = BWE·RTTmin. Random (non-congestion) losses therefore cost
// far less than under Reno-family halving, while genuine congestion still
// shrinks the window because BWE itself has collapsed.
//
// Mechanics at packet granularity:
//
//   - the bandwidth estimate BWE [packets/s] is a low-pass filter over
//     once-per-RTT samples of the acknowledged packet rate (Westwood+'s
//     RTT-paced sampling, which fixes the original Westwood's
//     ACK-compression overestimate): BWE ← g·BWE + (1−g)·sample with
//     g = Config.BWFilterGain (default 0.9);
//   - RTTmin is the smallest RTT sample seen, the propagation-delay
//     proxy;
//   - fast retransmit after three duplicate ACKs and NewReno-style
//     partial-ACK recovery, but with ssthresh = max(2, BWE·RTTmin) at
//     the loss point;
//   - on a coarse timeout, ssthresh = max(2, BWE·RTTmin) and the window
//     restarts from Winit;
//   - slow start / congestion avoidance growth is standard AIMD.
type WestwoodCC struct {
	CCBase
	ssthresh   float64
	dupacks    int
	inRecovery bool
	recover    int64

	bwe        float64       // bandwidth estimate [packets/s]
	rttMin     time.Duration // propagation-delay proxy
	ackedEpoch int64         // packets acknowledged in the current sample epoch
	epochStart sim.Time
}

var _ CongestionControl = (*WestwoodCC)(nil)

// NewWestwoodCC returns the Westwood+ congestion-control strategy.
func NewWestwoodCC() *WestwoodCC { return &WestwoodCC{} }

// Init binds the engine and seeds ssthresh at the receiver window.
func (s *WestwoodCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.ssthresh = s.InitialSSThresh()
}

// OnStart opens the first bandwidth-sample epoch.
func (s *WestwoodCC) OnStart() {
	s.epochStart = s.e.Now()
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *WestwoodCC) OnAck(a Ack) {
	e := s.e
	newly := e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
	s.accountBandwidth(newly)

	if s.inRecovery {
		if a.Seq > s.recover {
			s.inRecovery = false
			s.dupacks = 0
			e.SetWindow(s.ssthresh)
		} else {
			// Partial ACK: retransmit the next hole, deflate by the
			// amount acked, stay in recovery (as NewReno does).
			e.Retransmit(a.Seq)
			w := e.Window() - float64(newly) + 1
			if w < 1 {
				w = 1
			}
			e.SetWindow(w)
		}
		return
	}
	s.dupacks = 0
	s.GrowAIMD(newly, s.ssthresh)
}

// OnRTTSample tracks the propagation-delay floor.
func (s *WestwoodCC) OnRTTSample(rtt time.Duration) {
	if s.rttMin == 0 || rtt < s.rttMin {
		s.rttMin = rtt
	}
}

// accountBandwidth folds newly acknowledged packets into the once-per-RTT
// rate sample and advances the filter at epoch boundaries. The epoch
// clock starts in OnStart, before any ACK can arrive.
func (s *WestwoodCC) accountBandwidth(newly int64) {
	e := s.e
	s.ackedEpoch += newly
	epoch := e.SRTT()
	if epoch == 0 {
		return // no RTT estimate yet: keep accumulating
	}
	elapsed := e.Now() - s.epochStart
	if elapsed < epoch {
		return
	}
	sample := float64(s.ackedEpoch) / elapsed.Seconds()
	g := e.Config().BWFilterGain
	if s.bwe == 0 {
		s.bwe = sample
	} else {
		s.bwe = g*s.bwe + (1-g)*sample
	}
	s.ackedEpoch = 0
	s.epochStart = e.Now()
}

// bweWindow converts the bandwidth estimate into the sustainable window
// BWE·RTTmin, Westwood's post-loss operating point.
func (s *WestwoodCC) bweWindow() float64 {
	w := s.bwe * s.rttMin.Seconds()
	if w < 2 {
		w = 2
	}
	return w
}

// OnDupAck counts duplicates toward fast retransmit; the third backs off
// to the bandwidth-estimate window instead of half the current one.
func (s *WestwoodCC) OnDupAck(Ack) {
	e := s.e
	if s.inRecovery {
		e.SetWindow(e.Window() + 1)
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	e.CountFastRecovery()
	s.inRecovery = true
	s.recover = e.NextSeq() - 1
	s.ssthresh = s.bweWindow()
	if s.ssthresh > e.Window() {
		// Never inflate on loss: the estimate may exceed the current
		// window early in slow start.
		s.ssthresh = e.Window() / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
	}
	e.SetWindow(s.ssthresh + 3)
	e.Retransmit(e.AckNext())
}

// OnTimeout backs off to the bandwidth-estimate ssthresh and restarts
// from Winit; the engine then goes back N.
func (s *WestwoodCC) OnTimeout() {
	e := s.e
	s.ssthresh = s.bweWindow()
	s.inRecovery = false
	s.dupacks = 0
	e.BackoffRTO()
	e.SetWindow(float64(e.Config().Winit))
	e.RestartRTOTimer()
	// A timeout often follows an outage during which BWE decayed on
	// stale epochs; restart sampling cleanly.
	s.ackedEpoch = 0
	s.epochStart = e.Now()
}
