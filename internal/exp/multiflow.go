package exp

import (
	"fmt"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// multiflowVariants are the four TCP variants of the grid and random
// topology experiments.
var multiflowVariants = []struct {
	name string
	t    core.TransportSpec
}{
	{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
	{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}},
	{"Vegas Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2, AckThinning: true}},
	{"NewReno Thin", core.TransportSpec{Protocol: core.ProtoNewReno, AckThinning: true}},
}

// aggregateGoodputFigure renders Figures 16/18: aggregate goodput per
// bandwidth and variant for a multiflow scenario.
func aggregateGoodputFigure(h *Harness, id, title string, scn *core.Scenario) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "bandwidth [Mbit/s]", YLabel: "aggregate goodput [kbit/s]"}
	for _, v := range multiflowVariants {
		var cfgs []core.Config
		for _, r := range rates {
			cfgs = append(cfgs, core.Config{Scenario: scn, Bandwidth: r, Transport: v.t})
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: rateLabel(rates[i]), Y: kbit(res.AggGoodput.Mean)})
			if res.Truncated {
				f.Notes = append(f.Notes, fmt.Sprintf("%s at %s Mbit/s: truncated at %d packets",
					v.name, rateLabel(rates[i]), res.Delivered))
			}
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// perFlowFigure renders Figures 17/19: per-flow goodput plus the aggregate
// at 11 Mbit/s for a multiflow scenario.
func perFlowFigure(h *Harness, id, title string, scn *core.Scenario) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "flow", YLabel: "goodput [kbit/s]"}
	for _, v := range multiflowVariants {
		res, err := h.Run(core.Config{Scenario: scn, Bandwidth: phy.Rate11Mbps, Transport: v.t})
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for fi, est := range res.PerFlowGood {
			s.Points = append(s.Points, Point{X: fmt.Sprintf("FTP%d", fi+1), Y: kbit(est.Mean), CI: kbit(est.HalfCI)})
		}
		s.Points = append(s.Points, Point{X: "Aggregate", Y: kbit(res.AggGoodput.Mean), CI: kbit(res.AggGoodput.HalfCI)})
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// jainTable renders Tables 3/4: Jain's fairness index with 95% confidence
// intervals per bandwidth and variant.
func jainTable(h *Harness, id, title string, scn *core.Scenario) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "bandwidth [Mbit/s]", YLabel: "Jain's fairness index [95% CI]"}
	for _, v := range multiflowVariants {
		s := Series{Name: v.name}
		for _, r := range rates {
			res, err := h.Run(core.Config{Scenario: scn, Bandwidth: r, Transport: v.t})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: rateLabel(r), Y: res.Jain.Mean, CI: res.Jain.HalfCI})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig16: grid topology — aggregate goodput for different bandwidths.
func Fig16(h *Harness) (*Figure, error) {
	return aggregateGoodputFigure(h, "fig16", "grid topology (21 nodes, 6 flows): aggregate goodput", core.Grid())
}

// Fig17: grid topology — per-flow goodput at 11 Mbit/s.
func Fig17(h *Harness) (*Figure, error) {
	return perFlowFigure(h, "fig17", "grid topology: per-flow goodput at 11 Mbit/s", core.Grid())
}

// Table3: grid topology — Jain's fairness index.
func Table3(h *Harness) (*Figure, error) {
	return jainTable(h, "table3", "grid topology: Jain's fairness index", core.Grid())
}

// Fig18: random topology — aggregate goodput for different bandwidths.
func Fig18(h *Harness) (*Figure, error) {
	return aggregateGoodputFigure(h, "fig18", "random topology (120 nodes, 10 flows): aggregate goodput", core.Random())
}

// Fig19: random topology — per-flow goodput at 11 Mbit/s.
func Fig19(h *Harness) (*Figure, error) {
	return perFlowFigure(h, "fig19", "random topology: per-flow goodput at 11 Mbit/s", core.Random())
}

// Table4: random topology — Jain's fairness index.
func Table4(h *Harness) (*Figure, error) {
	return jainTable(h, "table4", "random topology: Jain's fairness index", core.Random())
}
