package wallclock

import "time"

// Test files are exempt: wall-clock deadlines in tests are legitimate.
func testDeadline() time.Time {
	return time.Now().Add(time.Second)
}
