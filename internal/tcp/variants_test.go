package tcp

import (
	"testing"
	"time"

	"manetsim/internal/pkt"
)

func TestRenoSingleLossFastRecovery(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	dropped := false
	pp.dropData = func(h *pkt.TCPHeader) bool {
		if h.Seq == 30 && !h.Retransmit && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s := pp.connectReno(Config{})
	pp.run(2 * time.Second)
	st := s.Stats()
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (single loss recovers via fast retransmit)", st.Timeouts)
	}
	if st.FastRecov != 1 || st.Retransmits != 1 {
		t.Errorf("fastRecov/rtx = %d/%d, want 1/1", st.FastRecov, st.Retransmits)
	}
}

// TestRenoMultiLossNeedsTimeoutButNewRenoDoesNot pins the classic
// difference that motivated NewReno: several losses in one window stall
// Reno into an RTO while NewReno's partial ACKs recover without one.
func TestRenoMultiLossNeedsTimeoutButNewRenoDoesNot(t *testing.T) {
	run := func(newreno bool) Stats {
		pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
		drops := map[int64]bool{40: true, 42: true, 44: true, 46: true}
		pp.dropData = func(h *pkt.TCPHeader) bool {
			if h.Retransmit {
				return false
			}
			if drops[h.Seq] {
				delete(drops, h.Seq)
				return true
			}
			return false
		}
		var s Sender
		if newreno {
			s = pp.connectNewReno(Config{})
		} else {
			s = pp.connectReno(Config{})
		}
		pp.run(4 * time.Second)
		return s.Stats()
	}
	nr := run(true)
	r := run(false)
	if nr.Timeouts != 0 {
		t.Errorf("NewReno timeouts = %d, want 0 on 4-loss window", nr.Timeouts)
	}
	if r.Timeouts == 0 {
		t.Error("classic Reno recovered a 4-loss window without timeout; partial-ACK behaviour leaked in")
	}
}

func TestTahoeCollapsesWindowOnLoss(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	dropped := false
	pp.dropData = func(h *pkt.TCPHeader) bool {
		if h.Seq == 30 && !h.Retransmit && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s := pp.connectTahoe(Config{})
	var minAfterLoss = 1e9
	var watch func()
	watch = func() {
		if dropped && s.Window() < minAfterLoss {
			minAfterLoss = s.Window()
		}
		pp.sched.After(time.Millisecond, watch)
	}
	pp.sched.At(0, watch)
	pp.run(2 * time.Second)
	if s.Stats().FastRecov != 1 {
		t.Errorf("loss events = %d, want 1", s.Stats().FastRecov)
	}
	if minAfterLoss > 1.5 {
		t.Errorf("Tahoe window only dropped to %.1f after loss, want collapse to Winit", minAfterLoss)
	}
	if pp.sink.Stats().GoodputPackets < 500 {
		t.Errorf("goodput = %d, stalled", pp.sink.Stats().GoodputPackets)
	}
}

func TestTahoeTimeout(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	blackout := false
	pp.dropData = func(h *pkt.TCPHeader) bool { return blackout }
	s := pp.connectTahoe(Config{})
	pp.sched.At(300*time.Millisecond, func() { blackout = true })
	pp.sched.At(900*time.Millisecond, func() { blackout = false })
	pp.run(3 * time.Second)
	if s.Stats().Timeouts == 0 {
		t.Error("no timeout during blackout")
	}
	if pp.sink.Stats().GoodputPackets < 1000 {
		t.Errorf("goodput = %d, did not resume", pp.sink.Stats().GoodputPackets)
	}
}

func TestDelayedAckSinkHalvesAckCount(t *testing.T) {
	r := newSinkRigPolicy(AckDelayed)
	for seq := int64(0); seq < 100; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	if got := len(r.acks); got != 50 {
		t.Errorf("delayed-ack sink sent %d acks for 100 packets, want 50", got)
	}
	last := r.acks[len(r.acks)-1]
	if last.TCP.Ack != 100 {
		t.Errorf("final cumulative ack = %d, want 100", last.TCP.Ack)
	}
}

func TestDelayedAckRegenerationOnLonePacket(t *testing.T) {
	r := newSinkRigPolicy(AckDelayed)
	r.sink.HandleData(r.data(0))
	if len(r.acks) != 0 {
		t.Fatalf("ack sent before delack timer, got %d", len(r.acks))
	}
	r.sched.RunUntil(2 * AckRegenTimeout)
	if len(r.acks) != 1 {
		t.Fatalf("acks after regen = %d, want 1", len(r.acks))
	}
	if r.acks[0].TCP.Ack != 1 {
		t.Errorf("regen ack = %d, want 1", r.acks[0].TCP.Ack)
	}
}

func TestDelayedAckOutOfOrderImmediate(t *testing.T) {
	r := newSinkRigPolicy(AckDelayed)
	r.sink.HandleData(r.data(0))
	r.sink.HandleData(r.data(1)) // ack fires (d=2)
	n := len(r.acks)
	r.sink.HandleData(r.data(3)) // gap: immediate dup ack
	if len(r.acks) != n+1 {
		t.Fatalf("no immediate ack on reorder")
	}
	if got := r.acks[len(r.acks)-1].TCP.Ack; got != 2 {
		t.Errorf("dup ack = %d, want 2", got)
	}
}

func TestSinkDelayHistogram(t *testing.T) {
	r := newSinkRigPolicy(AckEveryPacket)
	h := newDelayHist()
	r.sink.Delay = h
	p := r.data(0)
	p.TCP.SentAt = 0
	// Arrival "happens" at sched.Now()=0, so delay 0; advance the clock
	// via a scheduled handover for a real delay.
	r.sched.At(25*time.Millisecond, func() { r.sink.HandleData(p) })
	r.sched.Run()
	if h.N() != 1 {
		t.Fatalf("delay samples = %d, want 1", h.N())
	}
	if h.Mean() != 25*time.Millisecond {
		t.Errorf("delay = %v, want 25ms", h.Mean())
	}
}
