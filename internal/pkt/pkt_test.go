package pkt

import (
	"strings"
	"testing"
)

func TestWireSizes(t *testing.T) {
	if TCPDataSize != 1500 {
		t.Errorf("TCP data size = %d, want 1500 (1460 payload + 40 header)", TCPDataSize)
	}
	if TCPAckSize != 40 {
		t.Errorf("TCP ack size = %d, want 40", TCPAckSize)
	}
	if UDPDataSize != 1488 {
		t.Errorf("UDP data size = %d, want 1488 (1460 payload + 28 header)", UDPDataSize)
	}
}

func TestKindClassification(t *testing.T) {
	if !KindTCPData.IsData() || !KindUDPData.IsData() {
		t.Error("data kinds must report IsData")
	}
	if KindTCPAck.IsData() || KindRouting.IsData() {
		t.Error("ack/routing kinds must not report IsData")
	}
	if KindTCPData.String() != "tcp-data" {
		t.Errorf("KindTCPData = %q", KindTCPData.String())
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	data := &Packet{UID: 1, Kind: KindTCPData, Src: 0, Dst: 7, TCP: &TCPHeader{Flow: 2, Seq: 41}}
	if s := data.String(); !strings.Contains(s, "seq=41") || !strings.Contains(s, "f2") {
		t.Errorf("data string = %q", s)
	}
	ack := &Packet{UID: 2, Kind: KindTCPAck, Src: 7, Dst: 0, TCP: &TCPHeader{Flow: 2, Ack: 42}}
	if s := ack.String(); !strings.Contains(s, "ack=42") {
		t.Errorf("ack string = %q", s)
	}
	udp := &Packet{UID: 3, Kind: KindUDPData, UDP: &UDPHeader{Flow: 1, Seq: 5}}
	if s := udp.String(); !strings.Contains(s, "udp") {
		t.Errorf("udp string = %q", s)
	}
	route := &Packet{UID: 4, Kind: KindRouting}
	if s := route.String(); !strings.Contains(s, "routing") {
		t.Errorf("routing string = %q", s)
	}
}

func TestPoolRecyclesBlocks(t *testing.T) {
	var pl Pool
	p := pl.NewTCP()
	if p.TCP == nil || p.UDP != nil {
		t.Fatal("NewTCP must attach exactly the TCP header")
	}
	p.TCP.Seq = 7
	p.Kind = KindTCPData
	first := p
	firstUID := p.UID
	p.Release()
	q := pl.NewTCP()
	if q != first {
		t.Error("released block was not reused")
	}
	if q.UID == firstUID {
		t.Error("recycled packet kept its old UID")
	}
	if q.Kind != 0 || q.TCP.Seq != 0 {
		t.Errorf("recycled block not zeroed: kind=%v seq=%d", q.Kind, q.TCP.Seq)
	}
	u := pl.NewUDP()
	if u.UDP == nil || u.TCP != nil {
		t.Fatal("NewUDP must attach exactly the UDP header")
	}
}

func TestPoolRefcountKeepsPacketLive(t *testing.T) {
	var pl Pool
	p := pl.New()
	p.Retain() // second reference (e.g. a frame on the air)
	p.Release()
	if q := pl.New(); q == p {
		t.Fatal("block recycled while a reference was still held")
	}
	p.Release() // last reference
	if q := pl.New(); q != p {
		t.Error("block not recycled after the last release")
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.New()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release()
}

func TestLiteralPacketsIgnoreRefcounting(t *testing.T) {
	p := &Packet{UID: 1}
	p.Retain()
	p.Release()
	p.Release() // must all be no-ops
}

func TestPoolSteadyStateDoesNotAllocate(t *testing.T) {
	var pl Pool
	allocs := testing.AllocsPerRun(200, func() {
		p := pl.NewTCP()
		p.TCP.Seq = 1
		p.Release()
	})
	if allocs > 0 {
		t.Errorf("steady-state pooled construction allocates %.1f objects, want 0", allocs)
	}
}

func TestUIDSourceUnique(t *testing.T) {
	var u UIDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := u.Next()
		if id == 0 {
			t.Fatal("uid 0 handed out; 0 is reserved for 'unset'")
		}
		if seen[id] {
			t.Fatalf("duplicate uid %d", id)
		}
		seen[id] = true
	}
}
