// Package exp regenerates every table and figure of the paper's evaluation
// section. Each runner builds the parameter sweep, executes the runs, and
// renders the series the paper plots. The execution machinery — result
// cache, bounded parallelism, scales, the optimal-UDP-gap search — is the
// public manetsim.Campaign; this package is a thin client that adds only
// the figure definitions.
package exp

import (
	"context"
	"sort"
	"sync"
	"time"

	"manetsim"
	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// Scale sets the measurement budget; it is the public campaign Scale.
type Scale = manetsim.Scale

// Predefined scales, re-exported for the experiment CLIs.
var (
	PaperScale = manetsim.PaperScale
	QuickScale = manetsim.QuickScale
	BenchScale = manetsim.BenchScale
)

// Harness executes figure runners over a shared manetsim.Campaign, so
// figures that overlap (e.g. Figures 6-9 plot different metrics of the
// same runs) pay for each simulation once.
type Harness struct {
	Scale Scale
	// Workers bounds parallel simulations (default GOMAXPROCS).
	Workers int

	once sync.Once
	c    *manetsim.Campaign
}

// NewHarness creates a harness at the given scale.
func NewHarness(scale Scale) *Harness {
	return &Harness{Scale: scale}
}

// Campaign returns the harness's shared campaign, creating it on first
// use.
func (h *Harness) Campaign() *manetsim.Campaign {
	h.once.Do(func() {
		h.c = manetsim.NewCampaign(h.Scale)
		h.c.Workers = h.Workers
	})
	return h.c
}

// Run executes one scaled config through the campaign cache.
func (h *Harness) Run(cfg core.Config) (*core.Result, error) {
	return h.Campaign().Run(context.Background(), cfg)
}

// RunAll executes configs in parallel, preserving order and returning the
// first failure without draining the rest of the sweep.
func (h *Harness) RunAll(cfgs []core.Config) ([]*core.Result, error) {
	return h.Campaign().RunAll(context.Background(), cfgs)
}

// OptimalUDPGap finds the goodput-maximizing paced-UDP inter-packet time
// for a chain (memoized per harness).
func (h *Harness) OptimalUDPGap(hops int, rate phy.Rate) (time.Duration, error) {
	return h.Campaign().OptimalUDPGap(context.Background(), hops, rate)
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the runner for an experiment id (e.g. "fig6", "table3").
func Lookup(id string) (func(h *Harness) (*Figure, error), bool) {
	fn, ok := registry[id]
	return fn, ok
}

var registry = map[string]func(h *Harness) (*Figure, error){
	"table2":       Table2,
	"fig2":         Fig2,
	"fig3":         Fig3,
	"fig4":         Fig4,
	"fig5":         Fig5,
	"fig6":         Fig6,
	"fig7":         Fig7,
	"fig8":         Fig8,
	"fig9":         Fig9,
	"fig10":        Fig10,
	"fig11":        Fig11,
	"fig12":        Fig12,
	"fig13":        Fig13,
	"fig14":        Fig14,
	"fig16":        Fig16,
	"fig17":        Fig17,
	"table3":       Table3,
	"fig18":        Fig18,
	"fig19":        Fig19,
	"table4":       Table4,
	"energy":       Energy,
	"ablation":     Ablation,
	"tcpvariants":  TCPVariants,
	"transports":   Transports,
	"ccextensions": CCExtensions,
	"coexist":      Coexist,
	"lossy":        Lossy,
	"chaos":        Chaos,
	"latency":      Latency,
	"optwindow":    OptWindow,
	"mobility":     Mobility,
}
