package analysis

import "testing"

// Each analyzer runs over a testdata package containing a failing case, its
// fixed counterpart, and directive-suppressed exceptions; the *NonSim tests
// run the sim-gated analyzers over testdata/src/plain — a package full of
// violations that must all pass because it is outside the simulation core.

func TestWallClock(t *testing.T) {
	runAnalysisTest(t, WallClock, true, "wallclock")
}

func TestWallClockNonSimPackage(t *testing.T) {
	runAnalysisTest(t, WallClock, false, "plain")
}

func TestGlobalRand(t *testing.T) {
	runAnalysisTest(t, GlobalRand, true, "globalrand")
}

func TestGlobalRandNonSimPackage(t *testing.T) {
	runAnalysisTest(t, GlobalRand, false, "plain")
}

func TestMapOrder(t *testing.T) {
	runAnalysisTest(t, MapOrder, true, "maporder", "simstub/sim")
}

func TestMapOrderNonSimPackage(t *testing.T) {
	runAnalysisTest(t, MapOrder, false, "plain")
}

func TestResetComplete(t *testing.T) {
	runAnalysisTest(t, ResetComplete, true, "resetcomplete")
}

func TestHotPathAlloc(t *testing.T) {
	runAnalysisTest(t, HotPathAlloc, true, "hotpath", "simstub/sim")
}

// TestSuiteRepoClean asserts the invariant CI enforces via go vet -vettool:
// the full suite reports nothing across the repository (true positives are
// fixed, deliberate exceptions are annotated).
func TestSuiteRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	diags, err := AnalyzeDir("../..", Suite(), "./...")
	if err != nil {
		t.Fatalf("analyzing repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestIsSimPackage pins the package classification the gating rests on.
func TestIsSimPackage(t *testing.T) {
	for path, wantSim := range map[string]bool{
		"manetsim/internal/sim":      true,
		"manetsim/internal/phy":      true,
		"manetsim/internal/stats":    true,
		"manetsim/internal/analysis": false,
		"manetsim/internal/store":    false,
		"manetsim/cmd/manetsim":      false,
		"fmt":                        false,
	} {
		if got := IsSimPackage(path); got != wantSim {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, wantSim)
		}
	}
}
