// Package tcp implements the window-based transport variants the paper
// compares — NewReno and Vegas, plus the Reno, Tahoe, Westwood+ and
// adaptive-pacing extensions — together with the receiver-side ACK
// policies (per-packet ACKing and the dynamic ACK thinning of Altman &
// Jiménez).
//
// The package is split along one seam: Engine carries everything the
// variants share (sequence and window accounting, RTO estimation and the
// retransmission timer, packet construction, optional rate pacing, window
// tracing), and a CongestionControl strategy supplies the per-variant
// reaction to ACKs, duplicate ACKs, RTT samples and timeouts. Strategies
// are bound to their engine once at construction, so the steady-state path
// stays free of allocations and per-packet indirection beyond a single
// interface dispatch.
//
// Like ns-2's TCP agents, everything operates at packet granularity:
// sequence numbers count 1460-byte packets, the congestion window is
// measured in packets, and the application is an infinite (FTP) backlog.
// Packet timestamps are echoed by the sink, giving the sender exact RTT
// samples (ns-2's timestamp behaviour); Karn's problem is avoided because
// retransmitted packets carry fresh timestamps.
package tcp

import (
	"math"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
)

// DefaultAlpha is the Vegas α (and, through the defaulting chain, β and
// γ) threshold in packets when unset — the paper's Table 1 value. The
// spec validation layer shares it.
const DefaultAlpha = 2

// Config carries the transport parameters of Table 1 plus timer settings.
// The zero value of a field selects the default in parentheses.
type Config struct {
	Wmax  int // maximum window advertised by the receiver (64)
	Winit int // initial window in slow start and after a timeout (1)
	// MaxWindow artificially bounds the congestion window, implementing
	// the paper's "NewReno Optimal Window" variant (MaxWin=3 for the
	// 7-hop chain). 0 means no extra bound.
	MaxWindow int

	InitialRTO time.Duration // RTO before the first RTT sample (1s)
	MinRTO     time.Duration // RTO floor (200ms)
	MaxRTO     time.Duration // RTO ceiling (60s)

	// Vegas thresholds in packets; the paper fixes Alpha == Beta and
	// Gamma = Alpha (all default 2).
	Alpha int
	Beta  int
	Gamma int

	// BWFilterGain is the Westwood+ bandwidth-estimate low-pass pole in
	// (0,1): how much of the previous estimate survives each once-per-RTT
	// sample (0.9).
	BWFilterGain float64

	// CoVWeight scales how strongly the adaptive-pacing sender stretches
	// its inter-packet gap under RTT variability: the pacing interval is
	// (srtt + CoVWeight·rttvar)/cwnd (2).
	CoVWeight float64
	// MinPaceGap floors the adaptive pacing interval and seeds it before
	// the first RTT sample (1ms).
	MinPaceGap time.Duration

	// OnRetransmit, if set, observes every transport retransmission as it
	// is (re)sent. Left nil on measurement-only runs so the hot path pays
	// a single predictable branch.
	OnRetransmit func()
}

func (c Config) withDefaults() Config {
	if c.Wmax == 0 {
		c.Wmax = 64
	}
	if c.Winit == 0 {
		c.Winit = 1
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = time.Second
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Beta == 0 {
		c.Beta = c.Alpha
	}
	if c.Gamma == 0 {
		c.Gamma = c.Alpha
	}
	if c.BWFilterGain == 0 {
		c.BWFilterGain = 0.9
	}
	if c.CoVWeight == 0 {
		c.CoVWeight = 2
	}
	if c.MinPaceGap == 0 {
		c.MinPaceGap = time.Millisecond
	}
	return c
}

// Stats aggregates sender-side counters. Retransmits/delivered packets is
// the paper's Figures 7 and 12 metric.
type Stats struct {
	DataSent    uint64 // data transmissions including retransmissions
	Retransmits uint64
	Timeouts    uint64
	FastRecov   uint64 // fast-retransmit episodes
	AcksSeen    uint64
	DupAcks     uint64
}

// Sender is the interface the scenario layer drives; Engine implements it.
type Sender interface {
	// Start begins transmitting (infinite backlog).
	Start()
	// HandleAck processes an incoming ACK for this flow.
	HandleAck(p *pkt.Packet)
	// Stats returns a snapshot of the sender counters.
	Stats() Stats
	// Window returns the current congestion window in packets.
	Window() float64
	// WindowTrace exposes the time-weighted window accumulator (the core
	// layer resets it per measurement batch).
	WindowTrace() *stats.TimeWeighted
}

// Output injects a packet into the network (the routing layer's Send).
type Output func(p *pkt.Packet)

// Ack summarizes one acknowledgment for a CongestionControl strategy,
// decoupling strategies from the wire packet representation (packets are
// pooled; holding one across events would read recycled memory).
type Ack struct {
	// Seq is the cumulative acknowledgment: the next sequence the
	// receiver expects.
	Seq int64
	// Echo is the send timestamp of the data packet that triggered the
	// ACK, echoed back by the sink.
	Echo sim.Time
	// NoEcho marks the timestamp unusable for RTT estimation (the ACK was
	// regenerated by a receiver timer, not triggered by a data arrival).
	NoEcho bool
	// FromRetransmit reports that the triggering data packet was a
	// retransmission, so the echoed timestamp is ambiguous (Karn's rule).
	FromRetransmit bool
}

// CongestionControl is the per-variant strategy bound into an Engine: it
// owns the window policy and loss reaction, while the engine owns the
// shared mechanics. Strategies run single-threaded inside the simulation
// event loop and drive the engine through its exported methods; the
// ordering of those calls is part of a variant's observable behaviour
// (e.g. sampling the RTT before or after AdvanceAck decides whether the
// restarted retransmission timer sees the fresh estimate).
//
// Implementations must be cheap to call: one strategy instance exists per
// flow, bound once at engine construction, and every method runs on the
// per-ACK hot path.
type CongestionControl interface {
	// Init binds the strategy to its engine and resets variant state.
	// It runs once, before any traffic.
	Init(e *Engine)
	// OnStart runs when the transfer begins, after the engine set the
	// window to Winit and before the first transmission.
	OnStart()
	// OnAck handles an ACK that advances the cumulative point
	// (a.Seq > e.AckNext()). The strategy is responsible for calling
	// e.AdvanceAck (and usually e.SampleRTT) in its variant's order.
	OnAck(a Ack)
	// OnDupAck handles a duplicate ACK while data is outstanding.
	OnDupAck(a Ack)
	// OnTimeout handles a coarse retransmission timeout with data
	// outstanding. The engine counts the timeout and, afterwards, goes
	// back N and refills the window.
	OnTimeout()
	// OnRTTSample observes every RTT measurement accepted by the
	// engine's RTO estimator (after srtt/rttvar are updated).
	OnRTTSample(rtt time.Duration)
	// Window returns the congestion window in packets (normally the
	// engine's).
	Window() float64
}

// ackFinisher is an optional strategy extension: AfterAck runs once per
// incoming ACK after OnAck/OnDupAck and before the engine refills the
// window. Vegas uses it for its once-per-RTT epoch calculation, which must
// run even for ACKs that neither advance nor duplicate.
type ackFinisher interface {
	AfterAck()
}

// CCBase is an embeddable helper for CongestionControl implementations: it
// stores the engine binding and supplies neutral defaults for the optional
// hooks, so a minimal strategy only implements the reactions it cares
// about.
type CCBase struct {
	e *Engine
}

// Init stores the engine binding.
func (b *CCBase) Init(e *Engine) { b.e = e }

// Engine returns the bound engine.
func (b *CCBase) Engine() *Engine { return b.e }

// OnStart is a no-op by default.
func (b *CCBase) OnStart() {}

// OnRTTSample is a no-op by default.
func (b *CCBase) OnRTTSample(time.Duration) {}

// Window returns the engine's congestion window.
func (b *CCBase) Window() float64 { return b.e.Window() }

// InitialSSThresh returns the classic initial slow-start threshold: 64
// packets, clamped to the receiver window.
func (b *CCBase) InitialSSThresh() float64 {
	s := 64.0
	if w := b.e.Config().Wmax; float64(w) < s {
		s = float64(w)
	}
	return s
}

// GrowAIMD applies the standard per-ACK window growth for newly
// acknowledged packets: slow start (+1 per packet) below ssthresh,
// congestion avoidance (+1/W per packet) above it.
func (b *CCBase) GrowAIMD(newly int64, ssthresh float64) {
	e := b.e
	for i := int64(0); i < newly; i++ {
		if e.Window() < ssthresh {
			e.SetWindow(e.Window() + 1)
		} else {
			e.SetWindow(e.Window() + 1/e.Window())
		}
	}
}

// Engine carries the machinery every window-based sender shares: sequence
// accounting, RTO estimation and the retransmission timer, packet
// construction, optional rate pacing, and window tracing. The congestion
// policy is delegated to the CongestionControl strategy bound at
// construction.
type Engine struct {
	sched *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the engine
	cfg   Config
	out   Output
	uids  *pkt.UIDSource //manetsim:resetsafe pool binding; the pool resets itself
	cc    CongestionControl

	// afterAck is the pre-bound optional ackFinisher hook (nil for most
	// strategies), so the per-ACK cost is one predictable branch.
	afterAck func()

	flow     int
	src, dst pkt.NodeID

	nextSeq int64 // next sequence to transmit
	maxSeq  int64 // one past the highest sequence ever transmitted
	ackNext int64 // next sequence expected by the receiver (cum. ACK)
	cwnd    float64

	// sentAt records the latest transmission time per in-flight sequence
	// (Vegas' fine-grained checks and loss bookkeeping).
	sentAt map[int64]sim.Time

	srtt, rttvar time.Duration
	hasRTT       bool
	rto          time.Duration
	backoff      int
	rtxTimer     *sim.Timer

	// paceGap, when non-nil, switches transmission from ACK-clocked
	// bursts to rate pacing: packets leave one per interval as long as
	// the window has room.
	paceGap   func() time.Duration
	paceTimer *sim.Timer

	// halted marks a sender whose host node crashed (fault injection):
	// timers are stopped and every entry point is inert until Resume.
	halted bool

	stats   Stats
	winHist stats.TimeWeighted
}

var _ Sender = (*Engine)(nil)

// NewEngine builds the sender engine for one flow and binds the
// congestion-control strategy into it. All state is allocated here; the
// steady-state path performs no further allocations.
func NewEngine(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output, cc CongestionControl) *Engine {
	if out == nil {
		panic("tcp: nil output")
	}
	if cc == nil {
		panic("tcp: nil congestion control")
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		sched:   sched,
		cfg:     cfg,
		out:     out,
		uids:    uids,
		cc:      cc,
		flow:    flow,
		src:     src,
		dst:     dst,
		cwnd:    float64(cfg.Winit),
		sentAt:  make(map[int64]sim.Time),
		rto:     cfg.InitialRTO,
		backoff: 1,
	}
	e.rtxTimer = sim.NewTimer(sched, e.onRTO)
	cc.Init(e)
	if f, ok := cc.(ackFinisher); ok {
		e.afterAck = f.AfterAck
	}
	return e
}

// Reset rebinds the engine to a new run over the same scheduler, exactly
// as NewEngine would construct it, while keeping the allocated map and
// timers. The flow identity and output are taken fresh — a reused engine
// may serve a different flow (generator scenarios draw flows per seed) —
// and a fresh congestion-control strategy is bound in (strategies carry
// per-run state). Call after the scheduler was reset, which swept the
// retransmission and pacing timers.
func (e *Engine) Reset(cfg Config, flow int, src, dst pkt.NodeID, out Output, cc CongestionControl) {
	if out == nil {
		panic("tcp: nil output")
	}
	if cc == nil {
		panic("tcp: nil congestion control")
	}
	e.cfg = cfg.withDefaults()
	e.out = out
	e.cc = cc
	e.afterAck = nil
	e.flow = flow
	e.src = src
	e.dst = dst
	e.nextSeq = 0
	e.maxSeq = 0
	e.ackNext = 0
	e.cwnd = float64(e.cfg.Winit)
	clear(e.sentAt)
	e.srtt, e.rttvar = 0, 0
	e.hasRTT = false
	e.rto = e.cfg.InitialRTO
	e.backoff = 1
	e.rtxTimer.Stop()
	e.paceGap = nil
	if e.paceTimer != nil {
		e.paceTimer.Stop()
	}
	e.halted = false
	e.stats = Stats{}
	e.winHist = stats.TimeWeighted{}
	cc.Init(e)
	if f, ok := cc.(ackFinisher); ok {
		e.afterAck = f.AfterAck
	}
}

// Config returns the engine's defaulted configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current simulation time.
func (e *Engine) Now() sim.Time { return e.sched.Now() }

// AckNext returns the next sequence the receiver expects (the cumulative
// acknowledgment point, i.e. the oldest unacked sequence).
func (e *Engine) AckNext() int64 { return e.ackNext }

// NextSeq returns the next sequence the engine will transmit.
func (e *Engine) NextSeq() int64 { return e.nextSeq }

// MaxSeq returns one past the highest sequence ever transmitted.
func (e *Engine) MaxSeq() int64 { return e.maxSeq }

// InFlight returns the number of outstanding packets.
func (e *Engine) InFlight() int64 { return e.nextSeq - e.ackNext }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (e *Engine) SRTT() time.Duration {
	if !e.hasRTT {
		return 0
	}
	return e.srtt
}

// RTTVar returns the RTT variation estimate (0 before the first sample).
func (e *Engine) RTTVar() time.Duration {
	if !e.hasRTT {
		return 0
	}
	return e.rttvar
}

// SentAt returns when seq was last transmitted, if it is in flight.
func (e *Engine) SentAt(seq int64) (sim.Time, bool) {
	t, ok := e.sentAt[seq]
	return t, ok
}

// EnablePacing switches the engine from ACK-clocked burst transmission to
// rate pacing: as long as the window has room, one packet leaves per gap()
// interval. Strategies call this from Init; the pacing timer is allocated
// here, at build time, and reused when the engine is Reset for a new run.
func (e *Engine) EnablePacing(gap func() time.Duration) {
	if gap == nil {
		panic("tcp: nil pacing gap")
	}
	e.paceGap = gap
	if e.paceTimer == nil {
		e.paceTimer = sim.NewTimer(e.sched, e.pump)
	}
}

// Start begins the transfer. On a halted engine (host crashed before the
// flow's start time) it is a no-op; Resume starts the transfer instead.
func (e *Engine) Start() {
	if e.halted {
		return
	}
	e.SetWindow(float64(e.cfg.Winit))
	e.cc.OnStart()
	e.sendUpTo()
}

// Halt suspends a sender whose host node crashed: the retransmission and
// pacing timers stop and every entry point goes inert until Resume.
// Connection state — sequence accounting, stats, the window trace — is
// preserved, so the run's cumulative batch deltas stay consistent across
// the outage.
func (e *Engine) Halt() {
	e.halted = true
	e.rtxTimer.Stop()
	if e.paceTimer != nil {
		e.paceTimer.Stop()
	}
}

// Resume restarts a halted sender after its host came back up. The
// congestion state restarts cold — the strategy re-initializes as if the
// connection just opened (slow start from Winit, initial RTO, no RTT
// history) — while the connection's sequence state survives, so
// transmission resumes from the first unacknowledged packet.
func (e *Engine) Resume() {
	if !e.halted {
		return
	}
	e.halted = false
	e.srtt, e.rttvar = 0, 0
	e.hasRTT = false
	e.rto = e.cfg.InitialRTO
	e.backoff = 1
	e.afterAck = nil
	e.cc.Init(e)
	if f, ok := e.cc.(ackFinisher); ok {
		e.afterAck = f.AfterAck
	}
	e.SetWindow(float64(e.cfg.Winit))
	e.cc.OnStart()
	e.GoBackN()
	e.sendUpTo()
}

// HandleAck processes a cumulative acknowledgment: the engine classifies
// it (advance, duplicate, or stale) and delegates the reaction to the
// strategy, then refills the window.
//
//manetsim:hotpath
func (e *Engine) HandleAck(p *pkt.Packet) {
	if p.TCP == nil || e.halted {
		return
	}
	e.stats.AcksSeen++
	a := Ack{
		Seq:            p.TCP.Ack,
		Echo:           p.TCP.SentAt,
		NoEcho:         p.TCP.NoEcho,
		FromRetransmit: p.TCP.Retransmit,
	}
	if a.Seq > e.ackNext {
		e.cc.OnAck(a)
	} else if e.ackNext < e.nextSeq {
		// Pure duplicate with data outstanding.
		e.stats.DupAcks++
		e.cc.OnDupAck(a)
	}
	if e.afterAck != nil {
		e.afterAck()
	}
	e.sendUpTo()
}

// effectiveWindow applies the receiver limit and the optional MaxWindow cap.
func (e *Engine) effectiveWindow() int {
	w := int(e.cwnd)
	if w < 1 {
		w = 1
	}
	if w > e.cfg.Wmax {
		w = e.cfg.Wmax
	}
	if e.cfg.MaxWindow > 0 && w > e.cfg.MaxWindow {
		w = e.cfg.MaxWindow
	}
	return w
}

// SetWindow updates the congestion window (clamped to [1, Wmax]) and the
// time-weighted trace.
func (e *Engine) SetWindow(w float64) {
	if w < 1 {
		w = 1
	}
	if w > float64(e.cfg.Wmax) {
		w = float64(e.cfg.Wmax)
	}
	e.cwnd = w
	e.winHist.Set(e.sched.Now(), math.Min(w, float64(e.effectiveWindow())))
}

// sendUpTo transmits packets while the window has room. After a timeout
// pulled nextSeq back (go-back-N), this naturally resends the lost window.
// Under pacing it instead primes the pacing pump.
func (e *Engine) sendUpTo() {
	if e.paceGap != nil {
		e.pump()
		return
	}
	if e.nextSeq < e.ackNext {
		// The receiver has buffered past our send point (holes were filled
		// by buffered out-of-order data): skip what is already covered.
		e.nextSeq = e.ackNext
	}
	win := int64(e.effectiveWindow())
	for e.nextSeq < e.ackNext+win {
		e.transmit(e.nextSeq)
		e.nextSeq++
	}
}

// pump is the paced transmission loop: it sends one packet if the window
// has room and no gap is pending, then re-arms the pacing timer. When the
// window closes the pump idles; the next window-opening ACK restarts it.
func (e *Engine) pump() {
	if e.nextSeq < e.ackNext {
		e.nextSeq = e.ackNext
	}
	if e.paceTimer.Pending() {
		return
	}
	win := int64(e.effectiveWindow())
	if e.nextSeq >= e.ackNext+win {
		return
	}
	e.transmit(e.nextSeq)
	e.nextSeq++
	e.paceTimer.Reset(e.paceGap())
}

// transmit puts one data packet on the network. A packet below the highest
// sequence ever sent is a retransmission.
//
//manetsim:hotpath
func (e *Engine) transmit(seq int64) {
	now := e.sched.Now()
	isRtx := seq < e.maxSeq
	if seq+1 > e.maxSeq {
		e.maxSeq = seq + 1
	}
	p := e.uids.NewTCP()
	p.Kind = pkt.KindTCPData
	p.Size = pkt.TCPDataSize
	p.Src = e.src
	p.Dst = e.dst
	p.TTL = 64
	p.TCP.Flow = e.flow
	p.TCP.Seq = seq
	p.TCP.SentAt = now
	p.TCP.Retransmit = isRtx
	e.sentAt[seq] = now
	e.stats.DataSent++
	if isRtx {
		e.stats.Retransmits++
		if e.cfg.OnRetransmit != nil {
			e.cfg.OnRetransmit()
		}
	}
	if !e.rtxTimer.Pending() {
		e.rtxTimer.Reset(e.currentRTO())
	}
	e.out(p)
}

// Retransmit resends one outstanding sequence immediately (fast
// retransmit). Strategies use it for holes below NextSeq.
func (e *Engine) Retransmit(seq int64) { e.transmit(seq) }

// currentRTO returns the backed-off retransmission timeout.
func (e *Engine) currentRTO() time.Duration {
	d := e.rto * time.Duration(e.backoff)
	if d > e.cfg.MaxRTO {
		d = e.cfg.MaxRTO
	}
	return d
}

// RestartRTOTimer re-arms the retransmission timer at the current
// backed-off RTO.
func (e *Engine) RestartRTOTimer() { e.rtxTimer.Reset(e.currentRTO()) }

// BackoffRTO doubles the RTO backoff multiplier, capped at 64 (as in BSD
// TCP) so long outages cannot overflow the timer arithmetic.
func (e *Engine) BackoffRTO() {
	if e.backoff < 64 {
		e.backoff *= 2
	}
}

// SampleRTT folds a measurement into srtt/rttvar (RFC 6298), clears the
// timer backoff, and forwards the accepted sample to the strategy.
// Non-positive measurements are discarded.
func (e *Engine) SampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !e.hasRTT {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasRTT = true
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.rto = e.srtt + 4*e.rttvar
	if e.rto < e.cfg.MinRTO {
		e.rto = e.cfg.MinRTO
	}
	if e.rto > e.cfg.MaxRTO {
		e.rto = e.cfg.MaxRTO
	}
	e.backoff = 1
	e.cc.OnRTTSample(rtt)
}

// AdvanceAck processes the cumulative part of an ACK: trims bookkeeping
// and restarts the retransmission timer. It returns how many new packets
// the ACK covers.
func (e *Engine) AdvanceAck(ack int64) int64 {
	if ack <= e.ackNext {
		return 0
	}
	n := ack - e.ackNext
	for s := e.ackNext; s < ack; s++ {
		delete(e.sentAt, s)
	}
	e.ackNext = ack
	if e.ackNext < e.nextSeq {
		e.rtxTimer.Reset(e.currentRTO())
	} else {
		e.rtxTimer.Stop()
	}
	return n
}

// FineRTO is the fine-grained timeout Vegas checks against (srtt+4*rttvar
// without the coarse floor).
func (e *Engine) FineRTO() time.Duration {
	if !e.hasRTT {
		return e.cfg.InitialRTO
	}
	return e.srtt + 4*e.rttvar
}

// CountFastRecovery bumps the fast-retransmit episode counter.
func (e *Engine) CountFastRecovery() { e.stats.FastRecov++ }

// GoBackN pulls the transmission point back to the first unacked
// sequence, so the next window refill resends the outstanding data.
func (e *Engine) GoBackN() {
	if e.nextSeq > e.ackNext {
		e.nextSeq = e.ackNext
	}
}

// onRTO fires on a coarse retransmission timeout: the strategy reacts
// (shrink the window, back off, re-arm the timer), then the engine goes
// back N — resuming from the first unacked packet, as BSD/ns-2 TCP does —
// and refills the window.
func (e *Engine) onRTO() {
	if e.ackNext >= e.nextSeq {
		return // nothing outstanding
	}
	e.stats.Timeouts++
	e.cc.OnTimeout()
	e.GoBackN()
	e.sendUpTo()
}

// Window returns the current congestion window (packets).
func (e *Engine) Window() float64 { return e.cwnd }

// WindowTrace exposes the time-weighted window history.
func (e *Engine) WindowTrace() *stats.TimeWeighted { return &e.winHist }

// Stats snapshots the counters.
func (e *Engine) Stats() Stats { return e.stats }
