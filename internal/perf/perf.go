// Package perf is the simulator's performance benchmark suite: kernel
// microbenchmarks (event schedule/dispatch/cancel, timer churn), MAC
// contention, channel neighbor queries, and an end-to-end run at the
// BenchScale measurement budget.
//
// The benchmark bodies are ordinary exported functions taking *testing.B so
// that both `go test -bench` (via the wrappers in bench_test.go) and
// `manetsim bench -json` (via testing.Benchmark) execute the identical
// code. The JSON snapshot/compare machinery lives in snapshot.go.
package perf

import (
	"context"
	"testing"
	"time"

	"manetsim"
	"manetsim/internal/core"
	"manetsim/internal/exp"
	"manetsim/internal/fault"
	"manetsim/internal/geo"
	"manetsim/internal/linkmodel"
	"manetsim/internal/mac"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Case is one named benchmark of the suite. Name matches the go-test
// benchmark name so `-parse`d output and `-json` snapshots line up.
type Case struct {
	Name string
	Fn   func(*testing.B)
}

// Suite returns the full benchmark suite in a fixed order.
func Suite() []Case {
	return []Case{
		{"BenchmarkScheduleDispatch", BenchScheduleDispatch},
		{"BenchmarkScheduleDispatchDeep", BenchScheduleDispatchDeep},
		{"BenchmarkScheduleCancel", BenchScheduleCancel},
		{"BenchmarkTimerReset", BenchTimerReset},
		{"BenchmarkMACContention", BenchMACContention},
		{"BenchmarkChannelNeighborQuery", BenchChannelNeighborQuery},
		{"BenchmarkChannelNeighborQuerySparse", BenchChannelNeighborQuerySparse},
		{"BenchmarkChannelDeliverImpaired", BenchChannelDeliverImpaired},
		{"BenchmarkEndToEndBenchScale", BenchEndToEndBenchScale},
		{"BenchmarkRunWithFaults", BenchRunWithFaults},
		{"BenchmarkCampaignReplicates", BenchCampaignReplicates},
		{"BenchmarkCampaignReplicatesRebuild", BenchCampaignReplicatesRebuild},
	}
}

// BenchScheduleDispatch measures one schedule-then-dispatch cycle through
// the kernel's pooled 4-ary heap — the single most executed operation in
// the simulator.
func BenchScheduleDispatch(b *testing.B) {
	s := sim.NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

// BenchScheduleDispatchDeep is the same cycle against a 4096-event backlog,
// exercising sift depth at realistic queue sizes.
func BenchScheduleDispatchDeep(b *testing.B) {
	s := sim.NewScheduler(1)
	fn := func() {}
	for i := 0; i < 4096; i++ {
		s.At(time.Duration(1<<40)+time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

// BenchScheduleCancel measures schedule-then-cancel (timer rearm pattern).
func BenchScheduleCancel(b *testing.B) {
	s := sim.NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Millisecond, fn)
		s.Cancel(ev)
	}
}

// BenchTimerReset measures the Timer rearm path protocol stacks hammer
// (retransmission timers restart on every ACK).
func BenchTimerReset(b *testing.B) {
	s := sim.NewScheduler(1)
	tm := sim.NewTimer(s, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
	}
}

// BenchMACContention runs complete RTS/CTS/DATA/ACK exchanges from two
// contending senders to a shared receiver — the paper's hidden-terminal
// core in miniature — including carrier sensing, backoff, and duplicate
// suppression.
func BenchMACContention(b *testing.B) {
	sched := sim.NewScheduler(1)
	// 0 and 2 both reach 1 (200 m < TxRange) and carrier-sense each other
	// (400 m < CSRange), so every exchange contends.
	ch := phy.NewChannel(sched, []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}})
	var pool pkt.Pool
	delivered := 0
	cb := mac.Callbacks{
		Deliver:     func(p *pkt.Packet, _ pkt.NodeID) { delivered++; p.Release() },
		LinkFailure: func(p *pkt.Packet, _ pkt.NodeID) { p.Release() },
	}
	macs := make([]*mac.DCF, 3)
	for i := range macs {
		macs[i] = mac.New(sched, ch.Radio(pkt.NodeID(i)), mac.Config{DataRate: phy.Rate2Mbps}, cb)
	}
	newData := func(src, dst pkt.NodeID) *pkt.Packet {
		p := pool.NewTCP()
		p.Kind = pkt.KindTCPData
		p.Size = pkt.TCPDataSize
		p.Src, p.Dst = src, dst
		p.TTL = 64
		return p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		macs[0].Enqueue(newData(0, 1), 1)
		macs[2].Enqueue(newData(2, 1), 1)
		sched.Run()
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// jiggleModel drifts a 10-wide node grid sideways over time so every
// position epoch moves every node and invalidates the neighbor caches.
type jiggleModel struct {
	n       int
	spacing float64
}

func (j jiggleModel) Len() int     { return j.n }
func (j jiggleModel) Static() bool { return false }
func (j jiggleModel) PositionAt(i int, t sim.Time) geo.Point {
	drift := 3 * float64(t/phy.DefaultUpdateInterval)
	return geo.Point{
		X: float64(i%10)*j.spacing + drift,
		Y: float64(i/10) * j.spacing,
	}
}

// BenchChannelNeighborQuery measures one position epoch of a 100-node
// mobile channel: re-sampling every position, re-bucketing the spatial
// grid, and rebuilding all 100 per-radio neighbor sets.
func BenchChannelNeighborQuery(b *testing.B) {
	sched := sim.NewScheduler(1)
	const n = 100
	ch := phy.NewMobileChannel(sched, jiggleModel{n: n, spacing: 150}, 0)
	sum := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunUntil(time.Duration(i+1) * phy.DefaultUpdateInterval)
		for id := 0; id < n; id++ {
			sum += ch.NeighborCount(pkt.NodeID(id))
		}
	}
	b.StopTimer()
	if sum == 0 {
		b.Fatal("empty neighbor sets")
	}
}

// sparseModel keeps a node grid still except for two nodes that drift
// sideways — the common mobile-scenario regime where most nodes are paused
// between waypoints. With incremental neighbor epochs only the movers and
// their vicinities rebuild; everything else stays on the cached fast path.
type sparseModel struct {
	n       int
	spacing float64
}

func (m sparseModel) Len() int     { return m.n }
func (m sparseModel) Static() bool { return false }
func (m sparseModel) PositionAt(i int, t sim.Time) geo.Point {
	p := geo.Point{
		X: float64(i%10) * m.spacing,
		Y: float64(i/10) * m.spacing,
	}
	if i == 0 || i == m.n/2 {
		p.X += 3 * float64(t/phy.DefaultUpdateInterval)
	}
	return p
}

// BenchChannelNeighborQuerySparse is BenchChannelNeighborQuery with sparse
// movement: the same 100-node channel and full query sweep, but only two
// nodes move per position epoch. The gap between this and the dense bench
// is the payoff of incremental (O(moved)) neighbor-epoch maintenance.
func BenchChannelNeighborQuerySparse(b *testing.B) {
	sched := sim.NewScheduler(1)
	const n = 100
	ch := phy.NewMobileChannel(sched, sparseModel{n: n, spacing: 500}, 0)
	sum := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunUntil(time.Duration(i+1) * phy.DefaultUpdateInterval)
		for id := 0; id < n; id++ {
			sum += ch.NeighborCount(pkt.NodeID(id))
		}
	}
	b.StopTimer()
	if sum == 0 {
		b.Fatal("empty neighbor sets")
	}
}

// sinkHandler is the minimal PHY handler for channel-only benches: it
// counts deliveries and corruptions and ignores carrier state.
type sinkHandler struct{ rx, corrupted int }

func (h *sinkHandler) RxFrame(any, pkt.NodeID) { h.rx++ }
func (h *sinkHandler) RxCorrupted()            { h.corrupted++ }
func (h *sinkHandler) ChannelBusy()            {}
func (h *sinkHandler) ChannelIdle()            {}
func (h *sinkHandler) TxDone()                 {}

// newImpairedPair builds the 3-node line every impaired-delivery
// measurement uses — sender, decodable receiver at 200 m, gray-zone
// listener at 400 m (energy only under the perfect channel) — with
// bursty Gilbert-Elliott loss and delay jitter installed, and returns
// the scheduler, sender radio and receiving sink. One warm-up transmit
// has already run, so per-link states and signal pools are allocated.
func newImpairedPair() (*sim.Scheduler, *phy.Radio, *sinkHandler) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}})
	ch.SetLinkModel(linkmodel.GilbertElliott{
		PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.5,
	}, 10*time.Microsecond, 0, 1)
	sink := &sinkHandler{}
	tx := ch.Radio(0)
	tx.SetHandler(&sinkHandler{})
	ch.Radio(1).SetHandler(sink)
	ch.Radio(2).SetHandler(&sinkHandler{})
	tx.Transmit("warmup", 100*time.Microsecond)
	sched.Run()
	return sched, tx, sink
}

// BenchChannelDeliverImpaired measures one steady-state frame delivery
// through the impaired channel — per-link RNG draws for Gilbert-Elliott
// loss and jitter on every copy, capture arbitration at the receivers —
// after the warm-up transmit has populated the per-link states. The
// impairment path must stay allocation-free: 0 allocs/op is enforced by
// TestChannelDeliverImpairedZeroAlloc against this same setup.
func BenchChannelDeliverImpaired(b *testing.B) {
	sched, tx, sink := newImpairedPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Transmit("frame", 100*time.Microsecond)
		sched.Run()
	}
	b.StopTimer()
	if sink.rx+sink.corrupted == 0 {
		b.Fatal("nothing arrived at the receiver")
	}
}

// newFaultedPair is newImpairedPair with the fault plane installed and
// active: the gray-zone link 0<->2 is blacked out, so every transmit
// walks the severance checks on each copy with the plane in its
// non-quiet state while the decodable receiver keeps delivering.
func newFaultedPair() (*sim.Scheduler, *phy.Radio, *sinkHandler, *fault.Plane) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}})
	ch.SetLinkModel(linkmodel.GilbertElliott{
		PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.5,
	}, 10*time.Microsecond, 0, 1)
	plane := &fault.Plane{}
	plane.Reset(3)
	plane.BlockLink(0, 2)
	plane.BlockLink(2, 0)
	ch.SetFaultPlane(plane)
	sink := &sinkHandler{}
	tx := ch.Radio(0)
	tx.SetHandler(&sinkHandler{})
	ch.Radio(1).SetHandler(sink)
	ch.Radio(2).SetHandler(&sinkHandler{})
	tx.Transmit("warmup", 100*time.Microsecond)
	sched.Run()
	return sched, tx, sink, plane
}

// BenchRunWithFaults is the end-to-end resilience figure: a complete
// 4-hop NewReno chain run at the BenchScale budget with a mid-chain
// crash-and-restart injected — fault event dispatch, severance checks on
// the forwarding path, recovery-mark accounting and the outage report
// all included. Its gap to BenchmarkEndToEndBenchScale bounds the cost
// of carrying a fault schedule.
func BenchRunWithFaults(b *testing.B) {
	scale := exp.BenchScale
	cfg := core.Config{
		Scenario:     core.Chain(4),
		Bandwidth:    phy.Rate2Mbps,
		Transport:    core.TransportSpec{Protocol: core.ProtoNewReno},
		Seed:         scale.Seed,
		TotalPackets: scale.TotalPackets,
		BatchPackets: scale.BatchPackets,
		Faults: []core.FaultSpec{
			core.CrashFault(2, 2*time.Second, 2*time.Second),
		},
	}
	var res *core.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil {
		if res.Faults == nil || !res.Faults.Outages[0].RecoveredAfterHeal {
			b.Fatal("faulted benchmark run never recovered")
		}
		b.ReportMetric(float64(res.Delivered)*float64(b.N)/b.Elapsed().Seconds(), "packets/s")
	}
}

// benchCampaignReplicates measures campaign replicate throughput on a
// world whose construction is expensive relative to its measurement
// budget: a 210-node static-routed grid (route computation is cubic in
// node count) sampled for a small packet budget across many seeds. One
// campaign persists across iterations — seeds never repeat, so every run
// simulates — and rebuild toggles DisableArenaReuse, making the pair a
// direct fresh-build-vs-arena comparison.
func benchCampaignReplicates(b *testing.B, rebuild bool) {
	const (
		cols, rows = 15, 14
		seeds      = 32
	)
	scn := core.NewScenario("arena-grid").WithRouting(core.RoutingStatic)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			scn.AddNode(float64(c)*200, float64(r)*200)
		}
	}
	scn.AddFlow(0, 2)
	camp := manetsim.NewCampaign(manetsim.BenchScale)
	camp.DisableArenaReuse = rebuild
	next := int64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs := make([]core.Config, seeds)
		for j := range cfgs {
			cfgs[j] = core.Config{
				Scenario:     scn,
				Bandwidth:    phy.Rate2Mbps,
				Transport:    core.TransportSpec{Name: "vegas"},
				Seed:         next,
				TotalPackets: 44,
				BatchPackets: 4,
			}
			next++
		}
		if _, err := camp.RunAll(context.Background(), cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(seeds)*float64(b.N)/b.Elapsed().Seconds(), "replicates/s")
}

// BenchCampaignReplicates measures replicate throughput with the default
// per-worker arena pool: world setup amortizes across the sweep.
func BenchCampaignReplicates(b *testing.B) { benchCampaignReplicates(b, false) }

// BenchCampaignReplicatesRebuild is the same sweep with arena reuse
// disabled — every replicate rebuilds its world from scratch. The ratio to
// BenchCampaignReplicates is the arena speedup.
func BenchCampaignReplicatesRebuild(b *testing.B) { benchCampaignReplicates(b, true) }

// BenchEndToEndBenchScale is the headline end-to-end figure: one complete
// 8-hop Vegas chain run at the BenchScale measurement budget (the same
// 11-batch structure the figures use). ns/op is the cost of regenerating
// one run; packets/s is raw simulator throughput.
func BenchEndToEndBenchScale(b *testing.B) {
	scale := exp.BenchScale
	var res *core.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Run(core.Config{
			Scenario:     core.Chain(8),
			Bandwidth:    phy.Rate2Mbps,
			Transport:    core.TransportSpec{Protocol: core.ProtoVegas},
			Seed:         scale.Seed,
			TotalPackets: scale.TotalPackets,
			BatchPackets: scale.BatchPackets,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil {
		b.ReportMetric(float64(res.Delivered)*float64(b.N)/b.Elapsed().Seconds(), "packets/s")
		b.ReportMetric(res.AggGoodput.Mean/1e3, "kbit/s")
	}
}
