package analysis

// This file is the suite's analysistest-style harness: each testdata package
// under testdata/src/<path> is parsed and type-checked with the real Loader
// (stdlib imports resolve through `go list -export` export data, testdata-local
// stubs through Loader.AddExtra), one analyzer runs over it, and the reported
// diagnostics are matched against `// want "regexp"` comments in the sources —
// every diagnostic must be wanted, every want must fire.

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdPackages lists (and compiles, via -export) the standard-library packages
// the testdata imports, once per test process.
var (
	stdOnce sync.Once
	stdPkgs []*ListedPackage
	stdErr  error
)

func stdPackages(t *testing.T) []*ListedPackage {
	t.Helper()
	stdOnce.Do(func() {
		stdPkgs, stdErr = GoList(".", "fmt", "time", "math/rand", "math/rand/v2", "sort", "strings")
	})
	if stdErr != nil {
		t.Fatalf("listing stdlib export data: %v", stdErr)
	}
	return stdPkgs
}

// runAnalysisTest type-checks testdata/src/<pkgPath> (after source-checking
// any testdata-local deps, e.g. "simstub/sim"), runs the single analyzer with
// the given SimPackage classification, and compares diagnostics to wants.
func runAnalysisTest(t *testing.T, a *Analyzer, simPkg bool, pkgPath string, deps ...string) {
	t.Helper()
	loader := NewLoaderFromList(stdPackages(t))
	for _, dep := range deps {
		dir := filepath.Join("testdata", "src", dep)
		_, pkg, _, err := loader.Check(dep, dir, goFilesIn(t, dir))
		if err != nil {
			t.Fatalf("type-checking testdata dep %s: %v", dep, err)
		}
		loader.AddExtra(pkg)
	}
	dir := filepath.Join("testdata", "src", pkgPath)
	files, pkg, info, err := loader.Check(pkgPath, dir, goFilesIn(t, dir))
	if err != nil {
		t.Fatalf("type-checking testdata package %s: %v", pkgPath, err)
	}
	diags, err := RunSuite([]*Analyzer{a}, loader.Fset, files, pkg, info, simPkg)
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, pkgPath, err)
	}
	wants := parseWants(t, loader.Fset, files)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func goFilesIn(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir %s: %v", dir, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no Go files in testdata dir %s", dir)
	}
	return files
}

// A want is one expected diagnostic: a `// want "regexp"` comment expects a
// diagnostic on its own line whose "analyzer: message" string matches.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}

// claimWant marks the first unclaimed want on the diagnostic's line whose
// regexp matches, reporting whether one was found.
func claimWant(wants []*want, d Diagnostic) bool {
	text := d.Analyzer + ": " + d.Message
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
			w.hit = true
			return true
		}
	}
	return false
}
