package phy

import (
	"testing"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// recorder is a test Handler capturing all PHY indications.
type recorder struct {
	frames    []any
	froms     []pkt.NodeID
	corrupted int
	busy      int
	idle      int
	txDone    int
	log       []string
}

func (r *recorder) RxFrame(f any, from pkt.NodeID) {
	r.frames = append(r.frames, f)
	r.froms = append(r.froms, from)
	r.log = append(r.log, "rx")
}
func (r *recorder) RxCorrupted() { r.corrupted++; r.log = append(r.log, "corrupt") }
func (r *recorder) ChannelBusy() { r.busy++; r.log = append(r.log, "busy") }
func (r *recorder) ChannelIdle() { r.idle++; r.log = append(r.log, "idle") }
func (r *recorder) TxDone()      { r.txDone++; r.log = append(r.log, "txdone") }

var _ Handler = (*recorder)(nil)

func setup(t *testing.T, positions []geo.Point) (*sim.Scheduler, *Channel, []*recorder) {
	t.Helper()
	sched := sim.NewScheduler(1)
	ch := NewChannel(sched, positions)
	recs := make([]*recorder, len(positions))
	for i := range recs {
		recs[i] = &recorder{}
		ch.Radio(pkt.NodeID(i)).SetHandler(recs[i])
	}
	return sched, ch, recs
}

func TestDeliveryWithinTxRange(t *testing.T) {
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 200}})
	sched.At(0, func() { ch.Radio(0).Transmit("hello", time.Millisecond) })
	sched.Run()
	if len(recs[1].frames) != 1 || recs[1].frames[0] != "hello" {
		t.Fatalf("node 1 frames = %v, want [hello]", recs[1].frames)
	}
	if recs[1].froms[0] != 0 {
		t.Errorf("from = %d, want 0", recs[1].froms[0])
	}
	if recs[0].txDone != 1 {
		t.Errorf("txDone = %d, want 1", recs[0].txDone)
	}
	// Receiver saw busy then rx then idle, in that order.
	want := []string{"busy", "rx", "idle"}
	if len(recs[1].log) != 3 {
		t.Fatalf("receiver log = %v", recs[1].log)
	}
	for i := range want {
		if recs[1].log[i] != want[i] {
			t.Fatalf("receiver log = %v, want %v", recs[1].log, want)
		}
	}
}

func TestCarrierSenseWithoutDecodeBetween250And550(t *testing.T) {
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 400}})
	sched.At(0, func() { ch.Radio(0).Transmit("x", time.Millisecond) })
	sched.Run()
	if len(recs[1].frames) != 0 {
		t.Error("node at 400m decoded a frame; transmission range is 250m")
	}
	if recs[1].busy != 1 || recs[1].idle != 1 {
		t.Errorf("busy/idle = %d/%d, want 1/1 (carrier sensed)", recs[1].busy, recs[1].idle)
	}
	// Undecodable noise reports an errored reception so the MAC defers
	// EIFS, as ns-2 does for sub-threshold packets.
	if recs[1].corrupted != 1 {
		t.Errorf("corrupted = %d, want 1 (noise end triggers EIFS)", recs[1].corrupted)
	}
}

func TestNoIndicationBeyondCSRange(t *testing.T) {
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 600}})
	sched.At(0, func() { ch.Radio(0).Transmit("x", time.Millisecond) })
	sched.Run()
	if len(recs[1].log) != 0 {
		t.Errorf("node at 600m got indications %v, want none", recs[1].log)
	}
}

// TestHiddenTerminalCollisionNoCapture reproduces the raw loss mechanism
// under the ablation (no capture) model: in a 200m-spaced chain, node 4
// (600 m from node 1) cannot sense node 1's transmission to node 2 but is
// within interference range (400 m) of node 2, so node 4 transmitting
// concurrently corrupts the reception.
func TestHiddenTerminalCollisionNoCapture(t *testing.T) {
	positions := geo.Chain(7) // nodes 0..7
	sched, ch, recs := setup(t, positions)
	ch.NoCapture = true
	sched.At(0, func() { ch.Radio(1).Transmit("data", 5*time.Millisecond) })
	// Node 4 starts mid-reception: hidden from node 1, lethal at node 2.
	sched.At(2*time.Millisecond, func() { ch.Radio(4).Transmit("rts", time.Millisecond) })
	sched.Run()
	if len(recs[2].frames) != 0 {
		t.Fatal("node 2 decoded the frame despite hidden-terminal interference")
	}
	// Two errored ends: the corrupted decode and the interferer's noise.
	if recs[2].corrupted != 2 {
		t.Errorf("node 2 corrupted = %d, want 2", recs[2].corrupted)
	}
	// Node 5 decodes node 4's frame cleanly (node 1 is 800m from node 5,
	// beyond interference range).
	if len(recs[5].frames) != 1 {
		t.Errorf("node 5 frames = %v, want the rts", recs[5].frames)
	}
}

// TestCaptureStrongFrameSurvivesWeakInterference checks the ns-2 capture
// behaviour the default model uses: the 200m frame (16x the power of the
// 400m interferer, above the 10 dB threshold) survives.
func TestCaptureStrongFrameSurvivesWeakInterference(t *testing.T) {
	positions := geo.Chain(7)
	sched, ch, recs := setup(t, positions)
	sched.At(0, func() { ch.Radio(1).Transmit("data", 5*time.Millisecond) })
	sched.At(2*time.Millisecond, func() { ch.Radio(4).Transmit("rts", time.Millisecond) })
	sched.Run()
	if len(recs[2].frames) != 1 {
		t.Fatalf("node 2 frames = %v, want capture to save the strong frame", recs[2].frames)
	}
	// The captured interferer still counts one errored (noise) end.
	if recs[2].corrupted != 1 {
		t.Errorf("node 2 corrupted = %d, want 1 (noise end only)", recs[2].corrupted)
	}
}

// TestCaptureDoesNotSaveComparablePowers: equal-distance signals are within
// 10 dB of each other, so they still collide even with capture enabled.
func TestCaptureDoesNotSaveComparablePowers(t *testing.T) {
	// Receiver in the middle, both senders at 200m.
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 200}, {X: 400}})
	sched.At(0, func() { ch.Radio(0).Transmit("a", 2*time.Millisecond) })
	sched.At(time.Millisecond, func() { ch.Radio(2).Transmit("b", time.Millisecond) })
	sched.Run()
	if len(recs[1].frames) != 0 {
		t.Fatalf("node 1 decoded %v, want collision at comparable powers", recs[1].frames)
	}
	if recs[1].corrupted != 2 {
		t.Errorf("corrupted = %d, want 2 (both signals errored)", recs[1].corrupted)
	}
}

func TestSecondSignalDuringDecodeCorruptsBoth(t *testing.T) {
	// Three nodes mutually in tx range: 0 and 2 both transmit to 1.
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 200}, {X: 400}})
	sched.At(0, func() { ch.Radio(0).Transmit("a", time.Millisecond) })
	sched.At(500*time.Microsecond, func() { ch.Radio(2).Transmit("b", time.Millisecond) })
	sched.Run()
	if len(recs[1].frames) != 0 {
		t.Fatalf("node 1 decoded %v, want nothing (collision)", recs[1].frames)
	}
	if recs[1].corrupted != 2 {
		t.Errorf("corrupted indications = %d, want 2 (decode target + overlapping signal)", recs[1].corrupted)
	}
}

func TestDecodeRequiresIdleChannelAtStart(t *testing.T) {
	// Node 1 already senses energy from the 400m node when a decodable
	// frame arrives: receiver cannot sync, no decode.
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 200}, {X: 600}})
	// Node 2 is 400m from node 1 (sense only) and 600m from node 0.
	sched.At(0, func() { ch.Radio(2).Transmit("noise", 3*time.Millisecond) })
	sched.At(time.Millisecond, func() { ch.Radio(0).Transmit("data", time.Millisecond) })
	sched.Run()
	if len(recs[1].frames) != 0 {
		t.Error("node 1 decoded a frame that arrived on a busy channel")
	}
}

func TestHalfDuplexTxKillsDecode(t *testing.T) {
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 200}})
	sched.At(0, func() { ch.Radio(0).Transmit("data", 2*time.Millisecond) })
	sched.At(time.Millisecond, func() { ch.Radio(1).Transmit("own", 500*time.Microsecond) })
	sched.Run()
	if len(recs[1].frames) != 0 {
		t.Error("node decoded a frame while transmitting half-duplex")
	}
	if recs[1].corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", recs[1].corrupted)
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	sched, ch, _ := setup(t, []geo.Point{{X: 0}, {X: 200}})
	panicked := false
	sched.At(0, func() { ch.Radio(0).Transmit("a", time.Millisecond) })
	sched.At(100*time.Microsecond, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Radio(0).Transmit("b", time.Millisecond)
	})
	sched.Run()
	if !panicked {
		t.Error("double transmit did not panic")
	}
}

func TestPropagationDelayOrdersDelivery(t *testing.T) {
	sched, ch, recs := setup(t, []geo.Point{{X: 0}, {X: 150}})
	var deliveredAt sim.Time
	done := &recorder{}
	ch.Radio(1).SetHandler(done)
	_ = recs
	sched.At(0, func() { ch.Radio(0).Transmit("x", time.Millisecond) })
	sched.Run()
	// end-of-frame at 1ms + 150m/c = 1ms + 500ns
	deliveredAt = time.Millisecond + 500*time.Nanosecond
	_ = deliveredAt
	if len(done.frames) != 1 {
		t.Fatal("frame not delivered")
	}
}

func TestEnergyAccounting(t *testing.T) {
	sched, ch, _ := setup(t, []geo.Point{{X: 0}, {X: 200}})
	sched.At(0, func() { ch.Radio(0).Transmit("x", 2*time.Millisecond) })
	sched.Run()
	if got := ch.Radio(0).TxTime(); got != 2*time.Millisecond {
		t.Errorf("tx time = %v, want 2ms", got)
	}
	if got := ch.Radio(1).RxTime(); got != 2*time.Millisecond {
		t.Errorf("rx time = %v, want 2ms", got)
	}
}

func TestIdleQuery(t *testing.T) {
	sched, ch, _ := setup(t, []geo.Point{{X: 0}, {X: 200}})
	if !ch.Radio(1).Idle() {
		t.Error("radio not idle before any traffic")
	}
	sched.At(0, func() { ch.Radio(0).Transmit("x", time.Millisecond) })
	sched.At(500*time.Microsecond, func() {
		if ch.Radio(1).Idle() {
			t.Error("radio idle during reception")
		}
		if ch.Radio(0).Idle() {
			t.Error("transmitter idle during own transmission")
		}
	})
	sched.Run()
	if !ch.Radio(1).Idle() {
		t.Error("radio not idle after traffic drained")
	}
}

// scripted is a PositionModel driven by an explicit position function.
type scripted struct {
	n  int
	at func(i int, t sim.Time) geo.Point
}

func (m *scripted) Len() int                               { return m.n }
func (m *scripted) Static() bool                           { return false }
func (m *scripted) PositionAt(i int, t sim.Time) geo.Point { return m.at(i, t) }

func TestMobileChannelBreaksAndRestoresLink(t *testing.T) {
	// Node 1 walks out of carrier-sense range at 50ms and returns at 150ms.
	model := &scripted{n: 2, at: func(i int, at sim.Time) geo.Point {
		if i == 0 {
			return geo.Point{}
		}
		if at >= 50*time.Millisecond && at < 150*time.Millisecond {
			return geo.Point{X: 600}
		}
		return geo.Point{X: 200}
	}}
	sched := sim.NewScheduler(1)
	ch := NewMobileChannel(sched, model, 10*time.Millisecond)
	recs := []*recorder{{}, {}}
	ch.Radio(0).SetHandler(recs[0])
	ch.Radio(1).SetHandler(recs[1])

	sched.At(10*time.Millisecond, func() { ch.Radio(0).Transmit("near", time.Millisecond) })
	sched.At(100*time.Millisecond, func() { ch.Radio(0).Transmit("gone", time.Millisecond) })
	sched.At(200*time.Millisecond, func() { ch.Radio(0).Transmit("back", time.Millisecond) })
	sched.RunUntil(300 * time.Millisecond)

	want := []any{"near", "back"}
	if len(recs[1].frames) != 2 || recs[1].frames[0] != want[0] || recs[1].frames[1] != want[1] {
		t.Fatalf("node 1 frames = %v, want %v", recs[1].frames, want)
	}
	if !ch.Reachable(0, 1) {
		t.Error("nodes back in range not Reachable")
	}
}

func TestMobileChannelReachableTracksEpochs(t *testing.T) {
	model := &scripted{n: 2, at: func(i int, at sim.Time) geo.Point {
		if i == 0 {
			return geo.Point{}
		}
		// 5 m/s straight-line drift away along X from 200m.
		return geo.Point{X: 200 + 5*at.Seconds()}
	}}
	sched := sim.NewScheduler(1)
	ch := NewMobileChannel(sched, model, 100*time.Millisecond)
	ch.Radio(0).SetHandler(&recorder{})
	ch.Radio(1).SetHandler(&recorder{})
	if !ch.Reachable(0, 1) {
		t.Fatal("not reachable at 200m")
	}
	sched.RunUntil(30 * time.Second) // drifted to 350m > TxRange
	if ch.Reachable(0, 1) {
		t.Error("still Reachable at 350m")
	}
	if d := ch.Distance(0, 1); d < 349 || d > 351 {
		t.Errorf("Distance = %.1f, want ~350", d)
	}
}

// staticModel exercises the NewMobileChannel static fast path.
type staticModel struct{ pts []geo.Point }

func (m *staticModel) Len() int                               { return len(m.pts) }
func (m *staticModel) Static() bool                           { return true }
func (m *staticModel) PositionAt(i int, _ sim.Time) geo.Point { return m.pts[i] }

func TestMobileChannelStaticModelSchedulesNoEpochs(t *testing.T) {
	sched := sim.NewScheduler(1)
	ch := NewMobileChannel(sched, &staticModel{pts: []geo.Point{{X: 0}, {X: 200}}}, 0)
	recs := []*recorder{{}, {}}
	ch.Radio(0).SetHandler(recs[0])
	ch.Radio(1).SetHandler(recs[1])
	sched.At(0, func() { ch.Radio(0).Transmit("hello", time.Millisecond) })
	// Run (not RunUntil): the queue must drain — a static channel schedules
	// no recurring position epochs.
	sched.Run()
	if len(recs[1].frames) != 1 {
		t.Fatalf("frames = %v", recs[1].frames)
	}
	if sched.Now() > 2*time.Millisecond {
		t.Errorf("scheduler ran to %v; epoch events leaked", sched.Now())
	}
}

// TestGridNeighborsMatchBruteForce cross-checks the spatial-grid neighbor
// query against the O(n²) definition on a random placement.
func TestGridNeighborsMatchBruteForce(t *testing.T) {
	rng := sim.NewScheduler(7).Rand()
	pts := make([]geo.Point, 80)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 2500, Y: rng.Float64() * 1000}
	}
	sched := sim.NewScheduler(1)
	ch := NewChannel(sched, pts)
	for i := range pts {
		got := map[pkt.NodeID]bool{}
		for _, nb := range ch.neighborsOf(ch.Radio(pkt.NodeID(i))) {
			got[nb.radio.id] = true
		}
		for j := range pts {
			want := i != j && pts[i].Distance(pts[j]) <= CSRange
			if got[pkt.NodeID(j)] != want {
				t.Fatalf("node %d neighbor %d = %v, want %v", i, j, got[pkt.NodeID(j)], want)
			}
		}
	}
}
