package maporder

import (
	"sort"

	"simstub/sim"
)

func tick(_ any) {}

// scheduleAll schedules straight out of a map loop: event insertion order —
// and therefore tie-breaking between same-time events — becomes map-order
// dependent.
func scheduleAll(s *sim.Scheduler, deadlines map[int]sim.Time) {
	for _, t := range deadlines { // want `schedules events \(Scheduler\.AtFunc\)`
		s.AtFunc(t, tick, nil)
	}
}

// scheduleSorted is the fix: collect keys, sort, then schedule off the slice.
func scheduleSorted(s *sim.Scheduler, deadlines map[int]sim.Time) {
	ids := make([]int, 0, len(deadlines))
	for id := range deadlines {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.AtFunc(deadlines[id], tick, nil)
	}
}
