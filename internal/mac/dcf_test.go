package mac

import (
	"testing"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// macRig wires a set of DCFs over one channel and records deliveries and
// link failures per node.
type macRig struct {
	sched    *sim.Scheduler
	ch       *phy.Channel
	macs     []*DCF
	received [][]*pkt.Packet
	failures [][]*pkt.Packet
	uids     pkt.UIDSource
}

func newMacRig(t *testing.T, positions []geo.Point, rate phy.Rate, seed int64) *macRig {
	t.Helper()
	r := &macRig{
		sched:    sim.NewScheduler(seed),
		received: make([][]*pkt.Packet, len(positions)),
		failures: make([][]*pkt.Packet, len(positions)),
	}
	r.ch = phy.NewChannel(r.sched, positions)
	for i := range positions {
		i := i
		cb := Callbacks{
			Deliver:     func(p *pkt.Packet, _ pkt.NodeID) { r.received[i] = append(r.received[i], p) },
			LinkFailure: func(p *pkt.Packet, _ pkt.NodeID) { r.failures[i] = append(r.failures[i], p) },
		}
		r.macs = append(r.macs, New(r.sched, r.ch.Radio(pkt.NodeID(i)), Config{DataRate: rate}, cb))
	}
	return r
}

func (r *macRig) packet(src, dst pkt.NodeID, size int) *pkt.Packet {
	return &pkt.Packet{UID: r.uids.Next(), Kind: pkt.KindTCPData, Size: size, Src: src, Dst: dst}
}

func TestUnicastDelivery(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	p := r.packet(0, 1, 1500)
	r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
	r.sched.Run()
	if len(r.received[1]) != 1 || r.received[1][0] != p {
		t.Fatalf("node 1 received %v, want the packet", r.received[1])
	}
	c := r.macs[0].Counters
	if c.RTSSent != 1 || c.DataSent != 1 {
		t.Errorf("sender counters = %+v, want 1 RTS and 1 DATA", c)
	}
	rc := r.macs[1].Counters
	if rc.CTSSent != 1 || rc.AckSent != 1 {
		t.Errorf("receiver counters = %+v, want 1 CTS and 1 ACK", rc)
	}
	if len(r.failures[0]) != 0 {
		t.Error("unexpected link failure")
	}
}

func TestUnicastExchangeTiming(t *testing.T) {
	// With an idle medium the full exchange completes within
	// DIFS + maxBackoff + RTS+SIFS+CTS+SIFS+DATA+SIFS+ACK + slack.
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	p := r.packet(0, 1, 1500)
	var doneAt sim.Time
	cb := Callbacks{
		Deliver:     func(*pkt.Packet, pkt.NodeID) { doneAt = r.sched.Now() },
		LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
	}
	r.macs[1] = New(r.sched, r.ch.Radio(1), Config{DataRate: phy.Rate2Mbps}, cb)
	r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
	r.sched.Run()
	tm := NewTiming(phy.Rate2Mbps)
	// Delivery happens at end of DATA (before the ACK), so subtract the
	// trailing SIFS+ACK from the full exchange.
	minT := tm.ExchangeTime(1500) - tm.AckAir - SIFS - SIFS // no backoff, delivery before ack
	maxT := minT + 31*SlotTime + 100*time.Microsecond
	if doneAt == 0 || doneAt < minT-time.Millisecond || doneAt > maxT {
		t.Errorf("delivery at %v, want within [%v, %v]", doneAt, minT, maxT)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	// ns-2 semantics: the interface queue holds QueueCap packets plus one
	// in service at the MAC, so QueueCap+1 are accepted.
	const offered = DefaultQueueCap + 10
	r.sched.At(0, func() {
		okCount := 0
		for i := 0; i < offered; i++ {
			if r.macs[0].Enqueue(r.packet(0, 1, 1500), 1) {
				okCount++
			}
		}
		if okCount != DefaultQueueCap+1 {
			t.Errorf("accepted %d packets, want %d", okCount, DefaultQueueCap+1)
		}
	})
	r.sched.Run()
	if got := r.macs[0].Counters.QueueDrops; got != offered-DefaultQueueCap-1 {
		t.Errorf("queue drops = %d, want %d", got, offered-DefaultQueueCap-1)
	}
	if len(r.received[1]) != DefaultQueueCap+1 {
		t.Errorf("delivered %d, want %d", len(r.received[1]), DefaultQueueCap+1)
	}
}

func TestRetryExhaustionReportsLinkFailure(t *testing.T) {
	// Next hop at 400m: senses energy but can never decode the RTS, so
	// the sender exhausts ShortRetryLimit attempts and reports failure.
	r := newMacRig(t, []geo.Point{{X: 0}, {X: 400}}, phy.Rate2Mbps, 1)
	p := r.packet(0, 1, 1500)
	r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
	r.sched.Run()
	if len(r.failures[0]) != 1 || r.failures[0][0] != p {
		t.Fatalf("failures = %v, want the packet", r.failures[0])
	}
	c := r.macs[0].Counters
	if c.RTSSent != ShortRetryLimit {
		t.Errorf("RTS attempts = %d, want %d", c.RTSSent, ShortRetryLimit)
	}
	if c.RetryDrops != 1 {
		t.Errorf("retry drops = %d, want 1", c.RetryDrops)
	}
	if len(r.received[1]) != 0 {
		t.Error("undeliverable packet was delivered")
	}
}

func TestBackoffGrowsContentionWindow(t *testing.T) {
	r := newMacRig(t, []geo.Point{{X: 0}, {X: 400}}, phy.Rate2Mbps, 1)
	m := r.macs[0]
	if m.cw != CWMin {
		t.Fatalf("initial cw = %d, want %d", m.cw, CWMin)
	}
	p := r.packet(0, 1, 1500)
	r.sched.At(0, func() { m.Enqueue(p, 1) })
	r.sched.Run()
	// After the drop the CW resets.
	if m.cw != CWMin {
		t.Errorf("cw after drop = %d, want reset to %d", m.cw, CWMin)
	}
}

func TestGrowCWCapsAtMax(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	m := r.macs[0]
	for i := 0; i < 20; i++ {
		m.growCW()
	}
	if m.cw != CWMax {
		t.Errorf("cw = %d, want capped at %d", m.cw, CWMax)
	}
}

func TestBroadcastNoAckNoRetry(t *testing.T) {
	r := newMacRig(t, geo.Chain(2), phy.Rate2Mbps, 1)
	p := &pkt.Packet{UID: r.uids.Next(), Kind: pkt.KindRouting, Size: 64, Src: 1, Dst: pkt.Broadcast}
	r.sched.At(0, func() { r.macs[1].Enqueue(p, pkt.Broadcast) })
	r.sched.Run()
	// Both chain neighbors of node 1 receive it.
	if len(r.received[0]) != 1 || len(r.received[2]) != 1 {
		t.Fatalf("broadcast received by %d/%d, want 1/1", len(r.received[0]), len(r.received[2]))
	}
	c := r.macs[1].Counters
	if c.BcastSent != 1 || c.RTSSent != 0 {
		t.Errorf("counters = %+v, want pure broadcast", c)
	}
	if r.macs[0].Counters.AckSent != 0 {
		t.Error("broadcast must not be ACKed")
	}
}

// TestHiddenTerminalCausesRetries reproduces the paper's scenario: two
// senders out of carrier-sense range of each other transmitting to
// receivers within interference range. Collisions must occur and be
// resolved by MAC retries.
func TestHiddenTerminalCausesRetries(t *testing.T) {
	// 0 -> 1 and 3 -> 2: senders 0 and 3 are 600m apart (hidden), the
	// receivers sit between them.
	positions := []geo.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
	r := newMacRig(t, positions, phy.Rate2Mbps, 3)
	const n = 40
	r.sched.At(0, func() {
		for i := 0; i < n; i++ {
			r.macs[0].Enqueue(r.packet(0, 1, 1500), 1)
			r.macs[3].Enqueue(r.packet(3, 2, 1500), 2)
		}
	})
	r.sched.Run()
	retries := r.macs[0].Counters.Retries + r.macs[3].Counters.Retries
	if retries == 0 {
		t.Error("hidden terminals produced zero retries; collision model inactive?")
	}
	// Despite collisions, most traffic eventually gets through.
	if len(r.received[1]) < n/2 || len(r.received[2]) < n/2 {
		t.Errorf("delivered %d and %d of %d; excessive loss", len(r.received[1]), len(r.received[2]), n)
	}
}

// TestCarrierSenseSerializesNeighbors: two senders in carrier-sense range
// sharing a receiver must interleave without a single retry drop.
func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	positions := []geo.Point{{X: 0}, {X: 200}, {X: 400}}
	r := newMacRig(t, positions, phy.Rate2Mbps, 5)
	const n = 30
	r.sched.At(0, func() {
		for i := 0; i < n; i++ {
			r.macs[0].Enqueue(r.packet(0, 1, 1500), 1)
			r.macs[2].Enqueue(r.packet(2, 1, 1500), 1)
		}
	})
	r.sched.Run()
	if got := len(r.received[1]); got != 2*n {
		t.Errorf("delivered %d, want %d", got, 2*n)
	}
	drops := r.macs[0].Counters.RetryDrops + r.macs[2].Counters.RetryDrops
	if drops != 0 {
		t.Errorf("retry drops = %d, want 0 for carrier-sensing neighbors", drops)
	}
}

func TestDuplicateSuppressionAtReceiver(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	p := r.packet(0, 1, 1500)
	// Simulate a MAC-level duplicate by delivering the same UID twice
	// through the receive path.
	f := &Frame{Type: FrameData, From: 0, To: 1, Payload: p}
	r.sched.At(0, func() {
		r.macs[1].onData(f, 0)
		r.macs[1].onData(f, 0)
	})
	r.sched.Run()
	if len(r.received[1]) != 1 {
		t.Fatalf("delivered %d copies, want 1", len(r.received[1]))
	}
	if r.macs[1].Counters.DupsSuppressed != 1 {
		t.Errorf("dups suppressed = %d, want 1", r.macs[1].Counters.DupsSuppressed)
	}
}

func TestFilterQueue(t *testing.T) {
	r := newMacRig(t, geo.Chain(2), phy.Rate2Mbps, 1)
	m := r.macs[0]
	// Stuff the queue without running the scheduler.
	for i := 0; i < 5; i++ {
		m.Enqueue(r.packet(0, 2, 1500), 1)
	}
	for i := 0; i < 3; i++ {
		m.Enqueue(r.packet(0, 2, 1500), 2)
	}
	removed := m.FilterQueue(func(_ *pkt.Packet, nh pkt.NodeID) bool { return nh != 2 })
	if len(removed) != 3 {
		t.Errorf("removed %d packets, want 3", len(removed))
	}
	// 5 to next-hop 1 minus the one already in service.
	if m.QueueLen() != 4 {
		t.Errorf("queue len = %d, want 4", m.QueueLen())
	}
}

func TestNAVBlocksContention(t *testing.T) {
	r := newMacRig(t, geo.Chain(2), phy.Rate2Mbps, 1)
	m := r.macs[2]
	r.sched.At(0, func() {
		// Node 2 overhears a CTS (not addressed to it) reserving 5ms.
		f := &Frame{Type: FrameCTS, From: 1, To: 0, Duration: 5 * time.Millisecond}
		m.RxFrame(f, 1)
		m.Enqueue(r.packet(2, 1, 1500), 1)
	})
	var deliveredAt sim.Time
	cb := Callbacks{
		Deliver:     func(*pkt.Packet, pkt.NodeID) { deliveredAt = r.sched.Now() },
		LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
	}
	r.macs[1] = New(r.sched, r.ch.Radio(1), Config{DataRate: phy.Rate2Mbps}, cb)
	r.sched.Run()
	if deliveredAt < 5*time.Millisecond {
		t.Errorf("delivery at %v, want after the 5ms NAV reservation", deliveredAt)
	}
}

func TestRTSNotAnsweredUnderNAV(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	m := r.macs[1]
	r.sched.At(0, func() {
		// NAV set by an overheard frame...
		m.RxFrame(&Frame{Type: FrameCTS, From: 9, To: 8, Duration: 10 * time.Millisecond}, 0)
		// ...then an RTS addressed to us arrives: must not CTS.
		m.onRTS(&Frame{Type: FrameRTS, From: 0, To: 1, Duration: 8 * time.Millisecond}, 0)
	})
	r.sched.RunUntil(2 * time.Millisecond)
	if m.Counters.CTSSent != 0 {
		t.Error("CTS sent despite NAV reservation")
	}
}

func TestEnqueueAfterIdlePeriodStillWorks(t *testing.T) {
	r := newMacRig(t, geo.Chain(1), phy.Rate2Mbps, 1)
	r.sched.At(0, func() { r.macs[0].Enqueue(r.packet(0, 1, 1500), 1) })
	r.sched.At(time.Second, func() { r.macs[0].Enqueue(r.packet(0, 1, 1500), 1) })
	r.sched.Run()
	if len(r.received[1]) != 2 {
		t.Errorf("delivered %d, want 2", len(r.received[1]))
	}
}

func TestMissingCallbacksPanic(t *testing.T) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, geo.Chain(1))
	defer func() {
		if recover() == nil {
			t.Error("nil callbacks did not panic")
		}
	}()
	New(sched, ch.Radio(0), Config{DataRate: phy.Rate2Mbps}, Callbacks{})
}

// TestChainForwardingPipelining pushes packets across a 4-hop chain of
// forwarding MACs, exercising NAV, EIFS and inter-hop contention.
func TestChainForwardingPipelining(t *testing.T) {
	positions := geo.Chain(4)
	r := newMacRig(t, positions, phy.Rate2Mbps, 7)
	// Wire static forwarding: node i forwards to i+1.
	for i := 0; i <= 3; i++ {
		i := i
		cb := Callbacks{
			Deliver: func(p *pkt.Packet, _ pkt.NodeID) {
				if pkt.NodeID(i) == p.Dst {
					r.received[i] = append(r.received[i], p)
					return
				}
				r.macs[i].Enqueue(p, pkt.NodeID(i+1))
			},
			LinkFailure: func(p *pkt.Packet, _ pkt.NodeID) { r.failures[i] = append(r.failures[i], p) },
		}
		r.macs[i] = New(r.sched, r.ch.Radio(pkt.NodeID(i)), Config{DataRate: phy.Rate2Mbps}, cb)
	}
	// Rebuild node 4 (sink).
	cb4 := Callbacks{
		Deliver:     func(p *pkt.Packet, _ pkt.NodeID) { r.received[4] = append(r.received[4], p) },
		LinkFailure: func(p *pkt.Packet, _ pkt.NodeID) {},
	}
	r.macs[4] = New(r.sched, r.ch.Radio(4), Config{DataRate: phy.Rate2Mbps}, cb4)

	const n = 20
	r.sched.At(0, func() {
		for i := 0; i < n; i++ {
			r.macs[0].Enqueue(r.packet(0, 4, 1500), 1)
		}
	})
	r.sched.Run()
	if got := len(r.received[4]); got < n-2 {
		t.Errorf("sink received %d of %d packets", got, n)
	}
}
