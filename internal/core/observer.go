package core

import (
	"time"

	"manetsim/internal/pkt"
)

// Observer receives run events from a simulation in progress. All methods
// are invoked synchronously from inside the single-threaded event loop, so
// implementations must not block and must not call back into the run; they
// may safely accumulate state without locking. Attaching an observer adds
// only rare-path callbacks (batch boundaries, retransmissions, route
// failures) — with no observer attached the run is byte-identical and
// allocation-free, preserving the zero-alloc kernel.
type Observer interface {
	// OnBatch is called when a measurement batch closes. The batch's
	// slices are owned by the result; treat them as read-only.
	OnBatch(b Batch)
	// OnWindowSample reports a flow's time-averaged congestion window over
	// the batch that just closed (zero for UDP flows).
	OnWindowSample(flow int, window float64)
	// OnRetransmit fires for every transport-layer retransmission.
	OnRetransmit(flow int)
	// OnRouteFailure fires for every classified AODV route teardown at
	// node. falseFailure follows the paper's definition: the MAC gave up
	// on a link that was actually healthy.
	OnRouteFailure(node pkt.NodeID, falseFailure bool)
	// OnProgress reports cumulative delivery after each batch boundary.
	OnProgress(delivered, total int64, simTime time.Duration)
}

// ObserverFuncs adapts a set of optional callbacks to the Observer
// interface; nil fields are skipped. The zero value observes nothing.
type ObserverFuncs struct {
	Batch        func(b Batch)
	WindowSample func(flow int, window float64)
	Retransmit   func(flow int)
	RouteFailure func(node pkt.NodeID, falseFailure bool)
	Progress     func(delivered, total int64, simTime time.Duration)
}

// OnBatch implements Observer.
func (o ObserverFuncs) OnBatch(b Batch) {
	if o.Batch != nil {
		o.Batch(b)
	}
}

// OnWindowSample implements Observer.
func (o ObserverFuncs) OnWindowSample(flow int, window float64) {
	if o.WindowSample != nil {
		o.WindowSample(flow, window)
	}
}

// OnRetransmit implements Observer.
func (o ObserverFuncs) OnRetransmit(flow int) {
	if o.Retransmit != nil {
		o.Retransmit(flow)
	}
}

// OnRouteFailure implements Observer.
func (o ObserverFuncs) OnRouteFailure(node pkt.NodeID, falseFailure bool) {
	if o.RouteFailure != nil {
		o.RouteFailure(node, falseFailure)
	}
}

// OnProgress implements Observer.
func (o ObserverFuncs) OnProgress(delivered, total int64, simTime time.Duration) {
	if o.Progress != nil {
		o.Progress(delivered, total, simTime)
	}
}
