package core

import (
	"math"
	"testing"
	"time"

	"manetsim/internal/pkt"
)

func mkBatch(durMS int, pkts ...int64) Batch {
	b := Batch{
		Start:          0,
		End:            time.Duration(durMS) * time.Millisecond,
		PerFlowPackets: pkts,
		PerFlowRtx:     make([]uint64, len(pkts)),
		PerFlowWindow:  make([]float64, len(pkts)),
	}
	return b
}

func TestBatchGoodputComputation(t *testing.T) {
	// 100 packets in 1 s = 100 * 1460 * 8 bit/s.
	b := mkBatch(1000, 100)
	g := b.PerFlowGoodput()
	want := 100.0 * pkt.TCPPayloadSize * 8
	if math.Abs(g[0]-want) > 1e-6 {
		t.Errorf("goodput = %v, want %v", g[0], want)
	}
	if math.Abs(b.AggregateGoodput()-want) > 1e-6 {
		t.Errorf("aggregate = %v, want %v", b.AggregateGoodput(), want)
	}
}

func TestBatchZeroDuration(t *testing.T) {
	b := mkBatch(0, 100)
	if b.AggregateGoodput() != 0 {
		t.Error("zero-duration batch should report zero goodput")
	}
}

func TestBatchRtxPerDelivered(t *testing.T) {
	b := mkBatch(1000, 100, 200)
	b.PerFlowRtx = []uint64{10, 10}
	// (10/100 + 10/200)/2 = 0.075
	if got := b.RtxPerDelivered(); math.Abs(got-0.075) > 1e-9 {
		t.Errorf("rtx per delivered = %v, want 0.075", got)
	}
	// Starved flows are excluded, not divided by zero.
	b2 := mkBatch(1000, 100, 0)
	b2.PerFlowRtx = []uint64{10, 5}
	if got := b2.RtxPerDelivered(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("rtx with starved flow = %v, want 0.1", got)
	}
}

func TestBatchJainAndWindow(t *testing.T) {
	b := mkBatch(1000, 300, 100)
	b.PerFlowWindow = []float64{4, 8}
	if got := b.MeanWindow(); got != 6 {
		t.Errorf("mean window = %v, want 6", got)
	}
	// Jain of (300,100)-proportional goodputs: (400)^2/(2*(90000+10000)) = 0.8
	if got := b.Jain(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("jain = %v, want 0.8", got)
	}
}

func TestBatchDropProbability(t *testing.T) {
	b := mkBatch(1000, 10)
	b.MACDrops, b.MACSubmitted = 5, 100
	if got := b.DropProbability(); got != 0.05 {
		t.Errorf("drop probability = %v, want 0.05", got)
	}
	b.MACSubmitted = 0
	if b.DropProbability() != 0 {
		t.Error("zero attempts should report zero probability")
	}
}

func TestResultAggregateAcrossBatches(t *testing.T) {
	r := &Result{
		Flows: []Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}},
	}
	for i := 0; i < 10; i++ {
		b := mkBatch(1000, 100, 100)
		b.FalseRouteFailures = 2
		r.Batches = append(r.Batches, b)
	}
	r.aggregate()
	if r.FalseRouteFailures != 20 {
		t.Errorf("frf total = %d, want 20", r.FalseRouteFailures)
	}
	if r.AggGoodput.N != 10 {
		t.Errorf("goodput estimate over %d batches, want 10", r.AggGoodput.N)
	}
	if len(r.PerFlowGood) != 2 {
		t.Fatalf("per-flow estimates = %d, want 2", len(r.PerFlowGood))
	}
	// Identical flows: perfect fairness with zero-width CI.
	if r.Jain.Mean != 1 || r.Jain.HalfCI != 0 {
		t.Errorf("jain = %+v, want exactly 1", r.Jain)
	}
}

func TestResultAggregateEmptyBatchesIsNoop(t *testing.T) {
	r := &Result{}
	r.aggregate() // must not panic
	if r.AggGoodput.N != 0 {
		t.Error("empty aggregate produced estimates")
	}
}
