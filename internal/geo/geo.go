// Package geo provides node placement and the three topologies evaluated in
// the paper: the equally spaced h-hop chain, the 21-node grid with six
// crossing flows (Figure 15), and the 120-node uniform random topology on a
// 2500x1000 m² area.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position on the plane, in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in meters.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.0f,%.0f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle on the plane, used to bound mobility
// fields. Min and Max are opposite corners with Min.X <= Max.X and
// Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside the rectangle (borders included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	p.X = math.Min(math.Max(p.X, r.Min.X), r.Max.X)
	p.Y = math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y)
	return p
}

// Bounds returns the bounding box of the given points. A degenerate box
// (zero width or height) is possible and valid — a chain's bounding box is
// a line segment.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// NodeSpacing is the inter-node distance used by the paper's chain and grid
// topologies (meters).
const NodeSpacing = 200.0

// Chain returns the positions of an h-hop chain: h+1 nodes spaced 200 m on
// a line. Node 0 is the TCP sender's host, node h the receiver's.
func Chain(hops int) []Point {
	if hops < 1 {
		panic(fmt.Sprintf("geo: chain needs at least 1 hop, got %d", hops))
	}
	pts := make([]Point, hops+1)
	for i := range pts {
		pts[i] = Point{X: float64(i) * NodeSpacing}
	}
	return pts
}

// GridFlow names a directed flow between grid node indices.
type GridFlow struct {
	Src, Dst int
}

// Grid21 returns the paper's 21-node grid (Figure 15) and its six
// competing FTP flows (three horizontal rows left→right, three vertical
// columns top→bottom). Nodes are laid out in a 7x3 lattice with 200 m
// spacing: index = row*7 + col, row 0 at the top.
func Grid21() ([]Point, []GridFlow) {
	const cols, rows = 7, 3
	pts := make([]Point, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * NodeSpacing, Y: float64(r) * NodeSpacing})
		}
	}
	flows := []GridFlow{
		// FTP1..FTP3: horizontal, one per row.
		{Src: 0, Dst: 6},
		{Src: 7, Dst: 13},
		{Src: 14, Dst: 20},
		// FTP4..FTP6: vertical, down columns 1, 3 and 5 (0-based).
		{Src: 1, Dst: 15},
		{Src: 3, Dst: 17},
		{Src: 5, Dst: 19},
	}
	return pts, flows
}

// RandomConfig describes a uniform random topology.
type RandomConfig struct {
	N      int     // number of nodes (paper: 120)
	Width  float64 // area width in meters (paper: 2500)
	Height float64 // area height in meters (paper: 1000)
	Range  float64 // radio transmission range used for the connectivity check (paper: 250)
}

// Random places cfg.N nodes uniformly at random, resampling until the
// topology is connected under cfg.Range (the paper cites Bettstetter's
// P=99.9% connectivity criterion; resampling makes it exact). It returns
// the accepted placement and the number of attempts used.
func Random(cfg RandomConfig, rng *rand.Rand) ([]Point, int) {
	if cfg.N < 2 {
		panic(fmt.Sprintf("geo: random topology needs >=2 nodes, got %d", cfg.N))
	}
	if cfg.Range <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		panic("geo: random topology needs positive range and area")
	}
	for attempt := 1; ; attempt++ {
		pts := make([]Point, cfg.N)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		}
		if Connected(pts, cfg.Range) {
			return pts, attempt
		}
	}
}

// Connected reports whether the unit-disk graph over pts with the given
// radio range is connected.
func Connected(pts []Point, radioRange float64) bool {
	n := len(pts)
	if n == 0 {
		return false
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < n; v++ {
			if !visited[v] && pts[u].Distance(pts[v]) <= radioRange {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Neighbors returns, for each node, the indices of all other nodes within
// the given range, in ascending index order. It is used to precompute both
// transmission (250 m) and carrier-sense/interference (550 m) neighbor
// sets.
func Neighbors(pts []Point, within float64) [][]int {
	n := len(pts)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && pts[i].Distance(pts[j]) <= within {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// PickFlows selects k distinct random (src, dst) pairs with src != dst for
// the random-topology experiment. Endpoints may appear in several flows,
// matching the paper's "sources and destinations randomly selected".
func PickFlows(n, k int, rng *rand.Rand) []GridFlow {
	if n < 2 {
		panic("geo: PickFlows needs >=2 nodes")
	}
	flows := make([]GridFlow, 0, k)
	used := make(map[[2]int]bool, k)
	for len(flows) < k {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		key := [2]int{s, d}
		if used[key] {
			continue
		}
		used[key] = true
		flows = append(flows, GridFlow{Src: s, Dst: d})
	}
	return flows
}
