package tcp

import (
	"fmt"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
)

// AckPolicy selects how the sink generates acknowledgments.
type AckPolicy int

const (
	// AckEveryPacket acknowledges each in-order arrival immediately
	// (ns-2's default TCPSink; the paper's baseline).
	AckEveryPacket AckPolicy = iota
	// AckDelayed is the standard RFC 1122 delayed ACK: every second
	// packet, bounded by the regeneration timeout.
	AckDelayed
	// AckThinning is the Altman-Jiménez dynamic scheme evaluated by the
	// paper.
	AckThinning
)

func (p AckPolicy) String() string {
	switch p {
	case AckEveryPacket:
		return "every-packet"
	case AckDelayed:
		return "delayed"
	case AckThinning:
		return "thinning"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Dynamic ACK thinning thresholds of Altman & Jiménez as fixed by the
// paper (Section 3.2): the sink acknowledges every d-th packet where d
// ramps 1→4 as the received sequence number n passes S1, S2 and S3, backed
// by a 100 ms ACK-regeneration timeout that prevents sender stalls.
const (
	ThinningS1 = 2
	ThinningS2 = 5
	ThinningS3 = 9

	AckRegenTimeout = 100 * time.Millisecond
)

// ThinningDegree returns d for a received packet with sequence number n
// (packet granularity). Boundary values follow the paper: d=1 if n ≤ S1−1,
// then d=2 up to S2−1, d=3 up to S3−1, and d=4 from S3 on.
func ThinningDegree(n int64) int {
	switch {
	case n < ThinningS1:
		return 1
	case n < ThinningS2:
		return 2
	case n < ThinningS3:
		return 3
	default:
		return 4
	}
}

// SinkStats counts receiver-side events. GoodputPackets advances only on
// new in-order data, so retransmitted duplicates never inflate goodput.
type SinkStats struct {
	GoodputPackets int64 // cumulative first-time, in-order packets
	Duplicates     uint64
	OutOfOrder     uint64
	AcksSent       uint64
	RegenTimeouts  uint64
}

// Sink is the TCP receiver: it reassembles the in-order stream, generates
// cumulative ACKs under the configured policy, and accounts goodput.
type Sink struct {
	sched *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the sink
	out   Output
	uids  *pkt.UIDSource //manetsim:resetsafe pool binding; the pool resets itself

	flow     int
	src, dst pkt.NodeID // src = this sink's node, dst = the sender

	policy AckPolicy

	rcvNext int64
	buffer  map[int64]bool // out-of-order packets above rcvNext

	pending    int      // in-order packets received but not yet ACKed
	lastTS     sim.Time // SentAt of the most recent pending arrival
	regenTimer *sim.Timer
	// lastRtx is the Retransmit flag of the most recent data arrival,
	// copied out of the header: packets are pooled, so holding the header
	// pointer across events would read recycled memory.
	lastRtx      bool
	statsCurrent SinkStats

	// Delay, when set, records the end-to-end latency of every packet
	// that advances the in-order stream.
	Delay *stats.DurationHistogram
}

// NewSink creates a receiver for one flow. src is the sink's own node id,
// dst the sender's (where ACKs go).
func NewSink(sched *sim.Scheduler, flow int, src, dst pkt.NodeID, policy AckPolicy, uids *pkt.UIDSource, out Output) *Sink {
	if out == nil {
		panic("tcp: nil output")
	}
	s := &Sink{
		sched:  sched,
		out:    out,
		uids:   uids,
		flow:   flow,
		src:    src,
		dst:    dst,
		policy: policy,
		buffer: make(map[int64]bool),
	}
	s.regenTimer = sim.NewTimer(sched, s.onRegenTimeout)
	return s
}

// Reset rebinds the sink to a new run, keeping the buffer map and the
// regeneration timer. The flow identity and output are taken fresh for the
// same reason as Engine.Reset; the Delay hook is cleared for the owner to
// reinstall. Call after the scheduler was reset.
func (s *Sink) Reset(flow int, src, dst pkt.NodeID, policy AckPolicy, out Output) {
	if out == nil {
		panic("tcp: nil output")
	}
	s.out = out
	s.flow = flow
	s.src = src
	s.dst = dst
	s.policy = policy
	s.rcvNext = 0
	clear(s.buffer)
	s.pending = 0
	s.lastTS = 0
	s.regenTimer.Stop()
	s.lastRtx = false
	s.statsCurrent = SinkStats{}
	s.Delay = nil
}

// Halt suspends a sink whose host node crashed: the ACK-regeneration
// timer stops and the delayed-ACK aggregation state is dropped.
// Reassembly state (rcvNext, the out-of-order buffer) survives the
// outage, so a restarted node resumes the stream where it left off —
// the next data arrival re-triggers ACK generation, no Resume needed.
func (s *Sink) Halt() {
	s.regenTimer.Stop()
	s.pending = 0
}

// Stats snapshots receiver counters.
func (s *Sink) Stats() SinkStats { return s.statsCurrent }

// RcvNext returns the next expected sequence number.
func (s *Sink) RcvNext() int64 { return s.rcvNext }

// HandleData processes an arriving data packet.
func (s *Sink) HandleData(p *pkt.Packet) {
	h := p.TCP
	if h == nil {
		return
	}
	s.lastRtx = h.Retransmit
	switch {
	case h.Seq == s.rcvNext:
		if s.Delay != nil {
			s.Delay.Add(s.sched.Now() - h.SentAt)
		}
		s.rcvNext++
		s.statsCurrent.GoodputPackets++
		for s.buffer[s.rcvNext] {
			delete(s.buffer, s.rcvNext)
			s.rcvNext++
			s.statsCurrent.GoodputPackets++
		}
		s.onInOrder(h)
	case h.Seq < s.rcvNext:
		// Duplicate of already-delivered data: immediate ACK.
		s.statsCurrent.Duplicates++
		s.sendAck(h.SentAt)
	default:
		// Gap: buffer and emit an immediate duplicate ACK.
		s.statsCurrent.OutOfOrder++
		if !s.buffer[h.Seq] {
			s.buffer[h.Seq] = true
		} else {
			s.statsCurrent.Duplicates++
		}
		s.flushPendingEcho()
		s.sendAck(h.SentAt)
	}
}

// onInOrder applies the ACK policy to newly in-order data. Delayed
// policies acknowledge "every d-th packet" by sequence number (the packet
// whose 1-based number is a multiple of d), exactly as Altman & Jiménez
// describe — not after d pending arrivals. The distinction matters: with a
// window smaller than d, sequence-based ACKing still produces periodic
// immediate ACKs (whenever the window spans a multiple of d), which keeps
// clean RTT samples flowing and lets Vegas grow back out of the stall
// regime instead of pinning at the window floor.
func (s *Sink) onInOrder(h *pkt.TCPHeader) {
	if s.policy == AckEveryPacket {
		s.sendAck(h.SentAt)
		return
	}
	// Echo the timestamp of the packet that triggers the ACK, as
	// ns-2-era TCP does with its per-segment send times; echoing the
	// earliest pending timestamp would fold the aggregation wait into
	// every RTT sample.
	s.lastTS = h.SentAt
	s.pending++
	d := int64(2) // AckDelayed: standard every-second-packet
	if s.policy == AckThinning {
		d = int64(ThinningDegree(h.Seq))
	}
	if (h.Seq+1)%d == 0 {
		s.ackPending()
		return
	}
	if !s.regenTimer.Pending() {
		s.regenTimer.Reset(AckRegenTimeout)
	}
}

// ackPending emits the cumulative ACK covering all pending packets.
func (s *Sink) ackPending() {
	ts := s.lastTS
	s.pending = 0
	s.regenTimer.Stop()
	s.sendAckOpt(ts, false)
}

// flushPendingEcho drops the delayed-ACK state when an out-of-order
// arrival forces an immediate duplicate ACK.
func (s *Sink) flushPendingEcho() {
	if s.pending > 0 {
		s.ackPending()
	}
}

// onRegenTimeout fires when fewer than d packets arrived within the
// regeneration window: ACK whatever is pending so the sender keeps moving
// (the stall the paper analyses for Vegas-with-thinning at small windows).
func (s *Sink) onRegenTimeout() {
	if s.pending == 0 {
		return
	}
	s.statsCurrent.RegenTimeouts++
	// The regeneration ACK was not triggered by a data arrival, so its
	// timestamp would fold the stall wait into the sender's RTT estimate;
	// mark it no-echo (Karn's rule for ambiguous samples). Without this,
	// Vegas with thinning reads its own ACK stalls as congestion and
	// spirals into a 2-packet window.
	ts := s.lastTS
	s.pending = 0
	s.regenTimer.Stop()
	s.sendAckOpt(ts, true)
}

// sendAck emits a cumulative ACK echoing the given data timestamp.
func (s *Sink) sendAck(echo sim.Time) { s.sendAckOpt(echo, false) }

func (s *Sink) sendAckOpt(echo sim.Time, noEcho bool) {
	s.statsCurrent.AcksSent++
	p := s.uids.NewTCP()
	p.Kind = pkt.KindTCPAck
	p.Size = pkt.TCPAckSize
	p.Src = s.src
	p.Dst = s.dst
	p.TTL = 64
	p.TCP.Flow = s.flow
	p.TCP.Ack = s.rcvNext
	p.TCP.SentAt = echo
	p.TCP.NoEcho = noEcho
	// Echo whether the triggering data packet was a retransmission so the
	// sender can apply Karn's rule to the RTT sample.
	p.TCP.Retransmit = s.lastRtx
	s.out(p)
}
