package manetsim_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"manetsim"
)

// TestWestwoodBeatsRenoUnderUniformLoss is the headline acceptance gate
// of the link-impairment subsystem: in the random-loss regime the paper's
// congestion-control argument predicts, a bandwidth-estimating sender
// must separate from blind-halving Reno with statistical confidence. A
// full Sweep at 1% uniform frame loss on the 7-hop chain, replicated
// over five seeds, must put Westwood+'s goodput above Reno's with
// non-overlapping 95% confidence intervals.
func TestWestwoodBeatsRenoUnderUniformLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	c := manetsim.NewCampaign(manetsim.QuickScale)
	cells, err := c.Sweep(t.Context(), manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(7)},
		Transports: []manetsim.TransportSpec{{Name: "reno"}, {Name: "westwood"}},
		LinkModels: []manetsim.LinkModelSpec{manetsim.UniformLossModel(0.01)},
		Seeds:      []int64{1, 2, 3, 4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reno, westwood := cells[0], cells[1]
	if reno.Transport.Name != "reno" || westwood.Transport.Name != "westwood" {
		t.Fatalf("unexpected grid order: %q, %q", reno.Transport.Name, westwood.Transport.Name)
	}
	for _, cell := range cells {
		for _, run := range cell.Runs {
			if run.ImpairedFrames == 0 {
				t.Fatalf("%s run impaired no frames at 1%% loss", cell.Transport.Label())
			}
		}
	}
	t.Logf("reno %.1f [%.1f:%.1f] kb/s, westwood+ %.1f [%.1f:%.1f] kb/s",
		reno.Goodput.Mean/1e3, reno.Goodput.Lo()/1e3, reno.Goodput.Hi()/1e3,
		westwood.Goodput.Mean/1e3, westwood.Goodput.Lo()/1e3, westwood.Goodput.Hi()/1e3)
	if westwood.Goodput.Lo() <= reno.Goodput.Hi() {
		t.Errorf("intervals overlap: westwood+ [%.0f:%.0f] vs reno [%.0f:%.0f] bit/s",
			westwood.Goodput.Lo(), westwood.Goodput.Hi(), reno.Goodput.Lo(), reno.Goodput.Hi())
	}
}

// impairedSweep is the small lossy grid the determinism tests run:
// bursty Gilbert-Elliott loss with jitter against uniform loss, two
// seeds, on a short chain at an explicit tiny budget.
func impairedSweep() manetsim.Sweep {
	ge := manetsim.GilbertElliottModel(0.02, 0.3, 0.5)
	ge.Jitter = 20 * time.Microsecond
	return manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(2)},
		Transports: []manetsim.TransportSpec{{Name: "newreno"}},
		LinkModels: []manetsim.LinkModelSpec{ge, manetsim.UniformLossModel(0.03)},
		Seeds:      []int64{1, 2},
		Base:       manetsim.Config{TotalPackets: 550, BatchPackets: 50},
	}
}

func marshalCells(t *testing.T, cells []manetsim.Cell) string {
	t.Helper()
	b, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestImpairedSweepStoreResumeByteIdentical runs an impaired sweep
// through the persistent store twice: the resumed sweep must execute
// zero simulations and reproduce the first pass byte for byte.
func TestImpairedSweepStoreResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	first := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithStore(dir))
	a, err := first.Sweep(t.Context(), impairedSweep())
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed() == 0 {
		t.Fatal("first pass executed nothing")
	}
	second := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithStore(dir))
	b, err := second.Sweep(t.Context(), impairedSweep())
	if err != nil {
		t.Fatal(err)
	}
	if n := second.Executed(); n != 0 {
		t.Errorf("resumed impaired sweep executed %d simulations, want 0", n)
	}
	if marshalCells(t, a) != marshalCells(t, b) {
		t.Error("store-resumed impaired sweep differs from the original")
	}
}

// TestImpairedSweepServedByteIdentical submits the impaired grid to a
// running server and requires the HTTP results to match a direct
// Campaign.Sweep byte for byte — the serve path adds no nondeterminism
// on top of the impaired simulator.
func TestImpairedSweepServedByteIdentical(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithWorkers(2))
	ts := httptest.NewServer(manetsim.NewServer(campaign))
	defer ts.Close()

	id := postSweep(t, ts, impairedSweep())
	// The events stream blocks until the job ends; draining it is the
	// synchronization.
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var got struct {
		State string          `json:"state"`
		Cells json.RawMessage `json:"cells"`
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id+"/results", http.StatusOK, &got)
	if got.State != "done" {
		t.Fatalf("results state %q", got.State)
	}
	direct := manetsim.NewCampaign(manetsim.BenchScale)
	cells, err := direct.Sweep(t.Context(), impairedSweep())
	if err != nil {
		t.Fatal(err)
	}
	var gotNorm, wantNorm bytes.Buffer
	if err := json.Compact(&gotNorm, got.Cells); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantNorm, []byte(marshalCells(t, cells))); err != nil {
		t.Fatal(err)
	}
	if gotNorm.String() != wantNorm.String() {
		t.Error("served impaired results differ from a direct Campaign.Sweep")
	}
}
