module manetsim

go 1.23
