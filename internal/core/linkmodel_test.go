package core

import (
	"math"
	"strings"
	"testing"
	"time"
)

// --- LinkModelSpec validation: one distinct, actionable message per
// rejected parameter (mirrors the transport-spec validation tests).

func TestValidateUnknownLinkModel(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "fog"}
	wantError(t, cfg, `unknown link model "fog"`, "registered:", "uniform")
}

func TestUnknownLinkModelMatchesTransportErrorShape(t *testing.T) {
	// Satellite requirement: unknown model names surface with the same
	// error shape as unknown transports — core: unknown <kind> "<name>"
	// (registered: a, b, ...).
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "fog"}
	_, lmErr := Run(cfg)
	cfg = validChain()
	cfg.Transport = TransportSpec{Name: "fog"}
	_, trErr := Run(cfg)
	if lmErr == nil || trErr == nil {
		t.Fatalf("expected both errors, got %v / %v", lmErr, trErr)
	}
	lm := strings.Replace(lmErr.Error(), "link model", "transport", 1)
	prefix := func(s string) string { return strings.SplitAfter(s, "(registered: ")[0] }
	if prefix(lm) != prefix(trErr.Error()) {
		t.Errorf("error shapes diverge:\n  link model: %v\n  transport:  %v", lmErr, trErr)
	}
}

func TestValidateNegativeLossRate(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "uniform", LossRate: -0.1}
	wantError(t, cfg, "Config.LinkModel", "LossRate -0.1 outside [0,1]")
}

func TestValidateNaNLossRate(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "uniform", LossRate: math.NaN()}
	wantError(t, cfg, "LossRate NaN outside [0,1]")
}

func TestValidateLossRateAboveOne(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "uniform", LossRate: 1.5}
	wantError(t, cfg, "LossRate 1.5 outside [0,1]")
}

func TestValidateBERWithoutFrameBits(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "ber", BER: 1e-5}
	wantError(t, cfg, "FrameBits > 0", "frame length")
}

func TestValidateNegativeFrameBits(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "ber", BER: 1e-5, FrameBits: -1}
	wantError(t, cfg, "negative FrameBits -1")
}

func TestValidateGilbertElliottProbabilities(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "ge", PGoodBad: 1.2}
	wantError(t, cfg, "PGoodBad 1.2 outside [0,1]")
	cfg.LinkModel = LinkModelSpec{Name: "ge", PGoodBad: 0.1, LossBad: math.NaN()}
	wantError(t, cfg, "LossBad NaN outside [0,1]")
}

func TestValidateNegativeJitter(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Jitter: -time.Microsecond}
	wantError(t, cfg, "negative Jitter")
}

func TestValidateJitterBeyondEpoch(t *testing.T) {
	// The default position epoch is 100 ms; jitter beyond it would push
	// arrivals past the positions they were launched from.
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{Name: "uniform", LossRate: 0.01, Jitter: 150 * time.Millisecond}
	wantError(t, cfg, "Jitter 150ms exceeds the position-epoch interval 100ms")
}

func TestValidateJitterWithinCustomEpoch(t *testing.T) {
	// Raising Mobility.UpdateInterval legalizes a larger jitter.
	cfg := validChain()
	cfg.Scenario = Chain(2)
	cfg.Scenario.Mobility.UpdateInterval = 200 * time.Millisecond
	cfg.LinkModel = LinkModelSpec{Name: "uniform", LossRate: 0.01, Jitter: 150 * time.Millisecond}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("150ms jitter under a 200ms epoch rejected: %v", err)
	}
}

func TestValidateCaptureRatioBelowOne(t *testing.T) {
	cfg := validChain()
	cfg.LinkModel = LinkModelSpec{CaptureRatio: 0.5}
	wantError(t, cfg, "CaptureRatio 0.5 below 1")
}

func TestValidateNegativeRTSThreshold(t *testing.T) {
	cfg := validChain()
	cfg.RTSThreshold = -1
	wantError(t, cfg, "negative RTSThreshold -1")
}

// --- Behavior under impairment.

// TestUniformLossDegradesGoodput locks the subsystem end to end: frame
// loss must actually reach TCP. At 5% uniform frame loss on a 2-hop
// chain the MAC absorbs most of it, but goodput must drop measurably
// and the impaired-frame counter must advance.
func TestUniformLossDegradesGoodput(t *testing.T) {
	base := validChain()
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := validChain()
	lossy.LinkModel = UniformLossModel(0.05)
	impaired, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if impaired.ImpairedFrames == 0 {
		t.Fatal("5% uniform loss impaired no frames")
	}
	if clean.ImpairedFrames != 0 {
		t.Fatalf("perfect channel impaired %d frames", clean.ImpairedFrames)
	}
	if impaired.AggGoodput.Mean >= clean.AggGoodput.Mean {
		t.Errorf("goodput did not degrade: %.0f lossy vs %.0f clean bit/s",
			impaired.AggGoodput.Mean, clean.AggGoodput.Mean)
	}
}

// TestRTSThresholdSpeedsUpCleanChain sanity-checks basic access: on a
// clean short chain, skipping the handshake removes two frames per hop
// and must not hurt goodput.
func TestRTSThresholdChangesMACBehavior(t *testing.T) {
	cfg := validChain()
	cfg.RTSThreshold = 4096
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggGoodput.Mean <= 0 {
		t.Fatal("no goodput under basic access")
	}
	if res.Delivered < cfg.TotalPackets {
		t.Errorf("delivered %d of %d packets", res.Delivered, cfg.TotalPackets)
	}
}

// lossyConfig is the determinism workhorse: bursty loss, jitter, and an
// overridden capture ratio all active at once on a 3-hop chain.
func lossyConfig(seed int64) Config {
	return Config{
		Scenario: Chain(3),
		Transport: TransportSpec{
			Protocol: ProtoNewReno,
		},
		Seed:         seed,
		TotalPackets: 880,
		BatchPackets: 80,
		LinkModel: LinkModelSpec{
			Name:     "gilbert-elliott",
			PGoodBad: 0.02, PBadGood: 0.3, LossBad: 0.5,
			Jitter:       20 * time.Microsecond,
			CaptureRatio: 4,
		},
	}
}

// TestImpairedRunsDeterministicPerSeed: two fresh runs of the same
// impaired config must be byte-identical; a different seed must diverge.
func TestImpairedRunsDeterministicPerSeed(t *testing.T) {
	a, err := Run(lossyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lossyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := digest(t, a), digest(t, b); sa != sb {
		t.Errorf("same seed diverged:\n  %s\n  %s", sa, sb)
	}
	c, err := Run(lossyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, a) == digest(t, c) {
		t.Error("different seeds produced identical impaired runs")
	}
}

// TestImpairedArenaReuseByteIdentical: a World reused across impaired
// runs — including across different impairment specs — must reproduce
// fresh results exactly.
func TestImpairedArenaReuseByteIdentical(t *testing.T) {
	w := NewWorld()
	// Interleave specs so every arena run starts from a dirtied arena.
	cfgs := []Config{lossyConfig(7), lossyConfig(9)}
	uni := lossyConfig(7)
	uni.LinkModel = UniformLossModel(0.03)
	cfgs = append(cfgs, uni, lossyConfig(7))
	for i, cfg := range cfgs {
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		arena, err := w.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sf, sa := digest(t, fresh), digest(t, arena); sf != sa {
			t.Errorf("run %d: arena diverged from fresh:\n  fresh: %s\n  arena: %s", i, sf, sa)
		}
	}
}

// TestLossyConformanceAllTransports is the lossy conformance matrix:
// every registered transport runs under every registered link model
// (with usable parameters filled in), and each impaired run must be
// byte-identical between a fresh build and a reused arena while still
// delivering its packet budget. This is the grid the -race CI job
// sweeps.
func TestLossyConformanceAllTransports(t *testing.T) {
	models := []LinkModelSpec{
		{},                                  // perfect
		UniformLossModel(0.02),              // uniform
		BERModel(1e-5, 8*(1500+52)),         // ber over a max-size frame
		GilbertElliottModel(0.02, 0.3, 0.5), // bursty
		{Name: "distance", Jitter: 10 * time.Microsecond},
	}
	w := NewWorld()
	for _, spec := range worldSpecs() {
		for _, lm := range models {
			cfg := Config{
				Scenario:     Chain(2),
				Transport:    spec,
				Seed:         3,
				TotalPackets: 550,
				BatchPackets: 50,
				LinkModel:    lm,
			}
			label := spec.Name + "/" + lm.Label()
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			arena, err := w.Run(cfg)
			if err != nil {
				t.Fatalf("%s (arena): %v", label, err)
			}
			if digest(t, fresh) != digest(t, arena) {
				t.Errorf("%s: arena run diverged from fresh run", label)
			}
			if fresh.Delivered < cfg.TotalPackets {
				t.Errorf("%s: delivered %d of %d packets", label, fresh.Delivered, cfg.TotalPackets)
			}
		}
	}
}
