package exp

import (
	"testing"
)

// TestTable3FairnessOrdering regenerates the grid fairness table at bench
// scale and pins the paper's headline: Vegas with ACK thinning is the
// fairest variant at 11 Mbit/s.
func TestTable3FairnessOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep is slow")
	}
	h := NewHarness(BenchScale)
	f, err := Table3(h)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series, x string) float64 {
		for _, s := range f.Series {
			if s.Name != series {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					return p.Y
				}
			}
		}
		t.Fatalf("missing %s@%s", series, x)
		return 0
	}
	vthin := get("Vegas Thin", "11")
	for _, other := range []string{"Vegas", "NewReno", "NewReno Thin"} {
		if v := get(other, "11"); vthin <= v {
			t.Errorf("Vegas Thin fairness %.3f <= %s %.3f at 11 Mbit/s; paper's headline violated", vthin, other, v)
		}
	}
	// All Jain values must be valid indices over 6 flows.
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y < 1.0/6-1e-9 || p.Y > 1+1e-9 {
				t.Errorf("%s@%s: Jain = %v out of [1/6, 1]", s.Name, p.X, p.Y)
			}
		}
	}
}

// TestCoexistNewRenoDominates pins the extension result: loss-based
// NewReno crowds out delay-based Vegas on the shared grid.
func TestCoexistNewRenoDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep is slow")
	}
	h := NewHarness(BenchScale)
	f, err := Coexist(h)
	if err != nil {
		t.Fatal(err)
	}
	var vegas, newreno float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.X != "11" {
				continue
			}
			switch s.Name {
			case "Vegas group":
				vegas = p.Y
			case "NewReno group":
				newreno = p.Y
			}
		}
	}
	if newreno <= vegas {
		t.Errorf("NewReno group %.1f <= Vegas group %.1f; coexistence result inverted", newreno, vegas)
	}
}

// TestOptWindowPeaksSmall pins the "optimal window ≈ h/4" extension: the
// goodput-optimal bound is small (2-4) and beats the unbounded tail.
func TestOptWindowPeaksSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("window sweep is slow")
	}
	h := NewHarness(BenchScale)
	f, err := OptWindow(h)
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Series[0].Points
	best, bestX := -1.0, ""
	var at16 float64
	for _, p := range pts {
		if p.Y > best {
			best, bestX = p.Y, p.X
		}
		if p.X == "16" {
			at16 = p.Y
		}
	}
	if bestX != "2" && bestX != "3" && bestX != "4" {
		t.Errorf("goodput peak at MaxWindow=%s, want 2-4 (h/4 rule)", bestX)
	}
	if best <= at16 {
		t.Errorf("peak %.1f <= unbounded-ish tail %.1f", best, at16)
	}
}
