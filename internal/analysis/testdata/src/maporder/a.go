// Package maporder exercises the maporder analyzer: map iteration whose body
// accumulates, serializes or schedules is order-sensitive and must iterate
// sorted keys; commutative bodies and the collect-then-sort idiom pass.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendsUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `iteration over map m appends to out`
		out = append(out, v)
	}
	return out
}

// collectThenSort is the canonical fix: accumulation order is erased by the
// sort, so the append inside the loop is fine.
func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// commutative bodies — sums, deletes — are order-insensitive.
func commutative(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func serializes(m map[string]int, sb *strings.Builder) {
	for k, v := range m { // want `serializes via fmt\.Fprintf`
		fmt.Fprintf(sb, "%s=%d\n", k, v)
	}
}

// localOnly appends to a buffer that does not outlive the iteration.
func localOnly(m map[int][]byte) int {
	n := 0
	for _, v := range m {
		buf := append([]byte(nil), v...)
		n += len(buf)
	}
	return n
}

func allowed(m map[int]string, out []string) []string {
	//manetsim:allow maporder reviewed: caller scrambles the order anyway
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
