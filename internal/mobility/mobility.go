// Package mobility models node movement as a function of simulated time.
// A Model answers "where is node i at time t"; the physical layer samples
// it at position-update epochs to maintain dynamic neighbor sets, and the
// scenario engine uses it to classify route failures as genuine (the next
// hop moved away) or false (contention-induced, the paper's metric).
//
// All randomness is drawn lazily from the scheduler's seeded source, so a
// run with moving nodes is exactly as reproducible as a static one.
package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/sim"
)

// Model provides node positions over simulated time.
//
// PositionAt must be called with non-decreasing t per node — the natural
// access pattern of a discrete-event simulation, and what lets waypoint
// models advance their trajectory state lazily instead of storing it.
type Model interface {
	// Len returns the number of nodes the model describes.
	Len() int
	// PositionAt returns node i's position at simulated time t.
	PositionAt(i int, t sim.Time) geo.Point
	// Static reports whether positions never change; static models need no
	// position-update epochs.
	Static() bool
}

// Pinned decorates a model, freezing selected nodes at fixed positions
// while the rest follow the inner model. The canonical use is pinning a
// flow's endpoints so mobility affects only the relays: random waypoint
// concentrates nodes toward the field center, which would otherwise
// shorten (or wander) the measured path as speed grows and confound
// route-churn effects with path-length drift.
type Pinned struct {
	inner Model
	fixed map[int]geo.Point
}

// Pin freezes the given nodes at the given positions; all other nodes
// follow inner.
func Pin(inner Model, fixed map[int]geo.Point) *Pinned {
	return &Pinned{inner: inner, fixed: fixed}
}

// Len returns the number of nodes.
func (p *Pinned) Len() int { return p.inner.Len() }

// PositionAt returns the pinned position for frozen nodes and defers to the
// inner model otherwise.
func (p *Pinned) PositionAt(i int, t sim.Time) geo.Point {
	if pt, ok := p.fixed[i]; ok {
		return pt
	}
	return p.inner.PositionAt(i, t)
}

// Static reports whether the composite never moves: either the inner model
// is static or every node is pinned.
func (p *Pinned) Static() bool { return p.inner.Static() || len(p.fixed) >= p.inner.Len() }

// Stationary is the trivial model: every node stays at its initial
// placement. It reproduces the paper's static chain/grid/random scenarios.
type Stationary struct {
	pts []geo.Point
}

// NewStationary returns a model freezing nodes at the given positions.
func NewStationary(pts []geo.Point) *Stationary {
	return &Stationary{pts: pts}
}

// Len returns the number of nodes.
func (s *Stationary) Len() int { return len(s.pts) }

// PositionAt returns node i's fixed position.
func (s *Stationary) PositionAt(i int, _ sim.Time) geo.Point { return s.pts[i] }

// Static reports true: stationary nodes never move.
func (s *Stationary) Static() bool { return true }

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	// Field bounds the movement area. Waypoints are drawn uniformly inside
	// it; initial positions outside are clamped to its border. A degenerate
	// field (zero width or height) confines movement to a line.
	Field geo.Rect
	// MinSpeed and MaxSpeed bound the uniformly drawn per-leg speed (m/s).
	// MinSpeed must be positive: the classic vmin=0 formulation makes nodes
	// stall forever (the well-known RWP speed-decay pathology).
	MinSpeed, MaxSpeed float64
	// Pause is how long a node rests at each waypoint before departing.
	Pause time.Duration
}

func (c WaypointConfig) validate() error {
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: need 0 < MinSpeed <= MaxSpeed, got [%g, %g]", c.MinSpeed, c.MaxSpeed)
	}
	if c.Field.Width() < 0 || c.Field.Height() < 0 {
		return fmt.Errorf("mobility: inverted field %v..%v", c.Field.Min, c.Field.Max)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	return nil
}

// leg is one segment of a node's trajectory: rest at from until depart,
// move to to at constant speed, arrive at arrive.
type leg struct {
	from, to       geo.Point
	depart, arrive sim.Time
}

// RandomWaypoint implements the canonical MANET mobility model: each node
// repeatedly picks a uniform waypoint in the field and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, and pauses.
// Trajectories are generated lazily, one leg at a time, from the shared
// deterministic RNG.
type RandomWaypoint struct {
	cfg  WaypointConfig
	rng  *rand.Rand
	legs []leg
}

// NewRandomWaypoint builds the model for nodes starting at initial, drawing
// all waypoints and speeds from rng (pass the scheduler's Rand for
// reproducible runs). Nodes start moving at time zero.
func NewRandomWaypoint(cfg WaypointConfig, initial []geo.Point, rng *rand.Rand) (*RandomWaypoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("mobility: random waypoint needs at least one node")
	}
	m := &RandomWaypoint{cfg: cfg, rng: rng, legs: make([]leg, len(initial))}
	for i, p := range initial {
		start := cfg.Field.Clamp(p)
		m.legs[i] = leg{from: start, to: start} // depart=arrive=0: first leg drawn lazily
	}
	return m, nil
}

// Len returns the number of nodes.
func (m *RandomWaypoint) Len() int { return len(m.legs) }

// Static reports false: waypoint nodes move.
func (m *RandomWaypoint) Static() bool { return false }

// PositionAt returns node i's position at time t, advancing the node's
// trajectory as far as needed. t must be non-decreasing per node.
func (m *RandomWaypoint) PositionAt(i int, t sim.Time) geo.Point {
	l := &m.legs[i]
	for t >= l.arrive+sim.Time(m.cfg.Pause) {
		m.nextLeg(l)
	}
	switch {
	case t <= l.depart:
		return l.from
	case t >= l.arrive:
		return l.to
	default:
		f := float64(t-l.depart) / float64(l.arrive-l.depart)
		return geo.Point{
			X: l.from.X + (l.to.X-l.from.X)*f,
			Y: l.from.Y + (l.to.Y-l.from.Y)*f,
		}
	}
}

// nextLeg replaces a finished leg with a freshly drawn one departing after
// the pause at the reached waypoint.
func (m *RandomWaypoint) nextLeg(l *leg) {
	from := l.to
	to := geo.Point{
		X: m.cfg.Field.Min.X + m.rng.Float64()*m.cfg.Field.Width(),
		Y: m.cfg.Field.Min.Y + m.rng.Float64()*m.cfg.Field.Height(),
	}
	speed := m.cfg.MinSpeed + m.rng.Float64()*(m.cfg.MaxSpeed-m.cfg.MinSpeed)
	depart := l.arrive + sim.Time(m.cfg.Pause)
	travel := sim.Time(from.Distance(to) / speed * float64(time.Second))
	if travel <= 0 {
		travel = 1 // zero-length hop: burn one tick so the loop advances
	}
	*l = leg{from: from, to: to, depart: depart, arrive: depart + travel}
}
