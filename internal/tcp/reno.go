package tcp

import (
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// RenoSender implements classic TCP Reno (RFC 2581): fast retransmit after
// three duplicate ACKs and fast recovery that exits on the *first* new ACK.
// Unlike NewReno it does not retransmit further holes on partial ACKs, so
// multiple losses in one window usually cost a coarse timeout — the
// behaviour that motivated NewReno and one of the baselines in the
// Xu & Saadawi comparison the paper's related work discusses.
type RenoSender struct {
	*base
	ssthresh   float64
	inRecovery bool
}

var _ Sender = (*RenoSender)(nil)

// NewReno1990 constructs a classic Reno sender for one flow. (The name
// avoids colliding with NewNewReno; Reno predates NewReno.)
func NewReno1990(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output) *RenoSender {
	s := &RenoSender{ssthresh: 64}
	s.base = newBase(sched, cfg, flow, src, dst, uids, out)
	if w := cfg.withDefaults().Wmax; float64(w) < s.ssthresh {
		s.ssthresh = float64(w)
	}
	s.rtxTimer = sim.NewTimer(sched, s.onRTO)
	s.onTimeout = s.onRTO
	return s
}

// Start begins the transfer.
func (s *RenoSender) Start() {
	s.setCwnd(float64(s.cfg.Winit))
	s.sendUpTo()
}

// HandleAck processes a cumulative acknowledgment.
func (s *RenoSender) HandleAck(p *pkt.Packet) {
	if p.TCP == nil {
		return
	}
	s.stats.AcksSeen++
	ack := p.TCP.Ack
	if ack > s.ackNext {
		newly := s.ackAdvance(ack)
		if !p.TCP.NoEcho {
			s.sampleRTT(s.sched.Now() - p.TCP.SentAt)
		}
		if s.inRecovery {
			// Any new ACK ends Reno fast recovery, deflating to ssthresh —
			// remaining holes must be found by dupacks again or by the
			// retransmission timer.
			s.inRecovery = false
			s.dupacks = 0
			s.setCwnd(s.ssthresh)
		} else {
			s.dupacks = 0
			for i := int64(0); i < newly; i++ {
				if s.cwnd < s.ssthresh {
					s.setCwnd(s.cwnd + 1)
				} else {
					s.setCwnd(s.cwnd + 1/s.cwnd)
				}
			}
		}
	} else if s.ackNext < s.nextSeq {
		s.onDupAck()
	}
	s.sendUpTo()
}

func (s *RenoSender) onDupAck() {
	s.stats.DupAcks++
	if s.inRecovery {
		s.setCwnd(s.cwnd + 1)
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	s.stats.FastRecov++
	s.inRecovery = true
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.setCwnd(s.ssthresh + 3)
	s.transmit(s.ackNext)
}

func (s *RenoSender) onRTO() {
	if s.ackNext >= s.nextSeq {
		return
	}
	s.stats.Timeouts++
	flight := float64(s.nextSeq - s.ackNext)
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.inRecovery = false
	s.dupacks = 0
	s.growBackoff()
	s.setCwnd(float64(s.cfg.Winit))
	s.rtxTimer.Reset(s.currentRTO())
	s.nextSeq = s.ackNext
	s.sendUpTo()
}
