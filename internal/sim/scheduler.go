// Package sim provides the discrete-event simulation kernel used by every
// other layer of the simulator: a virtual clock, an event heap with
// deterministic ordering, cancellable timers, and a seeded random number
// source.
//
// The kernel is strictly single-threaded. All protocol code runs inside
// event callbacks dispatched by (*Scheduler).Run, so no locking is needed
// anywhere in the simulator and every run is exactly reproducible from its
// seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, measured as a duration since the start
// of the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. Events are created by Scheduler.At and
// Scheduler.After and may be cancelled until they fire.
type Event struct {
	at     Time
	seq    uint64 // creation order; breaks ties deterministically
	index  int    // heap index, -1 once removed
	fn     func()
	cancel bool
}

// At returns the simulated time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Scheduler is a discrete-event scheduler. The zero value is not usable;
// create one with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	// dispatched counts events that have fired (for diagnostics and tests).
	dispatched uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source. All protocol
// randomness (backoff draws, jitter, topology placement) must come from
// this source so runs are reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Dispatched returns the number of events executed so far.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it always indicates a protocol bug, and silently
// reordering events would corrupt causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op, which makes timer
// management in protocol code straightforward.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// callback completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of events waiting in the queue.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: time moving backwards: event at %v, now %v", e.at, s.now))
		}
		s.now = e.at
		s.dispatched++
		e.cancel = true // mark consumed so late Cancel calls are no-ops
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the deadline
// if the queue drains or only later events remain.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		e := s.queue.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// eventQueue is a binary heap ordered by (time, creation sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

func (q eventQueue) peek() *Event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}
