// Package analysis implements manetsim's custom static-analysis suite: a
// small, dependency-free framework in the spirit of golang.org/x/tools'
// go/analysis (which is not vendored here) plus five project-specific
// analyzers that encode the repo's determinism, refcount, reset and
// hot-path invariants as compiler-adjacent checks:
//
//   - wallclock:     no time.Now/Since/Sleep in simulation packages — sim
//     time must flow from the scheduler.
//   - globalrand:    no package-level math/rand state or constant-seeded
//     sources in result-affecting code — RNG must be threaded from Config
//     seeds or the per-link streams.
//   - maporder:      no map iteration that feeds Result-reachable data,
//     serialization or event scheduling without sorting keys first.
//   - resetcomplete: every field of a struct with a Reset method is either
//     assigned in Reset or explicitly marked //manetsim:resetsafe.
//   - hotpathalloc:  no closure literals, fmt.Sprintf or method-value
//     captures in //manetsim:hotpath functions, and no closures passed to
//     scheduler APIs that have closure-free AtFunc/AfterFunc counterparts.
//
// The suite runs standalone (`manetsimvet ./...`) or as a `go vet
// -vettool` plugin; see cmd/manetsimvet. Deliberate exceptions are
// annotated in source with directives:
//
//	//manetsim:allow <analyzer>   on the offending line (or the line above)
//	//manetsim:resetsafe          on a struct field Reset intentionally keeps
//	//manetsim:hotpath            marks a function as an allocation-free hot path
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to the
// real framework if the dependency ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass holds one type-checked package and collects diagnostics from one
// analyzer run over it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // all parsed files, including _test.go
	Pkg       *types.Package
	TypesInfo *types.Info

	// SimPackage reports whether this package is part of the
	// result-affecting simulation core (see IsSimPackage). Most analyzers
	// only apply there.
	SimPackage bool

	directives map[string]map[int][]string // filename -> line -> directives
	report     func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an //manetsim:allow directive
// for this analyzer covers the line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NonTestFiles returns the package files excluding _test.go files. Every
// analyzer in the suite exempts test code: fixed-seed rand.New, wall-clock
// timing and ad-hoc map iteration are all legitimate in tests.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.FileStart).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// Directive names understood by the suite.
const (
	dirAllow     = "allow"
	dirResetSafe = "resetsafe"
	dirHotPath   = "hotpath"
)

// buildDirectives indexes every //manetsim:<name> [arg] comment by file and
// line so directive checks are O(1) at report time.
func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//manetsim:")
				if !ok {
					continue
				}
				// Normalize "allow maporder" to "allow:maporder" so a
				// directive is a single token; any further words are a
				// free-form justification and ignored.
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				d := fields[0]
				if d == dirAllow && len(fields) > 1 {
					d += ":" + fields[1]
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.directives[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.directives[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
}

// hasDirective reports whether directive d appears on the given line or the
// line immediately above it (the doc-comment position).
func (p *Pass) hasDirective(d string, position token.Position) bool {
	lines := p.directives[position.Filename]
	if lines == nil {
		return false
	}
	for _, got := range lines[position.Line] {
		if got == d {
			return true
		}
	}
	for _, got := range lines[position.Line-1] {
		if got == d {
			return true
		}
	}
	return false
}

func (p *Pass) allowed(analyzer string, position token.Position) bool {
	return p.hasDirective(dirAllow+":"+analyzer, position)
}

// ResetSafe reports whether the field declared at pos carries a
// //manetsim:resetsafe directive.
func (p *Pass) ResetSafe(pos token.Pos) bool {
	return p.hasDirective(dirResetSafe, p.Fset.Position(pos))
}

// HotPath reports whether the function declaration is marked
// //manetsim:hotpath, either inside its doc comment or on the line above
// the declaration.
func (p *Pass) HotPath(fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, "//manetsim:"+dirHotPath) {
				return true
			}
		}
	}
	return p.hasDirective(dirHotPath, p.Fset.Position(fn.Pos()))
}

// simPackages is the set of result-affecting simulation packages: every
// byte of golden-digest output flows through them, so the determinism
// analyzers treat them as load-bearing.
var simPackages = map[string]bool{
	"sim": true, "phy": true, "mac": true, "aodv": true,
	"tcp": true, "udp": true, "node": true, "core": true,
	"fault": true, "linkmodel": true, "mobility": true,
	"stats": true, "pkt": true, "geo": true,
}

// IsSimPackage reports whether importPath names one of the simulation-core
// packages the determinism invariants apply to.
func IsSimPackage(importPath string) bool {
	rest, ok := strings.CutPrefix(importPath, "manetsim/internal/")
	if !ok {
		return false
	}
	return simPackages[rest]
}

// NewPass assembles a Pass for one analyzer over one type-checked package.
// The caller supplies sink to collect diagnostics.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, simPkg bool, sink func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		SimPackage: simPkg,
		report:     sink,
	}
	p.buildDirectives()
	return p
}

// RunSuite runs every analyzer in analyzers over the package and returns
// the diagnostics sorted by position.
func RunSuite(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, simPkg bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := NewPass(a, fset, files, pkg, info, simPkg, func(d Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Suite returns the full manetsimvet analyzer suite.
func Suite() []*Analyzer {
	return []*Analyzer{
		WallClock,
		GlobalRand,
		MapOrder,
		ResetComplete,
		HotPathAlloc,
	}
}

// funcObj resolves a call's callee to a *types.Func, unwrapping parens.
// Returns nil for builtins, conversions and indirect calls.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// pkgPathOf returns the import path of a function's defining package, or ""
// for builtins.
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isSchedulerPkg matches the sim kernel package (and the sim stub used by
// the analyzer testdata): the package whose Scheduler owns simulated time.
func isSchedulerPkg(path string) bool {
	return path == "sim" || strings.HasSuffix(path, "/sim")
}
