package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// GoList runs `go list -export -deps -json` for the patterns and returns
// every listed package. dir anchors the module context. Compilation of the
// listed packages happens as a side effect (that is what -export is for),
// so a package that does not build surfaces here as an error.
func GoList(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,ImportMap,Standard,DepOnly,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// A Loader type-checks packages against pre-built export data, the same way
// the compiler sees them: direct and transitive imports resolve through an
// import-path -> export-file map instead of re-type-checking the world from
// source. Extra registers source-checked packages (the analysistest harness
// uses it for testdata-local stub dependencies).
type Loader struct {
	Fset      *token.FileSet
	exports   map[string]string // resolved import path -> export data file
	importMap map[string]string // source import path -> resolved path
	extra     map[string]*types.Package
	imp       types.Importer
}

// NewLoader builds a loader over the given export-data and import maps.
func NewLoader(exports, importMap map[string]string) *Loader {
	l := &Loader{
		Fset:      token.NewFileSet(),
		exports:   exports,
		importMap: importMap,
		extra:     map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// NewLoaderFromList builds a loader from `go list` output.
func NewLoaderFromList(pkgs []*ListedPackage) *Loader {
	exports := map[string]string{}
	importMap := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}
	return NewLoader(exports, importMap)
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if resolved, ok := l.importMap[path]; ok {
		path = resolved
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for package %q", path)
	}
	return os.Open(file)
}

// AddExtra registers an already-type-checked package so later checks can
// import it by path without export data.
func (l *Loader) AddExtra(pkg *types.Package) { l.extra[pkg.Path()] = pkg }

// Import implements types.Importer, preferring source-checked extras.
func (l *Loader) Import(path string) (*types.Package, error) {
	if resolved, ok := l.importMap[path]; ok {
		path = resolved
	}
	if pkg, ok := l.extra[path]; ok {
		return pkg, nil
	}
	return l.imp.Import(path)
}

// Check parses and type-checks one package from its source files.
func (l *Loader) Check(importPath string, dir string, goFiles []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return files, pkg, info, nil
}

// AnalyzeDir is the standalone driver: it loads the packages matching
// patterns (module packages only — dependencies are type-checked from
// export data, not analyzed) and runs the full suite over each, returning
// diagnostics sorted per package.
func AnalyzeDir(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	loader := NewLoaderFromList(pkgs)
	var diags []Diagnostic
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		files, pkg, info, err := loader.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		ds, err := RunSuite(analyzers, loader.Fset, files, pkg, info, IsSimPackage(p.ImportPath))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
