package tcp

// RenoCC implements classic TCP Reno (RFC 2581): fast retransmit after
// three duplicate ACKs and fast recovery that exits on the *first* new
// ACK. Unlike NewReno it does not retransmit further holes on partial
// ACKs, so multiple losses in one window usually cost a coarse timeout —
// the behaviour that motivated NewReno and one of the baselines in the
// Xu & Saadawi comparison the paper's related work discusses.
type RenoCC struct {
	CCBase
	ssthresh   float64
	dupacks    int
	inRecovery bool
}

var _ CongestionControl = (*RenoCC)(nil)

// NewRenoCC1990 returns the classic Reno congestion-control strategy.
// (The name avoids colliding with NewNewRenoCC; Reno predates NewReno.)
func NewRenoCC1990() *RenoCC { return &RenoCC{} }

// Init binds the engine and seeds ssthresh at the receiver window.
func (s *RenoCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.ssthresh = s.InitialSSThresh()
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *RenoCC) OnAck(a Ack) {
	e := s.e
	newly := e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
	if s.inRecovery {
		// Any new ACK ends Reno fast recovery, deflating to ssthresh —
		// remaining holes must be found by dupacks again or by the
		// retransmission timer.
		s.inRecovery = false
		s.dupacks = 0
		e.SetWindow(s.ssthresh)
		return
	}
	s.dupacks = 0
	s.GrowAIMD(newly, s.ssthresh)
}

// OnDupAck counts duplicates toward fast retransmit and inflates the
// window during recovery.
func (s *RenoCC) OnDupAck(Ack) {
	e := s.e
	if s.inRecovery {
		e.SetWindow(e.Window() + 1)
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	e.CountFastRecovery()
	s.inRecovery = true
	s.ssthresh = e.Window() / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	e.SetWindow(s.ssthresh + 3)
	e.Retransmit(e.AckNext())
}

// OnTimeout shrinks to Winit with timer backoff; the engine then goes
// back N.
func (s *RenoCC) OnTimeout() {
	e := s.e
	flight := float64(e.InFlight())
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.inRecovery = false
	s.dupacks = 0
	e.BackoffRTO()
	e.SetWindow(float64(e.Config().Winit))
	e.RestartRTOTimer()
}
