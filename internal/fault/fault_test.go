package fault

import (
	"testing"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

func TestPlaneNodeCrash(t *testing.T) {
	var p Plane
	p.Reset(4)
	if !p.Quiet() || p.NodeDown(2) {
		t.Fatal("fresh plane must be quiet with all nodes up")
	}
	var downs, ups []pkt.NodeID
	p.OnNodeDown = func(id pkt.NodeID) { downs = append(downs, id) }
	p.OnNodeUp = func(id pkt.NodeID) { ups = append(ups, id) }

	p.CrashNode(2)
	if p.Quiet() || !p.NodeDown(2) {
		t.Fatal("crash did not register")
	}
	if !p.Severed(1, 2) || !p.Severed(2, 3) {
		t.Fatal("links touching a down node must be severed")
	}
	if p.Severed(0, 1) {
		t.Fatal("links between live nodes must stay up")
	}
	p.CrashNode(2) // idempotent
	p.RestoreNode(2)
	if !p.Quiet() || p.NodeDown(2) {
		t.Fatal("restore did not register")
	}
	p.RestoreNode(2) // idempotent
	if len(downs) != 1 || downs[0] != 2 || len(ups) != 1 || ups[0] != 2 {
		t.Fatalf("hooks fired downs=%v ups=%v, want one each for node 2", downs, ups)
	}
}

func TestPlaneLinkBlackoutNests(t *testing.T) {
	var p Plane
	p.Reset(3)
	p.BlockLink(0, 1)
	p.BlockLink(0, 1)
	if !p.Severed(0, 1) {
		t.Fatal("blocked link must be severed")
	}
	if p.Severed(1, 0) {
		t.Fatal("blackout is directed; reverse link must stay up")
	}
	p.UnblockLink(0, 1)
	if !p.Severed(0, 1) {
		t.Fatal("nested blackout must survive one unblock")
	}
	p.UnblockLink(0, 1)
	if p.Severed(0, 1) || !p.Quiet() {
		t.Fatal("link must recover after matching unblocks")
	}
}

func TestPlanePartition(t *testing.T) {
	var p Plane
	p.Reset(4)
	p.StartPartition([]bool{true, true, false, false})
	if !p.Severed(1, 2) || !p.Severed(2, 1) {
		t.Fatal("cross-partition links must be severed both ways")
	}
	if p.Severed(0, 1) || p.Severed(2, 3) {
		t.Fatal("intra-side links must stay up")
	}
	p.Heal()
	if p.Severed(1, 2) || !p.Quiet() {
		t.Fatal("healed partition must restore links")
	}
}

func TestPlaneResetClearsState(t *testing.T) {
	var p Plane
	p.Reset(3)
	p.OnNodeDown = func(pkt.NodeID) {}
	p.CrashNode(0)
	p.BlockLink(1, 2)
	p.StartPartition([]bool{true, false, false})
	p.Reset(3)
	if !p.Quiet() || p.NodeDown(0) || p.Severed(1, 2) || p.OnNodeDown != nil {
		t.Fatal("Reset must clear all fault state and hooks")
	}
}

func TestInjectorsSchedule(t *testing.T) {
	s := sim.NewScheduler(1)
	var p Plane
	p.Reset(5)
	env := Env{Sched: s, Plane: &p, Positions: geo.Chain(4)}

	NodeCrash{Node: 2, At: 10 * time.Second, Downtime: 5 * time.Second}.Schedule(env)
	LinkBlackout{From: 0, To: 1, Bidirectional: true, At: 12 * time.Second, Duration: 2 * time.Second}.Schedule(env)
	Partition{At: 20 * time.Second, Duration: 3 * time.Second, Axis: "x", Cut: 500}.Schedule(env)

	s.RunUntil(11 * time.Second)
	if !p.NodeDown(2) {
		t.Fatal("crash must be in force at t=11s")
	}
	s.RunUntil(13 * time.Second)
	if !p.Severed(0, 1) || !p.Severed(1, 0) {
		t.Fatal("bidirectional blackout must sever both directions at t=13s")
	}
	s.RunUntil(16 * time.Second)
	if p.NodeDown(2) || p.Severed(0, 1) {
		t.Fatal("crash and blackout must have recovered by t=16s")
	}
	s.RunUntil(21 * time.Second)
	// Chain(4): nodes at x = 0,200,400,600,800; cut at 500 puts 0-2 on side A.
	if !p.Severed(2, 3) || p.Severed(0, 2) || p.Severed(3, 4) {
		t.Fatal("axis partition must sever only cross-cut links")
	}
	s.RunUntil(24 * time.Second)
	if !p.Quiet() {
		t.Fatal("all faults must have healed by t=24s")
	}
}

func TestPartitionExplicitSideA(t *testing.T) {
	s := sim.NewScheduler(1)
	var p Plane
	p.Reset(4)
	env := Env{Sched: s, Plane: &p, Positions: make([]geo.Point, 4)}
	Partition{At: time.Second, SideA: []pkt.NodeID{0, 3}}.Schedule(env)
	s.RunUntil(2 * time.Second)
	if !p.Severed(0, 1) || p.Severed(0, 3) || p.Severed(1, 2) {
		t.Fatal("explicit side set must define the cut")
	}
}
