package exp

import (
	"strings"
	"testing"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

func TestTable2MatchesPaper(t *testing.T) {
	f, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"2": 29, "5.5": 12, "11": 8}
	pts := f.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, p := range pts {
		if want[p.X] != p.Y {
			t.Errorf("delay at %s Mbit/s = %v ms, want %v (paper Table 2)", p.X, p.Y, want[p.X])
		}
	}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	// Every evaluated table/figure of the paper plus the extension
	// experiments.
	want := []string{
		"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig16",
		"fig17", "table3", "fig18", "fig19", "table4", "energy", "ablation",
		"tcpvariants", "coexist", "latency", "optwindow", "mobility",
	}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestHarnessCacheDedupsRuns(t *testing.T) {
	h := NewHarness(BenchScale)
	cfg := chainCfg(2, phy.Rate2Mbps, core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2})
	a, err := h.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs were not served from the cache")
	}
}

func TestHarnessRunAllPreservesOrder(t *testing.T) {
	h := NewHarness(BenchScale)
	cfgs := []core.Config{
		chainCfg(2, phy.Rate2Mbps, core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}),
		chainCfg(3, phy.Rate2Mbps, core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}),
	}
	results, err := h.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Flows) != 1 || results[0].Flows[0].Dst != 2 {
		t.Errorf("result 0 is not the 2-hop run: flows=%v", results[0].Flows)
	}
	if results[1].Flows[0].Dst != 3 {
		t.Errorf("result 1 is not the 3-hop run: flows=%v", results[1].Flows)
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{
		ID: "test", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: "1", Y: 10}, {X: "2", Y: 20}}},
			{Name: "b", Points: []Point{{X: "1", Y: 0.5, CI: 0.1}}},
		},
		Notes: []string{"hello"},
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "a", "b", "10", "±0.1", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := f.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.Contains(csv, `"a","1",10,0`) || !strings.Contains(csv, `"b","1",0.5,0.1`) {
		t.Errorf("csv output wrong:\n%s", csv)
	}
}

func TestOptimalUDPGapShortVsLongChain(t *testing.T) {
	h := NewHarness(BenchScale)
	short, err := h.OptimalUDPGap(2, phy.Rate2Mbps)
	if err != nil {
		t.Fatal(err)
	}
	long, err := h.OptimalUDPGap(8, phy.Rate2Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if short <= 0 || long <= 0 {
		t.Fatalf("gaps = %v, %v; want positive", short, long)
	}
	// Memoization: second call hits the memo.
	again, err := h.OptimalUDPGap(8, phy.Rate2Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if again != long {
		t.Error("gap memoization broken")
	}
}

func TestFig10FindsInteriorOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 sweep is slow")
	}
	h := NewHarness(BenchScale)
	f, err := Fig10(h)
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Series[0].Points
	if len(pts) != 9 {
		t.Fatalf("sweep points = %d, want 9 (28..44 ms step 2)", len(pts))
	}
	// The paper's Figure 10 shape: goodput collapses on the fast side and
	// degrades gently on the slow side, so the best point is interior or
	// near 36ms, and the fastest gap must be clearly worse than the best.
	best, bestIdx := -1.0, 0
	for i, p := range pts {
		if p.Y > best {
			best, bestIdx = p.Y, i
		}
	}
	if bestIdx == 0 {
		t.Errorf("optimum at the fastest gap (28ms); cliff missing: %+v", pts)
	}
	if pts[0].Y >= best {
		t.Errorf("28ms goodput %.1f >= optimum %.1f", pts[0].Y, best)
	}
}

func TestHarnessCacheKeyStableAcrossEqualScenarios(t *testing.T) {
	// The cache key is derived from values, following the Scenario pointer
	// into its nodes and flows: two independently built but equal
	// scenarios must share one cached run.
	mk := func() core.Config {
		scn := core.Grid().WithFlows(
			core.Flow{Src: 0, Dst: 13, Transport: core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
			core.Flow{Src: 7, Dst: 20, Transport: core.TransportSpec{Protocol: core.ProtoNewReno}},
		)
		return core.Config{
			Scenario:  scn,
			Bandwidth: phy.Rate2Mbps,
			Transport: core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2},
		}
	}
	h := NewHarness(BenchScale)
	ra, err := h.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := h.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("equal configs carrying distinct scenario pointers were not served from the cache")
	}
	// Differing flow sets must key differently.
	c := mk()
	c.Scenario.Flows[1].Dst = 19
	rc, err := h.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rc == ra {
		t.Error("configs with different flows shared a cache entry")
	}
}

func TestMobilityRunnerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mobility sweep is slow")
	}
	h := NewHarness(BenchScale)
	f, err := Mobility(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4 (Vegas/NewReno x plain/thin)", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != len(mobilitySpeeds) {
			t.Fatalf("series %q has %d points, want %d", s.Name, len(s.Points), len(mobilitySpeeds))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("series %q at %s m/s: goodput %.1f, want > 0", s.Name, p.X, p.Y)
			}
		}
	}
	if len(f.Notes) != 4*len(mobilitySpeeds) {
		t.Errorf("notes = %d, want one per run", len(f.Notes))
	}
}
