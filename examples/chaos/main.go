// Chaos drives the fault-injection subsystem: Reno, Westwood+ and the
// adaptive-pacing sender on a 4-hop chain whose middle relay crashes
// mid-run and restarts two seconds later. Every transport sees the same
// deterministic outage; the resilience report shows how long each one
// takes to get traffic flowing again after the relay returns — a cold
// AODV re-discovery plus the transport's own RTO backoff — and what the
// outage cost in goodput.
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	transports := []manetsim.TransportSpec{
		{Name: "reno"},
		{Name: "westwood"},
		{Name: "pacing"},
	}
	// The mid-chain relay (node 2 of the 4-hop chain) goes down at t=10s
	// for 2 s: every packet must cross it, so the outage severs the flow.
	crash := manetsim.CrashFault(2, 10*time.Second, 2*time.Second)

	total := demoPackets(11000)
	c := manetsim.NewCampaign(manetsim.Scale{TotalPackets: total, BatchPackets: total / 11, Seed: 1})
	cells, err := c.Sweep(context.Background(), manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(4)},
		Transports: transports,
		Faults:     [][]manetsim.FaultSpec{nil, {crash}},
		Seeds:      []int64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4-hop chain, 2 Mbit/s — mid-chain relay crash %s:\n\n", crash.Label())
	fmt.Printf("%-16s %16s %16s %16s %12s %12s\n",
		"", "healthy kbit/s", "during outage", "outside outage", "recovery", "frames cut")
	// Grid order: transports outermost, fault schedules innermost
	// (fault-free baseline first, then the crash cell).
	for ti, t := range transports {
		healthy := cells[ti*2]
		faulted := cells[ti*2+1]
		var recover time.Duration
		var during, outside float64
		var cut uint64
		for _, run := range faulted.Runs {
			if run.Faults == nil || len(run.Faults.Outages) == 0 {
				log.Fatalf("%s: faulted run carries no resilience report", t.Label())
			}
			recover += run.Faults.Outages[0].TimeToRecoverAfterHeal
			during += run.Faults.GoodputDuringBps
			outside += run.Faults.GoodputOutsideBps
			cut += run.Faults.FramesCut
		}
		n := float64(len(faulted.Runs))
		recover /= time.Duration(len(faulted.Runs))
		fmt.Printf("%-16s  %7.1f ±%5.1f  %14.1f  %14.1f %12s %12d\n",
			t.Label(),
			healthy.Goodput.Mean/1e3, healthy.Goodput.HalfCI/1e3,
			during/n/1e3, outside/n/1e3,
			recover.Round(time.Millisecond), cut)
	}
	fmt.Println("\n(recovery = first delivery after the relay restarts: a cold AODV")
	fmt.Println(" route re-discovery plus however far the transport's RTO backed off;")
	fmt.Println(" the same seed gives every transport the identical outage)")
}
