package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration `go vet -vettool` hands the tool
// for each package unit (the x/tools unitchecker protocol, reimplemented
// here because the real module is not vendored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the go vet -vettool protocol for the analyzer suite:
//
//	tool -V=full          print a version line for the build cache
//	tool -flags           print the supported flags as JSON
//	tool <unit>.cfg       analyze one package unit, diagnostics to stderr
//
// With package-pattern arguments instead (or no arguments, meaning ./...),
// it self-drives via `go list` as a standalone checker. Returns the
// process exit code.
func VetMain(version string, args []string, stdout, stderr io.Writer) int {
	var patterns []string
	for _, arg := range args {
		switch {
		case strings.HasPrefix(arg, "-V"):
			// cmd/go hashes this line into its action cache key; the
			// second field must be the literal word "version".
			fmt.Fprintf(stdout, "manetsimvet version %s\n", version)
			return 0
		case arg == "-flags":
			// No analyzer flags: an empty JSON list tells cmd/go not to
			// forward any user vet flags to this tool.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			return vetUnit(arg, stderr)
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(stderr, "manetsimvet: unknown flag %s\n", arg)
			return 2
		default:
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "manetsimvet: %v\n", err)
		return 1
	}
	diags, err := AnalyzeDir(dir, Suite(), patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "manetsimvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetUnit analyzes one vet.cfg package unit.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "manetsimvet: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "manetsimvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects a facts ("vetx") output file for every unit so later
	// units can consume it; this suite keeps no cross-package facts, so an
	// empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "manetsimvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	// Dependency-only units exist purely to propagate facts; nothing to do.
	if cfg.VetxOnly {
		return 0
	}

	loader := NewLoader(cfg.PackageFile, cfg.ImportMap)
	files, pkg, info, err := loader.Check(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "manetsimvet: %v\n", err)
		return 1
	}
	diags, err := RunSuite(Suite(), loader.Fset, files, pkg, info, IsSimPackage(cfg.ImportPath))
	if err != nil {
		fmt.Fprintf(stderr, "manetsimvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
