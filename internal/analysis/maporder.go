package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder reports `range` statements over maps whose loop body is
// order-sensitive: it appends to data declared outside the loop (the
// classic Result-reachable accumulation), schedules simulator events, or
// serializes (fmt/json/hash writes). Go randomizes map iteration order per
// run, so any of those turns a fixed seed into a flaky golden digest.
//
// The fix is to collect and sort the keys first (iterating the sorted slice
// never trips the check). Iterations that are genuinely commutative —
// deletes, counter sums — are not flagged; a reviewed exception can be
// annotated //manetsim:allow maporder.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid order-sensitive iteration over maps (appends, event scheduling, serialization) " +
		"in simulation packages; sort keys first",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !pass.SimPackage {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := orderSensitive(pass, fn, rng); reason != "" {
					pass.Reportf(rng.Pos(), "iteration over map %s %s: map order is randomized per run; iterate sorted keys instead", exprString(pass.Fset, rng.X), reason)
				}
				return true
			})
		}
	}
	return nil
}

// orderSensitive classifies the loop body; a non-empty return describes why
// iteration order can leak into results. fn is the enclosing function: an
// append target that is sorted later in the same function is the
// collect-then-sort idiom and stays allowed.
func orderSensitive(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) string {
	info := pass.TypesInfo
	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append whose destination outlives the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				if root := rootIdent(call.Args[0]); root != nil {
					if obj := info.ObjectOf(root); obj != nil && declaredOutside(obj, rng) && !sortedAfter(pass, fn, rng, obj) {
						reason = "appends to " + root.Name + " declared outside the loop"
						return false
					}
				}
			}
		}
		f := funcObj(info, call)
		if f == nil {
			return true
		}
		// Scheduling inside a map loop: event (time, seq) order becomes
		// map-order dependent, which reorders dispatch between runs.
		if sig := f.Signature(); sig.Recv() != nil && isSchedulerPkg(pkgPathOf(f)) {
			switch f.Name() {
			case "At", "AtFunc", "After", "AfterFunc":
				reason = "schedules events (Scheduler." + f.Name() + ")"
				return false
			}
		}
		// Serialization: bytes written in map order feed goldens/digests.
		switch pkgPathOf(f) {
		case "fmt":
			switch f.Name() {
			case "Fprintf", "Fprint", "Fprintln", "Sprintf", "Sprint", "Sprintln", "Appendf":
				reason = "serializes via fmt." + f.Name()
				return false
			}
		case "encoding/json":
			reason = "serializes via json." + f.Name()
			return false
		}
		if f.Signature().Recv() != nil {
			switch f.Name() {
			case "Write", "WriteString", "WriteByte", "Sum", "Encode":
				reason = "writes to " + exprString(pass.Fset, call.Fun)
				return false
			}
		}
		return true
	})
	return reason
}

// rootIdent peels selectors/indexing down to the base identifier of an
// expression: dsts, s.buf[i] -> s, (x) -> x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj was declared outside the range
// statement, i.e. it survives the loop.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether obj is handed to a sort function after the
// range loop in the same enclosing function — the collect-then-sort idiom
// that makes accumulation order irrelevant.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := funcObj(info, call)
		if f == nil {
			return true
		}
		switch pkgPathOf(f) {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.HasPrefix(f.Name(), "Sort") && f.Name() != "Slice" && f.Name() != "SliceStable" &&
			f.Name() != "Ints" && f.Name() != "Strings" && f.Name() != "Float64s" && f.Name() != "Stable" {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && info.ObjectOf(root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	// Compact one-line rendering for diagnostics; falls back to the
	// position when the expression is exotic.
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(fset, v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(fset, v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(fset, v.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(fset, v.X)
	default:
		return "expression"
	}
}
