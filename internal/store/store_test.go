package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	key := `{"Scenario":{"Name":"chain-2"},"Seed":1}`
	payload := json.RawMessage(`{"goodput":123.5}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %s, want %s", got, payload)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestPathLayoutIsContentAddressed(t *testing.T) {
	s := open(t)
	key := "some canonical config json"
	h := Hash(key)
	want := filepath.Join(s.Dir(), h[:2], h+".json")
	if got := s.Path(key); got != want {
		t.Fatalf("Path = %s, want %s", got, want)
	}
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Fatalf("Hash %q is not lowercase hex sha256", h)
	}
	if err := s.Put(key, json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at the content address: %v", err)
	}
}

// TestCorruptEntriesAreMisses pins the robustness contract: no on-disk
// state — however mangled — may surface as an error or a wrong hit.
func TestCorruptEntriesAreMisses(t *testing.T) {
	key := "the key"
	payload := json.RawMessage(`{"v":1}`)
	corruptions := map[string]func(t *testing.T, path string){
		"zero-length": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-schema-version": func(t *testing.T, path string) {
			b, _ := json.Marshal(envelope{SchemaVersion: 99, Key: key, Result: payload})
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-key": func(t *testing.T, path string) {
			// A file whose hash address does not match its recorded key —
			// what a hash collision or a misplaced copy would look like.
			b, _ := json.Marshal(envelope{SchemaVersion: 1, Key: "another key", Result: payload})
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty-result": func(t *testing.T, path string) {
			b, _ := json.Marshal(envelope{SchemaVersion: 1, Key: key})
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s.Path(key))
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %s", got)
			}
			// The slot stays writable: a re-run repairs it.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); !ok {
				t.Fatal("miss after repairing the corrupt entry")
			}
		})
	}
}

func TestMissingEntryIsMissNotError(t *testing.T) {
	s := open(t)
	if _, ok := s.Get("never stored"); ok {
		t.Fatal("hit for a key never stored")
	}
}

// TestConcurrentWritersAndReaders hammers one key and several distinct
// keys from many goroutines; under -race this doubles as the data-race
// check, and every observed hit must be a complete, valid payload.
func TestConcurrentWritersAndReaders(t *testing.T) {
	s := open(t)
	const (
		goroutines = 16
		rounds     = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				shared := json.RawMessage(fmt.Sprintf(`{"writer":%d,"round":%d}`, g, i))
				if err := s.Put("shared-key", shared); err != nil {
					t.Errorf("Put shared: %v", err)
				}
				if raw, ok := s.Get("shared-key"); ok {
					var v struct{ Writer, Round int }
					if err := json.Unmarshal(raw, &v); err != nil {
						t.Errorf("observed a torn write: %s: %v", raw, err)
					}
				}
				own := fmt.Sprintf("key-%d", g)
				if err := s.Put(own, shared); err != nil {
					t.Errorf("Put own: %v", err)
				}
				if raw, ok := s.Get(own); !ok || string(raw) != string(shared) {
					t.Errorf("own key read back %s, want %s", raw, shared)
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := s.Get("shared-key"); !ok {
		t.Fatal("shared key missing after the storm")
	}
	if got, want := s.Len(), goroutines+1; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// No temp files may survive the storm.
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".tmp" {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}

func TestSchemaVersionPartitionsStores(t *testing.T) {
	dir := t.TempDir()
	v1, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("k", json.RawMessage(`{"old":true}`)); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get("k"); ok {
		t.Fatal("a v2 store served a v1 envelope")
	}
	if err := v2.Put("k", json.RawMessage(`{"new":true}`)); err != nil {
		t.Fatal(err)
	}
	if raw, ok := v2.Get("k"); !ok || string(raw) != `{"new":true}` {
		t.Fatalf("v2 read back %s", raw)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 1); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "store")
	if _, err := Open(dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
