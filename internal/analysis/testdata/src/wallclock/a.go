// Package wallclock exercises the wallclock analyzer: package-level time
// functions are forbidden in simulation packages, methods on time values and
// annotated exceptions are not.
package wallclock

import "time"

const tick = 5 * time.Millisecond

func bad() time.Time {
	time.Sleep(tick)  // want `wallclock: call to time\.Sleep in simulation package wallclock`
	return time.Now() // want `call to time\.Now`
}

func timer(fire func()) *time.Timer {
	return time.AfterFunc(tick, fire) // want `call to time\.AfterFunc`
}

// methodsAllowed uses only methods on time values — pure arithmetic, no
// wall-clock reads — plus Duration constants.
func methodsAllowed(t time.Time, d time.Duration) bool {
	return t.After(t.Add(d)) || d.Seconds() > 1
}

func allowedAbove() time.Time {
	//manetsim:allow wallclock reviewed: cold diagnostic path only
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //manetsim:allow wallclock
}
