package core

import (
	"testing"
	"time"

	"manetsim/internal/phy"
)

// smallCfg returns a reduced-scale config for fast tests: 1100 packets in
// batches of 100 (11 batches, 1 warm-up), same structure as the paper.
func smallCfg(scn *Scenario, tspec TransportSpec) Config {
	return Config{
		Scenario:     scn,
		Bandwidth:    phy.Rate2Mbps,
		Transport:    tspec,
		Seed:         1,
		TotalPackets: 1100,
		BatchPackets: 100,
		MaxSimTime:   time.Hour,
	}
}

func TestRunVegasOverTwoHopChain(t *testing.T) {
	res, err := Run(smallCfg(Chain(2), TransportSpec{Protocol: ProtoVegas}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: delivered %d in %v", res.Delivered, res.SimTime)
	}
	if res.Delivered < 1100 {
		t.Errorf("delivered = %d, want >= 1100", res.Delivered)
	}
	if len(res.Batches) != 10 {
		t.Errorf("measured batches = %d, want 10", len(res.Batches))
	}
	// 2-hop chain at 2 Mbit/s: alternate-hop forwarding halves the
	// single-hop ~1.5 Mbit/s; expect goodput in the several-hundred-kbit
	// range.
	g := res.AggGoodput.Mean
	if g < 200e3 || g > 1.2e6 {
		t.Errorf("goodput = %.0f bit/s, outside plausible range for 2 hops", g)
	}
	if res.AvgWindow.Mean <= 0 {
		t.Errorf("avg window = %v, want > 0", res.AvgWindow.Mean)
	}
}

func TestRunNewRenoOverSevenHopChain(t *testing.T) {
	res, err := Run(smallCfg(Chain(7), TransportSpec{Protocol: ProtoNewReno}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: delivered %d in %v", res.Delivered, res.SimTime)
	}
	// Hidden terminals on a 7-hop chain must cause some transport
	// retransmissions for NewReno.
	if res.Rtx.Mean == 0 {
		t.Log("note: zero NewReno retransmissions on 7 hops (unusual but possible at tiny scale)")
	}
	if res.AggGoodput.Mean < 50e3 {
		t.Errorf("goodput = %.0f bit/s, implausibly low", res.AggGoodput.Mean)
	}
}

func TestRunPacedUDPOverChain(t *testing.T) {
	// 40ms gap is safely above t_opt for a 4-hop chain (~30ms zero-
	// contention pipeline), so nearly all offered load gets through.
	cfg := smallCfg(Chain(4), TransportSpec{Protocol: ProtoPacedUDP, UDPGap: 40 * time.Millisecond})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: delivered %d in %v", res.Delivered, res.SimTime)
	}
	// CBR at 1460B/40ms = 292 kbit/s offered; goodput close to that.
	g := res.AggGoodput.Mean
	if g < 250e3 || g > 310e3 {
		t.Errorf("UDP goodput = %.0f bit/s, want near the 292 kbit/s offered load", g)
	}
	if res.Rtx.Mean != 0 {
		t.Errorf("UDP reports retransmissions: %v", res.Rtx.Mean)
	}
}

// TestRunPacedUDPOverdriveLosesPackets pins the paper's Figure 10 left
// side: pacing faster than t_opt causes heavy hidden-terminal loss.
func TestRunPacedUDPOverdriveLosesPackets(t *testing.T) {
	fast := smallCfg(Chain(4), TransportSpec{Protocol: ProtoPacedUDP, UDPGap: 25 * time.Millisecond})
	slow := smallCfg(Chain(4), TransportSpec{Protocol: ProtoPacedUDP, UDPGap: 40 * time.Millisecond})
	rf, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	// The overdriven source must lose a substantial fraction: goodput per
	// offered packet collapses below the conservative source's.
	fastEff := rf.AggGoodput.Mean * 25
	slowEff := rs.AggGoodput.Mean * 40
	if fastEff >= slowEff {
		t.Errorf("overdriven UDP efficiency %.0f >= conservative %.0f; Figure 10 cliff missing", fastEff, slowEff)
	}
}

func TestRunGridSixFlows(t *testing.T) {
	cfg := smallCfg(Grid(), TransportSpec{Protocol: ProtoVegas})
	cfg.TotalPackets = 2200
	cfg.BatchPackets = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: delivered %d in %v", res.Delivered, res.SimTime)
	}
	if len(res.Flows) != 6 {
		t.Fatalf("flows = %d, want 6", len(res.Flows))
	}
	if res.Jain.Mean <= 0 || res.Jain.Mean > 1 {
		t.Errorf("Jain index = %v, out of range", res.Jain.Mean)
	}
	if len(res.PerFlowGood) != 6 {
		t.Errorf("per-flow estimates = %d, want 6", len(res.PerFlowGood))
	}
}

func TestRunRandomTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("random topology run is slow")
	}
	cfg := smallCfg(Random(), TransportSpec{Protocol: ProtoVegas})
	cfg.TotalPackets = 1100
	cfg.BatchPackets = 100
	cfg.MaxSimTime = 10 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 10 {
		t.Fatalf("flows = %d, want 10", len(res.Flows))
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered on the random topology")
	}
}

func TestRunStaticRoutingAblation(t *testing.T) {
	cfg := smallCfg(Chain(4).WithRouting(RoutingStatic), TransportSpec{Protocol: ProtoVegas})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("run truncated")
	}
	if res.FalseRouteFailures != 0 {
		t.Errorf("static routing reported %d false route failures", res.FalseRouteFailures)
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	cfg := smallCfg(Chain(3), TransportSpec{Protocol: ProtoVegas})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AggGoodput.Mean != b.AggGoodput.Mean || a.SimTime != b.SimTime {
		t.Errorf("same seed diverged: %v/%v vs %v/%v",
			a.AggGoodput.Mean, a.SimTime, b.AggGoodput.Mean, b.SimTime)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.AggGoodput.Mean == a.AggGoodput.Mean && c.SimTime == a.SimTime {
		t.Error("different seeds produced identical results")
	}
}

func TestRunVegasBeatsNewRenoOnChain(t *testing.T) {
	// The paper's headline (Figure 6): Vegas outperforms NewReno on
	// multihop chains. Test at 8 hops where the gap peaks (~75%).
	cfgV := smallCfg(Chain(8), TransportSpec{Protocol: ProtoVegas})
	cfgN := smallCfg(Chain(8), TransportSpec{Protocol: ProtoNewReno})
	v, err := Run(cfgV)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(cfgN)
	if err != nil {
		t.Fatal(err)
	}
	if v.Truncated || n.Truncated {
		t.Fatalf("truncated runs: vegas=%v newreno=%v", v.Truncated, n.Truncated)
	}
	if v.AggGoodput.Mean <= n.AggGoodput.Mean {
		t.Errorf("Vegas goodput %.0f <= NewReno %.0f on 8-hop chain; paper's headline violated",
			v.AggGoodput.Mean, n.AggGoodput.Mean)
	}
	if v.AvgWindow.Mean >= n.AvgWindow.Mean {
		t.Errorf("Vegas window %.1f >= NewReno %.1f; Vegas must be smaller (Figure 8)",
			v.AvgWindow.Mean, n.AvgWindow.Mean)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Scenario: Chain(0), Transport: TransportSpec{Protocol: ProtoVegas}}); err == nil {
		t.Error("zero-hop chain accepted")
	}
	if _, err := Run(Config{Transport: TransportSpec{Protocol: ProtoVegas}}); err == nil {
		t.Error("nil scenario accepted")
	}
	cfg := smallCfg(Chain(2), TransportSpec{Protocol: ProtoPacedUDP})
	if _, err := Run(cfg); err == nil {
		t.Error("paced UDP without gap accepted")
	}
	bad := smallCfg(Chain(2).WithFlows(Flow{Src: 0, Dst: 99}), TransportSpec{Protocol: ProtoVegas})
	if _, err := Run(bad); err == nil {
		t.Error("out-of-range flow accepted")
	}
}
