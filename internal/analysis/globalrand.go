package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand entry points that build a new
// generator or source rather than drawing from the shared global one.
// They are allowed — provided the seed is threaded in from outside (a
// Config seed, a derived per-link stream), not a constant baked into
// result-affecting code and not the wall clock.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 spellings.
	"NewPCG": true, "NewChaCha8": true,
}

// GlobalRand reports uses of the shared global math/rand generator and of
// locally-constructed generators whose seeds cannot be reproduced from a
// run's Config: package-level rand state, calls to top-level draw functions
// (rand.Intn, rand.Float64, ...), constant seeds, and wall-clock seeds.
// Test files are exempt — a fixed-seed rand.New in a test is fine.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand state and non-threaded seeds in simulation packages; " +
		"randomness must derive from Config seeds or per-link streams",
	Run: runGlobalRand,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *Pass) error {
	if !pass.SimPackage {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		// Package-level vars that hold generator state shared across runs:
		// under a parallel Campaign two workers would interleave draws and
		// destroy per-run reproducibility.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if f := funcObj(pass.TypesInfo, call); f != nil && isRandPkg(pkgPathOf(f)) {
							pass.Reportf(vs.Pos(), "package-level math/rand state: a shared generator breaks per-run determinism; thread a *rand.Rand from the Config seed instead")
							return false
						}
						return true
					})
				}
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := funcObj(pass.TypesInfo, call)
			if f == nil || !isRandPkg(pkgPathOf(f)) || f.Signature().Recv() != nil {
				return true
			}
			switch {
			case !randConstructors[f.Name()]:
				// Top-level draw (rand.Intn, rand.Shuffle, rand.Seed, ...):
				// always the shared global generator.
				pass.Reportf(call.Pos(), "call to global rand.%s: draws from the process-wide generator are not reproducible from a run's seed; use the scheduler's or a threaded *rand.Rand", f.Name())
			case f.Name() == "NewSource" || f.Name() == "NewPCG":
				// Seed-taking constructors: the seed must come from a
				// variable threaded in, not a literal or the wall clock.
				for _, arg := range call.Args {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
						pass.Reportf(call.Pos(), "rand.%s seeded with constant %s in result-affecting code: seeds must be threaded from Config (or derived per-link streams)", f.Name(), tv.Value)
						break
					}
					if callsWallClock(pass.TypesInfo, arg) {
						pass.Reportf(call.Pos(), "rand.%s seeded from the wall clock: nondeterministic; thread the Config seed instead", f.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// callsWallClock reports whether expr contains a call to a wall-clock
// function from package time (time.Now().UnixNano() seeds and the like).
func callsWallClock(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := funcObj(info, call); f != nil && pkgPathOf(f) == "time" &&
			f.Signature().Recv() == nil && wallClockFuncs[f.Name()] {
			found = true
			return false
		}
		return true
	})
	return found
}
