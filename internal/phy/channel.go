package phy

import (
	"fmt"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Handler is the interface the MAC layer implements to receive PHY
// indications. All calls happen inside scheduler events, in a fixed order
// for simultaneous indications: frame delivery (RxFrame or RxCorrupted)
// before ChannelIdle.
type Handler interface {
	// RxFrame delivers a frame that was decoded without corruption.
	RxFrame(frame any, from pkt.NodeID)
	// RxCorrupted signals the end of a signal that could not be delivered
	// as a good frame: a collision-corrupted decode, sub-decode-threshold
	// noise (a transmission sensed from beyond TxRange), or a frame that
	// arrived while transmitting. 802.11 responds with EIFS deferral —
	// ns-2 behaves the same way for every errored reception, which is
	// what keeps hidden-terminal neighborhoods from firing into the
	// SIFS gaps of exchanges they cannot decode.
	RxCorrupted()
	// ChannelBusy signals energy appearing on an idle channel.
	ChannelBusy()
	// ChannelIdle signals all energy disappearing from the channel.
	ChannelIdle()
	// TxDone signals completion of this node's own transmission.
	TxDone()
}

// CaptureThreshold is the power ratio (10 dB, linear 10x) above which an
// in-progress reception survives a new overlapping signal, matching ns-2's
// CPThresh_. Set Channel.NoCapture to disable (ablation).
const CaptureThreshold = 10.0

// rxPower returns the relative received power over distance d using the
// two-ray ground model's d^-4 law (absolute scale is irrelevant — only
// ratios matter for capture).
func rxPower(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return 1 / (d * d * d * d)
}

// neighbor is a precomputed reachability entry from one radio to another.
type neighbor struct {
	radio     *Radio
	propDelay time.Duration
	decodable bool    // within TxRange (otherwise interference/carrier-sense only)
	power     float64 // relative received power at the neighbor
}

// Channel connects the radios of one scenario. Reachability is threshold
// based and precomputed from node positions.
type Channel struct {
	sched  *sim.Scheduler
	radios []*Radio
	// NoCapture disables the 10 dB capture effect, making any overlapping
	// signal within interference range lethal (the ablation model).
	NoCapture bool
}

// NewChannel creates a channel for nodes at the given positions and returns
// it with one radio per node. The handler for each radio must be set with
// Radio.SetHandler before any traffic flows.
func NewChannel(sched *sim.Scheduler, positions []geo.Point) *Channel {
	c := &Channel{sched: sched}
	c.radios = make([]*Radio, len(positions))
	for i := range positions {
		c.radios[i] = &Radio{ch: c, id: pkt.NodeID(i), pos: positions[i]}
	}
	for i, r := range c.radios {
		for j, other := range c.radios {
			if i == j {
				continue
			}
			d := positions[i].Distance(positions[j])
			if d <= CSRange {
				r.neighbors = append(r.neighbors, neighbor{
					radio:     other,
					propDelay: PropagationDelay(d),
					decodable: d <= TxRange,
					power:     rxPower(d),
				})
			}
		}
	}
	return c
}

// Radio returns the radio of node id.
func (c *Channel) Radio(id pkt.NodeID) *Radio { return c.radios[id] }

// NumRadios returns the number of radios on the channel.
func (c *Channel) NumRadios() int { return len(c.radios) }

// signal is one transmission as perceived by one receiver.
type signal struct {
	frame      any
	from       pkt.NodeID
	decodable  bool
	power      float64
	start, end sim.Time
}

// Radio is the physical layer of one node: it transmits frames onto the
// channel and tracks the signals currently on the air at its own position
// to implement carrier sensing and the no-capture collision model.
type Radio struct {
	ch        *Channel
	id        pkt.NodeID
	pos       geo.Point
	handler   Handler
	neighbors []neighbor

	txUntil   sim.Time // end of own transmission (0 => not transmitting)
	airCount  int      // signals currently arriving (any strength)
	decoding  *signal  // frame currently being decoded, if any
	corrupted bool     // decoding frame got hit by a collision

	// Energy accounting (time integrals of radio states).
	txTime, rxTime time.Duration

	// Counters for link-level diagnostics.
	FramesSent      uint64
	FramesDelivered uint64
	Collisions      uint64 // receptions corrupted at this node
}

// SetHandler installs the MAC-layer handler.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// ID returns the node id this radio belongs to.
func (r *Radio) ID() pkt.NodeID { return r.id }

// Pos returns the radio position.
func (r *Radio) Pos() geo.Point { return r.pos }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.txUntil > r.ch.sched.Now() }

// Idle reports whether the physical channel is sensed idle at this radio:
// no energy on the air and not transmitting.
func (r *Radio) Idle() bool { return r.airCount == 0 && !r.Transmitting() }

// TxTime returns cumulative transmission time (for the energy model).
func (r *Radio) TxTime() time.Duration { return r.txTime }

// RxTime returns cumulative decode time (for the energy model).
func (r *Radio) RxTime() time.Duration { return r.rxTime }

// Transmit puts a frame on the air for the given duration. The caller (the
// MAC) is responsible for carrier sensing; the radio transmits
// unconditionally, exactly like hardware. TxDone fires on the handler when
// the transmission completes.
func (r *Radio) Transmit(frame any, airtime time.Duration) {
	now := r.ch.sched.Now()
	if r.Transmitting() {
		panic(fmt.Sprintf("phy: node %d transmit while transmitting", r.id))
	}
	if airtime <= 0 {
		panic(fmt.Sprintf("phy: non-positive airtime %v", airtime))
	}
	// Half duplex: starting to transmit destroys any in-progress decode.
	if r.decoding != nil {
		r.corrupted = true
	}
	r.txUntil = now + airtime
	r.txTime += airtime
	r.FramesSent++
	for _, nb := range r.neighbors {
		nb := nb
		start := now + nb.propDelay
		s := &signal{
			frame: frame, from: r.id, decodable: nb.decodable,
			power: nb.power, start: start, end: start + airtime,
		}
		r.ch.sched.At(start, func() { nb.radio.signalStart(s) })
		r.ch.sched.At(s.end, func() { nb.radio.signalEnd(s) })
	}
	r.ch.sched.At(r.txUntil, func() {
		r.txUntil = 0
		r.handler.TxDone()
	})
}

// signalStart registers energy arriving at this radio and decides whether a
// decode begins. Decoding starts only when the frame is within transmission
// range, the radio is not transmitting, and no other energy is present —
// any concurrent signal within interference range prevents or corrupts
// reception (no capture).
func (r *Radio) signalStart(s *signal) {
	wasIdle := r.airCount == 0
	r.airCount++
	switch {
	case r.Transmitting():
		// Half duplex: nothing receivable during own transmission.
	case r.decoding != nil:
		// Overlap with an in-progress decode. ns-2 semantics: if the
		// locked frame is at least 10 dB stronger the new signal is mere
		// noise (capture); otherwise both are lost. The new signal is
		// never decoded either way — the receiver stays locked.
		if r.ch.NoCapture || r.decoding.power < CaptureThreshold*s.power {
			r.corrupted = true
		}
	case s.decodable && wasIdle:
		r.decoding = s
		r.corrupted = false
	}
	if wasIdle && !r.Transmitting() {
		r.handler.ChannelBusy()
	}
}

// signalEnd removes a signal from the air, completing its decode if it was
// the one being received. Delivery happens before a possible ChannelIdle
// indication so the MAC sees NAV updates first. Signals that end without a
// successful delivery — noise from beyond decode range, corrupted decodes,
// or anything overlapping our own transmission — report RxCorrupted so the
// MAC applies EIFS.
func (r *Radio) signalEnd(s *signal) {
	r.airCount--
	switch {
	case r.decoding == s:
		r.decoding = nil
		r.rxTime += s.end - s.start
		if r.Transmitting() || r.corrupted {
			r.Collisions++
			r.handler.RxCorrupted()
		} else {
			r.FramesDelivered++
			r.handler.RxFrame(s.frame, s.from)
		}
		r.corrupted = false
	default:
		r.handler.RxCorrupted()
	}
	if r.airCount == 0 && !r.Transmitting() {
		r.handler.ChannelIdle()
	}
}
