package mobility

import (
	"math/rand"
	"testing"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/sim"
)

var testField = geo.Rect{Max: geo.Point{X: 1000, Y: 500}}

func waypoint(t *testing.T, cfg WaypointConfig, initial []geo.Point, seed int64) *RandomWaypoint {
	t.Helper()
	m, err := NewRandomWaypoint(cfg, initial, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStationaryNeverMoves(t *testing.T) {
	pts := geo.Chain(3)
	m := NewStationary(pts)
	if !m.Static() || m.Len() != 4 {
		t.Fatalf("Static()=%v Len()=%d", m.Static(), m.Len())
	}
	for i := range pts {
		for _, at := range []sim.Time{0, time.Second, time.Hour} {
			if got := m.PositionAt(i, at); got != pts[i] {
				t.Errorf("node %d at %v = %v, want %v", i, at, got, pts[i])
			}
		}
	}
}

func TestWaypointStaysInField(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 1, MaxSpeed: 20, Pause: time.Second}
	initial := []geo.Point{{X: 0, Y: 0}, {X: 2000, Y: 2000}} // second starts outside
	m := waypoint(t, cfg, initial, 1)
	for i := 0; i < m.Len(); i++ {
		for s := 0; s <= 600; s++ {
			p := m.PositionAt(i, sim.Time(s)*time.Second)
			if !cfg.Field.Contains(p) {
				t.Fatalf("node %d left the field at t=%ds: %v", i, s, p)
			}
		}
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 5, MaxSpeed: 5, Pause: 0}
	m := waypoint(t, cfg, []geo.Point{{X: 500, Y: 250}}, 1)
	p0 := m.PositionAt(0, 0)
	p1 := m.PositionAt(0, 30*time.Second)
	if p0 == p1 {
		t.Fatalf("node did not move in 30s at 5 m/s: %v", p0)
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 1, MaxSpeed: 10, Pause: 0}
	m := waypoint(t, cfg, []geo.Point{{X: 100, Y: 100}}, 7)
	const step = 100 * time.Millisecond
	prev := m.PositionAt(0, 0)
	for i := 1; i <= 3000; i++ {
		at := sim.Time(i) * step
		p := m.PositionAt(0, at)
		if d := prev.Distance(p); d > cfg.MaxSpeed*step.Seconds()+1e-9 {
			t.Fatalf("node moved %.2f m in %v (max speed %g m/s)", d, step, cfg.MaxSpeed)
		}
		prev = p
	}
}

func TestWaypointPauses(t *testing.T) {
	// With MinSpeed==MaxSpeed the leg durations are deterministic given the
	// waypoints; verify the node rests at its first waypoint for Pause.
	cfg := WaypointConfig{Field: testField, MinSpeed: 10, MaxSpeed: 10, Pause: 5 * time.Second}
	m := waypoint(t, cfg, []geo.Point{{X: 0, Y: 0}}, 3)
	// Advance far enough to be inside some leg, then find an arrival by
	// scanning: position stable for the pause duration.
	var arrived sim.Time
	prev := m.PositionAt(0, 0)
	const step = 10 * time.Millisecond
	for i := 1; i < 100000; i++ {
		at := sim.Time(i) * step
		p := m.PositionAt(0, at)
		if p == prev && at > 0 {
			arrived = at
			break
		}
		prev = p
	}
	if arrived == 0 {
		t.Fatal("never observed a pause")
	}
	mid := m.PositionAt(0, arrived+2*time.Second)
	if mid != prev {
		t.Errorf("node moved during pause: %v -> %v", prev, mid)
	}
}

func TestWaypointDeterministicPerSeed(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 1, MaxSpeed: 15, Pause: 2 * time.Second}
	initial := []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 400}, {X: 500, Y: 100}}
	a := waypoint(t, cfg, initial, 42)
	b := waypoint(t, cfg, initial, 42)
	c := waypoint(t, cfg, initial, 43)
	same, diff := true, false
	for s := 0; s <= 300; s++ {
		at := sim.Time(s) * time.Second
		for i := range initial {
			pa, pb, pc := a.PositionAt(i, at), b.PositionAt(i, at), c.PositionAt(i, at)
			if pa != pb {
				same = false
			}
			if pa != pc {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different trajectories")
	}
	if !diff {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestWaypointDegenerateFieldIsALine(t *testing.T) {
	cfg := WaypointConfig{
		Field:    geo.Rect{Max: geo.Point{X: 800, Y: 0}},
		MinSpeed: 1, MaxSpeed: 5,
	}
	m := waypoint(t, cfg, geo.Chain(4), 1)
	for i := 0; i < m.Len(); i++ {
		for s := 0; s <= 120; s++ {
			if p := m.PositionAt(i, sim.Time(s)*time.Second); p.Y != 0 {
				t.Fatalf("node %d left the line: %v", i, p)
			}
		}
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	bad := []WaypointConfig{
		{Field: testField, MinSpeed: 0, MaxSpeed: 5},            // vmin=0 stalls
		{Field: testField, MinSpeed: 5, MaxSpeed: 1},            // inverted speeds
		{Field: testField, MinSpeed: 1, MaxSpeed: 2, Pause: -1}, // negative pause
	}
	for i, cfg := range bad {
		if _, err := NewRandomWaypoint(cfg, geo.Chain(2), rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewRandomWaypoint(WaypointConfig{Field: testField, MinSpeed: 1, MaxSpeed: 1}, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty node set accepted")
	}
}

func TestPinnedFreezesSelectedNodes(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 5, MaxSpeed: 5}
	initial := []geo.Point{{X: 100, Y: 100}, {X: 900, Y: 400}}
	inner := waypoint(t, cfg, initial, 1)
	m := Pin(inner, map[int]geo.Point{0: initial[0]})
	if m.Static() {
		t.Error("partially pinned waypoint model reported static")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	moved := false
	for s := 0; s <= 120; s++ {
		at := sim.Time(s) * time.Second
		if p := m.PositionAt(0, at); p != initial[0] {
			t.Fatalf("pinned node moved to %v at t=%ds", p, s)
		}
		if m.PositionAt(1, at) != initial[1] {
			moved = true
		}
	}
	if !moved {
		t.Error("unpinned node never moved")
	}
}

func TestPinnedAllNodesIsStatic(t *testing.T) {
	cfg := WaypointConfig{Field: testField, MinSpeed: 1, MaxSpeed: 5}
	initial := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}}
	m := Pin(waypoint(t, cfg, initial, 1), map[int]geo.Point{0: initial[0], 1: initial[1]})
	if !m.Static() {
		t.Error("fully pinned model not static")
	}
}
