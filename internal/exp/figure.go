package exp

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Point is one (x, y) sample of a series, optionally with a confidence
// interval half-width.
type Point struct {
	X  string
	Y  float64
	CI float64
}

// Series is one labelled curve/bar group.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated table or figure: a set of series over a common
// x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries derived observations (e.g. the optimal UDP gaps used).
	Notes []string
}

// xValues returns the union of x labels in first-appearance order.
func (f *Figure) xValues() []string {
	var xs []string
	seen := map[string]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

func (f *Figure) lookup(s Series, x string) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// Render writes an aligned text table: one row per x value, one column per
// series.
func (f *Figure) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, x := range f.xValues() {
		row := []string{x}
		for _, s := range f.Series {
			p, ok := f.lookup(s, x)
			switch {
			case !ok:
				row = append(row, "-")
			case p.CI > 0:
				row = append(row, fmt.Sprintf("%.3g ±%.2g", p.Y, p.CI))
			default:
				row = append(row, fmt.Sprintf("%.4g", p.Y))
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// CSV writes the figure in long form: series,x,y,ci.
func (f *Figure) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,y,ci"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%q,%q,%g,%g\n", s.Name, p.X, p.Y, p.CI); err != nil {
				return err
			}
		}
	}
	return nil
}
