package exp

import (
	"fmt"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// Chaos is the fault-injection extension experiment: Reno and Westwood+
// on a 4-hop chain, fault-free and under each built-in disturbance — a
// mid-chain relay crash, a blackout of the 1<->2 link, and an axis
// partition through the middle of the chain, each severing the only
// path for two seconds. Goodput is the figure; the resilience metrics
// (time in outage, recovery after heal, frames cut at the PHY) land in
// the notes. Fault transitions draw no randomness, so the figure also
// pins that faulted runs stay byte-deterministic per seed.
func Chaos(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "chaos", Title: "4-hop chain, 2 Mbit/s: goodput under injected faults (2 s outage at t=10s)",
		XLabel: "fault", YLabel: "goodput [kbit/s]",
	}
	faults := []struct {
		name string
		spec []core.FaultSpec
	}{
		{"none", nil},
		{"crash", []core.FaultSpec{core.CrashFault(2, 10*time.Second, 2*time.Second)}},
		{"blackout", []core.FaultSpec{core.BlackoutFault(1, 2, 10*time.Second, 2*time.Second)}},
		{"partition", []core.FaultSpec{core.PartitionFault(500, 10*time.Second, 2*time.Second)}},
	}
	variants := []struct {
		name string
		t    core.TransportSpec
	}{
		{"Reno", core.TransportSpec{Protocol: core.ProtoReno}},
		{"Westwood+", core.TransportSpec{Name: "westwood"}},
	}
	for _, v := range variants {
		var cfgs []core.Config
		for _, fs := range faults {
			cfg := chainCfg(4, phy.Rate2Mbps, v.t)
			cfg.Faults = fs.spec
			cfgs = append(cfgs, cfg)
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: faults[i].name, Y: kbit(res.AggGoodput.Mean)})
			if rep := res.Faults; rep != nil && len(rep.Outages) > 0 {
				o := rep.Outages[0]
				f.Notes = append(f.Notes, fmt.Sprintf(
					"%s/%s: %v in outage, recovered %v after heal, %.1f kbit/s during vs %.1f outside, %d frames cut",
					v.name, faults[i].name, rep.TimeInOutage,
					o.TimeToRecoverAfterHeal.Round(time.Millisecond),
					kbit(rep.GoodputDuringBps), kbit(rep.GoodputOutsideBps), rep.FramesCut))
			}
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"every fault severs the chain's only path; recovery is a cold AODV re-discovery plus the transport's RTO backoff after the heal")
	return f, nil
}
