// Package manetsim simulates TCP over static multihop IEEE 802.11 wireless
// networks. It reproduces the evaluation of ElRakabawy, Lindemann & Vernon,
// "Improving TCP Performance for Multihop Wireless Networks" (DSN 2005):
// TCP Vegas versus TCP NewReno, with and without dynamic ACK thinning,
// against an optimally paced UDP reference, over chain, grid and random
// topologies routed by AODV at 2, 5.5 and 11 Mbit/s.
//
// The simulator is a from-scratch discrete-event implementation of the full
// stack the paper depends on: an IEEE 802.11 DCF MAC with RTS/CTS, NAV,
// EIFS and binary exponential backoff; a threshold wireless channel with
// two-ray-ground capture; AODV with the link-failure behaviour that causes
// the paper's "false route failures"; packet-granularity TCP NewReno and
// Vegas; and receiver-side ACK thinning.
//
// # Quick start
//
//	res, err := manetsim.Run(manetsim.Config{
//	    Topology:  manetsim.Chain(7),
//	    Bandwidth: manetsim.Rate2Mbps,
//	    Transport: manetsim.TransportSpec{Protocol: manetsim.Vegas},
//	    Seed:      1,
//	})
//	if err != nil { ... }
//	fmt.Printf("goodput: %.0f kbit/s\n", res.AggGoodput.Mean/1e3)
//
// Runs are deterministic per seed. The default measurement methodology
// matches the paper: run until 110000 packets are delivered, split into
// batches of 10000, discard the first, and report batch means with 95%
// confidence intervals. Reduced-scale runs (for CI or interactive use) set
// TotalPackets/BatchPackets accordingly.
package manetsim

import (
	"time"

	"manetsim/internal/core"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/stats"
)

// NodeID identifies a node in a scenario.
type NodeID = pkt.NodeID

// Channel bit rates of IEEE 802.11b as evaluated in the paper.
const (
	Rate2Mbps   = phy.Rate2Mbps
	Rate5_5Mbps = phy.Rate5_5Mbps
	Rate11Mbps  = phy.Rate11Mbps
)

// Rate is a channel bit rate in bit/s.
type Rate = phy.Rate

// Transport protocols: the paper's three plus the classic Reno and Tahoe
// baselines discussed in its related work.
const (
	Vegas    = core.ProtoVegas
	NewReno  = core.ProtoNewReno
	PacedUDP = core.ProtoPacedUDP
	Reno     = core.ProtoReno
	Tahoe    = core.ProtoTahoe
)

// Protocol selects the transport variant.
type Protocol = core.Protocol

// TransportSpec configures the transport layer of all flows in a run.
type TransportSpec = core.TransportSpec

// Topology describes node placement and the default flow set.
type Topology = core.Topology

// Chain returns an h-hop chain of 200 m spaced nodes with a single flow
// from end to end.
func Chain(hops int) Topology { return core.Chain(hops) }

// Grid returns the paper's 21-node grid with six crossing FTP flows.
func Grid() Topology { return core.Grid() }

// Random returns the paper's 120-node random topology (2500x1000 m²) with
// ten random flows.
func Random() Topology { return core.Random() }

// FlowSpec is one transport connection between two nodes.
type FlowSpec = core.FlowSpec

// Routing substrates.
const (
	RoutingAODV   = core.RoutingAODV
	RoutingStatic = core.RoutingStatic
)

// RoutingKind selects the routing substrate (AODV is the paper's).
type RoutingKind = core.RoutingKind

// Mobility models: stationary nodes (the paper's setting) or random
// waypoint movement inside a bounded field.
const (
	MobilityStationary     = core.MobilityStationary
	MobilityRandomWaypoint = core.MobilityRandomWaypoint
)

// MobilityKind selects the node movement model.
type MobilityKind = core.MobilityKind

// MobilitySpec configures node movement over a run (random waypoint speed
// range, pause time, field bounds, endpoint pinning).
type MobilitySpec = core.MobilitySpec

// Config describes one simulation run; zero fields take the paper's
// defaults (2 Mbit/s, 110000 packets in batches of 10000, AODV, α=2).
type Config = core.Config

// Result carries all measurements of a run with batch-means confidence
// intervals.
type Result = core.Result

// Batch holds the raw per-batch measurements.
type Batch = core.Batch

// Estimate is a batch-means point estimate with a 95% confidence interval.
type Estimate = stats.Estimate

// EnergyReport summarizes radio energy consumption of a run.
type EnergyReport = core.EnergyReport

// DelaySummary reports end-to-end packet latency quantiles of a run.
type DelaySummary = core.DelaySummary

// Run executes one simulation and returns its measurements. It is safe to
// call concurrently from multiple goroutines (each run is self-contained);
// experiment harnesses exploit this to sweep parameters in parallel.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// FourHopPropagationDelay returns the paper's Table 2 value for a given
// rate: the minimal link-layer delay for a TCP data packet to advance four
// hops along a chain with zero queueing.
func FourHopPropagationDelay(rate Rate) time.Duration {
	return fourHopDelay(rate)
}
