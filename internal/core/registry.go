package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"manetsim/internal/tcp"
	"manetsim/internal/udp"
)

// CCFactory builds a congestion-control strategy for one flow. The
// returned strategy is bound into the shared tcp.Engine — which supplies
// sequence accounting, RTO estimation, the retransmission timer, packet
// construction and window tracing — so registering a factory is all a new
// window-based transport needs. The spec carries the per-flow parameters
// (TransportSpec.Params plus the legacy Alpha/MaxWindow fields).
type CCFactory func(spec TransportSpec) (tcp.CongestionControl, error)

// rawBuilder attaches fully custom endpoints for transports that are not
// realized by the shared engine (paced UDP). Internal-only: it needs the
// live scenario state.
type rawBuilder func(s *scenarioState, fi int, f Flow, spec TransportSpec) error

// transport is one registry entry.
type transport struct {
	name    string   // canonical lower-case name
	aliases []string // additional lookup names
	label   string   // display name (the paper's curve labels)
	desc    string   // one-line description for listings
	proto   Protocol // legacy enum value backing this entry (0 = none)
	newCC   CCFactory
	build   rawBuilder
	// check validates variant-specific spec parameters; generic checks
	// (negative values, exclusive ACK policies) run before it.
	check func(t TransportSpec, where string) error
}

var (
	regMu     sync.RWMutex
	registry  = map[string]*transport{} // every name and alias
	protoReg  = map[Protocol]*transport{}
	canonical []*transport // registration order, canonical entries only
)

// registerTransport adds one entry under its canonical name and aliases.
func registerTransport(tr *transport) {
	regMu.Lock()
	defer regMu.Unlock()
	names := append([]string{tr.name}, tr.aliases...)
	for _, n := range names {
		n = strings.ToLower(n)
		if n == "" {
			panic("core: empty transport name")
		}
		if _, dup := registry[n]; dup {
			panic(fmt.Sprintf("core: transport %q registered twice", n))
		}
		registry[n] = tr
	}
	if tr.proto != 0 {
		protoReg[tr.proto] = tr
	}
	canonical = append(canonical, tr)
}

// RegisterCC registers a window-based transport under name: specs naming
// it are realized by the shared engine with the factory's strategy bound
// in. It is the backing of the public manetsim.RegisterTransport and
// panics on an empty or duplicate name (registration is a program-setup
// bug, not a runtime condition).
func RegisterCC(name string, factory CCFactory) {
	if factory == nil {
		panic("core: nil transport factory")
	}
	registerTransport(&transport{
		name:  strings.ToLower(name),
		label: name,
		desc:  "registered congestion-control transport",
		newCC: factory,
	})
}

// TransportInfo describes one registered transport for listings.
type TransportInfo struct {
	// Name selects the transport in TransportSpec.Name.
	Name string
	// Aliases are accepted alternative names.
	Aliases []string
	// Label is the display name used in figure series and run summaries.
	Label string
	// Description is a one-line summary.
	Description string
}

// Transports lists every registered transport, sorted by name.
func Transports() []TransportInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	infos := make([]TransportInfo, 0, len(canonical))
	for _, tr := range canonical {
		infos = append(infos, TransportInfo{
			Name:        tr.name,
			Aliases:     append([]string(nil), tr.aliases...),
			Label:       tr.label,
			Description: tr.desc,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// transportNames returns every registered canonical name, sorted, for
// unknown-name error messages.
func transportNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(canonical))
	for _, tr := range canonical {
		names = append(names, tr.name)
	}
	sort.Strings(names)
	return names
}

// resolveTransport maps a spec to its registry entry: Name wins when set,
// otherwise the legacy Protocol constant selects its registry-backed
// alias.
func resolveTransport(t TransportSpec) (*transport, error) {
	if t.Name != "" {
		regMu.RLock()
		tr := registry[strings.ToLower(t.Name)]
		regMu.RUnlock()
		if tr == nil {
			return nil, fmt.Errorf("core: unknown transport %q (registered: %s)",
				t.Name, strings.Join(transportNames(), ", "))
		}
		if t.Protocol != 0 && tr.proto != t.Protocol {
			return nil, fmt.Errorf("core: transport Name %q conflicts with Protocol %v; set one of them", t.Name, t.Protocol)
		}
		return tr, nil
	}
	regMu.RLock()
	tr := protoReg[t.Protocol]
	regMu.RUnlock()
	if tr == nil {
		return nil, fmt.Errorf("core: unknown protocol %d", int(t.Protocol))
	}
	return tr, nil
}

// ccConfig maps the spec's transport parameters onto the engine
// configuration shared by every window-based variant.
func ccConfig(t TransportSpec) tcp.Config {
	return tcp.Config{
		Alpha:        t.Alpha,
		Beta:         t.Params.Beta,
		Gamma:        t.Params.Gamma,
		MaxWindow:    t.MaxWindow,
		BWFilterGain: t.Params.BWFilterGain,
		CoVWeight:    t.Params.CoVWeight,
		MinPaceGap:   t.Params.MinPaceGap,
	}
}

// buildPacedUDP attaches the constant-bit-rate UDP source and counting
// sink (the paper's optimally paced reference transport).
func buildPacedUDP(s *scenarioState, fi int, f Flow, tspec TransportSpec) error {
	src, dst := s.nodes[f.Src], s.nodes[f.Dst]
	usrc := s.arenaUSrc[fi]
	if usrc != nil {
		usrc.Reset(fi, f.Src, f.Dst, tspec.UDPGap, src.Output())
	} else {
		usrc = udp.NewSender(s.sched, fi, f.Src, f.Dst, tspec.UDPGap, &s.uids, src.Output())
		s.arenaUSrc[fi] = usrc
	}
	usink := s.arenaUSink[fi]
	if usink != nil {
		usink.Reset()
	} else {
		usink = udp.NewSink()
		s.arenaUSink[fi] = usink
	}
	usink.Delay = s.delay
	usink.Now = s.sched.Now
	dst.AttachUDPSink(fi, usink)
	s.udpSrcs[fi] = usrc
	s.udpSinks[fi] = usink
	return nil
}

// checkVegas validates the Vegas thresholds: α ≤ β (Brakmo's additive
// increase/decrease band would invert otherwise).
func checkVegas(t TransportSpec, where string) error {
	if t.Params.Beta > 0 {
		alpha := t.Alpha
		if alpha == 0 {
			alpha = tcp.DefaultAlpha
		}
		if t.Params.Beta < alpha {
			return fmt.Errorf("core: %s: Vegas Beta %d below Alpha %d (the band is α ≤ diff ≤ β)", where, t.Params.Beta, alpha)
		}
	}
	return nil
}

// checkPacedUDP requires the pacing interval.
func checkPacedUDP(t TransportSpec, where string) error {
	if t.UDPGap == 0 {
		return fmt.Errorf("core: %s: paced UDP needs UDPGap > 0 (the inter-packet sending interval)", where)
	}
	return nil
}

// checkWestwood bounds the bandwidth filter pole.
func checkWestwood(t TransportSpec, where string) error {
	if g := t.Params.BWFilterGain; g < 0 || g >= 1 {
		return fmt.Errorf("core: %s: Westwood+ BWFilterGain %g outside (0,1) (0 selects the default 0.9)", where, g)
	}
	return nil
}

const day = 24 * time.Hour

// checkPacing bounds the adaptive-pacing knobs.
func checkPacing(t TransportSpec, where string) error {
	if t.Params.MinPaceGap > day {
		return fmt.Errorf("core: %s: adaptive-pacing MinPaceGap %v is absurdly large", where, t.Params.MinPaceGap)
	}
	return nil
}

func init() {
	registerTransport(&transport{
		name: "vegas", proto: ProtoVegas, label: "Vegas",
		desc:  "TCP Vegas: delay-based proactive window control (paper's primary variant)",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewVegasCC(), nil },
		check: checkVegas,
	})
	registerTransport(&transport{
		name: "newreno", proto: ProtoNewReno, label: "NewReno",
		desc:  "TCP NewReno: loss-based AIMD with partial-ACK fast recovery (RFC 3782)",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewNewRenoCC(), nil },
	})
	registerTransport(&transport{
		name: "pacedudp", aliases: []string{"udp"}, proto: ProtoPacedUDP, label: "PacedUDP",
		desc:  "constant-bit-rate UDP at a fixed inter-packet gap (paper's optimal-pacing reference)",
		build: buildPacedUDP,
		check: checkPacedUDP,
	})
	registerTransport(&transport{
		name: "reno", proto: ProtoReno, label: "Reno",
		desc:  "classic TCP Reno: fast recovery exits on the first new ACK (RFC 2581)",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewRenoCC1990(), nil },
	})
	registerTransport(&transport{
		name: "tahoe", proto: ProtoTahoe, label: "Tahoe",
		desc:  "TCP Tahoe: every loss collapses the window to Winit and slow-starts",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewTahoeCC(), nil },
	})
	registerTransport(&transport{
		name: "westwood", aliases: []string{"westwood+"}, label: "Westwood+",
		desc:  "TCP Westwood+: backs off to a bandwidth-estimate window instead of blind halving (wireless-loss tolerant)",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewWestwoodCC(), nil },
		check: checkWestwood,
	})
	registerTransport(&transport{
		name: "pacing", aliases: []string{"adaptivepacing"}, label: "AdaptivePacing",
		desc:  "rate-based adaptive pacing: spreads the window over srtt + CoVWeight·rttvar instead of ACK-clocked bursts",
		newCC: func(TransportSpec) (tcp.CongestionControl, error) { return tcp.NewPacingCC(), nil },
		check: checkPacing,
	})
}
