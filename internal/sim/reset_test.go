package sim

import (
	"testing"
	"time"
)

// TestSchedulerResetMatchesFresh asserts a reset scheduler replays the same
// clock, dispatch count and random stream as a freshly constructed one.
func TestSchedulerResetMatchesFresh(t *testing.T) {
	run := func(s *Scheduler) (Time, uint64, []int64) {
		var draws []int64
		s.At(time.Millisecond, func() { draws = append(draws, s.Rand().Int63()) })
		s.After(2*time.Millisecond, func() { draws = append(draws, s.Rand().Int63n(1000)) })
		s.Run()
		return s.Now(), s.Dispatched(), draws
	}

	fresh := NewScheduler(42)
	wantNow, wantDisp, wantDraws := run(fresh)

	reused := NewScheduler(7)
	// Dirty the reused scheduler: advance time, leave events pending.
	reused.At(time.Millisecond, func() {})
	reused.Run()
	reused.At(time.Hour, func() { t.Fatal("pre-reset event fired after Reset") })
	reused.Rand().Int63()

	reused.Reset(42)
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Dispatched() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d dispatched=%d, want all zero",
			reused.Now(), reused.Pending(), reused.Dispatched())
	}
	gotNow, gotDisp, gotDraws := run(reused)
	if gotNow != wantNow || gotDisp != wantDisp {
		t.Errorf("reset run: now=%v dispatched=%d, fresh: now=%v dispatched=%d",
			gotNow, gotDisp, wantNow, wantDisp)
	}
	if len(gotDraws) != len(wantDraws) {
		t.Fatalf("draw count %d != %d", len(gotDraws), len(wantDraws))
	}
	for i := range wantDraws {
		if gotDraws[i] != wantDraws[i] {
			t.Errorf("draw %d: reset %d, fresh %d", i, gotDraws[i], wantDraws[i])
		}
	}
}

// TestSchedulerResetKeepsRandIdentity asserts bindings to Rand() taken
// before a reset observe the reseeded stream.
func TestSchedulerResetKeepsRandIdentity(t *testing.T) {
	s := NewScheduler(1)
	rng := s.Rand()
	rng.Int63()
	s.Reset(1)
	want := NewScheduler(1).Rand().Int63()
	if got := rng.Int63(); got != want {
		t.Errorf("pre-reset binding drew %d after reseed, want %d", got, want)
	}
}

// TestTimerStaleAfterSchedulerReset asserts timers armed before a reset
// report idle afterwards and can be re-armed normally.
func TestTimerStaleAfterSchedulerReset(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(time.Second)
	if !tm.Pending() {
		t.Fatal("armed timer not pending")
	}
	s.Reset(1)
	if tm.Pending() {
		t.Error("timer pending after scheduler reset")
	}
	if d := tm.Deadline(); d != 0 {
		t.Errorf("stale Deadline = %v, want 0", d)
	}
	tm.Stop() // stale Stop must be a no-op
	tm.Reset(time.Millisecond)
	s.Run()
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1 (only the post-reset arm)", fired)
	}
}
