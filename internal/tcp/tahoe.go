package tcp

import (
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// TahoeSender implements TCP Tahoe: fast retransmit after three duplicate
// ACKs but no fast recovery — every loss event collapses the window to
// Winit and slow-starts. The oldest of the baselines in the related-work
// comparisons the paper cites.
type TahoeSender struct {
	*base
	ssthresh float64
	recover  int64 // highest sequence outstanding at the last loss event
}

var _ Sender = (*TahoeSender)(nil)

// NewTahoe constructs a Tahoe sender for one flow.
func NewTahoe(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output) *TahoeSender {
	s := &TahoeSender{ssthresh: 64, recover: -1}
	s.base = newBase(sched, cfg, flow, src, dst, uids, out)
	if w := cfg.withDefaults().Wmax; float64(w) < s.ssthresh {
		s.ssthresh = float64(w)
	}
	s.rtxTimer = sim.NewTimer(sched, s.onRTO)
	s.onTimeout = s.onRTO
	return s
}

// Start begins the transfer.
func (s *TahoeSender) Start() {
	s.setCwnd(float64(s.cfg.Winit))
	s.sendUpTo()
}

// HandleAck processes a cumulative acknowledgment.
func (s *TahoeSender) HandleAck(p *pkt.Packet) {
	if p.TCP == nil {
		return
	}
	s.stats.AcksSeen++
	ack := p.TCP.Ack
	if ack > s.ackNext {
		newly := s.ackAdvance(ack)
		if !p.TCP.NoEcho {
			s.sampleRTT(s.sched.Now() - p.TCP.SentAt)
		}
		s.dupacks = 0
		for i := int64(0); i < newly; i++ {
			if s.cwnd < s.ssthresh {
				s.setCwnd(s.cwnd + 1)
			} else {
				s.setCwnd(s.cwnd + 1/s.cwnd)
			}
		}
	} else if s.ackNext < s.nextSeq {
		s.stats.DupAcks++
		s.dupacks++
		// The recover guard keeps stale duplicates from the same window
		// from triggering a second collapse.
		if s.dupacks == 3 && s.ackNext > s.recover {
			s.recover = s.maxSeq
			s.lossEvent(false)
		}
	}
	s.sendUpTo()
}

// lossEvent is Tahoe's single reaction to any loss: halve ssthresh, drop
// the window to Winit, retransmit from the hole (go-back-N) and slow
// start.
func (s *TahoeSender) lossEvent(timeout bool) {
	flight := float64(s.nextSeq - s.ackNext)
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	if timeout {
		s.stats.Timeouts++
		s.growBackoff()
		s.rtxTimer.Reset(s.currentRTO())
	} else {
		s.stats.FastRecov++
	}
	s.dupacks = 0
	s.setCwnd(float64(s.cfg.Winit))
	s.nextSeq = s.ackNext
	s.sendUpTo()
}

func (s *TahoeSender) onRTO() {
	if s.ackNext >= s.nextSeq {
		return
	}
	s.lossEvent(true)
}
