package tcp

import "time"

// PacingCC implements a rate-based adaptive-pacing sender in the spirit
// of TCP-AP (ElRakabawy, Klemm & Lindemann): the congestion window still
// bounds the amount of outstanding data, but transmissions leave the
// sender spaced by an adaptive interval instead of the ACK-clocked bursts
// that cause multihop self-interference — the burst of back-to-back
// packets chasing each other down the chain is exactly what inflates the
// paper's link-layer drop probability.
//
// The pacing interval spreads the window over the RTT and stretches under
// RTT variability (the sender-side signal of MAC contention ahead):
//
//	gap = (srtt + CoVWeight·rttvar) / cwnd
//
// floored at Config.MinPaceGap, which also seeds the interval before the
// first RTT sample. Window evolution is standard AIMD with fast
// retransmit (Reno-style, single-loss recovery); the pacing layer lives
// in the engine (Engine.EnablePacing), so the strategy only supplies the
// interval and the window policy.
type PacingCC struct {
	CCBase
	ssthresh   float64
	dupacks    int
	inRecovery bool
}

var _ CongestionControl = (*PacingCC)(nil)

// NewPacingCC returns the adaptive-pacing congestion-control strategy.
func NewPacingCC() *PacingCC { return &PacingCC{} }

// Init binds the engine, seeds ssthresh, and switches the engine to paced
// transmission.
func (s *PacingCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.ssthresh = s.InitialSSThresh()
	e.EnablePacing(s.gap)
}

// gap returns the current inter-packet pacing interval.
func (s *PacingCC) gap() time.Duration {
	e := s.e
	floor := e.Config().MinPaceGap
	srtt := e.SRTT()
	if srtt == 0 {
		return floor
	}
	w := e.Window()
	if ew := float64(e.effectiveWindow()); ew < w {
		w = ew
	}
	g := time.Duration((float64(srtt) + e.Config().CoVWeight*float64(e.RTTVar())) / w)
	if g < floor {
		g = floor
	}
	return g
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *PacingCC) OnAck(a Ack) {
	e := s.e
	newly := e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
	if s.inRecovery {
		s.inRecovery = false
		s.dupacks = 0
		e.SetWindow(s.ssthresh)
		return
	}
	s.dupacks = 0
	s.GrowAIMD(newly, s.ssthresh)
}

// OnDupAck counts duplicates toward fast retransmit.
func (s *PacingCC) OnDupAck(Ack) {
	e := s.e
	if s.inRecovery {
		// No window inflation: the pacer, not the window edge, clocks
		// transmissions out.
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	e.CountFastRecovery()
	s.inRecovery = true
	s.ssthresh = e.Window() / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	e.SetWindow(s.ssthresh)
	e.Retransmit(e.AckNext())
}

// OnTimeout shrinks to Winit with timer backoff; the engine then goes
// back N and the pacer restarts.
func (s *PacingCC) OnTimeout() {
	e := s.e
	flight := float64(e.InFlight())
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.inRecovery = false
	s.dupacks = 0
	e.BackoffRTO()
	e.SetWindow(float64(e.Config().Winit))
	e.RestartRTOTimer()
}
