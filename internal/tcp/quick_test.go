package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"manetsim/internal/pkt"
)

// TestQuickWindowInvariants property-checks, under arbitrary random loss
// patterns on both directions, that for both senders:
//   - the congestion window stays within [1, Wmax],
//   - the sink's cumulative goodput never exceeds distinct data sent,
//   - sequence space has no gaps at the sink once the run drains.
func TestQuickWindowInvariants(t *testing.T) {
	f := func(seed int64, lossPctRaw uint8, vegas bool) bool {
		lossPct := int(lossPctRaw % 40) // up to 40% loss
		rng := rand.New(rand.NewSource(seed))
		pp := newPipe(seed, 5*time.Millisecond, 500*time.Microsecond, 0)
		pp.dropData = func(h *pkt.TCPHeader) bool { return rng.Intn(100) < lossPct }
		pp.dropAck = func(h *pkt.TCPHeader) bool { return rng.Intn(100) < lossPct/2 }
		var s Sender
		if vegas {
			s = pp.connectVegas(Config{})
		} else {
			s = pp.connectNewReno(Config{})
		}
		ok := true
		var watch func()
		watch = func() {
			w := s.Window()
			if w < 1 || w > 64 {
				ok = false
			}
			pp.sched.After(10*time.Millisecond, watch)
		}
		pp.sched.At(0, watch)
		pp.run(3 * time.Second)
		st := s.Stats()
		sinkSt := pp.sink.Stats()
		// Goodput cannot exceed what was ever sent minus retransmissions
		// of the same sequence (distinct sequences sent).
		distinctSent := st.DataSent - st.Retransmits
		if sinkSt.GoodputPackets > int64(distinctSent) {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEventualDelivery property-checks that as long as loss stops,
// both variants eventually deliver everything outstanding (no deadlock in
// the retransmission machinery).
func TestQuickEventualDelivery(t *testing.T) {
	f := func(seed int64, vegas bool) bool {
		rng := rand.New(rand.NewSource(seed))
		pp := newPipe(seed, 5*time.Millisecond, 500*time.Microsecond, 0)
		lossy := true
		pp.dropData = func(h *pkt.TCPHeader) bool { return lossy && rng.Intn(100) < 30 }
		if vegas {
			pp.connectVegas(Config{})
		} else {
			pp.connectNewReno(Config{})
		}
		pp.sched.At(2*time.Second, func() { lossy = false })
		pp.run(10 * time.Second)
		// After 8 clean seconds the connection must be flowing: a healthy
		// sender delivers thousands of packets in that time.
		return pp.sink.Stats().GoodputPackets > 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickSinkCumulativeAckMonotone property-checks that sink ACK values
// never decrease, for any arrival permutation with duplicates.
func TestQuickSinkCumulativeAckMonotone(t *testing.T) {
	f := func(seed int64, thinning bool, nRaw uint8) bool {
		n := int64(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		r := newSinkRig(thinning)
		// Random arrival order with duplicates.
		var arrivals []int64
		for seq := int64(0); seq < n; seq++ {
			arrivals = append(arrivals, seq)
			if rng.Intn(4) == 0 {
				arrivals = append(arrivals, seq) // duplicate
			}
		}
		rng.Shuffle(len(arrivals), func(i, j int) {
			arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
		})
		for _, seq := range arrivals {
			r.sink.HandleData(r.data(seq))
		}
		r.sched.RunUntil(r.sched.Now() + 2*AckRegenTimeout)
		var prev int64 = -1
		for _, a := range r.acks {
			if a.TCP.Ack < prev {
				return false
			}
			prev = a.TCP.Ack
		}
		// Everything arrived, so the final cumulative ack covers all of it.
		return prev == n && r.sink.Stats().GoodputPackets == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickThinningDegreeMonotone property-checks d never decreases with
// the sequence number and stays in [1,4].
func TestQuickThinningDegreeMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		da, db := ThinningDegree(a), ThinningDegree(b)
		return da >= 1 && db <= 4 && da <= db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
