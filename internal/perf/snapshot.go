package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Result is the measurement of one benchmark.
type Result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"` // iterations behind the measurement
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// Snapshot is one machine-readable BENCH_<date>.json file.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	CPU        string   `json:"cpu,omitempty"` // CPU model, for gate comparability
	Benchmarks []Result `json:"benchmarks"`
}

// hostCPU best-effort identifies the CPU model (Linux /proc/cpuinfo; empty
// elsewhere). Snapshots from different CPUs are not ns/op-comparable.
func hostCPU() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.Index(rest, ":"); i >= 0 {
				return strings.TrimSpace(rest[i+1:])
			}
		}
	}
	return ""
}

// SameHost reports whether two snapshots were measured on comparable
// hardware (same CPU model and count, both known). Only then are raw ns/op
// numbers trustworthy enough for a hard gate.
func SameHost(a, b Snapshot) bool {
	return a.CPU != "" && a.CPU == b.CPU && a.CPUs == b.CPUs
}

// fold merges a repeated sample into acc under the fastest-sample-wins
// rule. It is the single folding policy shared by RunSuite repetitions and
// ParseGoBench's -count lines, keeping -json snapshots and parsed CI runs
// comparable.
func fold(acc *Result, next Result) {
	acc.Runs += next.Runs
	if next.NsPerOp > 0 && (acc.NsPerOp == 0 || next.NsPerOp < acc.NsPerOp) {
		acc.NsPerOp = next.NsPerOp
	}
	if next.BytesPerOp < acc.BytesPerOp {
		acc.BytesPerOp = next.BytesPerOp
	}
	if next.AllocsPerOp < acc.AllocsPerOp {
		acc.AllocsPerOp = next.AllocsPerOp
	}
}

// RunSuite executes the benchmark suite via testing.Benchmark and collects
// a snapshot. date is stamped verbatim (YYYY-MM-DD). Each case runs count
// times (min 1), folded by fold. A case that fails (b.Fatal/b.Error inside
// testing.Benchmark) aborts the suite with its name.
func RunSuite(date string, count int, progress io.Writer) (Snapshot, error) {
	if count < 1 {
		count = 1
	}
	snap := Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		CPU:       hostCPU(),
	}
	for _, c := range Suite() {
		if progress != nil {
			fmt.Fprintf(progress, "running %s (x%d)...\n", c.Name, count)
		}
		var res Result
		for rep := 0; rep < count; rep++ {
			r := testing.Benchmark(c.Fn)
			if r.N == 0 {
				// testing.Benchmark returns a zero result when the body
				// fails; surface it instead of emitting NaN columns.
				return snap, fmt.Errorf("benchmark %s failed", c.Name)
			}
			one := Result{
				Name:        c.Name,
				Runs:        r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  float64(r.AllocedBytesPerOp()),
				AllocsPerOp: float64(r.AllocsPerOp()),
			}
			if len(r.Extra) > 0 {
				one.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					one.Metrics[k] = v
				}
			}
			if rep == 0 {
				res = one
				continue
			}
			fold(&res, one)
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	return snap, nil
}

// WriteFile writes the snapshot as indented JSON.
func (s Snapshot) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ParseGoBench converts `go test -bench -benchmem` text output into a
// snapshot. Repeated lines for the same benchmark (-count=N) are folded by
// taking the minimum ns/op (the least-interference sample) and the minimum
// of the allocation columns.
func ParseGoBench(r io.Reader, date string) (Snapshot, error) {
	snap := Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		CPU:       hostCPU(),
	}
	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			// Prefer go test's own CPU line: it describes the machine that
			// actually produced the numbers being parsed.
			snap.CPU = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix (BenchmarkFoo-8).
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		res := Result{Name: name, Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		prev, seen := byName[name]
		if !seen {
			cp := res
			byName[name] = &cp
			order = append(order, name)
			continue
		}
		fold(prev, res)
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	if len(order) == 0 {
		return snap, fmt.Errorf("no benchmark lines found in input")
	}
	for _, name := range order {
		snap.Benchmarks = append(snap.Benchmarks, *byName[name])
	}
	return snap, nil
}

// CompareResult classifies one benchmark's baseline-vs-candidate delta.
type CompareResult struct {
	Name      string
	BaseNs    float64
	CandNs    float64
	DeltaPct  float64 // ns/op change, positive = slower
	AllocsUp  bool    // allocs/op regressed beyond the fail threshold
	Level     string  // "ok", "warn", "fail", "missing"
	AllocNote string
}

// Compare checks a candidate snapshot against a baseline with a soft
// threshold policy: ns/op regressions above warnPct warn, above failPct
// fail; allocs/op regressions above failPct fail outright (allocation
// counts are machine-independent, so there is no noise excuse). When the
// two snapshots come from different hardware (SameHost is false), raw
// ns/op is not comparable and ns/op failures demote to warnings — the
// allocs/op rule still fails hard. It returns the per-benchmark
// classification and whether the gate fails overall.
func Compare(base, cand Snapshot, warnPct, failPct float64) ([]CompareResult, bool) {
	candByName := map[string]Result{}
	for _, r := range cand.Benchmarks {
		candByName[r.Name] = r
	}
	strictNs := SameHost(base, cand)
	var out []CompareResult
	failed := false
	for _, b := range base.Benchmarks {
		c, ok := candByName[b.Name]
		if !ok {
			out = append(out, CompareResult{Name: b.Name, BaseNs: b.NsPerOp, Level: "missing"})
			failed = true
			continue
		}
		r := CompareResult{Name: b.Name, BaseNs: b.NsPerOp, CandNs: c.NsPerOp, Level: "ok"}
		if b.NsPerOp > 0 {
			r.DeltaPct = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		switch {
		case r.DeltaPct > failPct && strictNs:
			r.Level = "fail"
			failed = true
		case r.DeltaPct > warnPct:
			r.Level = "warn"
		}
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			r.AllocsUp = true
			r.AllocNote = fmt.Sprintf("allocs/op %.0f -> %.0f", b.AllocsPerOp, c.AllocsPerOp)
		case b.AllocsPerOp > 0 && (c.AllocsPerOp-b.AllocsPerOp)/b.AllocsPerOp*100 > failPct:
			r.AllocsUp = true
			r.AllocNote = fmt.Sprintf("allocs/op %.0f -> %.0f", b.AllocsPerOp, c.AllocsPerOp)
		}
		if r.AllocsUp {
			r.Level = "fail"
			failed = true
		}
		out = append(out, r)
	}
	// Surface candidate-only benchmarks so a suite addition without a
	// baseline refresh is visible instead of silently ungated.
	baseNames := map[string]bool{}
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
	}
	for _, c := range cand.Benchmarks {
		if !baseNames[c.Name] {
			out = append(out, CompareResult{Name: c.Name, CandNs: c.NsPerOp, Level: "new"})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DeltaPct > out[j].DeltaPct })
	return out, failed
}

// FormatCompare renders the comparison as an aligned report.
func FormatCompare(results []CompareResult, warnPct, failPct float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf gate: warn >%.0f%%, fail >%.0f%% ns/op regression (allocs/op: fail >%.0f%%)\n",
		warnPct, failPct, failPct)
	for _, r := range results {
		switch r.Level {
		case "missing":
			fmt.Fprintf(&sb, "  FAIL %-36s missing from candidate\n", r.Name)
			continue
		case "new":
			fmt.Fprintf(&sb, "  NEW  %-36s %12.0f ns/op (no baseline — refresh BENCH_*.json to gate it)\n", r.Name, r.CandNs)
			continue
		}
		tag := map[string]string{"ok": "  ok", "warn": "WARN", "fail": "FAIL"}[r.Level]
		fmt.Fprintf(&sb, "  %s %-36s %12.0f -> %12.0f ns/op (%+.1f%%)", tag, r.Name, r.BaseNs, r.CandNs, r.DeltaPct)
		if r.AllocNote != "" {
			fmt.Fprintf(&sb, "  [%s]", r.AllocNote)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
