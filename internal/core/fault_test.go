package core

import (
	"strings"
	"testing"
	"time"

	"manetsim/internal/fault"
	"manetsim/internal/pkt"
)

// faultChainConfig is the conformance scenario: a 4-hop chain (5 nodes at
// 200 m spacing) with one end-to-end flow, small measurement budget, and
// the given fault schedule.
func faultChainConfig(tspec TransportSpec, faults ...FaultSpec) Config {
	return Config{
		Scenario:     Chain(4),
		Transport:    tspec,
		Seed:         3,
		TotalPackets: 550,
		BatchPackets: 50,
		Faults:       faults,
	}
}

// conformanceFaults returns the three built-in fault kinds aimed at the
// middle of the 4-hop chain: each one severs the only path for 2 s.
func conformanceFaults() map[string]FaultSpec {
	return map[string]FaultSpec{
		"crash":     CrashFault(2, 2*time.Second, 2*time.Second),
		"blackout":  BlackoutFault(1, 2, 2*time.Second, 2*time.Second),
		"partition": PartitionFault(500, 2*time.Second, 2*time.Second),
	}
}

// TestFaultConformance is the fault conformance matrix: every registered
// transport runs under every built-in fault kind, fresh and on a reused
// arena, and each faulted run must be byte-identical between the two
// while still delivering its packet budget and reporting populated
// resilience metrics. This is the grid the -race CI job sweeps.
func TestFaultConformance(t *testing.T) {
	w := NewWorld()
	for _, spec := range worldSpecs() {
		for kind, fs := range conformanceFaults() {
			label := spec.Name + "/" + kind
			cfg := faultChainConfig(spec, fs)
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			arena, err := w.Run(cfg)
			if err != nil {
				t.Fatalf("%s (arena): %v", label, err)
			}
			if digest(t, fresh) != digest(t, arena) {
				t.Errorf("%s: arena run diverged from fresh run", label)
			}
			if fresh.Delivered < cfg.TotalPackets {
				t.Errorf("%s: delivered %d of %d packets", label, fresh.Delivered, cfg.TotalPackets)
			}
			rep := fresh.Faults
			if rep == nil {
				t.Fatalf("%s: faulted run carries no FaultReport", label)
			}
			if rep.Injected != 1 || len(rep.Outages) != 1 {
				t.Fatalf("%s: report counts %d injected, %d outages; want 1, 1", label, rep.Injected, len(rep.Outages))
			}
			o := rep.Outages[0]
			if !o.Recovered || !o.RecoveredAfterHeal {
				t.Errorf("%s: outage never recovered (%+v)", label, o)
			}
			if o.TimeToRecoverAfterHeal <= 0 {
				t.Errorf("%s: zero TimeToRecoverAfterHeal", label)
			}
			if rep.TimeInOutage != 2*time.Second {
				t.Errorf("%s: TimeInOutage %v, want 2s", label, rep.TimeInOutage)
			}
			// Every fault severs the chain's only path: goodput during
			// the outage must fall well below the healthy rate.
			if rep.GoodputDuringBps >= rep.GoodputOutsideBps {
				t.Errorf("%s: goodput during outage %.0f >= outside %.0f",
					label, rep.GoodputDuringBps, rep.GoodputOutsideBps)
			}
		}
	}
}

// TestFaultedRunsDeterministicPerSeed: same seed, same fault schedule —
// byte-identical; different seed diverges; and the fault schedule itself
// changes the outcome.
func TestFaultedRunsDeterministicPerSeed(t *testing.T) {
	tspec := TransportSpec{Protocol: ProtoNewReno}
	crash := CrashFault(2, 2*time.Second, 2*time.Second)
	a, err := Run(faultChainConfig(tspec, crash))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultChainConfig(tspec, crash))
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, a) != digest(t, b) {
		t.Error("same seed, same faults diverged")
	}
	other := faultChainConfig(tspec, crash)
	other.Seed = 4
	c, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, a) == digest(t, c) {
		t.Error("different seeds produced identical faulted runs")
	}
	clean, err := Run(faultChainConfig(tspec))
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, a) == digest(t, clean) {
		t.Error("crash fault changed nothing")
	}
}

// TestFaultFreeResultOmitsReport: runs without faults must not mention
// the subsystem in their JSON encoding — the identity behind cache keys
// and golden hashes predating it.
func TestFaultFreeResultOmitsReport(t *testing.T) {
	res, err := Run(faultChainConfig(TransportSpec{Protocol: ProtoNewReno}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Fatal("fault-free run carries a FaultReport")
	}
	if d := digest(t, res); strings.Contains(d, "Fault") {
		t.Errorf("fault-free result encoding mentions faults: %s", d)
	}
}

// TestCrashEndpointNodes crashes the flow's source and destination nodes
// (not a relay): the sender must halt and resume with cold congestion
// state, the sink must survive with its reassembly state intact, and the
// run must stay byte-identical between fresh and arena builds.
func TestCrashEndpointNodes(t *testing.T) {
	w := NewWorld()
	for _, tc := range []struct {
		name string
		node int
	}{
		{"source", 0},
		{"sink", 4},
	} {
		cfg := faultChainConfig(TransportSpec{Protocol: ProtoVegas},
			CrashFault(tc.node, 2*time.Second, 1*time.Second))
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		arena, err := w.Run(cfg)
		if err != nil {
			t.Fatalf("%s (arena): %v", tc.name, err)
		}
		if digest(t, fresh) != digest(t, arena) {
			t.Errorf("%s: arena run diverged from fresh run", tc.name)
		}
		if fresh.Delivered < cfg.TotalPackets {
			t.Errorf("%s: delivered %d of %d packets", tc.name, fresh.Delivered, cfg.TotalPackets)
		}
		if !fresh.Faults.Outages[0].RecoveredAfterHeal {
			t.Errorf("%s: flow never recovered after the endpoint restarted", tc.name)
		}
	}
}

// TestCrashBeforeFlowStart crashes the source across its flow's start
// time: the application must launch when the node restarts, not during
// the outage and not never.
func TestCrashBeforeFlowStart(t *testing.T) {
	cfg := faultChainConfig(TransportSpec{Protocol: ProtoNewReno},
		CrashFault(0, 1*time.Millisecond, 3*time.Second))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.Delivered < cfg.TotalPackets {
		t.Fatalf("flow whose start fell into an outage never launched: delivered %d", res.Delivered)
	}
	if d := res.Faults.DeliveredDuring; d != 0 {
		t.Errorf("%d packets delivered while the source was down", d)
	}
}

// TestPermanentCrashTruncates: a relay crash that never heals starves
// the chain; the run must end at MaxSimTime with the outage marked
// unhealed.
func TestPermanentCrashTruncates(t *testing.T) {
	cfg := faultChainConfig(TransportSpec{Protocol: ProtoNewReno},
		CrashFault(2, 2*time.Second, 0))
	cfg.MaxSimTime = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("run over a permanently severed chain was not truncated")
	}
	o := res.Faults.Outages[0]
	if o.End != 0 || o.RecoveredAfterHeal {
		t.Errorf("permanent outage reports a heal: %+v", o)
	}
	if res.Faults.TimeInOutage != res.SimTime-2*time.Second {
		t.Errorf("TimeInOutage %v, want %v", res.Faults.TimeInOutage, res.SimTime-2*time.Second)
	}
}

// TestFaultSpecValidation rejects misconfigured fault specs before any
// simulation state is built.
func TestFaultSpecValidation(t *testing.T) {
	base := func(f FaultSpec) Config {
		return faultChainConfig(TransportSpec{Protocol: ProtoNewReno}, f)
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown name", base(FaultSpec{Name: "meteor"}), "unknown fault"},
		{"node out of range", base(CrashFault(99, time.Second, 0)), "outside the scenario"},
		{"negative at", base(CrashFault(1, -time.Second, 0)), "negative At"},
		{"negative duration", base(FaultSpec{Name: "crash", Node: 1, At: time.Second, Duration: -time.Second}), "negative Duration"},
		{"self blackout", base(FaultSpec{Name: "blackout", From: 1, To: 1, At: time.Second}), "two endpoints"},
		{"blackout endpoint", base(BlackoutFault(0, 77, time.Second, time.Second)), "outside the scenario"},
		{"partition axis", base(FaultSpec{Name: "partition", Axis: "z", Cut: 100, At: time.Second}), "Axis"},
		{"partition nodes", base(FaultSpec{Name: "partition", NodesA: []int{0, 42}, At: time.Second}), "outside the scenario"},
	}
	for _, tc := range cases {
		_, err := Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestFaultRegistryListing: the built-ins are listed with their aliases
// and resolvable case-insensitively.
func TestFaultRegistryListing(t *testing.T) {
	infos := Faults()
	byName := map[string]FaultInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	for _, want := range []string{"crash", "blackout", "partition"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("built-in fault %q not listed", want)
		}
	}
	if _, err := resolveFault(FaultSpec{Name: "NodeCrash"}); err != nil {
		t.Errorf("alias lookup is not case-insensitive: %v", err)
	}
}

// TestRegisterFaultCustom registers a custom injector and drives a run
// through it end to end.
func TestRegisterFaultCustom(t *testing.T) {
	RegisterFault("testflap", func(f FaultSpec) (fault.Fault, error) {
		// A double-crash of the configured node: down at At for
		// Duration, and again one Duration later.
		return flapFault{node: f.Node, at: f.At, d: f.Duration}, nil
	})
	cfg := faultChainConfig(TransportSpec{Protocol: ProtoNewReno},
		FaultSpec{Name: "testflap", Node: 2, At: 2 * time.Second, Duration: time.Second})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < cfg.TotalPackets {
		t.Fatalf("delivered %d of %d under the custom fault", res.Delivered, cfg.TotalPackets)
	}
	if res.Faults == nil || res.Faults.Injected != 1 {
		t.Fatal("custom fault left no report")
	}
}

type flapFault struct {
	node int
	at   time.Duration
	d    time.Duration
}

func (f flapFault) Schedule(env fault.Env) {
	fault.NodeCrash{Node: pkt.NodeID(f.node), At: f.at, Downtime: f.d}.Schedule(env)
	fault.NodeCrash{Node: pkt.NodeID(f.node), At: f.at + 2*f.d, Downtime: f.d}.Schedule(env)
}

// TestFaultLabels pins the human-readable spec rendering used by outage
// reports and sweep listings.
func TestFaultLabels(t *testing.T) {
	cases := []struct {
		spec FaultSpec
		want string
	}{
		{CrashFault(3, 30*time.Second, 5*time.Second), "crash(node=3)@30s+5s"},
		{CrashFault(1, time.Second, 0), "crash(node=1)@1s"},
		{BlackoutFault(0, 1, 2*time.Second, time.Second), "blackout(0<->1)@2s+1s"},
		{FaultSpec{Name: "blackout", From: 2, To: 3, At: time.Second}, "blackout(2->3)@1s"},
		{PartitionFault(500, 10*time.Second, 2*time.Second), "partition(x<500)@10s+2s"},
		{FaultSpec{Name: "partition", NodesA: []int{0, 1}, At: time.Second}, "partition(|A|=2)@1s"},
	}
	for _, tc := range cases {
		if got := tc.spec.Label(); got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
	}
}
