// Package plain is the non-sim gating guard: it commits every determinism
// sin at once, and the sim-gated analyzers (wallclock, globalrand, maporder)
// must stay silent because the package is outside the simulation core —
// cmd/ progress reporting and ad-hoc tooling randomness are legitimate.
package plain

import (
	"math/rand"
	"time"
)

var r = rand.New(rand.NewSource(42))

func outside(m map[int]string) []string {
	time.Sleep(time.Millisecond)
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	_ = rand.Intn(10)
	_ = time.Now().UnixNano() + r.Int63()
	return out
}
