package phy

import (
	"math"

	"manetsim/internal/geo"
)

// cellKey addresses one bucket of the spatial grid.
type cellKey struct {
	x, y int32
}

// spatialGrid is a uniform-cell spatial index over radios. With the cell
// size equal to the carrier-sense range, every radio that can possibly hear
// a transmitter lives in the 3x3 cell neighborhood around it, so neighbor
// queries cost O(local density) instead of O(n) — and the channel never
// needs the old O(n²) all-pairs precompute.
type spatialGrid struct {
	cell  float64
	cells map[cellKey][]*Radio
}

func newSpatialGrid(cell float64) *spatialGrid {
	if cell <= 0 {
		panic("phy: non-positive grid cell size")
	}
	return &spatialGrid{cell: cell, cells: make(map[cellKey][]*Radio)}
}

func (g *spatialGrid) keyOf(p geo.Point) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / g.cell)),
		y: int32(math.Floor(p.Y / g.cell)),
	}
}

// insert adds a radio under its current position.
func (g *spatialGrid) insert(r *Radio) {
	k := g.keyOf(r.pos)
	g.cells[k] = append(g.cells[k], r)
}

// reset empties the grid while keeping bucket capacity: entries are nilled
// and each bucket truncated in place. Empty buckets are harmless to forNear
// and are deleted by move as radios leave them.
func (g *spatialGrid) reset() {
	for k, bucket := range g.cells {
		for i := range bucket {
			bucket[i] = nil
		}
		g.cells[k] = bucket[:0]
	}
}

// move re-buckets a radio whose position changed from old to its current
// pos. Cheap no-op when the move stays within one cell.
func (g *spatialGrid) move(r *Radio, old geo.Point) {
	from, to := g.keyOf(old), g.keyOf(r.pos)
	if from == to {
		return
	}
	bucket := g.cells[from]
	for i, other := range bucket {
		if other == r {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, from)
	} else {
		g.cells[from] = bucket
	}
	g.cells[to] = append(g.cells[to], r)
}

// forNear visits every radio indexed within radius of p (plus cell-boundary
// slack — callers must still filter by exact distance).
func (g *spatialGrid) forNear(p geo.Point, radius float64, visit func(*Radio)) {
	lo := g.keyOf(geo.Point{X: p.X - radius, Y: p.Y - radius})
	hi := g.keyOf(geo.Point{X: p.X + radius, Y: p.Y + radius})
	for x := lo.x; x <= hi.x; x++ {
		for y := lo.y; y <= hi.y; y++ {
			for _, r := range g.cells[cellKey{x, y}] {
				visit(r)
			}
		}
	}
}
