// Package pkt defines the network-layer packet representation shared by
// every protocol layer: transport headers (TCP/UDP at ns-2-style packet
// granularity), routing payloads, and the wire sizes the paper fixes
// (1460-byte TCP payloads).
package pkt

import (
	"fmt"
	"time"
)

// NodeID identifies a node in a scenario (its index in the topology).
type NodeID int

// Broadcast is the link-layer broadcast address used by routing control
// traffic.
const Broadcast NodeID = -1

// Wire sizes in bytes. The paper fixes the TCP payload at 1460 bytes; the
// 40-byte TCP/IP header puts a full data segment at 1500 bytes on the wire.
const (
	TCPPayloadSize = 1460
	TCPIPHeader    = 40
	TCPDataSize    = TCPPayloadSize + TCPIPHeader
	TCPAckSize     = TCPIPHeader
	UDPIPHeader    = 28
	UDPDataSize    = TCPPayloadSize + UDPIPHeader
)

// Kind classifies a packet for statistics and demultiplexing.
type Kind int

// Packet kinds.
const (
	KindTCPData Kind = iota + 1
	KindTCPAck
	KindUDPData
	KindRouting
)

var kindNames = map[Kind]string{
	KindTCPData: "tcp-data",
	KindTCPAck:  "tcp-ack",
	KindUDPData: "udp-data",
	KindRouting: "routing",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsData reports whether the packet kind carries application data (used by
// per-flow goodput accounting).
func (k Kind) IsData() bool { return k == KindTCPData || k == KindUDPData }

// TCPHeader carries transport state at packet granularity, exactly like
// ns-2's TCP agents: Seq and Ack count packets, not bytes.
type TCPHeader struct {
	Flow int   // flow identifier (connection demux key)
	Seq  int64 // data: packet sequence number, starting at 0
	Ack  int64 // ack: cumulative, next expected sequence number
	// SentAt is the transmission timestamp of the data packet, echoed back
	// in the ACK; Vegas uses it for fine-grained RTT measurements and
	// NewReno for RTO sampling (ns-2's timestamp option behaviour).
	SentAt time.Duration
	// NoEcho marks ACKs whose timestamp is ambiguous (emitted by the
	// delayed-ACK regeneration timer, not by a data arrival); senders
	// skip RTT sampling on them, mirroring Karn's rule.
	NoEcho bool
	// Retransmit marks transport-layer retransmissions for accounting.
	Retransmit bool
}

// UDPHeader carries the paced-UDP flow id and sequence number. SentAt is
// the transmission timestamp used for end-to-end delay accounting.
type UDPHeader struct {
	Flow   int
	Seq    int64
	SentAt time.Duration
}

// Packet is one network-layer datagram. Packets are passed by pointer and
// never mutated after construction except for hop-by-hop fields (TTL);
// layered headers are nil when absent.
type Packet struct {
	UID  uint64 // globally unique per scenario, for tracing
	Kind Kind
	Size int // bytes at the network layer (payload + IP + transport header)

	Src, Dst NodeID // end-to-end addresses
	TTL      int

	TCP     *TCPHeader
	UDP     *UDPHeader
	Routing any // routing-protocol payload (owned by the routing package)
}

// String renders a compact trace representation.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil && p.Kind == KindTCPData:
		return fmt.Sprintf("#%d tcp-data f%d seq=%d %d->%d", p.UID, p.TCP.Flow, p.TCP.Seq, p.Src, p.Dst)
	case p.TCP != nil:
		return fmt.Sprintf("#%d tcp-ack f%d ack=%d %d->%d", p.UID, p.TCP.Flow, p.TCP.Ack, p.Src, p.Dst)
	case p.UDP != nil:
		return fmt.Sprintf("#%d udp f%d seq=%d %d->%d", p.UID, p.UDP.Flow, p.UDP.Seq, p.Src, p.Dst)
	default:
		return fmt.Sprintf("#%d %s %d->%d", p.UID, p.Kind, p.Src, p.Dst)
	}
}

// UIDSource hands out unique packet ids for one scenario. The zero value
// is ready to use.
type UIDSource struct{ next uint64 }

// Next returns a fresh id.
func (u *UIDSource) Next() uint64 {
	u.next++
	return u.next
}
