package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manetsim/internal/perf"
)

// runBench implements the `manetsim bench` subcommand: run the perf suite
// into a machine-readable snapshot, convert `go test -bench` output to the
// same format, or gate a candidate snapshot against a baseline.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		emitJSON = fs.Bool("json", false, "run the suite and write a BENCH_<date>.json snapshot")
		parse    = fs.Bool("parse", false, "convert `go test -bench -benchmem` output on stdin to snapshot JSON")
		out      = fs.String("out", "", "output path (default BENCH_<date>.json)")
		warnPct  = fs.Float64("warn", 10, "compare: warn above this ns/op regression percentage")
		failPct  = fs.Float64("fail", 25, "compare: fail above this ns/op regression percentage")
		count    = fs.Int("count", 5, "suite repetitions per benchmark (fastest sample wins)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage:
  manetsim bench -json [-out FILE]            run the suite, write a JSON snapshot
  manetsim bench -parse [-out FILE] < bench.txt   convert go-test bench output to JSON
  manetsim bench -compare BASE.json CAND.json [-warn PCT] [-fail PCT]
  manetsim bench                              run the suite, print a table

`)
		fs.PrintDefaults()
	}
	// Keep `-compare a b` ergonomic: it takes positionals after the flag.
	compareIdx := -1
	for i, a := range args {
		if a == "-compare" || a == "--compare" {
			compareIdx = i
			break
		}
	}
	if compareIdx >= 0 {
		rest := append(append([]string{}, args[:compareIdx]...), args[compareIdx+1:]...)
		// Go's flag parser stops at the first positional, but the documented
		// form puts thresholds after the two snapshot paths; keep re-parsing
		// past positionals so `-compare BASE CAND -warn 5` works.
		var positionals []string
		for {
			if err := fs.Parse(rest); err != nil {
				os.Exit(2)
			}
			rest = fs.Args()
			for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
				positionals = append(positionals, rest[0])
				rest = rest[1:]
			}
			if len(rest) == 0 {
				break
			}
		}
		if len(positionals) != 2 {
			fmt.Fprintln(os.Stderr, "manetsim bench -compare needs exactly two snapshot files")
			os.Exit(2)
		}
		compareSnapshots(positionals[0], positionals[1], *warnPct, *failPct)
		return
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	switch {
	case *parse:
		snap, err := perf.ParseGoBench(os.Stdin, date)
		if err != nil {
			fatalBench("parse: %v", err)
		}
		if err := snap.WriteFile(path); err != nil {
			fatalBench("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	case *emitJSON:
		snap, err := perf.RunSuite(date, *count, os.Stderr)
		if err != nil {
			fatalBench("%v", err)
		}
		if err := snap.WriteFile(path); err != nil {
			fatalBench("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	default:
		snap, err := perf.RunSuite(date, *count, os.Stderr)
		if err != nil {
			fatalBench("%v", err)
		}
		for _, r := range snap.Benchmarks {
			fmt.Printf("%-36s %14.0f ns/op %12.0f B/op %10.0f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			for unit, v := range r.Metrics {
				fmt.Printf("  %g %s", v, unit)
			}
			fmt.Println()
		}
	}
}

func compareSnapshots(basePath, candPath string, warnPct, failPct float64) {
	base, err := perf.LoadSnapshot(basePath)
	if err != nil {
		fatalBench("%v", err)
	}
	cand, err := perf.LoadSnapshot(candPath)
	if err != nil {
		fatalBench("%v", err)
	}
	results, failed := perf.Compare(base, cand, warnPct, failPct)
	fmt.Printf("baseline %s (%s, %s) vs candidate %s (%s, %s)\n",
		base.Date, base.GoVersion, base.GOARCH, cand.Date, cand.GoVersion, cand.GOARCH)
	if !perf.SameHost(base, cand) {
		fmt.Printf("note: different hardware (%q/%d vs %q/%d) — ns/op gate is advisory (warn-only), allocs/op still fails hard\n",
			base.CPU, base.CPUs, cand.CPU, cand.CPUs)
	}
	fmt.Print(perf.FormatCompare(results, warnPct, failPct))
	if failed {
		fmt.Println("perf gate: FAIL")
		os.Exit(1)
	}
	fmt.Println("perf gate: ok")
}

func fatalBench(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "manetsim bench: "+format+"\n", args...)
	os.Exit(1)
}
