package mac

import (
	"testing"
	"testing/quick"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// TestQuickBackoffDrawsWithinWindow property-checks the backoff sampler
// stays within [0, cw] across contention-window growth.
func TestQuickBackoffDrawsWithinWindow(t *testing.T) {
	f := func(seed int64, growths uint8) bool {
		sched := sim.NewScheduler(seed)
		ch := phy.NewChannel(sched, geo.Chain(1))
		d := New(sched, ch.Radio(0), Config{DataRate: phy.Rate2Mbps}, Callbacks{
			Deliver:     func(*pkt.Packet, pkt.NodeID) {},
			LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
		})
		for i := 0; i < int(growths%15); i++ {
			d.growCW()
		}
		if d.cw < CWMin || d.cw > CWMax {
			return false
		}
		for i := 0; i < 50; i++ {
			if s := d.drawBackoff(); s < 0 || s > d.cw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeliveryConservation property-checks, for random offered loads
// on a 2-hop relay, that delivered packets never exceed accepted packets
// and duplicate suppression never delivers the same UID twice.
func TestQuickDeliveryConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		sched := sim.NewScheduler(seed)
		positions := geo.Chain(2)
		ch := phy.NewChannel(sched, positions)
		var uids pkt.UIDSource
		seen := map[uint64]int{}
		macs := make([]*DCF, 3)
		for i := 0; i < 3; i++ {
			i := i
			macs[i] = New(sched, ch.Radio(pkt.NodeID(i)), Config{DataRate: phy.Rate2Mbps}, Callbacks{
				Deliver: func(p *pkt.Packet, _ pkt.NodeID) {
					if i == 1 && p.Dst == 2 {
						macs[1].Enqueue(p, 2)
						return
					}
					seen[p.UID]++
				},
				LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
			})
		}
		accepted := 0
		sched.At(0, func() {
			for j := 0; j < n; j++ {
				p := &pkt.Packet{UID: uids.Next(), Kind: pkt.KindTCPData, Size: 1500, Src: 0, Dst: 2}
				if macs[0].Enqueue(p, 1) {
					accepted++
				}
			}
		})
		sched.Run()
		delivered := 0
		for _, c := range seen {
			if c > 1 {
				return false // duplicate delivery
			}
			delivered += c
		}
		return delivered <= accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEIFSAfterCorruption checks the MAC uses the extended IFS after an
// errored reception and returns to DIFS afterwards.
func TestEIFSAfterCorruption(t *testing.T) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, geo.Chain(1))
	d := New(sched, ch.Radio(0), Config{DataRate: phy.Rate2Mbps}, Callbacks{
		Deliver:     func(*pkt.Packet, pkt.NodeID) {},
		LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
	})
	d.RxCorrupted()
	if !d.useEIFS {
		t.Fatal("EIFS flag not set after corruption")
	}
	// A good frame clears it.
	d.RxFrame(&Frame{Type: FrameCTS, From: 9, To: 8}, 1)
	if d.useEIFS {
		t.Error("EIFS flag not cleared by a good frame")
	}
}

// TestExchangeTimesScaleWithPacketSize sanity-checks DataAir monotonicity.
func TestExchangeTimesScaleWithPacketSize(t *testing.T) {
	tm := NewTiming(phy.Rate2Mbps)
	if tm.DataAir(100) >= tm.DataAir(1500) {
		t.Error("airtime not monotone in frame size")
	}
	small := tm.ExchangeTime(40)
	big := tm.ExchangeTime(1500)
	if small >= big {
		t.Error("exchange time not monotone in packet size")
	}
	// An ACK-sized exchange still pays the full control overhead.
	if small < DIFS+tm.RTSAir+tm.CTSAir+tm.AckAir {
		t.Error("exchange time misses control overhead")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	sched := sim.NewScheduler(1)
	positions := geo.Chain(1)
	ch := phy.NewChannel(sched, positions)
	var uids pkt.UIDSource
	var got []uint64
	macs := make([]*DCF, 2)
	for i := 0; i < 2; i++ {
		macs[i] = New(sched, ch.Radio(pkt.NodeID(i)), Config{DataRate: phy.Rate2Mbps}, Callbacks{
			Deliver:     func(p *pkt.Packet, _ pkt.NodeID) { got = append(got, p.UID) },
			LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
		})
	}
	var want []uint64
	sched.At(0, func() {
		for j := 0; j < 10; j++ {
			p := &pkt.Packet{UID: uids.Next(), Kind: pkt.KindTCPData, Size: 1500, Src: 0, Dst: 1}
			want = append(want, p.UID)
			macs[0].Enqueue(p, 1)
		}
	})
	sched.Run()
	if len(got) != len(want) {
		t.Fatalf("delivered %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want FIFO %v", got, want)
		}
	}
}

func TestNAVExpiryResumesTransmission(t *testing.T) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, geo.Chain(1))
	var delivered int
	macs := make([]*DCF, 2)
	for i := 0; i < 2; i++ {
		macs[i] = New(sched, ch.Radio(pkt.NodeID(i)), Config{DataRate: phy.Rate2Mbps}, Callbacks{
			Deliver:     func(*pkt.Packet, pkt.NodeID) { delivered++ },
			LinkFailure: func(*pkt.Packet, pkt.NodeID) {},
		})
	}
	var uids pkt.UIDSource
	sched.At(0, func() {
		// Pre-load a NAV reservation, then enqueue: the packet must wait
		// out the NAV and then go.
		macs[0].RxFrame(&Frame{Type: FrameCTS, From: 8, To: 9, Duration: 20 * time.Millisecond}, 1)
		macs[0].Enqueue(&pkt.Packet{UID: uids.Next(), Kind: pkt.KindTCPData, Size: 1500, Src: 0, Dst: 1}, 1)
	})
	sched.RunUntil(15 * time.Millisecond)
	if delivered != 0 {
		t.Fatal("transmitted during NAV reservation")
	}
	sched.RunUntil(100 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("delivered %d after NAV expiry, want 1", delivered)
	}
}
