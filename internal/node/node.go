// Package node assembles the per-node protocol stack: radio (PHY), 802.11
// DCF (MAC), a routing entity (AODV or static), and the transport endpoints
// (TCP senders/sinks, paced-UDP sources/sinks) demultiplexed by flow id.
// It also carries the node's energy accounting.
package node

import (
	"fmt"
	"time"

	"manetsim/internal/mac"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/tcp"
	"manetsim/internal/udp"
)

// Router abstracts the routing layer (aodv.Router or aodv.StaticRouter).
type Router interface {
	// Send routes a locally originated packet.
	Send(p *pkt.Packet)
	// HandlePacket processes a packet handed up by the MAC.
	HandlePacket(p *pkt.Packet, from pkt.NodeID)
	// HandleLinkFailure reacts to MAC retry exhaustion.
	HandleLinkFailure(p *pkt.Packet, nextHop pkt.NodeID)
}

// Power is a radio power model in watts per state.
type Power struct {
	Tx, Rx, Idle float64
}

// DefaultPower holds WaveLAN-class consumption constants (W).
var DefaultPower = Power{Tx: 1.4, Rx: 0.9, Idle: 0.74}

// Node is one network node with its full protocol stack. Create with New,
// then install a Router with SetRouter before traffic flows.
type Node struct {
	ID     pkt.NodeID //manetsim:resetsafe node identity is fixed at construction
	Radio  *phy.Radio //manetsim:resetsafe radio wiring; the channel resets radios
	MAC    *mac.DCF
	router Router

	sched *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the node

	tcpSenders map[int]tcp.Sender
	tcpSinks   map[int]*tcp.Sink
	udpSinks   map[int]*udp.Sink

	// output is the cached transport-layer output closure (see Output). It
	// reads n.router dynamically, so it survives router swaps and resets.
	output func(p *pkt.Packet) //manetsim:resetsafe cached closure reads n.router dynamically, so it survives resets

	// OnFlowDelivery observes per-flow goodput advancement (new in-order
	// packets at a local sink). The core layer uses it for batch breaks.
	OnFlowDelivery func(flow int, packets int64)
}

// New creates a node over the given radio and wires the MAC (configured
// by macCfg) to the (later installed) router.
func New(sched *sim.Scheduler, radio *phy.Radio, macCfg mac.Config) *Node {
	n := &Node{
		ID:         radio.ID(),
		Radio:      radio,
		sched:      sched,
		tcpSenders: make(map[int]tcp.Sender),
		tcpSinks:   make(map[int]*tcp.Sink),
		udpSinks:   make(map[int]*udp.Sink),
	}
	n.MAC = mac.New(sched, radio, macCfg, mac.Callbacks{
		Deliver: func(p *pkt.Packet, from pkt.NodeID) {
			n.mustRouter().HandlePacket(p, from)
		},
		LinkFailure: func(p *pkt.Packet, nextHop pkt.NodeID) {
			n.mustRouter().HandleLinkFailure(p, nextHop)
		},
	})
	return n
}

// SetRouter installs the routing entity. The router's local-delivery
// callback must be the node's Deliver method.
func (n *Node) SetRouter(r Router) { n.router = r }

// Router returns the installed routing entity.
func (n *Node) Router() Router { return n.mustRouter() }

func (n *Node) mustRouter() Router {
	if n.router == nil {
		panic(fmt.Sprintf("node %d: router not installed", n.ID))
	}
	return n.router
}

// Reset rewinds the node for a new run over the same (already reset) radio
// and scheduler: the router is detached, the flow endpoints unregistered
// (so Attach* accepts the new run's flows), the delivery hook cleared, and
// the MAC reset — which also re-installs the MAC as the radio's handler.
func (n *Node) Reset(macCfg mac.Config) {
	n.router = nil
	clear(n.tcpSenders)
	clear(n.tcpSinks)
	clear(n.udpSinks)
	n.OnFlowDelivery = nil
	n.MAC.Reset(macCfg)
}

// Output returns the transport-layer output function: packets go to the
// routing layer. The closure is built once per node and cached, so
// transport endpoints bound to it across arena reuse keep a stable, valid
// binding (it resolves the router at call time).
func (n *Node) Output() func(p *pkt.Packet) {
	if n.output == nil {
		n.output = func(p *pkt.Packet) { n.mustRouter().Send(p) }
	}
	return n.output
}

// AttachTCPSender registers a sender for a flow originating here.
func (n *Node) AttachTCPSender(flow int, s tcp.Sender) {
	if _, dup := n.tcpSenders[flow]; dup {
		panic(fmt.Sprintf("node %d: duplicate TCP sender for flow %d", n.ID, flow))
	}
	n.tcpSenders[flow] = s
}

// AttachTCPSink registers a receiver for a flow terminating here.
func (n *Node) AttachTCPSink(flow int, s *tcp.Sink) {
	if _, dup := n.tcpSinks[flow]; dup {
		panic(fmt.Sprintf("node %d: duplicate TCP sink for flow %d", n.ID, flow))
	}
	n.tcpSinks[flow] = s
}

// AttachUDPSink registers a paced-UDP receiver for a flow terminating here.
func (n *Node) AttachUDPSink(flow int, s *udp.Sink) {
	if _, dup := n.udpSinks[flow]; dup {
		panic(fmt.Sprintf("node %d: duplicate UDP sink for flow %d", n.ID, flow))
	}
	n.udpSinks[flow] = s
}

// Deliver is the routing layer's local-delivery callback: demultiplex to
// the transport endpoint for the packet's flow. The endpoint consumes the
// packet synchronously; Deliver drops the delivered reference afterwards so
// pooled packets recycle (endpoints must copy, not keep, header state).
func (n *Node) Deliver(p *pkt.Packet) {
	defer p.Release()
	switch p.Kind {
	case pkt.KindTCPData:
		if sink := n.tcpSinks[p.TCP.Flow]; sink != nil {
			before := sink.Stats().GoodputPackets
			sink.HandleData(p)
			if d := sink.Stats().GoodputPackets - before; d > 0 && n.OnFlowDelivery != nil {
				n.OnFlowDelivery(p.TCP.Flow, d)
			}
		}
	case pkt.KindTCPAck:
		if s := n.tcpSenders[p.TCP.Flow]; s != nil {
			s.HandleAck(p)
		}
	case pkt.KindUDPData:
		if sink := n.udpSinks[p.UDP.Flow]; sink != nil {
			before := sink.Received
			sink.HandleData(p)
			if d := sink.Received - before; d > 0 && n.OnFlowDelivery != nil {
				n.OnFlowDelivery(p.UDP.Flow, d)
			}
		}
	}
}

// EnergyJoules integrates the power model over the node's radio states up
// to the elapsed simulated time.
func (n *Node) EnergyJoules(p Power, elapsed time.Duration) float64 {
	tx := n.Radio.TxTime().Seconds()
	rx := n.Radio.RxTime().Seconds()
	idle := elapsed.Seconds() - tx - rx
	if idle < 0 {
		idle = 0
	}
	return p.Tx*tx + p.Rx*rx + p.Idle*idle
}
