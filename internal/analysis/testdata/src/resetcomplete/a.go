// Package resetcomplete exercises the resetcomplete analyzer: every field of
// a struct with a Reset method must be re-initialized in Reset (directly,
// via a helper, via a method on the field, or by whole-receiver overwrite)
// or carry //manetsim:resetsafe.
package resetcomplete

// Arena is the failing case: seed was added after Reset was written.
type Arena struct {
	buf  []byte
	n    int
	seed uint64 // want `field seed of Arena is not reset`
	free *Arena //manetsim:resetsafe freelist link survives reuse by design
}

func (a *Arena) Reset() {
	a.buf = a.buf[:0]
	a.n = 0
}

// Wipe resets by whole-receiver overwrite, which handles every field at once.
type Wipe struct {
	x, y int
	m    map[int]int
}

func (w *Wipe) Reset() {
	*w = Wipe{m: w.m}
	clear(w.m)
}

// Helper reaches field b through a same-receiver helper method.
type Helper struct {
	a int
	b int
}

func (h *Helper) Reset() {
	h.a = 0
	h.zeroB()
}

func (h *Helper) zeroB() { h.b = 0 }

// Sub handles inner by calling a method on the field itself.
type Sub struct {
	inner Helper
	count int
}

func (s *Sub) Reset() {
	s.inner.Reset()
	s.count = 0
}

// Embeds forgets its embedded struct.
type Embeds struct {
	Helper // want `embedded field Helper of Embeds is not reset`
	used   bool
}

func (e *Embeds) Reset() { e.used = false }

// NoReset has no Reset method and therefore no obligations.
type NoReset struct {
	anything int
}
