package exp

import (
	"fmt"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// sevenHopVariants are the bar groups of Figures 11-14: the four TCP
// variants plus the artificially bounded NewReno and paced UDP.
var sevenHopVariants = []struct {
	name string
	t    core.TransportSpec
	udp  bool
}{
	{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}, false},
	{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}, false},
	{"Vegas Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2, AckThinning: true}, false},
	{"NewReno Thin", core.TransportSpec{Protocol: core.ProtoNewReno, AckThinning: true}, false},
	{"NewReno OptWin", core.TransportSpec{Protocol: core.ProtoNewReno, MaxWindow: 3}, false},
	{"Paced UDP", core.TransportSpec{Protocol: core.ProtoPacedUDP}, true},
}

// sevenHopComparison renders one of Figures 11-14: a metric for every
// variant at 2, 5.5 and 11 Mbit/s on the 7-hop chain.
func sevenHopComparison(h *Harness, id, title, ylabel string, includeUDP bool, metric func(*core.Result) float64) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "bandwidth [Mbit/s]", YLabel: ylabel}
	for _, v := range sevenHopVariants {
		if v.udp && !includeUDP {
			continue
		}
		s := Series{Name: v.name}
		for _, r := range rates {
			t := v.t
			if v.udp {
				gap, err := h.OptimalUDPGap(7, r)
				if err != nil {
					return nil, err
				}
				t.UDPGap = gap
			}
			res, err := h.Run(chainCfg(7, r, t))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: rateLabel(r), Y: metric(res)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig11: 7-hop chain — goodput for different bandwidths, all variants.
func Fig11(h *Harness) (*Figure, error) {
	return sevenHopComparison(h, "fig11", "7-hop chain: goodput for different bandwidths",
		"goodput [kbit/s]", true, func(r *core.Result) float64 { return kbit(r.AggGoodput.Mean) })
}

// Fig12: 7-hop chain — transport retransmissions for different bandwidths.
func Fig12(h *Harness) (*Figure, error) {
	return sevenHopComparison(h, "fig12", "7-hop chain: retransmissions for different bandwidths",
		"retransmissions per delivered packet", false, func(r *core.Result) float64 { return r.Rtx.Mean })
}

// Fig13: 7-hop chain — average window size for different bandwidths.
func Fig13(h *Harness) (*Figure, error) {
	return sevenHopComparison(h, "fig13", "7-hop chain: window size for different bandwidths",
		"window [packets]", false, func(r *core.Result) float64 { return r.AvgWindow.Mean })
}

// Fig14: 7-hop chain — link-layer dropping probability for different
// bandwidths (per-attempt failure rate; see DESIGN.md).
func Fig14(h *Harness) (*Figure, error) {
	return sevenHopComparison(h, "fig14", "7-hop chain: packet dropping probability at link layer",
		"per-attempt failure probability", true, func(r *core.Result) float64 { return r.DropProb.Mean })
}

// Energy is an extension experiment quantifying the paper's energy-saving
// claims: joules per delivered megabyte on the 7-hop chain.
func Energy(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "energy", Title: "7-hop chain: radio energy per delivered megabyte",
		XLabel: "bandwidth [Mbit/s]", YLabel: "J/MB",
	}
	for _, v := range sevenHopVariants {
		if v.udp {
			continue
		}
		s := Series{Name: v.name}
		for _, r := range rates {
			res, err := h.Run(chainCfg(7, r, v.t))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: rateLabel(r), Y: res.Energy.JoulesPerMB})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Ablation quantifies the two modelling decisions DESIGN.md calls out, on
// the 8-hop chain at 2 Mbit/s: the PHY capture rule and AODV's reaction to
// MAC failures.
func Ablation(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "ablation", Title: "8-hop chain, 2 Mbit/s: model ablations (Vegas / NewReno)",
		XLabel: "model", YLabel: "goodput [kbit/s] (+notes)",
	}
	type variant struct {
		x   string
		cfg func(core.Config) core.Config
	}
	variants := []variant{
		{"default (capture+AODV)", func(c core.Config) core.Config { return c }},
		{"no capture", func(c core.Config) core.Config { c.NoCapture = true; return c }},
		{"static routes", func(c core.Config) core.Config {
			c.Scenario = c.Scenario.Clone().WithRouting(core.RoutingStatic)
			return c
		}},
	}
	for _, proto := range []core.TransportSpec{
		{Protocol: core.ProtoVegas, Alpha: 2},
		{Protocol: core.ProtoNewReno},
	} {
		s := Series{Name: proto.Label()}
		for _, v := range variants {
			res, err := h.Run(v.cfg(chainCfg(8, phy.Rate2Mbps, proto)))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: v.x, Y: kbit(res.AggGoodput.Mean)})
			f.Notes = append(f.Notes, fmt.Sprintf("%s / %s: rtx=%.4f frf=%d drop=%.4f",
				proto.Label(), v.x, res.Rtx.Mean, res.FalseRouteFailures, res.DropProb.Mean))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
