package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"manetsim"
)

// runServe starts the campaign-as-a-service HTTP mode: one shared
// Campaign (worker-pooled arenas, in-memory cache, optional persistent
// result store) behind the submit/status/results/events API.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8971", "listen address")
		storeDir  = fs.String("store", "", "persistent result store directory; empty = in-memory cache only (sweeps are not resumable across restarts)")
		workers   = fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		scaleName = fs.String("scale", "quick", "default per-run measurement budget: paper, quick or bench")
	)
	fs.Parse(args)

	var scale manetsim.Scale
	switch strings.ToLower(*scaleName) {
	case "paper":
		scale = manetsim.PaperScale
	case "quick":
		scale = manetsim.QuickScale
	case "bench":
		scale = manetsim.BenchScale
	default:
		fatalf("unknown scale %q (paper, quick, bench)", *scaleName)
	}

	var opts []manetsim.CampaignOption
	if *workers > 0 {
		opts = append(opts, manetsim.WithWorkers(*workers))
	}
	if *storeDir != "" {
		opts = append(opts, manetsim.WithStore(*storeDir))
	}
	campaign := manetsim.NewCampaign(scale, opts...)
	if err := campaign.Ready(); err != nil {
		fatalf("serve: %v", err)
	}
	server := manetsim.NewServer(campaign)

	if *storeDir != "" {
		log.Printf("manetsim serve: result store at %s (schema v%d)", *storeDir, manetsim.ResultSchemaVersion)
	} else {
		log.Printf("manetsim serve: no -store directory; results are in-memory only")
	}
	log.Printf("manetsim serve: listening on http://%s/api/v1/ (scale %s)", *addr, scale.Name)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fatalf("serve: %v", err)
	}
}
