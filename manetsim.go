// Package manetsim is a discrete-event simulator of TCP over multihop
// IEEE 802.11 wireless networks. It grew out of reproducing ElRakabawy,
// Lindemann & Vernon, "Improving TCP Performance for Multihop Wireless
// Networks" (DSN 2005) — TCP Vegas versus TCP NewReno, with and without
// dynamic ACK thinning, against an optimally paced UDP reference — and now
// exposes the full engine as a general scenario/observer/campaign API.
//
// The simulator models the complete stack at packet granularity: an IEEE
// 802.11 DCF MAC with RTS/CTS, NAV, EIFS and binary exponential backoff; a
// threshold wireless channel with two-ray-ground capture; AODV with the
// link-failure behaviour that causes the paper's "false route failures";
// a pluggable transport layer (TCP NewReno, Vegas, Reno, Tahoe, Westwood+
// and a rate-based adaptive-pacing sender, all behind one registry);
// receiver-side ACK thinning; and random waypoint mobility.
//
// # Scenarios
//
// A Scenario is the network under test: explicit node placement, an
// arbitrary flow set with per-flow transports and start times, and the
// scenario-level routing and mobility choices. The paper's three
// topologies are constructors — Chain, Grid, Random — and custom networks
// compose from NewScenario/AddNode/AddFlow:
//
//	scn := manetsim.NewScenario("cross")
//	a := scn.AddNode(0, 200)
//	b := scn.AddNode(400, 200)
//	scn.AddFlow(a, b)
//
// # Runs
//
// Run executes one scenario under a context, with functional options for
// the run-level knobs:
//
//	res, err := manetsim.Run(ctx, manetsim.Chain(7),
//	    manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}),
//	    manetsim.WithSeed(1))
//	if err != nil { ... }
//	fmt.Printf("goodput: %.0f kbit/s\n", res.AggGoodput.Mean/1e3)
//
// Runs are deterministic per seed and safe to execute concurrently. An
// Observer (attached with WithObserver) streams batch closes, classified
// route failures, transport retransmissions, window samples and progress
// out of a run; with no observer attached the hot path stays
// allocation-free. The default measurement methodology matches the paper:
// run until 110000 packets are delivered, split into batches of 10000,
// discard the first, and report batch means with 95% confidence intervals.
//
// # Transports
//
// Transports are plugins: every variant is a named registry entry, and a
// TransportSpec selects one by Name (or by the legacy Protocol constants,
// which resolve through the same registry). Window-based variants share
// one sender engine and differ only in their CongestionControl strategy;
// RegisterTransport adds new strategies that become selectable everywhere
// a spec goes, including Campaign sweeps and cmd/manetsim:
//
//	manetsim.RegisterTransport("mine", func(manetsim.TransportSpec) (manetsim.CongestionControl, error) {
//	    return &myCC{}, nil
//	})
//	res, err := manetsim.Run(ctx, scn,
//	    manetsim.WithTransport(manetsim.TransportSpec{Name: "mine"}))
//
// # Campaigns
//
// A Campaign executes parameter studies: it deduplicates identical runs
// through a single-flight cache, bounds parallelism, applies a common
// Scale, and aggregates seed replications into confidence intervals. See
// Campaign.Sweep for declarative protocol x rate x scenario x seed grids.
//
// Campaigns also run as shared, durable infrastructure. WithStore
// attaches a persistent content-addressed result store (every completed
// run lands on disk under the SHA-256 of its Config.CacheKey), which
// makes sweeps resumable — a killed week-long grid restarted against the
// same directory re-runs only its incomplete cells — and shareable
// between processes. Cells are addressed canonically by CellKey across
// the in-memory cache, the disk store and the HTTP API. Server (the
// "manetsim serve" subcommand) exposes a campaign over HTTP:
// submit/status/results plus an NDJSON stream of per-run progress.
package manetsim

import (
	"context"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/stats"
	"manetsim/internal/tcp"
)

// NodeID identifies a node in a scenario (its index in the placement).
type NodeID = pkt.NodeID

// Channel bit rates of IEEE 802.11b as evaluated in the paper.
const (
	Rate2Mbps   = phy.Rate2Mbps
	Rate5_5Mbps = phy.Rate5_5Mbps
	Rate11Mbps  = phy.Rate11Mbps
)

// Rate is a channel bit rate in bit/s.
type Rate = phy.Rate

// Transport protocols: the paper's three plus the classic Reno and Tahoe
// baselines discussed in its related work.
const (
	Vegas    = core.ProtoVegas
	NewReno  = core.ProtoNewReno
	PacedUDP = core.ProtoPacedUDP
	Reno     = core.ProtoReno
	Tahoe    = core.ProtoTahoe
)

// Protocol selects the transport variant. The constants above are
// registry-backed aliases: they resolve through the same transport
// registry as TransportSpec.Name, so both selection styles build
// identical flows.
type Protocol = core.Protocol

// TransportSpec configures the transport layer of a flow (or the run-wide
// default passed via WithTransport). A spec selects its variant either by
// registry Name — "vegas", "newreno", "pacedudp", "reno", "tahoe",
// "westwood", "pacing", or anything added with RegisterTransport — or by
// the legacy Protocol constant.
type TransportSpec = core.TransportSpec

// Params carries the optional per-variant transport parameters of a
// TransportSpec (Vegas β/γ, the Westwood+ bandwidth filter gain, the
// adaptive-pacing shape). Zero fields select the variant defaults.
type Params = core.Params

// TransportInfo describes one registered transport (see Transports).
type TransportInfo = core.TransportInfo

// Transports lists every registered transport — built-in and registered —
// sorted by name.
func Transports() []TransportInfo { return core.Transports() }

// TransportFactory builds the congestion-control strategy for one flow of
// a registered transport. The spec carries the flow's parameters; the
// factory returns an error for unusable ones.
type TransportFactory = core.CCFactory

// RegisterTransport adds a window-based transport under name, making it
// selectable everywhere a TransportSpec goes: Run options, per-flow specs,
// Campaign sweeps, and cmd/manetsim -protocol. The factory's strategy is
// bound into the shared sender engine, which supplies sequence accounting,
// RTO estimation, retransmission and window tracing; the strategy only
// decides the window policy and loss reaction. RegisterTransport panics on
// an empty or duplicate name (registration happens at program setup).
//
// Register from init or main before any runs start; the registry is safe
// for concurrent reads during runs.
func RegisterTransport(name string, factory TransportFactory) {
	core.RegisterCC(name, factory)
}

// CongestionControl is the strategy interface a registered transport
// implements: the per-variant reaction to ACKs, duplicate ACKs, RTT
// samples and timeouts, driving the shared engine. Embed CCBase for
// neutral defaults and implement only the reactions the variant needs.
type CongestionControl = tcp.CongestionControl

// CCBase is the embeddable helper for CongestionControl implementations:
// it stores the engine binding (Engine()) and supplies neutral defaults
// for Init, OnStart, OnRTTSample and Window.
type CCBase = tcp.CCBase

// TransportEngine is the shared sender machinery a CongestionControl
// drives: window and sequence accounting (SetWindow, AdvanceAck, GoBackN,
// Retransmit), the RTO estimator (SampleRTT, RestartRTOTimer, BackoffRTO,
// FineRTO) and optional rate pacing (EnablePacing).
type TransportEngine = tcp.Engine

// Ack summarizes one acknowledgment for a CongestionControl strategy.
type Ack = tcp.Ack

// Scenario describes the network under test: node placement, flows with
// per-flow transports and start times, routing and mobility.
type Scenario = core.Scenario

// Flow is one transport connection of a scenario.
type Flow = core.Flow

// Position is a node location in meters.
type Position = core.Position

// NewScenario returns an empty named scenario to populate with
// AddNode/AddFlow.
func NewScenario(name string) *Scenario { return core.NewScenario(name) }

// Chain returns an h-hop chain of 200 m spaced nodes with a single flow
// from end to end — the paper's first topology.
func Chain(hops int) *Scenario { return core.Chain(hops) }

// Grid returns the paper's 21-node grid with its six crossing FTP flows.
func Grid() *Scenario { return core.Grid() }

// Random returns the paper's 120-node random topology (2500x1000 m²) with
// ten random flows, drawn from the run's seed.
func Random() *Scenario { return core.Random() }

// HiddenTerminal returns the interference-limited hidden-terminal
// topology: two parallel one-hop flows whose senders cannot carrier-sense
// each other but still collide at the first receiver. Compare runs with
// WithRTSThreshold off and on to measure the classic RTS/CTS trade-off.
func HiddenTerminal() *Scenario { return core.HiddenTerminal() }

// RandomField returns a seed-synthesized random topology: n nodes placed
// uniformly on a width x height meter field with the given number of
// random flows.
func RandomField(n int, width, height float64, flows int) *Scenario {
	return core.RandomField(n, width, height, flows)
}

// Routing substrates.
const (
	RoutingAODV   = core.RoutingAODV
	RoutingStatic = core.RoutingStatic
)

// RoutingKind selects the routing substrate (AODV is the paper's).
type RoutingKind = core.RoutingKind

// Mobility models: stationary nodes (the paper's setting) or random
// waypoint movement inside a bounded field.
const (
	MobilityStationary     = core.MobilityStationary
	MobilityRandomWaypoint = core.MobilityRandomWaypoint
)

// MobilityKind selects the node movement model.
type MobilityKind = core.MobilityKind

// MobilitySpec configures node movement over a run (random waypoint speed
// range, pause time, field bounds, endpoint pinning).
type MobilitySpec = core.MobilitySpec

// LinkModelSpec configures per-link impairments for a run: the model
// selected by registry Name — "perfect" (the default), "uniform" (alias
// "loss"), "ber", "gilbert-elliott" (alias "ge"), "distance", or anything
// added with RegisterLinkModel — plus its parameters, an optional per-link
// delay Jitter and the receiver capture-threshold override CaptureRatio.
// The zero spec is the perfect channel and keeps every run byte-identical
// to the pre-impairment simulator. Apply one with WithLinkModel, a
// Config.LinkModel field, or a Sweep's LinkModels axis.
type LinkModelSpec = core.LinkModelSpec

// UniformLossModel returns a spec dropping every frame copy independently
// with probability p.
func UniformLossModel(p float64) LinkModelSpec { return core.UniformLossModel(p) }

// BERModel returns a spec derived from an independent bit error rate over
// frameBits-bit frames: frame loss = 1-(1-ber)^frameBits.
func BERModel(ber float64, frameBits int) LinkModelSpec {
	return core.BERModel(ber, frameBits)
}

// GilbertElliottModel returns a bursty two-state loss spec: links flip
// good->bad with pGoodBad and bad->good with pBadGood per frame, losing
// lossBad of the frames sent while bad (and none while good).
func GilbertElliottModel(pGoodBad, pBadGood, lossBad float64) LinkModelSpec {
	return core.GilbertElliottModel(pGoodBad, pBadGood, lossBad)
}

// LinkModelInfo describes one registered link model (see LinkModels).
type LinkModelInfo = core.LinkModelInfo

// LinkModels lists every registered link-impairment model — built-in and
// registered — sorted by name.
func LinkModels() []LinkModelInfo { return core.LinkModels() }

// LinkModelFactory builds the impairment model for a run from its spec;
// it returns an error for unusable parameters.
type LinkModelFactory = core.LinkModelFactory

// RegisterLinkModel adds a link-impairment model under name, making it
// selectable everywhere a LinkModelSpec goes: Run options, Campaign
// sweeps, and cmd/manetsim -link-model. It panics on an empty or
// duplicate name; register from init or main before any runs start.
func RegisterLinkModel(name string, factory LinkModelFactory) {
	core.RegisterLinkModel(name, factory)
}

// FaultSpec configures one injected fault of a run: a scheduled,
// deterministic disturbance selected by registry Name — "crash" (alias
// "nodecrash"), "blackout" (alias "linkblackout"), "partition" (alias
// "split"), or anything added with RegisterFault — with its injection
// time At and Duration (0 = permanent). Build common specs with
// CrashFault, BlackoutFault and PartitionFault; apply them with
// WithFaults, a Config.Faults list, or a Sweep's Faults axis. Faulted
// runs report resilience metrics in Result.Faults.
type FaultSpec = core.FaultSpec

// CrashFault returns the spec of a node crash at time at: the node's
// radio, MAC, router and transport endpoints go down and restart cold
// after downtime (0 = the node never comes back).
func CrashFault(node int, at, downtime time.Duration) FaultSpec {
	return core.CrashFault(node, at, downtime)
}

// BlackoutFault returns the spec of a bidirectional link blackout
// between from and to over [at, at+duration).
func BlackoutFault(from, to int, at, duration time.Duration) FaultSpec {
	return core.BlackoutFault(from, to, at, duration)
}

// PartitionFault returns the spec of an axis-cut network partition:
// nodes with X < cut are severed from the rest over [at, at+duration).
func PartitionFault(cut float64, at, duration time.Duration) FaultSpec {
	return core.PartitionFault(cut, at, duration)
}

// FaultInfo describes one registered fault injector (see Faults).
type FaultInfo = core.FaultInfo

// Faults lists every registered fault injector — built-in and registered
// — sorted by name.
func Faults() []FaultInfo { return core.Faults() }

// FaultFactory builds the fault injector for a run from its spec; it
// returns an error for unusable parameters.
type FaultFactory = core.FaultFactory

// RegisterFault adds a fault injector under name, making it selectable
// everywhere a FaultSpec goes: Run options, Campaign sweeps, and
// cmd/manetsim -fault. It panics on an empty or duplicate name; register
// from init or main before any runs start.
func RegisterFault(name string, factory FaultFactory) {
	core.RegisterFault(name, factory)
}

// FaultReport carries the resilience metrics of a faulted run (see
// Result.Faults): per-outage recovery times, the goodput split between
// outage and healthy time, frames cut by the fault plane, and the route
// repairs the faults triggered.
type FaultReport = core.FaultReport

// OutageReport measures one injected fault's outage window and the
// network's recovery from it.
type OutageReport = core.OutageReport

// Config is the full description of one run: the scenario plus run-level
// knobs. Run assembles one from its options; campaign sweeps and advanced
// callers may build Configs directly and execute them with RunConfig or
// Campaign.RunAll.
type Config = core.Config

// Result carries all measurements of a run with batch-means confidence
// intervals.
type Result = core.Result

// Batch holds the raw per-batch measurements.
type Batch = core.Batch

// Estimate is a point estimate with a 95% confidence interval.
type Estimate = stats.Estimate

// EnergyReport summarizes radio energy consumption of a run.
type EnergyReport = core.EnergyReport

// DelaySummary reports end-to-end packet latency quantiles of a run.
type DelaySummary = core.DelaySummary

// Observer receives run events (batch closes, classified route failures,
// transport retransmissions, window samples, progress) synchronously from
// the event loop. Attach one with WithObserver.
type Observer = core.Observer

// ObserverFuncs adapts optional callbacks to the Observer interface; nil
// fields are skipped.
type ObserverFuncs = core.ObserverFuncs

// Run executes one scenario under ctx and returns its measurements. A
// cancelled context aborts the run promptly and returns ctx.Err(). It is
// safe to call concurrently from multiple goroutines (each run is
// self-contained); Campaign exploits this to sweep parameters in parallel.
func Run(ctx context.Context, scn *Scenario, opts ...Option) (*Result, error) {
	cfg := Config{Scenario: scn}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.RunContext(ctx, cfg)
}

// RunConfig executes one fully specified Config under ctx. Most callers
// want Run; RunConfig exists for harnesses that assemble Configs
// declaratively.
func RunConfig(ctx context.Context, cfg Config) (*Result, error) {
	return core.RunContext(ctx, cfg)
}

// World is a reusable run arena. It keeps every allocation a run makes —
// scheduler heap, channel and spatial grid, per-node MAC and routing
// stacks, transport engines, packet pool — and rewinds them in place for
// the next run instead of rebuilding from scratch. Results are
// byte-identical to fresh runs of the same Config. A World is not safe for
// concurrent use, but separate Worlds run concurrently without
// restriction; Campaign pools one per worker automatically, so explicit
// Worlds are only needed for custom replicate loops.
type World = core.World

// NewWorld returns an empty arena: the first run builds the full
// simulation state and subsequent runs reuse it.
func NewWorld() *World { return core.NewWorld() }

// FourHopPropagationDelay returns the paper's Table 2 value for a given
// rate: the minimal link-layer delay for a TCP data packet to advance four
// hops along a chain with zero queueing.
func FourHopPropagationDelay(rate Rate) time.Duration {
	return fourHopDelay(rate)
}
