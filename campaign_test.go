package manetsim

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func benchChainCfg(hops int) Config {
	return Config{
		Scenario:  Chain(hops),
		Bandwidth: Rate2Mbps,
		Transport: TransportSpec{Protocol: Vegas, Alpha: 2},
	}
}

func TestCampaignCacheDedupsRuns(t *testing.T) {
	c := NewCampaign(BenchScale)
	ctx := context.Background()
	a, err := c.Run(ctx, benchChainCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RunScenario(ctx, Chain(2),
		WithBandwidth(Rate2Mbps), WithTransport(TransportSpec{Protocol: Vegas, Alpha: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal configs built through different entry points were not served from the cache")
	}
}

// TestCampaignArenaReuseMatchesFreshBuilds runs the same config grid
// through two campaigns — one drawing pooled arenas, one forced to build
// every world from scratch — with several workers each, and requires the
// results to agree pairwise. Under -race this also checks that concurrent
// workers never share an arena.
func TestCampaignArenaReuseMatchesFreshBuilds(t *testing.T) {
	var cfgs []Config
	for hops := 2; hops <= 4; hops++ {
		for seed := int64(1); seed <= 4; seed++ {
			cfg := benchChainCfg(hops)
			cfg.Seed = seed
			cfgs = append(cfgs, cfg)
		}
	}
	ctx := context.Background()
	reused := NewCampaign(BenchScale)
	reused.Workers = 4
	got, err := reused.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCampaign(BenchScale)
	fresh.Workers = 4
	fresh.DisableArenaReuse = true
	want, err := fresh.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Errorf("cfg %d (seed=%d): arena-pooled result differs from fresh build",
				i, cfgs[i].Seed)
		}
	}
}

func TestConfigKeyFollowsScenarioValues(t *testing.T) {
	a, b := benchChainCfg(4), benchChainCfg(4)
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("independently built equal scenarios keyed differently")
	}
	b.Scenario.Flows[0].Start = time.Second
	if a.CacheKey() == b.CacheKey() {
		t.Fatal("configs with different flow start times share a cache key")
	}
	c := benchChainCfg(4)
	c.Observer = ObserverFuncs{} // must not enter the key
	if a.CacheKey() != c.CacheKey() {
		t.Fatal("attaching an observer changed the cache key")
	}
}

// TestConfigCacheKeyIsCanonicalJSON pins the public contract behind the
// persistent store: the key is the config's deterministic JSON encoding
// (what older campaign versions computed internally), so on-disk
// addresses stay stable across binaries.
func TestConfigCacheKeyIsCanonicalJSON(t *testing.T) {
	cfg := benchChainCfg(3)
	want, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.CacheKey(); got != string(want) {
		t.Fatalf("CacheKey = %s, want the canonical JSON %s", got, want)
	}
	if got := configKey(cfg); got != cfg.CacheKey() {
		t.Fatal("campaign cache key diverged from Config.CacheKey")
	}
}

// TestCampaignParallelReturnsFirstErrorWithoutDraining pins the
// short-circuit contract: one failing work item must surface immediately
// even while a sibling is still running.
func TestCampaignParallelReturnsFirstErrorWithoutDraining(t *testing.T) {
	c := NewCampaign(BenchScale)
	c.Workers = 2
	c.init()
	boom := errors.New("boom")
	hang := make(chan struct{})
	defer close(hang) // let the straggler goroutine exit after the test
	done := make(chan error, 1)
	go func() {
		_, err := c.runParallel(2, func(i int, _ *atomic.Bool) (*Result, error) {
			if i == 0 {
				return nil, boom
			}
			<-hang // a slow sibling that never finishes on its own
			return nil, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runParallel waited for the hung sibling instead of short-circuiting")
	}
}

// TestCampaignSkipsQueuedWorkAfterError asserts that work queued behind a
// failure never executes: once the abort flag is up, slot acquisition
// bails out before running.
func TestCampaignSkipsQueuedWorkAfterError(t *testing.T) {
	c := NewCampaign(BenchScale)
	c.Workers = 1
	c.init()
	ctx := context.Background()
	boom := errors.New("boom")
	release := make(chan struct{})
	var ran atomic.Int32
	var stragglers atomic.Int32
	_, err := c.runParallel(4, func(i int, abort *atomic.Bool) (*Result, error) {
		if i == 0 {
			return nil, boom
		}
		defer stragglers.Add(1)
		<-release // held until the error has already been returned
		return c.withSlot(ctx, abort, func() (*Result, error) {
			ran.Add(1)
			return &Result{}, nil
		})
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	close(release)
	for i := 0; i < 100 && stragglers.Load() < 3; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if stragglers.Load() != 3 {
		t.Fatalf("only %d/3 stragglers finished", stragglers.Load())
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d queued work items ran after the failure, want 0", n)
	}
}

// TestRunCancelledMidRunReturnsCtxErr pins the cancellation contract of
// the core loop: a context cancelled while the simulation is executing
// surfaces ctx.Err() promptly instead of running to completion.
func TestRunCancelledMidRunReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	// A budget far beyond what 30 ms of wall time can simulate.
	_, err := Run(ctx, Chain(8),
		WithTransport(TransportSpec{Protocol: Vegas}),
		WithSeed(1),
		WithPackets(10_000_000, 1_000_000),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(started); waited > 5*time.Second {
		t.Errorf("cancellation took %v to surface, want prompt", waited)
	}
}

// TestRunPreCancelledContext asserts an already-cancelled context never
// starts simulating.
func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Chain(2), WithTransport(TransportSpec{Protocol: Vegas}), WithPackets(1100, 100))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCampaignCancellationDoesNotPoisonCache cancels a campaign run
// mid-flight and then re-runs the same config (same cache key) with a live
// context: the cancelled attempt must not have left a poisoned
// single-flight entry behind.
func TestCampaignCancellationDoesNotPoisonCache(t *testing.T) {
	// A budget big enough that 10 ms of wall time cannot finish it, small
	// enough that the verification rerun stays quick.
	c := NewCampaign(Scale{Name: "mid", TotalPackets: 22000, BatchPackets: 2000, Seed: 1})
	cfg := benchChainCfg(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	res, err := c.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("rerun after cancellation failed: %v", err)
	}
	if res == nil || res.Delivered < 22000 {
		t.Errorf("rerun after cancellation returned %+v, want a complete result", res)
	}
}

// TestCampaignRunAllCancelled asserts a cancelled context fails a sweep
// with ctx.Err() and leaves the campaign usable.
func TestCampaignRunAllCancelled(t *testing.T) {
	c := NewCampaign(BenchScale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{benchChainCfg(2), benchChainCfg(3)}
	if _, err := c.RunAll(ctx, cfgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	results, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("campaign unusable after a cancelled sweep: %v", err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("post-cancel sweep returned %v", results)
	}
}

func TestCampaignSweepAggregatesSeeds(t *testing.T) {
	c := NewCampaign(BenchScale)
	cells, err := c.Sweep(context.Background(), Sweep{
		Scenarios:  []*Scenario{Chain(2)},
		Transports: []TransportSpec{{Protocol: Vegas, Alpha: 2}, {Protocol: NewReno}},
		Rates:      []Rate{Rate2Mbps},
		Seeds:      []int64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2 (one per transport)", len(cells))
	}
	for _, cell := range cells {
		if len(cell.Runs) != 3 {
			t.Fatalf("%s: runs = %d, want 3 replicates", cell.Transport.Label(), len(cell.Runs))
		}
		if cell.Goodput.N != 3 {
			t.Errorf("%s: goodput estimate over %d replicates, want 3", cell.Transport.Label(), cell.Goodput.N)
		}
		if cell.Goodput.Mean <= 0 {
			t.Errorf("%s: zero goodput", cell.Transport.Label())
		}
		for i, r := range cell.Runs {
			if r.Config.Seed != cell.Seeds[i] {
				t.Errorf("run %d has seed %d, want %d", i, r.Config.Seed, cell.Seeds[i])
			}
			if r.Config.Transport.Protocol != cell.Transport.Protocol {
				t.Errorf("run %d transport %v, want %v", i, r.Config.Transport.Protocol, cell.Transport.Protocol)
			}
		}
	}
}

func TestCampaignSweepNeedsScenario(t *testing.T) {
	c := NewCampaign(BenchScale)
	if _, err := c.Sweep(context.Background(), Sweep{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestCampaignRejectsObserver(t *testing.T) {
	c := NewCampaign(BenchScale)
	cfg := benchChainCfg(2)
	cfg.Observer = ObserverFuncs{}
	if _, err := c.Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "do not support Config.Observer") {
		t.Fatalf("observer-carrying campaign run returned %v, want a named rejection", err)
	}
}

// storeSweep is the grid the resume tests run: 2 scenarios x 2
// transports x seeds, at a small explicit budget.
func storeSweep(seeds ...int64) Sweep {
	return Sweep{
		Scenarios:  []*Scenario{Chain(2), Chain(3)},
		Transports: []TransportSpec{{Protocol: Vegas, Alpha: 2}, {Protocol: NewReno}},
		Seeds:      seeds,
		Base:       Config{TotalPackets: 550, BatchPackets: 50},
	}
}

// TestCampaignSweepResumesFromStore is the kill-and-resume demo as a
// test: a sweep completed against a store, re-run by a *fresh* campaign
// (fresh process, as far as the store can tell), must execute zero
// simulations; widening the grid executes exactly the new cells.
func TestCampaignSweepResumesFromStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	first := NewCampaign(BenchScale, WithStore(dir))
	cells1, err := first.Sweep(ctx, storeSweep(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Executed(); got != 8 {
		t.Fatalf("first sweep executed %d runs, want 8", got)
	}

	// Restart: a new campaign (empty in-memory cache) over the same dir.
	resumed := NewCampaign(BenchScale, WithStore(dir))
	cells2, err := resumed.Sweep(ctx, storeSweep(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Executed(); got != 0 {
		t.Fatalf("resumed sweep executed %d runs, want 0 (all cells completed)", got)
	}
	for i := range cells1 {
		if cells1[i].Key != cells2[i].Key {
			t.Fatalf("cell %d keyed differently across restarts", i)
		}
		a, _ := json.Marshal(cells1[i].Runs)
		b, _ := json.Marshal(cells2[i].Runs)
		if string(a) != string(b) {
			t.Errorf("cell %d: store-loaded runs differ from the originals", i)
		}
	}

	// Widening the seed axis re-runs only the incomplete remainder.
	widened := NewCampaign(BenchScale, WithStore(dir))
	if _, err := widened.Sweep(ctx, storeSweep(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := widened.Executed(); got != 4 {
		t.Fatalf("widened sweep executed %d runs, want only the 4 seed-3 cells", got)
	}
}

// TestCampaignInterruptedSweepResumes cancels a sweep mid-flight and
// restarts it against the same store: every run that completed before
// the kill must be skipped on resume.
func TestCampaignInterruptedSweepResumes(t *testing.T) {
	dir := t.TempDir()
	sw := storeSweep(1, 2)
	total := int64(sw.GridSize(BenchScale))

	interrupted := NewCampaign(BenchScale, WithWorkers(1), WithStore(dir))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := interrupted.SweepProgress(ctx, sw, func(ev SweepEvent) {
		if ev.Done == 2 {
			cancel() // kill the campaign after the second completed run
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}

	resumed := NewCampaign(BenchScale, WithStore(dir))
	cells, err := resumed.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	// At least the two runs observed complete before the cancel were
	// persisted (an in-flight third may have finished too), so the
	// resumed campaign re-runs strictly less than the full grid and the
	// two sweeps together never exceed grid + in-flight slack.
	if got := resumed.Executed(); got > total-2 {
		t.Fatalf("resumed sweep executed %d of %d runs, want <= %d (completed cells skipped)",
			got, total, total-2)
	}
	for _, cell := range cells {
		if cell.Goodput.Mean <= 0 || len(cell.Runs) != 2 {
			t.Fatalf("resumed cell %s incomplete", cell.Transport.Label())
		}
	}
}

// TestCampaignStoreCorruptEntryReruns ends-to-end the corruption
// contract: mangling one stored file costs exactly one re-run, silently.
func TestCampaignStoreCorruptEntryReruns(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	first := NewCampaign(BenchScale, WithStore(dir))
	if _, err := first.Sweep(ctx, storeSweep(1)); err != nil {
		t.Fatal(err)
	}
	if got := first.Executed(); got != 4 {
		t.Fatalf("seed sweep executed %d, want 4", got)
	}
	var victim string
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("store holds no files after a sweep")
	}
	if err := os.Truncate(victim, 10); err != nil {
		t.Fatal(err)
	}
	resumed := NewCampaign(BenchScale, WithStore(dir))
	if _, err := resumed.Sweep(ctx, storeSweep(1)); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Executed(); got != 1 {
		t.Fatalf("after corrupting one entry the resume executed %d runs, want exactly 1", got)
	}
}

func TestCampaignWithStoreBadDirSurfacesError(t *testing.T) {
	// A file where the store directory should be: Open must fail, and the
	// failure must surface from the campaign's entry points.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(BenchScale, WithStore(filepath.Join(file, "store")))
	if err := c.Ready(); err == nil {
		t.Fatal("Ready with an unopenable store reported no error")
	}
	if _, err := c.Run(context.Background(), benchChainCfg(2)); err == nil {
		t.Fatal("campaign with an unopenable store ran anyway")
	}
	if _, err := c.Sweep(context.Background(), storeSweep(1)); err == nil {
		t.Fatal("sweep with an unopenable store ran anyway")
	}

	good := NewCampaign(BenchScale, WithStore(t.TempDir()))
	if err := good.Ready(); err != nil {
		t.Fatalf("Ready with a usable store: %v", err)
	}
}

func TestCellKeyAddressing(t *testing.T) {
	c := NewCampaign(BenchScale)
	sw := storeSweep(1, 2)
	cells, err := c.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[CellKey]bool{}
	for _, cell := range cells {
		if cell.Key == "" {
			t.Fatal("sweep cell carries no key")
		}
		if seen[cell.Key] {
			t.Fatalf("duplicate cell key %s", cell.Key)
		}
		seen[cell.Key] = true
		// The key is derivable from the cell's legacy positional fields —
		// the two addressing schemes agree.
		if want := NewCellKey(cell.Scenario, cell.Transport, cell.Rate, cell.LinkModel, cell.Faults, cell.Seeds); cell.Key != want {
			t.Fatalf("cell key %s, want %s", cell.Key, want)
		}
		got, ok := FindCell(cells, cell.Key)
		if !ok || got.Goodput != cell.Goodput {
			t.Fatalf("FindCell(%s) did not return the cell", cell.Key.Hash())
		}
		if h := cell.Key.Hash(); len(h) != 64 {
			t.Fatalf("key hash %q is not hex sha256", h)
		}
	}
	// Independently built equal scenarios address the same cell.
	if k := NewCellKey(Chain(2), TransportSpec{Protocol: Vegas, Alpha: 2}, 0, LinkModelSpec{}, nil, []int64{1, 2}); k != cells[0].Key {
		t.Fatalf("independently built key %s, want %s", k, cells[0].Key)
	}
	if _, ok := FindCell(cells, CellKey("nope")); ok {
		t.Fatal("FindCell invented a cell")
	}
}

func TestCampaignOptionsConfigure(t *testing.T) {
	c := NewCampaign(BenchScale, WithWorkers(3), WithoutArenaReuse())
	if c.Workers != 3 || !c.DisableArenaReuse {
		t.Fatalf("options not applied: workers=%d reuse-disabled=%v", c.Workers, c.DisableArenaReuse)
	}
	// The deprecated field forms keep working.
	legacy := NewCampaign(BenchScale)
	legacy.Workers = 2
	legacy.DisableArenaReuse = true
	if _, err := legacy.Run(context.Background(), benchChainCfg(2)); err != nil {
		t.Fatal(err)
	}
	if legacy.Workers != 2 {
		t.Fatal("legacy Workers field overridden by init")
	}
}

// TestOptimalUDPGapProbesPersist runs the paper's pacing search twice —
// second time from a fresh campaign over the same store — and requires
// the repeat to execute zero simulations while agreeing on the gap.
func TestOptimalUDPGapProbesPersist(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	first := NewCampaign(BenchScale, WithStore(dir))
	gap1, err := first.OptimalUDPGap(ctx, 2, Rate2Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed() == 0 {
		t.Fatal("gap search executed no probe runs")
	}
	second := NewCampaign(BenchScale, WithStore(dir))
	gap2, err := second.OptimalUDPGap(ctx, 2, Rate2Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Executed(); got != 0 {
		t.Fatalf("repeated gap search executed %d probes, want 0 (served from the store)", got)
	}
	if gap1 != gap2 {
		t.Fatalf("gap from the store %v differs from the measured %v", gap2, gap1)
	}
}

func TestCampaignHonorsExplicitBudget(t *testing.T) {
	c := NewCampaign(PaperScale) // 110000 packets by default
	res, err := c.RunScenario(context.Background(), Chain(2),
		WithTransport(TransportSpec{Protocol: Vegas}),
		WithPackets(550, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 550 || res.Delivered > 1100 {
		t.Errorf("delivered %d packets, want the explicit 550 budget, not the scale's 110000", res.Delivered)
	}
}
