// Package mac implements the IEEE 802.11 distributed coordination function
// (DCF) as configured in the paper: RTS/CTS handshake ahead of every
// unicast data frame, SIFS/DIFS/EIFS interframe spaces, binary exponential
// backoff with CW in [31, 1023], NAV-based virtual carrier sensing, a short
// retry limit of 7 (RTS) and long retry limit of 4 (DATA), and a 50-packet
// drop-tail interface queue.
//
// Losing a frame after exhausting retries is reported to the routing layer
// through the LinkFailure callback; in a static network this is what
// triggers the paper's "false route failures" (Figure 9).
package mac

import (
	"fmt"
	"time"

	"manetsim/internal/phy"
	"manetsim/internal/pkt"
)

// FrameType enumerates 802.11 frame types used by the DCF exchange.
type FrameType int

// Frame types.
const (
	FrameRTS FrameType = iota + 1
	FrameCTS
	FrameData
	FrameAck
)

var frameNames = map[FrameType]string{
	FrameRTS: "RTS", FrameCTS: "CTS", FrameData: "DATA", FrameAck: "ACK",
}

func (t FrameType) String() string {
	if s, ok := frameNames[t]; ok {
		return s
	}
	return fmt.Sprintf("frame(%d)", int(t))
}

// Frame is one 802.11 MAC frame on the air. Frames are pooled per DCF: the
// transmitter recycles them once the channel reports every receiver's
// signal retired, so receivers must not retain a *Frame beyond RxFrame.
type Frame struct {
	Type     FrameType
	From, To pkt.NodeID
	// Duration is the NAV reservation: how long the medium remains
	// reserved after this frame ends.
	Duration time.Duration
	// Payload is present on data frames only.
	Payload *pkt.Packet

	next *Frame // transmitter's freelist link

	// Pending-response state (set between scheduleResponse and respFire so
	// the SIFS-delayed CTS/ACK needs no closure).
	respMAC     *DCF
	respAir     time.Duration
	respCounter *uint64
}

// Frame sizes in bytes (IEEE 802.11: RTS 20, CTS/ACK 14, data MAC
// header + FCS 28).
const (
	RTSSize      = 20
	CTSSize      = 14
	AckSize      = 14
	DataOverhead = 28
)

// DCF interframe spaces and contention parameters (802.11b DSSS PHY).
const (
	SlotTime = 20 * time.Microsecond
	SIFS     = 10 * time.Microsecond
	DIFS     = SIFS + 2*SlotTime // 50 us

	CWMin = 31
	CWMax = 1023

	// ShortRetryLimit bounds RTS attempts, LongRetryLimit data attempts;
	// exceeding either drops the packet and notifies the routing layer
	// (the paper's 7 and 4).
	ShortRetryLimit = 7
	LongRetryLimit  = 4

	// DefaultQueueCap is the interface queue capacity (paper: "buffer
	// size of 50 packets").
	DefaultQueueCap = 50
)

// maxPropDelay bounds the propagation delay within interference range and
// pads the control-response timeouts.
var maxPropDelay = phy.PropagationDelay(phy.CSRange)

// Timing precomputes frame airtimes for one network configuration (a data
// rate plus the preamble mode it implies). Control frames always go at
// phy.ControlRate.
type Timing struct {
	DataRate phy.Rate
	Preamble time.Duration
	RTSAir   time.Duration
	CTSAir   time.Duration
	AckAir   time.Duration
	EIFS     time.Duration
}

// NewTiming derives the timing set for a data rate.
func NewTiming(dataRate phy.Rate) Timing {
	p := phy.Preamble(dataRate)
	ack := phy.Airtime(AckSize, phy.ControlRate, p)
	return Timing{
		DataRate: dataRate,
		Preamble: p,
		RTSAir:   phy.Airtime(RTSSize, phy.ControlRate, p),
		CTSAir:   phy.Airtime(CTSSize, phy.ControlRate, p),
		AckAir:   ack,
		EIFS:     SIFS + DIFS + ack,
	}
}

// DataAir returns the airtime of a data frame carrying a network-layer
// packet of the given size.
func (t Timing) DataAir(netBytes int) time.Duration {
	return phy.Airtime(netBytes+DataOverhead, t.DataRate, t.Preamble)
}

// ExchangeTime returns the duration of one complete uncontended
// DIFS + RTS/CTS/DATA/ACK exchange for a packet of the given network-layer
// size — the per-hop cost used by the paper's Table 2 derivation.
func (t Timing) ExchangeTime(netBytes int) time.Duration {
	return DIFS + t.RTSAir + SIFS + t.CTSAir + SIFS + t.DataAir(netBytes) + SIFS + t.AckAir
}

// FourHopPropagationDelay computes Table 2 of the paper: the minimal link
// layer delay for a TCP data packet (1460 B payload) to advance four hops
// along a chain with zero queueing.
func FourHopPropagationDelay(dataRate phy.Rate) time.Duration {
	return 4 * NewTiming(dataRate).ExchangeTime(pkt.TCPDataSize)
}

// Counters aggregates per-node MAC statistics. Figure 14's link-layer
// dropping probability is the per-attempt failure rate
// (Retries+RetryDrops)/(RTSSent+DataSent): the paper's values (a few
// percent) describe how often individual transmissions fail, which the
// retry mechanism almost always repairs before TCP notices (Figure 12).
type Counters struct {
	DataSubmitted  uint64 // unicast network packets handed to the MAC
	BcastSubmitted uint64
	QueueDrops     uint64 // interface queue overflow
	RetryDrops     uint64 // retry limit exhaustion
	RTSSent        uint64
	CTSSent        uint64
	DataSent       uint64 // unicast data frames (incl. MAC retransmissions)
	AckSent        uint64
	BcastSent      uint64
	Retries        uint64 // RTS+data retry events
	Delivered      uint64 // unicast data frames delivered to the upper layer
	DupsSuppressed uint64 // MAC-level duplicates filtered at the receiver
}

// DropProbability returns the per-attempt link-layer failure probability
// at this node.
func (c Counters) DropProbability() float64 {
	attempts := c.RTSSent + c.DataSent
	if attempts == 0 {
		return 0
	}
	return float64(c.Retries+c.RetryDrops) / float64(attempts)
}
