// Mobility: one TCP flow across the grid's middle row while the other 19
// nodes roam by random waypoint. Compares a static network against 5 and
// 20 m/s movement, showing goodput loss and the split between genuine
// route breaks (the hop moved away) and the paper's false route failures
// (contention on a healthy link).
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	fmt.Println("TCP Vegas, grid field (1200x400 m), flow 7->13, random waypoint relays:")
	for _, maxSpeed := range []float64{0, 5, 20} {
		scn := manetsim.Grid().WithFlows(manetsim.Flow{Src: 7, Dst: 13})
		if maxSpeed > 0 {
			scn.WithMobility(manetsim.MobilitySpec{
				Kind:     manetsim.MobilityRandomWaypoint,
				MaxSpeed: maxSpeed,
				Pause:    2 * time.Second,
				// Endpoints stay put so the path length is controlled and
				// only route churn varies with speed.
				PinFlowEndpoints: true,
			})
		}
		res, err := manetsim.Run(context.Background(), scn,
			manetsim.WithBandwidth(manetsim.Rate2Mbps),
			manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}),
			manetsim.WithSeed(1),
			// Reduced scale for a fast demo.
			manetsim.WithPackets(demoPackets(11000), 0),
			manetsim.WithMaxSimTime(2*time.Hour),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  vmax %4.1f m/s: goodput %6.1f kbit/s (±%.1f), rtx %.4f/pkt, route failures %d true / %d false\n",
			maxSpeed, res.AggGoodput.Mean/1e3, res.AggGoodput.HalfCI/1e3,
			res.Rtx.Mean, res.TrueRouteFailures, res.FalseRouteFailures)
	}
	fmt.Println("(at 0 m/s every route failure is false — the paper's pathology;")
	fmt.Println(" with movement AODV's repair machinery faces genuine breaks too)")
}
