package tcp

import (
	"math/rand"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
)

// pipe is a test harness connecting a sender and a sink through a
// single-bottleneck path: data packets pass a FIFO queue with a fixed
// per-packet service time and then a one-way propagation delay; ACKs
// return over an uncongested path. This produces the RTT inflation Vegas'
// congestion detection needs, without involving the MAC stack.
type pipe struct {
	sched   *sim.Scheduler
	uids    pkt.UIDSource
	delay   time.Duration // one-way propagation each way
	service time.Duration // bottleneck per-packet service time
	qcap    int           // bottleneck queue capacity (0 = unbounded)

	dropData func(h *pkt.TCPHeader) bool // programmable loss on the data path
	dropAck  func(h *pkt.TCPHeader) bool

	lastDeparture sim.Time
	sender        Sender
	sink          *Sink

	dataDelivered int
	dataDropped   int
}

func newPipe(seed int64, delay, service time.Duration, qcap int) *pipe {
	return &pipe{
		sched:   sim.NewScheduler(seed),
		delay:   delay,
		service: service,
		qcap:    qcap,
	}
}

// dataOut is the sender's Output.
func (pp *pipe) dataOut(p *pkt.Packet) {
	if pp.dropData != nil && pp.dropData(p.TCP) {
		pp.dataDropped++
		return
	}
	now := pp.sched.Now()
	start := pp.lastDeparture
	if start < now {
		start = now
	}
	if pp.qcap > 0 {
		queued := int((start - now) / pp.service)
		if queued >= pp.qcap {
			pp.dataDropped++
			return
		}
	}
	departure := start + pp.service
	pp.lastDeparture = departure
	pp.sched.At(departure+pp.delay, func() {
		pp.dataDelivered++
		pp.sink.HandleData(p)
	})
}

// ackOut is the sink's Output.
func (pp *pipe) ackOut(p *pkt.Packet) {
	if pp.dropAck != nil && pp.dropAck(p.TCP) {
		return
	}
	pp.sched.After(pp.delay, func() { pp.sender.HandleAck(p) })
}

// connect wires an engine with the given strategy and a per-packet-ACK
// sink into the pipe.
func (pp *pipe) connect(cfg Config, cc CongestionControl) *Engine {
	e := NewEngine(pp.sched, cfg, 1, 0, 1, &pp.uids, pp.dataOut, cc)
	pp.sender = e
	pp.sink = NewSink(pp.sched, 1, 1, 0, AckEveryPacket, &pp.uids, pp.ackOut)
	return e
}

// connectNewReno wires a NewReno sender and a per-packet-ACK sink.
func (pp *pipe) connectNewReno(cfg Config) *Engine {
	return pp.connect(cfg, NewNewRenoCC())
}

// vegasRig exposes the Vegas strategy next to its engine for white-box
// tests.
type vegasRig struct {
	*Engine
	cc *VegasCC
}

// connectVegas wires a Vegas sender and a per-packet-ACK sink.
func (pp *pipe) connectVegas(cfg Config) *vegasRig {
	cc := NewVegasCC()
	return &vegasRig{Engine: pp.connect(cfg, cc), cc: cc}
}

// connectReno wires a classic Reno sender and a per-packet-ACK sink.
func (pp *pipe) connectReno(cfg Config) *Engine {
	return pp.connect(cfg, NewRenoCC1990())
}

// connectTahoe wires a Tahoe sender and a per-packet-ACK sink.
func (pp *pipe) connectTahoe(cfg Config) *Engine {
	return pp.connect(cfg, NewTahoeCC())
}

// run starts the transfer and runs for d of simulated time.
func (pp *pipe) run(d time.Duration) {
	pp.sched.At(0, func() { pp.sender.Start() })
	pp.sched.RunUntil(d)
}

// newDelayHist builds a small deterministic histogram for sink tests.
func newDelayHist() *stats.DurationHistogram {
	rng := rand.New(rand.NewSource(1))
	return stats.NewDurationHistogram(128, rng.Int63n)
}
