package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manetsim"
)

// runServe starts the campaign-as-a-service HTTP mode: one shared
// Campaign (worker-pooled arenas, in-memory cache, optional persistent
// result store) behind the submit/status/results/events API.
//
// The server shuts down gracefully on SIGINT/SIGTERM: new submissions
// are refused, in-flight sweeps get -drain to finish (with a -store
// every completed run is already durable, so even an overrun drain
// loses nothing on restart), and the process exits non-zero if the
// drain deadline forced an abort.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8971", "listen address")
		storeDir  = fs.String("store", "", "persistent result store directory; empty = in-memory cache only (sweeps are not resumable across restarts)")
		workers   = fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		scaleName = fs.String("scale", "quick", "default per-run measurement budget: paper, quick or bench")
		drain     = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight sweeps on SIGINT/SIGTERM")
	)
	fs.Parse(args)

	var scale manetsim.Scale
	switch strings.ToLower(*scaleName) {
	case "paper":
		scale = manetsim.PaperScale
	case "quick":
		scale = manetsim.QuickScale
	case "bench":
		scale = manetsim.BenchScale
	default:
		fatalf("unknown scale %q (paper, quick, bench)", *scaleName)
	}

	var opts []manetsim.CampaignOption
	if *workers > 0 {
		opts = append(opts, manetsim.WithWorkers(*workers))
	}
	if *storeDir != "" {
		opts = append(opts, manetsim.WithStore(*storeDir))
	}
	campaign := manetsim.NewCampaign(scale, opts...)
	if err := campaign.Ready(); err != nil {
		fatalf("serve: %v", err)
	}
	server := manetsim.NewServer(campaign)

	if *storeDir != "" {
		log.Printf("manetsim serve: result store at %s (schema v%d)", *storeDir, manetsim.ResultSchemaVersion)
	} else {
		log.Printf("manetsim serve: no -store directory; results are in-memory only")
	}
	log.Printf("manetsim serve: listening on http://%s/api/v1/ (scale %s)", *addr, scale.Name)

	srv := &http.Server{
		Addr:    *addr,
		Handler: server,
		// Event streams outlive WriteTimeout by clearing their own write
		// deadline; every other response is small and fast.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
	}

	log.Printf("manetsim serve: shutting down (draining in-flight sweeps for up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the sweep jobs first so event streams reach their terminal
	// events; then the HTTP server's own shutdown finds idle connections.
	drainErr := server.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("manetsim serve: closing listener: %v", err)
	}
	if drainErr != nil {
		log.Printf("manetsim serve: drain deadline exceeded; %s", abortNote(*storeDir))
		os.Exit(1)
	}
	log.Printf("manetsim serve: all sweeps drained; bye")
}

func abortNote(storeDir string) string {
	if storeDir != "" {
		return "aborted sweeps resume from the store's completed runs on restart"
	}
	return "aborted sweeps are lost (no -store configured)"
}
