package sim

// Timer is a restartable one-shot timer bound to a scheduler, mirroring the
// timers protocol stacks need (retransmission timers, ACK-regeneration
// timers, route expiry). The zero value is unusable; create with NewTimer.
//
// Unlike scheduling raw events, a Timer guarantees at most one pending
// expiry at a time: rescheduling implicitly cancels the previous one.
type Timer struct {
	sched *Scheduler
	fn    func()
	ev    *Event
}

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	if sched == nil {
		panic("sim: NewTimer with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{sched: sched, fn: fn}
}

// Reset (re)schedules the timer to fire d from now, cancelling any pending
// expiry.
func (t *Timer) Reset(d Time) {
	t.Stop()
	ev := t.sched.After(d, func() {
		t.ev = nil
		t.fn()
	})
	t.ev = ev
}

// ResetAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	ev := t.sched.At(at, func() {
		t.ev = nil
		t.fn()
	})
	t.ev = ev
}

// Stop cancels a pending expiry. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sched.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether an expiry is scheduled.
func (t *Timer) Pending() bool { return t.ev != nil }

// Deadline returns the time of the pending expiry; it is only meaningful
// when Pending reports true.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.At()
}
