package stats

import (
	"math"
	"testing"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBatchMeansKnownValues(t *testing.T) {
	// 10 batches as in the paper's methodology; hand-computed CI.
	batches := []float64{10, 12, 11, 9, 10, 11, 12, 10, 9, 11}
	e := BatchMeans(batches)
	if !almostEqual(e.Mean, 10.5, 1e-9) {
		t.Errorf("mean = %v, want 10.5", e.Mean)
	}
	// variance = 1.1667, half = 2.262*sqrt(1.1667/10) = 0.7727
	if !almostEqual(e.HalfCI, 0.77268, 1e-3) {
		t.Errorf("half CI = %v, want ~0.7727", e.HalfCI)
	}
	if e.N != 10 {
		t.Errorf("N = %d, want 10", e.N)
	}
}

func TestBatchMeansSingleBatch(t *testing.T) {
	e := BatchMeans([]float64{42})
	if e.Mean != 42 || e.HalfCI != 0 {
		t.Errorf("single batch = %+v, want mean 42 half 0", e)
	}
}

func TestBatchMeansConstantBatches(t *testing.T) {
	e := BatchMeans([]float64{5, 5, 5, 5})
	if e.Mean != 5 || e.HalfCI != 0 {
		t.Errorf("constant batches = %+v, want zero-width CI", e)
	}
}

func TestBatchMeansEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty BatchMeans did not panic")
		}
	}()
	BatchMeans(nil)
}

func TestEstimateBoundsAndRelativeWidth(t *testing.T) {
	e := Estimate{Mean: 10, HalfCI: 2}
	if e.Lo() != 8 || e.Hi() != 12 {
		t.Errorf("bounds = [%v,%v], want [8,12]", e.Lo(), e.Hi())
	}
	if !almostEqual(e.RelativeWidth(), 0.2, 1e-12) {
		t.Errorf("relative width = %v, want 0.2", e.RelativeWidth())
	}
	zero := Estimate{}
	if zero.RelativeWidth() != 0 {
		t.Errorf("zero estimate relative width = %v, want 0", zero.RelativeWidth())
	}
	if !math.IsInf(Estimate{HalfCI: 1}.RelativeWidth(), 1) {
		t.Error("zero mean nonzero CI should have infinite relative width")
	}
}

func TestJainIndexEqualFlows(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal flows index = %v, want 1", got)
	}
}

func TestJainIndexSingleWinner(t *testing.T) {
	// One flow takes everything among n: index = 1/n.
	xs := []float64{0, 0, 0, 0, 0, 9}
	if got := JainIndex(xs); !almostEqual(got, 1.0/6, 1e-12) {
		t.Errorf("starved flows index = %v, want 1/6", got)
	}
}

func TestJainIndexScaleInvariance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if !almostEqual(JainIndex(a), JainIndex(b), 1e-12) {
		t.Errorf("Jain index not scale invariant: %v vs %v", JainIndex(a), JainIndex(b))
	}
}

func TestJainIndexEdgeCases(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Error("empty index should be 0")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Error("all-zero index should be 0")
	}
	if got := JainIndex([]float64{7}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("single flow = %v, want 1", got)
	}
}

func TestStudentTTable(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{1, 12.706}, {9, 2.262}, {29, 2.045}, {30, 2.042}, {1000, 1.96}}
	for _, c := range cases {
		if got := StudentT975(c.df); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("t(df=%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsNaN(StudentT975(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 2)                   // 2 for 10ms
	w.Set(10*time.Millisecond, 4) // 4 for 10ms
	got := w.AverageAt(20 * time.Millisecond)
	if !almostEqual(got, 3, 1e-9) {
		t.Errorf("average = %v, want 3", got)
	}
}

func TestTimeWeightedIgnoresBeforeFirstSet(t *testing.T) {
	var w TimeWeighted
	if got := w.AverageAt(time.Second); got != 0 {
		t.Errorf("average with no samples = %v, want 0", got)
	}
	w.Set(time.Second, 5)
	if got := w.AverageAt(time.Second); got != 5 {
		t.Errorf("instantaneous average = %v, want current value 5", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100)
	w.Set(10*time.Millisecond, 2)
	w.Reset(10 * time.Millisecond)
	w.Set(20*time.Millisecond, 4)
	got := w.AverageAt(30 * time.Millisecond)
	if !almostEqual(got, 3, 1e-9) {
		t.Errorf("post-reset average = %v, want 3 (history cleared)", got)
	}
}

func TestTimeWeightedOutOfOrderSetIgnored(t *testing.T) {
	var w TimeWeighted
	w.Set(10*time.Millisecond, 2)
	w.Set(10*time.Millisecond, 6) // same instant: replaces value, no span
	got := w.AverageAt(20 * time.Millisecond)
	if !almostEqual(got, 6, 1e-9) {
		t.Errorf("average = %v, want 6", got)
	}
}

func TestCounterMoments(t *testing.T) {
	var c Counter
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		c.Add(x)
	}
	if c.N() != 8 {
		t.Errorf("N = %d, want 8", c.N())
	}
	if !almostEqual(c.Mean(), 5, 1e-9) {
		t.Errorf("mean = %v, want 5", c.Mean())
	}
	if !almostEqual(c.Variance(), 32.0/7, 1e-9) {
		t.Errorf("variance = %v, want %v", c.Variance(), 32.0/7)
	}
	if c.Min() != 2 || c.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", c.Min(), c.Max())
	}
}

func TestCounterZeroValue(t *testing.T) {
	var c Counter
	if c.Mean() != 0 || c.Variance() != 0 || c.N() != 0 {
		t.Error("zero counter should report zeros")
	}
	c.Add(3)
	if c.Variance() != 0 {
		t.Error("variance with one sample should be 0")
	}
}
