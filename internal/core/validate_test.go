package core

import (
	"strings"
	"testing"
	"time"
)

// wantError runs the config and asserts the error mentions every fragment,
// so each validation path keeps a distinct, actionable message.
func wantError(t *testing.T, cfg Config, fragments ...string) {
	t.Helper()
	_, err := Run(cfg)
	if err == nil {
		t.Fatalf("config accepted, want error mentioning %q", fragments)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("error %q does not mention %q", err, f)
		}
	}
}

func validChain() Config {
	return Config{
		Scenario:     Chain(2),
		Transport:    TransportSpec{Protocol: ProtoVegas},
		TotalPackets: 550,
		BatchPackets: 50,
	}
}

func TestValidateNilScenario(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = nil
	wantError(t, cfg, "Config.Scenario is nil")
}

func TestValidateEmptyScenario(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = NewScenario("empty")
	wantError(t, cfg, "no nodes", "AddNode")
}

func TestValidateScenarioWithoutFlows(t *testing.T) {
	cfg := validChain()
	scn := NewScenario("flowless")
	scn.AddNode(0, 0)
	scn.AddNode(200, 0)
	cfg.Scenario = scn
	wantError(t, cfg, "no flows", "AddFlow")
}

func TestValidateFlowReferencesNonexistentNode(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = Chain(2).WithFlows(Flow{Src: 0, Dst: 99})
	wantError(t, cfg, "references node", "3 nodes", "IDs 0..2")
}

func TestValidateSelfFlow(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = Chain(2).WithFlows(Flow{Src: 1, Dst: 1})
	wantError(t, cfg, "to itself")
}

func TestValidateNegativeFlowStart(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = Chain(2).WithFlows(Flow{Src: 0, Dst: 2, Start: -time.Second})
	wantError(t, cfg, "negative start time")
}

func TestValidatePacedUDPWithoutGap(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: ProtoPacedUDP}
	wantError(t, cfg, "paced UDP needs UDPGap > 0")
}

func TestValidatePerFlowPacedUDPWithoutGap(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = Chain(2).WithFlows(Flow{
		Src: 0, Dst: 2, Transport: TransportSpec{Protocol: ProtoPacedUDP},
	})
	wantError(t, cfg, "flow 0", "paced UDP needs UDPGap > 0")
}

func TestValidateNegativeAlpha(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: ProtoVegas, Alpha: -1}
	wantError(t, cfg, "negative Vegas Alpha -1")
}

func TestValidateNegativeMaxWindow(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: ProtoNewReno, MaxWindow: -3}
	wantError(t, cfg, "negative MaxWindow -3")
}

func TestValidateNegativeUDPGap(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: ProtoPacedUDP, UDPGap: -time.Millisecond}
	wantError(t, cfg, "negative UDPGap")
}

func TestValidateUnsetProtocol(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{}
	wantError(t, cfg, "no transport protocol set")
}

func TestValidateUnknownProtocol(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: Protocol(42)}
	wantError(t, cfg, "unknown protocol 42")
}

func TestValidateExclusiveAckPolicies(t *testing.T) {
	cfg := validChain()
	cfg.Transport = TransportSpec{Protocol: ProtoNewReno, AckThinning: true, DelayedAck: true}
	wantError(t, cfg, "AckThinning and DelayedAck are mutually exclusive")
}

func TestValidateNegativeBudget(t *testing.T) {
	cfg := validChain()
	cfg.TotalPackets = -1
	wantError(t, cfg, "negative measurement budget")
}

func TestValidateRandomGenerator(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = RandomField(1, 1000, 1000, 2)
	wantError(t, cfg, "at least 2 nodes")

	cfg.Scenario = RandomField(10, 0, 1000, 2)
	wantError(t, cfg, "positive field")

	cfg.Scenario = RandomField(10, 1000, 1000, 0)
	wantError(t, cfg, "FlowCount >= 1")

	cfg.Scenario = &Scenario{Generator: &GeneratorSpec{Kind: "hexlattice", Nodes: 10, Width: 1, Height: 1, FlowCount: 1}}
	wantError(t, cfg, `unknown scenario generator kind "hexlattice"`)
}

// TestValidateGeneratorFlowAgainstGeneratorNodes pins that explicit flows
// over a generator scenario are checked against the generated node count.
func TestValidateGeneratorFlowAgainstGeneratorNodes(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = RandomField(10, 1000, 1000, 2).WithFlows(Flow{Src: 0, Dst: 15})
	wantError(t, cfg, "references node", "10 nodes")
}

func TestValidatePerFlowOptionsWithoutProtocol(t *testing.T) {
	cfg := validChain()
	cfg.Scenario = Chain(2).WithFlows(Flow{
		Src: 0, Dst: 2, Transport: TransportSpec{AckThinning: true},
	})
	wantError(t, cfg, "flow 0 sets transport options without a Protocol")
}
