package manetsim_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"manetsim"
)

// serveSweep is the small grid the HTTP round-trip tests submit: 2
// transports x 2 seeds on a 2-hop chain at a tiny explicit budget.
func serveSweep() manetsim.Sweep {
	return manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(2)},
		Transports: []manetsim.TransportSpec{{Name: "vegas"}, {Name: "newreno"}},
		Seeds:      []int64{1, 2},
		Base:       manetsim.Config{TotalPackets: 550, BatchPackets: 50},
	}
}

func postSweep(t *testing.T, ts *httptest.Server, sw manetsim.Sweep) string {
	t.Helper()
	body, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Total int    `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != "running" {
		t.Fatalf("submit response %+v", st)
	}
	if want := sw.GridSize(manetsim.BenchScale); st.Total != want {
		t.Fatalf("submit total = %d, want %d", st.Total, want)
	}
	return st.ID
}

// TestServeSweepEndToEnd submits a sweep over HTTP, consumes the
// streamed NDJSON progress until the terminal event, fetches the
// results, and requires them to match a direct Campaign.Sweep of the
// same grid byte for byte.
func TestServeSweepEndToEnd(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithWorkers(2))
	ts := httptest.NewServer(manetsim.NewServer(campaign))
	defer ts.Close()

	sw := serveSweep()
	id := postSweep(t, ts, sw)
	total := sw.GridSize(manetsim.BenchScale)

	// The events stream must deliver one "run" event per grid run and a
	// single terminal "done" — and it blocks until the job ends, so a
	// plain sequential read is the synchronization.
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var runs, terminals int
	seenKeys := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type       string  `json:"type"`
			Key        string  `json:"key"`
			KeyHash    string  `json:"keyHash"`
			Seed       int64   `json:"seed"`
			Done       int     `json:"done"`
			Total      int     `json:"total"`
			GoodputBps float64 `json:"goodputBps"`
			Cells      int     `json:"cells"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "run":
			runs++
			if ev.Total != total || ev.Done < 1 || ev.Done > total {
				t.Errorf("run event counts %d/%d", ev.Done, ev.Total)
			}
			if ev.Key == "" || len(ev.KeyHash) != 64 {
				t.Errorf("run event key %q hash %q", ev.Key, ev.KeyHash)
			}
			if ev.GoodputBps <= 0 {
				t.Errorf("run event goodput %v", ev.GoodputBps)
			}
			seenKeys[ev.Key] = true
		case "done":
			terminals++
			if ev.Done != total || ev.Cells != 2 {
				t.Errorf("done event %+v", ev)
			}
		default:
			t.Errorf("unexpected event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if runs != total || terminals != 1 {
		t.Fatalf("stream carried %d run + %d terminal events, want %d + 1", runs, terminals, total)
	}
	if len(seenKeys) != 2 {
		t.Fatalf("stream named %d distinct cells, want 2", len(seenKeys))
	}

	// Status has converged.
	var st struct {
		State string `json:"state"`
		Done  int    `json:"done"`
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id, http.StatusOK, &st)
	if st.State != "done" || st.Done != total {
		t.Fatalf("status after stream end: %+v", st)
	}

	// Results must match a direct Sweep of the same grid on a fresh
	// campaign, byte for byte.
	var got struct {
		State string          `json:"state"`
		Cells json.RawMessage `json:"cells"`
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id+"/results", http.StatusOK, &got)
	if got.State != "done" {
		t.Fatalf("results state %q", got.State)
	}
	direct := manetsim.NewCampaign(manetsim.BenchScale)
	cells, err := direct.Sweep(t.Context(), serveSweep())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	var gotNorm, wantNorm bytes.Buffer
	if err := json.Compact(&gotNorm, got.Cells); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantNorm, want); err != nil {
		t.Fatal(err)
	}
	if gotNorm.String() != wantNorm.String() {
		t.Error("served results differ from a direct Campaign.Sweep of the same grid")
	}

	// A late consumer replays the identical stream.
	resp2, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replayed := 0
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		replayed++
	}
	if replayed != total+1 {
		t.Fatalf("replay carried %d events, want %d", replayed, total+1)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeResultsWhileRunningAndListing(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithWorkers(1))
	ts := httptest.NewServer(manetsim.NewServer(campaign))
	defer ts.Close()
	id := postSweep(t, ts, serveSweep())

	// Immediately after submit the job is either still running (202 on
	// results) or already done (200); both are legal, nothing else is.
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("results while running = %d, want 202 or 200", resp.StatusCode)
	}

	var jobs []struct {
		ID string `json:"id"`
	}
	getJSON(t, ts, "/api/v1/sweeps", http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("listing = %+v, want the one submitted job", jobs)
	}

	// Drain the job so the test server shuts down cleanly.
	waitForState(t, ts, id, "done", 2*time.Minute)
}

func waitForState(t *testing.T, ts *httptest.Server, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st struct {
			State string `json:"state"`
		}
		getJSON(t, ts, "/api/v1/sweeps/"+id, http.StatusOK, &st)
		if st.State == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
}

func TestServeRejectsBadSubmissions(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale)
	ts := httptest.NewServer(manetsim.NewServer(campaign))
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("garbage body = %d, want 400", code)
	}
	if code := post("{}"); code != http.StatusBadRequest {
		t.Errorf("empty sweep = %d, want 400", code)
	}
	if code := post(`{"Scenarios":[{"Name":"empty"}]}`); code != http.StatusBadRequest {
		t.Errorf("invalid scenario = %d, want 400", code)
	}
	if code := post(`{"Bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
}

func TestServeUnknownJobIs404(t *testing.T) {
	ts := httptest.NewServer(manetsim.NewServer(manetsim.NewCampaign(manetsim.BenchScale)))
	defer ts.Close()
	for _, path := range []string{
		"/api/v1/sweeps/nope",
		"/api/v1/sweeps/nope/results",
		"/api/v1/sweeps/nope/events",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServeFailedSweepSurfacesError(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale)
	ts := httptest.NewServer(manetsim.NewServer(campaign))
	defer ts.Close()

	// Structurally valid, but the transport name resolves to nothing, so
	// the sweep fails at run time: the job must land in "failed" with the
	// error on status, results and the event stream.
	sw := serveSweep()
	sw.Transports = []manetsim.TransportSpec{{Name: "no-such-transport"}}
	id := postSweep(t, ts, sw)
	waitForState(t, ts, id, "failed", time.Minute)

	var st struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id, http.StatusOK, &st)
	if st.Error == "" || !strings.Contains(st.Error, "no-such-transport") {
		t.Fatalf("failed status carries error %q", st.Error)
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id+"/results", http.StatusInternalServerError, nil)

	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	last := ""
	for sc.Scan() {
		last = sc.Text()
	}
	if !strings.Contains(last, `"type":"error"`) {
		t.Fatalf("terminal event %q, want an error event", last)
	}
}

func TestServeHealthAndTransports(t *testing.T) {
	ts := httptest.NewServer(manetsim.NewServer(manetsim.NewCampaign(manetsim.BenchScale)))
	defer ts.Close()
	getJSON(t, ts, "/api/v1/healthz", http.StatusOK, nil)
	var infos []manetsim.TransportInfo
	getJSON(t, ts, "/api/v1/transports", http.StatusOK, &infos)
	if len(infos) < 7 {
		t.Fatalf("transports listing carried %d entries, want the full registry", len(infos))
	}
}

// TestServeSharesStoreAcrossRestart is the service-level resume story: a
// second server over a fresh campaign pointed at the same store
// directory must complete an identical sweep without executing a single
// simulation.
func TestServeSharesStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	first := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithStore(dir))
	ts1 := httptest.NewServer(manetsim.NewServer(first))
	id := postSweep(t, ts1, serveSweep())
	waitForState(t, ts1, id, "done", 2*time.Minute)
	ts1.Close()
	total := int64(serveSweep().GridSize(manetsim.BenchScale))
	if got := first.Executed(); got != total {
		t.Fatalf("first server executed %d runs, want %d", got, total)
	}

	second := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithStore(dir))
	ts2 := httptest.NewServer(manetsim.NewServer(second))
	defer ts2.Close()
	id2 := postSweep(t, ts2, serveSweep())
	waitForState(t, ts2, id2, "done", 2*time.Minute)
	if got := second.Executed(); got != 0 {
		t.Fatalf("restarted server executed %d runs, want 0 (all served from the store)", got)
	}
	var got struct {
		Cells []manetsim.Cell `json:"cells"`
	}
	getJSON(t, ts2, "/api/v1/sweeps/"+id2+"/results", http.StatusOK, &got)
	if len(got.Cells) != 2 {
		t.Fatalf("resumed results carried %d cells, want 2", len(got.Cells))
	}
	for _, cell := range got.Cells {
		if cell.Goodput.Mean <= 0 {
			t.Errorf("cell %s: zero goodput from the store", cell.Transport.Label())
		}
		if _, ok := manetsim.FindCell(got.Cells, cell.Key); !ok {
			t.Errorf("cell key %s not addressable via FindCell", cell.Key.Hash())
		}
	}
}

// TestServeOversizedSubmitIs413: a sweep document past the body limit is
// refused with 413, not a generic 400.
func TestServeOversizedSubmitIs413(t *testing.T) {
	ts := httptest.NewServer(manetsim.NewServer(manetsim.NewCampaign(manetsim.BenchScale)))
	defer ts.Close()
	// A structurally valid sweep whose seed list alone crosses 16 MiB.
	var body bytes.Buffer
	body.WriteString(`{"Seeds":[9`)
	body.Write(bytes.Repeat([]byte(",9"), 9<<20))
	body.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", resp.StatusCode)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg.Error, "limit") {
		t.Errorf("413 error %q does not name the limit", msg.Error)
	}
}

// TestServerShutdownDrainsSweeps: a graceful Shutdown waits for in-flight
// sweeps, returns nil, and refuses later submissions with 503.
func TestServerShutdownDrainsSweeps(t *testing.T) {
	campaign := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithWorkers(2))
	server := manetsim.NewServer(campaign)
	ts := httptest.NewServer(server)
	defer ts.Close()
	id := postSweep(t, ts, serveSweep())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}

	// The in-flight sweep ran to completion...
	var st struct {
		State string `json:"state"`
	}
	getJSON(t, ts, "/api/v1/sweeps/"+id, http.StatusOK, &st)
	if st.State != "done" {
		t.Fatalf("drained job state %q, want done", st.State)
	}
	// ...and the server no longer accepts work.
	body, _ := json.Marshal(serveSweep())
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503", resp.StatusCode)
	}
}

// TestServeForcedShutdownLosesNoCompletedRuns is the kill-and-restart
// guarantee: aborting a store-backed server mid-sweep keeps every run
// that completed before the kill, and a restarted server re-runs only
// the remainder.
func TestServeForcedShutdownLosesNoCompletedRuns(t *testing.T) {
	dir := t.TempDir()
	sw := manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(2), manetsim.Chain(3)},
		Transports: []manetsim.TransportSpec{{Name: "vegas"}, {Name: "newreno"}},
		Seeds:      []int64{1, 2, 3, 4, 5, 6, 7, 8},
		// Per-run budget large enough that the kill below lands mid-sweep
		// even on a fast machine.
		Base: manetsim.Config{TotalPackets: 5500, BatchPackets: 500},
	}
	total := int64(sw.GridSize(manetsim.BenchScale))

	first := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithWorkers(1), manetsim.WithStore(dir))
	server := manetsim.NewServer(first)
	ts := httptest.NewServer(server)
	id := postSweep(t, ts, sw)

	// Watch the stream until two runs completed, then kill the server
	// with an already-expired drain deadline (forced abort).
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 2 {
		if strings.Contains(sc.Text(), `"type":"run"`) {
			seen++
		}
	}
	resp.Body.Close()
	if seen < 2 {
		t.Fatal("stream ended before two runs completed")
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := server.Shutdown(expired); err == nil {
		t.Fatal("forced shutdown reported a clean drain")
	}
	ts.Close()
	completed := first.Executed()
	if completed < 2 || completed >= total {
		t.Fatalf("first server completed %d of %d runs; the kill missed mid-sweep", completed, total)
	}

	// Restart over the same store: only the remainder executes, and the
	// resumed sweep still completes every cell.
	second := manetsim.NewCampaign(manetsim.BenchScale, manetsim.WithStore(dir))
	ts2 := httptest.NewServer(manetsim.NewServer(second))
	defer ts2.Close()
	id2 := postSweep(t, ts2, sw)
	waitForState(t, ts2, id2, "done", 2*time.Minute)
	if got := second.Executed(); got > total-completed {
		t.Fatalf("restart re-ran %d runs; %d completed runs were lost", got, got-(total-completed))
	}
	var got struct {
		Cells []manetsim.Cell `json:"cells"`
	}
	getJSON(t, ts2, "/api/v1/sweeps/"+id2+"/results", http.StatusOK, &got)
	if len(got.Cells) != 4 {
		t.Fatalf("resumed sweep carried %d cells, want 4", len(got.Cells))
	}
	for _, cell := range got.Cells {
		if len(cell.Runs) != len(sw.Seeds) || cell.Goodput.Mean <= 0 {
			t.Fatalf("cell %s incomplete after resume", cell.Transport.Label())
		}
	}
}
