package tcp

// TahoeCC implements TCP Tahoe: fast retransmit after three duplicate
// ACKs but no fast recovery — every loss event collapses the window to
// Winit and slow-starts. The oldest of the baselines in the related-work
// comparisons the paper cites.
type TahoeCC struct {
	CCBase
	ssthresh float64
	dupacks  int
	recover  int64 // highest sequence outstanding at the last loss event
}

var _ CongestionControl = (*TahoeCC)(nil)

// NewTahoeCC returns the Tahoe congestion-control strategy.
func NewTahoeCC() *TahoeCC { return &TahoeCC{} }

// Init binds the engine and seeds ssthresh at the receiver window.
func (s *TahoeCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.ssthresh = s.InitialSSThresh()
	s.recover = -1
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *TahoeCC) OnAck(a Ack) {
	e := s.e
	newly := e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
	s.dupacks = 0
	s.GrowAIMD(newly, s.ssthresh)
}

// OnDupAck counts duplicates; the third collapses the window. The recover
// guard keeps stale duplicates from the same window from triggering a
// second collapse.
func (s *TahoeCC) OnDupAck(Ack) {
	e := s.e
	s.dupacks++
	if s.dupacks == 3 && e.AckNext() > s.recover {
		s.recover = e.MaxSeq()
		e.CountFastRecovery()
		s.lossEvent()
		// Rewind to the hole; the engine's post-ACK sendUpTo performs
		// the actual go-back-N retransmission.
		e.GoBackN()
	}
}

// lossEvent is Tahoe's single reaction to any loss: halve ssthresh and
// drop the window to Winit; the caller restarts transmission from the
// hole (go-back-N) and slow start takes over.
func (s *TahoeCC) lossEvent() {
	e := s.e
	flight := float64(e.InFlight())
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.dupacks = 0
	e.SetWindow(float64(e.Config().Winit))
}

// OnTimeout collapses the window like any other Tahoe loss, with timer
// backoff; the engine then goes back N.
func (s *TahoeCC) OnTimeout() {
	e := s.e
	s.lossEvent()
	e.BackoffRTO()
	e.RestartRTOTimer()
}
