package core

import (
	"fmt"
	"time"

	"manetsim/internal/aodv"
	"manetsim/internal/geo"
	"manetsim/internal/node"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
	"manetsim/internal/tcp"
	"manetsim/internal/udp"
)

// scenario holds the live state of one run.
type scenario struct {
	cfg   Config
	sched *sim.Scheduler
	uids  pkt.UIDSource

	positions []geo.Point
	flows     []FlowSpec
	nodes     []*node.Node
	routers   []*aodv.Router // nil entries under static routing
	senders   []tcp.Sender   // per flow (nil for UDP)
	udpSrcs   []*udp.Sender  // per flow (nil for TCP)
	sinks     []*tcp.Sink    // per flow (nil for UDP)
	udpSinks  []*udp.Sink

	delivered      int64
	nextBatchAt    int64
	perFlowPackets []int64
	delay          *stats.DurationHistogram

	batches []Batch
	cur     Batch // batch being accumulated

	// Cumulative counters snapshotted at the previous batch boundary.
	lastRtx          []uint64
	lastDrops        uint64
	lastSubmit       uint64
	lastFailures     uint64
	lastTrueFailures uint64
}

// Run executes one configured simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	s := &scenario{cfg: cfg, sched: sim.NewScheduler(cfg.Seed)}
	if err := s.build(); err != nil {
		return nil, err
	}
	s.start()
	s.sched.RunUntil(cfg.MaxSimTime)

	res := &Result{
		Config:    cfg,
		Flows:     s.flows,
		Delivered: s.delivered,
		SimTime:   s.sched.Now(),
		Truncated: s.delivered < cfg.TotalPackets,
	}
	warm := cfg.WarmupBatches
	if warm > len(s.batches) {
		warm = len(s.batches)
	}
	res.Batches = s.batches[warm:]
	res.aggregate()
	s.fillEnergy(res)
	if s.delay.N() > 0 {
		res.Delay = DelaySummary{
			Mean: s.delay.Mean(),
			P50:  s.delay.Quantile(0.5),
			P95:  s.delay.Quantile(0.95),
			Max:  s.delay.Max(),
			N:    s.delay.N(),
		}
	}
	return res, nil
}

// build materializes topology, stacks and flows.
func (s *scenario) build() error {
	pts, flows, err := s.cfg.buildTopology(s.sched.Rand())
	if err != nil {
		return err
	}
	if s.cfg.Flows != nil {
		flows = s.cfg.Flows
	}
	for _, f := range flows {
		if int(f.Src) >= len(pts) || int(f.Dst) >= len(pts) || f.Src < 0 || f.Dst < 0 || f.Src == f.Dst {
			return fmt.Errorf("core: invalid flow %d->%d for %d nodes", f.Src, f.Dst, len(pts))
		}
	}
	s.positions = pts
	s.flows = flows
	s.perFlowPackets = make([]int64, len(flows))
	s.lastRtx = make([]uint64, len(flows))

	model, err := s.cfg.buildMobility(pts, flows, s.sched.Rand())
	if err != nil {
		return err
	}
	if s.cfg.Routing == RoutingStatic && !model.Static() {
		return fmt.Errorf("core: static routing cannot follow moving nodes; use AODV with mobility")
	}
	ch := phy.NewMobileChannel(s.sched, model, s.cfg.Mobility.UpdateInterval)
	ch.NoCapture = s.cfg.NoCapture
	s.nodes = make([]*node.Node, len(pts))
	s.routers = make([]*aodv.Router, len(pts))
	for i := range pts {
		n := node.New(s.sched, ch.Radio(pkt.NodeID(i)), s.cfg.Bandwidth)
		n.OnFlowDelivery = s.onDelivery
		s.nodes[i] = n
	}
	for i := range pts {
		id := pkt.NodeID(i)
		n := s.nodes[i]
		switch s.cfg.Routing {
		case RoutingAODV:
			r := aodv.New(s.sched, id, n.MAC, &s.uids, aodv.Config{}, n.Deliver)
			// Omniscient link oracle: lets the measurement layer tell
			// genuine route breaks (hop moved away) from the paper's false
			// route failures (contention on a healthy link).
			r.LinkAlive = func(nh pkt.NodeID) bool { return ch.Reachable(id, nh) }
			s.routers[i] = r
			n.SetRouter(r)
		case RoutingStatic:
			n.SetRouter(aodv.NewStatic(id, n.MAC, pts, phy.TxRange, n.Deliver))
		default:
			return fmt.Errorf("core: unknown routing kind %d", s.cfg.Routing)
		}
	}

	s.senders = make([]tcp.Sender, len(flows))
	s.udpSrcs = make([]*udp.Sender, len(flows))
	s.sinks = make([]*tcp.Sink, len(flows))
	s.udpSinks = make([]*udp.Sink, len(flows))
	s.delay = stats.NewDurationHistogram(4096, s.sched.Rand().Int63n)
	if s.cfg.PerFlowTransport != nil && len(s.cfg.PerFlowTransport) != len(flows) {
		return fmt.Errorf("core: PerFlowTransport has %d entries for %d flows",
			len(s.cfg.PerFlowTransport), len(flows))
	}
	for fi, f := range flows {
		tspec := s.cfg.Transport
		if s.cfg.PerFlowTransport != nil {
			tspec = s.cfg.PerFlowTransport[fi]
		}
		if err := s.buildFlow(fi, f, tspec); err != nil {
			return err
		}
	}
	return nil
}

// buildFlow attaches one flow's transport endpoints.
func (s *scenario) buildFlow(fi int, f FlowSpec, tspec TransportSpec) error {
	src, dst := s.nodes[f.Src], s.nodes[f.Dst]
	switch {
	case tspec.Protocol.isTCP():
		if tspec.AckThinning && tspec.DelayedAck {
			return fmt.Errorf("core: flow %d: AckThinning and DelayedAck are mutually exclusive", fi)
		}
		tcfg := tcp.Config{
			Alpha:     tspec.Alpha,
			MaxWindow: tspec.MaxWindow,
		}
		var snd tcp.Sender
		switch tspec.Protocol {
		case ProtoVegas:
			snd = tcp.NewVegas(s.sched, tcfg, fi, f.Src, f.Dst, &s.uids, src.Output())
		case ProtoNewReno:
			snd = tcp.NewNewReno(s.sched, tcfg, fi, f.Src, f.Dst, &s.uids, src.Output())
		case ProtoReno:
			snd = tcp.NewReno1990(s.sched, tcfg, fi, f.Src, f.Dst, &s.uids, src.Output())
		case ProtoTahoe:
			snd = tcp.NewTahoe(s.sched, tcfg, fi, f.Src, f.Dst, &s.uids, src.Output())
		}
		policy := tcp.AckEveryPacket
		if tspec.AckThinning {
			policy = tcp.AckThinning
		} else if tspec.DelayedAck {
			policy = tcp.AckDelayed
		}
		sink := tcp.NewSink(s.sched, fi, f.Dst, f.Src, policy, &s.uids, dst.Output())
		sink.Delay = s.delay
		src.AttachTCPSender(fi, snd)
		dst.AttachTCPSink(fi, sink)
		s.senders[fi] = snd
		s.sinks[fi] = sink
	case tspec.Protocol == ProtoPacedUDP:
		if tspec.UDPGap <= 0 {
			return fmt.Errorf("core: paced UDP needs UDPGap > 0")
		}
		usrc := udp.NewSender(s.sched, fi, f.Src, f.Dst, tspec.UDPGap, &s.uids, src.Output())
		usink := udp.NewSink()
		usink.Delay = s.delay
		usink.Now = s.sched.Now
		dst.AttachUDPSink(fi, usink)
		s.udpSrcs[fi] = usrc
		s.udpSinks[fi] = usink
	default:
		return fmt.Errorf("core: unknown protocol %d", tspec.Protocol)
	}
	return nil
}

// start launches all flows with a small decorrelating jitter and opens the
// first batch.
func (s *scenario) start() {
	s.cur = s.newBatch(0)
	s.nextBatchAt = s.cfg.BatchPackets
	for fi := range s.flows {
		fi := fi
		jitter := sim.Time(s.sched.Rand().Int63n(int64(10 * time.Millisecond)))
		s.sched.At(jitter, func() {
			if snd := s.senders[fi]; snd != nil {
				snd.Start()
			}
			if u := s.udpSrcs[fi]; u != nil {
				u.Start()
			}
		})
	}
}

func (s *scenario) newBatch(start time.Duration) Batch {
	return Batch{
		Start:          start,
		PerFlowPackets: make([]int64, len(s.flows)),
		PerFlowRtx:     make([]uint64, len(s.flows)),
		PerFlowWindow:  make([]float64, len(s.flows)),
	}
}

// onDelivery advances goodput accounting and closes batches at the paper's
// packet-count boundaries.
func (s *scenario) onDelivery(flow int, n int64) {
	s.delivered += n
	s.perFlowPackets[flow] += n
	s.cur.PerFlowPackets[flow] += n

	if s.delivered >= s.nextBatchAt || s.delivered >= s.cfg.TotalPackets {
		s.closeBatch()
		s.nextBatchAt += s.cfg.BatchPackets
		if s.delivered >= s.cfg.TotalPackets {
			s.sched.Stop()
		}
	}
}

// closeBatch snapshots cumulative counters into the finished batch and
// opens the next one.
func (s *scenario) closeBatch() {
	now := s.sched.Now()
	b := s.cur
	b.End = now

	for fi := range s.flows {
		if snd := s.senders[fi]; snd != nil {
			cum := snd.Stats().Retransmits
			b.PerFlowRtx[fi] = cum - s.lastRtx[fi]
			s.lastRtx[fi] = cum
			b.PerFlowWindow[fi] = snd.WindowTrace().AverageAt(now)
			snd.WindowTrace().Reset(now)
		}
	}
	var failures, attempts uint64
	for _, n := range s.nodes {
		c := n.MAC.Counters
		failures += c.Retries + c.RetryDrops
		attempts += c.RTSSent + c.DataSent
	}
	b.MACDrops = failures - s.lastDrops
	b.MACSubmitted = attempts - s.lastSubmit
	s.lastDrops, s.lastSubmit = failures, attempts

	var frf, trf uint64
	for _, r := range s.routers {
		if r != nil {
			frf += r.Counters.FalseRouteFailures
			trf += r.Counters.TrueRouteFailures
		}
	}
	b.FalseRouteFailures = frf - s.lastFailures
	b.TrueRouteFailures = trf - s.lastTrueFailures
	s.lastFailures, s.lastTrueFailures = frf, trf

	s.batches = append(s.batches, b)
	s.cur = s.newBatch(now)
}

// fillEnergy computes the end-of-run energy report.
func (s *scenario) fillEnergy(res *Result) {
	var total float64
	for _, n := range s.nodes {
		total += n.EnergyJoules(node.DefaultPower, res.SimTime)
	}
	mb := float64(res.Delivered) * pkt.TCPPayloadSize / 1e6
	rep := EnergyReport{TotalJoules: total, DeliveredPackets: res.Delivered}
	if mb > 0 {
		rep.JoulesPerMB = total / mb
	}
	res.Energy = rep
}
