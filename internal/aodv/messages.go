// Package aodv implements the Ad hoc On-Demand Distance Vector routing
// protocol (RFC 3561) to the depth the paper's evaluation depends on:
// on-demand route discovery with RREQ flooding and RREP replies
// (including intermediate-node replies), destination sequence numbers,
// RERR propagation, a per-destination send buffer with bounded RREQ
// retries, and — critically for Figure 9 — invalidation of healthy routes
// when the 802.11 MAC reports a transmission failure caused by hidden-
// terminal collisions ("false route failures").
package aodv

import (
	"fmt"

	"manetsim/internal/pkt"
)

// Control message wire sizes in bytes (type + AODV fields + IP header),
// matching ns-2's AODV packet sizing closely enough for airtime purposes.
const (
	RREQSize = 48
	RREPSize = 44
	RERRSize = 32
)

// RREQ is a route request, flooded toward the destination.
type RREQ struct {
	ID        uint32 // per-origin flood identifier
	Origin    pkt.NodeID
	OriginSeq uint32
	Dst       pkt.NodeID
	DstSeq    uint32
	DstKnown  bool // whether DstSeq is meaningful
	HopCount  int
}

func (m *RREQ) String() string {
	return fmt.Sprintf("RREQ id=%d %d->%d hops=%d", m.ID, m.Origin, m.Dst, m.HopCount)
}

// RREP is a route reply, unicast hop-by-hop back to the RREQ origin.
type RREP struct {
	Origin   pkt.NodeID // node the reply travels to
	Dst      pkt.NodeID // node the route leads to
	DstSeq   uint32
	HopCount int // hops from the replier to Dst
}

func (m *RREP) String() string {
	return fmt.Sprintf("RREP to=%d route-to=%d seq=%d hops=%d", m.Origin, m.Dst, m.DstSeq, m.HopCount)
}

// RERR reports broken routes; receivers using the sender as next hop for a
// listed destination invalidate the route and propagate.
type RERR struct {
	Unreachable []pkt.NodeID
	Seqs        []uint32
}

func (m *RERR) String() string {
	return fmt.Sprintf("RERR unreachable=%v", m.Unreachable)
}
