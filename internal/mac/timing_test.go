package mac

import (
	"testing"
	"time"

	"manetsim/internal/phy"
)

// TestTable2FourHopPropagationDelay checks the analytic reproduction of the
// paper's Table 2: 4-hop propagation delays of 29, 12 and 8 ms for 2, 5.5
// and 11 Mbit/s (values match after rounding to whole milliseconds).
func TestTable2FourHopPropagationDelay(t *testing.T) {
	cases := []struct {
		rate   phy.Rate
		wantMS int64
	}{
		{phy.Rate2Mbps, 29},
		{phy.Rate5_5Mbps, 12},
		{phy.Rate11Mbps, 8},
	}
	for _, c := range cases {
		got := FourHopPropagationDelay(c.rate)
		if got.Round(time.Millisecond).Milliseconds() != c.wantMS {
			t.Errorf("FourHopPropagationDelay(%v) = %v (%.2f ms), want %d ms",
				c.rate, got, float64(got)/1e6, c.wantMS)
		}
	}
}

func TestTimingControlFramesAtControlRate(t *testing.T) {
	// At 2 Mbit/s (long preamble): RTS = 192us + 20*8/1e6 = 352us.
	tm := NewTiming(phy.Rate2Mbps)
	if tm.RTSAir != 352*time.Microsecond {
		t.Errorf("RTS airtime = %v, want 352us", tm.RTSAir)
	}
	if tm.CTSAir != 304*time.Microsecond {
		t.Errorf("CTS airtime = %v, want 304us", tm.CTSAir)
	}
	if tm.AckAir != tm.CTSAir {
		t.Errorf("ACK airtime %v != CTS airtime %v (same size)", tm.AckAir, tm.CTSAir)
	}
	// At 11 Mbit/s (short preamble) control frames shrink only by the
	// preamble difference: still 1 Mbit/s payload rate.
	tm11 := NewTiming(phy.Rate11Mbps)
	if tm11.RTSAir != 256*time.Microsecond {
		t.Errorf("11M RTS airtime = %v, want 256us", tm11.RTSAir)
	}
}

func TestTimingDataAir(t *testing.T) {
	tm := NewTiming(phy.Rate2Mbps)
	// 1500 + 28 bytes at 2 Mbit/s + 192us preamble = 6.112ms + 192us.
	want := 6304 * time.Microsecond
	if got := tm.DataAir(1500); got != want {
		t.Errorf("DataAir(1500) = %v, want %v", got, want)
	}
}

func TestTimingEIFS(t *testing.T) {
	tm := NewTiming(phy.Rate2Mbps)
	want := SIFS + DIFS + tm.AckAir
	if tm.EIFS != want {
		t.Errorf("EIFS = %v, want %v", tm.EIFS, want)
	}
	if tm.EIFS <= DIFS {
		t.Error("EIFS must exceed DIFS")
	}
}

// TestSublinearBandwidthScaling verifies the mechanism behind the paper's
// sub-linear goodput growth: 5.5x the bandwidth buys well under 5.5x less
// per-hop exchange time, because control frames stay at 1 Mbit/s.
func TestSublinearBandwidthScaling(t *testing.T) {
	e2 := NewTiming(phy.Rate2Mbps).ExchangeTime(1500)
	e11 := NewTiming(phy.Rate11Mbps).ExchangeTime(1500)
	speedup := float64(e2) / float64(e11)
	if speedup >= 5.5 {
		t.Errorf("exchange speedup 2->11 Mbit/s = %.2f, want < 5.5 (control overhead)", speedup)
	}
	if speedup <= 1.5 {
		t.Errorf("exchange speedup 2->11 Mbit/s = %.2f, implausibly low", speedup)
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameRTS.String() != "RTS" || FrameAck.String() != "ACK" {
		t.Error("frame type names wrong")
	}
	if FrameType(42).String() == "" {
		t.Error("unknown frame type should render")
	}
}

func TestCountersDropProbability(t *testing.T) {
	c := Counters{RTSSent: 80, DataSent: 20, Retries: 4, RetryDrops: 1}
	if got := c.DropProbability(); got != 0.05 {
		t.Errorf("drop probability = %v, want 0.05", got)
	}
	if (Counters{}).DropProbability() != 0 {
		t.Error("zero counters should have zero drop probability")
	}
}
