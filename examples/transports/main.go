// Transports compares every registered transport variant on the paper's
// 7-hop chain at 2 Mbit/s through one Campaign sweep: the paper's four
// TCP variants, the paced-UDP reference, and the registry-shipped
// Westwood+ and adaptive-pacing extensions — plus a custom
// fixed-window strategy registered on the spot through
// manetsim.RegisterTransport, to show the plugin seam end to end.
//
//	go run ./examples/transports
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// fixedWindow is a minimal custom congestion control: a constant window,
// no loss reaction beyond the engine's go-back-N timeout recovery. Useful
// as a probe for the optimal static window (the paper's MaxWin study).
type fixedWindow struct {
	manetsim.CCBase
	win float64
}

func (c *fixedWindow) OnAck(a manetsim.Ack) {
	e := c.Engine()
	if !a.NoEcho && !a.FromRetransmit {
		e.SampleRTT(e.Now() - a.Echo)
	}
	e.AdvanceAck(a.Seq)
	e.SetWindow(c.win)
}

func (c *fixedWindow) OnDupAck(manetsim.Ack) {}

func (c *fixedWindow) OnTimeout() {
	e := c.Engine()
	e.BackoffRTO()
	e.RestartRTOTimer()
}

func main() {
	manetsim.RegisterTransport("fixed3", func(manetsim.TransportSpec) (manetsim.CongestionControl, error) {
		return &fixedWindow{win: 3}, nil
	})

	specs := []manetsim.TransportSpec{
		{Name: "tahoe"},
		{Name: "reno"},
		{Name: "newreno"},
		{Name: "vegas"},
		{Name: "westwood"},
		{Name: "pacing"},
		{Name: "fixed3"},
		{Name: "pacedudp", UDPGap: 36 * time.Millisecond},
	}

	total := demoPackets(11000)
	c := manetsim.NewCampaign(manetsim.Scale{TotalPackets: total, BatchPackets: total / 11, Seed: 1})
	cells, err := c.Sweep(context.Background(), manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(7)},
		Transports: specs,
		Rates:      []manetsim.Rate{manetsim.Rate2Mbps},
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(cells, func(i, j int) bool { return cells[i].Goodput.Mean > cells[j].Goodput.Mean })
	fmt.Println("7-hop chain, 2 Mbit/s — every registered transport:")
	fmt.Printf("%-16s %12s %14s\n", "transport", "goodput", "rtx/packet")
	for _, cell := range cells {
		run := cell.Runs[0]
		bar := strings.Repeat("#", int(cell.Goodput.Mean/1e4))
		fmt.Printf("%-16s %8.1f kb/s %14.4f  %s\n",
			cell.Transport.Label(), cell.Goodput.Mean/1e3, run.Rtx.Mean, bar)
	}
	fmt.Println("\n(paced transports trade peak goodput for fewer retransmissions;")
	fmt.Println(" see -list-transports on cmd/manetsim for the registry)")
}
