package linkmodel

import (
	"math"
	"testing"
)

// drawLosses runs n Corrupt draws on a fresh stream and returns the loss
// count.
func drawLosses(t *testing.T, m Model, seed uint64, dist float64, n int) int {
	t.Helper()
	var st State
	st.Seed(seed)
	lost := 0
	for i := 0; i < n; i++ {
		if m.Corrupt(&st, dist) {
			lost++
		}
	}
	return lost
}

func TestStateDeterminism(t *testing.T) {
	var a, b State
	a.Seed(LinkSeed(42, 3, 7))
	b.Seed(LinkSeed(42, 3, 7))
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestLinkSeedDistinguishesLinks(t *testing.T) {
	seen := map[uint64]string{}
	type link struct {
		seed     uint64
		from, to uint32
	}
	for _, l := range []link{{1, 0, 1}, {1, 1, 0}, {1, 0, 2}, {2, 0, 1}, {1, 2, 0}} {
		s := LinkSeed(l.seed, l.from, l.to)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: (%d,%d,%d) and %s both map to %#x", l.seed, l.from, l.to, prev, s)
		}
		seen[s] = "earlier link"
	}
}

func TestFloat64Range(t *testing.T) {
	var st State
	st.Seed(1)
	for i := 0; i < 10000; i++ {
		f := st.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestPerfectNeverCorrupts(t *testing.T) {
	if got := drawLosses(t, Perfect{}, 1, 100, 10000); got != 0 {
		t.Fatalf("Perfect corrupted %d frames", got)
	}
}

func TestUniformLossRate(t *testing.T) {
	const n = 100000
	for _, p := range []float64{0.01, 0.05, 0.5} {
		lost := drawLosses(t, UniformLoss{P: p}, 7, 100, n)
		got := float64(lost) / n
		// 5 sigma around the binomial mean.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("UniformLoss(%g): empirical rate %g outside %g±%g", p, got, p, tol)
		}
	}
}

func TestBERLossMatchesClosedForm(t *testing.T) {
	const n = 100000
	m := NewBERLoss(1e-5, 12000) // ~11.3% per-frame
	want := FrameLossFromBER(1e-5, 12000)
	lost := drawLosses(t, m, 9, 100, n)
	got := float64(lost) / n
	tol := 5 * math.Sqrt(want*(1-want)/n)
	if math.Abs(got-want) > tol {
		t.Errorf("BERLoss: empirical rate %g, closed form %g (tol %g)", got, want, tol)
	}
}

func TestFrameLossFromBEREdges(t *testing.T) {
	if p := FrameLossFromBER(0, 12000); p != 0 {
		t.Errorf("BER 0 => %g, want 0", p)
	}
	if p := FrameLossFromBER(1, 12000); p != 1 {
		t.Errorf("BER 1 => %g, want 1", p)
	}
	if p := FrameLossFromBER(1e-6, 0); p != 0 {
		t.Errorf("0 bits => %g, want 0", p)
	}
}

// TestGilbertElliottBurstiness checks both the stationary loss rate and
// that losses clump: with a sticky bad state the conditional probability
// of losing the frame right after a loss must be far above the marginal.
func TestGilbertElliottBurstiness(t *testing.T) {
	m := GilbertElliott{PGoodBad: 0.01, PBadGood: 0.1, LossGood: 0, LossBad: 0.5}
	// Stationary P(bad) = pgb/(pgb+pbg) = 1/11; marginal loss ~ 4.5%.
	wantMarginal := 0.01 / 0.11 * 0.5

	var st State
	st.Seed(11)
	const n = 200000
	losses, afterLoss, lossAfterLoss := 0, 0, 0
	prevLost := false
	for i := 0; i < n; i++ {
		lost := m.Corrupt(&st, 100)
		if lost {
			losses++
		}
		if prevLost {
			afterLoss++
			if lost {
				lossAfterLoss++
			}
		}
		prevLost = lost
	}
	marginal := float64(losses) / n
	if math.Abs(marginal-wantMarginal) > 0.01 {
		t.Errorf("GE marginal loss %g, want ~%g", marginal, wantMarginal)
	}
	conditional := float64(lossAfterLoss) / float64(afterLoss)
	if conditional < 3*marginal {
		t.Errorf("GE not bursty: P(loss|loss)=%g vs marginal %g", conditional, marginal)
	}
}

func TestGilbertElliottFixedDrawCount(t *testing.T) {
	// Two identical streams through different dist arguments must stay
	// aligned: the model may not branch its draw count on anything.
	m := GilbertElliott{PGoodBad: 0.2, PBadGood: 0.2, LossGood: 0.1, LossBad: 0.9}
	var a, b State
	a.Seed(5)
	b.Seed(5)
	for i := 0; i < 1000; i++ {
		ra := m.Corrupt(&a, 10)
		rb := m.Corrupt(&b, 500)
		if ra != rb {
			t.Fatalf("draw %d diverged under different dist", i)
		}
	}
}

func TestDistanceLossRamp(t *testing.T) {
	m := &DistanceLoss{}
	if got := m.DecodeRange(250, 550); got != 550 {
		t.Fatalf("DecodeRange = %g, want 550", got)
	}
	const n = 50000
	cases := []struct {
		dist float64
		want float64
	}{
		{100, 0}, {250, 0}, {400, 0.5}, {550, 1},
	}
	for _, c := range cases {
		lost := drawLosses(t, m, 3, c.dist, n)
		got := float64(lost) / n
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("DistanceLoss at %gm: loss %g, want ~%g", c.dist, got, c.want)
		}
	}
}

func TestInvalidateForcesReseed(t *testing.T) {
	var st State
	st.Seed(1)
	if !st.Seeded() {
		t.Fatal("freshly seeded state not Seeded")
	}
	st.Uint64()
	st.Invalidate()
	if st.Seeded() {
		t.Fatal("Invalidate left state Seeded")
	}
	st.Seed(1)
	var ref State
	ref.Seed(1)
	for i := 0; i < 100; i++ {
		if st.Uint64() != ref.Uint64() {
			t.Fatalf("re-seeded stream diverges at %d", i)
		}
	}
}

func TestCorruptZeroAlloc(t *testing.T) {
	models := []Model{
		UniformLoss{P: 0.5},
		NewBERLoss(1e-5, 12000),
		GilbertElliott{PGoodBad: 0.1, PBadGood: 0.1, LossGood: 0.1, LossBad: 0.9},
		&DistanceLoss{inner: 250, outer: 550},
	}
	var st State
	st.Seed(1)
	for _, m := range models {
		m := m
		if n := testing.AllocsPerRun(1000, func() { m.Corrupt(&st, 300) }); n != 0 {
			t.Errorf("%s: Corrupt allocates %.1f/op", m.Name(), n)
		}
	}
}
