// Randomadhoc runs the paper's random-topology scenario (Figures 18/19,
// Table 4): 120 nodes placed uniformly on 2500x1000 m², ten FTP flows
// between random endpoints, AODV routing. It compares Vegas and NewReno on
// aggregate goodput and fairness.
//
//	go run ./examples/randomadhoc
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	fmt.Println("random ad hoc network: 120 nodes, 2500x1000 m², 10 flows, 11 Mbit/s")
	for _, v := range []struct {
		name string
		t    manetsim.TransportSpec
	}{
		{"Vegas", manetsim.TransportSpec{Protocol: manetsim.Vegas}},
		{"NewReno", manetsim.TransportSpec{Protocol: manetsim.NewReno}},
	} {
		res, err := manetsim.Run(context.Background(), manetsim.Random(),
			manetsim.WithBandwidth(manetsim.Rate11Mbps),
			manetsim.WithTransport(v.t),
			manetsim.WithSeed(7),
			manetsim.WithPackets(demoPackets(11000), 0),
		)
		if err != nil {
			log.Fatal(err)
		}
		starved := 0
		for _, est := range res.PerFlowGood {
			if est.Mean < res.AggGoodput.Mean/100 {
				starved++
			}
		}
		fmt.Printf("\n%s:\n", v.name)
		fmt.Printf("  aggregate goodput: %.0f kbit/s\n", res.AggGoodput.Mean/1e3)
		fmt.Printf("  Jain fairness:     %.2f [%.2f:%.2f]\n", res.Jain.Mean, res.Jain.Lo(), res.Jain.Hi())
		fmt.Printf("  starved flows:     %d of %d (goodput < 1%% of aggregate)\n", starved, len(res.PerFlowGood))
		for i, est := range res.PerFlowGood {
			f := res.Flows[i]
			fmt.Printf("    flow %2d (%3d->%3d): %7.1f kbit/s\n", i+1, f.Src, f.Dst, est.Mean/1e3)
		}
	}
}
