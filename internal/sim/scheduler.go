// Package sim provides the discrete-event simulation kernel used by every
// other layer of the simulator: a virtual clock, an event heap with
// deterministic ordering, cancellable timers, and a seeded random number
// source.
//
// The kernel is strictly single-threaded. All protocol code runs inside
// event callbacks dispatched by (*Scheduler).Run, so no locking is needed
// anywhere in the simulator and every run is exactly reproducible from its
// seed.
//
// The hot path is allocation-free: events live in a scheduler-owned
// freelist and are recycled after dispatch or cancellation, and the queue
// is a concrete 4-ary heap rather than container/heap's interface-based
// binary heap. Callers hold EventRef handles whose generation counter makes
// stale cancels (after the event fired and its slot was reused) safe
// no-ops. For callbacks that would otherwise capture state, AtFunc/AfterFunc
// take a plain function plus an argument so scheduling does not allocate a
// closure either.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, measured as a duration since the start
// of the simulation. The zero value is the simulation epoch.
type Time = time.Duration

// Event is one scheduled callback slot. Events are owned and recycled by
// the scheduler; external code refers to them only through EventRef.
type Event struct {
	at  Time
	seq uint64 // creation order; breaks ties deterministically
	idx int32  // heap index, -1 while not queued
	gen uint32 // bumped on every recycle; validates EventRef handles

	fn   func()    // closure form (At/After)
	fnA  func(any) // argument form (AtFunc/AfterFunc)
	arg  any
	next *Event // freelist link
}

// EventRef is a handle to a scheduled event. The zero value refers to no
// event; Cancel on it is a no-op. A ref goes stale once its event fires or
// is cancelled — stale refs are detected by generation and ignored, so
// protocol code may keep refs around without lifecycle bookkeeping.
type EventRef struct {
	e   *Event
	gen uint32
}

// Pending reports whether the referenced event is still queued.
func (r EventRef) Pending() bool {
	return r.e != nil && r.e.gen == r.gen && r.e.idx >= 0
}

// Cancelled reports that the referenced event will never fire anymore
// through this handle: it was cancelled (or already fired and its slot
// recycled). The zero ref reports true.
func (r EventRef) Cancelled() bool { return !r.Pending() }

// At returns the scheduled fire time; only meaningful while Pending.
func (r EventRef) At() Time {
	if !r.Pending() {
		return 0
	}
	return r.e.at
}

// Scheduler is a discrete-event scheduler. The zero value is not usable;
// create one with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	heap    []*Event
	free    *Event
	src     rand.Source
	rng     *rand.Rand //manetsim:resetsafe identity kept across resets; reseeding src restarts its stream
	stopped bool
	// dispatched counts events that have fired (for diagnostics and tests).
	dispatched uint64
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	src := rand.NewSource(seed)
	return &Scheduler{src: src, rng: rand.New(src)}
}

// Reset rewinds the scheduler to the state NewScheduler(seed) would produce
// while keeping every allocation: pending events move to the freelist, the
// clock and sequence counter return to zero, and the random stream restarts
// so a reset run draws the exact same values event for event. The *rand.Rand
// returned by Rand keeps its identity across resets, so bindings taken
// before the reset stay valid. Releasing the pending events bumps their
// generations, which turns every outstanding EventRef (and Timer) into a
// safe stale no-op.
func (s *Scheduler) Reset(seed int64) {
	for _, e := range s.heap {
		s.release(e)
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.dispatched = 0
	s.src.Seed(seed)
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source. All protocol
// randomness (backoff draws, jitter, topology placement) must come from
// this source so runs are reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Dispatched returns the number of events executed so far.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// alloc takes an event slot from the freelist (or the heap allocator when
// the freelist is dry) and stamps it with the schedule key.
func (s *Scheduler) alloc(t Time) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.free
	if e != nil {
		s.free = e.next
		e.next = nil
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = s.seq
	s.seq++
	return e
}

// release recycles a dispatched or cancelled event slot. Bumping the
// generation invalidates every outstanding EventRef to it.
func (s *Scheduler) release(e *Event) {
	e.gen++
	e.fn = nil
	e.fnA = nil
	e.arg = nil
	e.idx = -1
	e.next = s.free
	s.free = e
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it always indicates a protocol bug, and silently
// reordering events would corrupt causality.
func (s *Scheduler) At(t Time, fn func()) EventRef {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := s.alloc(t)
	e.fn = fn
	s.push(e)
	return EventRef{e: e, gen: e.gen}
}

// AtFunc schedules fn(arg) at absolute time t. Unlike At, the callback is a
// plain function plus an argument, so hot paths schedule without allocating
// a closure.
//
//manetsim:hotpath
func (s *Scheduler) AtFunc(t Time, fn func(any), arg any) EventRef {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := s.alloc(t)
	e.fnA = fn
	e.arg = arg
	s.push(e)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) EventRef {
	return s.At(s.now+d, fn)
}

// AfterFunc schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterFunc(d Time, fn func(any), arg any) EventRef {
	return s.AtFunc(s.now+d, fn, arg)
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op, which makes timer
// management in protocol code straightforward.
func (s *Scheduler) Cancel(r EventRef) {
	if !r.Pending() {
		return
	}
	s.remove(r.e)
	s.release(r.e)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// callback completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of events waiting in the queue.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
//
//manetsim:hotpath
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.pop()
	if e.at < s.now {
		panic(fmt.Sprintf("sim: time moving backwards: event at %v, now %v", e.at, s.now))
	}
	s.now = e.at
	s.dispatched++
	// Copy the callback out and recycle the slot before running it: the
	// callback may schedule (and thus reuse the slot), and any stale
	// Cancel during the callback is rejected by the bumped generation.
	fn, fnA, arg := e.fn, e.fnA, e.arg
	s.release(e)
	if fnA != nil {
		fnA(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the deadline
// if the queue drains or only later events remain.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunUntilWithCheck runs like RunUntil but invokes check() before the first
// event and then once every `every` dispatched events. A non-nil error from
// check aborts the run immediately (the clock stays wherever it was) and is
// returned. It exists so a driver can poll an external cancellation signal
// — e.g. a context — without the per-event cost landing on runs that have
// nothing to poll: callers with no signal keep using RunUntil.
func (s *Scheduler) RunUntilWithCheck(deadline Time, every uint64, check func() error) error {
	if every == 0 {
		every = 1
	}
	s.stopped = false
	var n uint64
	for !s.stopped {
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			break
		}
		if n%every == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		n++
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return nil
}

// The queue is a 4-ary min-heap ordered by (time, creation sequence). The
// wider fan-out halves the tree depth against a binary heap, and sift
// operations touch concrete *Event values — no interface dispatch, no
// per-push boxing.

// less orders events by (at, seq); seq is unique, so this is a total order
// and dispatch order is independent of heap shape.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e *Event) {
	e.idx = int32(len(s.heap))
	s.heap = append(s.heap, e)
	s.siftUp(int(e.idx))
}

func (s *Scheduler) pop() *Event {
	h := s.heap
	e := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		last.idx = 0
		s.heap[0] = last
		s.siftDown(0)
	}
	e.idx = -1
	return e
}

// remove deletes the event at its current heap position.
func (s *Scheduler) remove(e *Event) {
	i := int(e.idx)
	h := s.heap
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	if i < n {
		last.idx = int32(i)
		s.heap[i] = last
		s.siftDown(i)
		s.siftUp(i)
	}
	e.idx = -1
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if !less(e, p) {
			break
		}
		h[i] = p
		p.idx = int32(i)
		i = parent
	}
	h[i] = e
	e.idx = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(h[c], h[min]) {
				min = c
			}
		}
		if !less(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].idx = int32(i)
		i = min
	}
	h[i] = e
	e.idx = int32(i)
}
