package aodv

import (
	"slices"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Route is one forwarding table entry.
type Route struct {
	NextHop  pkt.NodeID
	HopCount int
	SeqNo    uint32
	Valid    bool
	Expiry   sim.Time
}

// Table is the per-node AODV routing table.
type Table struct {
	sched   *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the table
	entries map[pkt.NodeID]*Route
	timeout sim.Time // active route timeout
}

// NewTable creates an empty table with the given active-route timeout.
func NewTable(sched *sim.Scheduler, timeout sim.Time) *Table {
	return &Table{sched: sched, entries: make(map[pkt.NodeID]*Route), timeout: timeout}
}

// Reset empties the table for a new run, keeping the map's capacity, and
// installs the new active-route timeout.
func (t *Table) Reset(timeout sim.Time) {
	clear(t.entries)
	t.timeout = timeout
}

// Lookup returns the valid, unexpired route to dst, or nil.
func (t *Table) Lookup(dst pkt.NodeID) *Route {
	r := t.entries[dst]
	if r == nil || !r.Valid || r.Expiry <= t.sched.Now() {
		return nil
	}
	return r
}

// Entry returns the raw entry for dst regardless of validity, or nil.
func (t *Table) Entry(dst pkt.NodeID) *Route { return t.entries[dst] }

// Update installs or refreshes the route to dst if the new information is
// fresher (higher sequence number) or equally fresh but shorter, or if the
// existing entry is unusable — invalid or expired. Treating an expired
// entry like an invalid one matters under mobility: a node idle past the
// active-route timeout would otherwise hold a Valid-flagged corpse that
// rejects equal-sequence routes through other neighbors, turning every
// rediscovery into a no-route drop at this hop. It reports whether the
// entry changed.
func (t *Table) Update(dst, nextHop pkt.NodeID, hopCount int, seqNo uint32) bool {
	cur := t.entries[dst]
	curUsable := cur != nil && cur.Valid && cur.Expiry > t.sched.Now()
	fresher := cur == nil ||
		seqGreater(seqNo, cur.SeqNo) ||
		(seqNo == cur.SeqNo && (!curUsable || hopCount < cur.HopCount))
	if !fresher {
		// Refresh lifetime of an equivalent route through the same hop.
		if cur != nil && cur.Valid && cur.NextHop == nextHop && seqNo == cur.SeqNo {
			t.Refresh(dst)
		}
		return false
	}
	t.entries[dst] = &Route{
		NextHop:  nextHop,
		HopCount: hopCount,
		SeqNo:    seqNo,
		Valid:    true,
		Expiry:   t.sched.Now() + t.timeout,
	}
	return true
}

// Refresh extends the lifetime of an active route (called on every use).
func (t *Table) Refresh(dst pkt.NodeID) {
	if r := t.entries[dst]; r != nil && r.Valid {
		r.Expiry = t.sched.Now() + t.timeout
	}
}

// Invalidate marks the route to dst broken, bumping its sequence number so
// stale information cannot resurrect it. It reports whether a valid route
// was torn down.
func (t *Table) Invalidate(dst pkt.NodeID) bool {
	r := t.entries[dst]
	if r == nil || !r.Valid {
		return false
	}
	r.Valid = false
	r.SeqNo++
	return true
}

// InvalidateNextHop tears down every valid route whose next hop is nh and
// returns the affected destinations with their bumped sequence numbers.
// Destinations are sorted so the RERR payload built from them is
// independent of map iteration order.
func (t *Table) InvalidateNextHop(nh pkt.NodeID) (dsts []pkt.NodeID, seqs []uint32) {
	for dst, r := range t.entries {
		if r.Valid && r.NextHop == nh {
			r.Valid = false
			r.SeqNo++
			dsts = append(dsts, dst)
		}
	}
	slices.Sort(dsts)
	for _, dst := range dsts {
		seqs = append(seqs, t.entries[dst].SeqNo)
	}
	return dsts, seqs
}

// seqGreater compares AODV sequence numbers with wraparound (RFC 3561 §6.1).
func seqGreater(a, b uint32) bool {
	return int32(a-b) > 0
}
