// Package globalrand exercises the globalrand analyzer: shared global
// generator state and non-threaded seeds are forbidden in simulation
// packages; seeds threaded in from a Config are the sanctioned pattern.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

var shared = rand.New(rand.NewSource(1)) // want `package-level math/rand state` `rand\.NewSource seeded with constant 1`

func globalDraws(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `call to global rand\.Shuffle`
	return rand.Intn(n)                // want `call to global rand\.Intn`
}

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.NewSource seeded with constant 42`
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

func v2ConstSeed() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `rand\.NewPCG seeded with constant 1`
}

// threaded is the sanctioned pattern: the seed arrives from outside.
func threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// derived checks the constant-argument rule stays scoped to seed-taking
// constructors: NewZipf's float parameters are constants but not seeds.
func derived(seed int64) *rand.Zipf {
	r := rand.New(rand.NewSource(seed))
	return rand.NewZipf(r, 1.1, 1.0, 100)
}

func allowed() *rand.Rand {
	//manetsim:allow globalrand fixture generator, results not digest-bearing
	return rand.New(rand.NewSource(99))
}
