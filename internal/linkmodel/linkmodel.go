// Package linkmodel provides pluggable link-impairment models for the
// wireless channel: per-frame corruption draws (uniform loss, bit-error
// rate, bursty Gilbert-Elliott, distance-dependent loss) consumed by the
// PHY on every frame delivery.
//
// Determinism is the design center. Every directed link owns an
// independent splitmix64 stream (State) seeded from the run seed and the
// (from, to) node pair, so results are byte-identical per seed regardless
// of which other links carry traffic, and stable across World arena reuse
// — a reset link re-seeds to exactly the same stream. Models are
// stateless values; all mutable per-link state lives in State, which the
// PHY stores per (sender, receiver) pair. The draw path allocates
// nothing.
package linkmodel

import "math"

// Model decides, per transmitted frame and per receiving link, whether
// the frame is corrupted in flight. Implementations must be stateless
// (safe to share across links and goroutines); all per-link mutable state
// lives in the *State passed to Corrupt.
type Model interface {
	// Name returns the model's registry name.
	Name() string

	// DecodeRange returns the maximum sender-receiver distance at which
	// frames can be decoded at all, given the channel's nominal decode
	// range (txRange) and carrier-sense range (csRange). Most models keep
	// txRange; DistanceLoss extends decoding into the gray zone. The
	// channel calls this exactly once when the model is installed, so
	// models may capture the ranges here.
	DecodeRange(txRange, csRange float64) float64

	// Corrupt draws whether a frame on a link of the given length (in
	// meters) is corrupted. The draw must consume a fixed number of
	// variates from st per call — independent of the outcome and of dist
	// — so per-link streams stay aligned and runs stay reproducible.
	Corrupt(st *State, dist float64) bool
}

// State is the per-directed-link impairment state: a splitmix64 stream
// plus the Gilbert-Elliott channel state. The zero value is unseeded;
// the PHY seeds it lazily on first use via Seed(LinkSeed(...)).
type State struct {
	x      uint64
	bad    bool // Gilbert-Elliott: currently in the bad state
	seeded bool
}

// Seed initializes the stream and returns the state to the good channel
// state. Seeding with the same value reproduces the same draw sequence.
func (st *State) Seed(s uint64) {
	st.x = s
	st.bad = false
	st.seeded = true
}

// Seeded reports whether the state has been seeded since its last reset.
func (st *State) Seeded() bool { return st.seeded }

// Invalidate marks the state unseeded so the next use re-seeds it. The
// PHY calls this on every link when a run arena resets, which is what
// keeps reused Worlds byte-identical to fresh runs.
func (st *State) Invalidate() { st.seeded = false }

// Uint64 returns the next variate of the link's splitmix64 stream.
func (st *State) Uint64() uint64 {
	st.x += 0x9e3779b97f4a7c15
	z := st.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next variate uniformly in [0,1).
func (st *State) Float64() float64 {
	return float64(st.Uint64()>>11) / (1 << 53)
}

// fmix is the splitmix64 finalizer (full-avalanche bit mixing).
func fmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// LinkSeed derives the stream seed of the directed link from->to under
// the given run seed. The run seed is finalized before the link id folds
// in, so (seed, from, to) triples that XOR to the same value still get
// distinct streams; a second finalization decorrelates the result from
// the scheduler's own source.
func LinkSeed(runSeed uint64, from, to uint32) uint64 {
	z := fmix(runSeed + 0x9e3779b97f4a7c15)
	z += uint64(from)<<32 | uint64(to)
	return fmix(z)
}

// Perfect is the identity model: no frame is ever corrupted. It is the
// channel default (the channel special-cases it to skip per-link state
// entirely, keeping impairment-free runs byte-identical to builds that
// predate this package).
type Perfect struct{}

// Name implements Model.
func (Perfect) Name() string { return "perfect" }

// DecodeRange implements Model.
func (Perfect) DecodeRange(txRange, _ float64) float64 { return txRange }

// Corrupt implements Model.
func (Perfect) Corrupt(*State, float64) bool { return false }

// UniformLoss corrupts each frame independently with probability P,
// regardless of link length. This is the classic i.i.d. random-loss
// regime the DSN'05 follow-up literature evaluates Westwood+ against.
type UniformLoss struct {
	P float64 // frame loss probability in [0,1]
}

// Name implements Model.
func (UniformLoss) Name() string { return "uniform" }

// DecodeRange implements Model.
func (UniformLoss) DecodeRange(txRange, _ float64) float64 { return txRange }

// Corrupt implements Model.
func (m UniformLoss) Corrupt(st *State, _ float64) bool {
	return st.Float64() < m.P
}

// BERLoss corrupts frames according to an independent per-bit error
// rate: a frame of FrameBits bits survives with (1-BER)^FrameBits. The
// per-frame probability is precomputed at construction, so the draw path
// is one compare.
type BERLoss struct {
	BER       float64 // per-bit error probability
	FrameBits int     // frame length the BER applies over
	p         float64 // derived per-frame corruption probability
}

// NewBERLoss returns a BER model for frames of frameBits bits.
func NewBERLoss(ber float64, frameBits int) BERLoss {
	return BERLoss{BER: ber, FrameBits: frameBits, p: FrameLossFromBER(ber, frameBits)}
}

// FrameLossFromBER converts a per-bit error rate into the per-frame
// corruption probability of a frameBits-bit frame: 1-(1-ber)^frameBits.
func FrameLossFromBER(ber float64, frameBits int) float64 {
	if ber <= 0 || frameBits <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(frameBits))
}

// Name implements Model.
func (BERLoss) Name() string { return "ber" }

// DecodeRange implements Model.
func (BERLoss) DecodeRange(txRange, _ float64) float64 { return txRange }

// Corrupt implements Model.
func (m BERLoss) Corrupt(st *State, _ float64) bool {
	return st.Float64() < m.p
}

// GilbertElliott is the classic two-state bursty loss channel: each link
// alternates between a good and a bad state with geometric sojourn
// times, and frames are lost with a state-dependent probability. Per
// frame the model draws the loss outcome from the current state, then
// draws the state transition — always two variates, so streams stay
// aligned whatever the outcomes.
type GilbertElliott struct {
	PGoodBad float64 // per-frame transition probability good -> bad
	PBadGood float64 // per-frame transition probability bad -> good
	LossGood float64 // frame loss probability in the good state
	LossBad  float64 // frame loss probability in the bad state
}

// Name implements Model.
func (GilbertElliott) Name() string { return "gilbert-elliott" }

// DecodeRange implements Model.
func (GilbertElliott) DecodeRange(txRange, _ float64) float64 { return txRange }

// Corrupt implements Model.
func (m GilbertElliott) Corrupt(st *State, _ float64) bool {
	loss := m.LossGood
	flip := m.PGoodBad
	if st.bad {
		loss = m.LossBad
		flip = m.PBadGood
	}
	corrupted := st.Float64() < loss
	if st.Float64() < flip {
		st.bad = !st.bad
	}
	return corrupted
}

// DistanceLoss ramps the frame loss probability linearly with link
// length: lossless up to the nominal decode range, then rising to
// certain loss at the carrier-sense range. It also extends the decode
// range to the carrier-sense range, creating the gray zone of real
// radios — marginal links that routing may pick up but that drop most
// frames.
type DistanceLoss struct {
	inner, outer float64
}

// Name implements Model.
func (*DistanceLoss) Name() string { return "distance" }

// DecodeRange implements Model. It captures the ramp endpoints.
func (m *DistanceLoss) DecodeRange(txRange, csRange float64) float64 {
	m.inner, m.outer = txRange, csRange
	return csRange
}

// Corrupt implements Model.
func (m *DistanceLoss) Corrupt(st *State, dist float64) bool {
	p := 0.0
	if dist > m.inner && m.outer > m.inner {
		p = (dist - m.inner) / (m.outer - m.inner)
	}
	return st.Float64() < p
}
