package core

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// worldTestConfig builds a small-budget config for arena determinism
// checks: enough packets to close several batches, few enough to keep the
// full transport x scenario x seed matrix fast.
func worldTestConfig(scn *Scenario, tspec TransportSpec, seed int64) Config {
	return Config{
		Scenario:     scn,
		Transport:    tspec,
		Seed:         seed,
		TotalPackets: 220,
		BatchPackets: 20,
	}
}

// digest renders a Result to its canonical JSON byte form — the same
// encoding the golden figure digests hash — so "byte-identical" is checked
// literally.
func digest(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// worldSpecs returns one usable TransportSpec per registered transport
// (paced UDP needs its gap filled in).
func worldSpecs() []TransportSpec {
	var specs []TransportSpec
	for _, info := range Transports() {
		spec := TransportSpec{Name: info.Name}
		if info.Name == "pacedudp" {
			spec.UDPGap = 20 * time.Millisecond
		}
		specs = append(specs, spec)
	}
	return specs
}

// TestWorldByteIdenticalAllTransports asserts that for every registered
// transport, runs on a single reused World are byte-identical to fresh
// builds, across seeds, static and mobile scenarios, and both routing
// substrates. One World serves the whole interleaved sequence, so the test
// also exercises shape transitions (node counts, routing, placement
// changes) between consecutive reuses.
func TestWorldByteIdenticalAllTransports(t *testing.T) {
	scenarios := []func() *Scenario{
		func() *Scenario { return Chain(3) },
		func() *Scenario { return Chain(2).WithRouting(RoutingStatic) },
		func() *Scenario { return RandomField(12, 800, 800, 2) },
		func() *Scenario {
			return Chain(3).WithMobility(MobilitySpec{
				Kind:     MobilityRandomWaypoint,
				MaxSpeed: 5,
				Pause:    time.Second,
			})
		},
	}
	w := NewWorld()
	for _, spec := range worldSpecs() {
		for si, mk := range scenarios {
			if spec.Name == "pacedudp" && si == 3 {
				// Keep the mobile matrix to a spot check; UDP's mobile
				// behavior is covered by the AODV static/random cases.
				continue
			}
			for _, seed := range []int64{1, 7} {
				name := fmt.Sprintf("%s/scn%d/seed%d", spec.Name, si, seed)
				cfg := worldTestConfig(mk(), spec, seed)
				fresh, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}
				reused, err := w.Run(cfg)
				if err != nil {
					t.Fatalf("%s: arena run: %v", name, err)
				}
				if df, dr := digest(t, fresh), digest(t, reused); df != dr {
					t.Errorf("%s: arena result differs from fresh\nfresh:  %.200s\narena:  %.200s", name, df, dr)
				}
			}
		}
	}
}

// TestWorldRepeatedSameConfig asserts back-to-back reuse of one config is
// stable (the common Campaign replicate pattern) and that distinct seeds
// still produce distinct results through the arena.
func TestWorldRepeatedSameConfig(t *testing.T) {
	w := NewWorld()
	cfg := worldTestConfig(Chain(3), TransportSpec{Name: "vegas"}, 3)
	first, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, first) != digest(t, second) {
		t.Error("same config twice on one arena: results differ")
	}
	other, err := w.Run(worldTestConfig(Chain(3), TransportSpec{Name: "vegas"}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, first) == digest(t, other) {
		t.Error("different seeds produced identical results (arena state leaking?)")
	}
}

// TestWorldErrorDoesNotPoison asserts a failed build drops the arena
// cleanly: the next valid run still matches a fresh one.
func TestWorldErrorDoesNotPoison(t *testing.T) {
	w := NewWorld()
	good := worldTestConfig(Chain(3), TransportSpec{Name: "newreno"}, 5)
	if _, err := w.Run(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Transport = TransportSpec{Name: "no-such-transport"}
	if _, err := w.Run(bad); err == nil {
		t.Fatal("invalid transport accepted")
	}
	fresh, err := Run(good)
	if err != nil {
		t.Fatal(err)
	}
	again, err := w.Run(good)
	if err != nil {
		t.Fatalf("arena run after error: %v", err)
	}
	if digest(t, fresh) != digest(t, again) {
		t.Error("arena result differs from fresh after an intervening build error")
	}
}
