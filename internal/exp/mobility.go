package exp

import (
	"fmt"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// mobilitySpeeds is the x-axis of the mobility experiment: maximum random
// waypoint speed in m/s (0 = the paper's static setting).
var mobilitySpeeds = []float64{0, 2.5, 5, 10, 20}

// mobilityVariants are the compared transports: the paper's headline pair
// with and without dynamic ACK thinning.
var mobilityVariants = []struct {
	name string
	t    core.TransportSpec
}{
	{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
	{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}},
	{"Vegas Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2, AckThinning: true}},
	{"NewReno Thin", core.TransportSpec{Protocol: core.ProtoNewReno, AckThinning: true}},
}

// mobilityCfg is one flow across the 21 grid nodes, which roam their
// bounding box by random waypoint at up to maxSpeed. The endpoints are the
// middle row's ends — edge midpoints keep relay coverage under the random
// waypoint density (corners go dark for long stretches) — and stay pinned,
// so the ~6-hop path length is controlled while the relays churn. The
// field (1200x400 m at 250 m range) is dense enough that partitions heal
// quickly, and AODV's repair machinery — finally facing genuine route
// breaks — gets continuously exercised.
func mobilityCfg(maxSpeed float64, t core.TransportSpec) core.Config {
	scn := core.Grid().WithFlows(core.Flow{Src: 7, Dst: 13})
	if maxSpeed > 0 {
		scn.Mobility = core.MobilitySpec{
			Kind:     core.MobilityRandomWaypoint,
			MaxSpeed: maxSpeed,
			Pause:    2 * time.Second,
			// Only relays move: otherwise the endpoints drift toward the
			// field center (the RWP density concentration) and the path
			// shortens with speed, masking the route-churn effect under
			// measurement.
			PinFlowEndpoints: true,
		}
	}
	return core.Config{
		Scenario:  scn,
		Bandwidth: phy.Rate2Mbps,
		Transport: t,
		// Guard against a rare long partition stalling the sweep.
		MaxSimTime: 2 * time.Hour,
	}
}

func speedLabel(v float64) string { return fmt.Sprintf("%g", v) }

// Mobility is the first experiment beyond the paper's static world: goodput
// of Vegas vs NewReno (with and without ACK thinning) as a function of
// maximum node speed, with retransmissions and the true/false route-failure
// split in the notes. At speed 0 every route failure is false (the paper's
// pathology); at nonzero speed genuine breaks appear and goodput degrades
// with speed.
func Mobility(h *Harness) (*Figure, error) {
	f := &Figure{
		ID:     "mobility",
		Title:  "grid field, random waypoint: goodput vs maximum node speed",
		XLabel: "max speed [m/s]",
		YLabel: "goodput [kbit/s]",
	}
	for _, v := range mobilityVariants {
		var cfgs []core.Config
		for _, speed := range mobilitySpeeds {
			cfgs = append(cfgs, mobilityCfg(speed, v.t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{
				X: speedLabel(mobilitySpeeds[i]), Y: kbit(res.AggGoodput.Mean), CI: kbit(res.AggGoodput.HalfCI),
			})
			f.Notes = append(f.Notes, fmt.Sprintf("%s / %s m/s: rtx=%.4f true-rf=%d false-rf=%d%s",
				v.name, speedLabel(mobilitySpeeds[i]), res.Rtx.Mean,
				res.TrueRouteFailures, res.FalseRouteFailures, truncatedMark(res)))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

func truncatedMark(res *core.Result) string {
	if res.Truncated {
		return " (truncated)"
	}
	return ""
}
