package tcp

import (
	"testing"
	"time"

	"manetsim/internal/pkt"
)

// ccVariants enumerates every congestion-control strategy the package
// ships — the same set the core registry exposes as window-based
// transports. The conformance suite below runs each one through the
// single-bottleneck pipe under clean, lossy, reordering and blackout
// conditions and asserts the invariants any correct variant must hold.
var ccVariants = []struct {
	name string
	mk   func() CongestionControl
}{
	{"vegas", func() CongestionControl { return NewVegasCC() }},
	{"newreno", func() CongestionControl { return NewNewRenoCC() }},
	{"reno", func() CongestionControl { return NewRenoCC1990() }},
	{"tahoe", func() CongestionControl { return NewTahoeCC() }},
	{"westwood", func() CongestionControl { return NewWestwoodCC() }},
	{"pacing", func() CongestionControl { return NewPacingCC() }},
}

func forEachCC(t *testing.T, run func(t *testing.T, mk func() CongestionControl)) {
	for _, v := range ccVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			run(t, v.mk)
		})
	}
}

// TestConformanceCleanPath: on a loss-free path every variant must
// deliver a contiguous in-order stream at reasonable utilization, without
// retransmissions or timeouts.
func TestConformanceCleanPath(t *testing.T) {
	forEachCC(t, func(t *testing.T, mk func() CongestionControl) {
		pp := newPipe(1, 10*time.Millisecond, time.Millisecond, 0)
		e := pp.connect(Config{}, mk())
		pp.run(5 * time.Second)
		st := e.Stats()
		if st.Timeouts != 0 || st.Retransmits != 0 {
			t.Errorf("clean path: timeouts=%d rtx=%d, want 0/0", st.Timeouts, st.Retransmits)
		}
		if got := pp.sink.Stats().GoodputPackets; got < 500 {
			t.Errorf("clean path goodput = %d packets in 5s, implausibly low", got)
		}
		if w := e.Window(); w < 1 {
			t.Errorf("window %v below 1", w)
		}
		if pp.sink.RcvNext() != int64(pp.sink.Stats().GoodputPackets) {
			t.Errorf("stream not contiguous: rcvNext=%d goodput=%d",
				pp.sink.RcvNext(), pp.sink.Stats().GoodputPackets)
		}
	})
}

// TestConformanceSingleLoss: one dropped data packet must be recovered
// and the transfer must continue; the hole is filled exactly once per
// recovery mechanism (no endless duplicate retransmissions).
func TestConformanceSingleLoss(t *testing.T) {
	forEachCC(t, func(t *testing.T, mk func() CongestionControl) {
		pp := newPipe(1, 10*time.Millisecond, time.Millisecond, 0)
		dropped := false
		pp.dropData = func(h *pkt.TCPHeader) bool {
			if h.Seq == 30 && !h.Retransmit && !dropped {
				dropped = true
				return true
			}
			return false
		}
		e := pp.connect(Config{}, mk())
		pp.run(5 * time.Second)
		if !dropped {
			t.Fatal("loss never injected")
		}
		if e.Stats().Retransmits == 0 {
			t.Error("lost packet never retransmitted")
		}
		if got := pp.sink.Stats().GoodputPackets; got < 400 {
			t.Errorf("goodput = %d, transfer stalled after single loss", got)
		}
		if rtx := e.Stats().Retransmits; rtx > 20 {
			t.Errorf("retransmits = %d for one loss, recovery is thrashing", rtx)
		}
	})
}

// TestConformanceReorder: a swap of two adjacent data packets (no loss at
// all) must not trigger a timeout and must cost at most a spurious fast
// retransmission.
func TestConformanceReorder(t *testing.T) {
	forEachCC(t, func(t *testing.T, mk func() CongestionControl) {
		pp := newPipe(1, 10*time.Millisecond, time.Millisecond, 0)
		// Delay packet 40 by swallowing it and re-injecting it after 41
		// arrives: classic adjacent-swap reordering.
		var held *pkt.Packet
		pp.dropData = func(h *pkt.TCPHeader) bool {
			return h.Seq == 40 && !h.Retransmit && held == nil
		}
		e := pp.connect(Config{}, mk())
		reinjected := false
		var watch func()
		watch = func() {
			if !reinjected && pp.sink.RcvNext() == 40 && pp.sink.Stats().OutOfOrder > 0 {
				reinjected = true
				p := pp.uids.NewTCP()
				p.Kind = pkt.KindTCPData
				p.Size = pkt.TCPDataSize
				p.TCP.Flow = 1
				p.TCP.Seq = 40
				p.TCP.SentAt = pp.sched.Now()
				pp.sink.HandleData(p)
			}
			if !reinjected {
				pp.sched.After(time.Millisecond, watch)
			}
		}
		pp.sched.At(0, watch)
		pp.run(5 * time.Second)
		if !reinjected {
			t.Skip("reorder window never opened at this seed; nothing to assert")
		}
		if got := e.Stats().Timeouts; got != 0 {
			t.Errorf("timeouts = %d on pure reordering, want 0", got)
		}
		if got := pp.sink.Stats().GoodputPackets; got < 400 {
			t.Errorf("goodput = %d, stalled on reordering", got)
		}
	})
}

// TestConformanceBlackout: a 800ms total outage must force a coarse
// timeout, and the transfer must resume afterwards with the stream still
// contiguous.
func TestConformanceBlackout(t *testing.T) {
	forEachCC(t, func(t *testing.T, mk func() CongestionControl) {
		pp := newPipe(1, 10*time.Millisecond, time.Millisecond, 0)
		blackout := false
		pp.dropData = func(*pkt.TCPHeader) bool { return blackout }
		e := pp.connect(Config{}, mk())
		pp.sched.At(500*time.Millisecond, func() { blackout = true })
		pp.sched.At(1300*time.Millisecond, func() { blackout = false })
		pp.run(6 * time.Second)
		if e.Stats().Timeouts == 0 {
			t.Error("no coarse timeout during a 800ms blackout")
		}
		if got := pp.sink.Stats().GoodputPackets; got < 400 {
			t.Errorf("goodput = %d, did not resume after blackout", got)
		}
		if pp.sink.RcvNext() != int64(pp.sink.Stats().GoodputPackets) {
			t.Errorf("stream not contiguous after recovery: rcvNext=%d goodput=%d",
				pp.sink.RcvNext(), pp.sink.Stats().GoodputPackets)
		}
	})
}

// TestConformanceWindowNeverExceedsWmax sweeps a tight receiver window
// and asserts no variant overruns it (flight size bounded by Wmax).
func TestConformanceWindowNeverExceedsWmax(t *testing.T) {
	forEachCC(t, func(t *testing.T, mk func() CongestionControl) {
		pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
		e := pp.connect(Config{Wmax: 5}, mk())
		maxFlight := int64(0)
		var probe func()
		probe = func() {
			if f := e.InFlight(); f > maxFlight {
				maxFlight = f
			}
			pp.sched.After(time.Millisecond, probe)
		}
		pp.sched.At(0, probe)
		pp.run(3 * time.Second)
		if maxFlight > 5 {
			t.Errorf("flight size reached %d with Wmax=5", maxFlight)
		}
	})
}

// TestWestwoodSingleRandomLossOutperformsReno pins the variant's point:
// after an isolated (non-congestion) loss, Westwood+'s bandwidth-estimate
// backoff keeps the window higher than Reno-family halving.
func TestWestwoodSingleRandomLossOutperformsReno(t *testing.T) {
	run := func(mk func() CongestionControl) (goodput int, rtx uint64) {
		// Window-limited path: the bottleneck is fast (100µs service) but
		// the RTT dominates, so goodput tracks the window directly —
		// cwnd/RTT — and the post-loss operating point is what the two
		// backoff policies actually disagree about. Isolated losses every
		// 150 packets are pure wireless-style corruption, not congestion:
		// the path never queues, so the bandwidth estimate stays near the
		// pre-loss window while Reno halves blindly.
		pp := newPipe(3, 10*time.Millisecond, 100*time.Microsecond, 0)
		pp.dropData = func(h *pkt.TCPHeader) bool {
			return !h.Retransmit && h.Seq > 0 && h.Seq%150 == 0
		}
		e := pp.connect(Config{}, mk())
		pp.run(10 * time.Second)
		return int(pp.sink.Stats().GoodputPackets), e.Stats().Retransmits
	}
	wwGood, _ := run(func() CongestionControl { return NewWestwoodCC() })
	renoGood, _ := run(func() CongestionControl { return NewRenoCC1990() })
	if wwGood <= renoGood {
		t.Errorf("Westwood+ goodput %d <= Reno %d under isolated random loss; bandwidth-estimate backoff buys nothing",
			wwGood, renoGood)
	}
}

// TestPacingSpacesTransmissions pins the adaptive-pacing mechanism: with
// an established RTT estimate, back-to-back data departures at the sender
// are separated by at least the pacing floor, where an unpaced Reno
// bursts the whole window at once.
func TestPacingSpacesTransmissions(t *testing.T) {
	gaps := func(mk func() CongestionControl, floor time.Duration) (minGap time.Duration, n int) {
		pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
		var last time.Duration = -1
		minGap = time.Hour
		base := pp.dataOut
		out := func(p *pkt.Packet) {
			now := pp.sched.Now()
			if last >= 0 && now > time.Second { // skip startup
				if g := now - last; g < minGap {
					minGap = g
				}
				n++
			}
			last = now
			base(p)
		}
		e := NewEngine(pp.sched, Config{MinPaceGap: floor}, 1, 0, 1, &pp.uids, out, mk())
		pp.sender = e
		pp.sink = NewSink(pp.sched, 1, 1, 0, AckEveryPacket, &pp.uids, pp.ackOut)
		pp.run(3 * time.Second)
		return minGap, n
	}
	floor := 500 * time.Microsecond
	paced, pn := gaps(func() CongestionControl { return NewPacingCC() }, floor)
	burst, bn := gaps(func() CongestionControl { return NewNewRenoCC() }, floor)
	if pn == 0 || bn == 0 {
		t.Fatalf("no steady-state transmissions observed (paced=%d burst=%d)", pn, bn)
	}
	if paced < floor {
		t.Errorf("paced sender emitted back-to-back packets %v apart, floor is %v", paced, floor)
	}
	if burst >= floor {
		t.Errorf("unpaced NewReno never burst below %v (min gap %v); pipe too slow to discriminate", floor, burst)
	}
}

// TestConformanceLabels keeps the table in sync with the strategies the
// package exports: adding a CC without extending ccVariants fails here.
func TestConformanceLabels(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range ccVariants {
		if seen[v.name] {
			t.Fatalf("duplicate conformance entry %q", v.name)
		}
		seen[v.name] = true
		if v.mk() == nil {
			t.Fatalf("%s: nil strategy", v.name)
		}
	}
	if len(ccVariants) != 6 {
		t.Errorf("conformance table covers %d variants; update it when adding strategies", len(ccVariants))
	}
}
