package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainSpacing(t *testing.T) {
	pts := Chain(7)
	if len(pts) != 8 {
		t.Fatalf("7-hop chain has %d nodes, want 8", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Distance(pts[i-1]); math.Abs(d-200) > 1e-9 {
			t.Errorf("spacing between %d and %d = %v, want 200", i-1, i, d)
		}
	}
	// Hidden-terminal geometry from the paper: node i is 600 m from node
	// i-3 (outside 550 m carrier sense) but 400 m from node i-2 (inside
	// 550 m interference range).
	if d := pts[4].Distance(pts[1]); math.Abs(d-600) > 1e-9 {
		t.Errorf("node4-node1 distance = %v, want 600", d)
	}
	if d := pts[4].Distance(pts[2]); math.Abs(d-400) > 1e-9 {
		t.Errorf("node4-node2 distance = %v, want 400", d)
	}
}

func TestChainPanicsOnZeroHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Chain(0) did not panic")
		}
	}()
	Chain(0)
}

func TestGrid21Layout(t *testing.T) {
	pts, flows := Grid21()
	if len(pts) != 21 {
		t.Fatalf("grid has %d nodes, want 21", len(pts))
	}
	if len(flows) != 6 {
		t.Fatalf("grid has %d flows, want 6", len(flows))
	}
	// All horizontally/vertically adjacent nodes 200 m apart.
	for r := 0; r < 3; r++ {
		for c := 0; c < 7; c++ {
			i := r*7 + c
			if c > 0 {
				if d := pts[i].Distance(pts[i-1]); math.Abs(d-200) > 1e-9 {
					t.Errorf("horizontal spacing at %d = %v", i, d)
				}
			}
			if r > 0 {
				if d := pts[i].Distance(pts[i-7]); math.Abs(d-200) > 1e-9 {
					t.Errorf("vertical spacing at %d = %v", i, d)
				}
			}
		}
	}
	// Three horizontal flows span rows (6 hops), three vertical span
	// columns (2 hops).
	horiz, vert := 0, 0
	for _, f := range flows {
		dy := pts[f.Src].Y - pts[f.Dst].Y
		dx := pts[f.Src].X - pts[f.Dst].X
		switch {
		case dy == 0 && math.Abs(dx) == 1200:
			horiz++
		case dx == 0 && math.Abs(dy) == 400:
			vert++
		default:
			t.Errorf("unexpected flow geometry %v -> %v", pts[f.Src], pts[f.Dst])
		}
	}
	if horiz != 3 || vert != 3 {
		t.Errorf("flows: %d horizontal, %d vertical; want 3 and 3", horiz, vert)
	}
}

func TestRandomTopologyConnectedAndInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := RandomConfig{N: 120, Width: 2500, Height: 1000, Range: 250}
	pts, attempts := Random(cfg, rng)
	if len(pts) != 120 {
		t.Fatalf("random topology has %d nodes, want 120", len(pts))
	}
	if attempts < 1 {
		t.Errorf("attempts = %d, want >=1", attempts)
	}
	for i, p := range pts {
		if p.X < 0 || p.X > 2500 || p.Y < 0 || p.Y > 1000 {
			t.Errorf("node %d at %v outside area", i, p)
		}
	}
	if !Connected(pts, 250) {
		t.Error("accepted topology is not connected")
	}
}

func TestRandomTopologyDeterministicPerSeed(t *testing.T) {
	cfg := RandomConfig{N: 30, Width: 1000, Height: 1000, Range: 250}
	a, _ := Random(cfg, rand.New(rand.NewSource(7)))
	b, _ := Random(cfg, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different placements at node %d", i)
		}
	}
}

func TestConnected(t *testing.T) {
	line := []Point{{0, 0}, {200, 0}, {400, 0}}
	if !Connected(line, 250) {
		t.Error("200m-spaced line should be connected at 250m range")
	}
	if Connected(line, 150) {
		t.Error("200m-spaced line should be disconnected at 150m range")
	}
	if Connected(nil, 250) {
		t.Error("empty set should not be connected")
	}
	if !Connected([]Point{{5, 5}}, 1) {
		t.Error("single node should be trivially connected")
	}
}

func TestNeighborsChainRanges(t *testing.T) {
	pts := Chain(7)
	tx := Neighbors(pts, 250)
	cs := Neighbors(pts, 550)
	// Transmission range: only immediate neighbors.
	if len(tx[3]) != 2 || tx[3][0] != 2 || tx[3][1] != 4 {
		t.Errorf("tx neighbors of node 3 = %v, want [2 4]", tx[3])
	}
	if len(tx[0]) != 1 || tx[0][0] != 1 {
		t.Errorf("tx neighbors of node 0 = %v, want [1]", tx[0])
	}
	// Carrier-sense range: up to two hops away (400 m <= 550 < 600).
	if len(cs[3]) != 4 {
		t.Errorf("cs neighbors of node 3 = %v, want 4 nodes", cs[3])
	}
	for _, j := range cs[3] {
		if j < 1 || j > 5 {
			t.Errorf("cs neighbor %d of node 3 outside [1,5]", j)
		}
	}
}

func TestPickFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flows := PickFlows(120, 10, rng)
	if len(flows) != 10 {
		t.Fatalf("got %d flows, want 10", len(flows))
	}
	seen := map[[2]int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Errorf("flow with identical endpoints: %+v", f)
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			t.Errorf("duplicate flow %+v", f)
		}
		seen[key] = true
		if f.Src < 0 || f.Src >= 120 || f.Dst < 0 || f.Dst >= 120 {
			t.Errorf("flow endpoint out of range: %+v", f)
		}
	}
}

func TestQuickNeighborsSymmetric(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		nb := Neighbors(pts, 300)
		adj := make(map[[2]int]bool)
		for i, list := range nb {
			for _, j := range list {
				adj[[2]int{i, j}] = true
			}
		}
		for k := range adj {
			if !adj[[2]int{k[1], k[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		dab, dba := a.Distance(b), b.Distance(a)
		// Symmetry, identity, triangle inequality.
		return dab == dba &&
			a.Distance(a) == 0 &&
			a.Distance(c) <= dab+b.Distance(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundsAndRect(t *testing.T) {
	pts, _ := Grid21()
	r := Bounds(pts)
	if r.Min != (Point{0, 0}) || r.Max != (Point{1200, 400}) {
		t.Errorf("grid bounds = %v..%v, want (0,0)..(1200,400)", r.Min, r.Max)
	}
	if r.Width() != 1200 || r.Height() != 400 {
		t.Errorf("width/height = %v/%v, want 1200/400", r.Width(), r.Height())
	}
	if !r.Contains(Point{600, 200}) || r.Contains(Point{600, 401}) {
		t.Error("Contains wrong around the grid bounds")
	}
	if got := r.Clamp(Point{-50, 500}); got != (Point{0, 400}) {
		t.Errorf("Clamp(-50,500) = %v, want (0,400)", got)
	}
	if got := r.Clamp(Point{600, 200}); got != (Point{600, 200}) {
		t.Errorf("Clamp of an interior point moved it to %v", got)
	}
}

func TestBoundsDegenerate(t *testing.T) {
	// A chain's bounding box is a horizontal segment.
	r := Bounds(Chain(4))
	if r.Height() != 0 || r.Width() != 4*NodeSpacing {
		t.Errorf("chain bounds = %v..%v", r.Min, r.Max)
	}
	if got := (Rect{}); Bounds(nil) != got {
		t.Errorf("Bounds(nil) = %v, want zero rect", Bounds(nil))
	}
}
