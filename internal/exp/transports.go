package exp

import (
	"fmt"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// Transports is the transport-regression experiment backing the golden
// digests: every window-based variant the simulator ships plus the paced
// UDP reference, on the 4- and 7-hop chains at 2 Mbit/s. Unlike the
// figure experiments it fixes the UDP pacing gap (36 ms, the paper's
// 7-hop optimum at 2 Mbit/s) instead of sweeping for it, so the digest
// covers exactly one deterministic run per variant and hop count.
func Transports(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "transports", Title: "h-hop chain, 2 Mbit/s: every transport variant",
		XLabel: "hops", YLabel: "goodput [kbit/s]",
	}
	variants := []struct {
		name string
		t    core.TransportSpec
	}{
		{"Tahoe", core.TransportSpec{Protocol: core.ProtoTahoe}},
		{"Reno", core.TransportSpec{Protocol: core.ProtoReno}},
		{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}},
		{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
		{"Paced UDP", core.TransportSpec{Protocol: core.ProtoPacedUDP, UDPGap: 36 * time.Millisecond}},
	}
	hopsAxis := []int{4, 7}
	for _, v := range variants {
		var cfgs []core.Config
		for _, hops := range hopsAxis {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, v.t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(hopsAxis[i]), Y: kbit(res.AggGoodput.Mean)})
			f.Notes = append(f.Notes, fmt.Sprintf("%s h=%d: rtx=%.4f win=%.2f",
				v.name, hopsAxis[i], res.Rtx.Mean, res.AvgWindow.Mean))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// CCExtensions is the golden-digest experiment for the registry-shipped
// congestion-control extensions — TCP Westwood+ and the rate-based
// adaptive-pacing sender — next to the paper's two main variants for
// context, on the 4- and 7-hop chains at 2 Mbit/s. Selection goes through
// TransportSpec.Name, so the digest also pins name-based registry
// resolution end to end.
func CCExtensions(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "ccextensions", Title: "h-hop chain, 2 Mbit/s: Westwood+ and adaptive pacing vs the paper's variants",
		XLabel: "hops", YLabel: "goodput [kbit/s]",
	}
	variants := []core.TransportSpec{
		{Name: "newreno"},
		{Name: "vegas", Alpha: 2},
		{Name: "westwood"},
		{Name: "pacing"},
	}
	hopsAxis := []int{4, 7}
	for _, t := range variants {
		var cfgs []core.Config
		for _, hops := range hopsAxis {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: t.Label()}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(hopsAxis[i]), Y: kbit(res.AggGoodput.Mean)})
			f.Notes = append(f.Notes, fmt.Sprintf("%s h=%d: rtx=%.4f win=%.2f",
				t.Label(), hopsAxis[i], res.Rtx.Mean, res.AvgWindow.Mean))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
