package mac

import (
	"fmt"
	"time"

	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// phase tracks where the MAC is in the DCF exchange for the packet in
// service.
type phase int

const (
	phaseIdle     phase = iota // nothing in service
	phaseContend               // contending (IFS + backoff) for cur
	phaseTxRTS                 // RTS on the air
	phaseWaitCTS               // CTS response timer running
	phaseSIFSData              // SIFS gap before sending DATA
	phaseTxData                // DATA on the air
	phaseWaitAck               // ACK response timer running
	phaseTxBcast               // broadcast data on the air
)

// Config parameterizes a DCF instance.
type Config struct {
	DataRate phy.Rate
	QueueCap int // 0 means DefaultQueueCap

	// RTSThreshold enables 802.11 basic access for short frames: a
	// unicast packet whose network-layer size is at most RTSThreshold
	// bytes skips the RTS/CTS handshake and goes straight from the
	// contention defer to DATA (still ACK-protected; failed attempts
	// count against the long retry limit and re-contend). 0 keeps
	// today's behavior — RTS/CTS on every unicast frame. Set it above
	// the largest packet size to disable RTS/CTS entirely (the
	// dot11RTSThreshold=off configuration).
	RTSThreshold int
}

// Callbacks connect the MAC to the layer above.
type Callbacks struct {
	// Deliver hands a received network packet up (from = previous hop).
	Deliver func(p *pkt.Packet, from pkt.NodeID)
	// LinkFailure reports a unicast packet dropped after retry
	// exhaustion; the routing layer reacts with a (false) route failure.
	LinkFailure func(p *pkt.Packet, nextHop pkt.NodeID)
}

// txItem is one queued network packet with its link-layer next hop.
type txItem struct {
	p       *pkt.Packet
	nextHop pkt.NodeID
}

// DCF is the per-node 802.11 MAC entity.
type DCF struct {
	sched        *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the MAC
	radio        *phy.Radio
	timing       Timing
	cb           Callbacks //manetsim:resetsafe wiring to the owning node; rebound only when the node is rebuilt
	qcap         int
	rtsThreshold int

	queue []txItem
	// cur points at curSlot while a packet is in service (a fixed slot, so
	// taking a packet into service never allocates).
	cur     *txItem
	curSlot txItem

	ph           phase
	cw           int
	backoffSlots int
	counting     bool
	countStart   sim.Time
	curIFS       time.Duration
	useEIFS      bool

	deferTimer *sim.Timer
	ctsTimer   *sim.Timer
	ackTimer   *sim.Timer
	navTimer   *sim.Timer
	navUntil   sim.Time

	ssrc, slrc int

	respInFlight bool
	respPending  bool

	// down marks a crashed node (fault injection): the MAC neither serves
	// its queue nor responds until Activate. The PHY suppresses handler
	// indications for down nodes, so the flag only guards entry points
	// reachable from this node's own layers and pre-crash scheduled
	// events.
	down bool

	// receiver-side duplicate suppression (ACK lost => MAC retransmits)
	seen     map[uint64]bool
	seenRing []uint64
	seenIdx  int

	// freeFrame recycles this node's transmitted frames once the channel
	// releases them, so steady-state traffic builds frames without
	// allocating.
	freeFrame *Frame //manetsim:resetsafe freelist survives resets; frames are re-zeroed on release

	Counters Counters
}

var _ phy.Handler = (*DCF)(nil)

// New creates a DCF bound to a radio and installs itself as the radio's
// PHY handler.
func New(sched *sim.Scheduler, radio *phy.Radio, cfg Config, cb Callbacks) *DCF {
	if cb.Deliver == nil || cb.LinkFailure == nil {
		panic("mac: both callbacks are required")
	}
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = DefaultQueueCap
	}
	d := &DCF{
		sched:        sched,
		radio:        radio,
		timing:       NewTiming(cfg.DataRate),
		cb:           cb,
		qcap:         qcap,
		rtsThreshold: cfg.RTSThreshold,
		cw:           CWMin,
		seen:         make(map[uint64]bool),
		seenRing:     make([]uint64, 128),
	}
	d.deferTimer = sim.NewTimer(sched, d.onDeferDone)
	d.ctsTimer = sim.NewTimer(sched, d.onCTSTimeout)
	d.ackTimer = sim.NewTimer(sched, d.onAckTimeout)
	d.navTimer = sim.NewTimer(sched, d.kick)
	radio.SetHandler(d)
	radio.OnFrameReleased = d.frameReleased
	return d
}

// Reset rewinds the MAC to its just-constructed state for a new run over
// the same radio, keeping the frame freelist, and reinstalls itself as the
// radio's handler (a radio reset clears it). Call after the scheduler was
// reset: the MAC's timers and pending response events are already swept,
// and queued or in-flight packets from the previous run belong to a pool
// that dropped them, so the references are simply forgotten. Frames that
// were on the air are likewise dropped to the garbage collector — the
// freelist only ever holds properly recycled frames.
func (d *DCF) Reset(cfg Config) {
	d.timing = NewTiming(cfg.DataRate)
	d.qcap = cfg.QueueCap
	if d.qcap == 0 {
		d.qcap = DefaultQueueCap
	}
	d.rtsThreshold = cfg.RTSThreshold
	for i := range d.queue {
		d.queue[i] = txItem{}
	}
	d.queue = d.queue[:0]
	d.cur = nil
	d.curSlot = txItem{}
	d.ph = phaseIdle
	d.cw = CWMin
	d.backoffSlots = 0
	d.counting = false
	d.countStart = 0
	d.curIFS = 0
	d.useEIFS = false
	d.deferTimer.Stop()
	d.ctsTimer.Stop()
	d.ackTimer.Stop()
	d.navTimer.Stop()
	d.navUntil = 0
	d.ssrc, d.slrc = 0, 0
	d.respInFlight = false
	d.respPending = false
	d.down = false
	clear(d.seen)
	for i := range d.seenRing {
		d.seenRing[i] = 0
	}
	d.seenIdx = 0
	d.Counters = Counters{}
	d.radio.SetHandler(d)
	d.radio.OnFrameReleased = d.frameReleased
}

// Deactivate crashes the MAC mid-run: every timer stops, the queue and
// the packet in service are released, and the contention state machine
// returns to idle. Counters are preserved — a crash must not disturb the
// run's cumulative batch deltas. A frame already on the air completes
// (the PHY drops its completion indication); frames released by the
// channel keep recycling into the pool while the node is down.
func (d *DCF) Deactivate() {
	d.down = true
	d.deferTimer.Stop()
	d.ctsTimer.Stop()
	d.ackTimer.Stop()
	d.navTimer.Stop()
	for i := range d.queue {
		d.queue[i].p.Release()
		d.queue[i] = txItem{}
	}
	d.queue = d.queue[:0]
	if d.cur != nil {
		d.cur.p.Release()
		d.cur = nil
		d.curSlot = txItem{}
	}
	d.ph = phaseIdle
	d.cw = CWMin
	d.backoffSlots = 0
	d.counting = false
	d.countStart = 0
	d.curIFS = 0
	d.useEIFS = false
	d.navUntil = 0
	d.ssrc, d.slrc = 0, 0
	d.respInFlight = false
	d.respPending = false
}

// Activate restarts a crashed MAC with fresh contention state (stale NAV
// reservations from before the crash are discarded; counters carry over)
// and resumes service of whatever the layers above enqueue next.
func (d *DCF) Activate() {
	d.down = false
	d.cw = CWMin
	d.useEIFS = false
	d.kick()
}

// newFrame takes a frame from the transmit pool (or allocates one). The
// caller must set every field it needs; recycled frames come back zeroed.
func (d *DCF) newFrame() *Frame {
	f := d.freeFrame
	if f != nil {
		d.freeFrame = f.next
		f.next = nil
		return f
	}
	return &Frame{}
}

// frameReleased is the radio's frame-release hook: the channel holds no
// more references to the frame, so it can carry the next transmission.
func (d *DCF) frameReleased(frame any) {
	f, ok := frame.(*Frame)
	if !ok {
		return
	}
	d.recycleFrame(f)
}

func (d *DCF) recycleFrame(f *Frame) {
	if f.Payload != nil {
		// The air reference taken when the frame was built.
		f.Payload.Release()
	}
	f.Type = 0
	f.From, f.To = 0, 0
	f.Duration = 0
	f.Payload = nil
	f.respMAC, f.respAir, f.respCounter = nil, 0, nil
	f.next = d.freeFrame
	d.freeFrame = f
}

// ID returns the node id of this MAC's radio.
func (d *DCF) ID() pkt.NodeID { return d.radio.ID() }

// QueueLen returns the number of packets waiting (excluding the one in
// service).
func (d *DCF) QueueLen() int { return len(d.queue) }

// Enqueue submits a network packet for transmission to nextHop (or
// pkt.Broadcast). It reports false when the interface queue is full and
// the packet was dropped.
//
//manetsim:hotpath
func (d *DCF) Enqueue(p *pkt.Packet, nextHop pkt.NodeID) bool {
	if d.down {
		// Crashed interface: consume and discard without counting — the
		// node is off, not congested.
		p.Release()
		return false
	}
	if nextHop == pkt.Broadcast {
		d.Counters.BcastSubmitted++
	} else {
		d.Counters.DataSubmitted++
	}
	if len(d.queue) >= d.qcap {
		d.Counters.QueueDrops++
		p.Release() // ownership came with the call; a full queue consumes it
		return false
	}
	d.queue = append(d.queue, txItem{p: p, nextHop: nextHop})
	d.kick()
	return true
}

// FilterQueue removes queued packets for which keep returns false and
// returns them (head-of-line packet in service is not affected). Routing
// uses this to pull packets for an invalidated next hop out of the queue.
func (d *DCF) FilterQueue(keep func(p *pkt.Packet, nextHop pkt.NodeID) bool) []*pkt.Packet {
	var removed []*pkt.Packet
	kept := d.queue[:0]
	for _, item := range d.queue {
		if keep(item.p, item.nextHop) {
			kept = append(kept, item)
		} else {
			removed = append(removed, item.p)
		}
	}
	for i := len(kept); i < len(d.queue); i++ {
		d.queue[i] = txItem{}
	}
	d.queue = kept
	return removed
}

// mediumBusy reports physical or virtual (NAV) carrier.
func (d *DCF) mediumBusy() bool {
	return !d.radio.Idle() || d.sched.Now() < d.navUntil
}

// kick advances the contention state machine. It is safe to call at any
// time; it does nothing unless a countdown can start or resume.
func (d *DCF) kick() {
	if d.down || d.respInFlight || d.radio.Transmitting() {
		return
	}
	if d.ph != phaseIdle && d.ph != phaseContend {
		return
	}
	if d.cur == nil {
		if len(d.queue) == 0 {
			return
		}
		d.curSlot = d.queue[0]
		copy(d.queue, d.queue[1:])
		d.queue[len(d.queue)-1] = txItem{}
		d.queue = d.queue[:len(d.queue)-1]
		d.cur = &d.curSlot
		d.ph = phaseContend
		d.ssrc, d.slrc = 0, 0
		d.backoffSlots = d.drawBackoff()
	}
	if d.counting {
		return
	}
	if d.mediumBusy() {
		if now := d.sched.Now(); now < d.navUntil && d.radio.Idle() && !d.navTimer.Pending() {
			d.navTimer.ResetAt(d.navUntil)
		}
		return
	}
	d.curIFS = DIFS
	if d.useEIFS {
		d.curIFS = d.timing.EIFS
	}
	d.counting = true
	d.countStart = d.sched.Now()
	d.deferTimer.Reset(d.curIFS + time.Duration(d.backoffSlots)*SlotTime)
}

// pause suspends a running backoff countdown, banking fully elapsed slots.
func (d *DCF) pause() {
	if !d.counting {
		return
	}
	d.counting = false
	d.deferTimer.Stop()
	elapsed := d.sched.Now() - d.countStart
	if elapsed > d.curIFS {
		consumed := int((elapsed - d.curIFS) / SlotTime)
		d.backoffSlots -= consumed
		if d.backoffSlots < 0 {
			d.backoffSlots = 0
		}
	}
}

// drawBackoff samples a uniform backoff in [0, cw] slots.
func (d *DCF) drawBackoff() int {
	return d.sched.Rand().Intn(d.cw + 1)
}

// growCW doubles the contention window after a failed attempt.
func (d *DCF) growCW() {
	d.cw = 2*(d.cw+1) - 1
	if d.cw > CWMax {
		d.cw = CWMax
	}
}

// onDeferDone fires when IFS+backoff completed with an idle medium: the
// frame in service goes on the air.
func (d *DCF) onDeferDone() {
	d.counting = false
	d.useEIFS = false
	d.backoffSlots = 0
	if d.cur == nil {
		d.ph = phaseIdle
		return
	}
	if d.cur.nextHop == pkt.Broadcast {
		d.ph = phaseTxBcast
		d.Counters.BcastSent++
		f := d.newFrame()
		f.Type = FrameData
		f.From = d.ID()
		f.To = pkt.Broadcast
		f.Payload = d.cur.p
		f.Payload.Retain() // air reference, dropped when the frame recycles
		d.radio.Transmit(f, d.timing.DataAir(d.cur.p.Size))
		return
	}
	if d.rtsThreshold > 0 && d.cur.p.Size <= d.rtsThreshold {
		// Basic access: the frame is short enough that losing it costs
		// less than the handshake. Straight to DATA; the ACK (and the
		// long retry limit) still protect it.
		d.transmitData()
		return
	}
	d.ph = phaseTxRTS
	d.Counters.RTSSent++
	dataAir := d.timing.DataAir(d.cur.p.Size)
	f := d.newFrame()
	f.Type = FrameRTS
	f.From = d.ID()
	f.To = d.cur.nextHop
	f.Duration = 3*SIFS + d.timing.CTSAir + dataAir + d.timing.AckAir
	d.radio.Transmit(f, d.timing.RTSAir)
}

// TxDone implements phy.Handler.
//
//manetsim:hotpath
func (d *DCF) TxDone() {
	if d.respInFlight {
		d.respInFlight = false
		d.kick()
		return
	}
	switch d.ph {
	case phaseTxRTS:
		d.ph = phaseWaitCTS
		d.ctsTimer.Reset(SIFS + d.timing.CTSAir + 2*maxPropDelay + SlotTime)
	case phaseTxData:
		d.ph = phaseWaitAck
		d.ackTimer.Reset(SIFS + d.timing.AckAir + 2*maxPropDelay + SlotTime)
	case phaseTxBcast:
		d.finishCur()
	default:
		// Response frames handled above; nothing else transmits.
	}
}

// finishCur completes service of the current packet (success or broadcast)
// and moves on, dropping the MAC's ownership reference (receivers that got
// the frame hold their own).
func (d *DCF) finishCur() {
	if d.cur != nil {
		d.cur.p.Release()
	}
	d.cur = nil
	d.curSlot = txItem{}
	d.ph = phaseIdle
	d.cw = CWMin
	d.ssrc, d.slrc = 0, 0
	d.kick()
}

// dropCur gives up on the current packet after retry exhaustion.
func (d *DCF) dropCur() {
	// Copy out of the service slot first: the LinkFailure callback may
	// re-enter Enqueue/kick, which reuses the slot.
	p, nextHop := d.cur.p, d.cur.nextHop
	d.cur = nil
	d.curSlot = txItem{}
	d.ph = phaseIdle
	d.cw = CWMin
	d.ssrc, d.slrc = 0, 0
	d.Counters.RetryDrops++
	d.cb.LinkFailure(p, nextHop)
	d.kick()
}

func (d *DCF) onCTSTimeout() {
	if d.ph != phaseWaitCTS {
		return
	}
	d.ssrc++
	d.Counters.Retries++
	if d.ssrc >= ShortRetryLimit {
		d.dropCur()
		return
	}
	d.growCW()
	d.backoffSlots = d.drawBackoff()
	d.ph = phaseContend
	d.kick()
}

func (d *DCF) onAckTimeout() {
	if d.ph != phaseWaitAck {
		return
	}
	d.dataAttemptFailed()
}

// dataAttemptFailed handles a failed DATA attempt (missing ACK or a
// blocked transmission slot): count against the long retry limit and
// re-contend from the RTS stage.
func (d *DCF) dataAttemptFailed() {
	d.slrc++
	d.Counters.Retries++
	if d.slrc >= LongRetryLimit {
		d.dropCur()
		return
	}
	d.growCW()
	d.backoffSlots = d.drawBackoff()
	d.ph = phaseContend
	d.kick()
}

// ChannelBusy implements phy.Handler: energy appeared, pause contention.
func (d *DCF) ChannelBusy() { d.pause() }

// ChannelIdle implements phy.Handler: medium free again, resume.
func (d *DCF) ChannelIdle() { d.kick() }

// RxCorrupted implements phy.Handler: next deferral uses EIFS.
func (d *DCF) RxCorrupted() { d.useEIFS = true }

// RxFrame implements phy.Handler and dispatches by frame type.
func (d *DCF) RxFrame(frame any, from pkt.NodeID) {
	f, ok := frame.(*Frame)
	if !ok {
		panic(fmt.Sprintf("mac: foreign frame type %T", frame))
	}
	d.useEIFS = false
	me := d.ID()
	if f.To != me && f.To != pkt.Broadcast {
		// Overheard frame: virtual carrier sense.
		d.updateNAV(f.Duration)
		return
	}
	switch f.Type {
	case FrameRTS:
		d.onRTS(f, from)
	case FrameCTS:
		d.onCTS(f, from)
	case FrameData:
		d.onData(f, from)
	case FrameAck:
		d.onAck(f, from)
	}
}

func (d *DCF) updateNAV(dur time.Duration) {
	if dur <= 0 {
		return
	}
	until := d.sched.Now() + dur
	if until > d.navUntil {
		d.navUntil = until
		d.pause()
	}
}

// onRTS answers with a CTS after SIFS unless virtual carrier sense forbids
// it (a neighbor's reservation is active).
func (d *DCF) onRTS(f *Frame, from pkt.NodeID) {
	if d.sched.Now() < d.navUntil || d.respPending {
		return
	}
	cts := d.newFrame()
	cts.Type = FrameCTS
	cts.From = d.ID()
	cts.To = from
	cts.Duration = f.Duration - SIFS - d.timing.CTSAir
	d.scheduleResponse(cts, d.timing.CTSAir, &d.Counters.CTSSent)
}

// onCTS resumes the exchange for the packet in service.
func (d *DCF) onCTS(f *Frame, from pkt.NodeID) {
	if d.ph != phaseWaitCTS || d.cur == nil || from != d.cur.nextHop {
		return
	}
	d.ctsTimer.Stop()
	d.ssrc = 0
	d.ph = phaseSIFSData
	d.sched.AfterFunc(SIFS, dcfSendData, d)
}

// dcfSendData is the SIFS-gap trampoline between CTS reception and the
// data transmission (a package function so scheduling does not allocate).
func dcfSendData(a any) { a.(*DCF).sendData() }

func (d *DCF) sendData() {
	if d.ph != phaseSIFSData || d.cur == nil {
		return
	}
	if d.radio.Transmitting() {
		// A scheduled response got in first; treat like a failed attempt.
		d.dataAttemptFailed()
		return
	}
	d.transmitData()
}

// transmitData puts the DATA frame of the packet in service on the air —
// the shared tail of the RTS/CTS exchange and the basic-access path.
func (d *DCF) transmitData() {
	d.ph = phaseTxData
	d.Counters.DataSent++
	f := d.newFrame()
	f.Type = FrameData
	f.From = d.ID()
	f.To = d.cur.nextHop
	f.Duration = SIFS + d.timing.AckAir
	f.Payload = d.cur.p
	f.Payload.Retain() // air reference, dropped when the frame recycles
	d.radio.Transmit(f, d.timing.DataAir(d.cur.p.Size))
}

// onData delivers the payload and always ACKs after SIFS (data receivers
// respond regardless of NAV).
func (d *DCF) onData(f *Frame, from pkt.NodeID) {
	if f.To == pkt.Broadcast {
		f.Payload.Retain() // delivery hands the upper layer its own reference
		d.cb.Deliver(f.Payload, from)
		return
	}
	ack := d.newFrame()
	ack.Type = FrameAck
	ack.From = d.ID()
	ack.To = from
	d.scheduleResponse(ack, d.timing.AckAir, &d.Counters.AckSent)
	uid := f.Payload.UID
	if d.seen[uid] {
		d.Counters.DupsSuppressed++
		return
	}
	d.seen[uid] = true
	if old := d.seenRing[d.seenIdx]; old != 0 {
		delete(d.seen, old)
	}
	d.seenRing[d.seenIdx] = uid
	d.seenIdx = (d.seenIdx + 1) % len(d.seenRing)
	d.Counters.Delivered++
	f.Payload.Retain() // delivery hands the upper layer its own reference
	d.cb.Deliver(f.Payload, from)
}

// onAck completes the exchange for the packet in service.
func (d *DCF) onAck(_ *Frame, from pkt.NodeID) {
	if d.ph != phaseWaitAck || d.cur == nil || from != d.cur.nextHop {
		return
	}
	d.ackTimer.Stop()
	d.finishCur()
}

// scheduleResponse emits a control response (CTS or ACK) exactly SIFS
// after the eliciting frame, without carrier sensing, as the standard
// requires. If the radio happens to be mid-transmission at fire time the
// response is skipped (and the pooled frame recycled right away). The
// pending frame itself carries the response state, so scheduling does not
// allocate a closure.
func (d *DCF) scheduleResponse(f *Frame, airtime time.Duration, counter *uint64) {
	d.respPending = true
	f.respMAC = d
	f.respAir = airtime
	f.respCounter = counter
	d.sched.AfterFunc(SIFS, respFire, f)
}

// respFire is the SIFS-delayed response trampoline.
func respFire(a any) {
	f := a.(*Frame)
	d := f.respMAC
	air, counter := f.respAir, f.respCounter
	f.respMAC, f.respAir, f.respCounter = nil, 0, nil
	d.respPending = false
	if d.down || d.radio.Transmitting() || d.respInFlight {
		d.recycleFrame(f)
		return
	}
	d.pause()
	d.respInFlight = true
	*counter++
	d.radio.Transmit(f, air)
}
