// Package store is the persistent, content-addressed result store behind
// Campaign: it maps a canonical cache-key string (the deterministic JSON
// encoding of a run config) to a stored payload on disk, so completed
// simulation results survive process restarts and are shared between
// processes pointed at the same directory.
//
// Layout and durability model:
//
//   - The on-disk address of a key is the SHA-256 of the key string:
//     <dir>/<aa>/<hash>.json, where <aa> is the first hex byte of the
//     hash (a fan-out that keeps directories small on big sweeps).
//   - Every file is a schema-versioned envelope carrying the full key
//     alongside the payload, so version drift and (theoretical) hash
//     collisions are both detected and treated as misses.
//   - Writes are atomic: the envelope is written to a temp file in the
//     same directory and renamed into place, so readers — including
//     concurrent readers in other processes — only ever observe complete
//     files. Concurrent writers of the same key race benignly: results
//     are deterministic per key, so last-rename-wins is value-identical.
//   - Reads never fail: a missing, truncated, corrupt, zero-length or
//     version-mismatched file is a cache miss, never an error. The store
//     is a cache; re-running the simulation is always a correct fallback.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// envelope is the on-disk frame around a stored payload. SchemaVersion
// pins the payload encoding (results written by an incompatible binary
// must be re-run, not misparsed) and Key guards against hash collisions
// and misplaced files.
type envelope struct {
	SchemaVersion int             `json:"schemaVersion"`
	Key           string          `json:"key"`
	Result        json.RawMessage `json:"result"`
}

// Store is a content-addressed key→payload store rooted at one
// directory. It is safe for concurrent use by multiple goroutines and
// multiple processes.
type Store struct {
	dir    string
	schema int
}

// Open roots a store at dir (created if needed) for payloads of the
// given schema version. Stored entries with any other version read as
// misses.
func Open(dir string, schema int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, schema: schema}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Hash returns the hex SHA-256 of a key — the content address used for
// file placement, and a compact stable identifier for logs and URLs.
func Hash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// Path returns the file a key is stored at (whether or not it exists).
func (s *Store) Path(key string) string {
	h := Hash(key)
	return filepath.Join(s.dir, h[:2], h+".json")
}

// Get returns the payload stored under key. Every failure mode — absent,
// empty, truncated, corrupt, schema-mismatched or key-mismatched file —
// reports a miss.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	b, err := os.ReadFile(s.Path(key))
	if err != nil || len(b) == 0 {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, false
	}
	if env.SchemaVersion != s.schema || env.Key != key || emptyPayload(env.Result) {
		return nil, false
	}
	return env.Result, true
}

// emptyPayload reports an absent payload: a missing result field decodes
// to nil or the literal null, neither of which is a storable result.
func emptyPayload(p json.RawMessage) bool {
	return len(p) == 0 || string(p) == "null"
}

// Put stores payload under key atomically: the envelope lands via a
// temp-file write and rename, so a concurrent Get (or a crash mid-write)
// can only observe the old state or the complete new file.
func (s *Store) Put(key string, payload json.RawMessage) error {
	b, err := json.Marshal(envelope{SchemaVersion: s.schema, Key: key, Result: payload})
	if err != nil {
		return fmt.Errorf("store: encoding envelope: %w", err)
	}
	target := s.Path(key)
	dir := filepath.Dir(target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The temp file lives in the target's directory so the rename stays
	// within one filesystem (atomic on every POSIX filesystem).
	f, err := os.CreateTemp(dir, ".put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", target, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", target, err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, target); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing %s: %w", target, err)
	}
	return nil
}

// Len walks the store and counts complete, well-formed entries of the
// store's schema version (corrupt files are skipped, matching Get).
// It exists for observability and tests, not hot paths.
func (s *Store) Len() int {
	n := 0
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
				continue
			}
			b, err := os.ReadFile(filepath.Join(s.dir, e.Name(), f.Name()))
			if err != nil || len(b) == 0 {
				continue
			}
			var env envelope
			if json.Unmarshal(b, &env) != nil || env.SchemaVersion != s.schema || emptyPayload(env.Result) {
				continue
			}
			n++
		}
	}
	return n
}
