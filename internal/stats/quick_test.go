package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickJainIndexBounds property-checks 1/n <= index <= 1 for any
// nonnegative, not-all-zero allocation.
func TestQuickJainIndexBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				nonzero = true
			}
		}
		idx := JainIndex(xs)
		if !nonzero {
			return idx == 0
		}
		n := float64(len(xs))
		return idx >= 1/n-1e-12 && idx <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickJainScaleInvariance property-checks index(k·x) == index(x).
func TestQuickJainScaleInvariance(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := float64(kRaw%100) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r)
			b[i] = float64(r) * k
		}
		return math.Abs(JainIndex(a)-JainIndex(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBatchMeansContainsMeanOfConstant property-checks that the CI of
// i.i.d. samples always brackets values between min and max, and that the
// estimate of shifted data shifts by the same amount.
func TestQuickBatchMeansShiftEquivariance(t *testing.T) {
	f := func(raw []uint16, shiftRaw uint16) bool {
		if len(raw) < 2 {
			return true
		}
		shift := float64(shiftRaw)
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r)
			b[i] = float64(r) + shift
		}
		ea, eb := BatchMeans(a), BatchMeans(b)
		return math.Abs(eb.Mean-ea.Mean-shift) < 1e-6 &&
			math.Abs(eb.HalfCI-ea.HalfCI) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCounterMatchesBatchFormulas property-checks Welford online
// moments against direct two-pass computation.
func TestQuickCounterMatchesBatchFormulas(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var c Counter
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			c.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return math.Abs(c.Mean()-mean) < 1e-6 && math.Abs(c.Variance()-wantVar) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimeWeightedBounds property-checks min <= average <= max for
// any piecewise-constant trajectory.
func TestQuickTimeWeightedBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var w TimeWeighted
		lo, hi := math.Inf(1), math.Inf(-1)
		now := time.Duration(0)
		steps := int(n%20) + 1
		for i := 0; i < steps; i++ {
			v := float64(rng.Intn(100))
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			w.Set(now, v)
			now += time.Duration(rng.Intn(1000)+1) * time.Microsecond
		}
		avg := w.AverageAt(now)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
