// Gridfairness reproduces the essence of the paper's grid experiment
// (Figures 15-17, Table 3): six FTP flows crossing a 21-node grid, where
// NewReno lets two flows starve the rest while Vegas — and especially
// Vegas with ACK thinning — shares the medium far more fairly.
//
//	go run ./examples/gridfairness
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	variants := []struct {
		name string
		t    manetsim.TransportSpec
	}{
		{"Vegas", manetsim.TransportSpec{Protocol: manetsim.Vegas}},
		{"NewReno", manetsim.TransportSpec{Protocol: manetsim.NewReno}},
		{"Vegas + ACK thinning", manetsim.TransportSpec{Protocol: manetsim.Vegas, AckThinning: true}},
		{"NewReno + ACK thinning", manetsim.TransportSpec{Protocol: manetsim.NewReno, AckThinning: true}},
	}

	fmt.Println("21-node grid, 6 competing FTP flows, 11 Mbit/s:")
	for _, v := range variants {
		res, err := manetsim.Run(context.Background(), manetsim.Grid(),
			manetsim.WithBandwidth(manetsim.Rate11Mbps),
			manetsim.WithTransport(v.t),
			manetsim.WithSeed(1),
			manetsim.WithPackets(demoPackets(22000), 0),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", v.name)
		fmt.Printf("  aggregate goodput: %.0f kbit/s, Jain fairness %.2f [%.2f:%.2f]\n",
			res.AggGoodput.Mean/1e3, res.Jain.Mean, res.Jain.Lo(), res.Jain.Hi())
		for i, est := range res.PerFlowGood {
			bar := strings.Repeat("#", int(est.Mean/2e4))
			fmt.Printf("  FTP%d %7.0f kbit/s %s\n", i+1, est.Mean/1e3, bar)
		}
	}
}
