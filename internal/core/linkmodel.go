package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"manetsim/internal/linkmodel"
)

// LinkModelSpec selects and parameterizes the link-impairment model of a
// run (Config.LinkModel): the per-frame corruption law the PHY consults
// on every frame delivery, plus the channel-level jitter and capture
// knobs. The zero value is the perfect channel — today's behavior,
// byte-identical to runs that never touch the subsystem. A spec selects
// its model by registry Name ("perfect", "uniform", "ber",
// "gilbert-elliott", "distance", or anything added with
// RegisterLinkModel); fields irrelevant to the selected model are
// ignored, exactly like TransportSpec.
type LinkModelSpec struct {
	// Name selects a registered link model (case-insensitive). Empty
	// selects "perfect".
	Name string `json:",omitempty"`

	// LossRate is the per-frame corruption probability of the "uniform"
	// model, in [0,1].
	LossRate float64 `json:",omitempty"`

	// BER and FrameBits parameterize the "ber" model: frames of
	// FrameBits bits are corrupted with probability 1-(1-BER)^FrameBits.
	BER       float64 `json:",omitempty"`
	FrameBits int     `json:",omitempty"`

	// Gilbert-Elliott two-state parameters: per-frame transition
	// probabilities between the good and bad states and the
	// state-conditional frame loss probabilities.
	PGoodBad float64 `json:",omitempty"`
	PBadGood float64 `json:",omitempty"`
	LossGood float64 `json:",omitempty"`
	LossBad  float64 `json:",omitempty"`

	// Jitter adds a uniform per-frame propagation-delay jitter in
	// [0, Jitter) to every delivered signal, drawn from the link's
	// stream. It applies under any model, including perfect. Must not
	// exceed the channel's position-epoch interval.
	Jitter time.Duration `json:",omitempty"`

	// CaptureRatio overrides the receiver capture power ratio (linear;
	// the default 0 keeps phy.CaptureThreshold = 10, i.e. 10 dB). Values
	// below 1 would let a weaker frame survive a stronger interferer, so
	// the spec requires >= 1.
	CaptureRatio float64 `json:",omitempty"`
}

// IsZero reports whether the spec is entirely unset (the perfect
// channel).
func (l LinkModelSpec) IsZero() bool { return l == LinkModelSpec{} }

// UniformLossModel returns the spec of the i.i.d. random-loss channel:
// every frame is corrupted independently with probability p.
func UniformLossModel(p float64) LinkModelSpec {
	return LinkModelSpec{Name: "uniform", LossRate: p}
}

// BERModel returns the spec of the bit-error-rate channel over frames of
// frameBits bits.
func BERModel(ber float64, frameBits int) LinkModelSpec {
	return LinkModelSpec{Name: "ber", BER: ber, FrameBits: frameBits}
}

// GilbertElliottModel returns the spec of the classic bursty two-state
// channel: lossless good state, lossBad-lossy bad state, with the given
// per-frame transition probabilities.
func GilbertElliottModel(pGoodBad, pBadGood, lossBad float64) LinkModelSpec {
	return LinkModelSpec{Name: "gilbert-elliott", PGoodBad: pGoodBad, PBadGood: pBadGood, LossBad: lossBad}
}

// Label renders the spec for sweep axes and figure series.
func (l LinkModelSpec) Label() string {
	e, err := resolveLinkModel(l)
	name := strings.ToLower(l.Name)
	if err == nil {
		name = e.name
	} else if name == "" {
		name = "perfect"
	}
	var s string
	switch name {
	case "uniform":
		s = fmt.Sprintf("uniform(%g%%)", l.LossRate*100)
	case "ber":
		s = fmt.Sprintf("ber(%g/%db)", l.BER, l.FrameBits)
	case "gilbert-elliott":
		s = fmt.Sprintf("ge(%g/%g,%g/%g)", l.PGoodBad, l.PBadGood, l.LossGood, l.LossBad)
	default:
		s = name
	}
	if l.Jitter > 0 {
		s += fmt.Sprintf("+j%v", l.Jitter)
	}
	return s
}

// LinkModelFactory builds a link-impairment model from its spec. The
// factory returns an error for unusable parameters.
type LinkModelFactory func(spec LinkModelSpec) (linkmodel.Model, error)

// linkModelEntry is one link-model registry entry.
type linkModelEntry struct {
	name    string   // canonical lower-case name
	aliases []string // additional lookup names
	desc    string   // one-line description for listings
	build   LinkModelFactory
	// check validates model-specific spec parameters; the generic
	// probability/jitter checks run before it.
	check func(l LinkModelSpec, where string) error
}

var (
	lmRegMu     sync.RWMutex
	lmRegistry  = map[string]*linkModelEntry{} // every name and alias
	lmCanonical []*linkModelEntry              // registration order, canonical entries only
)

// registerLinkModel adds one entry under its canonical name and aliases.
func registerLinkModel(e *linkModelEntry) {
	lmRegMu.Lock()
	defer lmRegMu.Unlock()
	names := append([]string{e.name}, e.aliases...)
	for _, n := range names {
		n = strings.ToLower(n)
		if n == "" {
			panic("core: empty link model name")
		}
		if _, dup := lmRegistry[n]; dup {
			panic(fmt.Sprintf("core: link model %q registered twice", n))
		}
		lmRegistry[n] = e
	}
	lmCanonical = append(lmCanonical, e)
}

// RegisterLinkModel registers a link-impairment model under name, making
// it selectable everywhere a LinkModelSpec goes: Run options, Campaign
// sweeps and cmd/manetsim -link-model. It backs the public
// manetsim.RegisterLinkModel and panics on an empty or duplicate name
// (registration is a program-setup bug, not a runtime condition).
func RegisterLinkModel(name string, factory LinkModelFactory) {
	if factory == nil {
		panic("core: nil link model factory")
	}
	registerLinkModel(&linkModelEntry{
		name:  strings.ToLower(name),
		desc:  "registered link-impairment model",
		build: factory,
	})
}

// LinkModelInfo describes one registered link model for listings.
type LinkModelInfo struct {
	// Name selects the model in LinkModelSpec.Name.
	Name string
	// Aliases are accepted alternative names.
	Aliases []string
	// Description is a one-line summary.
	Description string
}

// LinkModels lists every registered link model, sorted by name.
func LinkModels() []LinkModelInfo {
	lmRegMu.RLock()
	defer lmRegMu.RUnlock()
	infos := make([]LinkModelInfo, 0, len(lmCanonical))
	for _, e := range lmCanonical {
		infos = append(infos, LinkModelInfo{
			Name:        e.name,
			Aliases:     append([]string(nil), e.aliases...),
			Description: e.desc,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// linkModelNames returns every registered canonical name, sorted, for
// unknown-name error messages.
func linkModelNames() []string {
	lmRegMu.RLock()
	defer lmRegMu.RUnlock()
	names := make([]string, 0, len(lmCanonical))
	for _, e := range lmCanonical {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return names
}

// resolveLinkModel maps a spec to its registry entry; the empty Name is
// the perfect channel.
func resolveLinkModel(l LinkModelSpec) (*linkModelEntry, error) {
	name := strings.ToLower(l.Name)
	if name == "" {
		name = "perfect"
	}
	lmRegMu.RLock()
	e := lmRegistry[name]
	lmRegMu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("core: unknown link model %q (registered: %s)",
			l.Name, strings.Join(linkModelNames(), ", "))
	}
	return e, nil
}

// buildLinkModel materializes the spec's model for one run. A perfect
// spec returns nil — the channel's fast path.
func buildLinkModel(l LinkModelSpec) (linkmodel.Model, error) {
	e, err := resolveLinkModel(l)
	if err != nil {
		return nil, err
	}
	m, err := e.build(l)
	if err != nil {
		return nil, err
	}
	if _, perfect := m.(linkmodel.Perfect); perfect {
		return nil, nil
	}
	return m, nil
}

// checkProb rejects probabilities outside [0,1], including NaN (which
// fails every comparison and would otherwise slip through one-sided
// checks).
func checkProb(where, field string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("core: %s: %s %g outside [0,1]", where, field, v)
	}
	return nil
}

// validate reports misconfigured link-model specs with the field spelled
// out, mirroring TransportSpec.validate. epoch is the channel's
// position-update interval: jitter beyond it would push a frame's
// arrival into a later position epoch than the one that produced it.
func (l LinkModelSpec) validate(where string, epoch time.Duration) error {
	e, err := resolveLinkModel(l)
	if err != nil {
		return fmt.Errorf("%v (%s)", err, where)
	}
	for _, p := range []struct {
		field string
		v     float64
	}{
		{"LossRate", l.LossRate},
		{"BER", l.BER},
		{"PGoodBad", l.PGoodBad},
		{"PBadGood", l.PBadGood},
		{"LossGood", l.LossGood},
		{"LossBad", l.LossBad},
	} {
		if err := checkProb(where, p.field, p.v); err != nil {
			return err
		}
	}
	if l.FrameBits < 0 {
		return fmt.Errorf("core: %s: negative FrameBits %d", where, l.FrameBits)
	}
	if l.Jitter < 0 {
		return fmt.Errorf("core: %s: negative Jitter %v", where, l.Jitter)
	}
	if l.Jitter > epoch {
		return fmt.Errorf("core: %s: Jitter %v exceeds the position-epoch interval %v (a jittered frame would outlive the positions it was launched from; lower Jitter or raise Mobility.UpdateInterval)",
			where, l.Jitter, epoch)
	}
	if math.IsNaN(l.CaptureRatio) || (l.CaptureRatio != 0 && l.CaptureRatio < 1) {
		return fmt.Errorf("core: %s: CaptureRatio %g below 1 (linear power ratio; 0 selects the default 10)", where, l.CaptureRatio)
	}
	if e.check != nil {
		return e.check(l, where)
	}
	return nil
}

// checkBER requires the frame length: without it the model degenerates
// to a silent no-op.
func checkBER(l LinkModelSpec, where string) error {
	if l.BER > 0 && l.FrameBits == 0 {
		return fmt.Errorf("core: %s: ber model needs FrameBits > 0 (the frame length the BER applies over; a TCP data frame is ~12000 bits)", where)
	}
	return nil
}

func init() {
	registerLinkModel(&linkModelEntry{
		name: "perfect",
		desc: "no impairment: frames within TxRange always decode (the default)",
		build: func(LinkModelSpec) (linkmodel.Model, error) {
			return linkmodel.Perfect{}, nil
		},
	})
	registerLinkModel(&linkModelEntry{
		name: "uniform", aliases: []string{"loss"},
		desc: "i.i.d. per-frame loss at LossRate (the random-loss regime TCP misreads as congestion)",
		build: func(l LinkModelSpec) (linkmodel.Model, error) {
			return linkmodel.UniformLoss{P: l.LossRate}, nil
		},
	})
	registerLinkModel(&linkModelEntry{
		name: "ber",
		desc: "independent bit errors: frames of FrameBits bits survive with (1-BER)^FrameBits",
		build: func(l LinkModelSpec) (linkmodel.Model, error) {
			return linkmodel.NewBERLoss(l.BER, l.FrameBits), nil
		},
		check: checkBER,
	})
	registerLinkModel(&linkModelEntry{
		name: "gilbert-elliott", aliases: []string{"ge"},
		desc: "bursty two-state loss (good/bad states with geometric sojourns)",
		build: func(l LinkModelSpec) (linkmodel.Model, error) {
			return linkmodel.GilbertElliott{
				PGoodBad: l.PGoodBad, PBadGood: l.PBadGood,
				LossGood: l.LossGood, LossBad: l.LossBad,
			}, nil
		},
	})
	registerLinkModel(&linkModelEntry{
		name: "distance",
		desc: "gray zone: loss ramps from 0 at TxRange to 1 at CSRange, with decoding extended to CSRange",
		build: func(LinkModelSpec) (linkmodel.Model, error) {
			return &linkmodel.DistanceLoss{}, nil
		},
	})
}
