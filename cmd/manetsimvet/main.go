// Command manetsimvet runs manetsim's custom static-analysis suite: the
// determinism, refcount, reset and hot-path invariants every golden digest
// and bench gate in this repo ultimately rests on (see internal/analysis).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o manetsimvet ./cmd/manetsimvet
//	go vet -vettool=$PWD/manetsimvet ./...
//
// and it also self-drives as a plain checker over package patterns:
//
//	manetsimvet ./...
//
// Deliberate exceptions are annotated in source:
//
//	//manetsim:allow <analyzer>  suppresses one finding on that line
//	//manetsim:resetsafe         a field Reset intentionally preserves
//	//manetsim:hotpath           marks a function as an alloc-free hot path
package main

import (
	"os"

	"manetsim/internal/analysis"
)

// version participates in cmd/go's action-cache key: bump it when analyzer
// behavior changes so cached vet verdicts from older binaries are dropped.
const version = "1.0.0"

func main() {
	os.Exit(analysis.VetMain(version, os.Args[1:], os.Stdout, os.Stderr))
}
