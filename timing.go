package manetsim

import (
	"time"

	"manetsim/internal/mac"
)

// fourHopDelay delegates to the MAC timing model (kept in a separate file
// so the main API file stays import-light).
func fourHopDelay(rate Rate) time.Duration {
	return mac.FourHopPropagationDelay(rate)
}

// ExchangeTime returns the duration of one uncontended per-hop
// DIFS + RTS/CTS/DATA/ACK exchange for a network-layer packet of the given
// size at the given rate — useful for sizing paced-UDP sweeps.
func ExchangeTime(rate Rate, netBytes int) time.Duration {
	return mac.NewTiming(rate).ExchangeTime(netBytes)
}
