package core

import (
	"testing"
	"time"

	"manetsim/internal/phy"
)

func TestRunRenoAndTahoeVariants(t *testing.T) {
	for _, proto := range []Protocol{ProtoReno, ProtoTahoe} {
		res, err := Run(smallCfg(Chain(3), TransportSpec{Protocol: proto}))
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Truncated || res.Delivered < 1100 {
			t.Errorf("%v: delivered %d (truncated=%v)", proto, res.Delivered, res.Truncated)
		}
		if res.AggGoodput.Mean <= 0 {
			t.Errorf("%v: zero goodput", proto)
		}
	}
}

func TestRunDelayedAckSink(t *testing.T) {
	plain, err := Run(smallCfg(Chain(2), TransportSpec{Protocol: ProtoNewReno}))
	if err != nil {
		t.Fatal(err)
	}
	delack, err := Run(smallCfg(Chain(2), TransportSpec{Protocol: ProtoNewReno, DelayedAck: true}))
	if err != nil {
		t.Fatal(err)
	}
	if delack.Delivered < 1100 {
		t.Fatalf("delayed-ack run starved: %d", delack.Delivered)
	}
	// Delayed ACKs halve the reverse traffic; goodput must not collapse.
	if delack.AggGoodput.Mean < plain.AggGoodput.Mean/2 {
		t.Errorf("delayed-ack goodput %.0f collapsed vs plain %.0f",
			delack.AggGoodput.Mean, plain.AggGoodput.Mean)
	}
}

func TestRunRejectsThinningPlusDelack(t *testing.T) {
	_, err := Run(smallCfg(Chain(2), TransportSpec{Protocol: ProtoNewReno, DelayedAck: true, AckThinning: true}))
	if err == nil {
		t.Error("mutually exclusive ACK policies accepted")
	}
}

func TestRunPerFlowTransportMix(t *testing.T) {
	v := TransportSpec{Protocol: ProtoVegas, Alpha: 2}
	n := TransportSpec{Protocol: ProtoNewReno}
	scn := Grid()
	for i, tspec := range []TransportSpec{v, v, v, n, n, n} {
		scn.Flows[i].Transport = tspec
	}
	cfg := smallCfg(scn, TransportSpec{Protocol: ProtoVegas})
	cfg.TotalPackets = 2200
	cfg.BatchPackets = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFlowGood) != 6 {
		t.Fatalf("per-flow results = %d, want 6", len(res.PerFlowGood))
	}
	if res.Delivered < 2200 {
		t.Errorf("mixed run delivered %d, want 2200", res.Delivered)
	}
}

func TestRunPartialPerFlowTransportInheritsDefault(t *testing.T) {
	// Flows without their own TransportSpec inherit Config.Transport;
	// a run whose flows mix explicit and inherited transports must work.
	scn := Grid()
	scn.Flows[0].Transport = TransportSpec{Protocol: ProtoNewReno}
	cfg := smallCfg(scn, TransportSpec{Protocol: ProtoVegas})
	cfg.TotalPackets = 2200
	cfg.BatchPackets = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 2200 {
		t.Errorf("mixed-inheritance run delivered %d, want 2200", res.Delivered)
	}
}

func TestRunDelayStatistics(t *testing.T) {
	res, err := Run(smallCfg(Chain(4), TransportSpec{Protocol: ProtoVegas}))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delay
	if d.N == 0 {
		t.Fatal("no delay samples collected")
	}
	// A 4-hop exchange takes >= 4 * 7.3ms; anything below is impossible,
	// and the p95 must dominate the median.
	if d.Mean < 25*time.Millisecond {
		t.Errorf("mean delay %v below the physical floor", d.Mean)
	}
	if d.P95 < d.P50 {
		t.Errorf("p95 %v < p50 %v", d.P95, d.P50)
	}
	if d.Max < d.P95 {
		t.Errorf("max %v < p95 %v", d.Max, d.P95)
	}
}

func TestRunUDPDelayStatistics(t *testing.T) {
	cfg := smallCfg(Chain(4), TransportSpec{Protocol: ProtoPacedUDP, UDPGap: 40 * time.Millisecond})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.N == 0 {
		t.Fatal("no UDP delay samples")
	}
	// Paced UDP at a conservative rate has no queueing: delay close to
	// the 4-hop pipeline time (~30ms), certainly below 100ms.
	if res.Delay.P50 > 100*time.Millisecond {
		t.Errorf("UDP median delay %v, want near the uncontended pipeline time", res.Delay.P50)
	}
}

// TestRunLongChainEstablishesRoute guards the AODV TTL regression: a
// 64-hop flood must reach the destination and traffic must flow.
func TestRunLongChainEstablishesRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("64-hop run is slow")
	}
	cfg := smallCfg(Chain(64), TransportSpec{Protocol: ProtoVegas})
	cfg.TotalPackets = 550
	cfg.BatchPackets = 50
	cfg.MaxSimTime = 30 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 550 {
		t.Errorf("64-hop chain delivered %d packets (truncated=%v); AODV flood TTL regression?",
			res.Delivered, res.Truncated)
	}
}

func TestProtocolPredicates(t *testing.T) {
	// Every legacy Protocol constant resolves through the registry; the
	// window-based ones carry a strategy factory, paced UDP a raw
	// endpoint builder.
	for _, p := range []Protocol{ProtoVegas, ProtoNewReno, ProtoReno, ProtoTahoe} {
		tr, err := resolveTransport(TransportSpec{Protocol: p})
		if err != nil {
			t.Fatalf("%v does not resolve: %v", p, err)
		}
		if tr.newCC == nil {
			t.Errorf("%v should be a window-based (engine) transport", p)
		}
	}
	udp, err := resolveTransport(TransportSpec{Protocol: ProtoPacedUDP})
	if err != nil {
		t.Fatal(err)
	}
	if udp.newCC != nil || udp.build == nil {
		t.Error("paced UDP should be a raw-endpoint transport, not an engine one")
	}
	if ProtoReno.String() != "Reno" || ProtoTahoe.String() != "Tahoe" {
		t.Error("protocol names wrong")
	}
}

func TestBandwidthMonotoneGoodput(t *testing.T) {
	// More bandwidth must not reduce goodput (sub-linear growth is the
	// paper's point, but monotonicity should hold).
	var prev float64
	for _, r := range []phy.Rate{phy.Rate2Mbps, phy.Rate5_5Mbps, phy.Rate11Mbps} {
		cfg := smallCfg(Chain(7), TransportSpec{Protocol: ProtoVegas})
		cfg.Bandwidth = r
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.AggGoodput.Mean < prev {
			t.Errorf("goodput decreased at %v: %.0f < %.0f", r, res.AggGoodput.Mean, prev)
		}
		prev = res.AggGoodput.Mean
	}
}
