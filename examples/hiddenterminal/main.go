// Hiddenterminal measures the classic RTS/CTS trade-off on the
// interference-limited hidden-terminal topology: two parallel one-hop
// flows whose senders cannot carrier-sense each other but still collide
// at the first receiver. With the handshake on, a collision costs a
// 20-byte RTS; with basic access (RTSThreshold above the frame size), it
// costs a full data frame and its retries. The example runs both and
// prints goodput, Jain's fairness over the two flows, and the
// link-layer drop probability.
//
//	go run ./examples/hiddenterminal
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	total := demoPackets(11000)
	modes := []struct {
		name      string
		threshold int
	}{
		{"RTS/CTS on every frame", 0},
		{"basic access (no RTS)", 4096},
	}
	fmt.Println("hidden-terminal topology, NewReno, 2 Mbit/s:")
	for _, m := range modes {
		res, err := manetsim.Run(context.Background(), manetsim.HiddenTerminal(),
			manetsim.WithTransport(manetsim.TransportSpec{Name: "newreno"}),
			manetsim.WithRTSThreshold(m.threshold),
			manetsim.WithPackets(total, total/11),
			manetsim.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s goodput %7.1f kb/s  Jain %.3f  link drops %.4f/attempt\n",
			m.name, res.AggGoodput.Mean/1e3, res.Jain.Mean, res.DropProb.Mean)
	}
	fmt.Println("\n(the senders are out of carrier-sense range of each other, so")
	fmt.Println(" only the RTS/CTS reservation keeps their collisions cheap)")
}
