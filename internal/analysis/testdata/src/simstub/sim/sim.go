// Package sim is a miniature stand-in for manetsim/internal/sim used by the
// analyzer tests: isSchedulerPkg matches any import path ending in /sim, so
// maporder and hotpathalloc treat this stub's Scheduler as the real kernel.
package sim

// Time mirrors the kernel's simulated-time type.
type Time int64

// EventRef identifies a scheduled event.
type EventRef struct{ idx int }

// Scheduler mirrors the kernel scheduling API surface the analyzers know:
// At/After take closures, AtFunc/AfterFunc are the closure-free counterparts.
type Scheduler struct{ now Time }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn at absolute time t.
func (s *Scheduler) At(t Time, fn func()) EventRef { _, _ = t, fn; return EventRef{} }

// AtFunc schedules fn(arg) at absolute time t without allocating.
func (s *Scheduler) AtFunc(t Time, fn func(any), arg any) EventRef {
	_, _, _ = t, fn, arg
	return EventRef{}
}

// After schedules fn after delay d.
func (s *Scheduler) After(d Time, fn func()) EventRef { return s.At(s.now+d, fn) }

// AfterFunc schedules fn(arg) after delay d without allocating.
func (s *Scheduler) AfterFunc(d Time, fn func(any), arg any) EventRef {
	return s.AtFunc(s.now+d, fn, arg)
}
