package tcp

import (
	"testing"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// sinkRig collects the ACKs a sink emits.
type sinkRig struct {
	sched *sim.Scheduler
	uids  pkt.UIDSource
	sink  *Sink
	acks  []*pkt.Packet
}

func newSinkRig(thinning bool) *sinkRig {
	policy := AckEveryPacket
	if thinning {
		policy = AckThinning
	}
	return newSinkRigPolicy(policy)
}

func newSinkRigPolicy(policy AckPolicy) *sinkRig {
	r := &sinkRig{sched: sim.NewScheduler(1)}
	r.sink = NewSink(r.sched, 1, 1, 0, policy, &r.uids, func(p *pkt.Packet) {
		r.acks = append(r.acks, p)
	})
	return r
}

func (r *sinkRig) data(seq int64) *pkt.Packet {
	return &pkt.Packet{
		UID: r.uids.Next(), Kind: pkt.KindTCPData, Size: pkt.TCPDataSize,
		Src: 0, Dst: 1,
		TCP: &pkt.TCPHeader{Flow: 1, Seq: seq, SentAt: r.sched.Now()},
	}
}

func TestSinkAcksEveryPacketInOrder(t *testing.T) {
	r := newSinkRig(false)
	for seq := int64(0); seq < 5; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	if len(r.acks) != 5 {
		t.Fatalf("acks = %d, want 5", len(r.acks))
	}
	for i, a := range r.acks {
		if a.TCP.Ack != int64(i+1) {
			t.Errorf("ack %d value = %d, want %d", i, a.TCP.Ack, i+1)
		}
	}
	if r.sink.Stats().GoodputPackets != 5 {
		t.Errorf("goodput = %d, want 5", r.sink.Stats().GoodputPackets)
	}
}

func TestSinkBuffersOutOfOrderAndDupAcks(t *testing.T) {
	r := newSinkRig(false)
	r.sink.HandleData(r.data(0))
	r.sink.HandleData(r.data(2)) // gap at 1
	r.sink.HandleData(r.data(3))
	if len(r.acks) != 3 {
		t.Fatalf("acks = %d, want 3", len(r.acks))
	}
	// Two duplicate ACKs with value 1.
	if r.acks[1].TCP.Ack != 1 || r.acks[2].TCP.Ack != 1 {
		t.Errorf("dup acks = %d,%d, want 1,1", r.acks[1].TCP.Ack, r.acks[2].TCP.Ack)
	}
	// Filling the hole releases everything.
	r.sink.HandleData(r.data(1))
	last := r.acks[len(r.acks)-1]
	if last.TCP.Ack != 4 {
		t.Errorf("cumulative ack after fill = %d, want 4", last.TCP.Ack)
	}
	if r.sink.Stats().GoodputPackets != 4 {
		t.Errorf("goodput = %d, want 4", r.sink.Stats().GoodputPackets)
	}
	if r.sink.Stats().OutOfOrder != 2 {
		t.Errorf("out-of-order count = %d, want 2", r.sink.Stats().OutOfOrder)
	}
}

func TestSinkDuplicateDataDoesNotInflateGoodput(t *testing.T) {
	r := newSinkRig(false)
	r.sink.HandleData(r.data(0))
	r.sink.HandleData(r.data(0))
	r.sink.HandleData(r.data(0))
	if r.sink.Stats().GoodputPackets != 1 {
		t.Errorf("goodput = %d, want 1", r.sink.Stats().GoodputPackets)
	}
	if r.sink.Stats().Duplicates != 2 {
		t.Errorf("duplicates = %d, want 2", r.sink.Stats().Duplicates)
	}
	// Every duplicate still produces an immediate ACK (dup ACK).
	if len(r.acks) != 3 {
		t.Errorf("acks = %d, want 3", len(r.acks))
	}
}

func TestThinningDegreeSchedule(t *testing.T) {
	// Paper: d ramps 1→4 at S1=2, S2=5, S3=9 (packet numbering).
	cases := []struct {
		seq  int64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 3}, {7, 3}, {8, 3}, {9, 4}, {100, 4}}
	for _, c := range cases {
		if got := ThinningDegree(c.seq); got != c.want {
			t.Errorf("ThinningDegree(%d) = %d, want %d", c.seq, got, c.want)
		}
	}
}

func TestThinningSinkAckPattern(t *testing.T) {
	r := newSinkRig(true)
	for seq := int64(0); seq < 17; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	// seq 0 (d=1): ack. seq 1 (d=1): ack. seq 2,3 (d=2): ack at 3.
	// seq 4 (d=2): pending=1... seq 5 (d=3): pending 2; seq 6: pending 3 -> ack.
	// seq 7,8 (d=3,4): pending 2; seq 9..12: d=4 -> ack at pending 4 (seq 10).
	// etc. Exact positions depend on the mixed-degree ramp; assert the
	// aggregate: far fewer ACKs than packets, cumulative and increasing.
	if len(r.acks) >= 17 {
		t.Fatalf("thinning sent %d acks for 17 packets, want fewer", len(r.acks))
	}
	if len(r.acks) < 4 {
		t.Fatalf("thinning sent only %d acks, too aggressive", len(r.acks))
	}
	var prev int64
	for _, a := range r.acks {
		if a.TCP.Ack <= prev {
			t.Errorf("acks not strictly increasing: %d after %d", a.TCP.Ack, prev)
		}
		prev = a.TCP.Ack
	}
	// The tail is pending on the regeneration timer; after it fires the
	// stream is fully acknowledged.
	r.sched.RunUntil(r.sched.Now() + 2*AckRegenTimeout)
	if got := r.acks[len(r.acks)-1].TCP.Ack; got != 17 {
		t.Errorf("final cumulative ack = %d, want 17 after regeneration", got)
	}
}

func TestThinningSteadyStateIsEveryFourth(t *testing.T) {
	r := newSinkRig(true)
	// Warm past the ramp.
	for seq := int64(0); seq < 9; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	n := len(r.acks)
	for seq := int64(9); seq < 9+40; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	got := len(r.acks) - n
	if got != 10 {
		t.Errorf("steady-state acks for 40 packets = %d, want 10 (every 4th)", got)
	}
}

func TestThinningRegenerationTimeout(t *testing.T) {
	r := newSinkRig(true)
	// Get past the ramp so d=4.
	for seq := int64(0); seq < 12; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	n := len(r.acks)
	// One lone packet, then silence: the 100ms regeneration timer must
	// produce the ACK.
	r.sched.RunUntil(r.sched.Now() + time.Millisecond)
	r.sink.HandleData(r.data(12))
	r.sched.RunUntil(r.sched.Now() + 2*AckRegenTimeout)
	if len(r.acks) != n+1 {
		t.Fatalf("acks after lone packet = %d, want exactly one regen ack", len(r.acks)-n)
	}
	if r.sink.Stats().RegenTimeouts == 0 {
		t.Error("regen timeout counter not incremented")
	}
	if got := r.acks[len(r.acks)-1].TCP.Ack; got != 13 {
		t.Errorf("regen ack = %d, want 13", got)
	}
}

func TestThinningOutOfOrderForcesImmediateAck(t *testing.T) {
	r := newSinkRig(true)
	for seq := int64(0); seq < 10; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	n := len(r.acks)
	r.sink.HandleData(r.data(11)) // gap at 10
	if len(r.acks) <= n {
		t.Fatal("no immediate ack on out-of-order arrival")
	}
	if got := r.acks[len(r.acks)-1].TCP.Ack; got != 10 {
		t.Errorf("dup ack value = %d, want 10", got)
	}
}

func TestThinningEchoesTriggeringPacketTimestamp(t *testing.T) {
	r := newSinkRig(true)
	// Warm up to an ACK boundary: seq 0 (ack), 1 (ack), 2+3 (ack), 4+5+6
	// (ack) — pending is 0 after seq 6.
	for seq := int64(0); seq < 7; seq++ {
		r.sink.HandleData(r.data(seq))
	}
	n := len(r.acks)
	// Sequence-based thinning ACKs on multiples of d: seq 8 is packet
	// number 9 with d=3 (9 % 3 == 0), so the ACK fires there and echoes
	// that packet's timestamp — the sender's RTT sample excludes the
	// aggregation wait (the behaviour Vegas' diff computation depends on).
	stamps := []time.Duration{42 * time.Millisecond, 99 * time.Millisecond, 120 * time.Millisecond, 150 * time.Millisecond}
	for i, seq := range []int64{7, 8, 9, 10} {
		p := r.data(seq)
		p.TCP.SentAt = stamps[i]
		r.sink.HandleData(p)
	}
	if len(r.acks) != n+1 {
		t.Fatalf("acks for the group = %d, want 1", len(r.acks)-n)
	}
	if got := r.acks[len(r.acks)-1].TCP.SentAt; got != 99*time.Millisecond {
		t.Errorf("echoed timestamp = %v, want the triggering packet's (99ms, seq 8)", got)
	}
}

func TestSinkAckCountComparison(t *testing.T) {
	normal := newSinkRig(false)
	thin := newSinkRig(true)
	for seq := int64(0); seq < 100; seq++ {
		normal.sink.HandleData(normal.data(seq))
		thin.sink.HandleData(thin.data(seq))
	}
	if len(thin.acks) >= len(normal.acks)/2 {
		t.Errorf("thinning acks = %d vs normal %d, want well under half",
			len(thin.acks), len(normal.acks))
	}
}
