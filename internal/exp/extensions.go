package exp

import (
	"fmt"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// TCPVariants is an extension experiment in the spirit of the Xu & Saadawi
// study the paper's related work discusses: all four TCP variants (Tahoe,
// Reno, NewReno, Vegas) over the chain at 2 Mbit/s. Expectation from the
// literature (and the paper's §2): Vegas ahead, Tahoe trailing.
func TCPVariants(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "tcpvariants", Title: "h-hop chain, 2 Mbit/s: TCP variant comparison (Tahoe/Reno/NewReno/Vegas)",
		XLabel: "hops", YLabel: "goodput [kbit/s]",
	}
	variants := []struct {
		name string
		t    core.TransportSpec
	}{
		{"Tahoe", core.TransportSpec{Protocol: core.ProtoTahoe}},
		{"Reno", core.TransportSpec{Protocol: core.ProtoReno}},
		{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}},
		{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
	}
	hopsAxis := []int{2, 4, 7} // Xu & Saadawi evaluated chains up to 7 hops
	for _, v := range variants {
		var cfgs []core.Config
		for _, hops := range hopsAxis {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, v.t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(hopsAxis[i]), Y: kbit(res.AggGoodput.Mean)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Coexist is an extension experiment enabled by per-flow transports:
// three Vegas and three NewReno flows share the grid. The literature
// predicts loss-based NewReno crowds out delay-based Vegas; the per-group
// goodput and fairness quantify it here.
func Coexist(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "coexist", Title: "grid: 3 Vegas flows vs 3 NewReno flows sharing the medium",
		XLabel: "bandwidth [Mbit/s]", YLabel: "per-group goodput [kbit/s]",
	}
	vegas := core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}
	newreno := core.TransportSpec{Protocol: core.ProtoNewReno}
	// Alternate protocols within each geometry class (FTP1-3 horizontal,
	// FTP4-6 vertical) so path length does not confound the comparison.
	perFlow := []core.TransportSpec{
		vegas, newreno, vegas,
		newreno, vegas, newreno,
	}
	grid := core.Grid()
	for i := range grid.Flows {
		grid.Flows[i].Transport = perFlow[i]
	}
	isVegas := []bool{true, false, true, false, true, false}
	var vSeries, nSeries Series
	vSeries.Name = "Vegas group"
	nSeries.Name = "NewReno group"
	for _, r := range rates {
		res, err := h.Run(core.Config{
			Scenario:  grid,
			Bandwidth: r,
			Transport: vegas, // base spec (every flow overrides it)
		})
		if err != nil {
			return nil, err
		}
		var vSum, nSum float64
		for i, est := range res.PerFlowGood {
			if isVegas[i] {
				vSum += est.Mean
			} else {
				nSum += est.Mean
			}
		}
		vSeries.Points = append(vSeries.Points, Point{X: rateLabel(r), Y: kbit(vSum)})
		nSeries.Points = append(nSeries.Points, Point{X: rateLabel(r), Y: kbit(nSum)})
		f.Notes = append(f.Notes, fmt.Sprintf("%s Mbit/s: Jain over all 6 flows = %.2f", rateLabel(r), res.Jain.Mean))
	}
	f.Series = []Series{vSeries, nSeries}
	return f, nil
}

// OptWindow is an extension experiment validating the claim (Fu et al.,
// echoed by the paper) that the optimal TCP window over an h-hop chain is
// far below the nominal bandwidth-delay product, around h/4: NewReno with
// an artificial window bound swept from 1 to 16 on the 8-hop chain. The
// goodput peak should sit near 2-3 packets, where the paper's MaxWin=3
// (for 7 hops) and Vegas' self-selected ~3-4 packet window land.
func OptWindow(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "optwindow", Title: "8-hop chain, 2 Mbit/s: NewReno goodput vs artificial window bound",
		XLabel: "MaxWindow [packets]", YLabel: "goodput [kbit/s]",
	}
	bounds := []int{1, 2, 3, 4, 6, 8, 12, 16}
	var cfgs []core.Config
	for _, w := range bounds {
		cfgs = append(cfgs, chainCfg(8, phy.Rate2Mbps, core.TransportSpec{
			Protocol: core.ProtoNewReno, MaxWindow: w,
		}))
	}
	results, err := h.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	s := Series{Name: "NewReno MaxWin"}
	best, bestW := -1.0, 0
	for i, res := range results {
		g := kbit(res.AggGoodput.Mean)
		s.Points = append(s.Points, Point{X: fmt.Sprint(bounds[i]), Y: g})
		if g > best {
			best, bestW = g, bounds[i]
		}
	}
	f.Series = []Series{s}
	f.Notes = append(f.Notes, fmt.Sprintf("goodput peaks at MaxWindow=%d (paper: 3 for the 7-hop chain; h/4=2 for 8 hops)", bestW))
	return f, nil
}

// Latency is an extension experiment: end-to-end packet delay of the TCP
// variants on the 7-hop chain (mean and p95), quantifying how NewReno's
// big window inflates queueing delay.
func Latency(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "latency", Title: "7-hop chain, 2 Mbit/s: end-to-end packet delay",
		XLabel: "variant", YLabel: "delay [ms]",
	}
	mean := Series{Name: "mean"}
	p95 := Series{Name: "p95"}
	for _, v := range sevenHopVariants {
		if v.udp {
			continue
		}
		res, err := h.Run(chainCfg(7, phy.Rate2Mbps, v.t))
		if err != nil {
			return nil, err
		}
		mean.Points = append(mean.Points, Point{X: v.name, Y: float64(res.Delay.Mean.Milliseconds())})
		p95.Points = append(p95.Points, Point{X: v.name, Y: float64(res.Delay.P95.Milliseconds())})
	}
	f.Series = []Series{mean, p95}
	return f, nil
}
