package phy

import (
	"testing"
	"time"
)

func TestPreamblePolicy(t *testing.T) {
	cases := []struct {
		rate Rate
		want time.Duration
	}{
		{Rate1Mbps, PLCPLong},
		{Rate2Mbps, PLCPLong},
		{Rate5_5Mbps, PLCPShort},
		{Rate11Mbps, PLCPShort},
	}
	for _, c := range cases {
		if got := Preamble(c.rate); got != c.want {
			t.Errorf("Preamble(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
}

func TestAirtime(t *testing.T) {
	// 1500 bytes at 2 Mbit/s: 6 ms payload + 192 us preamble.
	got := Airtime(1500, Rate2Mbps, PLCPLong)
	want := 6*time.Millisecond + 192*time.Microsecond
	if got != want {
		t.Errorf("Airtime(1500, 2M) = %v, want %v", got, want)
	}
	// Control frame at 1 Mbit/s: 14 bytes = 112 us + preamble.
	got = Airtime(14, ControlRate, PLCPLong)
	want = 112*time.Microsecond + 192*time.Microsecond
	if got != want {
		t.Errorf("Airtime(14, 1M) = %v, want %v", got, want)
	}
}

func TestAirtimePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative bytes": func() { Airtime(-1, Rate2Mbps, 0) },
		"zero rate":      func() { Airtime(10, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPropagationDelay(t *testing.T) {
	// 300 m at light speed = 1 microsecond.
	if got := PropagationDelay(300); got != time.Microsecond {
		t.Errorf("PropagationDelay(300m) = %v, want 1us", got)
	}
	if got := PropagationDelay(0); got != 0 {
		t.Errorf("PropagationDelay(0) = %v, want 0", got)
	}
}

func TestRateString(t *testing.T) {
	if Rate2Mbps.String() != "2Mbps" {
		t.Errorf("2M string = %q", Rate2Mbps.String())
	}
	if Rate5_5Mbps.String() != "5.5Mbps" {
		t.Errorf("5.5M string = %q", Rate5_5Mbps.String())
	}
}
