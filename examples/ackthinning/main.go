// Ackthinning demonstrates the Altman-Jiménez dynamic delayed-ACK scheme
// (paper Section 3.2 and Figures 5/11): at 2 Mbit/s thinning barely helps
// TCP Vegas (its window already sits near the optimum), but as bandwidth
// grows the thinner ACK stream frees enough air time for both variants to
// gain — with Vegas+thinning ending up the paper's recommended protocol.
//
//	go run ./examples/ackthinning
package main

import (
	"fmt"
	"log"

	"manetsim"
)

func main() {
	rates := []struct {
		name string
		r    manetsim.Rate
	}{
		{"2 Mbit/s", manetsim.Rate2Mbps},
		{"5.5 Mbit/s", manetsim.Rate5_5Mbps},
		{"11 Mbit/s", manetsim.Rate11Mbps},
	}
	variants := []struct {
		name string
		t    manetsim.TransportSpec
	}{
		{"Vegas", manetsim.TransportSpec{Protocol: manetsim.Vegas}},
		{"Vegas Thin", manetsim.TransportSpec{Protocol: manetsim.Vegas, AckThinning: true}},
		{"NewReno", manetsim.TransportSpec{Protocol: manetsim.NewReno}},
		{"NewReno Thin", manetsim.TransportSpec{Protocol: manetsim.NewReno, AckThinning: true}},
	}

	fmt.Println("7-hop chain: goodput [kbit/s] with and without ACK thinning")
	fmt.Printf("%-12s", "")
	for _, v := range variants {
		fmt.Printf("%14s", v.name)
	}
	fmt.Println()
	for _, rate := range rates {
		fmt.Printf("%-12s", rate.name)
		for _, v := range variants {
			res, err := manetsim.Run(manetsim.Config{
				Topology:     manetsim.Chain(7),
				Bandwidth:    rate.r,
				Transport:    v.t,
				Seed:         1,
				TotalPackets: 11000,
				BatchPackets: 1000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%14.1f", res.AggGoodput.Mean/1e3)
		}
		fmt.Println()
	}
	fmt.Println("\n(expect the thinning gain to grow with bandwidth, and to be")
	fmt.Println(" smallest for Vegas at 2 Mbit/s — the paper's Figures 5 and 11)")
}
