package core

import (
	"encoding/json"
	"testing"
	"time"
)

// mobileGridCfg is a small random-waypoint scenario: the grid's 21 nodes
// with one corner-to-corner flow, moving inside the grid's bounding box.
func mobileGridCfg(maxSpeed float64) Config {
	scn := Grid().WithFlows(Flow{Src: 0, Dst: 20})
	if maxSpeed > 0 {
		scn.WithMobility(MobilitySpec{
			Kind:             MobilityRandomWaypoint,
			MaxSpeed:         maxSpeed,
			Pause:            500 * time.Millisecond,
			PinFlowEndpoints: true,
		})
	}
	return Config{
		Scenario:     scn,
		Transport:    TransportSpec{Protocol: ProtoVegas},
		Seed:         1,
		TotalPackets: 1100,
		BatchPackets: 100,
		MaxSimTime:   30 * time.Minute,
	}
}

// resultBytes encodes a Result deterministically for byte-level comparison.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runTwice executes the same config twice and fails unless the results are
// byte-identical — the reproducibility promise the dynamic-channel refactor
// must keep.
func runTwice(t *testing.T, cfg Config) *Result {
	t.Helper()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := resultBytes(t, a), resultBytes(t, b)
	if string(ab) != string(bb) {
		t.Fatalf("same config+seed produced different results:\n%s\nvs\n%s", ab, bb)
	}
	return a
}

func TestStaticRunDeterministicPerSeed(t *testing.T) {
	res := runTwice(t, Config{
		Scenario:     Chain(4),
		Transport:    TransportSpec{Protocol: ProtoVegas},
		Seed:         7,
		TotalPackets: 1100,
		BatchPackets: 100,
	})
	if res.Delivered < 1100 {
		t.Errorf("delivered %d, want >= 1100", res.Delivered)
	}
	if res.TrueRouteFailures != 0 {
		t.Errorf("static run reported %d true route failures, want 0", res.TrueRouteFailures)
	}
}

func TestMobileRunDeterministicPerSeed(t *testing.T) {
	res := runTwice(t, mobileGridCfg(20))
	if res.Delivered == 0 {
		t.Fatal("mobile run delivered nothing")
	}
}

func TestMobilityCausesTrueRouteFailures(t *testing.T) {
	static, err := Run(mobileGridCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if static.TrueRouteFailures != 0 {
		t.Errorf("speed 0: %d true route failures, want 0", static.TrueRouteFailures)
	}
	mobile, err := Run(mobileGridCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	if mobile.TrueRouteFailures == 0 {
		t.Error("speed 20 m/s: no true route failures — routes never genuinely broke")
	}
	if mobile.Delivered == 0 {
		t.Error("speed 20 m/s: nothing delivered — routes never re-established")
	}
}

func TestSeedChangesMobileRun(t *testing.T) {
	cfg := mobileGridCfg(20)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime == b.SimTime && a.AggGoodput.Mean == b.AggGoodput.Mean {
		t.Error("different seeds produced identical mobile runs")
	}
}

func TestStaticRoutingRejectsMobility(t *testing.T) {
	cfg := mobileGridCfg(10)
	cfg.Scenario.Routing = RoutingStatic
	if _, err := Run(cfg); err == nil {
		t.Fatal("static routing with mobility accepted")
	}
}

func TestUnknownMobilityKindRejected(t *testing.T) {
	cfg := mobileGridCfg(0)
	cfg.Scenario.Mobility.Kind = MobilityKind(99)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown mobility kind accepted")
	}
}

func TestHalfSpecifiedFieldRejected(t *testing.T) {
	cfg := mobileGridCfg(10)
	cfg.Scenario.Mobility.FieldWidth = 2000 // height left 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("half-specified mobility field accepted")
	}
}

func TestSubUnitMaxSpeedUsable(t *testing.T) {
	// MinSpeed unset + MaxSpeed below the 1 m/s default must not fail
	// validation: the default floor adapts down to MaxSpeed.
	cfg := mobileGridCfg(0.5)
	cfg.TotalPackets = 220
	cfg.BatchPackets = 20
	if _, err := Run(cfg); err != nil {
		t.Fatalf("MaxSpeed 0.5 with MinSpeed unset rejected: %v", err)
	}
}
