// Package tcp implements the two TCP variants the paper compares — NewReno
// and Vegas — together with the receiver-side ACK policies (per-packet
// ACKing and the dynamic ACK thinning of Altman & Jiménez).
//
// Like ns-2's TCP agents, everything operates at packet granularity:
// sequence numbers count 1460-byte packets, the congestion window is
// measured in packets, and the application is an infinite (FTP) backlog.
// Packet timestamps are echoed by the sink, giving the sender exact RTT
// samples (ns-2's timestamp behaviour); Karn's problem is avoided because
// retransmitted packets carry fresh timestamps.
package tcp

import (
	"math"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
)

// Config carries the transport parameters of Table 1 plus timer settings.
// The zero value of a field selects the default in parentheses.
type Config struct {
	Wmax  int // maximum window advertised by the receiver (64)
	Winit int // initial window in slow start and after a timeout (1)
	// MaxWindow artificially bounds the congestion window, implementing
	// the paper's "NewReno Optimal Window" variant (MaxWin=3 for the
	// 7-hop chain). 0 means no extra bound.
	MaxWindow int

	InitialRTO time.Duration // RTO before the first RTT sample (1s)
	MinRTO     time.Duration // RTO floor (200ms)
	MaxRTO     time.Duration // RTO ceiling (60s)

	// Vegas thresholds in packets; the paper fixes Alpha == Beta and
	// Gamma = Alpha (all default 2).
	Alpha int
	Beta  int
	Gamma int

	// OnRetransmit, if set, observes every transport retransmission as it
	// is (re)sent. Left nil on measurement-only runs so the hot path pays
	// a single predictable branch.
	OnRetransmit func()
}

func (c Config) withDefaults() Config {
	if c.Wmax == 0 {
		c.Wmax = 64
	}
	if c.Winit == 0 {
		c.Winit = 1
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = time.Second
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if c.Beta == 0 {
		c.Beta = c.Alpha
	}
	if c.Gamma == 0 {
		c.Gamma = c.Alpha
	}
	return c
}

// Stats aggregates sender-side counters. Retransmits/delivered packets is
// the paper's Figures 7 and 12 metric.
type Stats struct {
	DataSent    uint64 // data transmissions including retransmissions
	Retransmits uint64
	Timeouts    uint64
	FastRecov   uint64 // fast-retransmit episodes
	AcksSeen    uint64
	DupAcks     uint64
}

// Sender is the interface shared by the NewReno and Vegas senders.
type Sender interface {
	// Start begins transmitting (infinite backlog).
	Start()
	// HandleAck processes an incoming ACK for this flow.
	HandleAck(p *pkt.Packet)
	// Stats returns a snapshot of the sender counters.
	Stats() Stats
	// Window returns the current congestion window in packets.
	Window() float64
	// WindowTrace exposes the time-weighted window accumulator (the core
	// layer resets it per measurement batch).
	WindowTrace() *stats.TimeWeighted
}

// Output injects a packet into the network (the routing layer's Send).
type Output func(p *pkt.Packet)

// base carries the machinery common to both senders: sequence accounting,
// RTO estimation and the retransmission timer, packet construction, and
// window tracing.
type base struct {
	sched *sim.Scheduler
	cfg   Config
	out   Output
	uids  *pkt.UIDSource

	flow     int
	src, dst pkt.NodeID

	nextSeq int64 // next sequence to transmit
	maxSeq  int64 // one past the highest sequence ever transmitted
	ackNext int64 // next sequence expected by the receiver (cum. ACK)
	cwnd    float64
	dupacks int

	// sentAt records the latest transmission time per in-flight sequence
	// (Vegas' fine-grained checks and loss bookkeeping).
	sentAt map[int64]sim.Time

	srtt, rttvar time.Duration
	hasRTT       bool
	rto          time.Duration
	backoff      int
	rtxTimer     *sim.Timer

	stats   Stats
	winHist stats.TimeWeighted

	onTimeout func()
}

func newBase(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output) *base {
	if out == nil {
		panic("tcp: nil output")
	}
	cfg = cfg.withDefaults()
	b := &base{
		sched:   sched,
		cfg:     cfg,
		out:     out,
		uids:    uids,
		flow:    flow,
		src:     src,
		dst:     dst,
		cwnd:    float64(cfg.Winit),
		sentAt:  make(map[int64]sim.Time),
		rto:     cfg.InitialRTO,
		backoff: 1,
	}
	return b
}

// effectiveWindow applies the receiver limit and the optional MaxWindow cap.
func (b *base) effectiveWindow() int {
	w := int(b.cwnd)
	if w < 1 {
		w = 1
	}
	if w > b.cfg.Wmax {
		w = b.cfg.Wmax
	}
	if b.cfg.MaxWindow > 0 && w > b.cfg.MaxWindow {
		w = b.cfg.MaxWindow
	}
	return w
}

// setCwnd updates the congestion window and the time-weighted trace.
func (b *base) setCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	if w > float64(b.cfg.Wmax) {
		w = float64(b.cfg.Wmax)
	}
	b.cwnd = w
	b.winHist.Set(b.sched.Now(), math.Min(w, float64(b.effectiveWindow())))
}

// sendUpTo transmits packets while the window has room. After a timeout
// pulled nextSeq back (go-back-N), this naturally resends the lost window.
func (b *base) sendUpTo() {
	if b.nextSeq < b.ackNext {
		// The receiver has buffered past our send point (holes were filled
		// by buffered out-of-order data): skip what is already covered.
		b.nextSeq = b.ackNext
	}
	win := int64(b.effectiveWindow())
	for b.nextSeq < b.ackNext+win {
		b.transmit(b.nextSeq)
		b.nextSeq++
	}
}

// transmit puts one data packet on the network. A packet below the highest
// sequence ever sent is a retransmission.
func (b *base) transmit(seq int64) {
	now := b.sched.Now()
	isRtx := seq < b.maxSeq
	if seq+1 > b.maxSeq {
		b.maxSeq = seq + 1
	}
	p := b.uids.NewTCP()
	p.Kind = pkt.KindTCPData
	p.Size = pkt.TCPDataSize
	p.Src = b.src
	p.Dst = b.dst
	p.TTL = 64
	p.TCP.Flow = b.flow
	p.TCP.Seq = seq
	p.TCP.SentAt = now
	p.TCP.Retransmit = isRtx
	b.sentAt[seq] = now
	b.stats.DataSent++
	if isRtx {
		b.stats.Retransmits++
		if b.cfg.OnRetransmit != nil {
			b.cfg.OnRetransmit()
		}
	}
	if !b.rtxTimer.Pending() {
		b.rtxTimer.Reset(b.currentRTO())
	}
	b.out(p)
}

// currentRTO returns the backed-off retransmission timeout.
func (b *base) currentRTO() time.Duration {
	d := b.rto * time.Duration(b.backoff)
	if d > b.cfg.MaxRTO {
		d = b.cfg.MaxRTO
	}
	return d
}

// growBackoff doubles the RTO backoff multiplier, capped at 64 (as in BSD
// TCP) so long outages cannot overflow the timer arithmetic.
func (b *base) growBackoff() {
	if b.backoff < 64 {
		b.backoff *= 2
	}
}

// sampleRTT folds a measurement into srtt/rttvar (RFC 6298) and clears the
// timer backoff.
func (b *base) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !b.hasRTT {
		b.srtt = rtt
		b.rttvar = rtt / 2
		b.hasRTT = true
	} else {
		diff := b.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		b.rttvar = (3*b.rttvar + diff) / 4
		b.srtt = (7*b.srtt + rtt) / 8
	}
	b.rto = b.srtt + 4*b.rttvar
	if b.rto < b.cfg.MinRTO {
		b.rto = b.cfg.MinRTO
	}
	if b.rto > b.cfg.MaxRTO {
		b.rto = b.cfg.MaxRTO
	}
	b.backoff = 1
}

// ackAdvance processes the cumulative part of an ACK: trims bookkeeping and
// restarts the retransmission timer. It returns how many new packets the
// ACK covers.
func (b *base) ackAdvance(ack int64) int64 {
	if ack <= b.ackNext {
		return 0
	}
	n := ack - b.ackNext
	for s := b.ackNext; s < ack; s++ {
		delete(b.sentAt, s)
	}
	b.ackNext = ack
	if b.ackNext < b.nextSeq {
		b.rtxTimer.Reset(b.currentRTO())
	} else {
		b.rtxTimer.Stop()
	}
	return n
}

// fineRTO is the fine-grained timeout Vegas checks against (srtt+4*rttvar
// without the coarse floor).
func (b *base) fineRTO() time.Duration {
	if !b.hasRTT {
		return b.cfg.InitialRTO
	}
	return b.srtt + 4*b.rttvar
}

// Window returns the current congestion window (packets).
func (b *base) Window() float64 { return b.cwnd }

// WindowTrace exposes the time-weighted window history.
func (b *base) WindowTrace() *stats.TimeWeighted { return &b.winHist }

// Stats snapshots the counters.
func (b *base) Stats() Stats { return b.stats }
