package sim

import (
	"errors"
	"testing"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(3*time.Millisecond, func() { got = append(got, 3) })
	s.At(1*time.Millisecond, func() { got = append(got, 1) })
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerTiesBreakInCreationOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestSchedulerAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler(1)
	var fired Time
	s.At(5*time.Millisecond, func() {
		s.After(2*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Millisecond {
		t.Errorf("nested After fired at %v, want 7ms", fired)
	}
}

func TestSchedulerCancelPreventsFiring(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	ev := s.At(time.Millisecond, func() { fired = true })
	s.Cancel(ev)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
}

func TestSchedulerCancelAfterFireIsNoop(t *testing.T) {
	s := NewScheduler(1)
	ev := s.At(time.Millisecond, func() {})
	s.Run()
	s.Cancel(ev) // must not panic or corrupt the heap
	s.At(2*time.Millisecond, func() {})
	s.Run()
}

func TestSchedulerCancelZeroRefIsNoop(t *testing.T) {
	s := NewScheduler(1)
	s.Cancel(EventRef{})
}

func TestSchedulerStaleCancelDoesNotHitRecycledSlot(t *testing.T) {
	s := NewScheduler(1)
	stale := s.At(time.Millisecond, func() {})
	s.Run() // fires; the event slot returns to the freelist
	fired := false
	fresh := s.At(2*time.Millisecond, func() { fired = true })
	s.Cancel(stale) // stale handle: must not cancel the recycled slot
	if fresh.Cancelled() {
		t.Fatal("fresh event reported cancelled after stale Cancel")
	}
	s.Run()
	if !fired {
		t.Error("stale Cancel killed an unrelated recycled event")
	}
}

func TestSchedulerSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	s := NewScheduler(1)
	tick := func() {}
	// Warm the freelist, then require the schedule+dispatch cycle to reuse
	// slots without touching the heap allocator.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, tick)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			s.After(time.Microsecond, tick)
		}
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/dispatch allocates %.1f objects per cycle, want 0", allocs)
	}
}

func TestSchedulerAtFuncPassesArgument(t *testing.T) {
	s := NewScheduler(1)
	var got, got2 any
	s.AtFunc(time.Millisecond, func(a any) { got = a }, 42)
	s.AfterFunc(2*time.Millisecond, func(a any) { got2 = a }, "x")
	s.Run()
	if got != 42 || got2 != "x" {
		t.Errorf("AtFunc/AfterFunc args = %v, %v; want 42, x", got, got2)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestSchedulerNilCallbackPanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	s.At(0, nil)
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Time(i) * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", s.Now())
	}
	s.RunUntil(10 * time.Millisecond)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want clock advanced to deadline", s.Now())
	}
}

func TestSchedulerRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(42 * time.Millisecond)
	if s.Now() != 42*time.Millisecond {
		t.Errorf("Now = %v, want 42ms", s.Now())
	}
}

func TestSchedulerDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var draws []int64
		var step func()
		step = func() {
			draws = append(draws, s.Rand().Int63n(1000))
			if len(draws) < 20 {
				s.After(Time(s.Rand().Int63n(100))*time.Microsecond+1, step)
			}
		}
		s.At(0, step)
		s.Run()
		return draws
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

func TestSchedulerDispatchedCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 5; i++ {
		s.At(Time(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Dispatched() != 5 {
		t.Errorf("Dispatched = %d, want 5", s.Dispatched())
	}
}

func TestTimerResetAndFire(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(5 * time.Millisecond)
	if !tm.Pending() {
		t.Fatal("timer not pending after Reset")
	}
	if tm.Deadline() != 5*time.Millisecond {
		t.Errorf("Deadline = %v, want 5ms", tm.Deadline())
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Pending() {
		t.Error("timer still pending after firing")
	}
}

func TestTimerResetReplacesPendingExpiry(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	tm := NewTimer(s, func() { at = s.Now() })
	tm.Reset(5 * time.Millisecond)
	tm.Reset(9 * time.Millisecond)
	s.Run()
	if at != 9*time.Millisecond {
		t.Errorf("timer fired at %v, want 9ms (single firing at new deadline)", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := NewTimer(s, func() { fired = true })
	tm.Reset(time.Millisecond)
	tm.Stop()
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	tm.Stop() // idempotent
}

func TestTimerResetInsideCallback(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tm *Timer
	tm = NewTimer(s, func() {
		count++
		if count < 3 {
			tm.Reset(time.Millisecond)
		}
	})
	tm.Reset(time.Millisecond)
	s.Run()
	if count != 3 {
		t.Errorf("periodic timer fired %d times, want 3", count)
	}
}

func TestTimerResetAt(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	tm := NewTimer(s, func() { at = s.Now() })
	tm.ResetAt(17 * time.Millisecond)
	s.Run()
	if at != 17*time.Millisecond {
		t.Errorf("fired at %v, want 17ms", at)
	}
}

func TestRunUntilWithCheckMatchesRunUntil(t *testing.T) {
	build := func() *Scheduler {
		s := NewScheduler(1)
		for i := 1; i <= 10; i++ {
			i := i
			s.At(Time(i)*time.Millisecond, func() {
				if i%2 == 0 {
					s.After(500*time.Microsecond, func() {})
				}
			})
		}
		return s
	}
	a := build()
	a.RunUntil(20 * time.Millisecond)
	b := build()
	if err := b.RunUntilWithCheck(20*time.Millisecond, 3, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Now() != b.Now() || a.Dispatched() != b.Dispatched() {
		t.Errorf("checked run diverged: now %v/%v, dispatched %d/%d",
			a.Now(), b.Now(), a.Dispatched(), b.Dispatched())
	}
}

func TestRunUntilWithCheckAborts(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	for i := 1; i <= 100; i++ {
		s.At(Time(i)*time.Millisecond, func() { fired++ })
	}
	boom := errors.New("cancelled")
	calls := 0
	err := s.RunUntilWithCheck(time.Second, 10, func() error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Checks run every 10 events: the third check happens after 20
	// dispatches, before event 21 fires.
	if fired != 20 {
		t.Errorf("fired %d events before abort, want 20", fired)
	}
	if s.Now() >= time.Second {
		t.Error("clock advanced to the deadline despite the abort")
	}
}
