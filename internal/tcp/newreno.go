package tcp

// NewRenoCC implements TCP NewReno congestion control (RFC 3782 as in
// ns-2's Agent/TCP/Newreno): slow start, congestion avoidance, fast
// retransmit after three duplicate ACKs, and NewReno fast recovery with
// partial-ACK retransmission.
type NewRenoCC struct {
	CCBase
	ssthresh   float64
	dupacks    int
	inRecovery bool
	recover    int64 // highest sequence outstanding when loss was detected
}

var _ CongestionControl = (*NewRenoCC)(nil)

// NewNewRenoCC returns the NewReno congestion-control strategy.
func NewNewRenoCC() *NewRenoCC { return &NewRenoCC{} }

// Init binds the engine and seeds ssthresh at the receiver window.
func (s *NewRenoCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.ssthresh = s.InitialSSThresh()
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *NewRenoCC) OnAck(a Ack) {
	e := s.e
	newlyAcked := e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}

	if s.inRecovery {
		if a.Seq > s.recover {
			// Full ACK: leave fast recovery, deflate to ssthresh.
			s.inRecovery = false
			s.dupacks = 0
			e.SetWindow(s.ssthresh)
		} else {
			// Partial ACK: the next hole is lost too — retransmit it,
			// deflate by the amount acked, stay in recovery (RFC 3782).
			e.Retransmit(a.Seq)
			w := e.Window() - float64(newlyAcked) + 1
			if w < 1 {
				w = 1
			}
			e.SetWindow(w)
		}
		return
	}
	s.dupacks = 0
	// Window growth: slow start below ssthresh, else congestion avoidance.
	s.GrowAIMD(newlyAcked, s.ssthresh)
}

// OnDupAck counts duplicates toward fast retransmit and inflates the
// window during recovery.
func (s *NewRenoCC) OnDupAck(Ack) {
	e := s.e
	if s.inRecovery {
		// Window inflation per extra duplicate.
		e.SetWindow(e.Window() + 1)
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	// Fast retransmit + NewReno fast recovery.
	e.CountFastRecovery()
	s.inRecovery = true
	s.recover = e.NextSeq() - 1
	s.ssthresh = e.Window() / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	e.SetWindow(s.ssthresh + 3)
	e.Retransmit(e.AckNext())
}

// OnTimeout handles a retransmission timeout: shrink to Winit, back off
// the timer, and slow start again. The engine then goes back N.
func (s *NewRenoCC) OnTimeout() {
	e := s.e
	flight := float64(e.InFlight())
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.inRecovery = false
	s.dupacks = 0
	e.BackoffRTO()
	e.SetWindow(float64(e.Config().Winit))
	e.RestartRTOTimer()
}
