// Quickstart: simulate one TCP Vegas flow over a 7-hop 802.11 chain at
// 2 Mbit/s and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"manetsim"
)

func main() {
	res, err := manetsim.Run(manetsim.Config{
		Topology:  manetsim.Chain(7),
		Bandwidth: manetsim.Rate2Mbps,
		Transport: manetsim.TransportSpec{Protocol: manetsim.Vegas},
		Seed:      1,
		// Reduced scale for a fast demo; drop these two lines for the
		// paper's full 110000-packet methodology.
		TotalPackets: 11000,
		BatchPackets: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TCP Vegas over a 7-hop IEEE 802.11 chain (2 Mbit/s):")
	fmt.Printf("  goodput:             %.1f kbit/s (95%% CI ±%.1f)\n",
		res.AggGoodput.Mean/1e3, res.AggGoodput.HalfCI/1e3)
	fmt.Printf("  average window:      %.2f packets\n", res.AvgWindow.Mean)
	fmt.Printf("  retransmissions:     %.4f per delivered packet\n", res.Rtx.Mean)
	fmt.Printf("  false route failures: %d\n", res.FalseRouteFailures)
	fmt.Printf("  simulated time:      %v for %d packets\n", res.SimTime.Round(1e9), res.Delivered)
}
