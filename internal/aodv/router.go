package aodv

import (
	"time"

	"manetsim/internal/mac"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Config parameterizes the protocol. The zero value selects the defaults
// in parentheses.
type Config struct {
	RREQRetries        int           // discovery attempts before giving up (3)
	RREQTimeout        time.Duration // first-attempt reply timeout, doubling per retry (500ms)
	ActiveRouteTimeout time.Duration // route lifetime without use (10s)
	BufferCap          int           // per-destination send buffer (64)
	SeenLifetime       time.Duration // RREQ duplicate-suppression window (5s)
	TTL                int           // flood diameter bound (128; must cover the longest path)
	MaxJitter          time.Duration // rebroadcast jitter (10ms)
}

func (c Config) withDefaults() Config {
	if c.RREQRetries == 0 {
		c.RREQRetries = 3
	}
	if c.RREQTimeout == 0 {
		c.RREQTimeout = 500 * time.Millisecond
	}
	if c.ActiveRouteTimeout == 0 {
		c.ActiveRouteTimeout = 10 * time.Second
	}
	if c.BufferCap == 0 {
		c.BufferCap = 64
	}
	if c.SeenLifetime == 0 {
		c.SeenLifetime = 5 * time.Second
	}
	if c.TTL == 0 {
		// RFC 3561 suggests NET_DIAMETER = 35, but the paper evaluates
		// chains up to 64 hops; the flood must span the whole network.
		c.TTL = 128
	}
	if c.MaxJitter == 0 {
		c.MaxJitter = 10 * time.Millisecond
	}
	return c
}

// Counters aggregates per-node routing statistics. FalseRouteFailures is
// the paper's Figure 9 metric: in a static network every link-layer
// failure notification tears down a route that is actually healthy. With
// mobility the same notification can be genuine — the next hop moved out
// of range — counted separately as TrueRouteFailures.
type Counters struct {
	RREQSent           uint64
	RREQForwarded      uint64
	RREPSent           uint64
	RREPForwarded      uint64
	RERRSent           uint64
	FalseRouteFailures uint64
	TrueRouteFailures  uint64 // teardowns where the next hop really was unreachable
	NoRouteDrops       uint64 // data dropped at an intermediate node without a route
	BufferDrops        uint64 // send-buffer overflow or discovery failure
	DiscoveryFailures  uint64
}

// rreqKey identifies one flood for duplicate suppression.
type rreqKey struct {
	origin pkt.NodeID
	id     uint32
}

// discovery tracks an in-progress route discovery at the origin.
type discovery struct {
	timer   *sim.Timer
	retries int
}

// Router is the per-node AODV entity. It sits between the transport layer
// (Send) and the MAC (HandlePacket / HandleLinkFailure callbacks).
type Router struct {
	sched *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the router
	id    pkt.NodeID     //manetsim:resetsafe node identity is fixed at construction
	mac   *mac.DCF       //manetsim:resetsafe MAC wiring; the MAC resets itself
	cfg   Config
	uids  *pkt.UIDSource //manetsim:resetsafe pool binding; the pool resets itself

	table   *Table
	seqNo   uint32
	rreqID  uint32
	seen    map[rreqKey]sim.Time
	buffer  map[pkt.NodeID][]*pkt.Packet
	pending map[pkt.NodeID]*discovery
	down    bool // crashed by fault injection (see Deactivate)

	deliver func(p *pkt.Packet) //manetsim:resetsafe upward wiring to the node; rebound only on rebuild
	// DropData, if set, observes every data packet the router drops
	// (no-route, buffer overflow, discovery failure, link failure).
	DropData func(p *pkt.Packet)
	// LinkAlive, if set, is the omniscient link oracle used to classify MAC
	// give-ups: it reports whether the physical link to a neighbor is
	// currently usable. Without it (static scenarios) every link failure is
	// false by construction, matching the paper.
	LinkAlive func(nextHop pkt.NodeID) bool
	// OnRouteFailure, if set, observes every classified route teardown
	// (falseFailure follows the paper's definition: the MAC gave up on a
	// link that was actually healthy).
	OnRouteFailure func(falseFailure bool)

	Counters Counters
}

// New creates a router for node id. deliver receives packets addressed to
// this node. The router must be wired to the MAC by passing
// HandlePacket/HandleLinkFailure as the MAC callbacks.
func New(sched *sim.Scheduler, id pkt.NodeID, m *mac.DCF, uids *pkt.UIDSource, cfg Config, deliver func(p *pkt.Packet)) *Router {
	if deliver == nil {
		panic("aodv: deliver callback required")
	}
	return &Router{
		sched:   sched,
		id:      id,
		mac:     m,
		cfg:     cfg.withDefaults(),
		uids:    uids,
		table:   NewTable(sched, cfg.withDefaults().ActiveRouteTimeout),
		seen:    make(map[rreqKey]sim.Time),
		buffer:  make(map[pkt.NodeID][]*pkt.Packet),
		pending: make(map[pkt.NodeID]*discovery),
		deliver: deliver,
	}
}

// Reset rewinds the router to its just-constructed state for a new run,
// keeping map capacity. Call after the scheduler was reset: pending
// discovery timers are already stale, and buffered packets from the
// previous run belong to a pool that dropped them, so their references are
// simply forgotten. The optional hooks (DropData, LinkAlive,
// OnRouteFailure) are cleared; the owner reinstalls what it needs.
func (r *Router) Reset(cfg Config) {
	r.cfg = cfg.withDefaults()
	r.table.Reset(sim.Time(r.cfg.ActiveRouteTimeout))
	r.seqNo = 0
	r.rreqID = 0
	clear(r.seen)
	clear(r.buffer)
	clear(r.pending)
	r.down = false
	r.DropData = nil
	r.LinkAlive = nil
	r.OnRouteFailure = nil
	r.Counters = Counters{}
}

// Deactivate crashes the router mid-run: pending discoveries stop,
// buffered packets are released, and the routing table plus duplicate
// state is wiped — a restarted node rediscovers every route from
// scratch, while its sequence number survives (monotone across reboots
// keeps neighbors' freshness comparisons sound). Counters are preserved
// so the run's cumulative batch deltas stay consistent.
func (r *Router) Deactivate() {
	r.down = true
	for dst, d := range r.pending {
		d.timer.Stop()
		delete(r.pending, dst)
	}
	for dst, q := range r.buffer {
		for _, p := range q {
			p.Release()
		}
		delete(r.buffer, dst)
	}
	r.table.Reset(sim.Time(r.cfg.ActiveRouteTimeout))
	clear(r.seen)
}

// Activate restarts a crashed router with an empty table.
func (r *Router) Activate() { r.down = false }

// Table exposes the routing table (read-mostly; used by tests and tools).
func (r *Router) Table() *Table { return r.table }

// Send routes a locally originated packet: forward over a known route or
// buffer it and start a discovery.
func (r *Router) Send(p *pkt.Packet) {
	if r.down {
		// Crashed node: nothing originates while down.
		p.Release()
		return
	}
	if p.Dst == r.id {
		r.deliver(p)
		return
	}
	if rt := r.table.Lookup(p.Dst); rt != nil {
		r.table.Refresh(p.Dst)
		r.mac.Enqueue(p, rt.NextHop)
		return
	}
	r.bufferPacket(p)
	r.startDiscovery(p.Dst)
}

func (r *Router) bufferPacket(p *pkt.Packet) {
	q := r.buffer[p.Dst]
	if len(q) >= r.cfg.BufferCap {
		r.Counters.BufferDrops++
		r.dropData(q[0])
		q[0].Release()
		q = q[1:]
	}
	r.buffer[p.Dst] = append(q, p)
}

func (r *Router) dropData(p *pkt.Packet) {
	if p.Kind.IsData() || p.Kind == pkt.KindTCPAck {
		if r.DropData != nil {
			r.DropData(p)
		}
	}
}

// startDiscovery begins or continues a route discovery toward dst.
func (r *Router) startDiscovery(dst pkt.NodeID) {
	if _, ok := r.pending[dst]; ok {
		return // discovery already running
	}
	d := &discovery{}
	d.timer = sim.NewTimer(r.sched, func() { r.discoveryTimeout(dst) })
	r.pending[dst] = d
	r.sendRREQ(dst, d)
}

func (r *Router) sendRREQ(dst pkt.NodeID, d *discovery) {
	r.seqNo++
	r.rreqID++
	req := &RREQ{ID: r.rreqID, Origin: r.id, OriginSeq: r.seqNo, Dst: dst}
	if e := r.table.Entry(dst); e != nil {
		req.DstSeq = e.SeqNo
		req.DstKnown = true
	}
	// Suppress our own flood coming back.
	r.seen[rreqKey{origin: r.id, id: req.ID}] = r.sched.Now() + sim.Time(r.cfg.SeenLifetime)
	p := r.uids.New()
	p.Kind = pkt.KindRouting
	p.Size = RREQSize
	p.Src = r.id
	p.Dst = pkt.Broadcast
	p.TTL = r.cfg.TTL
	p.Routing = req
	r.Counters.RREQSent++
	r.mac.Enqueue(p, pkt.Broadcast)
	timeout := r.cfg.RREQTimeout << uint(d.retries)
	d.timer.Reset(sim.Time(timeout))
}

// discoveryTimeout retries the flood or gives up and flushes the buffer.
func (r *Router) discoveryTimeout(dst pkt.NodeID) {
	d := r.pending[dst]
	if d == nil {
		return
	}
	d.retries++
	if d.retries < r.cfg.RREQRetries {
		r.sendRREQ(dst, d)
		return
	}
	delete(r.pending, dst)
	r.Counters.DiscoveryFailures++
	for _, p := range r.buffer[dst] {
		r.Counters.BufferDrops++
		r.dropData(p)
		p.Release()
	}
	delete(r.buffer, dst)
}

// HandlePacket is the MAC's Deliver callback: process routing control or
// forward/deliver data.
func (r *Router) HandlePacket(p *pkt.Packet, from pkt.NodeID) {
	if p.Kind == pkt.KindRouting {
		switch m := p.Routing.(type) {
		case *RREQ:
			r.handleRREQ(p, m, from)
		case *RREP:
			r.handleRREP(m, from)
		case *RERR:
			r.handleRERR(m, from)
		}
		// Control payloads are consumed in place (forwarding builds fresh
		// packets), so the delivered reference ends here.
		p.Release()
		return
	}
	if p.Dst == r.id {
		r.deliver(p)
		return
	}
	// Forward along the table; refresh the route and the reverse route.
	if rt := r.table.Lookup(p.Dst); rt != nil {
		r.table.Refresh(p.Dst)
		r.table.Refresh(p.Src)
		r.mac.Enqueue(p, rt.NextHop)
		return
	}
	// No route at an intermediate node: drop and tell the source. Copy the
	// destination out before releasing — the packet block may recycle.
	r.Counters.NoRouteDrops++
	dst := p.Dst
	r.dropData(p)
	p.Release()
	r.sendRERR([]pkt.NodeID{dst}, []uint32{r.bumpedSeq(dst)})
}

func (r *Router) bumpedSeq(dst pkt.NodeID) uint32 {
	if e := r.table.Entry(dst); e != nil {
		return e.SeqNo
	}
	return 0
}

func (r *Router) handleRREQ(p *pkt.Packet, req *RREQ, from pkt.NodeID) {
	key := rreqKey{origin: req.Origin, id: req.ID}
	now := r.sched.Now()
	if exp, ok := r.seen[key]; ok && exp > now {
		return
	}
	r.seen[key] = now + sim.Time(r.cfg.SeenLifetime)
	r.gcSeen(now)

	// Reverse route to the origin through the previous hop.
	r.table.Update(req.Origin, from, req.HopCount+1, req.OriginSeq)
	if from != req.Origin {
		// Neighbor route for the last hop (hop count 1, unknown seq: use 0
		// only if absent).
		if r.table.Lookup(from) == nil {
			r.table.Update(from, from, 1, 0)
		}
	}

	if req.Dst == r.id {
		// Destination replies. RFC 3561 §6.6.1: sync to max(own seq, RREQ's
		// DstSeq), then increment when the requester already knew the
		// current value — each rediscovery round must produce a strictly
		// fresher route, or stale equal-sequence entries left around the
		// network (a mobility staple) keep outranking the new path.
		if req.DstKnown && seqGreater(req.DstSeq, r.seqNo) {
			r.seqNo = req.DstSeq
		}
		if req.DstKnown && req.DstSeq == r.seqNo {
			r.seqNo++
		}
		r.sendRREP(req.Origin, r.id, r.seqNo, 0, from)
		return
	}
	if rt := r.table.Lookup(req.Dst); rt != nil && (!req.DstKnown || !seqGreater(req.DstSeq, rt.SeqNo)) {
		// Intermediate node with a fresh-enough route replies on behalf of
		// the destination.
		r.sendRREP(req.Origin, req.Dst, rt.SeqNo, rt.HopCount, from)
		return
	}
	// Rebroadcast with jitter.
	if p.TTL <= 1 {
		return
	}
	fwd := &RREQ{
		ID: req.ID, Origin: req.Origin, OriginSeq: req.OriginSeq,
		Dst: req.Dst, DstSeq: req.DstSeq, DstKnown: req.DstKnown,
		HopCount: req.HopCount + 1,
	}
	np := r.uids.New()
	np.Kind = pkt.KindRouting
	np.Size = RREQSize
	np.Src = req.Origin
	np.Dst = pkt.Broadcast
	np.TTL = p.TTL - 1
	np.Routing = fwd
	r.Counters.RREQForwarded++
	jitter := sim.Time(r.sched.Rand().Int63n(int64(r.cfg.MaxJitter) + 1))
	// Route discovery is the cold path (once per RREQ forward, not per data
	// frame) and the rebroadcast captures both the router and the packet.
	//manetsim:allow hotpathalloc
	r.sched.After(jitter, func() { r.mac.Enqueue(np, pkt.Broadcast) })
}

// gcSeen prunes expired duplicate-suppression entries opportunistically to
// bound memory on long runs.
func (r *Router) gcSeen(now sim.Time) {
	if len(r.seen) < 4096 {
		return
	}
	for k, exp := range r.seen {
		if exp <= now {
			delete(r.seen, k)
		}
	}
}

// sendRREP emits a reply toward origin through nextHop.
func (r *Router) sendRREP(origin, dst pkt.NodeID, dstSeq uint32, hopCount int, nextHop pkt.NodeID) {
	rep := &RREP{Origin: origin, Dst: dst, DstSeq: dstSeq, HopCount: hopCount}
	p := r.uids.New()
	p.Kind = pkt.KindRouting
	p.Size = RREPSize
	p.Src = r.id
	p.Dst = origin
	p.TTL = r.cfg.TTL
	p.Routing = rep
	r.Counters.RREPSent++
	r.mac.Enqueue(p, nextHop)
}

func (r *Router) handleRREP(rep *RREP, from pkt.NodeID) {
	// Forward route to the replied destination.
	r.table.Update(rep.Dst, from, rep.HopCount+1, rep.DstSeq)
	if rep.Origin == r.id {
		// Discovery complete: flush buffered traffic.
		if d := r.pending[rep.Dst]; d != nil {
			d.timer.Stop()
			delete(r.pending, rep.Dst)
		}
		q := r.buffer[rep.Dst]
		delete(r.buffer, rep.Dst)
		for _, p := range q {
			r.Send(p)
		}
		return
	}
	// Forward the RREP along the reverse route.
	rt := r.table.Lookup(rep.Origin)
	if rt == nil {
		return
	}
	fwd := &RREP{Origin: rep.Origin, Dst: rep.Dst, DstSeq: rep.DstSeq, HopCount: rep.HopCount + 1}
	p := r.uids.New()
	p.Kind = pkt.KindRouting
	p.Size = RREPSize
	p.Src = r.id
	p.Dst = rep.Origin
	p.TTL = r.cfg.TTL
	p.Routing = fwd
	r.Counters.RREPForwarded++
	r.mac.Enqueue(p, rt.NextHop)
}

func (r *Router) handleRERR(e *RERR, from pkt.NodeID) {
	var dsts []pkt.NodeID
	var seqs []uint32
	for i, dst := range e.Unreachable {
		rt := r.table.Entry(dst)
		if rt != nil && rt.Valid && rt.NextHop == from {
			rt.Valid = false
			if seqGreater(e.Seqs[i], rt.SeqNo) {
				rt.SeqNo = e.Seqs[i]
			}
			dsts = append(dsts, dst)
			seqs = append(seqs, rt.SeqNo)
		}
	}
	if len(dsts) > 0 {
		r.sendRERR(dsts, seqs)
	}
}

// sendRERR broadcasts a route error for the given destinations.
func (r *Router) sendRERR(dsts []pkt.NodeID, seqs []uint32) {
	p := r.uids.New()
	p.Kind = pkt.KindRouting
	p.Size = RERRSize + 8*len(dsts)
	p.Src = r.id
	p.Dst = pkt.Broadcast
	p.TTL = 1
	p.Routing = &RERR{Unreachable: dsts, Seqs: seqs}
	r.Counters.RERRSent++
	r.mac.Enqueue(p, pkt.Broadcast)
}

// HandleLinkFailure is the MAC's LinkFailure callback: the link layer gave
// up on nextHop. AODV cannot distinguish a genuine route break from
// contention on a healthy link, so either way it invalidates every route
// through that hop, drops the queued traffic, and broadcasts an RERR. The
// LinkAlive oracle only classifies the event for measurement: a teardown
// with the neighbor still in range is the paper's false route failure.
func (r *Router) HandleLinkFailure(p *pkt.Packet, nextHop pkt.NodeID) {
	falseFailure := r.LinkAlive == nil || r.LinkAlive(nextHop)
	if falseFailure {
		r.Counters.FalseRouteFailures++
	} else {
		r.Counters.TrueRouteFailures++
	}
	if r.OnRouteFailure != nil {
		r.OnRouteFailure(falseFailure)
	}
	dsts, seqs := r.table.InvalidateNextHop(nextHop)

	// Drop the failed packet and everything queued behind it for the same
	// next hop.
	r.dropData(p)
	p.Release()
	flushed := r.mac.FilterQueue(func(_ *pkt.Packet, nh pkt.NodeID) bool { return nh != nextHop })
	for _, fp := range flushed {
		r.dropData(fp)
		fp.Release()
	}
	if len(dsts) > 0 {
		r.sendRERR(dsts, seqs)
	}
}
