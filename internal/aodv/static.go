package aodv

import (
	"fmt"

	"manetsim/internal/geo"
	"manetsim/internal/mac"
	"manetsim/internal/pkt"
)

// StaticRouter is a drop-in replacement for Router that uses precomputed
// shortest-path (minimum hop) routes and never reacts to link failures.
// It isolates AODV's contribution to the paper's results — the
// `BenchmarkAblationStaticRoutes` experiment — and is handy in unit tests.
type StaticRouter struct {
	id      pkt.NodeID          //manetsim:resetsafe node identity is fixed at construction
	mac     *mac.DCF            //manetsim:resetsafe MAC wiring; the MAC resets itself
	next    []pkt.NodeID        //manetsim:resetsafe precomputed routes; owner checks placement is unchanged before reuse
	deliver func(p *pkt.Packet) //manetsim:resetsafe upward wiring to the node; rebound only on rebuild
	// DropData observes data packets dropped for lack of a path or by
	// link-layer failure (no retransmission happens at this layer).
	DropData func(p *pkt.Packet)

	Counters Counters
}

// NewStatic builds a static router for node id over the unit-disk graph of
// positions with the given radio range, using BFS hop counts.
func NewStatic(id pkt.NodeID, m *mac.DCF, positions []geo.Point, radioRange float64, deliver func(p *pkt.Packet)) *StaticRouter {
	if deliver == nil {
		panic("aodv: deliver callback required")
	}
	n := len(positions)
	adj := geo.Neighbors(positions, radioRange)
	next := make([]pkt.NodeID, n)
	for d := 0; d < n; d++ {
		next[d] = pkt.Broadcast // unreachable marker
	}
	// BFS from id; next hop toward every destination is the first step of
	// the reverse path.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{int(id)}
	parent[id] = int(id)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	for d := 0; d < n; d++ {
		if d == int(id) || parent[d] == -1 {
			continue
		}
		hop := d
		for parent[hop] != int(id) {
			hop = parent[hop]
		}
		next[d] = pkt.NodeID(hop)
	}
	return &StaticRouter{id: id, mac: m, next: next, deliver: deliver}
}

// Reset clears the per-run state (counters and the DropData hook) while
// keeping the precomputed routes. Only valid when the node placement is
// unchanged — the owner checks that before reusing a static router, since
// the routes are a pure function of the positions.
func (r *StaticRouter) Reset() {
	r.DropData = nil
	r.Counters = Counters{}
}

// NextHop returns the next hop toward dst, or pkt.Broadcast when dst is
// unreachable.
func (r *StaticRouter) NextHop(dst pkt.NodeID) pkt.NodeID { return r.next[dst] }

// Send routes a locally originated packet.
func (r *StaticRouter) Send(p *pkt.Packet) {
	if p.Dst == r.id {
		r.deliver(p)
		return
	}
	nh := r.next[p.Dst]
	if nh == pkt.Broadcast {
		panic(fmt.Sprintf("aodv: static route missing %d->%d", r.id, p.Dst))
	}
	r.mac.Enqueue(p, nh)
}

// HandlePacket forwards or delivers (MAC Deliver callback).
func (r *StaticRouter) HandlePacket(p *pkt.Packet, _ pkt.NodeID) {
	if p.Kind == pkt.KindRouting {
		p.Release() // no control traffic in static mode
		return
	}
	if p.Dst == r.id {
		r.deliver(p)
		return
	}
	r.Send(p)
}

// HandleLinkFailure drops the packet silently: static routes never change,
// so the loss surfaces to the transport layer only.
func (r *StaticRouter) HandleLinkFailure(p *pkt.Packet, _ pkt.NodeID) {
	if r.DropData != nil && (p.Kind.IsData() || p.Kind == pkt.KindTCPAck) {
		r.DropData(p)
	}
	p.Release()
}
