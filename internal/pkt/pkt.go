// Package pkt defines the network-layer packet representation shared by
// every protocol layer: transport headers (TCP/UDP at ns-2-style packet
// granularity), routing payloads, and the wire sizes the paper fixes
// (1460-byte TCP payloads).
package pkt

import (
	"fmt"
	"time"
)

// NodeID identifies a node in a scenario (its index in the topology).
type NodeID int

// Broadcast is the link-layer broadcast address used by routing control
// traffic.
const Broadcast NodeID = -1

// Wire sizes in bytes. The paper fixes the TCP payload at 1460 bytes; the
// 40-byte TCP/IP header puts a full data segment at 1500 bytes on the wire.
const (
	TCPPayloadSize = 1460
	TCPIPHeader    = 40
	TCPDataSize    = TCPPayloadSize + TCPIPHeader
	TCPAckSize     = TCPIPHeader
	UDPIPHeader    = 28
	UDPDataSize    = TCPPayloadSize + UDPIPHeader
)

// Kind classifies a packet for statistics and demultiplexing.
type Kind int

// Packet kinds.
const (
	KindTCPData Kind = iota + 1
	KindTCPAck
	KindUDPData
	KindRouting
)

var kindNames = map[Kind]string{
	KindTCPData: "tcp-data",
	KindTCPAck:  "tcp-ack",
	KindUDPData: "udp-data",
	KindRouting: "routing",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsData reports whether the packet kind carries application data (used by
// per-flow goodput accounting).
func (k Kind) IsData() bool { return k == KindTCPData || k == KindUDPData }

// TCPHeader carries transport state at packet granularity, exactly like
// ns-2's TCP agents: Seq and Ack count packets, not bytes.
type TCPHeader struct {
	Flow int   // flow identifier (connection demux key)
	Seq  int64 // data: packet sequence number, starting at 0
	Ack  int64 // ack: cumulative, next expected sequence number
	// SentAt is the transmission timestamp of the data packet, echoed back
	// in the ACK; Vegas uses it for fine-grained RTT measurements and
	// NewReno for RTO sampling (ns-2's timestamp option behaviour).
	SentAt time.Duration
	// NoEcho marks ACKs whose timestamp is ambiguous (emitted by the
	// delayed-ACK regeneration timer, not by a data arrival); senders
	// skip RTT sampling on them, mirroring Karn's rule.
	NoEcho bool
	// Retransmit marks transport-layer retransmissions for accounting.
	Retransmit bool
}

// UDPHeader carries the paced-UDP flow id and sequence number. SentAt is
// the transmission timestamp used for end-to-end delay accounting.
type UDPHeader struct {
	Flow   int
	Seq    int64
	SentAt time.Duration
}

// Packet is one network-layer datagram. Packets are passed by pointer and
// never mutated after construction except for hop-by-hop fields (TTL);
// layered headers are nil when absent.
//
// Packets built through a Pool are reference counted: the creator starts
// with one reference, every layer that keeps the packet beyond the current
// callback (the MAC handing it to the channel, a receiver delivering it up
// the stack) takes another with Retain, and every terminal consumption —
// sink delivery, queue drop, routing give-up — pairs with one Release.
// When the count reaches zero the block (packet plus its co-allocated
// header) returns to the pool. Packets built as plain literals (tests,
// external tools) have no pool; Retain/Release on them are no-ops.
type Packet struct {
	UID  uint64 // globally unique per scenario, for tracing
	Kind Kind
	Size int // bytes at the network layer (payload + IP + transport header)

	Src, Dst NodeID // end-to-end addresses
	TTL      int

	TCP     *TCPHeader
	UDP     *UDPHeader
	Routing any // routing-protocol payload (owned by the routing package)

	// Pool plumbing. The transport headers are co-allocated in the same
	// block: a pooled TCP packet costs one allocation on first use and
	// zero at steady state, instead of separate packet+header allocations
	// per transmission.
	pool   *Pool
	refs   int32
	next   *Packet // freelist link
	ownTCP TCPHeader
	ownUDP UDPHeader
}

// String renders a compact trace representation.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil && p.Kind == KindTCPData:
		return fmt.Sprintf("#%d tcp-data f%d seq=%d %d->%d", p.UID, p.TCP.Flow, p.TCP.Seq, p.Src, p.Dst)
	case p.TCP != nil:
		return fmt.Sprintf("#%d tcp-ack f%d ack=%d %d->%d", p.UID, p.TCP.Flow, p.TCP.Ack, p.Src, p.Dst)
	case p.UDP != nil:
		return fmt.Sprintf("#%d udp f%d seq=%d %d->%d", p.UID, p.UDP.Flow, p.UDP.Seq, p.Src, p.Dst)
	default:
		return fmt.Sprintf("#%d %s %d->%d", p.UID, p.Kind, p.Src, p.Dst)
	}
}

// Pool hands out unique packet ids and recycled packet blocks for one
// scenario. The zero value is ready to use. Pools are not safe for
// concurrent use — exactly like the scheduler, one pool belongs to one
// single-threaded simulation.
type Pool struct {
	nextUID uint64
	free    *Packet //manetsim:resetsafe freelist survives resets; Release re-zeroes blocks on the way in
}

// UIDSource is the historical name of Pool, kept for call sites that only
// draw ids.
type UIDSource = Pool

// Next returns a fresh id.
func (u *Pool) Next() uint64 {
	u.nextUID++
	return u.nextUID
}

// Reset rewinds the id sequence for a new run while keeping the freelist.
// Blocks still held by the previous run (packets in flight when it was cut
// short) are simply dropped to the garbage collector: they are not on the
// freelist, and Release fully re-zeroes blocks on the way in, so reuse can
// never resurrect stale state.
func (u *Pool) Reset() { u.nextUID = 0 }

// get pops a recycled block (or allocates one) and stamps the common
// pooled-packet state. The UID is drawn here, so pooled construction keeps
// the exact id sequence of the old literal construction sites.
//
//manetsim:hotpath
func (u *Pool) get() *Packet {
	p := u.free
	if p != nil {
		u.free = p.next
		p.next = nil
	} else {
		p = &Packet{}
	}
	p.UID = u.Next()
	p.pool = u
	p.refs = 1
	return p
}

// NewTCP returns a pooled packet with a zeroed co-allocated TCP header
// attached. The caller fills Kind, Size, addresses, TTL, and header fields.
func (u *Pool) NewTCP() *Packet {
	p := u.get()
	p.ownTCP = TCPHeader{}
	p.TCP = &p.ownTCP
	return p
}

// NewUDP returns a pooled packet with a zeroed co-allocated UDP header.
func (u *Pool) NewUDP() *Packet {
	p := u.get()
	p.ownUDP = UDPHeader{}
	p.UDP = &p.ownUDP
	return p
}

// New returns a pooled packet with no transport header (routing traffic).
func (u *Pool) New() *Packet {
	return u.get()
}

// Retain adds a reference to a pooled packet (no-op for literals).
func (p *Packet) Retain() {
	if p.pool != nil {
		p.refs++
	}
}

// Release drops one reference; the last release returns the block to its
// pool. Releasing a literal (non-pooled) packet is a no-op. Over-releasing
// panics — silently recycling a live packet would corrupt the simulation
// far from the bug.
//
//manetsim:hotpath
func (p *Packet) Release() {
	pl := p.pool
	if pl == nil {
		return
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.refs < 0 {
		panic(fmt.Sprintf("pkt: over-released packet #%d", p.UID))
	}
	*p = Packet{pool: pl, next: pl.free}
	pl.free = p
}
