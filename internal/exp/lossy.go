package exp

import (
	"fmt"

	"manetsim/internal/core"
	"manetsim/internal/phy"
)

// Lossy is an extension experiment over the link-impairment subsystem:
// Reno versus Westwood+ on the 7-hop chain under uniform per-frame loss
// ramped from 0% to 5%. In this regime losses are random, not
// congestive, so Reno's blind window halving over-reacts while
// Westwood+'s bandwidth-estimate backoff holds its rate — the gap is
// the non-congestion-loss argument of the wireless TCP literature made
// measurable.
func Lossy(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "lossy", Title: "7-hop chain, 2 Mbit/s: goodput vs uniform frame loss (Reno vs Westwood+)",
		XLabel: "frame loss [%]", YLabel: "goodput [kbit/s]",
	}
	variants := []struct {
		name string
		t    core.TransportSpec
	}{
		{"Reno", core.TransportSpec{Protocol: core.ProtoReno}},
		{"Westwood+", core.TransportSpec{Name: "westwood"}},
	}
	lossAxis := []float64{0, 0.01, 0.02, 0.05}
	for _, v := range variants {
		var cfgs []core.Config
		for _, p := range lossAxis {
			cfg := chainCfg(7, phy.Rate2Mbps, v.t)
			if p > 0 {
				cfg.LinkModel = core.UniformLossModel(p)
			}
			cfgs = append(cfgs, cfg)
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%g", lossAxis[i]*100), Y: kbit(res.AggGoodput.Mean)})
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"loss is injected per frame copy at the PHY (model: uniform), below the MAC's ARQ — TCP only sees the residue the retry limit lets through")
	return f, nil
}
