// Energy quantifies the paper's energy argument: Vegas' near-zero
// retransmission count and small window translate into less radio air time
// — and therefore fewer joules — per delivered megabyte, which is what
// matters for battery-powered ad hoc devices.
//
//	go run ./examples/energy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	fmt.Println("8-hop chain, 2 Mbit/s: energy per delivered megabyte")
	fmt.Printf("%-24s %12s %12s %14s\n", "variant", "J/MB", "rtx/pkt", "goodput kbit/s")
	type row struct {
		name string
		t    manetsim.TransportSpec
	}
	for _, v := range []row{
		{"Vegas", manetsim.TransportSpec{Protocol: manetsim.Vegas}},
		{"Vegas + thinning", manetsim.TransportSpec{Protocol: manetsim.Vegas, AckThinning: true}},
		{"NewReno", manetsim.TransportSpec{Protocol: manetsim.NewReno}},
		{"NewReno + thinning", manetsim.TransportSpec{Protocol: manetsim.NewReno, AckThinning: true}},
	} {
		res, err := manetsim.Run(context.Background(), manetsim.Chain(8),
			manetsim.WithBandwidth(manetsim.Rate2Mbps),
			manetsim.WithTransport(v.t),
			manetsim.WithSeed(1),
			manetsim.WithPackets(demoPackets(11000), 0),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %12.1f %12.4f %14.1f\n",
			v.name, res.Energy.JoulesPerMB, res.Rtx.Mean, res.AggGoodput.Mean/1e3)
	}
	fmt.Println("\n(lower J/MB is better; the gap tracks the retransmission counts,")
	fmt.Println(" matching the paper's energy-consumption argument)")
}
