package tcp

import (
	"testing"
	"time"

	"manetsim/internal/pkt"
)

func TestNewRenoSlowStartDoublesPerRTT(t *testing.T) {
	// Clean fat pipe: 20ms RTT, fast service, no losses.
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	s := pp.connectNewReno(Config{})
	pp.run(400 * time.Millisecond)
	// Exponential growth must have filled the advertised window by now
	// (~64 packets needs ~6 RTTs = 120ms).
	if s.Window() < 60 {
		t.Errorf("cwnd = %v after 20 RTTs of clean slow start, want near Wmax 64", s.Window())
	}
	if got := s.Stats().Timeouts; got != 0 {
		t.Errorf("timeouts = %d, want 0", got)
	}
	if got := s.Stats().Retransmits; got != 0 {
		t.Errorf("retransmits = %d, want 0", got)
	}
	if pp.sink.Stats().GoodputPackets < 500 {
		t.Errorf("goodput = %d packets, implausibly low", pp.sink.Stats().GoodputPackets)
	}
}

func TestNewRenoRespectsMaxWindow(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	s := pp.connectNewReno(Config{MaxWindow: 3})
	pp.run(300 * time.Millisecond)
	// cwnd may grow internally but the effective window (and thus flight
	// size) stays at 3.
	if got := s.effectiveWindow(); got != 3 {
		t.Errorf("effective window = %d, want 3", got)
	}
	// Goodput bounded by 3 packets per RTT (20ms) = 150 pkt/s.
	max := int64(300/20*3) + 6
	if g := pp.sink.Stats().GoodputPackets; g > max {
		t.Errorf("goodput %d exceeds MaxWindow bound %d", g, max)
	}
}

func TestNewRenoFastRetransmitSingleLoss(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	dropped := false
	pp.dropData = func(h *pkt2) bool {
		if h.Seq == 30 && !h.Retransmit && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s := pp.connectNewReno(Config{})
	pp.run(2 * time.Second)
	st := s.Stats()
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (fast retransmit should recover)", st.Timeouts)
	}
	if st.FastRecov != 1 {
		t.Errorf("fast recoveries = %d, want 1", st.FastRecov)
	}
	if st.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1", st.Retransmits)
	}
	if pp.sink.Stats().GoodputPackets < 1000 {
		t.Errorf("goodput = %d, transfer stalled", pp.sink.Stats().GoodputPackets)
	}
}

func TestNewRenoPartialAckRecoversMultipleLossesWithoutTimeout(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	drops := map[int64]bool{40: true, 42: true, 44: true}
	pp.dropData = func(h *pkt2) bool {
		if h.Retransmit {
			return false
		}
		if drops[h.Seq] {
			delete(drops, h.Seq)
			return true
		}
		return false
	}
	s := pp.connectNewReno(Config{})
	pp.run(3 * time.Second)
	st := s.Stats()
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (NewReno partial ACKs must recover)", st.Timeouts)
	}
	if st.FastRecov != 1 {
		t.Errorf("fast recovery episodes = %d, want 1 (partial ACKs stay in recovery)", st.FastRecov)
	}
	if st.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", st.Retransmits)
	}
	if pp.sink.Stats().GoodputPackets < 1000 {
		t.Errorf("goodput = %d, transfer stalled", pp.sink.Stats().GoodputPackets)
	}
}

func TestNewRenoTimeoutOnTotalLoss(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	blackout := false
	pp.dropData = func(h *pkt2) bool { return blackout }
	s := pp.connectNewReno(Config{})
	pp.sched.At(500*time.Millisecond, func() { blackout = true })
	pp.sched.At(1500*time.Millisecond, func() { blackout = false })
	pp.run(4 * time.Second)
	st := s.Stats()
	if st.Timeouts == 0 {
		t.Error("no timeout despite a 1s blackout")
	}
	// Transfer resumes after the blackout.
	if pp.sink.Stats().GoodputPackets < 1500 {
		t.Errorf("goodput = %d, did not resume after blackout", pp.sink.Stats().GoodputPackets)
	}
}

func TestNewRenoRTOBackoffDoubles(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	pp.dropData = func(h *pkt2) bool { return h.Seq >= 5 } // permanent hole
	s := pp.connectNewReno(Config{})
	pp.run(10 * time.Second)
	if s.Stats().Timeouts < 3 {
		t.Fatalf("timeouts = %d, want >=3", s.Stats().Timeouts)
	}
	if s.backoff < 8 {
		t.Errorf("backoff = %d after %d timeouts, want exponential growth", s.backoff, s.Stats().Timeouts)
	}
}

func TestNewRenoLossesHalveWindow(t *testing.T) {
	// Tight buffer: NewReno must overflow it and halve cwnd repeatedly,
	// producing the sawtooth.
	pp := newPipe(1, 10*time.Millisecond, 1*time.Millisecond, 10)
	s := pp.connectNewReno(Config{})
	maxW := 0.0
	probe := func() {}
	probe = func() {
		if s.Window() > maxW {
			maxW = s.Window()
		}
		pp.sched.After(10*time.Millisecond, probe)
	}
	pp.sched.At(0, probe)
	pp.run(5 * time.Second)
	if s.Stats().FastRecov == 0 && s.Stats().Timeouts == 0 {
		t.Error("no loss events despite a 10-packet bottleneck buffer")
	}
	// BDP = 20ms/1ms = 20 packets + 10 queue; cwnd must have been driven
	// well above the BDP (loss probing) but cannot sit at Wmax forever.
	if maxW < 25 {
		t.Errorf("max cwnd = %v, want above path BDP (loss-probing behaviour)", maxW)
	}
}

// pkt2 aliases the TCP header type for the drop functions' brevity.
type pkt2 = pkt.TCPHeader
