// Package udp implements the paper's optimally paced UDP reference
// transport: a constant-bit-rate source emitting 1460-byte packets at a
// fixed inter-packet gap, and a counting sink. The source neither
// retransmits nor adapts; sweeping the gap and taking the goodput maximum
// (Figure 10) gives the optimum any transport protocol could reach over
// the same channel.
package udp

import (
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
)

// Sender is the paced (CBR) UDP source.
type Sender struct {
	sched *sim.Scheduler //manetsim:resetsafe scheduler binding lives as long as the sender
	out   func(p *pkt.Packet)
	uids  *pkt.UIDSource //manetsim:resetsafe pool binding; the pool resets itself

	flow     int
	src, dst pkt.NodeID
	gap      time.Duration
	timer    *sim.Timer

	nextSeq int64
	Sent    int64
}

// NewSender creates a paced source emitting one packet every gap.
func NewSender(sched *sim.Scheduler, flow int, src, dst pkt.NodeID, gap time.Duration, uids *pkt.UIDSource, out func(p *pkt.Packet)) *Sender {
	if gap <= 0 {
		panic("udp: non-positive pacing gap")
	}
	if out == nil {
		panic("udp: nil output")
	}
	s := &Sender{sched: sched, out: out, uids: uids, flow: flow, src: src, dst: dst, gap: gap}
	s.timer = sim.NewTimer(sched, s.tick)
	return s
}

// Reset rebinds the source to a new run over the same scheduler, keeping
// the timer. The flow identity, gap and output are taken fresh. Call after
// the scheduler was reset.
func (s *Sender) Reset(flow int, src, dst pkt.NodeID, gap time.Duration, out func(p *pkt.Packet)) {
	if gap <= 0 {
		panic("udp: non-positive pacing gap")
	}
	if out == nil {
		panic("udp: nil output")
	}
	s.out = out
	s.flow = flow
	s.src = src
	s.dst = dst
	s.gap = gap
	s.timer.Stop()
	s.nextSeq = 0
	s.Sent = 0
}

// Start begins paced transmission.
func (s *Sender) Start() { s.tick() }

// Stop halts the source.
func (s *Sender) Stop() { s.timer.Stop() }

// SetGap changes the pacing interval from the next packet on.
func (s *Sender) SetGap(gap time.Duration) {
	if gap <= 0 {
		panic("udp: non-positive pacing gap")
	}
	s.gap = gap
}

func (s *Sender) tick() {
	p := s.uids.NewUDP()
	p.Kind = pkt.KindUDPData
	p.Size = pkt.UDPDataSize
	p.Src = s.src
	p.Dst = s.dst
	p.TTL = 64
	p.UDP.Flow = s.flow
	p.UDP.Seq = s.nextSeq
	p.UDP.SentAt = s.sched.Now()
	s.nextSeq++
	s.Sent++
	s.out(p)
	s.timer.Reset(s.gap)
}

// Sink counts received packets; duplicates (same sequence seen twice,
// possible only through MAC anomalies) are excluded from goodput.
type Sink struct {
	Received int64 // distinct packets received
	Dups     int64
	highest  int64
	seen     map[int64]bool

	// Delay, when set together with Now, records one-way packet latency.
	Delay *stats.DurationHistogram
	Now   func() time.Duration
}

// NewSink creates a counting sink.
func NewSink() *Sink {
	return &Sink{highest: -1, seen: make(map[int64]bool)}
}

// Reset rewinds the sink for a new run, keeping the dedup map's capacity.
// The Delay/Now hooks are cleared for the owner to reinstall.
func (s *Sink) Reset() {
	s.Received = 0
	s.Dups = 0
	s.highest = -1
	clear(s.seen)
	s.Delay = nil
	s.Now = nil
}

// HandleData processes one arriving packet.
func (s *Sink) HandleData(p *pkt.Packet) {
	if p.UDP == nil {
		return
	}
	seq := p.UDP.Seq
	if s.seen[seq] {
		s.Dups++
		return
	}
	s.seen[seq] = true
	if seq > s.highest {
		s.highest = seq
	}
	s.Received++
	if s.Delay != nil && s.Now != nil {
		s.Delay.Add(s.Now() - p.UDP.SentAt)
	}
	// Trim the dedup set: anything far below the highest sequence can no
	// longer arrive (bounded reordering), so drop it to bound memory.
	if len(s.seen) > 4096 {
		for k := range s.seen {
			if k < s.highest-2048 {
				delete(s.seen, k)
			}
		}
	}
}
