package manetsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/pkt"
	"manetsim/internal/stats"
)

// Scale sets a campaign's default per-run measurement budget; configs that
// set their own TotalPackets/BatchPackets/Seed keep them. PaperScale
// replicates the paper's methodology exactly; QuickScale keeps the same
// 11-batch structure at a tenth of the packets for interactive use and CI;
// BenchScale shrinks it further for benchmarks.
type Scale struct {
	Name         string
	TotalPackets int64
	BatchPackets int64
	// Seed is the default seed for configs that do not set one.
	Seed int64
}

// Predefined scales.
var (
	PaperScale = Scale{Name: "paper", TotalPackets: 110000, BatchPackets: 10000, Seed: 1}
	QuickScale = Scale{Name: "quick", TotalPackets: 11000, BatchPackets: 1000, Seed: 1}
	BenchScale = Scale{Name: "bench", TotalPackets: 2200, BatchPackets: 200, Seed: 1}
)

// Campaign executes parameter studies over the simulator: it applies a
// common Scale to every run, deduplicates identical configs through a
// concurrency-safe single-flight cache, bounds parallel execution, and
// aggregates seed replications into confidence intervals. A Campaign is
// safe for concurrent use; runs sharing it share its cache, so sweeps that
// overlap (e.g. figures plotting different metrics of the same runs) pay
// for each simulation once.
type Campaign struct {
	Scale Scale
	// Workers bounds parallel simulations (default GOMAXPROCS).
	Workers int

	// DisableArenaReuse makes every campaign run build its world from
	// scratch instead of drawing a reusable arena (World) from the
	// per-worker pool. Results are identical either way — arena reuse is
	// byte-exact — so this exists as a diagnostic escape hatch and as the
	// honest baseline for the replicate-throughput benchmark.
	DisableArenaReuse bool

	mu    sync.Mutex
	cache map[string]*cacheEntry
	sem   chan struct{}
	once  sync.Once

	// arenas pools one reusable World per worker slot. Takes are
	// non-blocking: a run that finds the pool momentarily empty builds
	// fresh rather than waiting, and puts simply drop when the pool is
	// full, so the pool can never deadlock the semaphore.
	arenas chan *core.World

	gapMu   sync.Mutex
	gapMemo map[string]time.Duration
}

// NewCampaign creates a campaign at the given scale.
func NewCampaign(scale Scale) *Campaign {
	return &Campaign{Scale: scale}
}

func (c *Campaign) init() {
	c.once.Do(func() {
		if c.Workers <= 0 {
			c.Workers = runtime.GOMAXPROCS(0)
		}
		c.sem = make(chan struct{}, c.Workers)
		c.cache = make(map[string]*cacheEntry)
		c.arenas = make(chan *core.World, c.Workers)
		c.gapMemo = make(map[string]time.Duration)
	})
}

// runCore executes one fully scaled config, reusing a pooled arena unless
// DisableArenaReuse is set. The caller must hold a worker slot, which is
// what keeps concurrent arena use impossible: at most Workers runs are in
// flight and the pool holds at most Workers arenas, each owned exclusively
// while checked out.
func (c *Campaign) runCore(ctx context.Context, cfg Config) (*Result, error) {
	if c.DisableArenaReuse {
		return core.RunContext(ctx, cfg)
	}
	var w *core.World
	select {
	case w = <-c.arenas:
	default:
		w = core.NewWorld()
	}
	res, err := w.RunContext(ctx, cfg)
	select {
	case c.arenas <- w:
	default:
	}
	return res, err
}

// scaled fills a config's unset measurement budget and seed from the
// campaign scale. Explicit per-config values win, so WithPackets/WithSeed
// keep their meaning through RunScenario.
func (c *Campaign) scaled(cfg Config) Config {
	if cfg.TotalPackets == 0 {
		cfg.TotalPackets = c.Scale.TotalPackets
	}
	if cfg.BatchPackets == 0 {
		cfg.BatchPackets = c.Scale.BatchPackets
	}
	if cfg.Seed == 0 {
		cfg.Seed = c.Scale.Seed
	}
	return cfg
}

// errCampaignObserver rejects observers on campaign runs: a cached result
// is returned without re-running (so the observer would silently see
// nothing), and parallel sweep runs would invoke one observer from many
// goroutines, breaking Observer's single-threaded contract.
var errCampaignObserver = errors.New("manetsim: campaign runs do not support Config.Observer — results may be served from the shared cache without re-running, and sweeps run in parallel; attach observers to direct Run calls instead")

// configKey derives the cache key from a config by encoding every field by
// value. JSON encoding is deterministic (struct order, no map fields) and
// follows the Scenario pointer into its nodes and flows, so two
// independently built but equal scenarios share a key; the Observer field
// is excluded by its json:"-" tag.
func configKey(cfg Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain data struct; encoding cannot fail.
		panic(fmt.Sprintf("manetsim: encoding campaign cache key: %v", err))
	}
	return string(b)
}

// errAborted marks work skipped because an earlier item in the same
// fan-out already failed. It never escapes runParallel: the first real
// error wins the error channel before the abort flag is raised.
var errAborted = errors.New("manetsim: campaign run skipped after an earlier failure")

// runParallel is the shared fan-out: it executes work(i) for every i in
// [0,n) on its own goroutine and returns the results in input order.
// Bounding comes from withSlot inside the work functions, so cache hits
// never wait for a worker slot.
//
// The first error returns immediately — the caller does not wait for the
// remaining slots to drain. In-flight simulations cannot be preempted and
// finish in the background (their cache entries stay valid), but queued
// work that has not claimed a slot yet observes the abort flag and is
// skipped.
func (c *Campaign) runParallel(n int, work func(i int, abort *atomic.Bool) (*Result, error)) ([]*Result, error) {
	results := make([]*Result, n)
	var (
		abort atomic.Bool
		wg    sync.WaitGroup
	)
	errc := make(chan error, 1)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := work(i, &abort)
			if err != nil {
				// First real error wins the buffered slot; errAborted from
				// skipped work arrives only after it, so it is always
				// dropped here.
				select {
				case errc <- err:
				default:
				}
				abort.Store(true)
				return
			}
			results[i] = res
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case err := <-errc:
		return nil, err
	case <-done:
		select {
		case err := <-errc:
			return nil, err
		default:
		}
		return results, nil
	}
}

// withSlot runs fn while holding one of the campaign's worker slots.
// Cancellation and a raised abort flag are both honoured while queued:
// work behind a failed or cancelled sibling bails out without running.
func (c *Campaign) withSlot(ctx context.Context, abort *atomic.Bool, fn func() (*Result, error)) (*Result, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	if abort != nil && abort.Load() {
		return nil, errAborted
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fn()
}

// cacheEntry is one single-flight cache slot: the first caller for a key
// executes the run, concurrent duplicates wait for it and share the
// outcome; done is closed once res/err are set.
type cacheEntry struct {
	once sync.Once
	done chan struct{}
	res  *Result
	err  error
}

func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// forget drops a completed entry so a later caller re-runs the config;
// used when a run died of context cancellation, which says nothing about
// the config itself.
func (c *Campaign) forget(key string, e *cacheEntry) {
	c.mu.Lock()
	if c.cache[key] == e {
		delete(c.cache, key)
	}
	c.mu.Unlock()
}

// cachedRun executes one already-scaled config through the cache.
// Completed entries return immediately without touching the worker
// semaphore. An abort or cancellation observed before the entry is claimed
// leaves it unclaimed, and an entry whose run was cancelled mid-flight is
// forgotten — so neither aborts nor cancellations poison the cache.
func (c *Campaign) cachedRun(ctx context.Context, cfg Config, abort *atomic.Bool) (*Result, error) {
	if cfg.Observer != nil {
		return nil, errCampaignObserver
	}
	key := configKey(cfg)
	c.mu.Lock()
	e := c.cache[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		c.cache[key] = e
	}
	c.mu.Unlock()
	if e.completed() {
		return e.res, e.err
	}
	return c.withSlot(ctx, abort, func() (*Result, error) {
		e.once.Do(func() {
			e.res, e.err = c.runCore(ctx, cfg)
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				c.forget(key, e)
			}
			close(e.done)
		})
		return e.res, e.err
	})
}

// Run executes one config — scaled to the campaign's Scale — through the
// cache.
func (c *Campaign) Run(ctx context.Context, cfg Config) (*Result, error) {
	c.init()
	return c.cachedRun(ctx, c.scaled(cfg), nil)
}

// RunScenario executes one scenario with run options (see Run at package
// level) through the campaign's scale and cache.
func (c *Campaign) RunScenario(ctx context.Context, scn *Scenario, opts ...Option) (*Result, error) {
	cfg := Config{Scenario: scn}
	for _, opt := range opts {
		opt(&cfg)
	}
	return c.Run(ctx, cfg)
}

// RunAll executes configs in parallel, preserving order and returning the
// first failure without draining the rest of the sweep.
func (c *Campaign) RunAll(ctx context.Context, cfgs []Config) ([]*Result, error) {
	c.init()
	return c.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*Result, error) {
		return c.cachedRun(ctx, c.scaled(cfgs[i]), abort)
	})
}

// Sweep is a declarative parameter grid: the cartesian product of
// scenarios, transports and rates, each replicated over Seeds. Empty axes
// collapse to the Base config's value (and Seeds to the campaign scale's
// seed), so a Sweep can vary exactly the dimensions under study.
type Sweep struct {
	Scenarios  []*Scenario
	Transports []TransportSpec
	Rates      []Rate
	// Seeds replicates every cell; replicate statistics aggregate across
	// them with 95% confidence intervals.
	Seeds []int64
	// Base supplies every remaining run-level knob (MaxSimTime,
	// WarmupBatches, NoCapture, ... and the fallback Transport/Bandwidth).
	// Base.Observer must be nil: campaign runs reject observers, since
	// cached cells never re-run and parallel cells would share one.
	Base Config
}

// Cell is one point of a sweep grid with its replicated runs and the
// across-replicate estimates of the headline metrics. For a single seed
// the estimates carry the run's value with a zero-width interval.
type Cell struct {
	Scenario  *Scenario
	Transport TransportSpec
	Rate      Rate
	Seeds     []int64

	// Runs holds one result per seed, in Seeds order.
	Runs []*Result

	// Across-replicate estimates of the per-run batch means.
	Goodput Estimate // aggregate goodput [bit/s]
	Rtx     Estimate // transport retransmissions per delivered packet
	Jain    Estimate // Jain's fairness index
}

// Sweep executes the full grid (deduplicated through the cache, in
// parallel) and returns one aggregated Cell per scenario x transport x
// rate combination, in grid order with scenarios outermost.
func (c *Campaign) Sweep(ctx context.Context, sw Sweep) ([]Cell, error) {
	c.init()
	if len(sw.Scenarios) == 0 {
		return nil, errors.New("manetsim: Sweep needs at least one Scenario")
	}
	transports := sw.Transports
	if len(transports) == 0 {
		transports = []TransportSpec{sw.Base.Transport}
	}
	rates := sw.Rates
	if len(rates) == 0 {
		rates = []Rate{sw.Base.Bandwidth}
	}
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seed := c.Scale.Seed
		if seed == 0 {
			seed = 1
		}
		seeds = []int64{seed}
	}
	var cells []Cell
	var cfgs []Config
	for _, scn := range sw.Scenarios {
		for _, t := range transports {
			for _, r := range rates {
				cells = append(cells, Cell{Scenario: scn, Transport: t, Rate: r, Seeds: seeds})
				for _, seed := range seeds {
					cfg := sw.Base
					cfg.Scenario = scn
					cfg.Transport = t
					cfg.Bandwidth = r
					cfg.Seed = seed
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	results, err := c.RunAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	k := 0
	for i := range cells {
		cells[i].Runs = results[k : k+len(seeds)]
		k += len(seeds)
		cells[i].aggregate()
	}
	return cells, nil
}

// aggregate folds the replicated runs into across-seed estimates.
func (cell *Cell) aggregate() {
	n := len(cell.Runs)
	good := make([]float64, n)
	rtx := make([]float64, n)
	jain := make([]float64, n)
	for i, r := range cell.Runs {
		good[i] = r.AggGoodput.Mean
		rtx[i] = r.Rtx.Mean
		jain[i] = r.Jain.Mean
	}
	cell.Goodput = stats.BatchMeans(good)
	cell.Rtx = stats.BatchMeans(rtx)
	cell.Jain = stats.BatchMeans(jain)
}

// OptimalUDPGap finds the paced-UDP inter-packet time that maximizes
// goodput for a chain of the given hop count, following the paper's
// procedure: start from the analytic 4-hop propagation delay and increase
// t gradually, keeping the best measured goodput. Results are memoized per
// campaign.
func (c *Campaign) OptimalUDPGap(ctx context.Context, hops int, rate Rate) (time.Duration, error) {
	c.init()
	key := fmt.Sprintf("%d@%v", hops, rate)
	c.gapMu.Lock()
	if g, ok := c.gapMemo[key]; ok {
		c.gapMu.Unlock()
		return g, nil
	}
	c.gapMu.Unlock()

	t0 := FourHopPropagationDelay(rate)
	if hops < 4 {
		// Short chains have no 4-hop pipelining: the whole chain is one
		// contention domain, so start from the serial per-hop cost.
		t0 = time.Duration(hops) * ExchangeTime(rate, pkt.TCPDataSize)
	}
	var cfgs []Config
	var gaps []time.Duration
	for f := 1.0; f <= 1.8; f += 0.1 {
		gap := time.Duration(float64(t0) * f).Round(100 * time.Microsecond)
		gaps = append(gaps, gap)
		cfg := Config{
			Scenario:  Chain(hops),
			Bandwidth: rate,
			Transport: TransportSpec{Protocol: PacedUDP, UDPGap: gap},
			// The sweep uses a quarter of the budget per candidate.
			TotalPackets: c.Scale.TotalPackets / 4,
			BatchPackets: c.Scale.BatchPackets / 4,
			Seed:         c.Scale.Seed,
		}
		if cfg.BatchPackets == 0 {
			cfg.BatchPackets = cfg.TotalPackets / 11
		}
		cfgs = append(cfgs, cfg)
	}
	// Bypass the scale rewrite and the cache: these quarter-budget probe
	// runs are keyed by the memo, not the result cache.
	results, err := c.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*Result, error) {
		return c.withSlot(ctx, abort, func() (*Result, error) { return c.runCore(ctx, cfgs[i]) })
	})
	if err != nil {
		return 0, err
	}
	best, bestG := gaps[0], -1.0
	for i, res := range results {
		if g := res.AggGoodput.Mean; g > bestG {
			best, bestG = gaps[i], g
		}
	}
	c.gapMu.Lock()
	c.gapMemo[key] = best
	c.gapMu.Unlock()
	return best, nil
}
