package analysis

import (
	"go/ast"
	"go/token"
)

// ResetComplete verifies the arena-reuse contract: for every struct type
// with a Reset method, each field must be re-initialized somewhere in Reset
// (directly, through a helper method called on the same receiver, or by
// resetting/clearing the field itself) or carry an explicit
// //manetsim:resetsafe directive stating why stale state is correct.
//
// This is the drift class reusable Worlds are vulnerable to: a field added
// to a pooled struct but forgotten in Reset leaks the previous run's state
// into the next, and the failure surfaces later as a flaky golden digest
// with no pointer to the cause.
//
// A field counts as handled when the Reset call graph (same-receiver
// methods, any depth) contains any of:
//
//   - an assignment whose left-hand side is rooted at the field
//     (r.f = ..., r.f[i] = ..., r.f.sub = ..., r.f++),
//   - a whole-receiver assignment (*r = T{...}),
//   - a method call on the field (r.f.Reset(), r.src.Seed(seed)),
//   - the field's address escaping (&r.f passed to an initializer),
//   - the field passed to the clear, copy or delete builtins.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "every field of a struct with a Reset method must be assigned in Reset " +
		"or marked //manetsim:resetsafe",
	Run: runResetComplete,
}

// methodInfo is the per-method summary used to close Reset over its
// same-receiver helper calls.
type methodInfo struct {
	decl     *ast.FuncDecl
	handled  map[string]bool // fields written/initialized here
	resetAll bool            // contains *recv = ... (wipes every field)
	calls    []string        // same-receiver methods invoked
}

func runResetComplete(pass *Pass) error {
	if !pass.SimPackage {
		return nil
	}
	// typeName -> methodName -> summary, and typeName -> struct decl.
	methods := map[string]map[string]*methodInfo{}
	structs := map[string]*ast.StructType{}

	files := pass.NonTestFiles()
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						structs[ts.Name.Name] = st
					}
				}
			case *ast.FuncDecl:
				recvType, recvName := receiver(d)
				if recvType == "" || d.Body == nil {
					continue
				}
				m := methods[recvType]
				if m == nil {
					m = map[string]*methodInfo{}
					methods[recvType] = m
				}
				m[d.Name.Name] = summarizeMethod(d, recvName)
			}
		}
	}

	for typeName, m := range methods {
		reset, ok := m["Reset"]
		if !ok {
			continue
		}
		st, ok := structs[typeName]
		if !ok {
			continue
		}
		handled, resetAll := closeOverCalls(m, reset)
		if resetAll {
			continue
		}
		for _, field := range st.Fields.List {
			if len(field.Names) == 0 {
				// Embedded field: handled name is the type's base name.
				if name := embeddedName(field.Type); name != "" && !handled[name] && !pass.ResetSafe(field.Pos()) {
					pass.Reportf(field.Pos(), "embedded field %s of %s is not reset by (*%s).Reset; reset it or mark it //manetsim:resetsafe", name, typeName, typeName)
				}
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" || handled[name.Name] {
					continue
				}
				if pass.ResetSafe(name.Pos()) {
					continue
				}
				pass.Reportf(name.Pos(), "field %s of %s is not reset by (*%s).Reset; reset it or mark it //manetsim:resetsafe", name.Name, typeName, typeName)
			}
		}
	}
	return nil
}

// closeOverCalls unions the handled-field sets reachable from Reset through
// same-receiver method calls.
func closeOverCalls(m map[string]*methodInfo, root *methodInfo) (map[string]bool, bool) {
	handled := map[string]bool{}
	resetAll := false
	seen := map[*methodInfo]bool{}
	var visit func(mi *methodInfo)
	visit = func(mi *methodInfo) {
		if mi == nil || seen[mi] {
			return
		}
		seen[mi] = true
		for f := range mi.handled {
			handled[f] = true
		}
		if mi.resetAll {
			resetAll = true
		}
		for _, callee := range mi.calls {
			visit(m[callee])
		}
	}
	visit(root)
	return handled, resetAll
}

// receiver returns the receiver's type name (sans pointer) and binding
// name, or "" when there is no usable receiver.
func receiver(d *ast.FuncDecl) (typeName, recvName string) {
	if d.Recv == nil || len(d.Recv.List) != 1 {
		return "", ""
	}
	f := d.Recv.List[0]
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip type parameters (T[P]) if present.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(f.Names) == 1 {
		return id.Name, f.Names[0].Name
	}
	return id.Name, ""
}

func embeddedName(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return embeddedName(v.X)
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// summarizeMethod records which receiver fields a method initializes and
// which sibling methods it calls.
func summarizeMethod(d *ast.FuncDecl, recvName string) *methodInfo {
	mi := &methodInfo{decl: d, handled: map[string]bool{}}
	if recvName == "" || recvName == "_" {
		return mi
	}
	mark := func(e ast.Expr) {
		if f := fieldOfRecv(e, recvName); f != "" {
			mi.handled[f] = true
		}
	}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if isStarRecv(lhs, recvName) {
					mi.resetAll = true
					continue
				}
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(v.X)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				mark(v.X)
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(v.Fun).(type) {
			case *ast.SelectorExpr:
				if f := fieldOfRecv(fun.X, recvName); f != "" {
					// Method call on the field: r.f.Reset(), r.src.Seed().
					mi.handled[f] = true
				} else if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok && id.Name == recvName {
					// Same-receiver helper: r.helper(...).
					mi.calls = append(mi.calls, fun.Sel.Name)
				}
			case *ast.Ident:
				switch fun.Name {
				case "clear", "copy", "delete":
					if len(v.Args) > 0 {
						mark(v.Args[0])
					}
				}
			}
		}
		return true
	})
	return mi
}

// fieldOfRecv resolves an expression to the receiver field it is rooted at:
// r.f, r.f[i], r.f.sub, *r.f all yield "f"; anything not rooted at the
// receiver yields "".
func fieldOfRecv(e ast.Expr, recvName string) string {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && id.Name == recvName {
				return v.Sel.Name
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return ""
		}
	}
}

// isStarRecv reports whether e is *r (a whole-receiver overwrite).
func isStarRecv(e ast.Expr, recvName string) bool {
	star, ok := ast.Unparen(e).(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(star.X).(*ast.Ident)
	return ok && id.Name == recvName
}
