package aodv

import (
	"testing"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/mac"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// rig assembles a full MAC+AODV stack per node over one channel.
type rig struct {
	sched     *sim.Scheduler
	ch        *phy.Channel
	macs      []*mac.DCF
	routers   []*Router
	delivered [][]*pkt.Packet
	dropped   [][]*pkt.Packet
	uids      pkt.UIDSource
}

func newRig(t *testing.T, positions []geo.Point, seed int64, cfg Config) *rig {
	t.Helper()
	r := &rig{
		sched:     sim.NewScheduler(seed),
		delivered: make([][]*pkt.Packet, len(positions)),
		dropped:   make([][]*pkt.Packet, len(positions)),
	}
	r.ch = phy.NewChannel(r.sched, positions)
	r.macs = make([]*mac.DCF, len(positions))
	r.routers = make([]*Router, len(positions))
	for i := range positions {
		i := i
		id := pkt.NodeID(i)
		// Two-phase wiring: MAC callbacks close over the router slot.
		r.macs[i] = mac.New(r.sched, r.ch.Radio(id), mac.Config{DataRate: phy.Rate2Mbps}, mac.Callbacks{
			Deliver:     func(p *pkt.Packet, from pkt.NodeID) { r.routers[i].HandlePacket(p, from) },
			LinkFailure: func(p *pkt.Packet, nh pkt.NodeID) { r.routers[i].HandleLinkFailure(p, nh) },
		})
		r.routers[i] = New(r.sched, id, r.macs[i], &r.uids, cfg, func(p *pkt.Packet) {
			r.delivered[i] = append(r.delivered[i], p)
		})
		r.routers[i].DropData = func(p *pkt.Packet) { r.dropped[i] = append(r.dropped[i], p) }
	}
	return r
}

func (r *rig) data(src, dst pkt.NodeID) *pkt.Packet {
	return &pkt.Packet{UID: r.uids.Next(), Kind: pkt.KindTCPData, Size: 1500, Src: src, Dst: dst}
}

func TestDiscoveryAndDeliveryOverChain(t *testing.T) {
	r := newRig(t, geo.Chain(3), 1, Config{})
	p := r.data(0, 3)
	r.sched.At(0, func() { r.routers[0].Send(p) })
	r.sched.Run()
	if len(r.delivered[3]) != 1 || r.delivered[3][0] != p {
		t.Fatalf("delivered = %v, want the packet at node 3", r.delivered[3])
	}
	// Forward route installed at origin, reverse at destination.
	if rt := r.routers[0].Table().Lookup(3); rt == nil || rt.NextHop != 1 {
		t.Errorf("origin route = %+v, want next hop 1", rt)
	}
	if rt := r.routers[3].Table().Lookup(0); rt == nil || rt.NextHop != 2 {
		t.Errorf("destination reverse route = %+v, want next hop 2", rt)
	}
	if r.routers[0].Counters.RREQSent != 1 {
		t.Errorf("RREQ sent = %d, want 1", r.routers[0].Counters.RREQSent)
	}
}

func TestSecondSendUsesCachedRoute(t *testing.T) {
	r := newRig(t, geo.Chain(3), 1, Config{})
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 3)) })
	r.sched.At(2*time.Second, func() { r.routers[0].Send(r.data(0, 3)) })
	r.sched.Run()
	if len(r.delivered[3]) != 2 {
		t.Fatalf("delivered %d, want 2", len(r.delivered[3]))
	}
	if got := r.routers[0].Counters.RREQSent; got != 1 {
		t.Errorf("RREQ sent = %d, want 1 (second send cached)", got)
	}
}

func TestRREQDuplicateSuppression(t *testing.T) {
	// In a 4-node chain the middle nodes hear the same flood from both
	// sides; each node must forward a given RREQ at most once.
	r := newRig(t, geo.Chain(3), 2, Config{})
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 3)) })
	r.sched.Run()
	for i, rt := range r.routers {
		total := rt.Counters.RREQForwarded
		if total > 1 {
			t.Errorf("node %d forwarded RREQ %d times, want <=1", i, total)
		}
	}
}

func TestIntermediateNodeReplies(t *testing.T) {
	r := newRig(t, geo.Chain(4), 3, Config{})
	// Prime node 0's route to 4, which also gives nodes 1..3 routes to 4.
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 4)) })
	var rrepFromIntermediate bool
	r.sched.At(3*time.Second, func() {
		// Now node 1 wants a route to 4; node 2 (or closer) can reply.
		before := r.routers[4].Counters.RREPSent
		r.routers[1].Send(r.data(1, 4))
		r.sched.After(time.Second, func() {
			// Either the destination replied again, or an intermediate did.
			if r.routers[4].Counters.RREPSent == before {
				rrepFromIntermediate = true
			}
		})
	})
	r.sched.Run()
	if len(r.delivered[4]) != 2 {
		t.Fatalf("delivered %d, want 2", len(r.delivered[4]))
	}
	if !rrepFromIntermediate {
		t.Log("note: destination replied (intermediate reply not exercised under this seed)")
	}
}

func TestDiscoveryFailureDropsBufferedPackets(t *testing.T) {
	// Node 1 is out of range (600m): discovery can never succeed.
	positions := []geo.Point{{X: 0}, {X: 600}}
	cfg := Config{RREQRetries: 2, RREQTimeout: 50 * time.Millisecond}
	r := newRig(t, positions, 1, cfg)
	p := r.data(0, 1)
	r.sched.At(0, func() { r.routers[0].Send(p) })
	r.sched.Run()
	if len(r.delivered[1]) != 0 {
		t.Fatal("unreachable destination got the packet")
	}
	if r.routers[0].Counters.DiscoveryFailures != 1 {
		t.Errorf("discovery failures = %d, want 1", r.routers[0].Counters.DiscoveryFailures)
	}
	if len(r.dropped[0]) != 1 || r.dropped[0][0] != p {
		t.Errorf("dropped = %v, want the buffered packet", r.dropped[0])
	}
	if got := r.routers[0].Counters.RREQSent; got != 2 {
		t.Errorf("RREQ attempts = %d, want 2", got)
	}
}

func TestSendBufferOverflow(t *testing.T) {
	positions := []geo.Point{{X: 0}, {X: 600}}
	cfg := Config{BufferCap: 4, RREQRetries: 1, RREQTimeout: time.Hour}
	r := newRig(t, positions, 1, cfg)
	r.sched.At(0, func() {
		for i := 0; i < 6; i++ {
			r.routers[0].Send(r.data(0, 1))
		}
	})
	r.sched.RunUntil(time.Second)
	// 6 offered, cap 4: two oldest dropped on overflow.
	if got := r.routers[0].Counters.BufferDrops; got != 2 {
		t.Errorf("buffer drops = %d, want 2", got)
	}
}

func TestLinkFailureInvalidatesAndCountsFalseFailure(t *testing.T) {
	r := newRig(t, geo.Chain(2), 1, Config{})
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 2)) })
	r.sched.At(2*time.Second, func() {
		// Simulate the MAC giving up on next hop 1 (hidden-terminal
		// contention in real runs).
		p := r.data(0, 2)
		r.routers[0].HandleLinkFailure(p, 1)
	})
	r.sched.Run()
	if got := r.routers[0].Counters.FalseRouteFailures; got != 1 {
		t.Errorf("false route failures = %d, want 1", got)
	}
	// Routes through node 1 (to 1 and to 2) must be gone.
	if r.routers[0].Table().Lookup(2) != nil {
		t.Error("route to 2 still valid after link failure")
	}
	if r.routers[0].Counters.RERRSent == 0 {
		t.Error("no RERR broadcast after link failure")
	}
}

func TestRerrPropagatesUpstream(t *testing.T) {
	r := newRig(t, geo.Chain(3), 5, Config{})
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 3)) })
	r.sched.At(2*time.Second, func() {
		// Node 1 loses its link to node 2: its RERR must reach node 0 and
		// invalidate node 0's route to 3.
		r.routers[1].HandleLinkFailure(r.data(0, 3), 2)
	})
	r.sched.Run()
	if rt := r.routers[0].Table().Lookup(3); rt != nil {
		t.Errorf("node 0 still has route to 3 = %+v after upstream RERR", rt)
	}
}

func TestRediscoveryAfterFailure(t *testing.T) {
	r := newRig(t, geo.Chain(2), 1, Config{})
	p1 := r.data(0, 2)
	r.sched.At(0, func() { r.routers[0].Send(p1) })
	r.sched.At(2*time.Second, func() {
		r.routers[0].HandleLinkFailure(r.data(0, 2), 1)
	})
	p2 := r.data(0, 2)
	r.sched.At(3*time.Second, func() { r.routers[0].Send(p2) })
	r.sched.Run()
	if len(r.delivered[2]) != 2 {
		t.Fatalf("delivered %d, want 2 (rediscovery after failure)", len(r.delivered[2]))
	}
	if got := r.routers[0].Counters.RREQSent; got < 2 {
		t.Errorf("RREQ sent = %d, want >=2 (second discovery)", got)
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := Config{ActiveRouteTimeout: time.Second}
	r := newRig(t, geo.Chain(2), 1, cfg)
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 2)) })
	r.sched.At(5*time.Second, func() {
		if r.routers[0].Table().Lookup(2) != nil {
			t.Error("route still valid after expiry window")
		}
	})
	r.sched.Run()
}

func TestLocalDelivery(t *testing.T) {
	r := newRig(t, geo.Chain(1), 1, Config{})
	p := r.data(0, 0)
	r.routers[0].Send(p)
	if len(r.delivered[0]) != 1 {
		t.Error("self-addressed packet not delivered locally")
	}
}

func TestTableSequenceComparison(t *testing.T) {
	if !seqGreater(2, 1) || seqGreater(1, 2) || seqGreater(1, 1) {
		t.Error("basic sequence comparison wrong")
	}
	// Wraparound: 0x80000001 is "greater" than 1 by signed distance? No:
	// int32(0x80000001-1) = int32(0x80000000) < 0, so not greater.
	if seqGreater(0x80000001, 1) {
		t.Error("wraparound comparison wrong")
	}
	if !seqGreater(1, 0xFFFFFFFF) {
		t.Error("wraparound increment should be greater")
	}
}

func TestTableUpdateRules(t *testing.T) {
	sched := sim.NewScheduler(1)
	tb := NewTable(sched, sim.Time(time.Hour))
	if !tb.Update(5, 1, 3, 10) {
		t.Fatal("initial install rejected")
	}
	if tb.Update(5, 2, 5, 9) {
		t.Error("stale seq accepted")
	}
	if tb.Update(5, 2, 5, 10) {
		t.Error("equal seq with longer path accepted")
	}
	if !tb.Update(5, 2, 2, 10) {
		t.Error("equal seq with shorter path rejected")
	}
	if !tb.Update(5, 3, 9, 11) {
		t.Error("fresher seq with longer path rejected")
	}
	rt := tb.Lookup(5)
	if rt == nil || rt.NextHop != 3 || rt.HopCount != 9 {
		t.Errorf("final route = %+v", rt)
	}
}

func TestTableInvalidateNextHop(t *testing.T) {
	sched := sim.NewScheduler(1)
	tb := NewTable(sched, sim.Time(time.Hour))
	tb.Update(5, 1, 3, 10)
	tb.Update(6, 1, 4, 2)
	tb.Update(7, 2, 2, 7)
	dsts, seqs := tb.InvalidateNextHop(1)
	if len(dsts) != 2 || len(seqs) != 2 {
		t.Fatalf("invalidated %v, want routes to 5 and 6", dsts)
	}
	if tb.Lookup(5) != nil || tb.Lookup(6) != nil {
		t.Error("invalidated routes still resolvable")
	}
	if tb.Lookup(7) == nil {
		t.Error("unrelated route torn down")
	}
	// Sequence numbers bumped so stale info cannot reinstall.
	if tb.Update(5, 1, 3, 10) {
		t.Error("stale reinstall accepted after invalidation")
	}
}

func TestStaticRouterChain(t *testing.T) {
	positions := geo.Chain(4)
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, positions)
	var uids pkt.UIDSource
	var delivered []*pkt.Packet
	routers := make([]*StaticRouter, len(positions))
	macs := make([]*mac.DCF, len(positions))
	for i := range positions {
		i := i
		macs[i] = mac.New(sched, ch.Radio(pkt.NodeID(i)), mac.Config{DataRate: phy.Rate2Mbps}, mac.Callbacks{
			Deliver:     func(p *pkt.Packet, from pkt.NodeID) { routers[i].HandlePacket(p, from) },
			LinkFailure: func(p *pkt.Packet, nh pkt.NodeID) { routers[i].HandleLinkFailure(p, nh) },
		})
		routers[i] = NewStatic(pkt.NodeID(i), macs[i], positions, phy.TxRange, func(p *pkt.Packet) {
			if i == 4 {
				delivered = append(delivered, p)
			}
		})
	}
	if nh := routers[0].NextHop(4); nh != 1 {
		t.Errorf("next hop 0->4 = %d, want 1", nh)
	}
	if nh := routers[3].NextHop(0); nh != 2 {
		t.Errorf("next hop 3->0 = %d, want 2", nh)
	}
	p := &pkt.Packet{UID: uids.Next(), Kind: pkt.KindTCPData, Size: 1500, Src: 0, Dst: 4}
	sched.At(0, func() { routers[0].Send(p) })
	sched.Run()
	if len(delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(delivered))
	}
}

func TestLinkAliveOracleClassifiesFailures(t *testing.T) {
	r := newRig(t, geo.Chain(2), 1, Config{})
	alive := true
	r.routers[0].LinkAlive = func(nh pkt.NodeID) bool { return alive }
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 2)) })
	r.sched.At(2*time.Second, func() {
		// MAC give-up with the neighbor still in range: false failure.
		r.routers[0].HandleLinkFailure(r.data(0, 2), 1)
	})
	r.sched.At(3*time.Second, func() {
		// Neighbor gone (moved away): true failure.
		alive = false
		r.routers[0].HandleLinkFailure(r.data(0, 2), 1)
	})
	r.sched.Run()
	c := r.routers[0].Counters
	if c.FalseRouteFailures != 1 || c.TrueRouteFailures != 1 {
		t.Errorf("false/true failures = %d/%d, want 1/1", c.FalseRouteFailures, c.TrueRouteFailures)
	}
}

func TestTableUpdateReplacesExpiredEqualSeqRoute(t *testing.T) {
	sched := sim.NewScheduler(1)
	tb := NewTable(sched, sim.Time(time.Second))
	tb.Update(5, 1, 3, 10)
	// Past the active-route timeout the entry is unusable; an equal-seq
	// route through a different neighbor (even a longer one) must replace
	// it, or this node becomes a permanent no-route sink for dst 5.
	sched.At(2*time.Second, func() {
		if tb.Lookup(5) != nil {
			t.Fatal("expired route still resolvable")
		}
		if !tb.Update(5, 2, 6, 10) {
			t.Error("equal-seq route rejected by an expired entry")
		}
		if rt := tb.Lookup(5); rt == nil || rt.NextHop != 2 {
			t.Errorf("route after update = %+v, want next hop 2", rt)
		}
	})
	sched.Run()
}

func TestDestinationBumpsSeqOnKnownSeqRREQ(t *testing.T) {
	// Two rediscoveries toward the same destination must install strictly
	// increasing destination sequence numbers at the origin (RFC 3561
	// §6.6.1), so each round outranks stale equal-seq state elsewhere.
	r := newRig(t, geo.Chain(2), 1, Config{})
	r.sched.At(0, func() { r.routers[0].Send(r.data(0, 2)) })
	var firstSeq uint32
	r.sched.At(2*time.Second, func() {
		e := r.routers[0].Table().Entry(2)
		if e == nil {
			t.Fatal("no route after first discovery")
		}
		firstSeq = e.SeqNo
		// Tear the route down and rediscover.
		r.routers[0].HandleLinkFailure(r.data(0, 2), 1)
		r.routers[0].Send(r.data(0, 2))
	})
	r.sched.Run()
	e := r.routers[0].Table().Entry(2)
	if e == nil {
		t.Fatal("no route after rediscovery")
	}
	if !seqGreater(e.SeqNo, firstSeq) {
		t.Errorf("rediscovered seq %d not greater than first %d", e.SeqNo, firstSeq)
	}
}
