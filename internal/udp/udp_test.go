package udp

import (
	"testing"
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

func TestPacedSenderEmitsAtGap(t *testing.T) {
	sched := sim.NewScheduler(1)
	var uids pkt.UIDSource
	var times []sim.Time
	s := NewSender(sched, 1, 0, 7, 10*time.Millisecond, &uids, func(p *pkt.Packet) {
		times = append(times, sched.Now())
		if p.Kind != pkt.KindUDPData || p.Size != pkt.UDPDataSize {
			t.Errorf("bad packet %v size %d", p.Kind, p.Size)
		}
	})
	sched.At(0, s.Start)
	sched.RunUntil(95 * time.Millisecond)
	if len(times) != 10 {
		t.Fatalf("sent %d packets in 95ms at 10ms gap, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 10*time.Millisecond {
			t.Errorf("gap %d = %v, want 10ms", i, times[i]-times[i-1])
		}
	}
	if s.Sent != 10 {
		t.Errorf("Sent = %d, want 10", s.Sent)
	}
}

func TestPacedSenderStop(t *testing.T) {
	sched := sim.NewScheduler(1)
	var uids pkt.UIDSource
	count := 0
	s := NewSender(sched, 1, 0, 7, 10*time.Millisecond, &uids, func(*pkt.Packet) { count++ })
	sched.At(0, s.Start)
	sched.At(35*time.Millisecond, s.Stop)
	sched.Run()
	if count != 4 { // t=0,10,20,30
		t.Errorf("sent %d packets before stop, want 4", count)
	}
}

func TestPacedSenderSetGap(t *testing.T) {
	sched := sim.NewScheduler(1)
	var uids pkt.UIDSource
	var times []sim.Time
	s := NewSender(sched, 1, 0, 7, 10*time.Millisecond, &uids, func(*pkt.Packet) {
		times = append(times, sched.Now())
	})
	sched.At(0, s.Start)
	sched.At(5*time.Millisecond, func() { s.SetGap(20 * time.Millisecond) })
	sched.RunUntil(70 * time.Millisecond)
	// t=0 (gap 10 -> next 10), then 20ms gaps: 10,30,50,70.
	want := []sim.Time{0, 10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSenderPanicsOnBadArgs(t *testing.T) {
	sched := sim.NewScheduler(1)
	var uids pkt.UIDSource
	for name, fn := range map[string]func(){
		"zero gap": func() { NewSender(sched, 1, 0, 1, 0, &uids, func(*pkt.Packet) {}) },
		"nil out":  func() { NewSender(sched, 1, 0, 1, time.Millisecond, &uids, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSinkCountsDistinctPackets(t *testing.T) {
	s := NewSink()
	var uids pkt.UIDSource
	mk := func(seq int64) *pkt.Packet {
		return &pkt.Packet{UID: uids.Next(), Kind: pkt.KindUDPData, UDP: &pkt.UDPHeader{Flow: 1, Seq: seq}}
	}
	s.HandleData(mk(0))
	s.HandleData(mk(1))
	s.HandleData(mk(1)) // duplicate
	s.HandleData(mk(5)) // reordering/loss holes are fine
	if s.Received != 3 {
		t.Errorf("received = %d, want 3", s.Received)
	}
	if s.Dups != 1 {
		t.Errorf("dups = %d, want 1", s.Dups)
	}
}

func TestSinkDedupSetBounded(t *testing.T) {
	s := NewSink()
	for seq := int64(0); seq < 10000; seq++ {
		s.HandleData(&pkt.Packet{UDP: &pkt.UDPHeader{Seq: seq}})
	}
	if s.Received != 10000 {
		t.Errorf("received = %d, want 10000", s.Received)
	}
	if len(s.seen) > 5000 {
		t.Errorf("dedup set grew to %d entries; trimming broken", len(s.seen))
	}
}
