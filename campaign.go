package manetsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/pkt"
	"manetsim/internal/stats"
	"manetsim/internal/store"
)

// ResultSchemaVersion identifies the JSON encoding of Result envelopes in
// the persistent result store. Bump it whenever Result's encoding changes
// incompatibly: stored results carrying any other version are detected
// and treated as cache misses — re-run, never silently misparsed.
const ResultSchemaVersion = 1

// Scale sets a campaign's default per-run measurement budget; configs that
// set their own TotalPackets/BatchPackets/Seed keep them. PaperScale
// replicates the paper's methodology exactly; QuickScale keeps the same
// 11-batch structure at a tenth of the packets for interactive use and CI;
// BenchScale shrinks it further for benchmarks.
type Scale struct {
	Name         string
	TotalPackets int64
	BatchPackets int64
	// Seed is the default seed for configs that do not set one.
	Seed int64
}

// Predefined scales.
var (
	PaperScale = Scale{Name: "paper", TotalPackets: 110000, BatchPackets: 10000, Seed: 1}
	QuickScale = Scale{Name: "quick", TotalPackets: 11000, BatchPackets: 1000, Seed: 1}
	BenchScale = Scale{Name: "bench", TotalPackets: 2200, BatchPackets: 200, Seed: 1}
)

// Campaign executes parameter studies over the simulator: it applies a
// common Scale to every run, deduplicates identical configs through a
// concurrency-safe single-flight cache, bounds parallel execution, and
// aggregates seed replications into confidence intervals. A Campaign is
// safe for concurrent use; runs sharing it share its cache, so sweeps that
// overlap (e.g. figures plotting different metrics of the same runs) pay
// for each simulation once.
type Campaign struct {
	Scale Scale

	// Workers bounds parallel simulations (default GOMAXPROCS).
	//
	// Deprecated: pass WithWorkers to NewCampaign instead. The field
	// keeps working (set it before the first run) but new code should
	// configure campaigns through CampaignOptions.
	Workers int

	// DisableArenaReuse makes every campaign run build its world from
	// scratch instead of drawing a reusable arena (World) from the
	// per-worker pool. Results are identical either way — arena reuse is
	// byte-exact — so this exists as a diagnostic escape hatch and as the
	// honest baseline for the replicate-throughput benchmark.
	//
	// Deprecated: pass WithoutArenaReuse to NewCampaign instead. The
	// field keeps working (set it before the first run) but new code
	// should configure campaigns through CampaignOptions.
	DisableArenaReuse bool

	// storeDir, when set via WithStore, roots the persistent result
	// store; the store itself opens at init so open errors surface from
	// the first run instead of panicking in the option.
	storeDir string
	store    *store.Store
	storeErr error

	// executed counts simulations actually run by this campaign —
	// in-memory cache hits and persistent-store hits excluded.
	executed atomic.Int64

	mu    sync.Mutex
	cache map[string]*cacheEntry
	sem   chan struct{}
	once  sync.Once

	// arenas pools one reusable World per worker slot. Takes are
	// non-blocking: a run that finds the pool momentarily empty builds
	// fresh rather than waiting, and puts simply drop when the pool is
	// full, so the pool can never deadlock the semaphore.
	arenas chan *core.World

	gapMu   sync.Mutex
	gapMemo map[string]time.Duration
}

// NewCampaign creates a campaign at the given scale. Options configure
// the service-level knobs: WithWorkers (parallelism), WithStore (the
// persistent, restart-surviving result store), WithoutArenaReuse.
func NewCampaign(scale Scale, opts ...CampaignOption) *Campaign {
	c := &Campaign{Scale: scale}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Campaign) init() {
	c.once.Do(func() {
		if c.Workers <= 0 {
			c.Workers = runtime.GOMAXPROCS(0)
		}
		c.sem = make(chan struct{}, c.Workers)
		c.cache = make(map[string]*cacheEntry)
		c.arenas = make(chan *core.World, c.Workers)
		c.gapMemo = make(map[string]time.Duration)
		if c.storeDir != "" {
			c.store, c.storeErr = store.Open(c.storeDir, ResultSchemaVersion)
		}
	})
}

// ready initializes the campaign and surfaces configuration errors that
// could not be reported where they were made (the store directory from
// WithStore opens lazily, at first use).
func (c *Campaign) ready() error {
	c.init()
	return c.storeErr
}

// Ready forces the campaign's lazy initialization and reports any
// configuration error — most usefully an unusable WithStore directory.
// Every Run/Sweep surfaces the same error on first use; Ready exists so
// long-running services ("manetsim serve") can fail fast at startup
// instead of on the first submitted sweep.
func (c *Campaign) Ready() error { return c.ready() }

// Executed returns how many simulations this campaign actually ran —
// results served from the in-memory cache or the persistent store are
// not counted. It is the observable behind resumable sweeps: re-running
// a completed sweep against the same store executes zero simulations.
func (c *Campaign) Executed() int64 { return c.executed.Load() }

// storeGet fetches a stored result by cache key; any miss, decode
// failure or schema mismatch re-runs the simulation instead.
func (c *Campaign) storeGet(key string) (*Result, bool) {
	if c.store == nil {
		return nil, false
	}
	raw, ok := c.store.Get(key)
	if !ok {
		return nil, false
	}
	res := new(Result)
	if err := json.Unmarshal(raw, res); err != nil {
		return nil, false
	}
	return res, true
}

// storePut persists a completed result, best-effort: the store is a
// cache, so a failed write (full disk, permissions) costs a future
// re-run, never the current result.
func (c *Campaign) storePut(key string, res *Result) {
	if c.store == nil {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = c.store.Put(key, raw)
}

// runStored executes one fully scaled config through the persistent
// store: completed results load from disk without simulating, fresh
// results are simulated and persisted. The caller must hold a worker
// slot (see runCore).
func (c *Campaign) runStored(ctx context.Context, key string, cfg Config) (*Result, error) {
	if res, ok := c.storeGet(key); ok {
		return res, nil
	}
	res, err := c.runCore(ctx, cfg)
	if err != nil {
		return res, err
	}
	c.executed.Add(1)
	c.storePut(key, res)
	return res, nil
}

// runCore executes one fully scaled config, reusing a pooled arena unless
// DisableArenaReuse is set. The caller must hold a worker slot, which is
// what keeps concurrent arena use impossible: at most Workers runs are in
// flight and the pool holds at most Workers arenas, each owned exclusively
// while checked out.
//
// A panicking simulation (a registered transport or fault injector with a
// bug) is confined to its own run: the panic converts to that run's
// error, and the World it ran in is dropped instead of returned to the
// pool, so its possibly-corrupt state can never leak into later runs.
func (c *Campaign) runCore(ctx context.Context, cfg Config) (res *Result, err error) {
	if c.DisableArenaReuse {
		defer recoverRunPanic(&err)
		return core.RunContext(ctx, cfg)
	}
	var w *core.World
	select {
	case w = <-c.arenas:
	default:
		w = core.NewWorld()
	}
	defer func() {
		if p := recover(); p != nil {
			// Do not return the arena: the panic may have left it
			// half-mutated.
			res, err = nil, fmt.Errorf("manetsim: simulation panicked: %v", p)
			return
		}
		select {
		case c.arenas <- w:
		default:
		}
	}()
	return w.RunContext(ctx, cfg)
}

// recoverRunPanic converts a simulation panic into the run's error.
func recoverRunPanic(err *error) {
	if p := recover(); p != nil {
		*err = fmt.Errorf("manetsim: simulation panicked: %v", p)
	}
}

// scaled fills a config's unset measurement budget and seed from the
// campaign scale. Explicit per-config values win, so WithPackets/WithSeed
// keep their meaning through RunScenario.
func (c *Campaign) scaled(cfg Config) Config {
	if cfg.TotalPackets == 0 {
		cfg.TotalPackets = c.Scale.TotalPackets
	}
	if cfg.BatchPackets == 0 {
		cfg.BatchPackets = c.Scale.BatchPackets
	}
	if cfg.Seed == 0 {
		cfg.Seed = c.Scale.Seed
	}
	return cfg
}

// errCampaignObserver rejects observers on campaign runs: a cached result
// is returned without re-running (so the observer would silently see
// nothing), and parallel sweep runs would invoke one observer from many
// goroutines, breaking Observer's single-threaded contract.
var errCampaignObserver = errors.New("manetsim: campaign runs do not support Config.Observer — results may be served from the shared cache without re-running, and sweeps run in parallel; attach observers to direct Run calls instead")

// configKey derives the cache key from a config: Config.CacheKey, the
// canonical JSON-by-value identity shared by the in-memory cache and the
// persistent store.
func configKey(cfg Config) string { return cfg.CacheKey() }

// errAborted marks work skipped because an earlier item in the same
// fan-out already failed. It never escapes runParallel: the first real
// error wins the error channel before the abort flag is raised.
var errAborted = errors.New("manetsim: campaign run skipped after an earlier failure")

// runParallel is the shared fan-out: it executes work(i) for every i in
// [0,n) on its own goroutine and returns the results in input order.
// Bounding comes from withSlot inside the work functions, so cache hits
// never wait for a worker slot.
//
// The first error returns immediately — the caller does not wait for the
// remaining slots to drain. In-flight simulations cannot be preempted and
// finish in the background (their cache entries stay valid), but queued
// work that has not claimed a slot yet observes the abort flag and is
// skipped.
func (c *Campaign) runParallel(n int, work func(i int, abort *atomic.Bool) (*Result, error)) ([]*Result, error) {
	results := make([]*Result, n)
	var (
		abort atomic.Bool
		wg    sync.WaitGroup
	)
	errc := make(chan error, 1)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := work(i, &abort)
			if err != nil {
				// First real error wins the buffered slot; errAborted from
				// skipped work arrives only after it, so it is always
				// dropped here.
				select {
				case errc <- err:
				default:
				}
				abort.Store(true)
				return
			}
			results[i] = res
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case err := <-errc:
		return nil, err
	case <-done:
		select {
		case err := <-errc:
			return nil, err
		default:
		}
		return results, nil
	}
}

// withSlot runs fn while holding one of the campaign's worker slots.
// Cancellation and a raised abort flag are both honoured while queued:
// work behind a failed or cancelled sibling bails out without running.
func (c *Campaign) withSlot(ctx context.Context, abort *atomic.Bool, fn func() (*Result, error)) (*Result, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	if abort != nil && abort.Load() {
		return nil, errAborted
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fn()
}

// cacheEntry is one single-flight cache slot: the first caller for a key
// executes the run, concurrent duplicates wait for it and share the
// outcome; done is closed once res/err are set.
type cacheEntry struct {
	once sync.Once
	done chan struct{}
	res  *Result
	err  error
}

func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// forget drops a completed entry so a later caller re-runs the config;
// used when a run died of context cancellation, which says nothing about
// the config itself.
func (c *Campaign) forget(key string, e *cacheEntry) {
	c.mu.Lock()
	if c.cache[key] == e {
		delete(c.cache, key)
	}
	c.mu.Unlock()
}

// cachedRun executes one already-scaled config through the cache.
// Completed entries return immediately without touching the worker
// semaphore. An abort or cancellation observed before the entry is claimed
// leaves it unclaimed, and an entry whose run was cancelled mid-flight is
// forgotten — so neither aborts nor cancellations poison the cache.
func (c *Campaign) cachedRun(ctx context.Context, cfg Config, abort *atomic.Bool) (*Result, error) {
	if cfg.Observer != nil {
		return nil, errCampaignObserver
	}
	key := configKey(cfg)
	c.mu.Lock()
	e := c.cache[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		c.cache[key] = e
	}
	c.mu.Unlock()
	if e.completed() {
		return e.res, e.err
	}
	return c.withSlot(ctx, abort, func() (*Result, error) {
		e.once.Do(func() {
			e.res, e.err = c.runStored(ctx, key, cfg)
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				c.forget(key, e)
			}
			close(e.done)
		})
		return e.res, e.err
	})
}

// Run executes one config — scaled to the campaign's Scale — through the
// cache (and, when configured, the persistent store).
func (c *Campaign) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	return c.cachedRun(ctx, c.scaled(cfg), nil)
}

// RunScenario executes one scenario with run options (see Run at package
// level) through the campaign's scale and cache.
func (c *Campaign) RunScenario(ctx context.Context, scn *Scenario, opts ...Option) (*Result, error) {
	cfg := Config{Scenario: scn}
	for _, opt := range opts {
		opt(&cfg)
	}
	return c.Run(ctx, cfg)
}

// RunAll executes configs in parallel, preserving order and returning the
// first failure without draining the rest of the sweep.
func (c *Campaign) RunAll(ctx context.Context, cfgs []Config) ([]*Result, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	return c.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*Result, error) {
		return c.cachedRun(ctx, c.scaled(cfgs[i]), abort)
	})
}

// Sweep is a declarative parameter grid: the cartesian product of
// scenarios, transports, rates and link models, each replicated over
// Seeds. Empty axes
// collapse to the Base config's value (and Seeds to the campaign scale's
// seed), so a Sweep can vary exactly the dimensions under study.
type Sweep struct {
	Scenarios  []*Scenario
	Transports []TransportSpec
	Rates      []Rate
	// LinkModels sweeps link-impairment specs (e.g. a loss-rate ramp built
	// from UniformLossModel). Empty collapses to Base.LinkModel — the
	// perfect channel unless Base sets one.
	LinkModels []LinkModelSpec
	// Faults sweeps fault schedules: each entry is one run's complete
	// fault plan (possibly empty — the fault-free baseline cell). Empty
	// collapses to Base.Faults.
	Faults [][]FaultSpec
	// Seeds replicates every cell; replicate statistics aggregate across
	// them with 95% confidence intervals.
	Seeds []int64
	// Base supplies every remaining run-level knob (MaxSimTime,
	// WarmupBatches, NoCapture, ... and the fallback Transport/Bandwidth).
	// Base.Observer must be nil: campaign runs reject observers, since
	// cached cells never re-run and parallel cells would share one.
	Base Config
}

// CellKey is the canonical, stable address of one sweep cell — the
// scenario x transport x rate point with its seed replication set —
// rendered as the deterministic JSON encoding of those four values. The
// in-memory cache, the on-disk result store and the HTTP results API all
// address cells through it, so the same cell keys identically across
// processes, machines and binaries. Compact derived forms come from
// Hash.
type CellKey string

// NewCellKey derives the canonical key of a cell. Two independently
// built but equal scenario values produce the same key (the encoding
// follows the pointer into nodes and flows).
func NewCellKey(scn *Scenario, t TransportSpec, r Rate, lm LinkModelSpec, faults []FaultSpec, seeds []int64) CellKey {
	b, err := json.Marshal(struct {
		Scenario  *Scenario
		Transport TransportSpec
		Rate      Rate
		LinkModel LinkModelSpec
		// Fault-free cells omit the field, so their keys stay
		// byte-identical to ones minted before the fault subsystem.
		Faults []FaultSpec `json:",omitempty"`
		Seeds  []int64
	}{scn, t, r, lm, faults, seeds})
	if err != nil {
		// All components are plain data; encoding cannot fail.
		panic(fmt.Sprintf("manetsim: encoding cell key: %v", err))
	}
	return CellKey(b)
}

// Hash returns the hex SHA-256 of the key: a fixed-width identifier for
// URLs, filenames and logs. The full key remains the source of truth.
func (k CellKey) Hash() string { return store.Hash(string(k)) }

// FindCell returns the cell addressed by key, searching a Sweep's
// result set. It is the canonical lookup; use it instead of relying on
// grid position.
func FindCell(cells []Cell, key CellKey) (*Cell, bool) {
	for i := range cells {
		if cells[i].Key == key {
			return &cells[i], true
		}
	}
	return nil, false
}

// Cell is one point of a sweep grid with its replicated runs and the
// across-replicate estimates of the headline metrics. For a single seed
// the estimates carry the run's value with a zero-width interval.
//
// Key is the cell's canonical address (see CellKey); disk storage, the
// HTTP results API and FindCell all identify cells by it. The
// Scenario/Transport/Rate/Seeds fields and the grid ordering of Sweep's
// return value (scenarios outermost, matching the input axes) are kept
// as the legacy positional access and remain stable for existing
// callers; new code should address cells by Key.
type Cell struct {
	Key CellKey

	Scenario  *Scenario
	Transport TransportSpec
	Rate      Rate
	LinkModel LinkModelSpec
	// Faults is the cell's fault schedule (nil for fault-free cells;
	// omitted from the JSON encoding so pre-fault cell documents stay
	// identical).
	Faults []FaultSpec `json:",omitempty"`
	Seeds  []int64

	// Runs holds one result per seed, in Seeds order.
	Runs []*Result

	// Across-replicate estimates of the per-run batch means.
	Goodput Estimate // aggregate goodput [bit/s]
	Rtx     Estimate // transport retransmissions per delivered packet
	Jain    Estimate // Jain's fairness index
}

// axes returns the sweep's effective transport, rate, link-model, fault
// and seed axes after empty-axis collapse: empty
// Transports/Rates/LinkModels/Faults fall back to the Base config's
// value, empty Seeds to the campaign scale's seed.
func (sw Sweep) axes(scaleSeed int64) (transports []TransportSpec, rates []Rate, linkModels []LinkModelSpec, faults [][]FaultSpec, seeds []int64) {
	transports = sw.Transports
	if len(transports) == 0 {
		transports = []TransportSpec{sw.Base.Transport}
	}
	rates = sw.Rates
	if len(rates) == 0 {
		rates = []Rate{sw.Base.Bandwidth}
	}
	linkModels = sw.LinkModels
	if len(linkModels) == 0 {
		linkModels = []LinkModelSpec{sw.Base.LinkModel}
	}
	faults = sw.Faults
	if len(faults) == 0 {
		faults = [][]FaultSpec{sw.Base.Faults}
	}
	seeds = sw.Seeds
	if len(seeds) == 0 {
		if scaleSeed == 0 {
			scaleSeed = 1
		}
		seeds = []int64{scaleSeed}
	}
	return transports, rates, linkModels, faults, seeds
}

// GridSize returns how many runs the sweep expands to under the given
// campaign scale (cells x seed replicates).
func (sw Sweep) GridSize(scale Scale) int {
	transports, rates, linkModels, faults, seeds := sw.axes(scale.Seed)
	return len(sw.Scenarios) * len(transports) * len(rates) * len(linkModels) * len(faults) * len(seeds)
}

// SweepEvent reports one completed run of a sweep grid to a progress
// callback: which cell the run belongs to, its seed, and the grid-wide
// completion count. Result is the run's full measurement set. Events
// fire for every completed run — including runs served from the cache or
// the persistent store, which is what makes resumed sweeps report
// complete progress.
type SweepEvent struct {
	Key    CellKey
	Seed   int64
	Done   int // runs completed so far, including this one
	Total  int // total runs in the grid
	Result *Result
}

// Sweep executes the full grid (deduplicated through the cache and, when
// configured, the persistent store, in parallel) and returns one
// aggregated Cell per scenario x transport x rate combination, in grid
// order with scenarios outermost. With a store attached (WithStore) the
// sweep is resumable: completed cells load from disk, so a killed sweep
// restarted against the same store re-runs only the incomplete remainder.
func (c *Campaign) Sweep(ctx context.Context, sw Sweep) ([]Cell, error) {
	return c.SweepProgress(ctx, sw, nil)
}

// SweepProgress is Sweep with a streaming progress callback: onRun is
// invoked once per completed run, serialized (never concurrently) and in
// completion order. A nil onRun is Sweep. The callback must not block
// for long — it is on the completion path of every worker.
func (c *Campaign) SweepProgress(ctx context.Context, sw Sweep, onRun func(SweepEvent)) ([]Cell, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if len(sw.Scenarios) == 0 {
		return nil, errors.New("manetsim: Sweep needs at least one Scenario")
	}
	transports, rates, linkModels, faults, seeds := sw.axes(c.Scale.Seed)
	var cells []Cell
	var cfgs []Config
	for _, scn := range sw.Scenarios {
		for _, t := range transports {
			for _, r := range rates {
				for _, lm := range linkModels {
					for _, fs := range faults {
						cells = append(cells, Cell{
							Key:      NewCellKey(scn, t, r, lm, fs, seeds),
							Scenario: scn, Transport: t, Rate: r, LinkModel: lm, Faults: fs, Seeds: seeds,
						})
						for _, seed := range seeds {
							cfg := sw.Base
							cfg.Scenario = scn
							cfg.Transport = t
							cfg.Bandwidth = r
							cfg.LinkModel = lm
							cfg.Faults = fs
							cfg.Seed = seed
							cfgs = append(cfgs, cfg)
						}
					}
				}
			}
		}
	}
	var (
		progressMu sync.Mutex
		done       int
	)
	results, err := c.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*Result, error) {
		res, err := c.cachedRun(ctx, c.scaled(cfgs[i]), abort)
		if err == nil && onRun != nil {
			progressMu.Lock()
			done++
			onRun(SweepEvent{
				Key:    cells[i/len(seeds)].Key,
				Seed:   seeds[i%len(seeds)],
				Done:   done,
				Total:  len(cfgs),
				Result: res,
			})
			progressMu.Unlock()
		}
		return res, err
	})
	if err != nil {
		return nil, err
	}
	k := 0
	for i := range cells {
		cells[i].Runs = results[k : k+len(seeds)]
		k += len(seeds)
		cells[i].aggregate()
	}
	return cells, nil
}

// aggregate folds the replicated runs into across-seed estimates.
func (cell *Cell) aggregate() {
	n := len(cell.Runs)
	good := make([]float64, n)
	rtx := make([]float64, n)
	jain := make([]float64, n)
	for i, r := range cell.Runs {
		good[i] = r.AggGoodput.Mean
		rtx[i] = r.Rtx.Mean
		jain[i] = r.Jain.Mean
	}
	cell.Goodput = stats.BatchMeans(good)
	cell.Rtx = stats.BatchMeans(rtx)
	cell.Jain = stats.BatchMeans(jain)
}

// OptimalUDPGap finds the paced-UDP inter-packet time that maximizes
// goodput for a chain of the given hop count, following the paper's
// procedure: start from the analytic 4-hop propagation delay and increase
// t gradually, keeping the best measured goodput. The winning gap is
// memoized per campaign, and with a store attached (WithStore) the probe
// runs themselves persist, so repeating the search in a fresh process
// executes zero simulations.
func (c *Campaign) OptimalUDPGap(ctx context.Context, hops int, rate Rate) (time.Duration, error) {
	if err := c.ready(); err != nil {
		return 0, err
	}
	key := fmt.Sprintf("%d@%v", hops, rate)
	c.gapMu.Lock()
	if g, ok := c.gapMemo[key]; ok {
		c.gapMu.Unlock()
		return g, nil
	}
	c.gapMu.Unlock()

	t0 := FourHopPropagationDelay(rate)
	if hops < 4 {
		// Short chains have no 4-hop pipelining: the whole chain is one
		// contention domain, so start from the serial per-hop cost.
		t0 = time.Duration(hops) * ExchangeTime(rate, pkt.TCPDataSize)
	}
	var cfgs []Config
	var gaps []time.Duration
	for f := 1.0; f <= 1.8; f += 0.1 {
		gap := time.Duration(float64(t0) * f).Round(100 * time.Microsecond)
		gaps = append(gaps, gap)
		cfg := Config{
			Scenario:  Chain(hops),
			Bandwidth: rate,
			Transport: TransportSpec{Protocol: PacedUDP, UDPGap: gap},
			// The sweep uses a quarter of the budget per candidate.
			TotalPackets: c.Scale.TotalPackets / 4,
			BatchPackets: c.Scale.BatchPackets / 4,
			Seed:         c.Scale.Seed,
		}
		if cfg.BatchPackets == 0 {
			cfg.BatchPackets = cfg.TotalPackets / 11
		}
		cfgs = append(cfgs, cfg)
	}
	// Bypass the scale rewrite and the in-memory cache — these
	// quarter-budget probes are keyed by the memo — but go through the
	// persistent store, so the search is free across processes too.
	results, err := c.runParallel(len(cfgs), func(i int, abort *atomic.Bool) (*Result, error) {
		return c.withSlot(ctx, abort, func() (*Result, error) {
			return c.runStored(ctx, cfgs[i].CacheKey(), cfgs[i])
		})
	})
	if err != nil {
		return 0, err
	}
	best, bestG := gaps[0], -1.0
	for i, res := range results {
		if g := res.AggGoodput.Mean; g > bestG {
			best, bestG = gaps[i], g
		}
	}
	c.gapMu.Lock()
	c.gapMemo[key] = best
	c.gapMu.Unlock()
	return best, nil
}
