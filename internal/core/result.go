package core

import (
	"time"

	"manetsim/internal/pkt"
	"manetsim/internal/stats"
)

// Batch holds the raw measurements of one batch (paper: 10000 delivered
// packets per batch).
type Batch struct {
	Start, End time.Duration // simulated time span
	// PerFlowPackets counts new in-order packets delivered per flow.
	PerFlowPackets []int64
	// PerFlowRtx counts transport-layer retransmissions per flow.
	PerFlowRtx []uint64
	// PerFlowWindow is the time-averaged congestion window per flow
	// (zero for UDP).
	PerFlowWindow []float64
	// MACDrops counts failed transmission attempts (retries + retry-limit
	// drops) and MACSubmitted all unicast attempts (RTS + DATA frames),
	// aggregated over nodes: their ratio is the paper's Figure 14 metric.
	MACDrops     uint64
	MACSubmitted uint64
	// FalseRouteFailures counts AODV teardowns caused by MAC give-ups on
	// links that were actually healthy (the paper's metric);
	// TrueRouteFailures counts teardowns where the next hop really was out
	// of range (only possible with mobility).
	FalseRouteFailures uint64
	TrueRouteFailures  uint64
}

// Duration returns the batch time span.
func (b Batch) Duration() time.Duration { return b.End - b.Start }

// PerFlowGoodput returns per-flow goodput in bit/s (payload bytes only,
// matching the paper's definition).
func (b Batch) PerFlowGoodput() []float64 {
	out := make([]float64, len(b.PerFlowPackets))
	secs := b.Duration().Seconds()
	if secs <= 0 {
		return out
	}
	for i, p := range b.PerFlowPackets {
		out[i] = float64(p) * pkt.TCPPayloadSize * 8 / secs
	}
	return out
}

// AggregateGoodput returns the summed goodput over flows in bit/s.
func (b Batch) AggregateGoodput() float64 {
	var sum float64
	for _, g := range b.PerFlowGoodput() {
		sum += g
	}
	return sum
}

// Jain returns Jain's fairness index over the batch's per-flow goodputs.
func (b Batch) Jain() float64 { return stats.JainIndex(b.PerFlowGoodput()) }

// RtxPerDelivered returns transport retransmissions per delivered packet,
// averaged over flows (the paper's Figures 7 and 12 metric).
func (b Batch) RtxPerDelivered() float64 {
	if len(b.PerFlowPackets) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i := range b.PerFlowPackets {
		if b.PerFlowPackets[i] == 0 {
			continue
		}
		sum += float64(b.PerFlowRtx[i]) / float64(b.PerFlowPackets[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanWindow averages the per-flow time-weighted windows.
func (b Batch) MeanWindow() float64 {
	if len(b.PerFlowWindow) == 0 {
		return 0
	}
	return stats.Mean(b.PerFlowWindow)
}

// DropProbability returns the per-attempt link-layer failure probability
// in the batch.
func (b Batch) DropProbability() float64 {
	if b.MACSubmitted == 0 {
		return 0
	}
	return float64(b.MACDrops) / float64(b.MACSubmitted)
}

// EnergyReport summarizes radio energy use over the whole run.
type EnergyReport struct {
	TotalJoules      float64
	JoulesPerMB      float64 // energy per delivered payload megabyte
	DeliveredPackets int64
}

// DelaySummary reports end-to-end packet latency (send to in-order
// delivery, including retransmission waits) pooled over flows.
type DelaySummary struct {
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	Max  time.Duration
	N    int64
}

// OutageReport measures one injected fault's outage window and the
// network's recovery from it, at delivery granularity: recovery is the
// first new in-order packet delivered (on any flow) at or after the
// instant in question.
type OutageReport struct {
	// Fault is the injected spec's label (FaultSpec.Label).
	Fault string
	// Start is the injection instant; End the heal instant (zero for a
	// permanent fault).
	Start time.Duration
	End   time.Duration `json:",omitempty"`
	// Recovered reports whether any delivery happened at or after the
	// injection; TimeToRecover is the gap from injection to that first
	// delivery (how long the fault stalled end-to-end progress).
	Recovered     bool          `json:",omitempty"`
	TimeToRecover time.Duration `json:",omitempty"`
	// RecoveredAfterHeal and TimeToRecoverAfterHeal measure the same from
	// the heal instant: how long routing and the transport took to get
	// traffic flowing again once the fault cleared. Unset for permanent
	// faults.
	RecoveredAfterHeal     bool          `json:",omitempty"`
	TimeToRecoverAfterHeal time.Duration `json:",omitempty"`
}

// FaultReport aggregates a faulted run's resilience metrics. Nil on
// fault-free runs (the JSON encoding omits it, keeping their identity).
type FaultReport struct {
	// Injected is the number of scheduled faults.
	Injected int
	// Outages reports each fault's window and recovery, in schedule order.
	Outages []OutageReport
	// TimeInOutage is the simulated time with at least one fault active
	// (overlapping windows merged, clamped to the run).
	TimeInOutage time.Duration
	// DeliveredDuring and DeliveredOutside split the run's deliveries by
	// whether any fault was active at delivery time;
	// GoodputDuringBps/GoodputOutsideBps are the corresponding payload
	// rates. A healthy recovery shows GoodputDuringBps well below
	// GoodputOutsideBps with both nonzero.
	DeliveredDuring   int64
	DeliveredOutside  int64
	GoodputDuringBps  float64
	GoodputOutsideBps float64
	// FramesCut counts frame copies killed in flight by the fault plane
	// (severed links and partitions; a crashed node stops transmitting
	// rather than radiating undecodable frames).
	FramesCut uint64
	// RouteFailures totals AODV route teardowns over the whole run
	// (true + false), the route-repair work the faults triggered.
	RouteFailures uint64
}

// Result is the outcome of one Run.
type Result struct {
	Config Config
	// Flows is the materialized flow set (generator scenarios resolve
	// their random flows here).
	Flows []Flow

	// Measured batches (warm-up already discarded).
	Batches []Batch

	// Batch-means estimates over the measured batches.
	AggGoodput  stats.Estimate // bit/s
	PerFlowGood []stats.Estimate
	Rtx         stats.Estimate // retransmissions per delivered packet
	AvgWindow   stats.Estimate // packets
	DropProb    stats.Estimate // link-layer dropping probability
	Jain        stats.Estimate // fairness index

	FalseRouteFailures uint64 // total over measured batches
	TrueRouteFailures  uint64 // total over measured batches (mobility only)
	Energy             EnergyReport
	Delay              DelaySummary

	// ImpairedFrames counts frame copies killed by the link-impairment
	// model over the whole run (0 under the perfect channel).
	ImpairedFrames uint64 `json:",omitempty"`

	// Faults carries the resilience metrics of a faulted run; nil when
	// the config schedules no faults.
	Faults *FaultReport `json:",omitempty"`

	Delivered int64         // total packets delivered (incl. warm-up)
	SimTime   time.Duration // simulated duration
	Truncated bool          // MaxSimTime hit before TotalPackets
}

// aggregate computes the batch-means estimates from the measured batches.
func (r *Result) aggregate() {
	if len(r.Batches) == 0 {
		return
	}
	nf := len(r.Flows)
	agg := make([]float64, len(r.Batches))
	rtx := make([]float64, len(r.Batches))
	win := make([]float64, len(r.Batches))
	drop := make([]float64, len(r.Batches))
	jain := make([]float64, len(r.Batches))
	perFlow := make([][]float64, nf)
	for i := range perFlow {
		perFlow[i] = make([]float64, len(r.Batches))
	}
	for bi, b := range r.Batches {
		agg[bi] = b.AggregateGoodput()
		rtx[bi] = b.RtxPerDelivered()
		win[bi] = b.MeanWindow()
		drop[bi] = b.DropProbability()
		jain[bi] = b.Jain()
		g := b.PerFlowGoodput()
		for fi := 0; fi < nf; fi++ {
			perFlow[fi][bi] = g[fi]
		}
		r.FalseRouteFailures += b.FalseRouteFailures
		r.TrueRouteFailures += b.TrueRouteFailures
	}
	r.AggGoodput = stats.BatchMeans(agg)
	r.Rtx = stats.BatchMeans(rtx)
	r.AvgWindow = stats.BatchMeans(win)
	r.DropProb = stats.BatchMeans(drop)
	r.Jain = stats.BatchMeans(jain)
	r.PerFlowGood = make([]stats.Estimate, nf)
	for fi := 0; fi < nf; fi++ {
		r.PerFlowGood[fi] = stats.BatchMeans(perFlow[fi])
	}
}
