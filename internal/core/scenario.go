package core

import (
	"fmt"
	"math/rand"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
)

// Position is a node location in meters.
type Position struct {
	X, Y float64
}

// Flow is one transport connection of a scenario.
type Flow struct {
	Src, Dst pkt.NodeID

	// Transport overrides the run's default TransportSpec for this flow
	// when its Protocol is set; the zero value inherits the default. Mixed
	// per-flow transports enable coexistence studies (e.g. Vegas and
	// NewReno competing on the grid).
	Transport TransportSpec `json:",omitempty"`

	// Start delays the flow's first transmission by this offset from the
	// simulation epoch (a small decorrelating jitter is always added on
	// top). Zero starts immediately, the paper's setting.
	Start time.Duration `json:",omitempty"`
}

// GeneratorSpec describes seed-dependent scenario synthesis: the placement
// (and default flow set) is drawn from the run's seeded RNG at build time,
// so the same scenario value reproduces the same network per seed.
type GeneratorSpec struct {
	// Kind selects the generator; "random" is uniform placement with
	// connectivity retries, the paper's random topology.
	Kind string

	// Nodes, Width and Height parameterize random placement.
	Nodes  int
	Width  float64
	Height float64

	// FlowCount random flows are drawn when the scenario has no explicit
	// flow set.
	FlowCount int
}

// Scenario describes a network under test: node placement, the flow set
// with per-flow transports and start times, and the scenario-level routing
// and mobility choices. Build one incrementally from NewScenario with
// AddNode/AddFlow, or start from the paper's Chain/Grid/Random
// constructors and modify the result. Scenarios are plain data: they
// marshal deterministically to JSON (the Campaign cache key) and may be
// shared between runs as long as they are not mutated concurrently.
type Scenario struct {
	// Name is an optional label for rendering and logs.
	Name string `json:",omitempty"`

	// Nodes is the explicit placement; node IDs are indices into it.
	Nodes []Position `json:",omitempty"`

	// Flows is the transport connection set.
	Flows []Flow `json:",omitempty"`

	// Routing selects the routing substrate (default AODV, the paper's).
	Routing RoutingKind `json:",omitempty"`

	// Mobility selects the node movement model (default stationary).
	Mobility MobilitySpec `json:",omitempty"`

	// Generator, when non-nil, synthesizes placement (and, if Flows is
	// empty, the flow set) from the run's seeded RNG instead of Nodes.
	Generator *GeneratorSpec `json:",omitempty"`
}

// NewScenario returns an empty scenario to populate with AddNode/AddFlow.
func NewScenario(name string) *Scenario { return &Scenario{Name: name} }

// AddNode places a node at (x, y) meters and returns its ID.
func (s *Scenario) AddNode(x, y float64) pkt.NodeID {
	s.Nodes = append(s.Nodes, Position{X: x, Y: y})
	return pkt.NodeID(len(s.Nodes) - 1)
}

// AddFlow appends a flow from src to dst using the run's default transport
// and returns the scenario for chaining.
func (s *Scenario) AddFlow(src, dst pkt.NodeID) *Scenario {
	return s.Add(Flow{Src: src, Dst: dst})
}

// Add appends a fully specified flow (per-flow transport and/or start
// time) and returns the scenario for chaining.
func (s *Scenario) Add(f Flow) *Scenario {
	s.Flows = append(s.Flows, f)
	return s
}

// WithFlows replaces the flow set and returns the scenario for chaining.
func (s *Scenario) WithFlows(flows ...Flow) *Scenario {
	s.Flows = flows
	return s
}

// WithRouting sets the routing substrate and returns the scenario.
func (s *Scenario) WithRouting(k RoutingKind) *Scenario {
	s.Routing = k
	return s
}

// WithMobility sets the movement model and returns the scenario.
func (s *Scenario) WithMobility(m MobilitySpec) *Scenario {
	s.Mobility = m
	return s
}

// Clone returns a deep copy, so variants can be derived without aliasing
// the receiver's slices.
func (s *Scenario) Clone() *Scenario {
	c := *s
	c.Nodes = append([]Position(nil), s.Nodes...)
	c.Flows = append([]Flow(nil), s.Flows...)
	if s.Generator != nil {
		g := *s.Generator
		c.Generator = &g
	}
	return &c
}

// NumNodes returns the node count, or the generator's for synthesized
// scenarios.
func (s *Scenario) NumNodes() int {
	if s.Generator != nil {
		return s.Generator.Nodes
	}
	return len(s.Nodes)
}

// Chain returns an h-hop chain of 200 m spaced nodes with a single flow
// from end to end — the paper's first topology.
func Chain(hops int) *Scenario {
	s := NewScenario(fmt.Sprintf("chain-%d", hops))
	if hops < 1 {
		// Left empty; Validate reports the actionable error at run time so
		// constructor call sites stay assignment-friendly.
		return s
	}
	for _, p := range geo.Chain(hops) {
		s.AddNode(p.X, p.Y)
	}
	return s.AddFlow(0, pkt.NodeID(hops))
}

// Grid returns the paper's 21-node grid with its six crossing FTP flows
// (Figure 15).
func Grid() *Scenario {
	s := NewScenario("grid-21")
	pts, gf := geo.Grid21()
	for _, p := range pts {
		s.AddNode(p.X, p.Y)
	}
	for _, f := range gf {
		s.AddFlow(pkt.NodeID(f.Src), pkt.NodeID(f.Dst))
	}
	return s
}

// HiddenTerminal returns the interference-limited hidden-terminal
// topology: two parallel one-hop flows A->R1 and B->R2 on a line, spaced
// so the senders cannot carrier-sense each other (700 m apart, beyond
// CSRange = 550 m) while B's transmissions still reach R1 as
// interference (500 m, inside CSRange). B cannot decode R1's CTS or ACK
// frames (500 m > TxRange = 250 m), so collisions at R1 are unavoidable
// — but with RTS/CTS a collision costs a 20-byte RTS instead of a
// full data frame, and EIFS after each corrupted reception keeps B out
// of the exchange's SIFS gaps. Compare runs with Config.RTSThreshold 0
// (handshake on) and above the packet size (basic access) to measure
// the classic hidden-terminal trade-off.
func HiddenTerminal() *Scenario {
	s := NewScenario("hidden-terminal")
	a := s.AddNode(0, 0)
	r1 := s.AddNode(200, 0)
	b := s.AddNode(700, 0)
	r2 := s.AddNode(900, 0)
	s.AddFlow(a, r1)
	s.AddFlow(b, r2)
	return s
}

// Random returns the paper's 120-node random topology (2500x1000 m²) with
// ten random flows. Placement and flows are drawn from the run's seed.
func Random() *Scenario { return RandomField(120, 2500, 1000, 10) }

// RandomField returns a random topology over a width x height meter field:
// n nodes placed uniformly (redrawn until connected) and flows random
// distinct pairs, all drawn from the run's seed.
func RandomField(n int, width, height float64, flows int) *Scenario {
	return &Scenario{
		Name: fmt.Sprintf("random-%d", n),
		Generator: &GeneratorSpec{
			Kind: "random", Nodes: n, Width: width, Height: height, FlowCount: flows,
		},
	}
}

// Validate reports the first structural problem of the scenario: no nodes,
// no flows, flows referencing nonexistent nodes or looping back to their
// source, or negative start times. Generator scenarios validate what is
// checkable before synthesis.
func (s *Scenario) Validate() error {
	n := s.NumNodes()
	if s.Generator != nil {
		g := s.Generator
		if g.Kind != "random" {
			return fmt.Errorf("core: unknown scenario generator kind %q", g.Kind)
		}
		if g.Nodes < 2 {
			return fmt.Errorf("core: random scenario needs at least 2 nodes, got %d", g.Nodes)
		}
		if g.Width <= 0 || g.Height <= 0 {
			return fmt.Errorf("core: random scenario needs a positive field, got %gx%g m", g.Width, g.Height)
		}
		if len(s.Flows) == 0 && g.FlowCount < 1 {
			return fmt.Errorf("core: random scenario needs FlowCount >= 1 or explicit flows")
		}
	} else {
		if n == 0 {
			return fmt.Errorf("core: scenario %q has no nodes; add them with AddNode or use a constructor", s.Name)
		}
		if len(s.Flows) == 0 {
			return fmt.Errorf("core: scenario %q has no flows; add at least one with AddFlow", s.Name)
		}
	}
	for i, f := range s.Flows {
		if f.Src < 0 || f.Dst < 0 || int(f.Src) >= n || int(f.Dst) >= n {
			return fmt.Errorf("core: flow %d references node %d->%d, but the scenario has %d nodes (IDs 0..%d)",
				i, f.Src, f.Dst, n, n-1)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("core: flow %d sends node %d to itself", i, f.Src)
		}
		if f.Start < 0 {
			return fmt.Errorf("core: flow %d has negative start time %v", i, f.Start)
		}
		if !f.Transport.selected() && !f.Transport.IsZero() {
			// A per-flow spec replaces the run default entirely; options on
			// a variant-less spec would otherwise be silently discarded.
			return fmt.Errorf("core: flow %d sets transport options without a Protocol or Name; a per-flow TransportSpec replaces the run default entirely (select a transport too, or leave the whole spec zero to inherit)", i)
		}
		if err := f.Transport.validate(fmt.Sprintf("flow %d", i), true); err != nil {
			return err
		}
	}
	return nil
}

// materialize produces the concrete placement and flow set. Generator
// scenarios draw from rng (the run scheduler's source), so synthesis is
// reproducible per seed and — matching the pre-Scenario build order — the
// placement draws precede every other use of the stream.
func (s *Scenario) materialize(rng *rand.Rand) ([]geo.Point, []Flow, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if g := s.Generator; g != nil {
		pts, _ := geo.Random(geo.RandomConfig{
			N: g.Nodes, Width: g.Width, Height: g.Height, Range: phy.TxRange,
		}, rng)
		flows := s.Flows
		if len(flows) == 0 {
			gf := geo.PickFlows(g.Nodes, g.FlowCount, rng)
			flows = make([]Flow, len(gf))
			for i, f := range gf {
				flows[i] = Flow{Src: pkt.NodeID(f.Src), Dst: pkt.NodeID(f.Dst)}
			}
		}
		return pts, flows, nil
	}
	pts := make([]geo.Point, len(s.Nodes))
	for i, p := range s.Nodes {
		pts[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return pts, s.Flows, nil
}
