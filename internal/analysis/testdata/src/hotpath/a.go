// Package hotpath exercises the hotpathalloc analyzer: functions marked
// //manetsim:hotpath may not contain capturing closures, allocating fmt
// calls, or method-value captures. Capture-free literals and fmt calls that
// feed panic directly are exempt; unmarked functions are unconstrained.
package hotpath

import "fmt"

//manetsim:hotpath
func hotClosure(xs []int, y int) int {
	f := func(x int) int { return x + y } // want `capturing closure in hot-path function hotClosure`
	return f(xs[0])
}

// hotStatic's literal captures nothing: the compiler emits a static func
// value, so no per-call allocation happens.
//
//manetsim:hotpath
func hotStatic(xs []int) int {
	f := func(x int) int { return x * 2 }
	return f(xs[0])
}

//manetsim:hotpath
func hotSprintf(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf in hot-path function hotSprintf`
}

// hotPanicGuard formats only on the fatal violation path — zero steady-state
// cost, so panic arguments are exempt.
//
//manetsim:hotpath
func hotPanicGuard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
}

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

//manetsim:hotpath
func hotMethodValue(c *counter) func() {
	return c.bump // want `method value c\.bump in hot-path function hotMethodValue`
}

// hotMethodCall performs an ordinary method call — no bound-method closure.
//
//manetsim:hotpath
func hotMethodCall(c *counter) {
	c.bump()
}

// coldClosure is unmarked: closures are fine off the hot path.
func coldClosure(y int) func(int) int {
	return func(x int) int { return x + y }
}
