package manetsim_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"manetsim"
)

// shortRun executes one small fixed-seed run of spec over a 2-hop chain.
func shortRun(t *testing.T, spec manetsim.TransportSpec) *manetsim.Result {
	t.Helper()
	res, err := manetsim.Run(context.Background(), manetsim.Chain(2),
		manetsim.WithTransport(spec),
		manetsim.WithSeed(1),
		manetsim.WithPackets(1100, 100),
	)
	if err != nil {
		t.Fatalf("%s: %v", spec.Label(), err)
	}
	return res
}

// TestEveryRegisteredTransportRuns drives each registry entry end to end
// through the public API: every transport the registry lists — built-ins
// and the variants shipped through RegisterTransport — must carry a small
// chain run to completion.
func TestEveryRegisteredTransportRuns(t *testing.T) {
	infos := manetsim.Transports()
	if len(infos) < 7 {
		t.Fatalf("registry lists %d transports, want at least the 7 built-ins", len(infos))
	}
	for _, info := range infos {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			spec := manetsim.TransportSpec{Name: info.Name}
			if info.Name == "pacedudp" {
				spec.UDPGap = 40 * time.Millisecond
			}
			res := shortRun(t, spec)
			if res.Truncated || res.Delivered < 1100 {
				t.Errorf("%s delivered %d packets (truncated=%v)", info.Name, res.Delivered, res.Truncated)
			}
			if res.AggGoodput.Mean <= 0 {
				t.Errorf("%s: zero goodput", info.Name)
			}
		})
	}
}

// TestTransportAliasesResolve pins that aliases and the legacy Protocol
// constants select the same transports as canonical names.
func TestTransportAliasesResolve(t *testing.T) {
	byName := shortRun(t, manetsim.TransportSpec{Name: "vegas"})
	byProto := shortRun(t, manetsim.TransportSpec{Protocol: manetsim.Vegas})
	if byName.AggGoodput.Mean != byProto.AggGoodput.Mean || byName.Delivered != byProto.Delivered {
		t.Errorf("Name \"vegas\" and Protocol Vegas diverge: %.0f/%d vs %.0f/%d bit/s",
			byName.AggGoodput.Mean, byName.Delivered, byProto.AggGoodput.Mean, byProto.Delivered)
	}
	alias := shortRun(t, manetsim.TransportSpec{Name: "udp", UDPGap: 40 * time.Millisecond})
	canon := shortRun(t, manetsim.TransportSpec{Name: "pacedudp", UDPGap: 40 * time.Millisecond})
	if alias.AggGoodput.Mean != canon.AggGoodput.Mean {
		t.Errorf("alias udp and pacedudp diverge: %.0f vs %.0f bit/s", alias.AggGoodput.Mean, canon.AggGoodput.Mean)
	}
}

// TestUnknownTransportNameListsRegistry pins the actionable error for a
// typo'd name.
func TestUnknownTransportNameListsRegistry(t *testing.T) {
	_, err := manetsim.Run(context.Background(), manetsim.Chain(2),
		manetsim.WithTransport(manetsim.TransportSpec{Name: "vegaas"}))
	if err == nil {
		t.Fatal("unknown transport name accepted")
	}
	for _, frag := range []string{`"vegaas"`, "vegas", "westwood", "pacing"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %s", err, frag)
		}
	}
}

// fixedWindowCC is the custom toy congestion control registered through
// the public API: a constant 4-packet window, go-back-N on timeout, no
// fast retransmit. It exercises exactly the strategy surface an external
// variant author sees — CCBase embedding plus engine calls.
type fixedWindowCC struct {
	manetsim.CCBase
	win float64
}

func (c *fixedWindowCC) OnAck(a manetsim.Ack) {
	e := c.Engine()
	if !a.NoEcho && !a.FromRetransmit {
		e.SampleRTT(e.Now() - a.Echo)
	}
	e.AdvanceAck(a.Seq)
	e.SetWindow(c.win)
}

func (c *fixedWindowCC) OnDupAck(manetsim.Ack) {}

func (c *fixedWindowCC) OnTimeout() {
	e := c.Engine()
	e.BackoffRTO()
	e.RestartRTOTimer()
}

var registerToyOnce sync.Once

// TestRegisterCustomTransport registers a toy congestion control through
// the public API and proves it is selectable by name everywhere a spec
// goes — including a campaign sweep next to the built-ins.
func TestRegisterCustomTransport(t *testing.T) {
	registerToyOnce.Do(func() {
		manetsim.RegisterTransport("toy-fixed4", func(manetsim.TransportSpec) (manetsim.CongestionControl, error) {
			return &fixedWindowCC{win: 4}, nil
		})
	})

	res := shortRun(t, manetsim.TransportSpec{Name: "toy-fixed4"})
	if res.Truncated || res.Delivered < 1100 {
		t.Fatalf("toy transport delivered %d packets (truncated=%v)", res.Delivered, res.Truncated)
	}
	// The fixed window must show up in the measured average: after the
	// first ACK the window sits at 4 for the whole run.
	if res.AvgWindow.Mean < 3 || res.AvgWindow.Mean > 4.01 {
		t.Errorf("average window %.2f, want ~4 (fixed)", res.AvgWindow.Mean)
	}

	found := false
	for _, info := range manetsim.Transports() {
		if info.Name == "toy-fixed4" {
			found = true
		}
	}
	if !found {
		t.Error("registered transport missing from Transports()")
	}

	// Selectable in a Sweep next to built-ins.
	c := manetsim.NewCampaign(manetsim.Scale{TotalPackets: 550, BatchPackets: 50, Seed: 1})
	cells, err := c.Sweep(context.Background(), manetsim.Sweep{
		Scenarios: []*manetsim.Scenario{manetsim.Chain(2)},
		Transports: []manetsim.TransportSpec{
			{Name: "toy-fixed4"},
			{Name: "westwood"},
			{Name: "pacing"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("sweep cells = %d, want 3", len(cells))
	}
	for _, cell := range cells {
		if cell.Goodput.Mean <= 0 {
			t.Errorf("%s: zero goodput in sweep", cell.Transport.Label())
		}
	}
}

// TestVegasBetaGammaParams pins that the Vegas β/γ thresholds — dead
// config fields before the Params redesign — are reachable from the
// public API and validated.
func TestVegasBetaGammaParams(t *testing.T) {
	// A wide α..β band (α=1, β=9) tolerates more queueing before backing
	// off than the paper's α=β point setting; both must run, and the
	// validation must reject an inverted band.
	band := shortRun(t, manetsim.TransportSpec{
		Name: "vegas", Alpha: 1, Params: manetsim.Params{Beta: 9, Gamma: 1},
	})
	if band.Truncated || band.AggGoodput.Mean <= 0 {
		t.Errorf("banded Vegas run failed: delivered=%d", band.Delivered)
	}

	_, err := manetsim.Run(context.Background(), manetsim.Chain(2),
		manetsim.WithTransport(manetsim.TransportSpec{
			Name: "vegas", Alpha: 4, Params: manetsim.Params{Beta: 2},
		}))
	if err == nil || !strings.Contains(err.Error(), "Beta 2 below Alpha 4") {
		t.Errorf("inverted Vegas band not rejected: %v", err)
	}
}

// TestPerFlowNamedTransportInheritance pins the IsZero-based inheritance:
// a per-flow spec carrying only a Name (Protocol == 0) must override the
// run default rather than silently inheriting it.
func TestPerFlowNamedTransportInheritance(t *testing.T) {
	scn := manetsim.Chain(2)
	scn.Flows[0].Transport = manetsim.TransportSpec{Name: "newreno"}
	res, err := manetsim.Run(context.Background(), scn,
		// The run default pins the window at 1 packet; the per-flow spec
		// (Name only, Protocol == 0) must replace it entirely, so the
		// measured average window exceeding 1 proves the override took.
		manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas, MaxWindow: 1}),
		manetsim.WithSeed(1),
		manetsim.WithPackets(1100, 100),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 1100 {
		t.Errorf("delivered %d, want 1100", res.Delivered)
	}
	if res.AvgWindow.Mean <= 1.01 {
		t.Errorf("average window %.2f: per-flow Name-only spec inherited the default's MaxWindow=1 instead of overriding it",
			res.AvgWindow.Mean)
	}
}
