package hotpath

import "simstub/sim"

func fire(_ any) {}

// Closures handed to Scheduler.At/After allocate on every schedule; the
// AtFunc/AfterFunc counterparts exist precisely to avoid that, so the check
// applies everywhere, not just in marked functions.

func scheduleClosureAfter(s *sim.Scheduler, d sim.Time, n int) {
	s.After(d, func() { _ = n }) // want `closure passed to Scheduler\.After allocates`
}

func scheduleClosureAt(s *sim.Scheduler, t sim.Time, n int) {
	s.At(t, func() { _ = n }) // want `closure passed to Scheduler\.At allocates`
}

func scheduleFunc(s *sim.Scheduler, d sim.Time) {
	s.AfterFunc(d, fire, nil)
}

func scheduleAllowed(s *sim.Scheduler, d sim.Time, n int) {
	//manetsim:allow hotpathalloc one-time setup; capture struct not worth it
	s.After(d, func() { _ = n })
}
