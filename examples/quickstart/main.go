// Quickstart: simulate one TCP Vegas flow over a 7-hop 802.11 chain at
// 2 Mbit/s and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	res, err := manetsim.Run(context.Background(), manetsim.Chain(7),
		manetsim.WithBandwidth(manetsim.Rate2Mbps),
		manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}),
		manetsim.WithSeed(1),
		// Reduced scale for a fast demo; drop this option for the paper's
		// full 110000-packet methodology.
		manetsim.WithPackets(demoPackets(11000), 0),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TCP Vegas over a 7-hop IEEE 802.11 chain (2 Mbit/s):")
	fmt.Printf("  goodput:             %.1f kbit/s (95%% CI ±%.1f)\n",
		res.AggGoodput.Mean/1e3, res.AggGoodput.HalfCI/1e3)
	fmt.Printf("  average window:      %.2f packets\n", res.AvgWindow.Mean)
	fmt.Printf("  retransmissions:     %.4f per delivered packet\n", res.Rtx.Mean)
	fmt.Printf("  false route failures: %d\n", res.FalseRouteFailures)
	fmt.Printf("  simulated time:      %v for %d packets\n", res.SimTime.Round(1e9), res.Delivered)
}
