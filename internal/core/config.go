// Package core is the scenario engine realizing the paper's evaluation
// methodology: it builds a scenario (node placement, flows, routing,
// mobility), attaches transport flows over the full PHY/MAC/AODV stack,
// runs a steady-state simulation until a fixed number of packets is
// delivered, and derives every reported metric — goodput, transport
// retransmissions, average window, link-layer drop probability, false
// route failures, Jain's fairness index and energy — using the batch-means
// method with 95% confidence intervals.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/mobility"
	"manetsim/internal/phy"
)

// Protocol selects the transport variant under test.
type Protocol int

// Transport protocols: the paper's three plus the classic Reno and Tahoe
// baselines from the related-work comparisons.
const (
	ProtoVegas Protocol = iota + 1
	ProtoNewReno
	ProtoPacedUDP
	ProtoReno
	ProtoTahoe
)

var protoNames = map[Protocol]string{
	ProtoVegas:    "Vegas",
	ProtoNewReno:  "NewReno",
	ProtoPacedUDP: "PacedUDP",
	ProtoReno:     "Reno",
	ProtoTahoe:    "Tahoe",
}

func (p Protocol) String() string {
	if s, ok := protoNames[p]; ok {
		return s
	}
	return fmt.Sprintf("proto(%d)", int(p))
}

// Params carries the optional per-variant transport parameters. The zero
// value of every field selects the variant's default, so specs only spell
// out what they change; fields irrelevant to the selected transport are
// ignored.
type Params struct {
	// Beta and Gamma override the Vegas β and γ thresholds in packets.
	// Both default to α (the spec's Alpha field): the paper fixes
	// α = β = γ, but Brakmo's original α < β band is expressible here.
	Beta  int `json:",omitempty"`
	Gamma int `json:",omitempty"`
	// BWFilterGain is the Westwood+ bandwidth-estimate low-pass pole in
	// (0,1): how much of the previous estimate survives each
	// once-per-RTT sample (default 0.9).
	BWFilterGain float64 `json:",omitempty"`
	// CoVWeight scales how strongly the adaptive-pacing sender stretches
	// its inter-packet gap under RTT variability: the pacing interval is
	// (srtt + CoVWeight·rttvar)/cwnd (default 2).
	CoVWeight float64 `json:",omitempty"`
	// MinPaceGap floors the adaptive pacing interval and seeds it before
	// the first RTT sample (default 1ms).
	MinPaceGap time.Duration `json:",omitempty"`
}

// TransportSpec configures the transport layer of a flow (or, as
// Config.Transport, the default for every flow that does not set its own).
// A spec selects its variant either by registry Name (any transport,
// including ones added with RegisterCC) or by the legacy Protocol
// constant, which resolves through the registry too.
type TransportSpec struct {
	// Name selects a registered transport by name (case-insensitive),
	// e.g. "vegas", "westwood", "pacing". When empty, Protocol selects
	// the variant instead.
	Name string `json:",omitempty"`

	Protocol    Protocol
	AckThinning bool // Altman-Jiménez dynamic delayed ACKs (TCP only)
	DelayedAck  bool // standard RFC 1122 delayed ACKs (TCP only)
	// Alpha is the Vegas α=β=γ threshold in packets (default 2).
	Alpha int
	// MaxWindow bounds the congestion window ("NewReno Optimal Window";
	// paper finds MaxWin=3 optimal for the 7-hop chain). 0 = unbounded.
	MaxWindow int
	// UDPGap is the paced-UDP inter-packet interval (required for
	// ProtoPacedUDP).
	UDPGap time.Duration

	// Params carries the variant-specific tuning knobs (Vegas β/γ,
	// Westwood+ filter gain, adaptive-pacing shape).
	Params Params
}

// IsZero reports whether the spec is entirely unset. A zero per-flow spec
// inherits the run default; anything else — a Name, a Protocol, or bare
// options — replaces it.
func (t TransportSpec) IsZero() bool { return t == TransportSpec{} }

// selected reports whether the spec names a transport at all (by registry
// name or legacy protocol constant).
func (t TransportSpec) selected() bool { return t.Name != "" || t.Protocol != 0 }

// Label renders the spec the way the paper labels its curves.
func (t TransportSpec) Label() string {
	s := t.Name
	proto := t.Protocol
	if tr, err := resolveTransport(t); err == nil {
		s = tr.label
		proto = tr.proto
	} else if s == "" {
		s = t.Protocol.String()
	}
	if proto == ProtoVegas && t.Alpha != 0 && t.Alpha != 2 {
		s = fmt.Sprintf("%s(α=%d)", s, t.Alpha)
	}
	if t.MaxWindow > 0 {
		s = fmt.Sprintf("%s(MaxWin=%d)", s, t.MaxWindow)
	}
	if t.AckThinning {
		s += "+Thin"
	}
	if t.DelayedAck {
		s += "+DelAck"
	}
	return s
}

// validate reports misconfigurations with the field spelled out so sweep
// failures point at the offending spec. allowZero accepts a spec that
// selects no transport (a per-flow spec inheriting the run default).
func (t TransportSpec) validate(where string, allowZero bool) error {
	if !t.selected() {
		if allowZero {
			return nil
		}
		return fmt.Errorf("core: %s: no transport protocol set (set Name to a registered transport — e.g. %s — or a Protocol constant)",
			where, strings.Join(transportNames(), ", "))
	}
	tr, err := resolveTransport(t)
	if err != nil {
		return fmt.Errorf("%v (%s)", err, where)
	}
	if t.Alpha < 0 {
		return fmt.Errorf("core: %s: negative Vegas Alpha %d (threshold is in packets, >= 0)", where, t.Alpha)
	}
	if t.Params.Beta < 0 || t.Params.Gamma < 0 {
		return fmt.Errorf("core: %s: negative Vegas threshold (Beta=%d, Gamma=%d; packets, >= 0)", where, t.Params.Beta, t.Params.Gamma)
	}
	if t.Params.BWFilterGain < 0 {
		return fmt.Errorf("core: %s: negative BWFilterGain %g", where, t.Params.BWFilterGain)
	}
	if t.Params.CoVWeight < 0 {
		return fmt.Errorf("core: %s: negative CoVWeight %g", where, t.Params.CoVWeight)
	}
	if t.Params.MinPaceGap < 0 {
		return fmt.Errorf("core: %s: negative MinPaceGap %v", where, t.Params.MinPaceGap)
	}
	if t.MaxWindow < 0 {
		return fmt.Errorf("core: %s: negative MaxWindow %d (0 means unbounded)", where, t.MaxWindow)
	}
	if t.UDPGap < 0 {
		return fmt.Errorf("core: %s: negative UDPGap %v", where, t.UDPGap)
	}
	if t.AckThinning && t.DelayedAck {
		return fmt.Errorf("core: %s: AckThinning and DelayedAck are mutually exclusive", where)
	}
	if tr.check != nil {
		return tr.check(t, where)
	}
	return nil
}

// MobilityKind selects the node movement model.
type MobilityKind int

// Mobility models: the paper's static scenarios and the canonical random
// waypoint extension.
const (
	MobilityStationary MobilityKind = iota
	MobilityRandomWaypoint
)

// MobilitySpec configures node movement over the run. The zero value keeps
// the paper's static scenarios.
type MobilitySpec struct {
	Kind MobilityKind

	// MinSpeed and MaxSpeed bound the uniformly drawn per-leg speed in m/s
	// (random waypoint). MinSpeed defaults to 1 — the classic vmin=0
	// formulation stalls nodes forever.
	MinSpeed, MaxSpeed float64

	// Pause is the rest time at each waypoint.
	Pause time.Duration

	// FieldWidth and FieldHeight bound the movement area, anchored at the
	// origin. When both are zero the field is the bounding box of the
	// initial placement.
	FieldWidth, FieldHeight float64

	// PinFlowEndpoints freezes every flow's source and destination at its
	// initial position so mobility affects only the relays — the classic
	// setup isolating route churn from path-length drift (random waypoint
	// concentrates nodes toward the field center, which otherwise shortens
	// the measured paths as speed grows).
	PinFlowEndpoints bool

	// UpdateInterval is the position-refresh epoch of the channel
	// (default phy.DefaultUpdateInterval).
	UpdateInterval time.Duration
}

// buildMobility materializes the movement model for the placed nodes and
// flows. All randomness comes from rng (the scheduler's source) so mobile
// runs stay reproducible per seed.
func buildMobility(m MobilitySpec, pts []geo.Point, flows []Flow, rng *rand.Rand) (mobility.Model, error) {
	var model mobility.Model
	switch m.Kind {
	case MobilityStationary:
		return mobility.NewStationary(pts), nil
	case MobilityRandomWaypoint:
		field := geo.Bounds(pts)
		switch {
		case m.FieldWidth > 0 && m.FieldHeight > 0:
			field = geo.Rect{Max: geo.Point{X: m.FieldWidth, Y: m.FieldHeight}}
		case m.FieldWidth > 0 || m.FieldHeight > 0:
			// A half-specified field would silently collapse the movement
			// area to a line along one axis.
			return nil, fmt.Errorf("core: set both FieldWidth and FieldHeight (or neither for the initial bounding box)")
		}
		minSpeed := m.MinSpeed
		if minSpeed == 0 {
			// Default 1 m/s, but never above MaxSpeed: a sub-1 m/s crawl
			// with MinSpeed unset must stay expressible.
			minSpeed = 1
			if m.MaxSpeed > 0 && m.MaxSpeed < minSpeed {
				minSpeed = m.MaxSpeed
			}
		}
		var err error
		model, err = mobility.NewRandomWaypoint(mobility.WaypointConfig{
			Field:    field,
			MinSpeed: minSpeed,
			MaxSpeed: m.MaxSpeed,
			Pause:    m.Pause,
		}, pts, rng)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown mobility kind %d", m.Kind)
	}
	if m.PinFlowEndpoints {
		fixed := make(map[int]geo.Point)
		for _, f := range flows {
			fixed[int(f.Src)] = pts[f.Src]
			fixed[int(f.Dst)] = pts[f.Dst]
		}
		model = mobility.Pin(model, fixed)
	}
	return model, nil
}

// RoutingKind selects the routing substrate.
type RoutingKind int

// Routing choices; AODV is the paper's configuration, static shortest-path
// routing is the ablation.
const (
	RoutingAODV RoutingKind = iota
	RoutingStatic
)

// Config fully describes one simulation run: the scenario under test plus
// the run-level knobs (bandwidth, default transport, seed, measurement
// budget). Zero fields take the paper's defaults (2 Mbit/s, 110000 packets
// in batches of 10000, α=2).
type Config struct {
	// Scenario is the network under test. Required.
	Scenario *Scenario

	Bandwidth phy.Rate

	// Transport is the default TransportSpec for flows that do not carry
	// their own.
	Transport TransportSpec

	Seed int64

	// Measurement methodology (paper: 110000 total, batches of 10000,
	// first batch discarded).
	TotalPackets  int64
	BatchPackets  int64
	WarmupBatches int

	// NoCapture disables the PHY's 10 dB capture rule (ablation: any
	// overlapping signal within interference range corrupts receptions).
	NoCapture bool

	// LinkModel selects the link-impairment model (per-frame corruption,
	// delay jitter, capture ratio) the PHY consults on every frame
	// delivery. The zero value is the perfect channel — byte-identical
	// to runs predating the subsystem.
	LinkModel LinkModelSpec

	// Faults is the run's fault schedule: deterministic, clock-driven
	// disturbances (node crashes, link blackouts, partitions) injected at
	// their configured times. Empty keeps today's fault-free behavior,
	// byte-identical to runs predating the subsystem.
	Faults []FaultSpec `json:",omitempty"`

	// RTSThreshold enables 802.11 basic access for short frames: unicast
	// packets of at most this many bytes skip the RTS/CTS handshake.
	// 0 keeps RTS/CTS on every unicast frame (the paper's setting); a
	// value above the largest packet size disables RTS/CTS entirely.
	RTSThreshold int `json:",omitempty"`

	// MaxSimTime bounds runs that cannot reach TotalPackets (e.g. a
	// starved flow); the result is marked Truncated. Default 24h.
	MaxSimTime time.Duration

	// Observer, when non-nil, receives run events (batch closes, route
	// failures, retransmissions, window samples, progress). It is excluded
	// from the JSON encoding so campaign cache keys stay value-based.
	Observer Observer `json:"-"`
}

// CacheKey returns the canonical string identity of the config: its
// deterministic JSON encoding by value (struct order is fixed, there are
// no map fields, and the Scenario pointer is followed into its nodes and
// flows, so two independently built but equal configs share a key). The
// Observer field is excluded by its json:"-" tag — attaching one never
// changes identity. Campaign's in-memory cache keys by this string, and
// the persistent result store addresses files by its SHA-256.
func (c Config) CacheKey() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a plain data struct; encoding cannot fail.
		panic(fmt.Sprintf("core: encoding config cache key: %v", err))
	}
	return string(b)
}

func (c Config) withDefaults() Config {
	if c.Bandwidth == 0 {
		c.Bandwidth = phy.Rate2Mbps
	}
	if c.TotalPackets == 0 {
		c.TotalPackets = 110000
	}
	if c.BatchPackets == 0 {
		c.BatchPackets = c.TotalPackets / 11
	}
	if c.WarmupBatches == 0 {
		c.WarmupBatches = 1
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 24 * time.Hour
	}
	if c.Transport.Alpha == 0 {
		c.Transport.Alpha = 2
	}
	return c
}

// validate rejects misconfigured runs with actionable errors before any
// simulation state is built. Flow-level checks live in Scenario.Validate,
// which runs during materialization.
func (c Config) validate() error {
	if c.Scenario == nil {
		return fmt.Errorf("core: Config.Scenario is nil; build one with NewScenario/AddNode or the Chain/Grid/Random constructors")
	}
	if err := c.Transport.validate("Config.Transport", true); err != nil {
		return err
	}
	epoch := c.Scenario.Mobility.UpdateInterval
	if epoch <= 0 {
		epoch = phy.DefaultUpdateInterval
	}
	if err := c.LinkModel.validate("Config.LinkModel", epoch); err != nil {
		return err
	}
	for i, f := range c.Faults {
		if err := f.validate(fmt.Sprintf("Config.Faults[%d]", i), c.Scenario.NumNodes()); err != nil {
			return err
		}
	}
	if c.RTSThreshold < 0 {
		return fmt.Errorf("core: negative RTSThreshold %d (bytes; 0 keeps RTS/CTS on every unicast frame)", c.RTSThreshold)
	}
	if c.TotalPackets < 0 || c.BatchPackets < 0 {
		return fmt.Errorf("core: negative measurement budget (TotalPackets=%d, BatchPackets=%d)", c.TotalPackets, c.BatchPackets)
	}
	return nil
}

var errStaticMobility = errors.New("core: static routing cannot follow moving nodes; use AODV with mobility")

func errUnknownRouting(k RoutingKind) error {
	return fmt.Errorf("core: unknown routing kind %d", k)
}

func flowContext(fi int) string { return fmt.Sprintf("flow %d transport", fi) }
