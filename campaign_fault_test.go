package manetsim

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSweepFaultsAxis sweeps a fault-free baseline against a crash
// schedule: one cell per schedule, distinct keys, the baseline cell key
// byte-identical to its pre-fault encoding, and resilience metrics only
// on the faulted replicates.
func TestSweepFaultsAxis(t *testing.T) {
	crash := []FaultSpec{CrashFault(1, 2*time.Second, time.Second)}
	sw := Sweep{
		Scenarios:  []*Scenario{Chain(3)},
		Transports: []TransportSpec{{Protocol: NewReno}},
		Faults:     [][]FaultSpec{nil, crash},
		Seeds:      []int64{1, 2},
		Base:       Config{TotalPackets: 550, BatchPackets: 50},
	}
	if got := sw.GridSize(BenchScale); got != 4 {
		t.Fatalf("GridSize = %d, want 4 (2 schedules x 2 seeds)", got)
	}
	c := NewCampaign(BenchScale)
	cells, err := c.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2 (one per fault schedule)", len(cells))
	}
	baseline, faulted := cells[0], cells[1]
	if len(baseline.Faults) != 0 {
		baseline, faulted = faulted, baseline
	}
	if strings.Contains(string(baseline.Key), "Fault") {
		t.Errorf("fault-free cell key mentions faults: %s", baseline.Key)
	}
	if want := NewCellKey(sw.Scenarios[0], sw.Transports[0], 0, LinkModelSpec{}, nil, sw.Seeds); baseline.Key != want {
		t.Errorf("fault-free cell key drifted:\n got %s\nwant %s", baseline.Key, want)
	}
	if baseline.Key == faulted.Key {
		t.Fatal("fault schedule did not change the cell key")
	}
	for _, r := range baseline.Runs {
		if r.Faults != nil {
			t.Error("fault-free replicate carries a FaultReport")
		}
	}
	for _, r := range faulted.Runs {
		if r.Faults == nil || r.Faults.Injected != 1 {
			t.Error("faulted replicate missing its FaultReport")
		}
	}
	// The during-vs-outside goodput contrast is asserted per run (see
	// internal/core's conformance matrix); at this batch budget the
	// cell-level means only need to be sane.
	if faulted.Goodput.Mean <= 0 || baseline.Goodput.Mean <= 0 {
		t.Errorf("zero goodput: faulted %.0f, baseline %.0f",
			faulted.Goodput.Mean, baseline.Goodput.Mean)
	}
}

// TestSweepStoreResumeWithFaults: faulted sweeps are resumable like any
// other — a fresh campaign over the same store executes zero runs and
// reloads byte-identical results.
func TestSweepStoreResumeWithFaults(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sw := Sweep{
		Scenarios:  []*Scenario{Chain(3)},
		Transports: []TransportSpec{{Protocol: NewReno}, {Protocol: Vegas, Alpha: 2}},
		Faults:     [][]FaultSpec{{CrashFault(1, 2*time.Second, time.Second)}},
		Seeds:      []int64{1, 2},
		Base:       Config{TotalPackets: 550, BatchPackets: 50},
	}

	first := NewCampaign(BenchScale, WithStore(dir))
	cells1, err := first.Sweep(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Executed(); got != 4 {
		t.Fatalf("first sweep executed %d runs, want 4", got)
	}

	resumed := NewCampaign(BenchScale, WithStore(dir))
	cells2, err := resumed.Sweep(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Executed(); got != 0 {
		t.Fatalf("resumed faulted sweep executed %d runs, want 0", got)
	}
	for i := range cells1 {
		a, _ := json.Marshal(cells1[i].Runs)
		b, _ := json.Marshal(cells2[i].Runs)
		if string(a) != string(b) {
			t.Errorf("cell %d: store-loaded faulted runs differ from the originals", i)
		}
	}
}

// panicCC is a registered transport that panics as soon as its transfer
// starts — the worker-isolation probe. The panic is armed by the spec
// (Alpha == 42), so the registry-enumeration tests, which run every
// listed transport with a zero spec, get a working fixed-window variant
// instead.
type panicCC struct {
	CCBase
	armed bool
}

func (p *panicCC) OnStart() {
	if p.armed {
		panic("chaos monkey ate the congestion window")
	}
	p.Engine().SetWindow(4)
}

func (p *panicCC) OnAck(a Ack) {
	e := p.Engine()
	e.AdvanceAck(a.Seq)
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
}

func (p *panicCC) OnDupAck(Ack) {}

func (p *panicCC) OnTimeout() {
	e := p.Engine()
	e.BackoffRTO()
	e.RestartRTOTimer()
}

func panicCCFactory(spec TransportSpec) (CongestionControl, error) {
	return &panicCC{armed: spec.Alpha == 42}, nil
}

// TestCampaignPanicIsolation: a panicking transport fails only its own
// run — with the panic text in the error — and leaves the campaign's
// worker pool, arena pool and cache fully usable. Exercised fresh and
// with arena reuse disabled, since the two recovery paths differ (a
// poisoned arena must be dropped, not returned to the pool).
func TestCampaignPanicIsolation(t *testing.T) {
	RegisterTransport("panic-onstart", panicCCFactory)
	bad := benchChainCfg(2)
	bad.Transport = TransportSpec{Name: "panic-onstart", Alpha: 42}
	good := benchChainCfg(2)

	for _, tc := range []struct {
		name string
		c    *Campaign
	}{
		{"arena", NewCampaign(BenchScale)},
		{"fresh-builds", NewCampaign(BenchScale, WithoutArenaReuse())},
	} {
		ctx := context.Background()
		_, err := tc.c.Run(ctx, bad)
		if err == nil || !strings.Contains(err.Error(), "simulation panicked") ||
			!strings.Contains(err.Error(), "chaos monkey") {
			t.Fatalf("%s: panicking run returned %v, want a recovered panic error", tc.name, err)
		}
		// The same campaign must still run clean configs (single-flight
		// cache and arena pool survive the panic)...
		res, err := tc.c.Run(ctx, good)
		if err != nil || res.Delivered == 0 {
			t.Fatalf("%s: campaign unusable after a panic: %v", tc.name, err)
		}
		// ...and batches of them in parallel.
		results, err := tc.c.RunAll(ctx, []Config{good, benchChainCfg(3)})
		if err != nil || len(results) != 2 {
			t.Fatalf("%s: parallel batch after a panic: %v", tc.name, err)
		}
	}
}

// TestCampaignPanicDoesNotPoisonCache: after a panicking run, re-running
// the same config reports the failure again rather than hanging on the
// single-flight entry.
func TestCampaignPanicDoesNotPoisonCache(t *testing.T) {
	RegisterTransport("panic-onstart-2", panicCCFactory)
	bad := benchChainCfg(2)
	bad.Transport = TransportSpec{Name: "panic-onstart-2", Alpha: 42}
	c := NewCampaign(BenchScale)
	for i := 0; i < 2; i++ {
		_, err := c.Run(context.Background(), bad)
		if err == nil || !strings.Contains(err.Error(), "simulation panicked") {
			t.Fatalf("attempt %d: got %v, want the recovered panic error", i, err)
		}
	}
}
