package node

import (
	"testing"
	"time"

	"manetsim/internal/aodv"
	"manetsim/internal/geo"
	"manetsim/internal/mac"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/tcp"
	"manetsim/internal/udp"
)

// buildStack wires nodes with static routing over a chain.
func buildStack(t *testing.T, hops int) (*sim.Scheduler, []*Node, *pkt.UIDSource) {
	t.Helper()
	sched := sim.NewScheduler(1)
	pts := geo.Chain(hops)
	ch := phy.NewChannel(sched, pts)
	uids := &pkt.UIDSource{}
	nodes := make([]*Node, len(pts))
	for i := range pts {
		nodes[i] = New(sched, ch.Radio(pkt.NodeID(i)), mac.Config{DataRate: phy.Rate2Mbps})
	}
	for i := range pts {
		n := nodes[i]
		n.SetRouter(aodv.NewStatic(pkt.NodeID(i), n.MAC, pts, phy.TxRange, n.Deliver))
	}
	return sched, nodes, uids
}

func TestTCPFlowOverStack(t *testing.T) {
	sched, nodes, uids := buildStack(t, 2)
	src, dst := nodes[0], nodes[2]
	snd := tcp.NewEngine(sched, tcp.Config{}, 0, 0, 2, uids, src.Output(), tcp.NewNewRenoCC())
	sink := tcp.NewSink(sched, 0, 2, 0, tcp.AckEveryPacket, uids, dst.Output())
	src.AttachTCPSender(0, snd)
	dst.AttachTCPSink(0, sink)
	var delivered int64
	dst.OnFlowDelivery = func(flow int, n int64) {
		if flow != 0 {
			t.Errorf("delivery for flow %d, want 0", flow)
		}
		delivered += n
	}
	sched.At(0, snd.Start)
	sched.RunUntil(2 * time.Second)
	if delivered < 100 {
		t.Fatalf("delivered %d packets over 2s, want >=100", delivered)
	}
	if got := sink.Stats().GoodputPackets; got != delivered {
		t.Errorf("hook total %d != sink goodput %d", delivered, got)
	}
}

func TestUDPFlowOverStack(t *testing.T) {
	sched, nodes, uids := buildStack(t, 2)
	sink := udp.NewSink()
	nodes[2].AttachUDPSink(3, sink)
	var delivered int64
	nodes[2].OnFlowDelivery = func(flow int, n int64) { delivered += n }
	snd := udp.NewSender(sched, 3, 0, 2, 50*time.Millisecond, uids, nodes[0].Output())
	sched.At(0, snd.Start)
	sched.RunUntil(time.Second)
	if delivered < 15 || delivered > 21 {
		t.Errorf("delivered %d packets at 20/s over 1s, want ~19-20", delivered)
	}
}

func TestDemuxSeparatesFlows(t *testing.T) {
	sched, nodes, uids := buildStack(t, 1)
	sinkA := tcp.NewSink(sched, 0, 1, 0, tcp.AckEveryPacket, uids, nodes[1].Output())
	sinkB := tcp.NewSink(sched, 1, 1, 0, tcp.AckEveryPacket, uids, nodes[1].Output())
	nodes[1].AttachTCPSink(0, sinkA)
	nodes[1].AttachTCPSink(1, sinkB)
	sndA := tcp.NewEngine(sched, tcp.Config{}, 0, 0, 1, uids, nodes[0].Output(), tcp.NewNewRenoCC())
	sndB := tcp.NewEngine(sched, tcp.Config{}, 1, 0, 1, uids, nodes[0].Output(), tcp.NewNewRenoCC())
	nodes[0].AttachTCPSender(0, sndA)
	nodes[0].AttachTCPSender(1, sndB)
	sched.At(0, sndA.Start)
	sched.At(0, sndB.Start)
	sched.RunUntil(time.Second)
	if sinkA.Stats().GoodputPackets == 0 || sinkB.Stats().GoodputPackets == 0 {
		t.Errorf("flows starved: A=%d B=%d", sinkA.Stats().GoodputPackets, sinkB.Stats().GoodputPackets)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	sched, nodes, uids := buildStack(t, 1)
	sink := tcp.NewSink(sched, 0, 1, 0, tcp.AckEveryPacket, uids, nodes[1].Output())
	nodes[1].AttachTCPSink(0, sink)
	defer func() {
		if recover() == nil {
			t.Error("duplicate sink attach did not panic")
		}
	}()
	nodes[1].AttachTCPSink(0, sink)
}

func TestRouterRequired(t *testing.T) {
	sched := sim.NewScheduler(1)
	ch := phy.NewChannel(sched, geo.Chain(1))
	n := New(sched, ch.Radio(0), mac.Config{DataRate: phy.Rate2Mbps})
	defer func() {
		if recover() == nil {
			t.Error("Output without router did not panic")
		}
	}()
	n.Output()(&pkt.Packet{})
}

func TestEnergyAccounting(t *testing.T) {
	sched, nodes, uids := buildStack(t, 1)
	snd := tcp.NewEngine(sched, tcp.Config{}, 0, 0, 1, uids, nodes[0].Output(), tcp.NewNewRenoCC())
	sink := tcp.NewSink(sched, 0, 1, 0, tcp.AckEveryPacket, uids, nodes[1].Output())
	nodes[0].AttachTCPSender(0, snd)
	nodes[1].AttachTCPSink(0, sink)
	sched.At(0, snd.Start)
	sched.RunUntil(time.Second)
	e0 := nodes[0].EnergyJoules(DefaultPower, time.Second)
	idleOnly := DefaultPower.Idle * 1.0
	if e0 <= idleOnly {
		t.Errorf("active sender energy %.3f J <= idle-only %.3f J", e0, idleOnly)
	}
	// The transmitter spends more than the pure-idle baseline; a silent
	// node burns exactly idle power.
	schedQuiet := sim.NewScheduler(1)
	chQuiet := phy.NewChannel(schedQuiet, geo.Chain(1))
	quiet := New(schedQuiet, chQuiet.Radio(0), mac.Config{DataRate: phy.Rate2Mbps})
	if got := quiet.EnergyJoules(DefaultPower, time.Second); got != idleOnly {
		t.Errorf("idle node energy = %.3f J, want %.3f J", got, idleOnly)
	}
}
