package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"manetsim/internal/fault"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// FaultSpec selects and parameterizes one injected fault of a run
// (Config.Faults): a scheduled, deterministic disturbance — a node crash,
// a link blackout, a network partition — that the run survives or does
// not. A spec selects its injector by registry Name ("crash", "blackout",
// "partition", or anything added with RegisterFault); fields irrelevant to
// the selected injector are ignored, exactly like TransportSpec and
// LinkModelSpec. Fault transitions fire at their configured times and draw
// no randomness, so a faulted run consumes the same random stream as its
// fault-free twin everywhere else.
type FaultSpec struct {
	// Name selects a registered fault injector (case-insensitive).
	Name string `json:",omitempty"`

	// At is the injection time. Duration is how long the fault lasts;
	// 0 means permanent (the fault never heals).
	At       time.Duration `json:",omitempty"`
	Duration time.Duration `json:",omitempty"`

	// Node is the crashed node ("crash").
	Node int `json:",omitempty"`

	// From and To name the blacked-out link ("blackout"); Bidirectional
	// severs both directions.
	From          int  `json:",omitempty"`
	To            int  `json:",omitempty"`
	Bidirectional bool `json:",omitempty"`

	// Partition geometry ("partition"): either an explicit node set
	// (NodesA, with everyone else on side B) or an axis cut — Axis "x"
	// (default) or "y", with nodes strictly below Cut on side A.
	Axis   string  `json:",omitempty"`
	Cut    float64 `json:",omitempty"`
	NodesA []int   `json:",omitempty"`
}

// IsZero reports whether the spec is entirely unset.
func (f FaultSpec) IsZero() bool {
	return f.Name == "" && f.At == 0 && f.Duration == 0 && f.Node == 0 &&
		f.From == 0 && f.To == 0 && !f.Bidirectional &&
		f.Axis == "" && f.Cut == 0 && len(f.NodesA) == 0
}

// CrashFault returns the spec of a node crash at time at: the node's
// radio, MAC, router and transport endpoints go down, and come back up
// cold after downtime (0 = the node never restarts).
func CrashFault(node int, at, downtime time.Duration) FaultSpec {
	return FaultSpec{Name: "crash", Node: node, At: at, Duration: downtime}
}

// BlackoutFault returns the spec of a bidirectional link blackout between
// from and to over [at, at+duration).
func BlackoutFault(from, to int, at, duration time.Duration) FaultSpec {
	return FaultSpec{Name: "blackout", From: from, To: to, Bidirectional: true, At: at, Duration: duration}
}

// PartitionFault returns the spec of an axis cut: nodes with X < cut are
// severed from the rest over [at, at+duration).
func PartitionFault(cut float64, at, duration time.Duration) FaultSpec {
	return FaultSpec{Name: "partition", Axis: "x", Cut: cut, At: at, Duration: duration}
}

// Label renders the spec for sweep axes, outage reports and listings.
func (f FaultSpec) Label() string {
	name := strings.ToLower(f.Name)
	if e, err := resolveFault(f); err == nil {
		name = e.name
	}
	var s string
	switch name {
	case "crash":
		s = fmt.Sprintf("crash(node=%d)", f.Node)
	case "blackout":
		arrow := "->"
		if f.Bidirectional {
			arrow = "<->"
		}
		s = fmt.Sprintf("blackout(%d%s%d)", f.From, arrow, f.To)
	case "partition":
		if len(f.NodesA) > 0 {
			s = fmt.Sprintf("partition(|A|=%d)", len(f.NodesA))
		} else {
			axis := f.Axis
			if axis == "" {
				axis = "x"
			}
			s = fmt.Sprintf("partition(%s<%g)", axis, f.Cut)
		}
	default:
		s = name
	}
	s += fmt.Sprintf("@%v", f.At)
	if f.Duration > 0 {
		s += fmt.Sprintf("+%v", f.Duration)
	}
	return s
}

// FaultFactory builds a fault injector from its spec. The factory returns
// an error for unusable parameters.
type FaultFactory func(spec FaultSpec) (fault.Fault, error)

// faultEntry is one fault registry entry.
type faultEntry struct {
	name    string   // canonical lower-case name
	aliases []string // additional lookup names
	desc    string   // one-line description for listings
	build   FaultFactory
	// check validates injector-specific spec parameters against the
	// scenario's node count; the generic time checks run before it.
	check func(f FaultSpec, where string, numNodes int) error
}

var (
	fltRegMu     sync.RWMutex
	fltRegistry  = map[string]*faultEntry{} // every name and alias
	fltCanonical []*faultEntry              // registration order, canonical entries only
)

// registerFault adds one entry under its canonical name and aliases.
func registerFault(e *faultEntry) {
	fltRegMu.Lock()
	defer fltRegMu.Unlock()
	names := append([]string{e.name}, e.aliases...)
	for _, n := range names {
		n = strings.ToLower(n)
		if n == "" {
			panic("core: empty fault name")
		}
		if _, dup := fltRegistry[n]; dup {
			panic(fmt.Sprintf("core: fault %q registered twice", n))
		}
		fltRegistry[n] = e
	}
	fltCanonical = append(fltCanonical, e)
}

// RegisterFault registers a fault injector under name, making it
// selectable everywhere a FaultSpec goes: Run options, Campaign sweeps
// and cmd/manetsim -fault. It backs the public manetsim.RegisterFault and
// panics on an empty or duplicate name (registration is a program-setup
// bug, not a runtime condition).
func RegisterFault(name string, factory FaultFactory) {
	if factory == nil {
		panic("core: nil fault factory")
	}
	registerFault(&faultEntry{
		name:  strings.ToLower(name),
		desc:  "registered fault injector",
		build: factory,
	})
}

// FaultInfo describes one registered fault injector for listings.
type FaultInfo struct {
	// Name selects the injector in FaultSpec.Name.
	Name string
	// Aliases are accepted alternative names.
	Aliases []string
	// Description is a one-line summary.
	Description string
}

// Faults lists every registered fault injector, sorted by name.
func Faults() []FaultInfo {
	fltRegMu.RLock()
	defer fltRegMu.RUnlock()
	infos := make([]FaultInfo, 0, len(fltCanonical))
	for _, e := range fltCanonical {
		infos = append(infos, FaultInfo{
			Name:        e.name,
			Aliases:     append([]string(nil), e.aliases...),
			Description: e.desc,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// faultNames returns every registered canonical name, sorted, for
// unknown-name error messages.
func faultNames() []string {
	fltRegMu.RLock()
	defer fltRegMu.RUnlock()
	names := make([]string, 0, len(fltCanonical))
	for _, e := range fltCanonical {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return names
}

// resolveFault maps a spec to its registry entry.
func resolveFault(f FaultSpec) (*faultEntry, error) {
	name := strings.ToLower(f.Name)
	fltRegMu.RLock()
	e := fltRegistry[name]
	fltRegMu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("core: unknown fault %q (registered: %s)",
			f.Name, strings.Join(faultNames(), ", "))
	}
	return e, nil
}

// buildFault materializes the spec's injector for one run.
func buildFault(f FaultSpec) (fault.Fault, error) {
	e, err := resolveFault(f)
	if err != nil {
		return nil, err
	}
	return e.build(f)
}

// checkNode rejects node ids outside the scenario.
func checkNode(where, field string, id, numNodes int) error {
	if id < 0 || id >= numNodes {
		return fmt.Errorf("core: %s: %s %d outside the scenario's %d nodes", where, field, id, numNodes)
	}
	return nil
}

// validate reports misconfigured fault specs with the field spelled out,
// mirroring LinkModelSpec.validate. numNodes is the scenario's node count
// for bounds checks.
func (f FaultSpec) validate(where string, numNodes int) error {
	e, err := resolveFault(f)
	if err != nil {
		return fmt.Errorf("%v (%s)", err, where)
	}
	if f.At < 0 {
		return fmt.Errorf("core: %s: negative At %v (injection time)", where, f.At)
	}
	if f.Duration < 0 {
		return fmt.Errorf("core: %s: negative Duration %v (0 means permanent)", where, f.Duration)
	}
	if e.check != nil {
		return e.check(f, where, numNodes)
	}
	return nil
}

func checkCrash(f FaultSpec, where string, numNodes int) error {
	return checkNode(where, "Node", f.Node, numNodes)
}

func checkBlackout(f FaultSpec, where string, numNodes int) error {
	if err := checkNode(where, "From", f.From, numNodes); err != nil {
		return err
	}
	if err := checkNode(where, "To", f.To, numNodes); err != nil {
		return err
	}
	if f.From == f.To {
		return fmt.Errorf("core: %s: blackout From and To are both node %d (a link needs two endpoints)", where, f.From)
	}
	return nil
}

func checkPartition(f FaultSpec, where string, numNodes int) error {
	if len(f.NodesA) > 0 {
		for _, id := range f.NodesA {
			if err := checkNode(where, "NodesA entry", id, numNodes); err != nil {
				return err
			}
		}
		return nil
	}
	switch f.Axis {
	case "", "x", "y":
	default:
		return fmt.Errorf("core: %s: unknown partition Axis %q (use \"x\" or \"y\", or set NodesA)", where, f.Axis)
	}
	if math.IsNaN(f.Cut) {
		return fmt.Errorf("core: %s: partition Cut is NaN", where)
	}
	return nil
}

func nodeIDs(ids []int) []pkt.NodeID {
	out := make([]pkt.NodeID, len(ids))
	for i, id := range ids {
		out[i] = pkt.NodeID(id)
	}
	return out
}

func init() {
	registerFault(&faultEntry{
		name: "crash", aliases: []string{"nodecrash"},
		desc: "node crash: radio, MAC, router and transports go down at At, restart cold after Duration (0 = forever)",
		build: func(f FaultSpec) (fault.Fault, error) {
			return fault.NodeCrash{Node: pkt.NodeID(f.Node), At: sim.Time(f.At), Downtime: sim.Time(f.Duration)}, nil
		},
		check: checkCrash,
	})
	registerFault(&faultEntry{
		name: "blackout", aliases: []string{"linkblackout"},
		desc: "link blackout: frames From->To (both ways with Bidirectional) stop decoding over [At, At+Duration)",
		build: func(f FaultSpec) (fault.Fault, error) {
			return fault.LinkBlackout{
				From: pkt.NodeID(f.From), To: pkt.NodeID(f.To), Bidirectional: f.Bidirectional,
				At: sim.Time(f.At), Duration: sim.Time(f.Duration),
			}, nil
		},
		check: checkBlackout,
	})
	registerFault(&faultEntry{
		name: "partition", aliases: []string{"split"},
		desc: "network partition: an axis cut (Axis/Cut) or explicit node set (NodesA) splits the network over [At, At+Duration)",
		build: func(f FaultSpec) (fault.Fault, error) {
			return fault.Partition{
				At: sim.Time(f.At), Duration: sim.Time(f.Duration),
				SideA: nodeIDs(f.NodesA), Axis: f.Axis, Cut: f.Cut,
			}, nil
		},
		check: checkPartition,
	})
}
