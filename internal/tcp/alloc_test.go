package tcp

import (
	"testing"

	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// TestEngineHotPathZeroAllocs pins the zero-allocation contract of the
// engine/strategy seam for every shipped variant: once the window and the
// in-flight bookkeeping have saturated, processing an ACK — strategy
// dispatch, RTO accounting, window update, and the transmissions it
// clocks out — performs no heap allocations. The strategies are bound at
// build time; a regression here means a closure, an escaping Ack, or
// per-packet state crept into the per-ACK path.
func TestEngineHotPathZeroAllocs(t *testing.T) {
	for _, v := range ccVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			sched := sim.NewScheduler(1)
			var uids pkt.UIDSource
			out := func(p *pkt.Packet) { p.Release() }
			e := NewEngine(sched, Config{}, 1, 0, 1, &uids, out, v.mk())
			e.Start()

			ack := uids.NewTCP()
			defer ack.Release()
			ack.Kind = pkt.KindTCPAck
			ack.TCP.Flow = 1
			next := int64(1)
			feed := func() {
				ack.TCP.Ack = next
				ack.TCP.SentAt = sched.Now()
				next++
				e.HandleAck(ack)
			}
			// Saturate the window, the sentAt map and the packet pool
			// before measuring.
			for i := 0; i < 256; i++ {
				feed()
			}
			if allocs := testing.AllocsPerRun(512, feed); allocs > 0 {
				t.Errorf("ACK hot path allocates %.2f objects per ACK, want 0", allocs)
			}
		})
	}
}
