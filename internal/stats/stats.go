// Package stats provides the statistical machinery the paper's evaluation
// methodology relies on: batch-means estimation with Student-t confidence
// intervals, Jain's fairness index, time-weighted averages (for congestion
// window traces), and simple online moment accumulators.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Estimate is a point estimate with a symmetric confidence interval.
type Estimate struct {
	Mean     float64
	HalfCI   float64 // half-width of the confidence interval
	N        int     // number of samples (batches)
	Level    float64 // confidence level, e.g. 0.95
	Variance float64 // sample variance of the batch means
}

// Lo returns the lower confidence bound.
func (e Estimate) Lo() float64 { return e.Mean - e.HalfCI }

// Hi returns the upper confidence bound.
func (e Estimate) Hi() float64 { return e.Mean + e.HalfCI }

// RelativeWidth returns HalfCI/|Mean|, the paper's "width below 5% of the
// measure's value" criterion; it returns +Inf for a zero mean with nonzero
// half-width.
func (e Estimate) RelativeWidth() float64 {
	if e.Mean == 0 {
		if e.HalfCI == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e.HalfCI / math.Abs(e.Mean)
}

func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", e.Mean, e.HalfCI, e.N)
}

// BatchMeans computes the batch-means point estimate and a 95% confidence
// interval from per-batch values, exactly as in the paper: the caller has
// already discarded the warm-up batch. It panics on an empty input; a
// single batch yields a zero-width interval.
func BatchMeans(batches []float64) Estimate {
	n := len(batches)
	if n == 0 {
		panic("stats: BatchMeans with no batches")
	}
	mean := Mean(batches)
	if n == 1 {
		return Estimate{Mean: mean, N: 1, Level: 0.95}
	}
	var ss float64
	for _, v := range batches {
		d := v - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	half := StudentT975(n-1) * math.Sqrt(variance/float64(n))
	return Estimate{Mean: mean, HalfCI: half, N: n, Level: 0.95, Variance: variance}
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over per-flow
// goodputs. It is 1 for perfectly equal allocations, 1/n when a single flow
// captures everything, and is scale-invariant. An all-zero or empty input
// returns 0 by convention.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// studentT975 holds two-sided 95% critical values of Student's t
// distribution indexed by degrees of freedom (index 0 unused). Ten batches
// (df=9) — the paper's configuration — gives 2.262.
var studentT975 = [...]float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// StudentT975 returns the two-sided 95% Student-t critical value for df
// degrees of freedom, falling back to the normal quantile 1.96 for large df.
func StudentT975(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(studentT975) {
		return studentT975[df]
	}
	switch {
	case df < 40:
		return 2.030
	case df < 60:
		return 2.009
	case df < 120:
		return 1.990
	}
	return 1.960
}

// TimeWeighted accumulates the time-weighted average of a piecewise-
// constant signal, e.g. the TCP congestion window. The zero value is ready
// to use; call Set on every change and Finish (or AverageAt) to read the
// mean. Samples before the first Set are ignored.
type TimeWeighted struct {
	started  bool //manetsim:resetsafe Reset is per-batch: the signal keeps accumulating from its current value
	lastT    time.Duration
	lastV    float64 //manetsim:resetsafe current value deliberately carries across batch resets
	integral float64
	span     time.Duration
}

// Set records that the signal takes value v from time t onward.
func (w *TimeWeighted) Set(t time.Duration, v float64) {
	if w.started && t > w.lastT {
		w.integral += w.lastV * float64(t-w.lastT)
		w.span += t - w.lastT
	}
	w.started = true
	w.lastT = t
	w.lastV = v
}

// AverageAt returns the time-weighted mean over [firstSet, t].
func (w *TimeWeighted) AverageAt(t time.Duration) float64 {
	integral, span := w.integral, w.span
	if w.started && t > w.lastT {
		integral += w.lastV * float64(t-w.lastT)
		span += t - w.lastT
	}
	if span == 0 {
		if w.started {
			return w.lastV
		}
		return 0
	}
	return integral / float64(span)
}

// Reset clears accumulated history but keeps the current value, so window
// averages can be computed per measurement batch. The current value
// continues to accumulate from time t.
func (w *TimeWeighted) Reset(t time.Duration) {
	if w.started && t > w.lastT {
		w.lastT = t
	}
	w.integral = 0
	w.span = 0
}

// Counter is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Counter struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (c *Counter) Add(x float64) {
	c.n++
	if c.n == 1 {
		c.min, c.max = x, x
	} else {
		c.min = math.Min(c.min, x)
		c.max = math.Max(c.max, x)
	}
	d := x - c.mean
	c.mean += d / float64(c.n)
	c.m2 += d * (x - c.mean)
}

// N returns the number of observations.
func (c *Counter) N() int { return c.n }

// Mean returns the running mean (0 with no observations).
func (c *Counter) Mean() float64 { return c.mean }

// Variance returns the sample variance (0 with fewer than 2 observations).
func (c *Counter) Variance() float64 {
	if c.n < 2 {
		return 0
	}
	return c.m2 / float64(c.n-1)
}

// Min returns the smallest observation (0 with none).
func (c *Counter) Min() float64 { return c.min }

// Max returns the largest observation (0 with none).
func (c *Counter) Max() float64 { return c.max }
