// Package fault implements the deterministic, schedule-driven fault
// plane: node crashes and restarts, directed link blackouts, and field
// partitions, all installed as ordinary scheduler events so every run
// remains byte-identical per seed. The package owns only the live fault
// *state* (which nodes are down, which links are severed); tearing down
// and rebuilding the protocol stack above the PHY is delegated to hooks
// the owning layer installs on the Plane.
//
// Faults draw no randomness: every transition fires at a configured
// simulated time, so a faulted run and a fault-free run consume the
// exact same RNG stream for everything else.
package fault

import (
	"manetsim/internal/geo"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Plane is the live fault state of one run. The PHY consults it on the
// hot path (Quiet, Severed); injectors mutate it from scheduled events.
// A Plane is reused across arena runs via Reset and holds no references
// to scheduler or protocol state of its own.
type Plane struct {
	nodeDown []bool
	downs    int

	// blocked counts active blackouts per packed directed link, so
	// overlapping blackout intervals compose instead of cancelling.
	blocked map[uint64]int

	// side is the active partition's membership (true = side A); links
	// crossing sides are severed while partitions > 0.
	side       []bool
	partitions int

	// active counts every in-force fault so the hot path can skip all
	// per-frame checks with one comparison while the plane is quiet.
	active int

	// OnNodeDown and OnNodeUp are installed by the owning layer to tear
	// down and rebuild the MAC/routing/transport stack of a node when it
	// crashes or restarts. They run inside the scheduled fault event,
	// after the plane state has flipped. Nil hooks are skipped.
	OnNodeDown func(pkt.NodeID)
	OnNodeUp   func(pkt.NodeID)
}

// Reset rewinds the plane for a run over n nodes, keeping allocations.
// Hooks are cleared; the owner reinstalls them each build.
func (p *Plane) Reset(n int) {
	if cap(p.nodeDown) < n {
		p.nodeDown = make([]bool, n)
	} else {
		p.nodeDown = p.nodeDown[:n]
		for i := range p.nodeDown {
			p.nodeDown[i] = false
		}
	}
	p.downs = 0
	clear(p.blocked)
	p.side = nil
	p.partitions = 0
	p.active = 0
	p.OnNodeDown = nil
	p.OnNodeUp = nil
}

// Quiet reports that no fault is currently in force; while true the PHY
// skips every per-frame fault check.
func (p *Plane) Quiet() bool { return p == nil || p.active == 0 }

// NodeDown reports whether id is currently crashed.
func (p *Plane) NodeDown(id pkt.NodeID) bool {
	return p != nil && p.downs > 0 && p.nodeDown[id]
}

// Severed reports whether a frame from a to b cannot be decoded right
// now: either endpoint is down, the directed link is blacked out, or an
// active partition separates the two nodes.
func (p *Plane) Severed(a, b pkt.NodeID) bool {
	if p == nil || p.active == 0 {
		return false
	}
	if p.downs > 0 && (p.nodeDown[a] || p.nodeDown[b]) {
		return true
	}
	if len(p.blocked) > 0 && p.blocked[linkKey(a, b)] > 0 {
		return true
	}
	if p.partitions > 0 && p.side[a] != p.side[b] {
		return true
	}
	return false
}

// CrashNode marks id down and runs the OnNodeDown hook. Crashing an
// already-down node is a no-op.
func (p *Plane) CrashNode(id pkt.NodeID) {
	if p.nodeDown[id] {
		return
	}
	p.nodeDown[id] = true
	p.downs++
	p.active++
	if p.OnNodeDown != nil {
		p.OnNodeDown(id)
	}
}

// RestoreNode brings a crashed node back and runs the OnNodeUp hook.
// Restoring a node that is not down is a no-op.
func (p *Plane) RestoreNode(id pkt.NodeID) {
	if !p.nodeDown[id] {
		return
	}
	p.nodeDown[id] = false
	p.downs--
	p.active--
	if p.OnNodeUp != nil {
		p.OnNodeUp(id)
	}
}

// BlockLink severs the directed link a->b. Blackouts nest: a link stays
// severed until every BlockLink has been matched by an UnblockLink.
func (p *Plane) BlockLink(a, b pkt.NodeID) {
	if p.blocked == nil {
		p.blocked = make(map[uint64]int)
	}
	p.blocked[linkKey(a, b)]++
	p.active++
}

// UnblockLink removes one blackout from the directed link a->b.
func (p *Plane) UnblockLink(a, b pkt.NodeID) {
	k := linkKey(a, b)
	if n := p.blocked[k]; n > 0 {
		if n == 1 {
			delete(p.blocked, k)
		} else {
			p.blocked[k] = n - 1
		}
		p.active--
	}
}

// StartPartition severs every link between side-A nodes (side[i] true)
// and the rest of the field. The slice is captured, not copied; it must
// stay immutable while the partition is active. Overlapping partitions
// share the most recent membership.
func (p *Plane) StartPartition(side []bool) {
	p.side = side
	p.partitions++
	p.active++
}

// Heal removes one active partition.
func (p *Plane) Heal() {
	if p.partitions > 0 {
		p.partitions--
		p.active--
	}
}

// linkKey packs a directed link into one map key.
func linkKey(a, b pkt.NodeID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Env is the context an injector schedules against: the run's event
// scheduler, its fault plane, and the initial node placement (for
// axis-cut partitions).
type Env struct {
	Sched     *sim.Scheduler
	Plane     *Plane
	Positions []geo.Point
}

// Fault is one injector. Schedule installs the fault's timed events
// during build, after the plane has been reset; implementations must
// draw no randomness and may allocate only here, never at fire time
// (the scheduled closures run allocation-free).
type Fault interface {
	Schedule(env Env)
}

// NodeCrash takes a node down at At; with Downtime > 0 the node restarts
// Downtime later (radio, MAC, routing and transport state rebuilt by the
// plane's hooks), otherwise it stays down for the rest of the run.
type NodeCrash struct {
	Node     pkt.NodeID
	At       sim.Time
	Downtime sim.Time
}

// Schedule implements Fault.
func (f NodeCrash) Schedule(env Env) {
	pl, id := env.Plane, f.Node
	// One-time fault setup at build, not the per-frame hot path; the
	// closures capture two values, so AtFunc would allocate just the same.
	//manetsim:allow hotpathalloc
	env.Sched.At(f.At, func() { pl.CrashNode(id) })
	if f.Downtime > 0 {
		//manetsim:allow hotpathalloc
		env.Sched.At(f.At+f.Downtime, func() { pl.RestoreNode(id) })
	}
}

// LinkBlackout forces the link From->To (both directions when
// Bidirectional) undecodable from At for Duration; Duration 0 blacks it
// out for the rest of the run. Blackouts compose with link-impairment
// models: a blacked-out copy is dropped before any loss draw.
type LinkBlackout struct {
	From, To      pkt.NodeID
	Bidirectional bool
	At            sim.Time
	Duration      sim.Time
}

// Schedule implements Fault.
func (f LinkBlackout) Schedule(env Env) {
	pl, a, b := env.Plane, f.From, f.To
	bidir := f.Bidirectional
	// One-time fault setup; multi-value capture (see NodeCrash.Schedule).
	//manetsim:allow hotpathalloc
	env.Sched.At(f.At, func() {
		pl.BlockLink(a, b)
		if bidir {
			pl.BlockLink(b, a)
		}
	})
	if f.Duration > 0 {
		//manetsim:allow hotpathalloc
		env.Sched.At(f.At+f.Duration, func() {
			pl.UnblockLink(a, b)
			if bidir {
				pl.UnblockLink(b, a)
			}
		})
	}
}

// Partition cuts the field in two at At and heals it Duration later
// (Duration 0 = never). Side A is either the explicit SideA node set or,
// when SideA is empty, every node whose initial position lies strictly
// below Cut on the given axis ("x" or "y"). Links crossing the cut are
// severed in both directions; links within a side are untouched.
type Partition struct {
	At       sim.Time
	Duration sim.Time
	SideA    []pkt.NodeID
	Axis     string
	Cut      float64
}

// Schedule implements Fault.
func (f Partition) Schedule(env Env) {
	side := make([]bool, len(env.Positions))
	if len(f.SideA) > 0 {
		for _, id := range f.SideA {
			side[id] = true
		}
	} else {
		for i, pos := range env.Positions {
			v := pos.X
			if f.Axis == "y" {
				v = pos.Y
			}
			side[i] = v < f.Cut
		}
	}
	pl := env.Plane
	// One-time fault setup; multi-value capture (see NodeCrash.Schedule).
	//manetsim:allow hotpathalloc
	env.Sched.At(f.At, func() { pl.StartPartition(side) })
	if f.Duration > 0 {
		//manetsim:allow hotpathalloc
		env.Sched.At(f.At+f.Duration, func() { pl.Heal() })
	}
}
