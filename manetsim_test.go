package manetsim

import (
	"context"
	"testing"
	"time"
)

func TestPublicAPIRun(t *testing.T) {
	res, err := Run(context.Background(), Chain(3),
		WithBandwidth(Rate2Mbps),
		WithTransport(TransportSpec{Protocol: Vegas}),
		WithSeed(1),
		WithPackets(1100, 100),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 1100 {
		t.Errorf("delivered = %d, want >= 1100", res.Delivered)
	}
	if res.AggGoodput.Mean <= 0 {
		t.Error("zero goodput through the public API")
	}
}

func TestPublicAPICustomScenario(t *testing.T) {
	// A topology the paper never evaluated: a 3-node vee with two flows of
	// different transports converging on one sink, the second starting
	// late.
	scn := NewScenario("vee")
	left := scn.AddNode(0, 0)
	right := scn.AddNode(400, 0)
	sink := scn.AddNode(200, 100)
	scn.Add(Flow{Src: left, Dst: sink, Transport: TransportSpec{Protocol: Vegas}})
	scn.Add(Flow{Src: right, Dst: sink, Transport: TransportSpec{Protocol: NewReno}, Start: 2 * time.Second})
	res, err := Run(context.Background(), scn,
		WithSeed(1),
		WithPackets(1100, 100),
		WithMaxSimTime(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFlowGood) != 2 {
		t.Fatalf("per-flow results = %d, want 2", len(res.PerFlowGood))
	}
	for i, est := range res.PerFlowGood {
		if est.Mean <= 0 {
			t.Errorf("flow %d: zero goodput", i)
		}
	}
}

func TestPublicAPITable2(t *testing.T) {
	cases := []struct {
		rate   Rate
		wantMS int64
	}{
		{Rate2Mbps, 29},
		{Rate5_5Mbps, 12},
		{Rate11Mbps, 8},
	}
	for _, c := range cases {
		got := FourHopPropagationDelay(c.rate).Round(time.Millisecond).Milliseconds()
		if got != c.wantMS {
			t.Errorf("FourHopPropagationDelay(%v) = %d ms, want %d", c.rate, got, c.wantMS)
		}
	}
}

func TestPublicAPIExchangeTime(t *testing.T) {
	e2 := ExchangeTime(Rate2Mbps, 1500)
	e11 := ExchangeTime(Rate11Mbps, 1500)
	if e2 <= e11 {
		t.Errorf("exchange time at 2M (%v) must exceed 11M (%v)", e2, e11)
	}
	if e2 != FourHopPropagationDelay(Rate2Mbps)/4 {
		t.Errorf("ExchangeTime inconsistent with FourHopPropagationDelay")
	}
}

func TestPublicAPITopologies(t *testing.T) {
	for name, scn := range map[string]*Scenario{
		"chain":  Chain(2),
		"grid":   Grid(),
		"random": Random(),
	} {
		res, err := Run(context.Background(), scn,
			WithTransport(TransportSpec{Protocol: NewReno}),
			WithSeed(3),
			WithPackets(550, 50),
			WithMaxSimTime(30*time.Minute),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
	}
}

func TestPublicAPIObserver(t *testing.T) {
	var batches, windows int
	var lastDelivered int64
	res, err := Run(context.Background(), Chain(3),
		WithTransport(TransportSpec{Protocol: Vegas}),
		WithSeed(1),
		WithPackets(1100, 100),
		WithObserver(ObserverFuncs{
			Batch:        func(b Batch) { batches++ },
			WindowSample: func(flow int, w float64) { windows++ },
			Progress:     func(delivered, total int64, _ time.Duration) { lastDelivered = delivered },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if batches < 11 {
		t.Errorf("observed %d batch closes, want >= 11", batches)
	}
	if windows != batches {
		t.Errorf("window samples = %d, want one per batch (%d) for the single flow", windows, batches)
	}
	if lastDelivered < 1100 {
		t.Errorf("last progress reported %d delivered, want >= 1100", lastDelivered)
	}
	if res.Delivered < 1100 {
		t.Errorf("delivered = %d", res.Delivered)
	}
}

func TestPublicAPIObserverDoesNotChangeResults(t *testing.T) {
	run := func(obs Observer) *Result {
		t.Helper()
		opts := []Option{
			WithTransport(TransportSpec{Protocol: NewReno}),
			WithSeed(5),
			WithPackets(1100, 100),
		}
		if obs != nil {
			opts = append(opts, WithObserver(obs))
		}
		res, err := Run(context.Background(), Chain(4), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(ObserverFuncs{
		Retransmit:   func(int) {},
		RouteFailure: func(NodeID, bool) {},
	})
	if plain.AggGoodput.Mean != observed.AggGoodput.Mean || plain.SimTime != observed.SimTime {
		t.Errorf("observer changed the simulation: %v/%v vs %v/%v",
			plain.AggGoodput.Mean, plain.SimTime, observed.AggGoodput.Mean, observed.SimTime)
	}
}

func TestPublicAPITransportName(t *testing.T) {
	cases := []struct {
		spec TransportSpec
		want string
	}{
		{TransportSpec{Protocol: Vegas}, "Vegas"},
		{TransportSpec{Protocol: Vegas, Alpha: 3}, "Vegas(α=3)"},
		{TransportSpec{Protocol: NewReno, AckThinning: true}, "NewReno+Thin"},
		{TransportSpec{Protocol: NewReno, MaxWindow: 3}, "NewReno(MaxWin=3)"},
		{TransportSpec{Protocol: PacedUDP}, "PacedUDP"},
	}
	for _, c := range cases {
		if got := c.spec.Label(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
