// Ackthinning demonstrates the Altman-Jiménez dynamic delayed-ACK scheme
// (paper Section 3.2 and Figures 5/11) as a Campaign parameter sweep: at
// 2 Mbit/s thinning barely helps TCP Vegas (its window already sits near
// the optimum), but as bandwidth grows the thinner ACK stream frees enough
// air time for both variants to gain — with Vegas+thinning ending up the
// paper's recommended protocol.
//
//	go run ./examples/ackthinning
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	transports := []manetsim.TransportSpec{
		{Protocol: manetsim.Vegas},
		{Protocol: manetsim.Vegas, AckThinning: true},
		{Protocol: manetsim.NewReno},
		{Protocol: manetsim.NewReno, AckThinning: true},
	}
	rates := []manetsim.Rate{manetsim.Rate2Mbps, manetsim.Rate5_5Mbps, manetsim.Rate11Mbps}

	// One declarative grid: 1 scenario x 4 transports x 3 rates. The
	// campaign runs it in parallel and dedups any repeated configs.
	campaign := manetsim.NewCampaign(manetsim.Scale{
		Name: "demo", TotalPackets: demoPackets(11000), Seed: 1,
	})
	cells, err := campaign.Sweep(context.Background(), manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(7)},
		Transports: transports,
		Rates:      rates,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cells come back transport-major, rate-minor.
	goodput := func(ti, ri int) float64 { return cells[ti*len(rates)+ri].Goodput.Mean / 1e3 }

	fmt.Println("7-hop chain: goodput [kbit/s] with and without ACK thinning")
	fmt.Printf("%-12s", "")
	for _, t := range transports {
		fmt.Printf("%14s", t.Label())
	}
	fmt.Println()
	for ri, r := range rates {
		fmt.Printf("%-12s", fmt.Sprintf("%g Mbit/s", float64(r)/1e6))
		for ti := range transports {
			fmt.Printf("%14.1f", goodput(ti, ri))
		}
		fmt.Println()
	}
	fmt.Println("\n(expect the thinning gain to grow with bandwidth, and to be")
	fmt.Println(" smallest for Vegas at 2 Mbit/s — the paper's Figures 5 and 11)")
}
