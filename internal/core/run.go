package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"manetsim/internal/aodv"
	"manetsim/internal/fault"
	"manetsim/internal/geo"
	"manetsim/internal/mac"
	"manetsim/internal/node"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
	"manetsim/internal/stats"
	"manetsim/internal/tcp"
	"manetsim/internal/udp"
)

// scenarioState holds the live state of one run. A World keeps one across
// runs as an arena: build(reuse=true) rewinds every layer in place instead
// of reallocating it.
type scenarioState struct {
	cfg   Config
	obs   Observer
	sched *sim.Scheduler
	uids  pkt.UIDSource

	positions []geo.Point
	flows     []Flow
	channel   *phy.Channel
	nodes     []*node.Node
	routers   []*aodv.Router // per node, nil entries under static routing
	senders   []tcp.Sender   // per flow (nil for UDP)
	udpSrcs   []*udp.Sender  // per flow (nil for TCP)
	sinks     []*tcp.Sink    // per flow (nil for UDP)
	udpSinks  []*udp.Sink

	// Arena pools, preserved across runs. The active slices above are
	// rebuilt (and nil-zeroed) every run; these keep the allocated objects
	// so a reused World resets them instead of reallocating. Entries index
	// by node (routers, statics) or flow slot (transports); a slot reused
	// for a different flow identity is rebound by the layer's Reset.
	arenaRouters []*aodv.Router
	statics      []*aodv.StaticRouter
	arenaEng     []*tcp.Engine
	arenaSink    []*tcp.Sink
	arenaUSrc    []*udp.Sender
	arenaUSink   []*udp.Sink

	// Fault plane. plane is non-nil exactly when the run schedules
	// faults; arenaPlane keeps the allocation across arena runs.
	// injectors holds the built fault schedule, flowState the per-flow
	// application state the crash/restore hooks drive, and outages/marks
	// the recovery bookkeeping behind Result.Faults.
	plane      *fault.Plane
	arenaPlane *fault.Plane
	injectors  []fault.Fault
	flowState  []uint8
	outages    []OutageReport
	marks      []recoveryMark
	nextMark   int

	deliveredDuring int64 // deliveries while >=1 fault active

	delivered      int64
	nextBatchAt    int64
	perFlowPackets []int64
	delay          *stats.DurationHistogram

	batches []Batch
	cur     Batch // batch being accumulated

	// Cumulative counters snapshotted at the previous batch boundary.
	lastRtx          []uint64
	lastDrops        uint64
	lastSubmit       uint64
	lastFailures     uint64
	lastTrueFailures uint64
}

// reset rewinds the run-global state for the next arena run. The batches
// slice is dropped, never truncated: the previous run's Result aliases its
// backing array.
func (s *scenarioState) reset(seed int64) {
	s.sched.Reset(seed)
	s.uids.Reset()
	s.delivered = 0
	s.nextBatchAt = 0
	s.batches = nil
	s.cur = Batch{}
	s.lastDrops, s.lastSubmit = 0, 0
	s.lastFailures, s.lastTrueFailures = 0, 0
}

// resetSlice returns a zeroed slice of length n, reusing the backing array
// when its capacity suffices.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// growSlice returns a slice of length n preserving existing entries —
// including ones beyond the previous length but within capacity, so arena
// slots survive a run with fewer flows or nodes.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		ns := make([]T, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// Per-flow application states driven by the fault hooks: a flow whose
// start time arrived while its source was down is due (it launches at
// restore), a running flow whose source crashes is halted (it resumes at
// restore, congestion state cold).
const (
	flowNotStarted uint8 = iota
	flowRunning
	flowHalted
	flowDue
)

// recoveryMark is one pending recovery measurement: the first delivery at
// or after t resolves it (see OutageReport).
type recoveryMark struct {
	t         sim.Time
	outage    int
	afterHeal bool
}

// haltResumer is the crash/restore hook of window-based senders
// (tcp.Engine). Raw transports (paced UDP) are suspended through their
// own Stop/Start instead.
type haltResumer interface {
	Halt()
	Resume()
}

// geoEqual reports element-wise equality of two placements.
func geoEqual(a, b []geo.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes one configured simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// ctxCheckInterval is how many dispatched events pass between context
// polls: small enough that cancellation lands within a fraction of a
// millisecond of wall time, large enough that the poll never shows up in a
// profile.
const ctxCheckInterval = 4096

// RunContext executes one configured simulation under ctx and returns its
// measurements. Cancellation is polled from inside the event loop every few
// thousand events; a cancelled run returns ctx.Err() promptly and discards
// its partial state. A background (non-cancellable) context takes the exact
// code path of Run, so reproducibility and the allocation-free hot path are
// unaffected.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &scenarioState{cfg: cfg, obs: cfg.Observer, sched: sim.NewScheduler(cfg.Seed)}
	if err := s.build(false); err != nil {
		return nil, err
	}
	return s.finishRun(ctx)
}

// finishRun executes the built simulation and assembles its Result. Shared
// by the one-shot RunContext path and World's arena path.
func (s *scenarioState) finishRun(ctx context.Context) (*Result, error) {
	cfg := s.cfg
	s.start()
	if done := ctx.Done(); done != nil {
		if err := s.sched.RunUntilWithCheck(cfg.MaxSimTime, ctxCheckInterval, ctx.Err); err != nil {
			return nil, err
		}
	} else {
		s.sched.RunUntil(cfg.MaxSimTime)
	}

	res := &Result{
		Config:    cfg,
		Flows:     s.flows,
		Delivered: s.delivered,
		SimTime:   s.sched.Now(),
		Truncated: s.delivered < cfg.TotalPackets,
	}
	warm := cfg.WarmupBatches
	if warm > len(s.batches) {
		warm = len(s.batches)
	}
	res.Batches = s.batches[warm:]
	res.aggregate()
	s.fillEnergy(res)
	for _, n := range s.nodes {
		res.ImpairedFrames += n.Radio.FramesImpaired
	}
	if s.plane != nil {
		res.Faults = s.faultReport(res)
	}
	if s.delay.N() > 0 {
		res.Delay = DelaySummary{
			Mean: s.delay.Mean(),
			P50:  s.delay.Quantile(0.5),
			P95:  s.delay.Quantile(0.95),
			Max:  s.delay.Max(),
			N:    s.delay.N(),
		}
	}
	return res, nil
}

// build materializes the scenario into stacks and flows. With reuse set
// (an arena run after reset), every layer whose shape still fits is
// rewound in place instead of reallocated; anything whose shape changed —
// node count, placement-derived static routes — is rebuilt fresh. Both
// paths consume the scheduler's random stream identically (construction
// and reset draw nothing), which is what keeps arena runs byte-identical
// to fresh ones.
func (s *scenarioState) build(reuse bool) error {
	scn := s.cfg.Scenario
	pts, flows, err := scn.materialize(s.sched.Rand())
	if err != nil {
		return err
	}
	samePlacement := reuse && geoEqual(s.positions, pts)
	s.positions = pts
	s.flows = flows
	s.perFlowPackets = resetSlice(s.perFlowPackets, len(flows))
	s.lastRtx = resetSlice(s.lastRtx, len(flows))
	s.flowState = resetSlice(s.flowState, len(flows))

	// Mobility models are cheap and draw nothing at construction; always
	// rebuilding keeps the reuse path trivially draw-order identical.
	model, err := buildMobility(scn.Mobility, pts, flows, s.sched.Rand())
	if err != nil {
		return err
	}
	if scn.Routing == RoutingStatic && !model.Static() {
		return errStaticMobility
	}
	macCfg := mac.Config{DataRate: s.cfg.Bandwidth, RTSThreshold: s.cfg.RTSThreshold}
	reuse = reuse && s.channel != nil && s.channel.NumRadios() == len(pts) && len(s.nodes) == len(pts)
	if reuse {
		s.channel.Reset(model, scn.Mobility.UpdateInterval)
		for _, n := range s.nodes {
			n.Reset(macCfg)
		}
	} else {
		s.channel = phy.NewMobileChannel(s.sched, model, scn.Mobility.UpdateInterval)
		s.nodes = make([]*node.Node, len(pts))
		for i := range pts {
			s.nodes[i] = node.New(s.sched, s.channel.Radio(pkt.NodeID(i)), macCfg)
		}
		// Routing entities hold MAC bindings from the torn-down stacks.
		s.arenaRouters = nil
		s.statics = nil
	}
	ch := s.channel
	ch.NoCapture = s.cfg.NoCapture
	// The impairment model rides on the channel: per-link streams derive
	// from the run seed, so fresh and arena runs draw identically.
	impair, err := buildLinkModel(s.cfg.LinkModel)
	if err != nil {
		return err
	}
	ch.SetLinkModel(impair, s.cfg.LinkModel.Jitter, s.cfg.LinkModel.CaptureRatio, uint64(s.cfg.Seed))
	// The fault plane rides on the channel the same way: installed fresh
	// every build (channel Reset cleared it), non-nil exactly when the run
	// schedules faults, so fault-free runs keep the one-comparison fast
	// path. Injectors are built (and their factories' errors surfaced)
	// here; scheduling happens in start.
	s.injectors = s.injectors[:0]
	if len(s.cfg.Faults) > 0 {
		for _, spec := range s.cfg.Faults {
			inj, err := buildFault(spec)
			if err != nil {
				return err
			}
			s.injectors = append(s.injectors, inj)
		}
		if s.arenaPlane == nil {
			s.arenaPlane = new(fault.Plane)
		}
		s.plane = s.arenaPlane
		s.plane.Reset(len(pts))
		s.plane.OnNodeDown = s.crashNode
		s.plane.OnNodeUp = s.restoreNode
		ch.SetFaultPlane(s.plane)
	} else {
		s.plane = nil
	}
	for _, n := range s.nodes {
		n.OnFlowDelivery = s.onDelivery
	}
	s.routers = resetSlice(s.routers, len(pts))
	s.arenaRouters = growSlice(s.arenaRouters, len(pts))
	s.statics = growSlice(s.statics, len(pts))
	for i := range pts {
		id := pkt.NodeID(i)
		n := s.nodes[i]
		switch scn.Routing {
		case RoutingAODV:
			r := s.arenaRouters[i]
			if r != nil {
				r.Reset(aodv.Config{})
			} else {
				r = aodv.New(s.sched, id, n.MAC, &s.uids, aodv.Config{}, n.Deliver)
				s.arenaRouters[i] = r
			}
			// Omniscient link oracle: lets the measurement layer tell
			// genuine route breaks (hop moved away) from the paper's false
			// route failures (contention on a healthy link).
			r.LinkAlive = func(nh pkt.NodeID) bool { return ch.Reachable(id, nh) }
			if s.obs != nil {
				r.OnRouteFailure = func(falseFailure bool) { s.obs.OnRouteFailure(id, falseFailure) }
			}
			s.routers[i] = r
			n.SetRouter(r)
		case RoutingStatic:
			// Static routes are a pure function of the placement: reusable
			// exactly when the placement repeated (the common case in a
			// seed sweep over an explicit scenario).
			sr := s.statics[i]
			if sr != nil && samePlacement {
				sr.Reset()
			} else {
				sr = aodv.NewStatic(id, n.MAC, pts, phy.TxRange, n.Deliver)
				s.statics[i] = sr
			}
			n.SetRouter(sr)
		default:
			return errUnknownRouting(scn.Routing)
		}
	}

	s.senders = resetSlice(s.senders, len(flows))
	s.udpSrcs = resetSlice(s.udpSrcs, len(flows))
	s.sinks = resetSlice(s.sinks, len(flows))
	s.udpSinks = resetSlice(s.udpSinks, len(flows))
	s.arenaEng = growSlice(s.arenaEng, len(flows))
	s.arenaSink = growSlice(s.arenaSink, len(flows))
	s.arenaUSrc = growSlice(s.arenaUSrc, len(flows))
	s.arenaUSink = growSlice(s.arenaUSink, len(flows))
	if s.delay == nil {
		s.delay = stats.NewDurationHistogram(4096, s.sched.Rand().Int63n)
	} else {
		s.delay.Reset()
	}
	for fi, f := range flows {
		tspec := s.cfg.Transport
		if !f.Transport.IsZero() {
			tspec = f.Transport
		}
		if err := s.buildFlow(fi, f, tspec); err != nil {
			return err
		}
	}
	return nil
}

// buildFlow attaches one flow's transport endpoints, resolving the spec
// through the transport registry: window-based variants share the engine
// and sink wiring, raw transports (paced UDP) attach their own endpoints.
func (s *scenarioState) buildFlow(fi int, f Flow, tspec TransportSpec) error {
	if err := tspec.validate(flowContext(fi), false); err != nil {
		return err
	}
	tr, err := resolveTransport(tspec)
	if err != nil {
		return err
	}
	if tr.build != nil {
		return tr.build(s, fi, f, tspec)
	}
	src, dst := s.nodes[f.Src], s.nodes[f.Dst]
	tcfg := ccConfig(tspec)
	if s.obs != nil {
		tcfg.OnRetransmit = func() { s.obs.OnRetransmit(fi) }
	}
	cc, err := tr.newCC(tspec)
	if err != nil {
		return fmt.Errorf("core: %s (%s): %w", tr.name, flowContext(fi), err)
	}
	snd := s.arenaEng[fi]
	if snd != nil {
		snd.Reset(tcfg, fi, f.Src, f.Dst, src.Output(), cc)
	} else {
		snd = tcp.NewEngine(s.sched, tcfg, fi, f.Src, f.Dst, &s.uids, src.Output(), cc)
		s.arenaEng[fi] = snd
	}
	policy := tcp.AckEveryPacket
	if tspec.AckThinning {
		policy = tcp.AckThinning
	} else if tspec.DelayedAck {
		policy = tcp.AckDelayed
	}
	sink := s.arenaSink[fi]
	if sink != nil {
		sink.Reset(fi, f.Dst, f.Src, policy, dst.Output())
	} else {
		sink = tcp.NewSink(s.sched, fi, f.Dst, f.Src, policy, &s.uids, dst.Output())
		s.arenaSink[fi] = sink
	}
	sink.Delay = s.delay
	src.AttachTCPSender(fi, snd)
	dst.AttachTCPSink(fi, sink)
	s.senders[fi] = snd
	s.sinks[fi] = sink
	return nil
}

// start launches every flow at its start offset plus a small decorrelating
// jitter, schedules the fault plan, and opens the first batch. The fault
// events are scheduled after the flow-start jitter draws and themselves
// draw nothing, so a faulted run's random stream matches its fault-free
// twin everywhere outside the fault reactions.
func (s *scenarioState) start() {
	s.cur = s.newBatch(0)
	s.nextBatchAt = s.cfg.BatchPackets
	for fi := range s.flows {
		fi := fi
		jitter := sim.Time(s.sched.Rand().Int63n(int64(10 * time.Millisecond)))
		// Scheduled once per flow at run start, not per packet; the closure
		// captures the flow index alongside the state, so the closure-free
		// form would allocate an argument struct instead.
		//manetsim:allow hotpathalloc
		s.sched.At(s.flows[fi].Start+jitter, func() {
			if s.plane != nil && s.plane.NodeDown(s.flows[fi].Src) {
				// Start time arrived mid-crash: the application launches
				// when its host restarts (see restoreNode).
				s.flowState[fi] = flowDue
				return
			}
			s.flowState[fi] = flowRunning
			if snd := s.senders[fi]; snd != nil {
				snd.Start()
			}
			if u := s.udpSrcs[fi]; u != nil {
				u.Start()
			}
		})
	}
	if s.plane != nil {
		s.scheduleFaults()
	}
}

// scheduleFaults places the run's fault schedule on the event queue and
// sets up the recovery bookkeeping behind Result.Faults: one outage
// report per spec plus time-ordered recovery marks resolved by the first
// delivery at or after each injection/heal instant.
func (s *scenarioState) scheduleFaults() {
	env := fault.Env{Sched: s.sched, Plane: s.plane, Positions: s.positions}
	for _, inj := range s.injectors {
		inj.Schedule(env)
	}
	s.outages = s.outages[:0]
	s.marks = s.marks[:0]
	s.nextMark = 0
	s.deliveredDuring = 0
	for i, spec := range s.cfg.Faults {
		o := OutageReport{Fault: spec.Label(), Start: spec.At}
		if spec.Duration > 0 {
			o.End = spec.At + spec.Duration
		}
		s.outages = append(s.outages, o)
		s.marks = append(s.marks, recoveryMark{t: spec.At, outage: i})
		if o.End > 0 {
			s.marks = append(s.marks, recoveryMark{t: o.End, outage: i, afterHeal: true})
		}
	}
	sort.Slice(s.marks, func(a, b int) bool { return s.marks[a].t < s.marks[b].t })
}

// crashNode is the fault plane's node-down hook: the whole local stack
// goes dark. The MAC and router deactivate preserving their cumulative
// counters (batch deltas stay consistent across the outage), running
// transport endpoints halt, and sinks stop generating ACKs. In-flight
// frames finish on the air — the radio layer suppresses their decode and
// completion callbacks.
func (s *scenarioState) crashNode(id pkt.NodeID) {
	s.nodes[id].MAC.Deactivate()
	if r := s.routers[id]; r != nil {
		r.Deactivate()
	}
	for fi := range s.flows {
		f := &s.flows[fi]
		if f.Src == id && s.flowState[fi] == flowRunning {
			if h, ok := s.senders[fi].(haltResumer); ok {
				h.Halt()
			}
			if u := s.udpSrcs[fi]; u != nil {
				u.Stop()
			}
			s.flowState[fi] = flowHalted
		}
		if f.Dst == id {
			if snk := s.sinks[fi]; snk != nil {
				snk.Halt()
			}
		}
	}
}

// restoreNode is the fault plane's node-up hook: the stack reboots cold.
// The router restarts with an empty table (its sequence number survives,
// keeping AODV freshness comparisons sound), halted flows resume from
// their first unacknowledged packet with freshly initialized congestion
// state, and flows whose start time passed during the outage launch now.
func (s *scenarioState) restoreNode(id pkt.NodeID) {
	s.nodes[id].MAC.Activate()
	if r := s.routers[id]; r != nil {
		r.Activate()
	}
	for fi := range s.flows {
		f := &s.flows[fi]
		if f.Src != id {
			continue
		}
		switch s.flowState[fi] {
		case flowHalted:
			if h, ok := s.senders[fi].(haltResumer); ok {
				h.Resume()
			}
			if u := s.udpSrcs[fi]; u != nil {
				u.Start()
			}
			s.flowState[fi] = flowRunning
		case flowDue:
			if snd := s.senders[fi]; snd != nil {
				snd.Start()
			}
			if u := s.udpSrcs[fi]; u != nil {
				u.Start()
			}
			s.flowState[fi] = flowRunning
		}
	}
}

func (s *scenarioState) newBatch(start time.Duration) Batch {
	return Batch{
		Start:          start,
		PerFlowPackets: make([]int64, len(s.flows)),
		PerFlowRtx:     make([]uint64, len(s.flows)),
		PerFlowWindow:  make([]float64, len(s.flows)),
	}
}

// onDelivery advances goodput accounting and closes batches at the paper's
// packet-count boundaries.
func (s *scenarioState) onDelivery(flow int, n int64) {
	if s.plane != nil {
		s.noteFaultDelivery(n)
	}
	s.delivered += n
	s.perFlowPackets[flow] += n
	s.cur.PerFlowPackets[flow] += n

	if s.delivered >= s.nextBatchAt || s.delivered >= s.cfg.TotalPackets {
		s.closeBatch()
		s.nextBatchAt += s.cfg.BatchPackets
		if s.delivered >= s.cfg.TotalPackets {
			s.sched.Stop()
		}
	}
}

// noteFaultDelivery advances the resilience accounting on each goodput
// delivery of a faulted run: the during-outage delivery split (keyed by
// the plane's live active count) and the pending recovery marks (sorted
// by time, so one comparison suffices when none is due).
func (s *scenarioState) noteFaultDelivery(n int64) {
	if !s.plane.Quiet() {
		s.deliveredDuring += n
	}
	if s.nextMark >= len(s.marks) {
		return
	}
	now := s.sched.Now()
	for s.nextMark < len(s.marks) && s.marks[s.nextMark].t <= now {
		m := s.marks[s.nextMark]
		o := &s.outages[m.outage]
		if m.afterHeal {
			o.RecoveredAfterHeal = true
			o.TimeToRecoverAfterHeal = now - o.End
		} else {
			o.Recovered = true
			o.TimeToRecover = now - o.Start
		}
		s.nextMark++
	}
}

// faultReport assembles Result.Faults at end of run: the per-outage
// recovery reports, the merged time-in-outage, and the goodput split
// between outage and healthy time.
func (s *scenarioState) faultReport(res *Result) *FaultReport {
	rep := &FaultReport{
		Injected: len(s.cfg.Faults),
		Outages:  append([]OutageReport(nil), s.outages...),
	}
	// Merge the outage windows (permanent faults extend to end of run,
	// everything clamps to the simulated span) into total outage time.
	type span struct{ a, b time.Duration }
	spans := make([]span, 0, len(s.outages))
	for _, o := range s.outages {
		a, b := o.Start, o.End
		if b == 0 {
			b = res.SimTime
		}
		if a >= res.SimTime {
			continue
		}
		if b > res.SimTime {
			b = res.SimTime
		}
		if b > a {
			spans = append(spans, span{a, b})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].a < spans[j].a })
	var inOutage, end time.Duration
	for _, sp := range spans {
		if sp.a > end {
			inOutage += sp.b - sp.a
			end = sp.b
		} else if sp.b > end {
			inOutage += sp.b - end
			end = sp.b
		}
	}
	rep.TimeInOutage = inOutage
	rep.DeliveredDuring = s.deliveredDuring
	rep.DeliveredOutside = res.Delivered - s.deliveredDuring
	if secs := inOutage.Seconds(); secs > 0 {
		rep.GoodputDuringBps = float64(rep.DeliveredDuring) * pkt.TCPPayloadSize * 8 / secs
	}
	if secs := (res.SimTime - inOutage).Seconds(); secs > 0 {
		rep.GoodputOutsideBps = float64(rep.DeliveredOutside) * pkt.TCPPayloadSize * 8 / secs
	}
	for _, n := range s.nodes {
		rep.FramesCut += n.Radio.FramesFaulted
	}
	for _, r := range s.routers {
		if r != nil {
			rep.RouteFailures += r.Counters.FalseRouteFailures + r.Counters.TrueRouteFailures
		}
	}
	return rep
}

// closeBatch snapshots cumulative counters into the finished batch and
// opens the next one.
func (s *scenarioState) closeBatch() {
	now := s.sched.Now()
	b := s.cur
	b.End = now

	for fi := range s.flows {
		if snd := s.senders[fi]; snd != nil {
			cum := snd.Stats().Retransmits
			b.PerFlowRtx[fi] = cum - s.lastRtx[fi]
			s.lastRtx[fi] = cum
			b.PerFlowWindow[fi] = snd.WindowTrace().AverageAt(now)
			snd.WindowTrace().Reset(now)
		}
	}
	var failures, attempts uint64
	for _, n := range s.nodes {
		c := n.MAC.Counters
		failures += c.Retries + c.RetryDrops
		attempts += c.RTSSent + c.DataSent
	}
	b.MACDrops = failures - s.lastDrops
	b.MACSubmitted = attempts - s.lastSubmit
	s.lastDrops, s.lastSubmit = failures, attempts

	var frf, trf uint64
	for _, r := range s.routers {
		if r != nil {
			frf += r.Counters.FalseRouteFailures
			trf += r.Counters.TrueRouteFailures
		}
	}
	b.FalseRouteFailures = frf - s.lastFailures
	b.TrueRouteFailures = trf - s.lastTrueFailures
	s.lastFailures, s.lastTrueFailures = frf, trf

	s.batches = append(s.batches, b)
	s.cur = s.newBatch(now)

	if s.obs != nil {
		for fi := range s.flows {
			s.obs.OnWindowSample(fi, b.PerFlowWindow[fi])
		}
		s.obs.OnBatch(b)
		s.obs.OnProgress(s.delivered, s.cfg.TotalPackets, now)
	}
}

// fillEnergy computes the end-of-run energy report.
func (s *scenarioState) fillEnergy(res *Result) {
	var total float64
	for _, n := range s.nodes {
		total += n.EnergyJoules(node.DefaultPower, res.SimTime)
	}
	mb := float64(res.Delivered) * pkt.TCPPayloadSize / 1e6
	rep := EnergyReport{TotalJoules: total, DeliveredPackets: res.Delivered}
	if mb > 0 {
		rep.JoulesPerMB = total / mb
	}
	res.Energy = rep
}
