package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickEventOrdering property-checks the core heap invariant: for any
// workload of scheduled, nested, and cancelled events, callbacks fire in
// nondecreasing time order and cancelled events never fire.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64, delaysRaw []uint16, cancelMask []bool) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := NewScheduler(seed)
		var last Time = -1
		ok := true
		var events []EventRef
		for i, d := range delaysRaw {
			at := Time(d) * time.Microsecond
			ev := s.At(at, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
			if i < len(cancelMask) && cancelMask[i] {
				s.Cancel(ev)
				events = append(events, ev)
			}
		}
		s.Run()
		for _, ev := range events {
			if !ev.Cancelled() {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickNestedScheduling property-checks that events scheduled from
// inside callbacks preserve ordering and all fire exactly once.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := NewScheduler(seed)
		rng := rand.New(rand.NewSource(seed))
		want := int(n%64) + 1
		fired := 0
		var last Time = -1
		var spawn func(depth int)
		spawn = func(depth int) {
			fired++
			if s.Now() < last {
				fired = -1 << 20 // force failure
			}
			last = s.Now()
			if fired < want {
				s.After(Time(rng.Intn(500)+1)*time.Microsecond, func() { spawn(depth + 1) })
			}
		}
		s.At(0, func() { spawn(0) })
		s.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimerSingleFiring property-checks that however many times a
// timer is Reset/Stop-ed, it fires at most once per final Reset and always
// at the final deadline.
func TestQuickTimerSingleFiring(t *testing.T) {
	f := func(resets []uint16, stopAfter bool) bool {
		s := NewScheduler(1)
		fired := 0
		var at Time
		tm := NewTimer(s, func() {
			fired++
			at = s.Now()
		})
		var final Time
		for _, r := range resets {
			final = Time(r+1) * time.Microsecond
			tm.Reset(final)
		}
		if stopAfter {
			tm.Stop()
		}
		s.Run()
		if len(resets) == 0 || stopAfter {
			return fired == 0
		}
		return fired == 1 && at == final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
