// Command paperexp regenerates the tables and figures of the paper's
// evaluation section (DSN 2005).
//
// Examples:
//
//	paperexp -list
//	paperexp -id fig6
//	paperexp -id table3 -scale paper
//	paperexp -all -scale quick -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"manetsim/internal/exp"
)

func main() {
	var (
		id     = flag.String("id", "", "experiment id (e.g. fig6, table3); see -list")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment ids")
		scale  = flag.String("scale", "quick", "measurement scale: quick (11k packets) or paper (110k)")
		seed   = flag.Int64("seed", 1, "base random seed")
		csvDir = flag.String("csv", "", "also write <id>.csv files into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	var sc exp.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		sc = exp.QuickScale
	case "paper":
		sc = exp.PaperScale
	case "bench":
		sc = exp.BenchScale
	default:
		fatalf("unknown scale %q (quick, paper, bench)", *scale)
	}
	sc.Seed = *seed

	var ids []string
	switch {
	case *all:
		ids = exp.IDs()
	case *id != "":
		ids = []string{*id}
	default:
		fatalf("need -id or -all (use -list for available ids)")
	}

	h := exp.NewHarness(sc)
	for _, eid := range ids {
		runner, ok := exp.Lookup(eid)
		if !ok {
			fatalf("unknown experiment %q (use -list)", eid)
		}
		start := time.Now()
		fig, err := runner(h)
		if err != nil {
			fatalf("%s: %v", eid, err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			fatalf("%s: render: %v", eid, err)
		}
		fmt.Printf("[%s done in %v at %s scale]\n\n", eid, time.Since(start).Round(time.Millisecond), sc.Name)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("%v", err)
			}
			path := filepath.Join(*csvDir, eid+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("%v", err)
			}
			if err := fig.CSV(f); err != nil {
				fatalf("%s: csv: %v", eid, err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperexp: "+format+"\n", args...)
	os.Exit(2)
}
