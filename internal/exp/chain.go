package exp

import (
	"fmt"
	"time"

	"manetsim/internal/core"
	"manetsim/internal/mac"
	"manetsim/internal/phy"
)

// chainHops is the paper's x-axis for the chain experiments.
var chainHops = []int{2, 4, 8, 16, 32, 64}

// rates is the paper's bandwidth axis.
var rates = []phy.Rate{phy.Rate2Mbps, phy.Rate5_5Mbps, phy.Rate11Mbps}

func rateLabel(r phy.Rate) string { return fmt.Sprintf("%g", float64(r)/1e6) }

func chainCfg(hops int, rate phy.Rate, t core.TransportSpec) core.Config {
	return core.Config{Scenario: core.Chain(hops), Bandwidth: rate, Transport: t}
}

// kbit converts bit/s to kbit/s.
func kbit(bps float64) float64 { return bps / 1e3 }

// Table2 reproduces the paper's Table 2 analytically: the 4-hop
// propagation delay per bandwidth.
func Table2(_ *Harness) (*Figure, error) {
	f := &Figure{
		ID:     "table2",
		Title:  "4-hop propagation delay for different bandwidths",
		XLabel: "bandwidth [Mbit/s]",
		YLabel: "delay [ms]",
	}
	s := Series{Name: "4-hop delay"}
	for _, r := range rates {
		d := mac.FourHopPropagationDelay(r)
		s.Points = append(s.Points, Point{X: rateLabel(r), Y: float64(d.Round(time.Millisecond).Milliseconds())})
	}
	f.Series = []Series{s}
	return f, nil
}

// vegasAlphaSweep runs Vegas with α ∈ {2,3,4} over the chain lengths.
func vegasAlphaSweep(h *Harness, metric func(*core.Result) float64, id, title, ylabel string) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "hops", YLabel: ylabel}
	for _, alpha := range []int{2, 3, 4} {
		var cfgs []core.Config
		for _, hops := range chainHops {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, core.TransportSpec{
				Protocol: core.ProtoVegas, Alpha: alpha,
			}))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: fmt.Sprintf("Vegas α=%d", alpha)}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(chainHops[i]), Y: metric(res)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig2: h-hop chain, 2 Mbit/s — Vegas goodput vs hops for α = 2, 3, 4.
func Fig2(h *Harness) (*Figure, error) {
	return vegasAlphaSweep(h, func(r *core.Result) float64 { return kbit(r.AggGoodput.Mean) },
		"fig2", "h-hop chain, 2 Mbit/s: Vegas goodput vs hops", "goodput [kbit/s]")
}

// Fig3: h-hop chain, 2 Mbit/s — Vegas average window vs hops.
func Fig3(h *Harness) (*Figure, error) {
	return vegasAlphaSweep(h, func(r *core.Result) float64 { return r.AvgWindow.Mean },
		"fig3", "h-hop chain, 2 Mbit/s: Vegas average window size vs hops", "window [packets]")
}

// Fig4: 7-hop chain — Vegas goodput per bandwidth for α = 2, 3, 4.
func Fig4(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "fig4", Title: "7-hop chain: Vegas goodput for different bandwidths",
		XLabel: "bandwidth [Mbit/s]", YLabel: "goodput [kbit/s]",
	}
	for _, alpha := range []int{2, 3, 4} {
		var cfgs []core.Config
		for _, r := range rates {
			cfgs = append(cfgs, chainCfg(7, r, core.TransportSpec{Protocol: core.ProtoVegas, Alpha: alpha}))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: fmt.Sprintf("Vegas α=%d", alpha)}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: rateLabel(rates[i]), Y: kbit(res.AggGoodput.Mean)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig5: h-hop chain, 2 Mbit/s — Vegas α=2 vs Vegas with ACK thinning for
// α = 2, 3, 4.
func Fig5(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "fig5", Title: "h-hop chain, 2 Mbit/s: Vegas with ACK thinning, goodput vs hops",
		XLabel: "hops", YLabel: "goodput [kbit/s]",
	}
	variants := []struct {
		name string
		t    core.TransportSpec
	}{
		{"Vegas α=2", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
		{"Vegas α=2 Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2, AckThinning: true}},
		{"Vegas α=3 Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 3, AckThinning: true}},
		{"Vegas α=4 Thin", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 4, AckThinning: true}},
	}
	for _, v := range variants {
		var cfgs []core.Config
		for _, hops := range chainHops {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, v.t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(chainHops[i]), Y: kbit(res.AggGoodput.Mean)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// chainVariants are the protocols of Figures 6-9.
var chainVariants = []struct {
	name string
	t    core.TransportSpec
}{
	{"Vegas", core.TransportSpec{Protocol: core.ProtoVegas, Alpha: 2}},
	{"NewReno", core.TransportSpec{Protocol: core.ProtoNewReno}},
	{"NewReno Thin", core.TransportSpec{Protocol: core.ProtoNewReno, AckThinning: true}},
}

// chainComparison builds a Figures-6..9 style figure over the chain with
// the TCP variants and optionally the optimally paced UDP.
func chainComparison(h *Harness, id, title, ylabel string, includeUDP bool, metric func(*core.Result) float64) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "hops", YLabel: ylabel}
	for _, v := range chainVariants {
		var cfgs []core.Config
		for _, hops := range chainHops {
			cfgs = append(cfgs, chainCfg(hops, phy.Rate2Mbps, v.t))
		}
		results, err := h.RunAll(cfgs)
		if err != nil {
			return nil, err
		}
		s := Series{Name: v.name}
		for i, res := range results {
			s.Points = append(s.Points, Point{X: fmt.Sprint(chainHops[i]), Y: metric(res)})
		}
		f.Series = append(f.Series, s)
	}
	if includeUDP {
		s := Series{Name: "Paced UDP"}
		for _, hops := range chainHops {
			gap, err := h.OptimalUDPGap(hops, phy.Rate2Mbps)
			if err != nil {
				return nil, err
			}
			res, err := h.Run(chainCfg(hops, phy.Rate2Mbps, core.TransportSpec{
				Protocol: core.ProtoPacedUDP, UDPGap: gap,
			}))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: fmt.Sprint(hops), Y: metric(res)})
			f.Notes = append(f.Notes, fmt.Sprintf("paced UDP at %d hops: optimal gap %v", hops, gap))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig6: goodput vs hops for Vegas, NewReno, NewReno+thinning and paced UDP.
func Fig6(h *Harness) (*Figure, error) {
	return chainComparison(h, "fig6", "h-hop chain, 2 Mbit/s: goodput vs hops",
		"goodput [kbit/s]", true, func(r *core.Result) float64 { return kbit(r.AggGoodput.Mean) })
}

// Fig7: transport retransmissions per delivered packet vs hops.
func Fig7(h *Harness) (*Figure, error) {
	return chainComparison(h, "fig7", "h-hop chain, 2 Mbit/s: retransmissions vs hops",
		"retransmissions per delivered packet", false, func(r *core.Result) float64 { return r.Rtx.Mean })
}

// Fig8: average window size vs hops.
func Fig8(h *Harness) (*Figure, error) {
	return chainComparison(h, "fig8", "h-hop chain, 2 Mbit/s: window size vs hops",
		"window [packets]", false, func(r *core.Result) float64 { return r.AvgWindow.Mean })
}

// Fig9: false route failures vs hops (including paced UDP).
func Fig9(h *Harness) (*Figure, error) {
	return chainComparison(h, "fig9", "h-hop chain, 2 Mbit/s: false route failures vs hops",
		"false route failures (measured portion)", true, func(r *core.Result) float64 { return float64(r.FalseRouteFailures) })
}

// Fig10: 7-hop chain, 2 Mbit/s — paced UDP goodput vs inter-packet time.
func Fig10(h *Harness) (*Figure, error) {
	f := &Figure{
		ID: "fig10", Title: "7-hop chain, 2 Mbit/s: paced UDP goodput vs packet inter-sending time",
		XLabel: "gap [ms]", YLabel: "goodput [kbit/s]",
	}
	s := Series{Name: "Paced UDP"}
	var cfgs []core.Config
	var gaps []time.Duration
	for ms := 28; ms <= 44; ms += 2 {
		gap := time.Duration(ms) * time.Millisecond
		gaps = append(gaps, gap)
		cfgs = append(cfgs, chainCfg(7, phy.Rate2Mbps, core.TransportSpec{
			Protocol: core.ProtoPacedUDP, UDPGap: gap,
		}))
	}
	results, err := h.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	bestGap, bestG := time.Duration(0), -1.0
	for i, res := range results {
		g := kbit(res.AggGoodput.Mean)
		s.Points = append(s.Points, Point{X: fmt.Sprint(gaps[i].Milliseconds()), Y: g})
		if g > bestG {
			bestG, bestGap = g, gaps[i]
		}
	}
	f.Series = []Series{s}
	f.Notes = append(f.Notes, fmt.Sprintf("measured t_opt = %v (paper: 35.7 ms)", bestGap))
	return f, nil
}
