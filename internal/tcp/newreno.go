package tcp

import (
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// NewRenoSender implements TCP NewReno congestion control (RFC 3782 as in
// ns-2's Agent/TCP/Newreno): slow start, congestion avoidance, fast
// retransmit after three duplicate ACKs, and NewReno fast recovery with
// partial-ACK retransmission.
type NewRenoSender struct {
	*base
	ssthresh   float64
	inRecovery bool
	recover    int64 // highest sequence outstanding when loss was detected
}

var _ Sender = (*NewRenoSender)(nil)

// NewNewReno constructs a NewReno sender for one flow.
func NewNewReno(sched *sim.Scheduler, cfg Config, flow int, src, dst pkt.NodeID, uids *pkt.UIDSource, out Output) *NewRenoSender {
	s := &NewRenoSender{ssthresh: 64}
	s.base = newBase(sched, cfg, flow, src, dst, uids, out)
	if cfg.withDefaults().Wmax < int(s.ssthresh) {
		s.ssthresh = float64(cfg.withDefaults().Wmax)
	}
	s.rtxTimer = sim.NewTimer(sched, s.onRTO)
	s.onTimeout = s.onRTO
	return s
}

// Start begins the transfer.
func (s *NewRenoSender) Start() {
	s.setCwnd(float64(s.cfg.Winit))
	s.sendUpTo()
}

// HandleAck processes a cumulative acknowledgment.
func (s *NewRenoSender) HandleAck(p *pkt.Packet) {
	if p.TCP == nil {
		return
	}
	s.stats.AcksSeen++
	ack := p.TCP.Ack
	if ack > s.ackNext {
		s.onNewAck(p, ack)
	} else if s.ackNext < s.nextSeq {
		// Pure duplicate with data outstanding.
		s.onDupAck()
	}
	s.sendUpTo()
}

func (s *NewRenoSender) onNewAck(p *pkt.Packet, ack int64) {
	newlyAcked := s.ackAdvance(ack)
	if !p.TCP.NoEcho {
		s.sampleRTT(s.sched.Now() - p.TCP.SentAt)
	}

	if s.inRecovery {
		if ack > s.recover {
			// Full ACK: leave fast recovery, deflate to ssthresh.
			s.inRecovery = false
			s.dupacks = 0
			s.setCwnd(s.ssthresh)
		} else {
			// Partial ACK: the next hole is lost too — retransmit it,
			// deflate by the amount acked, stay in recovery (RFC 3782).
			s.transmit(ack)
			w := s.cwnd - float64(newlyAcked) + 1
			if w < 1 {
				w = 1
			}
			s.setCwnd(w)
		}
		return
	}
	s.dupacks = 0
	// Window growth: slow start below ssthresh, else congestion avoidance.
	for i := int64(0); i < newlyAcked; i++ {
		if s.cwnd < s.ssthresh {
			s.setCwnd(s.cwnd + 1)
		} else {
			s.setCwnd(s.cwnd + 1/s.cwnd)
		}
	}
}

func (s *NewRenoSender) onDupAck() {
	s.stats.DupAcks++
	if s.inRecovery {
		// Window inflation per extra duplicate.
		s.setCwnd(s.cwnd + 1)
		return
	}
	s.dupacks++
	if s.dupacks < 3 {
		return
	}
	// Fast retransmit + NewReno fast recovery.
	s.stats.FastRecov++
	s.inRecovery = true
	s.recover = s.nextSeq - 1
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.setCwnd(s.ssthresh + 3)
	s.transmit(s.ackNext)
}

// onRTO handles a retransmission timeout: shrink to Winit, back off the
// timer, and slow start again.
func (s *NewRenoSender) onRTO() {
	if s.ackNext >= s.nextSeq {
		return // nothing outstanding
	}
	s.stats.Timeouts++
	flight := float64(s.nextSeq - s.ackNext)
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.inRecovery = false
	s.dupacks = 0
	s.growBackoff()
	s.setCwnd(float64(s.cfg.Winit))
	s.rtxTimer.Reset(s.currentRTO())
	// Go back N: resume transmission from the first unacked packet, as
	// BSD/ns-2 TCP does (snd_nxt pulled back to the highest ACK).
	s.nextSeq = s.ackNext
	s.sendUpTo()
}
