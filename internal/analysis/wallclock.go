package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package-level time functions that read or wait on
// the host's wall clock. Any of them inside a simulation package breaks
// fixed-seed reproducibility: simulated time must come from the scheduler
// (sim.Time flows from (*sim.Scheduler).Now), never from the machine.
// Methods such as time.Time.After or time.Duration.Seconds are pure value
// arithmetic and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// WallClock reports calls to time.Now, time.Since, time.Sleep and friends
// in simulation packages. cmd/ binaries and _test.go files may use the wall
// clock freely (progress reporting, timeouts); the simulation core may not.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/...) in simulation packages; " +
		"sim time must flow from the scheduler",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	if !pass.SimPackage {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := funcObj(pass.TypesInfo, call)
			if f == nil || pkgPathOf(f) != "time" {
				return true
			}
			if f.Signature().Recv() != nil || !wallClockFuncs[f.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "call to time.%s in simulation package %s: wall-clock time is nondeterministic; derive time from the scheduler (sim.Time / Scheduler.Now)", f.Name(), pass.Pkg.Name())
			return true
		})
	}
	return nil
}
