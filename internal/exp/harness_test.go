package exp

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"manetsim/internal/core"
)

// TestRunParallelReturnsFirstErrorWithoutDraining pins the short-circuit
// contract: one failing work item must surface immediately even while a
// sibling is still running — the old behavior waited for every slot to
// drain before reporting.
func TestRunParallelReturnsFirstErrorWithoutDraining(t *testing.T) {
	h := NewHarness(BenchScale)
	h.Workers = 2
	h.init()
	boom := errors.New("boom")
	hang := make(chan struct{})
	defer close(hang) // let the straggler goroutine exit after the test
	done := make(chan error, 1)
	go func() {
		_, err := h.runParallel(2, func(i int, _ *atomic.Bool) (*core.Result, error) {
			if i == 0 {
				return nil, boom
			}
			<-hang // a slow sibling that never finishes on its own
			return nil, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runParallel waited for the hung sibling instead of short-circuiting")
	}
}

// TestRunParallelSkipsQueuedWorkAfterError asserts that work queued behind
// a failure never executes: once the abort flag is up, slot acquisition
// bails out before running the simulation.
func TestRunParallelSkipsQueuedWorkAfterError(t *testing.T) {
	h := NewHarness(BenchScale)
	h.Workers = 1
	h.init()
	boom := errors.New("boom")
	release := make(chan struct{})
	var ran atomic.Int32
	var stragglers atomic.Int32
	_, err := h.runParallel(4, func(i int, abort *atomic.Bool) (*core.Result, error) {
		if i == 0 {
			return nil, boom
		}
		defer stragglers.Add(1)
		<-release // held until the error has already been returned
		return h.withSlot(abort, func() (*core.Result, error) {
			ran.Add(1)
			return &core.Result{}, nil
		})
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	close(release)
	for i := 0; i < 100 && stragglers.Load() < 3; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if stragglers.Load() != 3 {
		t.Fatalf("only %d/3 stragglers finished", stragglers.Load())
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d queued work items ran after the failure, want 0", n)
	}
}

// TestRunAllFailsFastOnInvalidConfig exercises the same contract through
// the public API: an invalid config in a sweep reports its error.
func TestRunAllFailsFastOnInvalidConfig(t *testing.T) {
	h := NewHarness(BenchScale)
	cfgs := []core.Config{
		{Topology: core.Chain(2), Flows: []core.FlowSpec{{Src: 0, Dst: 99}}}, // invalid flow
		chainCfg(2, rates[0], core.TransportSpec{Protocol: core.ProtoVegas}),
	}
	if _, err := h.RunAll(cfgs); err == nil {
		t.Fatal("invalid config did not fail the sweep")
	}
}

// TestRunAllAbortDoesNotPoisonCache runs a failing sweep and then the same
// valid config again: a skipped (aborted) run must not leave a poisoned
// cache entry behind.
func TestRunAllAbortDoesNotPoisonCache(t *testing.T) {
	h := NewHarness(BenchScale)
	h.Workers = 1
	good := chainCfg(2, rates[0], core.TransportSpec{Protocol: core.ProtoVegas})
	bad := core.Config{Topology: core.Chain(2), Flows: []core.FlowSpec{{Src: 0, Dst: 99}}}
	if _, err := h.RunAll([]core.Config{bad, good, good, good}); err == nil {
		t.Fatal("failing sweep reported success")
	}
	res, err := h.Run(good)
	if err != nil {
		t.Fatalf("valid config failed after an aborted sweep: %v", err)
	}
	if res == nil || res.Delivered == 0 {
		t.Error("post-abort rerun returned an empty result")
	}
}
