package exp

import (
	"testing"

	"manetsim/internal/core"
)

// The fan-out internals (first-error short-circuit, abort flags, worker
// slots, context cancellation) live in manetsim.Campaign and are pinned by
// the campaign tests at the repository root; here the Harness facade is
// exercised end to end through its exp-facing surface.

// TestRunAllFailsFastOnInvalidConfig exercises the fail-fast contract
// through the harness: an invalid config in a sweep reports its error.
func TestRunAllFailsFastOnInvalidConfig(t *testing.T) {
	h := NewHarness(BenchScale)
	cfgs := []core.Config{
		{Scenario: core.Chain(2).WithFlows(core.Flow{Src: 0, Dst: 99})}, // invalid flow
		chainCfg(2, rates[0], core.TransportSpec{Protocol: core.ProtoVegas}),
	}
	if _, err := h.RunAll(cfgs); err == nil {
		t.Fatal("invalid config did not fail the sweep")
	}
}

// TestRunAllAbortDoesNotPoisonCache runs a failing sweep and then the same
// valid config again: a skipped (aborted) run must not leave a poisoned
// cache entry behind.
func TestRunAllAbortDoesNotPoisonCache(t *testing.T) {
	h := NewHarness(BenchScale)
	h.Workers = 1
	good := chainCfg(2, rates[0], core.TransportSpec{Protocol: core.ProtoVegas})
	bad := core.Config{Scenario: core.Chain(2).WithFlows(core.Flow{Src: 0, Dst: 99})}
	if _, err := h.RunAll([]core.Config{bad, good, good, good}); err == nil {
		t.Fatal("failing sweep reported success")
	}
	res, err := h.Run(good)
	if err != nil {
		t.Fatalf("valid config failed after an aborted sweep: %v", err)
	}
	if res == nil || res.Delivered == 0 {
		t.Error("post-abort rerun returned an empty result")
	}
}
