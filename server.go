package manetsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Server exposes a Campaign as a long-running simulation service over
// HTTP: clients submit sweep grids, poll their status, stream per-run
// progress events, and fetch aggregated results. All submitted sweeps
// share the server's campaign — its worker pool, warm World arenas,
// in-memory cache and (when configured with WithStore) persistent result
// store — so concurrent clients deduplicate overlapping work and a
// restarted server resumes where the store left off.
//
// Endpoints (all under /api/v1):
//
//	POST /api/v1/sweeps              submit a Sweep (JSON body) -> 202 {id, total}
//	GET  /api/v1/sweeps              list submitted sweeps
//	GET  /api/v1/sweeps/{id}         status: state, done/total counts
//	GET  /api/v1/sweeps/{id}/results aggregated cells once done (202 while running)
//	GET  /api/v1/sweeps/{id}/events  NDJSON progress stream (replays, then live)
//	GET  /api/v1/transports          the transport registry
//	GET  /api/v1/healthz             liveness
//
// The events stream is newline-delimited JSON (application/x-ndjson):
// one {"type":"run",...} object per completed run — carrying the cell's
// canonical key, its hash, the seed and the run's goodput — terminated
// by a single {"type":"done"} or {"type":"error"} object. Connecting
// after completion replays the full event log and terminates, so late
// consumers see identical streams.
//
// A Server is an http.Handler; serve it with http.Server or mount it
// under a mux. The manetsim CLI wires it up as "manetsim serve".
type Server struct {
	campaign *Campaign
	mux      *http.ServeMux

	// ctx is the server's lifetime: sweep goroutines run under it, and
	// Shutdown cancels it to abort whatever a graceful drain could not
	// finish. wg counts those goroutines.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*sweepJob
	seq      int
	draining bool
}

// NewServer returns a service over the given campaign. The campaign's
// scale supplies the default measurement budget of submitted sweeps, its
// workers bound their parallelism, and its store (if any) makes their
// results durable.
func NewServer(c *Campaign) *Server {
	s := &Server{campaign: c, jobs: make(map[string]*sweepJob)}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /api/v1/transports", s.handleTransports)
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/sweeps", s.handleList)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", s.handleEvents)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new sweep submissions are refused (503)
// immediately, and in-flight sweeps get until ctx's deadline to finish.
// If the deadline passes first, the remaining sweeps are aborted — with
// a store attached every run completed so far is already persisted, so
// an aborted sweep resumes from its last completed run on restart — and
// ctx's error is returned. A nil error means every in-flight sweep
// drained completely. Shutdown is idempotent; call it before (or as the
// RegisterOnShutdown hook of) http.Server.Shutdown so event streams
// reach their terminal event and close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done // aborted sweeps unwind promptly once the context dies
		return ctx.Err()
	}
}

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// serverEvent is one NDJSON line of a job's progress stream.
type serverEvent struct {
	Type       string  `json:"type"` // "run", "done" or "error"
	Key        CellKey `json:"key,omitempty"`
	KeyHash    string  `json:"keyHash,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	GoodputBps float64 `json:"goodputBps,omitempty"`
	Cells      int     `json:"cells,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// sweepJob tracks one submitted sweep: its event log (replayed to every
// stream consumer), live subscribers, and the terminal outcome.
type sweepJob struct {
	id    string
	total int

	mu     sync.Mutex
	state  string
	done   int
	events []serverEvent
	subs   map[chan serverEvent]struct{}
	cells  []Cell
	err    error
}

// append records an event and fans it out to live subscribers. Channel
// buffers are sized for the whole event log (total runs + 1 terminal
// event), so the non-blocking send only ever drops on a subscriber that
// broke its own contract.
func (j *sweepJob) append(ev serverEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns a snapshot of the event log so far and a live
// channel for what follows; unsubscribe with the returned func.
func (j *sweepJob) subscribe() ([]serverEvent, chan serverEvent, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := append([]serverEvent(nil), j.events...)
	ch := make(chan serverEvent, j.total+2)
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// run executes the sweep on the shared campaign, recording progress and
// the terminal outcome. It runs on its own goroutine under the server's
// lifetime context (not the request's): a submitted sweep outlives its
// submitting connection but not a shutdown deadline.
func (s *Server) run(j *sweepJob, sw Sweep) {
	defer s.wg.Done()
	cells, err := s.campaign.SweepProgress(s.ctx, sw, func(ev SweepEvent) {
		j.mu.Lock()
		j.done = ev.Done
		j.mu.Unlock()
		out := serverEvent{
			Type:    "run",
			Key:     ev.Key,
			KeyHash: ev.Key.Hash(),
			Seed:    ev.Seed,
			Done:    ev.Done,
			Total:   ev.Total,
		}
		if ev.Result != nil {
			out.GoodputBps = ev.Result.AggGoodput.Mean
		}
		j.append(out)
	})
	j.mu.Lock()
	if err != nil {
		j.state = jobFailed
		j.err = err
	} else {
		j.state = jobDone
		j.cells = cells
	}
	done, total := j.done, j.total
	j.mu.Unlock()
	if err != nil {
		j.append(serverEvent{Type: "error", Done: done, Total: total, Error: err.Error()})
	} else {
		j.append(serverEvent{Type: "done", Done: done, Total: total, Cells: len(cells)})
	}
}

// jobStatus is the JSON shape of a job's status (and the interim results
// response while a sweep is still running).
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

func (j *sweepJob) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{ID: j.id, State: j.state, Done: j.done, Total: j.total}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTransports(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Transports())
}

// maxSweepBody bounds submitted sweep documents; even a 10k-node
// scenario with thousands of explicit flows fits comfortably.
const maxSweepBody = 16 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sw Sweep
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("sweep document exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep: %w", err))
		return
	}
	if err := validateSweep(sw); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errors.New("server is shutting down"))
		return
	}
	s.seq++
	j := &sweepJob{
		id:    fmt.Sprintf("sweep-%d", s.seq),
		total: sw.GridSize(s.campaign.Scale),
		state: jobRunning,
		subs:  make(map[chan serverEvent]struct{}),
	}
	s.jobs[j.id] = j
	s.wg.Add(1)
	s.mu.Unlock()
	go s.run(j, sw)
	writeJSON(w, http.StatusAccepted, j.status())
}

// validateSweep rejects structurally broken submissions synchronously
// (HTTP 400); run-level misconfigurations surface as a failed job.
func validateSweep(sw Sweep) error {
	if len(sw.Scenarios) == 0 {
		return errors.New("sweep needs at least one scenario")
	}
	for i, scn := range sw.Scenarios {
		if scn == nil {
			return fmt.Errorf("scenario %d is null", i)
		}
		if err := scn.Validate(); err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	return nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]jobStatus, 0, len(s.jobs))
	for i := 1; i <= s.seq; i++ {
		if j, ok := s.jobs[fmt.Sprintf("sweep-%d", i)]; ok {
			statuses = append(statuses, j.status())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*sweepJob, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	state, cells, jerr := j.state, j.cells, j.err
	j.mu.Unlock()
	switch state {
	case jobRunning:
		writeJSON(w, http.StatusAccepted, j.status())
	case jobFailed:
		httpError(w, http.StatusInternalServerError, jerr)
	default:
		writeJSON(w, http.StatusOK, struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Cells []Cell `json:"cells"`
		}{j.id, state, cells})
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	replay, ch, unsubscribe := j.subscribe()
	defer unsubscribe()
	// Event streams stay open for a whole sweep, so the per-connection
	// write deadline a hardened http.Server sets (WriteTimeout) must not
	// apply; the stream ends at its terminal event or client disconnect.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev serverEvent) (terminal bool) {
		if err := enc.Encode(ev); err != nil {
			return true // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		return ev.Type != "run"
	}
	for _, ev := range replay {
		if emit(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Forced shutdown: the sweep's error event may never come,
			// so close the stream instead of holding the connection.
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
