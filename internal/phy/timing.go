// Package phy models the wireless physical layer: data rates and frame
// airtimes for IEEE 802.11b, threshold propagation with distinct
// transmission (250 m) and carrier-sense/interference (550 m) ranges, and a
// no-capture collision model. The collision model is what produces the
// paper's hidden-terminal losses: a reception is corrupted whenever any
// other transmission within interference range of the receiver overlaps it
// in time.
package phy

import (
	"fmt"
	"time"
)

// Rate is a channel bit rate in bits per second.
type Rate float64

// IEEE 802.11b rates considered in the paper. Control frames (RTS, CTS,
// MAC-level ACK) are always sent at ControlRate for cross-version
// compatibility — the reason the paper observes sub-linear goodput growth
// with bandwidth.
const (
	Rate1Mbps   Rate = 1e6
	Rate2Mbps   Rate = 2e6
	Rate5_5Mbps Rate = 5.5e6
	Rate11Mbps  Rate = 11e6

	ControlRate = Rate1Mbps
)

func (r Rate) String() string {
	mbps := float64(r) / 1e6
	if mbps == float64(int64(mbps)) {
		return fmt.Sprintf("%dMbps", int64(mbps))
	}
	return fmt.Sprintf("%gMbps", mbps)
}

// Radio ranges fixed by the paper's MAC configuration (meters).
const (
	TxRange = 250.0
	CSRange = 550.0 // carrier sensing and interference range
)

// SpeedOfLight is the propagation speed used for per-hop delays (m/s).
const SpeedOfLight = 3e8

// PLCP preamble+header overhead. 802.11b long preamble (used with 1 and
// 2 Mbit/s) costs 192 µs; the short preamble permitted at 5.5 and 11 Mbit/s
// costs 96 µs. This preamble policy reproduces the paper's Table 2
// (4-hop propagation delays of 29, 12 and 8 ms for 2, 5.5 and 11 Mbit/s).
const (
	PLCPLong  = 192 * time.Microsecond
	PLCPShort = 96 * time.Microsecond
)

// Preamble returns the PLCP overhead used by a network whose data rate is
// dataRate. All frames of that network, including control frames, use the
// same preamble mode.
func Preamble(dataRate Rate) time.Duration {
	if dataRate > Rate2Mbps {
		return PLCPShort
	}
	return PLCPLong
}

// Airtime returns the on-air duration of a frame of the given size at the
// given payload rate, including the PLCP preamble chosen by the network's
// data rate.
func Airtime(bytes int, rate Rate, preamble time.Duration) time.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("phy: negative frame size %d", bytes))
	}
	if rate <= 0 {
		panic(fmt.Sprintf("phy: non-positive rate %v", rate))
	}
	bits := float64(bytes * 8)
	return preamble + time.Duration(bits/float64(rate)*float64(time.Second))
}

// PropagationDelay returns the signal propagation delay over d meters.
func PropagationDelay(d float64) time.Duration {
	return time.Duration(d / SpeedOfLight * float64(time.Second))
}
