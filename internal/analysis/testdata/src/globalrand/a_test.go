package globalrand

import "math/rand"

// Test files are exempt: a fixed-seed generator in a test is the normal way
// to build reproducible fixtures.
var testFixture = rand.New(rand.NewSource(7))

func testDraw() int { return rand.Intn(10) }
