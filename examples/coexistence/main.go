// Coexistence demonstrates per-flow transport mixing: three Vegas flows
// and three NewReno flows share the 21-node grid. Loss-based NewReno
// probes until packets drop while delay-based Vegas backs off as soon as
// queues build, so the NewReno group tends to crowd out the Vegas group —
// the classic inter-protocol fairness problem, quantified over this
// paper's wireless substrate.
//
//	go run ./examples/coexistence
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	vegas := manetsim.TransportSpec{Protocol: manetsim.Vegas}
	newreno := manetsim.TransportSpec{Protocol: manetsim.NewReno}
	// Alternate protocols within each geometry class (FTP1-3 are 6-hop
	// horizontal flows, FTP4-6 are 2-hop vertical ones) so path length
	// does not confound the protocol comparison.
	isVegas := []bool{true, false, true, false, true, false}
	scn := manetsim.Grid()
	for i, v := range isVegas {
		if v {
			scn.Flows[i].Transport = vegas
		} else {
			scn.Flows[i].Transport = newreno
		}
	}
	res, err := manetsim.Run(context.Background(), scn,
		manetsim.WithBandwidth(manetsim.Rate11Mbps),
		manetsim.WithSeed(1),
		manetsim.WithPackets(demoPackets(22000), 0),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("grid, 11 Mbit/s: 3 Vegas flows vs 3 NewReno flows (geometry balanced)")
	var vSum, nSum float64
	for i, est := range res.PerFlowGood {
		proto := "Vegas  "
		if !isVegas[i] {
			proto = "NewReno"
			nSum += est.Mean
		} else {
			vSum += est.Mean
		}
		fmt.Printf("  FTP%d [%s] %8.1f kbit/s\n", i+1, proto, est.Mean/1e3)
	}
	fmt.Printf("\n  Vegas group:   %8.1f kbit/s\n", vSum/1e3)
	fmt.Printf("  NewReno group: %8.1f kbit/s\n", nSum/1e3)
	fmt.Printf("  overall Jain fairness: %.2f\n", res.Jain.Mean)
}
