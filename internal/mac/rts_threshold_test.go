package mac

import (
	"testing"

	"manetsim/internal/geo"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// newMacRigCfg is newMacRig with a full MAC config (RTS threshold tests).
func newMacRigCfg(t *testing.T, positions []geo.Point, cfg Config, seed int64) *macRig {
	t.Helper()
	r := &macRig{
		sched:    sim.NewScheduler(seed),
		received: make([][]*pkt.Packet, len(positions)),
		failures: make([][]*pkt.Packet, len(positions)),
	}
	r.ch = phy.NewChannel(r.sched, positions)
	for i := range positions {
		i := i
		cb := Callbacks{
			Deliver:     func(p *pkt.Packet, _ pkt.NodeID) { r.received[i] = append(r.received[i], p) },
			LinkFailure: func(p *pkt.Packet, _ pkt.NodeID) { r.failures[i] = append(r.failures[i], p) },
		}
		r.macs = append(r.macs, New(r.sched, r.ch.Radio(pkt.NodeID(i)), cfg, cb))
	}
	return r
}

func TestBasicAccessSkipsRTS(t *testing.T) {
	cfg := Config{DataRate: phy.Rate2Mbps, RTSThreshold: 2000}
	r := newMacRigCfg(t, geo.Chain(1), cfg, 1)
	p := r.packet(0, 1, 1500)
	r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
	r.sched.Run()
	if len(r.received[1]) != 1 {
		t.Fatalf("node 1 received %d packets, want 1", len(r.received[1]))
	}
	c := r.macs[0].Counters
	if c.RTSSent != 0 || c.DataSent != 1 {
		t.Errorf("sender counters = %+v, want 0 RTS and 1 DATA", c)
	}
	rc := r.macs[1].Counters
	if rc.CTSSent != 0 || rc.AckSent != 1 {
		t.Errorf("receiver counters = %+v, want 0 CTS and 1 ACK", rc)
	}
}

func TestRTSThresholdBoundary(t *testing.T) {
	// Size <= threshold takes basic access; size > threshold keeps the
	// RTS/CTS handshake. Both must deliver.
	for _, tc := range []struct {
		size    int
		wantRTS uint64
	}{
		{1000, 0},
		{1001, 1},
	} {
		cfg := Config{DataRate: phy.Rate2Mbps, RTSThreshold: 1000}
		r := newMacRigCfg(t, geo.Chain(1), cfg, 1)
		p := r.packet(0, 1, tc.size)
		r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
		r.sched.Run()
		if len(r.received[1]) != 1 {
			t.Fatalf("size %d: node 1 received %d packets, want 1", tc.size, len(r.received[1]))
		}
		if got := r.macs[0].Counters.RTSSent; got != tc.wantRTS {
			t.Errorf("size %d: RTSSent = %d, want %d", tc.size, got, tc.wantRTS)
		}
	}
}

func TestBasicAccessRetriesAgainstLongLimit(t *testing.T) {
	// The receiver sits in the gray zone: it senses energy but cannot
	// decode, so no ACK ever comes back. Basic-access attempts must burn
	// the long retry limit and then report a link failure.
	positions := []geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}} // > TxRange, < CSRange
	cfg := Config{DataRate: phy.Rate2Mbps, RTSThreshold: 2000}
	r := newMacRigCfg(t, positions, cfg, 1)
	p := r.packet(0, 1, 1500)
	r.sched.At(0, func() { r.macs[0].Enqueue(p, 1) })
	r.sched.Run()
	c := r.macs[0].Counters
	if c.DataSent != LongRetryLimit {
		t.Errorf("DataSent = %d, want %d attempts", c.DataSent, LongRetryLimit)
	}
	if c.RTSSent != 0 {
		t.Errorf("RTSSent = %d, want 0", c.RTSSent)
	}
	if c.RetryDrops != 1 || len(r.failures[0]) != 1 {
		t.Errorf("RetryDrops = %d, failures = %d, want 1 and 1", c.RetryDrops, len(r.failures[0]))
	}
}

func TestRTSThresholdSurvivesReset(t *testing.T) {
	cfg := Config{DataRate: phy.Rate2Mbps, RTSThreshold: 2000}
	r := newMacRigCfg(t, geo.Chain(1), cfg, 1)
	r.sched.Reset(2)
	r.ch.Reset(staticModel{positions: geo.Chain(1)}, 0)
	r.macs[0].Reset(cfg)
	r.macs[1].Reset(Config{DataRate: phy.Rate2Mbps}) // threshold off again
	if r.macs[0].rtsThreshold != 2000 {
		t.Errorf("mac 0 rtsThreshold = %d after Reset, want 2000", r.macs[0].rtsThreshold)
	}
	if r.macs[1].rtsThreshold != 0 {
		t.Errorf("mac 1 rtsThreshold = %d after Reset, want 0", r.macs[1].rtsThreshold)
	}
}

// staticModel is a minimal phy.PositionModel over fixed positions.
type staticModel struct{ positions []geo.Point }

func (m staticModel) Len() int                               { return len(m.positions) }
func (m staticModel) PositionAt(i int, _ sim.Time) geo.Point { return m.positions[i] }
func (m staticModel) Static() bool                           { return true }
