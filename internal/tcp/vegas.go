package tcp

import (
	"time"

	"manetsim/internal/sim"
)

// VegasCC implements TCP Vegas (Brakmo & Peterson) with the behaviour the
// paper relies on:
//
//   - proactive window control: once per RTT, diff = W·(RTT−baseRTT)/RTT
//     (the paper's (W/baseRTT − W/RTT)·baseRTT) is compared against the
//     thresholds α and β; the window moves by at most ±1 packet per RTT;
//   - a conservative slow start that doubles the window only every other
//     RTT and exits once diff exceeds γ;
//   - fine-grained loss recovery: the first duplicate ACK triggers a
//     retransmission if the segment's fine-grained timer (srtt+4·rttvar)
//     has expired, and the first two non-duplicate ACKs after a
//     retransmission re-check the next unacked segment — so Vegas rarely
//     needs three duplicate ACKs or a coarse timeout;
//   - window reduction by one quarter on a fast retransmission, at most
//     once per RTT, and a reset to Winit on a coarse timeout (Table 1).
type VegasCC struct {
	CCBase
	baseRTT time.Duration
	lastRTT time.Duration // most recent valid sample (paper's "most recent RTT")

	epochStart   sim.Time
	slowStart    bool
	ssGrowEpoch  bool // doubling happens only in alternating epochs
	dupacks      int
	checkAfterRx int   // non-dup ACKs that still re-check after a rtx
	lastCutSeq   int64 // guards the 3/4 reduction to once per window
}

var (
	_ CongestionControl = (*VegasCC)(nil)
	_ ackFinisher       = (*VegasCC)(nil)
)

// NewVegasCC returns the Vegas congestion-control strategy.
func NewVegasCC() *VegasCC { return &VegasCC{} }

// Init binds the engine and resets Vegas state.
func (s *VegasCC) Init(e *Engine) {
	s.CCBase.Init(e)
	s.slowStart = true
	s.ssGrowEpoch = true
}

// OnStart opens the first Vegas epoch.
func (s *VegasCC) OnStart() {
	s.epochStart = s.e.Now()
}

// OnAck processes a cumulative acknowledgment that advances the window.
func (s *VegasCC) OnAck(a Ack) {
	e := s.e
	if !a.NoEcho && !a.FromRetransmit {
		// Measure against the first newly acked segment (ns-2 Vegas keeps
		// per-segment send times): for a cumulative ACK covering a burst,
		// the head of the burst saw the least self-queueing, which is
		// what Brakmo's marked-segment measurement observes. ACKs
		// triggered by retransmitted segments are excluded entirely
		// (Karn's rule — their delay measures recovery, not the path).
		rtt := e.Now() - a.Echo
		if sent, ok := e.SentAt(e.AckNext()); ok {
			rtt = e.Now() - sent
		}
		e.SampleRTT(rtt)
	}
	e.AdvanceAck(a.Seq)
	s.dupacks = 0

	// Brakmo's post-retransmission check: the first two non-duplicate
	// ACKs after a retransmission re-examine the oldest outstanding
	// segment and retransmit it if its fine-grained timer expired,
	// catching multiple losses in one window without dup-ACK stalls.
	if s.checkAfterRx > 0 {
		s.checkAfterRx--
		if s.expired(e.AckNext()) {
			s.retransmitFirst()
		}
	}

	// Per-ACK exponential growth while in the doubling phase of slow
	// start; linear adjustment happens only at epoch boundaries.
	if s.slowStart && s.ssGrowEpoch {
		e.SetWindow(e.Window() + 1)
	}
}

// OnRTTSample tracks the propagation-delay floor and the most recent RTT.
func (s *VegasCC) OnRTTSample(rtt time.Duration) {
	if s.baseRTT == 0 || rtt < s.baseRTT {
		s.baseRTT = rtt
	}
	s.lastRTT = rtt
}

// OnDupAck applies Vegas' fine-grained check: retransmit on the *first*
// duplicate if the segment has been outstanding longer than srtt+4·rttvar,
// without waiting for the third duplicate.
func (s *VegasCC) OnDupAck(Ack) {
	s.dupacks++
	if s.expired(s.e.AckNext()) || s.dupacks == 3 {
		s.retransmitFirst()
	}
}

// expired reports whether seq has been outstanding beyond the fine-grained
// timeout.
func (s *VegasCC) expired(seq int64) bool {
	sent, ok := s.e.SentAt(seq)
	if !ok {
		return false
	}
	return s.e.Now()-sent > s.e.FineRTO()
}

// retransmitFirst resends the oldest unacked segment and applies Vegas'
// one-quarter window reduction (at most once per window of data).
func (s *VegasCC) retransmitFirst() {
	e := s.e
	seq := e.AckNext()
	if seq >= e.NextSeq() {
		return
	}
	e.CountFastRecovery()
	e.Retransmit(seq)
	s.checkAfterRx = 2
	s.dupacks = 0
	if seq > s.lastCutSeq {
		s.lastCutSeq = e.NextSeq()
		s.slowStart = false
		w := e.Window() * 3 / 4
		if w < 2 {
			w = 2
		}
		e.SetWindow(w)
	}
}

// AfterAck runs the once-per-RTT Vegas window calculation. It fires on
// every incoming ACK — including ones that neither advance nor duplicate —
// exactly as the epoch check sat in the monolithic sender's ACK path.
func (s *VegasCC) AfterAck() {
	e := s.e
	rtt := s.lastRTT
	if rtt == 0 {
		rtt = s.baseRTT
	}
	if rtt == 0 || e.Now()-s.epochStart < rtt {
		return
	}
	s.epochStart = e.Now()

	// diff = W·(RTT−baseRTT)/RTT, in packets.
	cfg := e.Config()
	diff := e.Window() * float64(s.lastRTT-s.baseRTT) / float64(s.lastRTT)
	alpha, beta, gamma := float64(cfg.Alpha), float64(cfg.Beta), float64(cfg.Gamma)

	if s.slowStart {
		if diff > gamma {
			// Leave slow start: shed the overshoot (Brakmo's 1/8) and
			// switch to linear adjustment.
			s.slowStart = false
			w := e.Window() - e.Window()/8
			if w < 2 {
				w = 2
			}
			e.SetWindow(w)
			return
		}
		// Double only every other RTT: toggle the growth phase.
		s.ssGrowEpoch = !s.ssGrowEpoch
		return
	}

	switch {
	case diff < alpha:
		e.SetWindow(e.Window() + 1)
	case diff > beta:
		w := e.Window() - 1
		if w < 2 {
			w = 2
		}
		e.SetWindow(w)
	}
}

// OnTimeout handles a coarse retransmission timeout: Winit window, timer
// backoff, and a fresh slow start. The engine then goes back N.
func (s *VegasCC) OnTimeout() {
	e := s.e
	e.BackoffRTO()
	s.slowStart = true
	s.ssGrowEpoch = true
	s.dupacks = 0
	s.checkAfterRx = 0
	e.SetWindow(float64(e.Config().Winit))
	s.epochStart = e.Now()
	e.RestartRTOTimer()
}
