package perf

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `
goos: linux
goarch: amd64
pkg: manetsim/internal/perf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleDispatch-8   	12000000	        95.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleDispatch-8   	13000000	        91.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkEndToEndBenchScale-8 	      10	 100324381 ns/op	       220.7 kbit/s	     21893 packets/s	  335012 B/op	    1126 allocs/op
PASS
`

func TestParseGoBench(t *testing.T) {
	snap, err := ParseGoBench(strings.NewReader(sampleBenchOutput), "2026-07-29")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	sd := snap.Benchmarks[0]
	if sd.Name != "BenchmarkScheduleDispatch" {
		t.Errorf("name = %q (suffix not stripped?)", sd.Name)
	}
	if sd.NsPerOp != 91.5 {
		t.Errorf("folded ns/op = %v, want the 91.5 minimum", sd.NsPerOp)
	}
	if sd.Runs != 25000000 {
		t.Errorf("folded runs = %d, want 25000000", sd.Runs)
	}
	e2e := snap.Benchmarks[1]
	if e2e.AllocsPerOp != 1126 || e2e.BytesPerOp != 335012 {
		t.Errorf("e2e mem columns = %v B/op, %v allocs/op", e2e.BytesPerOp, e2e.AllocsPerOp)
	}
	if e2e.Metrics["kbit/s"] != 220.7 || e2e.Metrics["packets/s"] != 21893 {
		t.Errorf("custom metrics = %v", e2e.Metrics)
	}
	if snap.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu line not captured: %q", snap.CPU)
	}
}

func TestParseGoBenchRejectsEmptyInput(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("no benchmarks here\n"), "d"); err == nil {
		t.Error("empty input did not error")
	}
}

func mkSnap(ns, allocs float64) Snapshot {
	return Snapshot{
		CPU:        "TestCPU @ 1GHz",
		CPUs:       4,
		Benchmarks: []Result{{Name: "BenchmarkX", NsPerOp: ns, AllocsPerOp: allocs}},
	}
}

func TestCompareThresholds(t *testing.T) {
	cases := []struct {
		name       string
		base, cand Snapshot
		wantLevel  string
		wantFail   bool
	}{
		{"within-noise", mkSnap(100, 10), mkSnap(105, 10), "ok", false},
		{"warn-band", mkSnap(100, 10), mkSnap(115, 10), "warn", false},
		{"fail-band", mkSnap(100, 10), mkSnap(130, 10), "fail", true},
		{"improvement", mkSnap(100, 10), mkSnap(50, 10), "ok", false},
		{"alloc-regression", mkSnap(100, 10), mkSnap(100, 20), "fail", true},
		{"alloc-from-zero", mkSnap(100, 0), mkSnap(100, 5), "fail", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, failed := Compare(tc.base, tc.cand, 10, 25)
			if len(results) != 1 {
				t.Fatalf("%d results", len(results))
			}
			if results[0].Level != tc.wantLevel || failed != tc.wantFail {
				t.Errorf("level=%s failed=%v, want %s/%v", results[0].Level, failed, tc.wantLevel, tc.wantFail)
			}
		})
	}
}

func TestCompareCrossHostDemotesNsFailuresToWarnings(t *testing.T) {
	base := mkSnap(100, 10)
	cand := mkSnap(200, 10) // +100% ns/op, would fail on the same host
	cand.CPU = "OtherCPU @ 9GHz"
	results, failed := Compare(base, cand, 10, 25)
	if failed || results[0].Level != "warn" {
		t.Errorf("cross-host ns regression: level=%s failed=%v, want warn/false", results[0].Level, failed)
	}
	// Allocation regressions stay hard even across hosts.
	cand.Benchmarks[0].AllocsPerOp = 100
	if _, failed := Compare(base, cand, 10, 25); !failed {
		t.Error("cross-host allocs/op regression did not fail")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := mkSnap(100, 10)
	cand := Snapshot{Benchmarks: []Result{{Name: "BenchmarkOther", NsPerOp: 1}}}
	results, failed := Compare(base, cand, 10, 25)
	if !failed || len(results) != 2 {
		t.Fatalf("results=%v failed=%v, want missing+new and failure", results, failed)
	}
	levels := map[string]string{}
	for _, r := range results {
		levels[r.Name] = r.Level
	}
	if levels["BenchmarkX"] != "missing" {
		t.Errorf("dropped benchmark level = %s, want missing", levels["BenchmarkX"])
	}
	if levels["BenchmarkOther"] != "new" {
		t.Errorf("candidate-only benchmark level = %s, want new (must be surfaced, not silently ungated)", levels["BenchmarkOther"])
	}
	out := FormatCompare(results, 10, 25)
	if !strings.Contains(out, "missing") || !strings.Contains(out, "no baseline") {
		t.Errorf("report lacks missing/new markers:\n%s", out)
	}
}
