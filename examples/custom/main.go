// Custom builds a scenario the paper's fixed topologies could not
// express: a cross-shaped relay network with explicit node placement,
// heterogeneous per-flow transports (a Vegas transfer, a competing NewReno
// transfer joining late, and paced-UDP cross traffic), per-flow start
// times, and a live Observer streaming classified route failures and
// batch progress out of the run.
//
//	go run ./examples/custom
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	// A cross: two 4-hop chains sharing their center relay. The arms are
	// 200 m per hop, so only neighbors hear each other and the center is
	// the contention hot spot.
	scn := manetsim.NewScenario("cross")
	var west, east, north, south [3]manetsim.NodeID
	center := scn.AddNode(0, 0)
	for i := 0; i < 3; i++ {
		d := float64(i+1) * 200
		west[i] = scn.AddNode(-d, 0)
		east[i] = scn.AddNode(d, 0)
		north[i] = scn.AddNode(0, d)
		south[i] = scn.AddNode(0, -d)
	}
	_ = center

	// Three flows, three transports, staggered starts: the Vegas transfer
	// runs alone for the first simulated seconds, then NewReno joins on
	// the crossing arm, and paced UDP adds constant cross traffic.
	scn.Add(manetsim.Flow{
		Src: west[2], Dst: east[2],
		Transport: manetsim.TransportSpec{Protocol: manetsim.Vegas},
	})
	scn.Add(manetsim.Flow{
		Src: north[2], Dst: south[2],
		Transport: manetsim.TransportSpec{Protocol: manetsim.NewReno},
		Start:     5 * time.Second,
	})
	scn.Add(manetsim.Flow{
		Src: north[0], Dst: west[0],
		Transport: manetsim.TransportSpec{Protocol: manetsim.PacedUDP, UDPGap: 120 * time.Millisecond},
		Start:     10 * time.Second,
	})

	// Stream run events while it executes.
	var falseRF, trueRF, rtx int
	obs := manetsim.ObserverFuncs{
		RouteFailure: func(node manetsim.NodeID, falseFailure bool) {
			if falseFailure {
				falseRF++
			} else {
				trueRF++
			}
		},
		Retransmit: func(flow int) { rtx++ },
		Progress: func(delivered, total int64, simTime time.Duration) {
			fmt.Printf("  ... %5.1f%% delivered at t=%v\n",
				100*float64(delivered)/float64(total), simTime.Round(time.Second))
		},
	}

	res, err := manetsim.Run(context.Background(), scn,
		manetsim.WithBandwidth(manetsim.Rate2Mbps),
		manetsim.WithSeed(1),
		manetsim.WithPackets(demoPackets(5500), 0),
		manetsim.WithObserver(obs),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncross scenario (13 nodes, 3 heterogeneous flows):")
	names := []string{"Vegas west->east", "NewReno north->south (t+5s)", "PacedUDP cross (t+10s)"}
	for i, est := range res.PerFlowGood {
		fmt.Printf("  %-28s %8.1f kbit/s\n", names[i], est.Mean/1e3)
	}
	fmt.Printf("  aggregate %.1f kbit/s over %v simulated\n",
		res.AggGoodput.Mean/1e3, res.SimTime.Round(time.Second))
	fmt.Printf("  observed live: %d retransmissions, %d false / %d true route failures\n",
		rtx, falseRF, trueRF)
}
