package manetsim

import "time"

// Option tunes one run-level knob of a simulation. Options apply over the
// paper's defaults: 2 Mbit/s, 110000 packets in batches of 10000, one
// warm-up batch discarded, seed 0, 24h simulated-time bound.
type Option func(*Config)

// WithBandwidth sets the channel bit rate (Rate2Mbps, Rate5_5Mbps or
// Rate11Mbps).
func WithBandwidth(r Rate) Option {
	return func(c *Config) { c.Bandwidth = r }
}

// WithTransport sets the default TransportSpec for every flow that does
// not carry its own.
func WithTransport(t TransportSpec) Option {
	return func(c *Config) { c.Transport = t }
}

// WithSeed sets the random seed; runs are deterministic per seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithPackets sets the measurement budget: deliver total packets split
// into batches of batch (0 batch = total/11, the paper's 11-batch
// structure).
func WithPackets(total, batch int64) Option {
	return func(c *Config) { c.TotalPackets, c.BatchPackets = total, batch }
}

// WithWarmupBatches sets how many leading batches are discarded before
// aggregation (default 1, the paper's methodology).
func WithWarmupBatches(n int) Option {
	return func(c *Config) { c.WarmupBatches = n }
}

// WithMaxSimTime bounds the simulated time; a run that cannot reach its
// packet target by then returns with Result.Truncated set.
func WithMaxSimTime(d time.Duration) Option {
	return func(c *Config) { c.MaxSimTime = d }
}

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) Option {
	return func(c *Config) { c.Observer = o }
}

// WithoutCapture disables the PHY's 10 dB capture rule (ablation: any
// overlapping signal within interference range corrupts receptions).
func WithoutCapture() Option {
	return func(c *Config) { c.NoCapture = true }
}

// WithLinkModel applies a link-impairment spec to every link of the run:
// per-frame loss (uniform, BER-derived, Gilbert-Elliott bursts,
// distance-dependent), per-link delay jitter, and the capture-ratio
// override. The zero spec is the perfect channel, the default.
func WithLinkModel(l LinkModelSpec) Option {
	return func(c *Config) { c.LinkModel = l }
}

// WithFaults schedules fault injections for the run: node crashes, link
// blackouts and partitions (or any registered injector), each firing at
// its configured time. Faulted runs stay deterministic per seed — the
// fault transitions draw no randomness — and report resilience metrics
// in Result.Faults. An empty list keeps the run fault-free.
func WithFaults(faults ...FaultSpec) Option {
	return func(c *Config) { c.Faults = append(c.Faults, faults...) }
}

// WithRTSThreshold sets the MAC's dot11RTSThreshold in bytes: unicast
// frames no larger than bytes skip the RTS/CTS handshake and go out as
// basic-access DATA. 0 (the default) keeps the handshake on every frame,
// the paper's setting; any value above the largest frame disables it.
func WithRTSThreshold(bytes int) Option {
	return func(c *Config) { c.RTSThreshold = bytes }
}

// CampaignOption configures a Campaign at construction (NewCampaign),
// mirroring Run's functional options. The exported Campaign struct
// fields these replace (Workers, DisableArenaReuse) keep working as
// deprecated aliases.
type CampaignOption func(*Campaign)

// WithWorkers bounds the campaign's parallel simulations (default
// GOMAXPROCS). Cache and store hits never occupy a worker slot.
func WithWorkers(n int) CampaignOption {
	return func(c *Campaign) { c.Workers = n }
}

// WithoutArenaReuse makes every campaign run build its world from
// scratch instead of drawing a reusable arena from the per-worker pool.
// Results are identical either way — arena reuse is byte-exact — so this
// is a diagnostic escape hatch and the honest baseline for the
// replicate-throughput benchmark.
func WithoutArenaReuse() CampaignOption {
	return func(c *Campaign) { c.DisableArenaReuse = true }
}

// WithStore attaches a persistent, content-addressed result store rooted
// at dir (created if needed): every completed run is written to
// <dir>/<aa>/<sha256-of-cache-key>.json via an atomic rename, and every
// run consults the store before simulating. The store is what makes
// sweeps resumable — a killed campaign restarted against the same
// directory re-runs only the cells that never completed — and shareable:
// campaigns in different processes pointed at the same directory see
// each other's results. Stored envelopes are schema-versioned
// (ResultSchemaVersion); entries written by an incompatible binary and
// corrupt files of any kind read as cache misses, never errors. Open
// errors surface from the campaign's first run.
func WithStore(dir string) CampaignOption {
	return func(c *Campaign) { c.storeDir = dir }
}
