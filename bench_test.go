package manetsim_test

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration regenerates the complete experiment at a reduced scale
// (same 11-batch structure, fewer packets) with a fresh harness, and
// reports the headline quantity of the figure via b.ReportMetric so the
// paper-vs-measured comparison is visible straight from the bench output:
//
//	go test -bench=. -benchmem
//
// Full-fidelity regeneration (110000 packets, the paper's methodology) is
// `go run ./cmd/paperexp -all -scale paper`.

import (
	"context"
	"testing"

	"manetsim"
	"manetsim/internal/exp"
)

// benchFigure regenerates experiment id once per iteration and lets report
// extract headline metrics from the final figure.
func benchFigure(b *testing.B, id string, report func(b *testing.B, f *exp.Figure)) {
	b.Helper()
	runner, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var fig *exp.Figure
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness(exp.BenchScale)
		var err error
		fig, err = runner(h)
		if err != nil {
			b.Fatal(err)
		}
	}
	if report != nil && fig != nil {
		report(b, fig)
	}
}

// point fetches series s at x (0 when absent) from a figure.
func point(f *exp.Figure, series, x string) float64 {
	for _, s := range f.Series {
		if s.Name != series {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y
			}
		}
	}
	return 0
}

func BenchmarkTable2PropagationDelay(b *testing.B) {
	benchFigure(b, "table2", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "4-hop delay", "2"), "ms@2Mbps")
		b.ReportMetric(point(f, "4-hop delay", "5.5"), "ms@5.5Mbps")
		b.ReportMetric(point(f, "4-hop delay", "11"), "ms@11Mbps")
	})
}

func BenchmarkFig2VegasAlphaGoodput(b *testing.B) {
	benchFigure(b, "fig2", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas α=2", "8"), "kbps_a2_h8")
		b.ReportMetric(point(f, "Vegas α=4", "8"), "kbps_a4_h8")
	})
}

func BenchmarkFig3VegasAlphaWindow(b *testing.B) {
	benchFigure(b, "fig3", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas α=2", "8"), "win_a2_h8")
		b.ReportMetric(point(f, "Vegas α=4", "8"), "win_a4_h8")
	})
}

func BenchmarkFig4VegasBandwidths(b *testing.B) {
	benchFigure(b, "fig4", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas α=2", "2"), "kbps@2M")
		b.ReportMetric(point(f, "Vegas α=2", "11"), "kbps@11M")
	})
}

func BenchmarkFig5VegasThinning(b *testing.B) {
	benchFigure(b, "fig5", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas α=2", "8"), "kbps_plain_h8")
		b.ReportMetric(point(f, "Vegas α=2 Thin", "8"), "kbps_thin_h8")
	})
}

func BenchmarkFig6ChainGoodput(b *testing.B) {
	benchFigure(b, "fig6", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "8"), "kbps_vegas_h8")
		b.ReportMetric(point(f, "NewReno", "8"), "kbps_newreno_h8")
		b.ReportMetric(point(f, "Paced UDP", "8"), "kbps_udp_h8")
	})
}

func BenchmarkFig7ChainRetransmissions(b *testing.B) {
	benchFigure(b, "fig7", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "8"), "rtx_vegas_h8")
		b.ReportMetric(point(f, "NewReno", "8"), "rtx_newreno_h8")
	})
}

func BenchmarkFig8ChainWindow(b *testing.B) {
	benchFigure(b, "fig8", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "8"), "win_vegas_h8")
		b.ReportMetric(point(f, "NewReno", "8"), "win_newreno_h8")
	})
}

func BenchmarkFig9FalseRouteFailures(b *testing.B) {
	benchFigure(b, "fig9", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "8"), "frf_vegas_h8")
		b.ReportMetric(point(f, "NewReno", "8"), "frf_newreno_h8")
	})
}

func BenchmarkFig10PacedUDPSweep(b *testing.B) {
	benchFigure(b, "fig10", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Paced UDP", "28"), "kbps@28ms")
		b.ReportMetric(point(f, "Paced UDP", "36"), "kbps@36ms")
		b.ReportMetric(point(f, "Paced UDP", "44"), "kbps@44ms")
	})
}

func BenchmarkFig11SevenHopGoodput(b *testing.B) {
	benchFigure(b, "fig11", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "11"), "kbps_vegas@11M")
		b.ReportMetric(point(f, "Vegas Thin", "11"), "kbps_vthin@11M")
		b.ReportMetric(point(f, "NewReno OptWin", "11"), "kbps_optwin@11M")
	})
}

func BenchmarkFig12SevenHopRetransmissions(b *testing.B) {
	benchFigure(b, "fig12", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "2"), "rtx_vegas@2M")
		b.ReportMetric(point(f, "NewReno", "2"), "rtx_newreno@2M")
	})
}

func BenchmarkFig13SevenHopWindow(b *testing.B) {
	benchFigure(b, "fig13", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "2"), "win_vegas@2M")
		b.ReportMetric(point(f, "NewReno", "2"), "win_newreno@2M")
	})
}

func BenchmarkFig14LinkLayerDrops(b *testing.B) {
	benchFigure(b, "fig14", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "2"), "p_vegas@2M")
		b.ReportMetric(point(f, "NewReno", "2"), "p_newreno@2M")
	})
}

func BenchmarkFig16GridAggregateGoodput(b *testing.B) {
	benchFigure(b, "fig16", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "11"), "kbps_vegas@11M")
		b.ReportMetric(point(f, "NewReno", "11"), "kbps_newreno@11M")
	})
}

func BenchmarkFig17GridPerFlow(b *testing.B) {
	benchFigure(b, "fig17", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "Aggregate"), "kbps_vegas_agg")
		b.ReportMetric(point(f, "NewReno", "Aggregate"), "kbps_newreno_agg")
	})
}

func BenchmarkTable3GridFairness(b *testing.B) {
	benchFigure(b, "table3", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "11"), "jain_vegas@11M")
		b.ReportMetric(point(f, "NewReno", "11"), "jain_newreno@11M")
		b.ReportMetric(point(f, "Vegas Thin", "11"), "jain_vthin@11M")
	})
}

func BenchmarkFig18RandomAggregateGoodput(b *testing.B) {
	benchFigure(b, "fig18", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "11"), "kbps_vegas@11M")
		b.ReportMetric(point(f, "NewReno", "11"), "kbps_newreno@11M")
	})
}

func BenchmarkFig19RandomPerFlow(b *testing.B) {
	benchFigure(b, "fig19", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "Aggregate"), "kbps_vegas_agg")
		b.ReportMetric(point(f, "NewReno", "Aggregate"), "kbps_newreno_agg")
	})
}

func BenchmarkTable4RandomFairness(b *testing.B) {
	benchFigure(b, "table4", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "11"), "jain_vegas@11M")
		b.ReportMetric(point(f, "NewReno", "11"), "jain_newreno@11M")
	})
}

func BenchmarkEnergyPerMegabyte(b *testing.B) {
	benchFigure(b, "energy", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "2"), "JperMB_vegas@2M")
		b.ReportMetric(point(f, "NewReno", "2"), "JperMB_newreno@2M")
	})
}

// BenchmarkAblationNoCapture quantifies the PHY capture decision from
// DESIGN.md §5: without capture, hidden-terminal interference kills
// in-progress frames and goodput collapses.
func BenchmarkAblationNoCapture(b *testing.B) {
	benchFigure(b, "ablation", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas", "default (capture+AODV)"), "kbps_default")
		b.ReportMetric(point(f, "Vegas", "no capture"), "kbps_nocapture")
		b.ReportMetric(point(f, "Vegas", "static routes"), "kbps_static")
	})
}

// BenchmarkAblationStaticRoutes isolates AODV's false-route-failure cost
// against precomputed static routes (same figure, NewReno series).
func BenchmarkAblationStaticRoutes(b *testing.B) {
	benchFigure(b, "ablation", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "NewReno", "default (capture+AODV)"), "kbps_aodv")
		b.ReportMetric(point(f, "NewReno", "static routes"), "kbps_static")
	})
}

// BenchmarkSingleRunChain8Vegas measures raw simulator throughput for one
// scenario (events, allocations) rather than a whole figure.
func BenchmarkSingleRunChain8Vegas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := manetsim.Run(context.Background(), manetsim.Chain(8),
			manetsim.WithBandwidth(manetsim.Rate2Mbps),
			manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}),
			manetsim.WithSeed(int64(i+1)),
			manetsim.WithPackets(2200, 200),
		)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AggGoodput.Mean/1e3, "kbit/s")
			b.ReportMetric(float64(res.Delivered), "packets")
		}
	}
}

// BenchmarkOptimalWindowSweep regenerates the extension experiment
// validating the "optimal window ~ h/4" claim.
func BenchmarkOptimalWindowSweep(b *testing.B) {
	benchFigure(b, "optwindow", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "NewReno MaxWin", "2"), "kbps_w2")
		b.ReportMetric(point(f, "NewReno MaxWin", "3"), "kbps_w3")
		b.ReportMetric(point(f, "NewReno MaxWin", "16"), "kbps_w16")
	})
}

// BenchmarkCoexistence regenerates the protocol-coexistence extension.
func BenchmarkCoexistence(b *testing.B) {
	benchFigure(b, "coexist", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Vegas group", "11"), "kbps_vegas_grp")
		b.ReportMetric(point(f, "NewReno group", "11"), "kbps_newreno_grp")
	})
}

// BenchmarkTCPVariants regenerates the Tahoe/Reno/NewReno/Vegas chain
// comparison from the related-work reproduction.
func BenchmarkTCPVariants(b *testing.B) {
	benchFigure(b, "tcpvariants", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "Tahoe", "7"), "kbps_tahoe_h7")
		b.ReportMetric(point(f, "Reno", "7"), "kbps_reno_h7")
		b.ReportMetric(point(f, "NewReno", "7"), "kbps_newreno_h7")
		b.ReportMetric(point(f, "Vegas", "7"), "kbps_vegas_h7")
	})
}

// BenchmarkLatency regenerates the end-to-end delay extension experiment.
func BenchmarkLatency(b *testing.B) {
	benchFigure(b, "latency", func(b *testing.B, f *exp.Figure) {
		b.ReportMetric(point(f, "mean", "Vegas"), "ms_vegas_mean")
		b.ReportMetric(point(f, "mean", "NewReno"), "ms_newreno_mean")
	})
}
