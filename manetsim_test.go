package manetsim

import (
	"testing"
	"time"
)

func TestPublicAPIRun(t *testing.T) {
	res, err := Run(Config{
		Topology:     Chain(3),
		Bandwidth:    Rate2Mbps,
		Transport:    TransportSpec{Protocol: Vegas},
		Seed:         1,
		TotalPackets: 1100,
		BatchPackets: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < 1100 {
		t.Errorf("delivered = %d, want >= 1100", res.Delivered)
	}
	if res.AggGoodput.Mean <= 0 {
		t.Error("zero goodput through the public API")
	}
}

func TestPublicAPITable2(t *testing.T) {
	cases := []struct {
		rate   Rate
		wantMS int64
	}{
		{Rate2Mbps, 29},
		{Rate5_5Mbps, 12},
		{Rate11Mbps, 8},
	}
	for _, c := range cases {
		got := FourHopPropagationDelay(c.rate).Round(time.Millisecond).Milliseconds()
		if got != c.wantMS {
			t.Errorf("FourHopPropagationDelay(%v) = %d ms, want %d", c.rate, got, c.wantMS)
		}
	}
}

func TestPublicAPIExchangeTime(t *testing.T) {
	e2 := ExchangeTime(Rate2Mbps, 1500)
	e11 := ExchangeTime(Rate11Mbps, 1500)
	if e2 <= e11 {
		t.Errorf("exchange time at 2M (%v) must exceed 11M (%v)", e2, e11)
	}
	if e2 != FourHopPropagationDelay(Rate2Mbps)/4 {
		t.Errorf("ExchangeTime inconsistent with FourHopPropagationDelay")
	}
}

func TestPublicAPITopologies(t *testing.T) {
	for name, topo := range map[string]Topology{
		"chain":  Chain(2),
		"grid":   Grid(),
		"random": Random(),
	} {
		cfg := Config{
			Topology:     topo,
			Transport:    TransportSpec{Protocol: NewReno},
			Seed:         3,
			TotalPackets: 550,
			BatchPackets: 50,
			MaxSimTime:   30 * time.Minute,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
	}
}

func TestPublicAPITransportName(t *testing.T) {
	cases := []struct {
		spec TransportSpec
		want string
	}{
		{TransportSpec{Protocol: Vegas}, "Vegas"},
		{TransportSpec{Protocol: Vegas, Alpha: 3}, "Vegas(α=3)"},
		{TransportSpec{Protocol: NewReno, AckThinning: true}, "NewReno+Thin"},
		{TransportSpec{Protocol: NewReno, MaxWindow: 3}, "NewReno(MaxWin=3)"},
		{TransportSpec{Protocol: PacedUDP}, "PacedUDP"},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
