package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DurationHistogram collects duration samples and answers quantile
// queries. It keeps exact samples up to a cap and then switches to
// reservoir sampling, so memory stays bounded on multi-million-packet
// runs while quantiles stay statistically sound. The zero value is not
// ready; create with NewDurationHistogram.
type DurationHistogram struct {
	samples []time.Duration
	cap     int   //manetsim:resetsafe reservoir capacity is a construction parameter
	n       int64 // total observations
	sum     time.Duration
	max     time.Duration
	rng     func(int64) int64 //manetsim:resetsafe injected rng binding stays valid across a scheduler reseed
}

// NewDurationHistogram creates a histogram keeping at most cap samples
// (reservoir). rng must return a uniform value in [0, n); pass the
// scenario RNG's Int63n for deterministic runs.
func NewDurationHistogram(cap int, rng func(int64) int64) *DurationHistogram {
	if cap <= 0 {
		panic("stats: histogram cap must be positive")
	}
	if rng == nil {
		panic("stats: histogram needs an rng")
	}
	return &DurationHistogram{cap: cap, rng: rng}
}

// Reset forgets all observations while keeping the sample buffer and the
// rng binding (which stays valid across a scheduler reseed).
func (h *DurationHistogram) Reset() {
	h.samples = h.samples[:0]
	h.n = 0
	h.sum = 0
	h.max = 0
}

// Add records one sample.
func (h *DurationHistogram) Add(d time.Duration) {
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir: replace a random slot with probability cap/n.
	if idx := h.rng(h.n); idx < int64(h.cap) {
		h.samples[idx] = d
	}
}

// N returns the number of observations.
func (h *DurationHistogram) N() int64 { return h.n }

// Mean returns the exact mean over all observations.
func (h *DurationHistogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max returns the exact maximum.
func (h *DurationHistogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the kept
// samples.
func (h *DurationHistogram) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// String summarizes the distribution.
func (h *DurationHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		h.n, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}
