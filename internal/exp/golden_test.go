package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"print current figure digests instead of comparing (paste into goldenFigureHashes)")

// goldenFigureHashes pins the byte-exact output of the experiments that
// exercise the widest slice of the stack (static chains for tcpvariants,
// random-waypoint AODV repair for mobility) at BenchScale. The hashes were
// captured before the zero-allocation kernel rewrite; any change here means
// a run is no longer reproducing the same simulation, which is a
// correctness regression, not a formatting nit.
//
// Regenerate (only after an intentional behavior change) with:
//
//	go test ./internal/exp -run TestGoldenFigures -v -update-golden
var goldenFigureHashes = map[string]string{
	"tcpvariants": "7827fcfcc0ac55c8ae7554b1ce38c663b485f906edf484efddab4f3f1cc767d0",
	"mobility":    "abde1198f1c7fbee787875e619e5e699221ce468e690fa2ebc0b603d9f607a0f",
	"transports":  "7cffe7a9699cb8430b54516307f300064a2645146de092400e73df000705de24",
	// ccextensions pins the Westwood+ and adaptive-pacing variants (and
	// name-based registry resolution) from the moment they shipped.
	"ccextensions": "4909cbde9d1a9dbdad42436825b237de9b799a2d7eab2bdf9f006dd9383dd540",
	// lossy pins the link-impairment subsystem: the seeded per-link RNG
	// streams, the uniform loss model and the Reno/Westwood+ separation
	// under random loss, from the moment they shipped.
	"lossy": "865f415ac177f76413017ba9d049ca31b677afd73d2d537f4b93bd68415d98ec",
	// chaos pins the fault-injection subsystem: scheduled node-crash,
	// blackout and partition transitions, the resilience metrics, and
	// the byte-determinism of faulted runs, from the moment they shipped.
	"chaos": "78ac74fef6d3361a8f84a006eefd0d92ce2dca453f4885ec3f4f5091f8d73fa2",
}

// figureDigest canonicalizes a figure through JSON (struct-ordered, no
// maps) and hashes it.
func figureDigest(t *testing.T, id string) string {
	t.Helper()
	runner, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	fig, err := runner(NewHarness(BenchScale))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	b, err := json.Marshal(fig)
	if err != nil {
		t.Fatalf("%s: encode: %v", id, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenFigures asserts fixed-seed runs stay byte-identical across
// kernel changes: same batches, same goodput, same route-failure counts,
// for both the static and the mobile experiment.
func TestGoldenFigures(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The committed hashes are amd64 floats; other architectures may
		// legally fuse multiply-adds and shift the last mantissa bits.
		t.Skipf("golden hashes are pinned for amd64, running on %s", runtime.GOARCH)
	}
	for id, want := range goldenFigureHashes {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			got := figureDigest(t, id)
			if *updateGolden {
				t.Logf("%q: %q,", id, got)
				return
			}
			if got != want {
				t.Errorf("%s digest = %s, want %s (fixed-seed output changed)", id, got, want)
			}
		})
	}
}
