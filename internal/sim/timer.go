package sim

// Timer is a restartable one-shot timer bound to a scheduler, mirroring the
// timers protocol stacks need (retransmission timers, ACK-regeneration
// timers, route expiry). The zero value is unusable; create with NewTimer.
//
// Unlike scheduling raw events, a Timer guarantees at most one pending
// expiry at a time: rescheduling implicitly cancels the previous one.
// Arming a timer does not allocate: the expiry event carries the timer
// itself as the callback argument.
type Timer struct {
	sched    *Scheduler
	fn       func() //manetsim:resetsafe Reset means rearm; the callback is bound for the timer's lifetime
	ref      EventRef
	deadline Time
}

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	if sched == nil {
		panic("sim: NewTimer with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{sched: sched, fn: fn}
}

// timerFire is the shared expiry trampoline: clear the pending ref before
// running the callback so Reset/Stop inside it see an idle timer.
func timerFire(arg any) {
	t := arg.(*Timer)
	t.ref = EventRef{}
	t.fn()
}

// Reset (re)schedules the timer to fire d from now, cancelling any pending
// expiry.
func (t *Timer) Reset(d Time) {
	t.ResetAt(t.sched.Now() + d)
}

// ResetAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ref = t.sched.AtFunc(at, timerFire, t)
	t.deadline = at
}

// Stop cancels a pending expiry. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	if t.ref.e != nil {
		t.sched.Cancel(t.ref)
		t.ref = EventRef{}
	}
}

// Pending reports whether an expiry is scheduled. The check is
// generation-validated, so a timer whose event was swept away by a
// scheduler Reset correctly reports idle.
func (t *Timer) Pending() bool { return t.ref.Pending() }

// Deadline returns the time of the pending expiry; it is only meaningful
// when Pending reports true.
func (t *Timer) Deadline() Time {
	if !t.ref.Pending() {
		return 0
	}
	return t.deadline
}
