package perf

import "testing"

// The wrappers keep the suite runnable as ordinary go-test benchmarks:
//
//	go test -bench=. -benchmem ./internal/perf
//
// The bodies live in perf.go so `manetsim bench` runs the identical code.

func BenchmarkScheduleDispatch(b *testing.B)     { BenchScheduleDispatch(b) }
func BenchmarkScheduleDispatchDeep(b *testing.B) { BenchScheduleDispatchDeep(b) }
func BenchmarkScheduleCancel(b *testing.B)       { BenchScheduleCancel(b) }
func BenchmarkTimerReset(b *testing.B)           { BenchTimerReset(b) }
func BenchmarkMACContention(b *testing.B)        { BenchMACContention(b) }
func BenchmarkChannelNeighborQuery(b *testing.B) { BenchChannelNeighborQuery(b) }
func BenchmarkChannelNeighborQuerySparse(b *testing.B) {
	BenchChannelNeighborQuerySparse(b)
}
func BenchmarkChannelDeliverImpaired(b *testing.B) { BenchChannelDeliverImpaired(b) }
func BenchmarkEndToEndBenchScale(b *testing.B)     { BenchEndToEndBenchScale(b) }
func BenchmarkRunWithFaults(b *testing.B)          { BenchRunWithFaults(b) }
func BenchmarkCampaignReplicates(b *testing.B)     { BenchCampaignReplicates(b) }
func BenchmarkCampaignReplicatesRebuild(b *testing.B) {
	BenchCampaignReplicatesRebuild(b)
}

// TestSuiteNamesMatchWrappers guards the Suite()/wrapper pairing: a case
// added to one side but not the other would silently vanish from either
// the CI run or the snapshot.
func TestSuiteNamesMatchWrappers(t *testing.T) {
	want := map[string]bool{
		"BenchmarkScheduleDispatch":           true,
		"BenchmarkScheduleDispatchDeep":       true,
		"BenchmarkScheduleCancel":             true,
		"BenchmarkTimerReset":                 true,
		"BenchmarkMACContention":              true,
		"BenchmarkChannelNeighborQuery":       true,
		"BenchmarkChannelNeighborQuerySparse": true,
		"BenchmarkChannelDeliverImpaired":     true,
		"BenchmarkEndToEndBenchScale":         true,
		"BenchmarkRunWithFaults":              true,
		"BenchmarkCampaignReplicates":         true,
		"BenchmarkCampaignReplicatesRebuild":  true,
	}
	got := Suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d cases, wrappers cover %d", len(got), len(want))
	}
	for _, c := range got {
		if !want[c.Name] {
			t.Errorf("suite case %q has no go-test wrapper", c.Name)
		}
	}
}

// TestChannelDeliverImpairedZeroAlloc is the hot-path gate of the
// link-impairment subsystem: after warm-up (per-link states and signal
// pools populated), a frame delivery through an impaired channel —
// loss draws, jitter draws, capture arbitration — must not allocate.
func TestChannelDeliverImpairedZeroAlloc(t *testing.T) {
	sched, tx, _ := newImpairedPair()
	if n := testing.AllocsPerRun(200, func() {
		tx.Transmit("frame", 100e3)
		sched.Run()
	}); n != 0 {
		t.Errorf("impaired delivery allocates %.1f times per frame, want 0", n)
	}
}

// TestChannelDeliverFaultedZeroAlloc extends the gate to the fault
// plane: with an active blackout installed on the channel, the
// steady-state delivery path — severance checks on every copy plus the
// usual impairment draws — must still not allocate.
func TestChannelDeliverFaultedZeroAlloc(t *testing.T) {
	sched, tx, sink, plane := newFaultedPair()
	if plane.Quiet() {
		t.Fatal("fault plane inactive; the gate would only measure the quiet path")
	}
	before := sink.rx + sink.corrupted
	if n := testing.AllocsPerRun(200, func() {
		tx.Transmit("frame", 100e3)
		sched.Run()
	}); n != 0 {
		t.Errorf("faulted delivery allocates %.1f times per frame, want 0", n)
	}
	if sink.rx+sink.corrupted == before {
		t.Fatal("nothing reached the unsevered receiver")
	}
}
