module manetsim

go 1.24
