package analysis

import (
	"go/ast"
	"go/types"
)

// allocatingFmt are the fmt functions that build a string (or error) on
// every call; each one allocates even when the result is discarded.
var allocatingFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// HotPathAlloc enforces the 0-alloc steady-state contract in two places:
//
//  1. Functions marked //manetsim:hotpath may not contain closure
//     literals, allocating fmt calls (Sprintf and friends) or method-value
//     captures — each compiles to a per-call heap allocation.
//  2. Closures must not be passed to scheduler APIs that have closure-free
//     counterparts: Scheduler.At/After take a func() that captures its
//     environment, while AtFunc/AfterFunc take a plain function plus one
//     argument and allocate nothing. One-time setup code that would need a
//     multi-field capture struct anyway can annotate the call with
//     //manetsim:allow hotpathalloc.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid closures, fmt.Sprintf and method values in //manetsim:hotpath functions " +
		"and closure arguments to Scheduler.At/After (use AtFunc/AfterFunc)",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.HotPath(fn) {
				checkHotFunc(pass, fn)
			}
			checkSchedulerClosures(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Selector expressions that are the operand of a call are ordinary
	// method calls, not method values; fmt calls that feed panic directly
	// only execute on the (fatal) violation path and cost nothing in
	// steady state.
	called := map[ast.Expr]bool{}
	panicArgs := map[ast.Expr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		called[ast.Unparen(call.Fun)] = true
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args {
					panicArgs[ast.Unparen(arg)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if captures(info, v) {
				pass.Reportf(v.Pos(), "capturing closure in hot-path function %s allocates per call; hoist it to a package-level func with an argument", fn.Name.Name)
				return false
			}
			// Capture-free literals compile to a static func value.
			return true
		case *ast.CallExpr:
			if f := funcObj(info, v); f != nil && pkgPathOf(f) == "fmt" && allocatingFmt[f.Name()] && !panicArgs[v] {
				pass.Reportf(v.Pos(), "fmt.%s in hot-path function %s allocates; format off the hot path", f.Name(), fn.Name.Name)
			}
		case *ast.SelectorExpr:
			if called[v] {
				return true
			}
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(v.Pos(), "method value %s.%s in hot-path function %s allocates a bound-method closure; use a package-level trampoline func", exprString(pass.Fset, v.X), v.Sel.Name, fn.Name.Name)
			}
		}
		return true
	})
}

// captures reports whether a func literal references any variable declared
// outside itself (including the enclosing receiver). Capture-free literals
// do not allocate: the compiler emits a static closure value.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars are not captures; neither is anything
		// declared inside the literal itself.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkSchedulerClosures flags func literals handed to Scheduler.At/After
// anywhere in simulation code, not just marked functions: the closure-free
// AtFunc/AfterFunc counterparts exist precisely so scheduling does not
// allocate.
func checkSchedulerClosures(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(info, call)
		if f == nil || f.Signature().Recv() == nil || !isSchedulerPkg(pkgPathOf(f)) {
			return true
		}
		if f.Name() != "At" && f.Name() != "After" {
			return true
		}
		for _, arg := range call.Args {
			if _, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
				pass.Reportf(call.Pos(), "closure passed to Scheduler.%s allocates on every schedule; use %sFunc with a package-level trampoline", f.Name(), f.Name())
				break
			}
		}
		return true
	})
}
