package manetsim_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"manetsim"
)

// The quick start: one TCP Vegas flow over the paper's 7-hop chain at
// 2 Mbit/s, full paper methodology (110000 packets, batch means with 95%
// confidence intervals).
func ExampleRun() {
	res, err := manetsim.Run(context.Background(), manetsim.Chain(7),
		manetsim.WithBandwidth(manetsim.Rate2Mbps),
		manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}),
		manetsim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goodput: %.0f kbit/s ±%.0f\n", res.AggGoodput.Mean/1e3, res.AggGoodput.HalfCI/1e3)
}

// Custom topologies compose from explicit node placement and per-flow
// transports — here a relay "vee" where a Vegas and a NewReno transfer
// converge on one sink, with the NewReno flow joining two seconds late.
func ExampleNewScenario() {
	scn := manetsim.NewScenario("vee")
	left := scn.AddNode(0, 0)
	right := scn.AddNode(400, 0)
	sink := scn.AddNode(200, 100)
	scn.Add(manetsim.Flow{
		Src: left, Dst: sink,
		Transport: manetsim.TransportSpec{Protocol: manetsim.Vegas},
	})
	scn.Add(manetsim.Flow{
		Src: right, Dst: sink,
		Transport: manetsim.TransportSpec{Protocol: manetsim.NewReno},
		Start:     2 * time.Second,
	})

	res, err := manetsim.Run(context.Background(), scn,
		manetsim.WithSeed(1),
		manetsim.WithPackets(11000, 1000))
	if err != nil {
		log.Fatal(err)
	}
	for i, est := range res.PerFlowGood {
		fmt.Printf("flow %d: %.0f kbit/s\n", i, est.Mean/1e3)
	}
}

// An Observer streams events out of a running simulation: batch closes,
// classified route failures, transport retransmissions and progress.
func ExampleWithObserver() {
	res, err := manetsim.Run(context.Background(), manetsim.Chain(4),
		manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.NewReno}),
		manetsim.WithPackets(11000, 1000),
		manetsim.WithObserver(manetsim.ObserverFuncs{
			Progress: func(delivered, total int64, simTime time.Duration) {
				fmt.Printf("%d/%d packets at t=%v\n", delivered, total, simTime.Round(time.Second))
			},
			RouteFailure: func(node manetsim.NodeID, falseFailure bool) {
				fmt.Printf("route failure at node %d (false=%v)\n", node, falseFailure)
			},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Delivered, "packets delivered")
}

// A Campaign runs declarative parameter grids — here protocol x bandwidth
// over the paper's grid topology, replicated over three seeds — with a
// shared single-flight cache, bounded parallelism and across-seed
// confidence intervals.
func ExampleCampaign_Sweep() {
	campaign := manetsim.NewCampaign(manetsim.QuickScale)
	cells, err := campaign.Sweep(context.Background(), manetsim.Sweep{
		Scenarios: []*manetsim.Scenario{manetsim.Grid()},
		Transports: []manetsim.TransportSpec{
			{Protocol: manetsim.Vegas},
			{Protocol: manetsim.Vegas, AckThinning: true},
			{Protocol: manetsim.NewReno},
		},
		Rates: []manetsim.Rate{manetsim.Rate2Mbps, manetsim.Rate11Mbps},
		Seeds: []int64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, cell := range cells {
		fmt.Printf("%s @ %g Mbit/s: %.0f kbit/s ±%.0f (Jain %.2f)\n",
			cell.Transport.Label(), float64(cell.Rate)/1e6,
			cell.Goodput.Mean/1e3, cell.Goodput.HalfCI/1e3, cell.Jain.Mean)
	}
}

// A World is a reusable run arena: it keeps everything a run allocates —
// scheduler heap, channel, MAC and routing stacks, transport engines — and
// rewinds it in place for the next run, so replicate loops amortize world
// construction. Results are byte-identical to fresh runs: the second run
// of the same config on the reused arena reproduces the first exactly.
func ExampleWorld() {
	w := manetsim.NewWorld()
	cfg := manetsim.Config{
		Scenario:     manetsim.Chain(4),
		Transport:    manetsim.TransportSpec{Protocol: manetsim.Vegas},
		Seed:         1,
		TotalPackets: 2200,
		BatchPackets: 200,
	}
	first, err := w.Run(cfg) // builds the world
	if err != nil {
		log.Fatal(err)
	}
	second, err := w.Run(cfg) // rewinds and reruns it
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(first.AggGoodput.Mean == second.AggGoodput.Mean)
	// Output: true
}

// Campaign pools one arena per worker automatically, so a seed-replicate
// sweep reuses each worker's world instead of rebuilding it for every run.
// Nothing to configure — DisableArenaReuse exists to force fresh builds,
// and results are identical either way.
func ExampleCampaign_arenaReuse() {
	campaign := manetsim.NewCampaign(manetsim.QuickScale)
	var cfgs []manetsim.Config
	for seed := int64(1); seed <= 8; seed++ {
		cfgs = append(cfgs, manetsim.Config{
			Scenario:  manetsim.Chain(3),
			Transport: manetsim.TransportSpec{Protocol: manetsim.Vegas},
			Seed:      seed,
		})
	}
	results, err := campaign.RunAll(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d replicates, each on a per-worker reusable arena\n", len(results))
	// Output: 8 replicates, each on a per-worker reusable arena
}

// aimdHalf is a deliberately tiny congestion control: additive increase,
// halve on any loss signal. Embedding CCBase supplies Init/OnStart/
// OnRTTSample/Window; the strategy drives the shared engine — which owns
// sequence accounting, the RTO machinery and retransmission — through its
// exported methods.
type aimdHalf struct {
	manetsim.CCBase
}

func (c *aimdHalf) OnAck(a manetsim.Ack) {
	e := c.Engine()
	if !a.NoEcho {
		e.SampleRTT(e.Now() - a.Echo)
	}
	e.AdvanceAck(a.Seq)
	e.SetWindow(e.Window() + 1/e.Window()) // additive increase
}

func (c *aimdHalf) OnDupAck(manetsim.Ack) {
	e := c.Engine()
	e.SetWindow(e.Window() / 2)
	e.Retransmit(e.AckNext())
}

func (c *aimdHalf) OnTimeout() {
	e := c.Engine()
	e.SetWindow(e.Window() / 2)
	e.BackoffRTO()
	e.RestartRTOTimer()
}

// RegisterTransport makes a custom congestion-control strategy selectable
// by name everywhere a TransportSpec goes: Run options, per-flow specs,
// Campaign sweeps and cmd/manetsim -protocol.
func ExampleRegisterTransport() {
	manetsim.RegisterTransport("aimd-half", func(manetsim.TransportSpec) (manetsim.CongestionControl, error) {
		return &aimdHalf{}, nil
	})

	res, err := manetsim.Run(context.Background(), manetsim.Chain(3),
		manetsim.WithTransport(manetsim.TransportSpec{Name: "aimd-half"}),
		manetsim.WithSeed(1),
		manetsim.WithPackets(1100, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aimd-half delivered %d packets\n", res.Delivered)
	// Output: aimd-half delivered 1100 packets
}

// Cancellation propagates into the event loop: a deadline or cancel stops
// a run promptly with ctx.Err().
func ExampleRun_cancellation() {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := manetsim.Run(ctx, manetsim.Random(),
		manetsim.WithTransport(manetsim.TransportSpec{Protocol: manetsim.Vegas}))
	fmt.Println(err) // context.DeadlineExceeded once the budget is hit
}

// A Campaign with a persistent result store (WithStore) survives its
// process: every completed run lands on disk under its content address,
// so a killed sweep restarted against the same directory — here, a
// second Campaign standing in for the restarted process — re-runs
// nothing and serves every completed cell from the store.
func ExampleCampaign_resume() {
	dir, err := os.MkdirTemp("", "manetsim-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sweep := manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(2)},
		Transports: []manetsim.TransportSpec{{Protocol: manetsim.Vegas}, {Protocol: manetsim.NewReno}},
		Seeds:      []int64{1, 2},
		Base:       manetsim.Config{TotalPackets: 550, BatchPackets: 50},
	}

	first := manetsim.NewCampaign(manetsim.QuickScale, manetsim.WithStore(dir))
	if _, err := first.Sweep(context.Background(), sweep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first sweep:   %d simulations executed\n", first.Executed())

	resumed := manetsim.NewCampaign(manetsim.QuickScale, manetsim.WithStore(dir))
	cells, err := resumed.Sweep(context.Background(), sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed sweep: %d simulations executed, %d cells served from the store\n",
		resumed.Executed(), len(cells))
	// Output:
	// first sweep:   4 simulations executed
	// resumed sweep: 0 simulations executed, 2 cells served from the store
}

// A LinkModelSpec installs per-link impairments — here bursty
// Gilbert-Elliott loss with delay jitter on every link of a 3-hop
// chain. Loss is injected below the MAC's ARQ, so TCP only sees the
// residue the retry limit lets through; impaired runs stay
// byte-identical per seed.
func ExampleScenario_linkModel() {
	ge := manetsim.GilbertElliottModel(0.02, 0.3, 0.5)
	ge.Jitter = 20 * time.Microsecond

	res, err := manetsim.Run(context.Background(), manetsim.Chain(3),
		manetsim.WithTransport(manetsim.TransportSpec{Name: "newreno"}),
		manetsim.WithLinkModel(ge),
		manetsim.WithSeed(1),
		manetsim.WithPackets(1100, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d packets, impaired %t\n", res.Delivered, res.ImpairedFrames > 0)
	// Output: delivered 1100 packets, impaired true
}

// Fault injection: the mid-chain relay of a 4-hop chain crashes two
// seconds in and restarts two seconds later, severing the flow's only
// path. The run's FaultReport measures the outage — every packet still
// arrives once the route is re-discovered, and the resilience metrics
// separate goodput during the outage from steady state.
func ExampleScenario_faults() {
	crash := manetsim.CrashFault(2, 2*time.Second, 2*time.Second)

	res, err := manetsim.Run(context.Background(), manetsim.Chain(4),
		manetsim.WithTransport(manetsim.TransportSpec{Name: "newreno"}),
		manetsim.WithFaults(crash),
		manetsim.WithSeed(1),
		manetsim.WithPackets(550, 50))
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Faults
	o := rep.Outages[0]
	fmt.Printf("fault: %s\n", o.Fault)
	fmt.Printf("delivered %d packets, %v in outage, recovered after heal: %t\n",
		res.Delivered, rep.TimeInOutage, o.Recovered && o.RecoveredAfterHeal)
	// Output:
	// fault: crash(node=2)@2s+2s
	// delivered 550 packets, 2s in outage, recovered after heal: true
}
