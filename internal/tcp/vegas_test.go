package tcp

import (
	"testing"
	"time"
)

func TestVegasStabilizesNearBDPPlusAlpha(t *testing.T) {
	// BDP = RTT/service = 20ms/2ms = 10 packets. Vegas with α=β=2 should
	// settle near BDP+α and stay there, instead of probing to Wmax.
	pp := newPipe(1, 10*time.Millisecond, 2*time.Millisecond, 0)
	s := pp.connectVegas(Config{Alpha: 2, Beta: 2, Gamma: 2})
	pp.run(10 * time.Second)
	w := s.Window()
	if w < 8 || w > 18 {
		t.Errorf("steady-state cwnd = %v, want near BDP+α (10..14-ish)", w)
	}
	if got := s.Stats().Timeouts; got != 0 {
		t.Errorf("timeouts = %d, want 0", got)
	}
	if got := s.Stats().Retransmits; got != 0 {
		t.Errorf("retransmits = %d, want 0 (proactive control avoids losses)", got)
	}
}

func TestVegasKeepsWindowFarBelowNewReno(t *testing.T) {
	// Same path for both, with a buffer deep enough (30 > α) for a
	// standing queue to form: NewReno fills buffer until loss and
	// sawtooths; Vegas settles at BDP+α with no losses at all. This is
	// the essence of the paper's Figures 7 and 8.
	run := func(vegas bool) (avgW float64, retransmits uint64) {
		pp := newPipe(7, 10*time.Millisecond, 1*time.Millisecond, 30)
		var s Sender
		if vegas {
			s = pp.connectVegas(Config{})
		} else {
			s = pp.connectNewReno(Config{})
		}
		var sum float64
		var samples int
		var probe func()
		probe = func() {
			if pp.sched.Now() > 2*time.Second { // skip startup transient
				sum += s.Window()
				samples++
			}
			pp.sched.After(10*time.Millisecond, probe)
		}
		pp.sched.At(0, probe)
		pp.run(8 * time.Second)
		return sum / float64(samples), s.Stats().Retransmits
	}
	vw, vr := run(true)
	nw, nr := run(false)
	if vw >= nw {
		t.Errorf("Vegas average window %.1f >= NewReno %.1f; Vegas must be more conservative", vw, nw)
	}
	if nr == 0 {
		t.Error("NewReno produced no losses despite the finite buffer")
	}
	if vr >= nr {
		t.Errorf("Vegas retransmits %d >= NewReno %d", vr, nr)
	}
}

func TestVegasSlowStartDoublesEveryOtherRTT(t *testing.T) {
	// In early slow start, Vegas' window after k RTTs must lag NewReno's
	// (which doubles every RTT).
	pp := newPipe(1, 10*time.Millisecond, 100*time.Microsecond, 0)
	s := pp.connectVegas(Config{})
	pp.run(80 * time.Millisecond) // 4 RTTs
	// NewReno would be at ~16 after 4 clean RTTs; Vegas doubles every
	// other RTT: ~4.
	if s.Window() > 10 {
		t.Errorf("Vegas cwnd = %v after 4 RTTs, want conservative growth (<=10)", s.Window())
	}
}

func TestVegasExitsSlowStartWithoutLosses(t *testing.T) {
	// With a bottleneck creating queueing delay, diff eventually exceeds
	// gamma and Vegas leaves slow start before any loss.
	pp := newPipe(1, 10*time.Millisecond, 2*time.Millisecond, 0)
	s := pp.connectVegas(Config{})
	pp.run(5 * time.Second)
	if s.cc.slowStart {
		t.Error("still in slow start after 5s with queueing feedback")
	}
	if s.Stats().Retransmits != 0 {
		t.Errorf("retransmits = %d, want 0", s.Stats().Retransmits)
	}
}

func TestVegasRecoversSingleLossWithoutCoarseTimeout(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 1*time.Millisecond, 0)
	dropped := false
	pp.dropData = func(h *pkt2) bool {
		if h.Seq == 25 && !h.Retransmit && !dropped {
			dropped = true
			return true
		}
		return false
	}
	s := pp.connectVegas(Config{})
	pp.run(3 * time.Second)
	st := s.Stats()
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (fine-grained retransmission)", st.Timeouts)
	}
	if st.Retransmits == 0 {
		t.Error("lost packet never retransmitted")
	}
	if pp.sink.Stats().GoodputPackets < 500 {
		t.Errorf("goodput = %d, transfer stalled after loss", pp.sink.Stats().GoodputPackets)
	}
}

func TestVegasDoubleLossRecovery(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 1*time.Millisecond, 0)
	drops := map[int64]bool{30: true, 31: true}
	pp.dropData = func(h *pkt2) bool {
		if h.Retransmit {
			return false
		}
		if drops[h.Seq] {
			delete(drops, h.Seq)
			return true
		}
		return false
	}
	s := pp.connectVegas(Config{})
	pp.run(4 * time.Second)
	if got := s.Stats().Retransmits; got < 2 {
		t.Errorf("retransmits = %d, want >=2 (both holes)", got)
	}
	if pp.sink.Stats().GoodputPackets < 500 {
		t.Errorf("goodput = %d, stalled on double loss", pp.sink.Stats().GoodputPackets)
	}
}

func TestVegasCutsWindowQuarterOncePerEpisode(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 1*time.Millisecond, 0)
	var cut bool
	pp.dropData = func(h *pkt2) bool {
		if h.Seq == 40 && !h.Retransmit && !cut {
			cut = true
			return true
		}
		return false
	}
	s := pp.connectVegas(Config{})
	var before float64
	pp.sched.At(0, func() { s.Start() })
	var watch func()
	watch = func() {
		if !cut {
			before = s.Window()
		}
		pp.sched.After(time.Millisecond, watch)
	}
	pp.sched.At(0, watch)
	pp.sender = s
	pp.sched.RunUntil(4 * time.Second)
	after := s.Window()
	// Window must have been reduced from the pre-loss level but not
	// collapsed to Winit (no coarse timeout).
	if s.Stats().Timeouts != 0 {
		t.Fatalf("coarse timeout fired")
	}
	if after >= before && before > 4 {
		t.Logf("note: window recovered past pre-loss level (%v -> %v); acceptable if loss was early", before, after)
	}
	if s.Stats().Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
}

func TestVegasTimeoutResetsToWinit(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 1*time.Millisecond, 0)
	blackout := false
	pp.dropData = func(h *pkt2) bool { return blackout }
	s := pp.connectVegas(Config{})
	pp.sched.At(500*time.Millisecond, func() { blackout = true })
	pp.sched.At(2*time.Second, func() { blackout = false })
	pp.run(5 * time.Second)
	if s.Stats().Timeouts == 0 {
		t.Fatal("no coarse timeout during blackout")
	}
	if pp.sink.Stats().GoodputPackets < 300 {
		t.Errorf("goodput = %d, did not resume", pp.sink.Stats().GoodputPackets)
	}
}

func TestVegasDiffFormula(t *testing.T) {
	// White-box: with lastRTT = 2*baseRTT and W=8, diff = 8*(1/2) = 4.
	pp := newPipe(1, time.Millisecond, time.Microsecond, 0)
	s := pp.connectVegas(Config{})
	s.cc.baseRTT = 10 * time.Millisecond
	s.cc.lastRTT = 20 * time.Millisecond
	s.cwnd = 8
	diff := s.cwnd * float64(s.cc.lastRTT-s.cc.baseRTT) / float64(s.cc.lastRTT)
	if diff != 4 {
		t.Errorf("diff = %v, want 4", diff)
	}
}

func TestVegasWindowNeverBelowTwoInCongestionAvoidance(t *testing.T) {
	pp := newPipe(1, 10*time.Millisecond, 5*time.Millisecond, 0)
	s := pp.connectVegas(Config{})
	pp.run(10 * time.Second)
	if !s.cc.slowStart && s.Window() < 2 {
		t.Errorf("cwnd = %v, Vegas CA floor is 2", s.Window())
	}
}
