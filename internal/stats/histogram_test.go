package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTestHist(cap int) *DurationHistogram {
	rng := rand.New(rand.NewSource(1))
	return NewDurationHistogram(cap, rng.Int63n)
}

func TestHistogramExactSmall(t *testing.T) {
	h := newTestHist(100)
	for i := 1; i <= 10; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 10 {
		t.Errorf("N = %d, want 10", h.N())
	}
	if h.Mean() != 5500*time.Microsecond {
		t.Errorf("mean = %v, want 5.5ms", h.Mean())
	}
	if h.Max() != 10*time.Millisecond {
		t.Errorf("max = %v, want 10ms", h.Max())
	}
	if q := h.Quantile(0.5); q < 5*time.Millisecond || q > 6*time.Millisecond {
		t.Errorf("p50 = %v, want ~5-6ms", q)
	}
	if q := h.Quantile(1); q != 10*time.Millisecond {
		t.Errorf("p100 = %v, want max", q)
	}
	if q := h.Quantile(0); q != time.Millisecond {
		t.Errorf("p0 = %v, want min", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newTestHist(10)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := newTestHist(64)
	for i := 0; i < 10000; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if len(h.samples) != 64 {
		t.Errorf("kept %d samples, want 64", len(h.samples))
	}
	if h.N() != 10000 {
		t.Errorf("N = %d, want 10000 (exact count preserved)", h.N())
	}
	// The reservoir median of a uniform ramp is near the middle.
	p50 := h.Quantile(0.5)
	if p50 < 2*time.Millisecond || p50 > 8*time.Millisecond {
		t.Errorf("reservoir p50 = %v, want roughly 5ms", p50)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cap": func() { NewDurationHistogram(0, func(int64) int64 { return 0 }) },
		"nil rng":  func() { NewDurationHistogram(4, nil) },
		"bad q": func() {
			h := newTestHist(4)
			h.Add(time.Second)
			h.Quantile(1.5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuickHistogramQuantileBounds(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := newTestHist(32)
		var min, max time.Duration = 1 << 62, 0
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			h.Add(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		q := float64(qRaw%101) / 100
		v := h.Quantile(q)
		return v >= min && v <= max && h.Max() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
