// Package core is the scenario engine realizing the paper's evaluation
// methodology: it builds a topology, attaches transport flows over the full
// PHY/MAC/AODV stack, runs a steady-state simulation until a fixed number
// of packets is delivered, and derives every reported metric — goodput,
// transport retransmissions, average window, link-layer drop probability,
// false route failures, Jain's fairness index and energy — using the
// batch-means method with 95% confidence intervals.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/mobility"
	"manetsim/internal/phy"
	"manetsim/internal/pkt"
)

// Protocol selects the transport variant under test.
type Protocol int

// Transport protocols: the paper's three plus the classic Reno and Tahoe
// baselines from the related-work comparisons.
const (
	ProtoVegas Protocol = iota + 1
	ProtoNewReno
	ProtoPacedUDP
	ProtoReno
	ProtoTahoe
)

var protoNames = map[Protocol]string{
	ProtoVegas:    "Vegas",
	ProtoNewReno:  "NewReno",
	ProtoPacedUDP: "PacedUDP",
	ProtoReno:     "Reno",
	ProtoTahoe:    "Tahoe",
}

// isTCP reports whether the protocol is window-based.
func (p Protocol) isTCP() bool {
	return p == ProtoVegas || p == ProtoNewReno || p == ProtoReno || p == ProtoTahoe
}

func (p Protocol) String() string {
	if s, ok := protoNames[p]; ok {
		return s
	}
	return fmt.Sprintf("proto(%d)", int(p))
}

// TransportSpec configures the transport layer for all flows of a run.
type TransportSpec struct {
	Protocol    Protocol
	AckThinning bool // Altman-Jiménez dynamic delayed ACKs (TCP only)
	DelayedAck  bool // standard RFC 1122 delayed ACKs (TCP only)
	// Alpha is the Vegas α=β=γ threshold in packets (default 2).
	Alpha int
	// MaxWindow bounds the NewReno window ("NewReno Optimal Window";
	// paper finds MaxWin=3 optimal for the 7-hop chain). 0 = unbounded.
	MaxWindow int
	// UDPGap is the paced-UDP inter-packet interval (required for
	// ProtoPacedUDP).
	UDPGap time.Duration
}

// Name renders the spec the way the paper labels its curves.
func (t TransportSpec) Name() string {
	s := t.Protocol.String()
	if t.Protocol == ProtoVegas && t.Alpha != 0 && t.Alpha != 2 {
		s = fmt.Sprintf("%s(α=%d)", s, t.Alpha)
	}
	if t.MaxWindow > 0 {
		s = fmt.Sprintf("%s(MaxWin=%d)", s, t.MaxWindow)
	}
	if t.AckThinning {
		s += "+Thin"
	}
	if t.DelayedAck {
		s += "+DelAck"
	}
	return s
}

// TopologyKind enumerates the paper's three scenarios.
type TopologyKind int

// Topology kinds.
const (
	TopoChain TopologyKind = iota + 1
	TopoGrid
	TopoRandom
)

// Topology describes node placement and the default flow set.
type Topology struct {
	Kind TopologyKind

	// Hops applies to TopoChain.
	Hops int

	// Random topology parameters (defaults: the paper's 120 nodes on
	// 2500x1000 m² with 10 flows).
	RandomNodes  int
	RandomWidth  float64
	RandomHeight float64
	RandomFlows  int
}

// Chain returns an h-hop chain topology.
func Chain(hops int) Topology { return Topology{Kind: TopoChain, Hops: hops} }

// Grid returns the paper's 21-node grid with 6 flows (Figure 15).
func Grid() Topology { return Topology{Kind: TopoGrid} }

// Random returns the paper's 120-node random topology with 10 flows.
func Random() Topology {
	return Topology{Kind: TopoRandom, RandomNodes: 120, RandomWidth: 2500, RandomHeight: 1000, RandomFlows: 10}
}

// FlowSpec is one transport connection.
type FlowSpec struct {
	Src, Dst pkt.NodeID
}

// MobilityKind selects the node movement model.
type MobilityKind int

// Mobility models: the paper's static scenarios and the canonical random
// waypoint extension.
const (
	MobilityStationary MobilityKind = iota
	MobilityRandomWaypoint
)

// MobilitySpec configures node movement over the run. The zero value keeps
// the paper's static scenarios.
type MobilitySpec struct {
	Kind MobilityKind

	// MinSpeed and MaxSpeed bound the uniformly drawn per-leg speed in m/s
	// (random waypoint). MinSpeed defaults to 1 — the classic vmin=0
	// formulation stalls nodes forever.
	MinSpeed, MaxSpeed float64

	// Pause is the rest time at each waypoint.
	Pause time.Duration

	// FieldWidth and FieldHeight bound the movement area, anchored at the
	// origin. When both are zero the field is the bounding box of the
	// initial placement.
	FieldWidth, FieldHeight float64

	// PinFlowEndpoints freezes every flow's source and destination at its
	// initial position so mobility affects only the relays — the classic
	// setup isolating route churn from path-length drift (random waypoint
	// concentrates nodes toward the field center, which otherwise shortens
	// the measured paths as speed grows).
	PinFlowEndpoints bool

	// UpdateInterval is the position-refresh epoch of the channel
	// (default phy.DefaultUpdateInterval).
	UpdateInterval time.Duration
}

// buildMobility materializes the movement model for the placed nodes and
// flows. All randomness comes from rng (the scheduler's source) so mobile
// runs stay reproducible per seed.
func (c Config) buildMobility(pts []geo.Point, flows []FlowSpec, rng *rand.Rand) (mobility.Model, error) {
	m := c.Mobility
	var model mobility.Model
	switch m.Kind {
	case MobilityStationary:
		return mobility.NewStationary(pts), nil
	case MobilityRandomWaypoint:
		field := geo.Bounds(pts)
		switch {
		case m.FieldWidth > 0 && m.FieldHeight > 0:
			field = geo.Rect{Max: geo.Point{X: m.FieldWidth, Y: m.FieldHeight}}
		case m.FieldWidth > 0 || m.FieldHeight > 0:
			// A half-specified field would silently collapse the movement
			// area to a line along one axis.
			return nil, fmt.Errorf("core: set both FieldWidth and FieldHeight (or neither for the initial bounding box)")
		}
		minSpeed := m.MinSpeed
		if minSpeed == 0 {
			// Default 1 m/s, but never above MaxSpeed: a sub-1 m/s crawl
			// with MinSpeed unset must stay expressible.
			minSpeed = 1
			if m.MaxSpeed > 0 && m.MaxSpeed < minSpeed {
				minSpeed = m.MaxSpeed
			}
		}
		var err error
		model, err = mobility.NewRandomWaypoint(mobility.WaypointConfig{
			Field:    field,
			MinSpeed: minSpeed,
			MaxSpeed: m.MaxSpeed,
			Pause:    m.Pause,
		}, pts, rng)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown mobility kind %d", m.Kind)
	}
	if m.PinFlowEndpoints {
		fixed := make(map[int]geo.Point)
		for _, f := range flows {
			fixed[int(f.Src)] = pts[f.Src]
			fixed[int(f.Dst)] = pts[f.Dst]
		}
		model = mobility.Pin(model, fixed)
	}
	return model, nil
}

// RoutingKind selects the routing substrate.
type RoutingKind int

// Routing choices; AODV is the paper's configuration, static shortest-path
// routing is the ablation.
const (
	RoutingAODV RoutingKind = iota
	RoutingStatic
)

// Config fully describes one simulation run.
type Config struct {
	Topology  Topology
	Bandwidth phy.Rate
	Transport TransportSpec
	// Flows overrides the topology's default flow set when non-nil.
	Flows []FlowSpec
	// PerFlowTransport, when non-nil, overrides Transport per flow (same
	// length as the flow set). This enables protocol-coexistence studies
	// (e.g. Vegas and NewReno competing on the grid).
	PerFlowTransport []TransportSpec
	Seed             int64

	// Measurement methodology (paper: 110000 total, batches of 10000,
	// first batch discarded).
	TotalPackets  int64
	BatchPackets  int64
	WarmupBatches int

	Routing RoutingKind

	// Mobility selects the node movement model (default: stationary, the
	// paper's setting). Requires AODV routing: static shortest-path routes
	// cannot follow moving nodes.
	Mobility MobilitySpec

	// NoCapture disables the PHY's 10 dB capture rule (ablation: any
	// overlapping signal within interference range corrupts receptions).
	NoCapture bool

	// MaxSimTime bounds runs that cannot reach TotalPackets (e.g. a
	// starved flow); the result is marked Truncated. Default 24h.
	MaxSimTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.Bandwidth == 0 {
		c.Bandwidth = phy.Rate2Mbps
	}
	if c.TotalPackets == 0 {
		c.TotalPackets = 110000
	}
	if c.BatchPackets == 0 {
		c.BatchPackets = c.TotalPackets / 11
	}
	if c.WarmupBatches == 0 {
		c.WarmupBatches = 1
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 24 * time.Hour
	}
	if c.Transport.Alpha == 0 {
		c.Transport.Alpha = 2
	}
	return c
}

// buildTopology materializes node positions and the default flows.
func (c Config) buildTopology(rng *rand.Rand) ([]geo.Point, []FlowSpec, error) {
	switch c.Topology.Kind {
	case TopoChain:
		if c.Topology.Hops < 1 {
			return nil, nil, fmt.Errorf("core: chain topology needs Hops >= 1")
		}
		pts := geo.Chain(c.Topology.Hops)
		return pts, []FlowSpec{{Src: 0, Dst: pkt.NodeID(c.Topology.Hops)}}, nil
	case TopoGrid:
		pts, gf := geo.Grid21()
		flows := make([]FlowSpec, len(gf))
		for i, f := range gf {
			flows[i] = FlowSpec{Src: pkt.NodeID(f.Src), Dst: pkt.NodeID(f.Dst)}
		}
		return pts, flows, nil
	case TopoRandom:
		t := c.Topology
		if t.RandomNodes == 0 {
			t = Random()
		}
		pts, _ := geo.Random(geo.RandomConfig{
			N: t.RandomNodes, Width: t.RandomWidth, Height: t.RandomHeight, Range: phy.TxRange,
		}, rng)
		gf := geo.PickFlows(t.RandomNodes, t.RandomFlows, rng)
		flows := make([]FlowSpec, len(gf))
		for i, f := range gf {
			flows[i] = FlowSpec{Src: pkt.NodeID(f.Src), Dst: pkt.NodeID(f.Dst)}
		}
		return pts, flows, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown topology kind %d", c.Topology.Kind)
	}
}
