package core

import (
	"context"

	"manetsim/internal/sim"
)

// World is a reusable run arena: it keeps every allocation a simulation
// run makes — the scheduler's event heap, the channel with its spatial
// grid and signal pools, the per-node MAC/routing stacks, the transport
// engines, the packet pool — and rewinds all of it in place for the next
// run instead of rebuilding from scratch. Results are byte-identical to
// fresh runs of the same Config: resets restore exactly the state a fresh
// construction would produce, including the random stream.
//
// A World is not safe for concurrent use (each run owns its state
// exclusively, like the single-threaded scheduler underneath), but
// separate Worlds run concurrently without restriction; Campaign pools one
// per worker. The zero-cost escape hatch is simply not reusing it: a World
// used once behaves exactly like RunContext.
//
// Shape changes between runs are handled transparently: a run whose node
// count differs rebuilds the stacks, a static-routed run whose placement
// changed recomputes routes, and flow-slot reuse rebinds the transport to
// the new flow's endpoints. Only what changed is rebuilt.
type World struct {
	s *scenarioState
}

// NewWorld returns an empty arena. The first run builds the full state;
// subsequent runs reuse it.
func NewWorld() *World { return &World{} }

// Run executes one configured simulation on the arena. See RunContext.
func (w *World) Run(cfg Config) (*Result, error) {
	return w.RunContext(context.Background(), cfg)
}

// RunContext executes one configured simulation on the arena under ctx,
// with the exact semantics of the package-level RunContext — including
// cancellation — plus arena reuse. A build error discards the arena state
// (the next run starts fresh); a cancelled run keeps it, since the next
// reset sweeps whatever the aborted run left behind.
func (w *World) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := w.s
	reuse := s != nil
	if reuse {
		s.reset(cfg.Seed)
	} else {
		s = &scenarioState{sched: sim.NewScheduler(cfg.Seed)}
	}
	s.cfg = cfg
	s.obs = cfg.Observer
	if err := s.build(reuse); err != nil {
		// A half-built arena holds layers in mixed generations; safer to
		// drop it than to reason about which resets still apply.
		w.s = nil
		return nil, err
	}
	w.s = s
	return s.finishRun(ctx)
}
