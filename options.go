package manetsim

import "time"

// Option tunes one run-level knob of a simulation. Options apply over the
// paper's defaults: 2 Mbit/s, 110000 packets in batches of 10000, one
// warm-up batch discarded, seed 0, 24h simulated-time bound.
type Option func(*Config)

// WithBandwidth sets the channel bit rate (Rate2Mbps, Rate5_5Mbps or
// Rate11Mbps).
func WithBandwidth(r Rate) Option {
	return func(c *Config) { c.Bandwidth = r }
}

// WithTransport sets the default TransportSpec for every flow that does
// not carry its own.
func WithTransport(t TransportSpec) Option {
	return func(c *Config) { c.Transport = t }
}

// WithSeed sets the random seed; runs are deterministic per seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithPackets sets the measurement budget: deliver total packets split
// into batches of batch (0 batch = total/11, the paper's 11-batch
// structure).
func WithPackets(total, batch int64) Option {
	return func(c *Config) { c.TotalPackets, c.BatchPackets = total, batch }
}

// WithWarmupBatches sets how many leading batches are discarded before
// aggregation (default 1, the paper's methodology).
func WithWarmupBatches(n int) Option {
	return func(c *Config) { c.WarmupBatches = n }
}

// WithMaxSimTime bounds the simulated time; a run that cannot reach its
// packet target by then returns with Result.Truncated set.
func WithMaxSimTime(d time.Duration) Option {
	return func(c *Config) { c.MaxSimTime = d }
}

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) Option {
	return func(c *Config) { c.Observer = o }
}

// WithoutCapture disables the PHY's 10 dB capture rule (ablation: any
// overlapping signal within interference range corrupts receptions).
func WithoutCapture() Option {
	return func(c *Config) { c.NoCapture = true }
}
