package aodv

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"manetsim/internal/geo"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// TestQuickTableFreshnessInvariant property-checks the routing table never
// replaces a route with a stale one (lower sequence number), for any
// sequence of updates and invalidations.
func TestQuickTableFreshnessInvariant(t *testing.T) {
	type op struct {
		Dst  uint8
		Next uint8
		Hops uint8
		Seq  uint8
		Inv  bool
	}
	f := func(ops []op) bool {
		sched := sim.NewScheduler(1)
		tb := NewTable(sched, sim.Time(time.Hour))
		lastSeq := map[pkt.NodeID]uint32{}
		for _, o := range ops {
			dst := pkt.NodeID(o.Dst % 8)
			if o.Inv {
				tb.Invalidate(dst)
			} else {
				tb.Update(dst, pkt.NodeID(o.Next%8), int(o.Hops%10)+1, uint32(o.Seq))
			}
			if r := tb.Lookup(dst); r != nil {
				if prev, ok := lastSeq[dst]; ok && seqGreater(prev, r.SeqNo) {
					return false // freshness went backwards
				}
				lastSeq[dst] = r.SeqNo
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickStaticRouterPathsTerminate property-checks that following
// static next hops from any source reaches the destination without loops
// on random connected topologies.
func TestQuickStaticRouterPathsTerminate(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 3
		rng := rand.New(rand.NewSource(seed))
		pts, _ := geo.Random(geo.RandomConfig{N: n, Width: 800, Height: 800, Range: 300}, rng)
		// Build next-hop tables for every node via NewStatic (MAC unused
		// for the path-walk check).
		routers := make([]*StaticRouter, n)
		for i := range pts {
			routers[i] = NewStatic(pkt.NodeID(i), nil, pts, 300, func(*pkt.Packet) {})
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				cur, steps := s, 0
				for cur != d {
					nh := routers[cur].NextHop(pkt.NodeID(d))
					if nh == pkt.Broadcast {
						return false // unreachable on a connected graph
					}
					cur = int(nh)
					steps++
					if steps > n {
						return false // loop
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickSeqGreaterAntisymmetric property-checks the wraparound
// comparison is a strict partial order on distinct values.
func TestQuickSeqGreaterAntisymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return !seqGreater(a, b) && !seqGreater(b, a)
		}
		// Exactly one direction wins unless they are 2^31 apart.
		ga, gb := seqGreater(a, b), seqGreater(b, a)
		if int32(a-b) == -2147483648 {
			return !ga && !gb
		}
		return ga != gb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
