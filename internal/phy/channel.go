package phy

import (
	"fmt"
	"slices"
	"time"

	"manetsim/internal/fault"
	"manetsim/internal/geo"
	"manetsim/internal/linkmodel"
	"manetsim/internal/pkt"
	"manetsim/internal/sim"
)

// Handler is the interface the MAC layer implements to receive PHY
// indications. All calls happen inside scheduler events, in a fixed order
// for simultaneous indications: frame delivery (RxFrame or RxCorrupted)
// before ChannelIdle.
type Handler interface {
	// RxFrame delivers a frame that was decoded without corruption.
	RxFrame(frame any, from pkt.NodeID)
	// RxCorrupted signals the end of a signal that could not be delivered
	// as a good frame: a collision-corrupted decode, sub-decode-threshold
	// noise (a transmission sensed from beyond TxRange), or a frame that
	// arrived while transmitting. 802.11 responds with EIFS deferral —
	// ns-2 behaves the same way for every errored reception, which is
	// what keeps hidden-terminal neighborhoods from firing into the
	// SIFS gaps of exchanges they cannot decode.
	RxCorrupted()
	// ChannelBusy signals energy appearing on an idle channel.
	ChannelBusy()
	// ChannelIdle signals all energy disappearing from the channel.
	ChannelIdle()
	// TxDone signals completion of this node's own transmission.
	TxDone()
}

// PositionModel provides node positions over simulated time. It is the
// channel's view of a mobility model (mobility.Model satisfies it);
// PositionAt is sampled with non-decreasing timestamps.
type PositionModel interface {
	Len() int
	PositionAt(i int, t sim.Time) geo.Point
	Static() bool
}

// CaptureThreshold is the power ratio (10 dB, linear 10x) above which an
// in-progress reception survives a new overlapping signal, matching ns-2's
// CPThresh_. Set Channel.NoCapture to disable (ablation).
const CaptureThreshold = 10.0

// DefaultUpdateInterval is the default position-update epoch period for
// channels with moving nodes. At 100 ms even a 20 m/s node drifts at most
// 2 m between epochs — under 1% of TxRange.
const DefaultUpdateInterval = 100 * time.Millisecond

// rxPower returns the relative received power over distance d using the
// two-ray ground model's d^-4 law (absolute scale is irrelevant — only
// ratios matter for capture).
func rxPower(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return 1 / (d * d * d * d)
}

// neighbor is a reachability entry from one radio to another, valid for one
// position epoch.
type neighbor struct {
	radio     *Radio
	propDelay time.Duration
	decodable bool    // within decode range (otherwise interference/carrier-sense only)
	power     float64 // relative received power at the neighbor
	dist      float64 // link length in meters (input to distance-aware link models)
}

// Channel connects the radios of one scenario. Reachability is threshold
// based and queried over time: a spatial grid indexes current positions,
// per-radio neighbor sets are derived lazily from it and cached for one
// position epoch. Static scenarios build each cache exactly once; mobile
// scenarios refresh positions on a scheduled epoch tick.
type Channel struct {
	sched  *sim.Scheduler
	radios []*Radio //manetsim:resetsafe radio set persists; Reset rewinds each radio in place
	// NoCapture disables the 10 dB capture effect, making any overlapping
	// signal within interference range lethal (the ablation model).
	NoCapture bool

	model    PositionModel // nil once positions are frozen (static)
	interval time.Duration // epoch period (mobile channels only)
	grid     *spatialGrid

	// Link impairment (SetLinkModel). A nil impairment model is the
	// perfect channel: no per-link state is touched at all, so runs are
	// byte-identical to builds without the linkmodel subsystem.
	impair      linkmodel.Model
	maxJitter   time.Duration // per-frame delay jitter bound (0 = none)
	capture     float64       // capture power ratio (default CaptureThreshold)
	impairSeed  uint64        // run seed feeding the per-link streams
	decodeRange float64       // decode distance (TxRange unless the model extends it)

	// Fault plane (SetFaultPlane). A nil plane — or a quiet one — is the
	// fault-free channel: a single counter comparison is the only cost the
	// hot path ever pays.
	faults *fault.Plane

	// Scratch for refreshPositions: the radios that moved this epoch and
	// their previous positions. Reused across epochs, never escapes.
	moved    []*Radio    //manetsim:resetsafe scratch, truncated at the start of every epoch tick
	movedOld []geo.Point //manetsim:resetsafe scratch, truncated alongside moved

	// Freelists for the per-transmission hot-path objects. A transmission
	// to k neighbors needs one txRecord and k signals; all of them are
	// recycled as their signal-end events retire, so steady-state traffic
	// does not allocate.
	freeSignal *signal   //manetsim:resetsafe freelist survives resets; only retired signals are linked in
	freeTx     *txRecord //manetsim:resetsafe freelist survives resets, same discipline as freeSignal
}

// NewChannel creates a channel for nodes frozen at the given positions and
// returns it with one radio per node. The handler for each radio must be
// set with Radio.SetHandler before any traffic flows.
func NewChannel(sched *sim.Scheduler, positions []geo.Point) *Channel {
	c := &Channel{sched: sched, grid: newSpatialGrid(CSRange), capture: CaptureThreshold, decodeRange: TxRange}
	c.makeRadios(positions)
	return c
}

// NewMobileChannel creates a channel whose node positions follow model,
// sampled every interval (DefaultUpdateInterval when interval <= 0).
// Between epochs positions are treated as frozen, so the approximation
// error is bounded by maxSpeed*interval. A static model degenerates to
// NewChannel: no epochs are ever scheduled.
func NewMobileChannel(sched *sim.Scheduler, model PositionModel, interval time.Duration) *Channel {
	if model == nil {
		panic("phy: nil position model")
	}
	if interval <= 0 {
		interval = DefaultUpdateInterval
	}
	positions := make([]geo.Point, model.Len())
	for i := range positions {
		positions[i] = model.PositionAt(i, sched.Now())
	}
	c := &Channel{sched: sched, grid: newSpatialGrid(CSRange), capture: CaptureThreshold, decodeRange: TxRange}
	c.makeRadios(positions)
	if !model.Static() {
		c.model = model
		c.interval = interval
		c.sched.AfterFunc(interval, refreshPositionsFn, c)
	}
	return c
}

// Reset rewinds the channel for a fresh run over the same radio set: the
// grid is re-bucketed from the model's initial positions, every radio
// returns to its zero state, and (for non-static models) the epoch tick is
// re-armed. The caller must Reset the scheduler first — that sweeps the
// previous run's pending signal events; any in-flight signal/txRecord
// objects simply drop to the garbage collector (the freelists only ever
// hold properly retired ones) and MAC frames they referenced are recycled
// by the MAC's own reset.
func (c *Channel) Reset(model PositionModel, interval time.Duration) {
	if model == nil {
		panic("phy: nil position model")
	}
	if model.Len() != len(c.radios) {
		panic(fmt.Sprintf("phy: Reset model has %d nodes, channel has %d radios", model.Len(), len(c.radios)))
	}
	if interval <= 0 {
		interval = DefaultUpdateInterval
	}
	c.NoCapture = false
	c.impair = nil
	c.maxJitter = 0
	c.capture = CaptureThreshold
	c.impairSeed = 0
	c.decodeRange = TxRange
	c.faults = nil
	c.grid.reset()
	now := c.sched.Now()
	for i, r := range c.radios {
		r.reset(model.PositionAt(i, now))
		c.grid.insert(r)
	}
	if !model.Static() {
		c.model = model
		c.interval = interval
		c.sched.AfterFunc(interval, refreshPositionsFn, c)
	} else {
		c.model = nil
		c.interval = 0
	}
}

// SetLinkModel installs a link-impairment model on the channel: per-frame
// corruption draws from model, uniform per-frame delay jitter in
// [0, maxJitter), and an overridden capture power ratio (0 keeps the
// default CaptureThreshold; NoCapture still disables capture entirely).
// The per-directed-link random streams derive from seed, so two runs with
// the same seed — fresh or over a reused arena — take identical draws.
//
// A nil model (or linkmodel.Perfect) with zero jitter restores the
// perfect channel. Call after construction or Reset, before traffic
// flows; the model is consulted once per (frame, receiver) on the
// transmit path and must not change mid-run.
func (c *Channel) SetLinkModel(model linkmodel.Model, maxJitter time.Duration, captureRatio float64, seed uint64) {
	if _, perfect := model.(linkmodel.Perfect); perfect {
		model = nil
	}
	c.impair = model
	c.maxJitter = maxJitter
	c.capture = CaptureThreshold
	if captureRatio > 0 {
		c.capture = captureRatio
	}
	c.impairSeed = seed
	c.decodeRange = TxRange
	if model != nil {
		c.decodeRange = model.DecodeRange(TxRange, CSRange)
	}
	// Decodability and the per-link streams both changed shape: rebuild
	// neighbor caches lazily and re-seed link states on next use.
	for _, r := range c.radios {
		r.nbValid = false
		for _, st := range r.links {
			st.Invalidate()
		}
	}
}

// SetFaultPlane installs the run's fault plane: frame copies over severed
// links are forced undecodable (before any link-model loss draw, so the two
// subsystems compose without perturbing each other's streams), crashed
// nodes neither decode nor indicate to their MAC, and Reachable reflects
// severed links so routing classifies give-ups toward them as true
// failures. A nil plane restores the fault-free channel. Call after
// construction or Reset, before traffic flows.
func (c *Channel) SetFaultPlane(p *fault.Plane) { c.faults = p }

func (c *Channel) makeRadios(positions []geo.Point) {
	c.radios = make([]*Radio, len(positions))
	for i := range positions {
		r := &Radio{ch: c, id: pkt.NodeID(i), pos: positions[i]}
		c.radios[i] = r
		c.grid.insert(r)
	}
}

// refreshPositionsFn is the scheduler trampoline for the epoch tick, so
// re-arming it never allocates a method-value closure.
func refreshPositionsFn(a any) { a.(*Channel).refreshPositions() }

// refreshPositions is the epoch tick: re-sample every radio's position from
// the model, re-bucket movers in the grid, and invalidate exactly the
// neighbor caches the movement could have changed. Cache maintenance is
// O(moved): each mover dirties itself plus the radios near its old and new
// positions. When a large fraction of the network moved (the dense regime),
// per-mover marking would visit most radios several times over, so the tick
// falls back to invalidating everything in one pass.
func (c *Channel) refreshPositions() {
	now := c.sched.Now()
	c.moved = c.moved[:0]
	c.movedOld = c.movedOld[:0]
	for _, r := range c.radios {
		p := c.model.PositionAt(int(r.id), now)
		if p != r.pos {
			c.moved = append(c.moved, r)
			c.movedOld = append(c.movedOld, r.pos)
			r.pos = p
			c.grid.move(r, c.movedOld[len(c.movedOld)-1])
		}
	}
	switch {
	case len(c.moved) == 0:
		// Nothing moved: every cache stays valid.
	case 4*len(c.moved) >= len(c.radios):
		for _, r := range c.radios {
			r.nbValid = false
		}
	default:
		for i, r := range c.moved {
			r.nbValid = false
			c.markNear(c.movedOld[i])
			c.markNear(r.pos)
		}
	}
	c.sched.AfterFunc(c.interval, refreshPositionsFn, c)
}

// invalidateNb marks one radio's neighbor cache stale. A package-level
// function, so passing it to forNear allocates nothing.
func invalidateNb(o *Radio) { o.nbValid = false }

// markNear invalidates the neighbor caches of every radio that could have p
// inside its carrier-sense range. forNear over-approximates by cell blocks;
// over-marking only costs a rebuild, never correctness — rebuilt sets are
// exact (distance-filtered and id-sorted), so dirty marking changes when
// caches rebuild but never what they contain.
func (c *Channel) markNear(p geo.Point) {
	c.grid.forNear(p, CSRange, invalidateNb)
}

// neighborsOf returns r's current neighbor set, rebuilding the cached slice
// from the spatial grid when an epoch tick dirtied it. Entries are
// ordered by node id so event scheduling — and therefore whole runs — stay
// deterministic regardless of grid-map iteration order.
//
//manetsim:hotpath
func (c *Channel) neighborsOf(r *Radio) []neighbor {
	if r.nbValid {
		return r.nbCache
	}
	r.nbCache = r.nbCache[:0]
	// The capturing visitor below runs only on the rebuild path (cache
	// miss after an epoch tick); the steady state returns the cached slice
	// above without allocating.
	//manetsim:allow hotpathalloc rebuild path, amortized by the neighbor cache
	c.grid.forNear(r.pos, CSRange, func(other *Radio) {
		if other == r {
			return
		}
		d := r.pos.Distance(other.pos)
		if d <= CSRange {
			r.nbCache = append(r.nbCache, neighbor{
				radio:     other,
				propDelay: PropagationDelay(d),
				decodable: d <= c.decodeRange,
				power:     rxPower(d),
				dist:      d,
			})
		}
	})
	slices.SortFunc(r.nbCache, func(a, b neighbor) int {
		return int(a.radio.id - b.radio.id)
	})
	r.nbValid = true
	return r.nbCache
}

// Radio returns the radio of node id.
func (c *Channel) Radio(id pkt.NodeID) *Radio { return c.radios[id] }

// NumRadios returns the number of radios on the channel.
func (c *Channel) NumRadios() int { return len(c.radios) }

// Distance returns the current distance between two nodes (as of the last
// position epoch).
func (c *Channel) Distance(a, b pkt.NodeID) float64 {
	return c.radios[a].pos.Distance(c.radios[b].pos)
}

// Reachable reports whether b is currently within transmission range of a
// over a non-severed link. It is the omniscient link oracle routing layers
// use to classify a MAC give-up as a genuine route break (the hop moved
// away, crashed, or sits behind a blackout or partition) or a false one
// (contention on a healthy link).
func (c *Channel) Reachable(a, b pkt.NodeID) bool {
	if !c.faults.Quiet() && c.faults.Severed(a, b) {
		return false
	}
	return c.Distance(a, b) <= TxRange
}

// NeighborCount returns the size of the node's current neighbor set
// (carrier-sense range). It shares the per-epoch cache with transmissions;
// diagnostics and benchmarks use it to drive the neighbor-query path.
func (c *Channel) NeighborCount(id pkt.NodeID) int {
	return len(c.neighborsOf(c.radios[id]))
}

// txRecord tracks one transmission's outstanding signal-end events so the
// frame can be handed back to its owner (the MAC's frame pool) once the
// channel provably holds no more references to it.
type txRecord struct {
	frame     any
	owner     *Radio
	remaining int32
	next      *txRecord // freelist link
}

// signal is one transmission as perceived by one receiver.
type signal struct {
	frame      any
	from       pkt.NodeID
	to         *Radio
	decodable  bool
	power      float64
	start, end sim.Time
	tx         *txRecord
	next       *signal // freelist link
}

func (c *Channel) getSignal() *signal {
	s := c.freeSignal
	if s != nil {
		c.freeSignal = s.next
		s.next = nil
		return s
	}
	return &signal{}
}

func (c *Channel) putSignal(s *signal) {
	s.frame = nil
	s.to = nil
	s.tx = nil
	s.next = c.freeSignal
	c.freeSignal = s
}

func (c *Channel) getTx() *txRecord {
	t := c.freeTx
	if t != nil {
		c.freeTx = t.next
		t.next = nil
		return t
	}
	return &txRecord{}
}

func (c *Channel) putTx(t *txRecord) {
	t.frame = nil
	t.owner = nil
	t.next = c.freeTx
	c.freeTx = t
}

// signalStartFn/signalEndFn/txDoneFn are the scheduler trampolines for the
// transmission events. Package-level functions plus an argument mean
// Transmit schedules 2k+1 events without allocating a single closure.
func signalStartFn(a any) {
	s := a.(*signal)
	s.to.signalStart(s)
}

func signalEndFn(a any) {
	s := a.(*signal)
	r := s.to
	r.signalEnd(s)
	tx := s.tx
	r.ch.putSignal(s)
	tx.remaining--
	if tx.remaining == 0 {
		tx.owner.frameDone(tx.frame)
		r.ch.putTx(tx)
	}
}

func txDoneFn(a any) {
	r := a.(*Radio)
	r.txUntil = 0
	// A node that crashed mid-transmission finishes the frame on the air
	// (frame-granularity crash boundary) but its MAC is deactivated, so
	// the completion indication is dropped.
	if r.ch.faults.NodeDown(r.id) {
		return
	}
	r.handler.TxDone()
}

// Radio is the physical layer of one node: it transmits frames onto the
// channel and tracks the signals currently on the air at its own position
// to implement carrier sensing and the no-capture collision model.
type Radio struct {
	ch      *Channel
	id      pkt.NodeID
	pos     geo.Point // current position (updated each epoch)
	handler Handler

	// OnFrameReleased, if set, fires once the channel holds no more
	// references to a transmitted frame (every receiver's signal-end event
	// has retired). The MAC uses it to recycle frame objects.
	OnFrameReleased func(frame any)

	// Neighbor cache, invalidated by epoch ticks that move this radio or
	// one of its (old or new) surroundings.
	nbCache []neighbor
	nbValid bool

	// Per-directed-link impairment streams, keyed by receiver and seeded
	// lazily from the channel's impairSeed (see linkState). Entries are
	// allocated once per link ever contacted and reused across arena
	// runs; the steady-state transmit path only looks them up.
	links map[pkt.NodeID]*linkmodel.State

	txUntil   sim.Time // end of own transmission (0 => not transmitting)
	airCount  int      // signals currently arriving (any strength)
	decoding  *signal  // frame currently being decoded, if any
	corrupted bool     // decoding frame got hit by a collision

	// Energy accounting (time integrals of radio states).
	txTime, rxTime time.Duration

	// Counters for link-level diagnostics.
	FramesSent      uint64
	FramesDelivered uint64
	Collisions      uint64 // receptions corrupted at this node
	FramesImpaired  uint64 // outgoing frame copies killed by the link model
	FramesFaulted   uint64 // outgoing frame copies killed by the fault plane
}

// linkState returns the impairment stream of the directed link from this
// radio to the given receiver, creating and seeding it on first contact.
// After a reset (or SetLinkModel) existing states are merely invalidated,
// so steady-state traffic never allocates here.
func (r *Radio) linkState(to pkt.NodeID) *linkmodel.State {
	st := r.links[to]
	if st == nil {
		if r.links == nil {
			r.links = make(map[pkt.NodeID]*linkmodel.State, 8)
		}
		st = new(linkmodel.State)
		r.links[to] = st
	}
	if !st.Seeded() {
		st.Seed(linkmodel.LinkSeed(r.ch.impairSeed, uint32(r.id), uint32(to)))
	}
	return st
}

// reset returns the radio to its just-constructed state at pos, keeping
// the neighbor-cache capacity. The caller re-inserts it into the grid and
// reinstalls the handler (the MAC does so in its own reset).
func (r *Radio) reset(pos geo.Point) {
	r.pos = pos
	r.handler = nil
	r.OnFrameReleased = nil
	r.nbCache = r.nbCache[:0]
	r.nbValid = false
	r.txUntil = 0
	r.airCount = 0
	r.decoding = nil
	r.corrupted = false
	r.txTime = 0
	r.rxTime = 0
	r.FramesSent = 0
	r.FramesDelivered = 0
	r.Collisions = 0
	r.FramesImpaired = 0
	r.FramesFaulted = 0
	// Keep the link-state allocations; invalidate so the next run's seed
	// re-seeds each stream on first use.
	for _, st := range r.links {
		st.Invalidate()
	}
}

// SetHandler installs the MAC-layer handler.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// ID returns the node id this radio belongs to.
func (r *Radio) ID() pkt.NodeID { return r.id }

// Pos returns the radio position as of the last position epoch.
func (r *Radio) Pos() geo.Point { return r.pos }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.txUntil > r.ch.sched.Now() }

// Idle reports whether the physical channel is sensed idle at this radio:
// no energy on the air and not transmitting.
func (r *Radio) Idle() bool { return r.airCount == 0 && !r.Transmitting() }

// TxTime returns cumulative transmission time (for the energy model).
func (r *Radio) TxTime() time.Duration { return r.txTime }

// RxTime returns cumulative decode time (for the energy model).
func (r *Radio) RxTime() time.Duration { return r.rxTime }

// Transmit puts a frame on the air for the given duration. The caller (the
// MAC) is responsible for carrier sensing; the radio transmits
// unconditionally, exactly like hardware. TxDone fires on the handler when
// the transmission completes. Reachability, propagation delay and received
// power are snapshotted at transmission start from the current positions.
//
//manetsim:hotpath
func (r *Radio) Transmit(frame any, airtime time.Duration) {
	now := r.ch.sched.Now()
	if r.Transmitting() {
		panic(fmt.Sprintf("phy: node %d transmit while transmitting", r.id))
	}
	if airtime <= 0 {
		panic(fmt.Sprintf("phy: non-positive airtime %v", airtime))
	}
	// Half duplex: starting to transmit destroys any in-progress decode.
	if r.decoding != nil {
		r.corrupted = true
	}
	r.txUntil = now + airtime
	r.txTime += airtime
	r.FramesSent++
	neighbors := r.ch.neighborsOf(r)
	if len(neighbors) == 0 {
		// Nobody can hear the frame: the channel never references it.
		r.frameDone(frame)
	} else {
		tx := r.ch.getTx()
		tx.frame = frame
		tx.owner = r
		tx.remaining = int32(len(neighbors))
		impaired := r.ch.impair != nil || r.ch.maxJitter > 0
		faulted := !r.ch.faults.Quiet()
		for i := range neighbors {
			nb := &neighbors[i]
			start := now + nb.propDelay
			s := r.ch.getSignal()
			s.frame = frame
			s.from = r.id
			s.to = nb.radio
			s.decodable = nb.decodable
			s.power = nb.power
			// A severed link (crashed endpoint, blackout, partition) kills
			// the copy before any impairment draw: the frame still radiates
			// as noise, but the link model never sees it, so fault and loss
			// streams compose without cross-talk.
			if faulted && s.decodable && r.ch.faults.Severed(r.id, nb.radio.id) {
				s.decodable = false
				r.FramesFaulted++
			}
			if impaired {
				// Per-link draws in neighbor (id) order: one corruption
				// draw per decodable copy, one jitter draw per copy. A
				// corrupted copy still radiates — it arrives as noise
				// (RxCorrupted/EIFS at the receiver), exactly like a
				// sub-threshold signal.
				st := r.linkState(nb.radio.id)
				if s.decodable && r.ch.impair != nil && r.ch.impair.Corrupt(st, nb.dist) {
					s.decodable = false
					r.FramesImpaired++
				}
				if r.ch.maxJitter > 0 {
					start += time.Duration(st.Float64() * float64(r.ch.maxJitter))
				}
			}
			s.start = start
			s.end = start + airtime
			s.tx = tx
			r.ch.sched.AtFunc(start, signalStartFn, s)
			r.ch.sched.AtFunc(s.end, signalEndFn, s)
		}
	}
	r.ch.sched.AtFunc(r.txUntil, txDoneFn, r)
}

// frameDone reports the frame back to the owner once the channel is done
// with it.
func (r *Radio) frameDone(frame any) {
	if r.OnFrameReleased != nil {
		r.OnFrameReleased(frame)
	}
}

// signalStart registers energy arriving at this radio and decides whether a
// decode begins. Decoding starts only when the frame is within transmission
// range, the radio is not transmitting, and no other energy is present —
// any concurrent signal within interference range prevents or corrupts
// reception (no capture).
func (r *Radio) signalStart(s *signal) {
	wasIdle := r.airCount == 0
	r.airCount++
	// A crashed node keeps the air bookkeeping consistent (its signal-end
	// events still retire) but neither decodes nor indicates to its MAC.
	if r.ch.faults.NodeDown(r.id) {
		return
	}
	switch {
	case r.Transmitting():
		// Half duplex: nothing receivable during own transmission.
	case r.decoding != nil:
		// Overlap with an in-progress decode. ns-2 semantics: if the
		// locked frame is stronger by the capture ratio (default 10 dB,
		// overridable via SetLinkModel) the new signal is mere noise
		// (capture); otherwise both are lost. The new signal is never
		// decoded either way — the receiver stays locked.
		if r.ch.NoCapture || r.decoding.power < r.ch.capture*s.power {
			r.corrupted = true
		}
	case s.decodable && wasIdle:
		r.decoding = s
		r.corrupted = false
	}
	if wasIdle && !r.Transmitting() {
		r.handler.ChannelBusy()
	}
}

// signalEnd removes a signal from the air, completing its decode if it was
// the one being received. Delivery happens before a possible ChannelIdle
// indication so the MAC sees NAV updates first. Signals that end without a
// successful delivery — noise from beyond decode range, corrupted decodes,
// or anything overlapping our own transmission — report RxCorrupted so the
// MAC applies EIFS.
func (r *Radio) signalEnd(s *signal) {
	r.airCount--
	if r.ch.faults.NodeDown(r.id) {
		// Crashed receiver: retire the signal silently, abandoning any
		// decode that was in progress when the node went down.
		if r.decoding == s {
			r.decoding = nil
			r.corrupted = false
		}
		return
	}
	switch {
	case r.decoding == s:
		r.decoding = nil
		r.rxTime += s.end - s.start
		if r.Transmitting() || r.corrupted {
			r.Collisions++
			r.handler.RxCorrupted()
		} else {
			r.FramesDelivered++
			r.handler.RxFrame(s.frame, s.from)
		}
		r.corrupted = false
	default:
		r.handler.RxCorrupted()
	}
	if r.airCount == 0 && !r.Transmitting() {
		r.handler.ChannelIdle()
	}
}
