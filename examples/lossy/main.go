// Lossy sweeps the non-congestion-loss regime the link-impairment
// subsystem unlocks: Reno, Westwood+ and the adaptive-pacing sender on
// the paper's 7-hop chain, under uniform per-frame loss ramped from 0%
// to 5%. Classic loss-based TCP misreads every random loss as
// congestion and halves its window; Westwood+'s bandwidth-estimate
// backoff and rate pacing shed far less, so the gap widens with the
// loss rate.
//
//	go run ./examples/lossy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"manetsim"
)

// demoPackets returns the demo's packet budget, overridable through
// MANETSIM_EXAMPLE_PACKETS (CI runs every example at reduced scale).
func demoPackets(def int64) int64 {
	if s := os.Getenv("MANETSIM_EXAMPLE_PACKETS"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	transports := []manetsim.TransportSpec{
		{Name: "reno"},
		{Name: "westwood"},
		{Name: "pacing"},
	}
	lossRamp := []manetsim.LinkModelSpec{
		{}, // perfect channel baseline
		manetsim.UniformLossModel(0.01),
		manetsim.UniformLossModel(0.02),
		manetsim.UniformLossModel(0.05),
	}

	total := demoPackets(11000)
	c := manetsim.NewCampaign(manetsim.Scale{TotalPackets: total, BatchPackets: total / 11, Seed: 1})
	cells, err := c.Sweep(context.Background(), manetsim.Sweep{
		Scenarios:  []*manetsim.Scenario{manetsim.Chain(7)},
		Transports: transports,
		LinkModels: lossRamp,
		Seeds:      []int64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("7-hop chain, 2 Mbit/s — goodput (kbit/s ±95% CI) vs uniform frame loss:")
	fmt.Printf("%-12s", "loss")
	for _, t := range transports {
		fmt.Printf(" %18s", t.Label())
	}
	fmt.Println()
	// Grid order is transports outermost within the scenario, loss ramp
	// innermost — walk it transposed so each row is one loss rate.
	for li, lm := range lossRamp {
		label := lm.Label()
		if lm.IsZero() {
			label = "perfect"
		}
		fmt.Printf("%-12s", label)
		for ti := range transports {
			cell := cells[ti*len(lossRamp)+li]
			fmt.Printf("    %7.1f ±%5.1f", cell.Goodput.Mean/1e3, cell.Goodput.HalfCI/1e3)
		}
		fmt.Println()
	}
	fmt.Println("\n(random loss is not congestion: Westwood+'s bandwidth-estimate")
	fmt.Println(" backoff keeps the pipe full where Reno's blind halving cannot)")
}
