// Command manetsim runs a single simulation scenario and prints its
// measurements; with the bench subcommand it drives the performance
// benchmark suite and its CI gate, and with the serve subcommand it runs
// as a long-lived simulation service over HTTP.
//
// Examples:
//
//	manetsim -topology chain -hops 7 -protocol vegas -bandwidth 2
//	manetsim -topology grid -protocol newreno -thinning -bandwidth 11
//	manetsim -topology chain -hops 7 -protocol udp -gap 36ms
//	manetsim -topology chain -hops 7 -protocol westwood
//	manetsim -topology chain -hops 7 -protocol pacing -cov-weight 3
//	manetsim -topology random -protocol vegas -packets 110000 -batch 10000
//	manetsim -topology chain -hops 7 -protocol westwood -link-model uniform -loss 0.02
//	manetsim -topology chain -hops 3 -link-model ber -ber 1e-5 -frame-bits 12224
//	manetsim -topology hidden -protocol newreno -rts-threshold 4096
//	manetsim -topology chain -hops 4 -fault crash@t=30,node=2,d=5s
//	manetsim -topology grid -fault partition@t=45s,d=10s,cut=500 -fault blackout@t=80,from=1,to=2,d=5s
//	manetsim -list-transports
//	manetsim -list-link-models
//	manetsim -list-faults
//
//	manetsim bench -json                      # run suite, write BENCH_<date>.json
//	go test -bench=. ./internal/perf | manetsim bench -parse -out ci.json
//	manetsim bench -compare BENCH_old.json ci.json
//
//	manetsim serve -addr :8971 -store /var/lib/manetsim/store
//	curl -XPOST localhost:8971/api/v1/sweeps -d @sweep.json   # -> {"id":"sweep-1",...}
//	curl -N localhost:8971/api/v1/sweeps/sweep-1/events       # NDJSON progress
//	curl localhost:8971/api/v1/sweeps/sweep-1/results
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manetsim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		topology  = flag.String("topology", "chain", "topology: chain, grid, random, hidden")
		hops      = flag.Int("hops", 7, "chain length in hops")
		protocol  = flag.String("protocol", "vegas", "transport by registry name (see -list-transports)")
		listTr    = flag.Bool("list-transports", false, "print the transport registry and exit")
		thinning  = flag.Bool("thinning", false, "enable dynamic ACK thinning (TCP)")
		delack    = flag.Bool("delack", false, "enable standard RFC 1122 delayed ACKs (TCP)")
		alpha     = flag.Int("alpha", 2, "Vegas alpha threshold [packets]")
		beta      = flag.Int("beta", 0, "Vegas beta threshold [packets]; 0 = alpha")
		gamma     = flag.Int("gamma", 0, "Vegas gamma slow-start exit threshold [packets]; 0 = alpha")
		maxWin    = flag.Int("maxwin", 0, "artificial window bound (NewReno optimal window); 0 = off")
		gap       = flag.Duration("gap", 36*time.Millisecond, "paced UDP inter-packet time")
		bwGain    = flag.Float64("bw-gain", 0, "Westwood+ bandwidth filter pole in (0,1); 0 = default 0.9")
		covWeight = flag.Float64("cov-weight", 0, "adaptive pacing RTT-variability weight; 0 = default 2")
		paceFloor = flag.Duration("pace-floor", 0, "adaptive pacing minimum inter-packet gap; 0 = default 1ms")
		bandwidth = flag.Float64("bandwidth", 2, "channel bandwidth in Mbit/s: 2, 5.5 or 11")
		seed      = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		packets   = flag.Int64("packets", 11000, "packets to deliver (paper: 110000)")
		batch     = flag.Int64("batch", 0, "batch size (default packets/11; paper: 10000)")
		static    = flag.Bool("static-routes", false, "use precomputed shortest-path routes instead of AODV")
		nocapture = flag.Bool("no-capture", false, "disable the PHY 10 dB capture rule (ablation)")
		quiet     = flag.Bool("q", false, "print only the summary line")

		linkModel = flag.String("link-model", "", "link-impairment model by registry name (see -list-link-models); empty = perfect channel")
		listLM    = flag.Bool("list-link-models", false, "print the link-model registry and exit")
		lossRate  = flag.Float64("loss", 0, "uniform/distance per-frame loss probability in [0,1]")
		ber       = flag.Float64("ber", 0, "bit error rate for -link-model ber")
		frameBits = flag.Int("frame-bits", 0, "frame length in bits for -link-model ber")
		gePGB     = flag.Float64("ge-good-bad", 0, "Gilbert-Elliott per-frame good->bad transition probability")
		gePBG     = flag.Float64("ge-bad-good", 0, "Gilbert-Elliott per-frame bad->good transition probability")
		geLossBad = flag.Float64("ge-loss-bad", 0, "Gilbert-Elliott loss probability while in the bad state")
		jitter    = flag.Duration("jitter", 0, "maximum per-link extra propagation delay (uniform in [0,jitter))")
		capRatio  = flag.Float64("capture-ratio", 0, "receiver capture power ratio; 0 = default 10 dB rule")
		rtsThresh = flag.Int("rts-threshold", 0, "skip RTS/CTS for unicast frames <= bytes (0 = handshake on every frame)")

		listFl = flag.Bool("list-faults", false, "print the fault registry and exit")

		mobilityKind = flag.String("mobility", "none", "mobility model: none, waypoint")
		vmax         = flag.Float64("vmax", 10, "random waypoint maximum speed [m/s]")
		vmin         = flag.Float64("vmin", 1, "random waypoint minimum speed [m/s]")
		mpause       = flag.Duration("pause", 2*time.Second, "random waypoint pause at each waypoint")
		fieldW       = flag.Float64("field-width", 0, "mobility field width [m] (set with -field-height; both 0 = initial bounding box)")
		fieldH       = flag.Float64("field-height", 0, "mobility field height [m] (set with -field-width; both 0 = initial bounding box)")
		pin          = flag.Bool("pin-endpoints", true, "keep flow endpoints stationary (mobility only)")
		maxSimTime   = flag.Duration("max-sim-time", 0, "simulated-time bound (0 = 24h default); mobile runs can starve")
		progress     = flag.Bool("progress", false, "stream per-batch progress while the run executes")
	)
	var faults faultFlags
	flag.Var(&faults, "fault", "inject a fault: name@k=v,... e.g. crash@t=30,node=3 (repeatable; see -list-faults)")
	flag.Parse()

	if *listTr {
		listTransports()
		return
	}
	if *listLM {
		listLinkModels()
		return
	}
	if *listFl {
		listFaults()
		return
	}

	var scn *manetsim.Scenario
	switch strings.ToLower(*topology) {
	case "chain":
		scn = manetsim.Chain(*hops)
	case "grid":
		scn = manetsim.Grid()
	case "random":
		scn = manetsim.Random()
	case "hidden":
		scn = manetsim.HiddenTerminal()
	default:
		fatalf("unknown topology %q", *topology)
	}
	var rate manetsim.Rate
	switch *bandwidth {
	case 2:
		rate = manetsim.Rate2Mbps
	case 5.5:
		rate = manetsim.Rate5_5Mbps
	case 11:
		rate = manetsim.Rate11Mbps
	default:
		fatalf("bandwidth must be 2, 5.5 or 11 (Mbit/s)")
	}
	// Any registered transport is selectable by name; the per-variant
	// flags fold into the spec and irrelevant ones are ignored by the
	// variant (paced UDP keeps its dedicated -gap wiring).
	name := strings.ToLower(*protocol)
	tspec := manetsim.TransportSpec{
		Name:        name,
		AckThinning: *thinning,
		DelayedAck:  *delack,
		MaxWindow:   *maxWin,
		Params: manetsim.Params{
			Beta:         *beta,
			Gamma:        *gamma,
			BWFilterGain: *bwGain,
			CoVWeight:    *covWeight,
			MinPaceGap:   *paceFloor,
		},
	}
	switch name {
	case "vegas":
		tspec.Alpha = *alpha
	case "udp", "pacedudp":
		tspec = manetsim.TransportSpec{Name: name, UDPGap: *gap}
	}
	if *static {
		scn.WithRouting(manetsim.RoutingStatic)
	}
	switch strings.ToLower(*mobilityKind) {
	case "none":
	case "waypoint":
		scn.WithMobility(manetsim.MobilitySpec{
			Kind:             manetsim.MobilityRandomWaypoint,
			MinSpeed:         *vmin,
			MaxSpeed:         *vmax,
			Pause:            *mpause,
			FieldWidth:       *fieldW,
			FieldHeight:      *fieldH,
			PinFlowEndpoints: *pin,
		})
	default:
		fatalf("unknown mobility model %q (none, waypoint)", *mobilityKind)
	}

	opts := []manetsim.Option{
		manetsim.WithBandwidth(rate),
		manetsim.WithTransport(tspec),
		manetsim.WithSeed(*seed),
		manetsim.WithPackets(*packets, *batch),
		manetsim.WithMaxSimTime(*maxSimTime),
	}
	if *nocapture {
		opts = append(opts, manetsim.WithoutCapture())
	}
	lspec := manetsim.LinkModelSpec{
		Name:     strings.ToLower(*linkModel),
		LossRate: *lossRate,
		BER:      *ber, FrameBits: *frameBits,
		PGoodBad: *gePGB, PBadGood: *gePBG, LossBad: *geLossBad,
		Jitter:       *jitter,
		CaptureRatio: *capRatio,
	}
	if !lspec.IsZero() {
		opts = append(opts, manetsim.WithLinkModel(lspec))
	}
	if *rtsThresh != 0 {
		opts = append(opts, manetsim.WithRTSThreshold(*rtsThresh))
	}
	if len(faults.specs) > 0 {
		opts = append(opts, manetsim.WithFaults(faults.specs...))
	}
	if *progress {
		opts = append(opts, manetsim.WithObserver(manetsim.ObserverFuncs{
			Progress: func(delivered, total int64, simTime time.Duration) {
				fmt.Printf("  ... %d/%d packets at t=%v\n", delivered, total, simTime.Round(time.Millisecond))
			},
		}))
	}

	start := time.Now()
	res, err := manetsim.Run(context.Background(), scn, opts...)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%s over %s at %.1f Mbit/s (seed %d): goodput %.1f kbit/s (±%.1f)\n",
		tspec.Label(), *topology, *bandwidth, *seed,
		res.AggGoodput.Mean/1e3, res.AggGoodput.HalfCI/1e3)
	if *quiet {
		return
	}
	fmt.Printf("  delivered          %d packets in %v simulated (%v wall)\n",
		res.Delivered, res.SimTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  avg window         %.2f packets (±%.2f)\n", res.AvgWindow.Mean, res.AvgWindow.HalfCI)
	fmt.Printf("  retransmissions    %.4f per delivered packet (±%.4f)\n", res.Rtx.Mean, res.Rtx.HalfCI)
	fmt.Printf("  link-layer failures %.4f per attempt (±%.4f)\n", res.DropProb.Mean, res.DropProb.HalfCI)
	fmt.Printf("  route failures     %d false, %d true\n", res.FalseRouteFailures, res.TrueRouteFailures)
	if res.ImpairedFrames > 0 {
		fmt.Printf("  impaired frames    %d (%s)\n", res.ImpairedFrames, lspec.Label())
	}
	if fr := res.Faults; fr != nil {
		fmt.Printf("  faults             %d injected, %v in outage, %d frames cut\n",
			fr.Injected, fr.TimeInOutage.Round(time.Millisecond), fr.FramesCut)
		fmt.Printf("  outage goodput     %.1f kbit/s during vs %.1f outside\n",
			fr.GoodputDuringBps/1e3, fr.GoodputOutsideBps/1e3)
		for _, o := range fr.Outages {
			line := fmt.Sprintf("    %-30s", o.Fault)
			if o.Recovered {
				line += fmt.Sprintf(" first delivery after %v", o.TimeToRecover.Round(time.Millisecond))
			}
			if o.RecoveredAfterHeal {
				line += fmt.Sprintf(", recovered %v after heal", o.TimeToRecoverAfterHeal.Round(time.Millisecond))
			} else if o.End != 0 {
				line += ", never recovered after heal"
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("  energy             %.1f J total, %.2f J/MB\n", res.Energy.TotalJoules, res.Energy.JoulesPerMB)
	if res.Delay.N > 0 {
		fmt.Printf("  e2e delay          mean %v, p95 %v\n",
			res.Delay.Mean.Round(time.Millisecond), res.Delay.P95.Round(time.Millisecond))
	}
	if len(res.Flows) > 1 {
		fmt.Printf("  Jain fairness      %.3f [%.3f : %.3f]\n", res.Jain.Mean, res.Jain.Lo(), res.Jain.Hi())
		for i, est := range res.PerFlowGood {
			fmt.Printf("    flow %2d (%d->%d)  %.1f kbit/s\n", i+1, res.Flows[i].Src, res.Flows[i].Dst, est.Mean/1e3)
		}
	}
	if res.Truncated {
		fmt.Println("  WARNING: run truncated by MaxSimTime before reaching the packet target")
	}
}

// listTransports prints the transport registry, one variant per line.
func listTransports() {
	fmt.Println("registered transports (select with -protocol <name>):")
	for _, info := range manetsim.Transports() {
		name := info.Name
		if len(info.Aliases) > 0 {
			name += " (" + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-26s %s\n", name, info.Description)
	}
}

// listLinkModels prints the link-model registry, one model per line.
func listLinkModels() {
	fmt.Println("registered link models (select with -link-model <name>):")
	for _, info := range manetsim.LinkModels() {
		name := info.Name
		if len(info.Aliases) > 0 {
			name += " (" + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-26s %s\n", name, info.Description)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "manetsim: "+format+"\n", args...)
	os.Exit(2)
}
