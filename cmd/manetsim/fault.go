package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"manetsim"
)

// faultFlags is the repeatable -fault flag: each occurrence parses one
// fault spec, so a full chaos schedule composes on the command line:
//
//	manetsim -fault crash@t=30,node=3 -fault blackout@t=60,from=1,to=2,d=5s
type faultFlags struct {
	specs []manetsim.FaultSpec
}

func (f *faultFlags) String() string {
	labels := make([]string, len(f.specs))
	for i, s := range f.specs {
		labels[i] = s.Label()
	}
	return strings.Join(labels, " ")
}

func (f *faultFlags) Set(s string) error {
	spec, err := parseFaultSpec(s)
	if err != nil {
		return err
	}
	f.specs = append(f.specs, spec)
	return nil
}

// parseFaultSpec parses one -fault value: a registered fault name,
// optionally followed by @key=value pairs separated by commas.
//
//	crash@t=30,node=3,d=5s
//	blackout@t=1m,from=1,to=2,dir=uni
//	partition@t=45s,d=10s,cut=500
//	partition@t=45s,nodes=0+1+2
//
// Times accept Go duration syntax (30s, 1m30s) or bare numbers, read as
// seconds. Omitted durations mean permanent; structural validation
// (node bounds, axis names) stays with Config.Validate so the CLI and
// the HTTP API reject specs identically.
func parseFaultSpec(s string) (manetsim.FaultSpec, error) {
	var spec manetsim.FaultSpec
	name, rest, hasArgs := strings.Cut(s, "@")
	spec.Name = strings.ToLower(strings.TrimSpace(name))
	if spec.Name == "" {
		return spec, fmt.Errorf("-fault %q: empty fault name", s)
	}
	// Mirror the BlackoutFault helper: links sever both ways unless the
	// spec asks for a one-way cut.
	spec.Bidirectional = true
	if !hasArgs {
		return spec, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("-fault %q: %q is not key=value", s, kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "t", "at":
			spec.At, err = parseSeconds(val)
		case "d", "dur", "duration", "for":
			spec.Duration, err = parseSeconds(val)
		case "node", "n":
			spec.Node, err = strconv.Atoi(val)
		case "from":
			spec.From, err = strconv.Atoi(val)
		case "to":
			spec.To, err = strconv.Atoi(val)
		case "dir":
			switch strings.ToLower(val) {
			case "bi", "both":
				spec.Bidirectional = true
			case "uni", "oneway":
				spec.Bidirectional = false
			default:
				err = fmt.Errorf("dir must be bi or uni, not %q", val)
			}
		case "axis":
			spec.Axis = strings.ToLower(val)
		case "cut":
			spec.Cut, err = strconv.ParseFloat(val, 64)
			if spec.Axis == "" {
				spec.Axis = "x"
			}
		case "nodes":
			for _, n := range strings.Split(val, "+") {
				id, aerr := strconv.Atoi(strings.TrimSpace(n))
				if aerr != nil {
					err = fmt.Errorf("nodes must be +-separated ids, not %q", val)
					break
				}
				spec.NodesA = append(spec.NodesA, id)
			}
		default:
			return spec, fmt.Errorf("-fault %q: unknown key %q (t, d, node, from, to, dir, axis, cut, nodes)", s, key)
		}
		if err != nil {
			return spec, fmt.Errorf("-fault %q: %s: %v", s, key, err)
		}
	}
	return spec, nil
}

// parseSeconds reads a duration flag value: Go duration syntax first,
// then a bare number of seconds (crash@t=30 means thirty seconds).
func parseSeconds(val string) (time.Duration, error) {
	if d, err := time.ParseDuration(val); err == nil {
		return d, nil
	}
	secs, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is neither a duration nor seconds", val)
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// listFaults prints the fault registry, one injector per line.
func listFaults() {
	fmt.Println("registered faults (inject with -fault <name>@k=v,...):")
	for _, info := range manetsim.Faults() {
		name := info.Name
		if len(info.Aliases) > 0 {
			name += " (" + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-26s %s\n", name, info.Description)
	}
}
