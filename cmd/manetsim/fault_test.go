package main

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"manetsim"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want manetsim.FaultSpec
	}{
		{"crash@t=30,node=3", manetsim.FaultSpec{
			Name: "crash", At: 30 * time.Second, Node: 3, Bidirectional: true,
		}},
		{"crash@t=1m30s,node=2,d=5s", manetsim.FaultSpec{
			Name: "crash", At: 90 * time.Second, Duration: 5 * time.Second, Node: 2, Bidirectional: true,
		}},
		{"blackout@t=60,from=1,to=2,d=5s", manetsim.FaultSpec{
			Name: "blackout", At: time.Minute, Duration: 5 * time.Second,
			From: 1, To: 2, Bidirectional: true,
		}},
		{"Blackout@t=2s,from=0,to=1,dir=uni", manetsim.FaultSpec{
			Name: "blackout", At: 2 * time.Second, From: 0, To: 1,
		}},
		{"partition@t=45s,d=10s,cut=500", manetsim.FaultSpec{
			Name: "partition", At: 45 * time.Second, Duration: 10 * time.Second,
			Axis: "x", Cut: 500, Bidirectional: true,
		}},
		{"partition@t=45,axis=y,cut=250.5", manetsim.FaultSpec{
			Name: "partition", At: 45 * time.Second, Axis: "y", Cut: 250.5, Bidirectional: true,
		}},
		{"split@t=10,nodes=0+1+2", manetsim.FaultSpec{
			Name: "split", At: 10 * time.Second, NodesA: []int{0, 1, 2}, Bidirectional: true,
		}},
		{"crash", manetsim.FaultSpec{Name: "crash", Bidirectional: true}},
	}
	for _, tc := range cases {
		got, err := parseFaultSpec(tc.in)
		if err != nil {
			t.Errorf("parseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseFaultSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "empty fault name"},
		{"@t=1", "empty fault name"},
		{"crash@t", "not key=value"},
		{"crash@t=soon", "neither a duration nor seconds"},
		{"crash@warp=9", "unknown key"},
		{"crash@node=one", "node"},
		{"blackout@dir=sideways", "dir must be bi or uni"},
		{"partition@nodes=0+x", "+-separated"},
	}
	for _, tc := range cases {
		_, err := parseFaultSpec(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseFaultSpec(%q) err = %v, want substring %q", tc.in, err, tc.want)
		}
	}
}

// TestFaultFlagRepeats accumulates one spec per -fault occurrence.
func TestFaultFlagRepeats(t *testing.T) {
	var f faultFlags
	for _, v := range []string{"crash@t=30,node=3", "blackout@t=60,from=1,to=2"} {
		if err := f.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.specs) != 2 {
		t.Fatalf("2 Set calls left %d specs", len(f.specs))
	}
	if s := f.String(); !strings.Contains(s, "crash(node=3)@30s") || !strings.Contains(s, "blackout(1<->2)@1m0s") {
		t.Errorf("String() = %q", s)
	}
}
